#include "broadcast/reliable_broadcast.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "runtime/sim_env.h"

namespace wrs {
namespace {

class NoteMsg : public MessageBase<NoteMsg> {
 public:
  explicit NoteMsg(int v) : v_(v) {}
  int value() const { return v_; }
  std::string type_name() const override { return "NOTE"; }
  std::size_t wire_size() const override { return kHeaderBytes + 4; }

 private:
  int v_;
};

/// A server that only runs a reliable-broadcast endpoint.
class RbServer : public Process {
 public:
  RbServer(Env& env, ProcessId self)
      : rb_(env, self, [this](ProcessId origin, const Message& m) {
          const auto* note = msg_cast<NoteMsg>(m);
          ASSERT_NE(note, nullptr);
          delivered.emplace_back(origin, note->value());
        }) {}

  void on_message(ProcessId from, const Message& msg) override {
    rb_.handle(from, msg);
  }

  ReliableBroadcast& rb() { return rb_; }
  std::vector<std::pair<ProcessId, int>> delivered;

 private:
  ReliableBroadcast rb_;
};

struct RbCluster {
  std::unique_ptr<SimEnv> env;
  std::vector<std::unique_ptr<RbServer>> servers;

  explicit RbCluster(std::uint32_t n, std::uint64_t seed = 1) {
    env = std::make_unique<SimEnv>(
        std::make_shared<UniformLatency>(ms(1), ms(10)), seed);
    for (std::uint32_t i = 0; i < n; ++i) {
      servers.push_back(std::make_unique<RbServer>(*env, i));
      env->register_process(i, servers.back().get());
    }
    env->start();
  }
};

TEST(ReliableBroadcast, DeliversToEveryServerIncludingOrigin) {
  RbCluster c(4);
  c.servers[0]->rb().broadcast(std::make_shared<NoteMsg>(7));
  c.env->run_to_quiescence();
  for (const auto& s : c.servers) {
    ASSERT_EQ(s->delivered.size(), 1u);
    EXPECT_EQ(s->delivered[0], std::make_pair(ProcessId{0}, 7));
  }
}

TEST(ReliableBroadcast, NoDuplicateDeliveries) {
  RbCluster c(5);
  for (int i = 0; i < 10; ++i) {
    c.servers[1]->rb().broadcast(std::make_shared<NoteMsg>(i));
  }
  c.env->run_to_quiescence();
  for (const auto& s : c.servers) {
    EXPECT_EQ(s->delivered.size(), 10u);
  }
}

TEST(ReliableBroadcast, OrderPreservedPerOriginIsNotGuaranteed) {
  // Sanity: with random latencies, deliveries happen but any order; we
  // only require the *set* of delivered values to match.
  RbCluster c(4, /*seed=*/99);
  for (int i = 0; i < 20; ++i) {
    c.servers[2]->rb().broadcast(std::make_shared<NoteMsg>(i));
  }
  c.env->run_to_quiescence();
  for (const auto& s : c.servers) {
    std::multiset<int> values;
    for (auto& [origin, v] : s->delivered) values.insert(v);
    std::multiset<int> expected;
    for (int i = 0; i < 20; ++i) expected.insert(i);
    EXPECT_EQ(values, expected);
  }
}

TEST(ReliableBroadcast, AgreementWhenOriginCrashesAfterPartialSend) {
  // The crux of RB: if ANY correct server delivers, ALL correct servers
  // deliver — even when the origin reached only one server. Simulate the
  // partial send by injecting the wrapped message at a single server.
  RbCluster c(5);
  auto payload = std::make_shared<NoteMsg>(123);
  auto wrapped = std::make_shared<RbMsg>(/*origin=*/0, /*seq=*/0, payload);
  c.env->crash(0);  // origin is gone; only server 3 got the message
  c.env->send(0, 3, wrapped);  // in-flight before the crash
  // (SimEnv drops sends *from* crashed processes; emulate the in-flight
  // message by sending from a live id.)
  c.env->send(1, 3, wrapped);
  c.env->run_to_quiescence();
  for (std::uint32_t i = 1; i < 5; ++i) {
    ASSERT_EQ(c.servers[i]->delivered.size(), 1u)
        << "server " << i << " missed the broadcast";
    EXPECT_EQ(c.servers[i]->delivered[0].second, 123);
  }
}

TEST(ReliableBroadcast, ForwardingTerminates) {
  // Echo forwarding must not loop: message count is bounded by O(n^2)
  // per broadcast.
  RbCluster c(6);
  c.servers[0]->rb().broadcast(std::make_shared<NoteMsg>(1));
  c.env->run_to_quiescence();
  // 1 broadcast: origin sends n, each of the other n-1 servers forwards n.
  EXPECT_LE(c.env->traffic().get("msg.RB"), 6 + 5 * 6);
}

TEST(ReliableBroadcast, DistinctOriginsDoNotCollide) {
  RbCluster c(4);
  c.servers[0]->rb().broadcast(std::make_shared<NoteMsg>(10));
  c.servers[1]->rb().broadcast(std::make_shared<NoteMsg>(20));
  c.env->run_to_quiescence();
  for (const auto& s : c.servers) {
    ASSERT_EQ(s->delivered.size(), 2u);
    std::set<std::pair<ProcessId, int>> got(s->delivered.begin(),
                                            s->delivered.end());
    EXPECT_TRUE(got.count({0, 10}) == 1);
    EXPECT_TRUE(got.count({1, 20}) == 1);
  }
}

TEST(ReliableBroadcast, SurvivesFCrashesAmongReceivers) {
  RbCluster c(5);
  c.env->crash(3);
  c.env->crash(4);
  c.servers[0]->rb().broadcast(std::make_shared<NoteMsg>(55));
  c.env->run_to_quiescence();
  for (std::uint32_t i = 0; i < 3; ++i) {
    ASSERT_EQ(c.servers[i]->delivered.size(), 1u);
    EXPECT_EQ(c.servers[i]->delivered[0].second, 55);
  }
}

}  // namespace
}  // namespace wrs
