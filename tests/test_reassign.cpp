// Tests for the restricted pairwise weight reassignment protocol
// (Algorithms 3 and 4): RP-Integrity, RP-Validity-I/II, RP-Liveness, and
// schedule-sweep property tests.
#include <gtest/gtest.h>

#include "core/reassign_client.h"
#include "test_util.h"

namespace wrs {
namespace {

using test::ReassignCluster;
using test::run_until;

TEST(Transfer, EffectiveTransferMovesWeight) {
  ReassignCluster c(4, 1, /*seed=*/1);
  std::optional<TransferOutcome> outcome;
  c.node(0).transfer(1, Weight(1, 4),
                     [&](const TransferOutcome& o) { outcome = o; });
  run_until(*c.env, [&] { return outcome.has_value(); });
  EXPECT_TRUE(outcome->effective);
  EXPECT_EQ(outcome->completion_change.delta, -Weight(1, 4));
  EXPECT_EQ(outcome->completion_change.target(), 0u);
  c.env->run_to_quiescence();
  // Every server converges to the new weights.
  for (auto& n : c.nodes) {
    EXPECT_EQ(n->weight_of(0), Weight(3, 4));
    EXPECT_EQ(n->weight_of(1), Weight(5, 4));
  }
}

TEST(Transfer, NullTransferWhenFloorWouldBeViolated) {
  // n=4, f=1: floor = 4/(2*3) = 2/3. Uniform weight 1; transferring 1/2
  // would leave 1/2 < 2/3 + ... check: need weight > delta + floor =
  // 1/2 + 2/3 = 7/6 > 1 -> null.
  ReassignCluster c(4, 1, 2);
  std::optional<TransferOutcome> outcome;
  c.node(0).transfer(1, Weight(1, 2),
                     [&](const TransferOutcome& o) { outcome = o; });
  run_until(*c.env, [&] { return outcome.has_value(); });
  EXPECT_FALSE(outcome->effective);
  EXPECT_TRUE(outcome->completion_change.is_null());
  c.env->run_to_quiescence();
  for (auto& n : c.nodes) {
    EXPECT_EQ(n->weight_of(0), Weight(1));
    EXPECT_EQ(n->weight_of(1), Weight(1));
  }
}

TEST(Transfer, BoundaryDeltaExactlyAtFloorIsRejected) {
  // weight > delta + floor must be STRICT: with weight 1, floor 2/3,
  // delta exactly 1/3 gives equality -> null transfer.
  ReassignCluster c(4, 1, 3);
  std::optional<TransferOutcome> outcome;
  c.node(0).transfer(1, Weight(1, 3),
                     [&](const TransferOutcome& o) { outcome = o; });
  run_until(*c.env, [&] { return outcome.has_value(); });
  EXPECT_FALSE(outcome->effective);
}

TEST(Transfer, JustBelowBoundaryIsEffective) {
  ReassignCluster c(4, 1, 4);
  std::optional<TransferOutcome> outcome;
  c.node(0).transfer(1, Weight(1, 3) - Weight(1, 100),
                     [&](const TransferOutcome& o) { outcome = o; });
  run_until(*c.env, [&] { return outcome.has_value(); });
  EXPECT_TRUE(outcome->effective);
}

TEST(Transfer, SequentialityEnforced) {
  ReassignCluster c(4, 1, 5);
  c.node(0).transfer(1, Weight(1, 8), [](const TransferOutcome&) {});
  EXPECT_THROW(
      c.node(0).transfer(2, Weight(1, 8), [](const TransferOutcome&) {}),
      std::logic_error);
}

TEST(Transfer, RejectsBadArguments) {
  ReassignCluster c(4, 1, 6);
  EXPECT_THROW(c.node(0).transfer(0, Weight(1, 8), [](auto&) {}),
               std::invalid_argument);  // self
  EXPECT_THROW(c.node(0).transfer(1, Weight(0), [](auto&) {}),
               std::invalid_argument);  // zero delta
  EXPECT_THROW(c.node(0).transfer(1, -Weight(1, 8), [](auto&) {}),
               std::invalid_argument);  // negative delta
  EXPECT_THROW(c.node(0).transfer(17, Weight(1, 8), [](auto&) {}),
               std::invalid_argument);  // unknown server
}

TEST(Transfer, CompletesWithFCrashedServers) {
  // RP-Liveness: n=5, f=2 — two crashed servers must not block transfer.
  ReassignCluster c(5, 2, 7);
  c.env->crash(3);
  c.env->crash(4);
  std::optional<TransferOutcome> outcome;
  c.node(0).transfer(1, Weight(1, 10),
                     [&](const TransferOutcome& o) { outcome = o; });
  run_until(*c.env, [&] { return outcome.has_value(); });
  EXPECT_TRUE(outcome->effective);
}

TEST(Transfer, ChainedTransfersAccumulate) {
  ReassignCluster c(4, 1, 8);
  int completed = 0;
  std::function<void()> next = [&] {
    c.node(0).transfer(1, Weight(1, 16), [&](const TransferOutcome& o) {
      EXPECT_TRUE(o.effective);
      ++completed;
      if (completed < 4) next();
    });
  };
  next();
  run_until(*c.env, [&] { return completed == 4; });
  c.env->run_to_quiescence();
  EXPECT_EQ(c.node(2).weight_of(0), Weight(3, 4));
  EXPECT_EQ(c.node(2).weight_of(1), Weight(5, 4));
}

TEST(Transfer, GainEnablesLargerOutgoingTransfer) {
  // s1 gains from s0, then s1 can donate more than it initially could.
  ReassignCluster c(4, 1, 9);
  bool step1 = false, step2 = false;
  c.node(0).transfer(1, Weight(1, 4), [&](const TransferOutcome& o) {
    EXPECT_TRUE(o.effective);
    step1 = true;
  });
  run_until(*c.env, [&] { return step1; });
  c.env->run_to_quiescence();
  // s1 now has 5/4; it can transfer 1/2 (needs > 1/2 + 2/3 = 7/6).
  c.node(1).transfer(2, Weight(1, 2), [&](const TransferOutcome& o) {
    EXPECT_TRUE(o.effective);
    step2 = true;
  });
  run_until(*c.env, [&] { return step2; });
  c.env->run_to_quiescence();
  EXPECT_EQ(c.node(3).weight_of(1), Weight(3, 4));
  EXPECT_EQ(c.node(3).weight_of(2), Weight(3, 2));
}

TEST(ReadChanges, ReturnsInitialWeights) {
  ReassignCluster c(4, 1, 10);
  std::optional<ChangeSet> result;
  c.node(0).read_changes(2, [&](const ChangeSet& cs) { result = cs; });
  run_until(*c.env, [&] { return result.has_value(); });
  EXPECT_EQ(result->weight_of(2), Weight(1));
  EXPECT_EQ(result->size(), 1u);  // just the initial change for s2
}

TEST(ReadChanges, ValidityII_ContainsCompletedChanges) {
  ReassignCluster c(4, 1, 11);
  std::optional<TransferOutcome> outcome;
  c.node(0).transfer(1, Weight(1, 4),
                     [&](const TransferOutcome& o) { outcome = o; });
  run_until(*c.env, [&] { return outcome.has_value(); });
  // The transfer is completed; read_changes(s1) must contain the credit.
  std::optional<ChangeSet> result;
  c.node(2).read_changes(1, [&](const ChangeSet& cs) { result = cs; });
  run_until(*c.env, [&] { return result.has_value(); });
  EXPECT_TRUE(result->contains(
      ChangeId{0, outcome->completion_change.counter(), 1}));
  EXPECT_EQ(result->weight_of(1), Weight(5, 4));
}

TEST(ReadChanges, ClientProcessCanRead) {
  ReassignCluster c(4, 1, 12);
  ReassignClient client(*c.env, client_id(0), c.config);
  c.env->register_process(client_id(0), &client);
  std::optional<ChangeSet> result;
  client.read_changes(0, [&](const ChangeSet& cs) { result = cs; });
  run_until(*c.env, [&] { return result.has_value(); });
  EXPECT_EQ(result->weight_of(0), Weight(1));
}

TEST(ReadChanges, ReadAllWeights) {
  ReassignCluster c(4, 1, 13);
  bool done = false;
  c.node(0).transfer(1, Weight(1, 4), [&](const TransferOutcome&) {
    done = true;
  });
  run_until(*c.env, [&] { return done; });
  c.env->run_to_quiescence();

  ReassignClient client(*c.env, client_id(0), c.config);
  c.env->register_process(client_id(0), &client);
  std::optional<WeightMap> weights;
  client.read_all_weights(c.config,
                          [&](const WeightMap& wm) { weights = wm; });
  run_until(*c.env, [&] { return weights.has_value(); });
  EXPECT_EQ(weights->of(0), Weight(3, 4));
  EXPECT_EQ(weights->of(1), Weight(5, 4));
  EXPECT_EQ(weights->total(), Weight(4));
}

TEST(ReadChanges, CompletesWithFCrashes) {
  ReassignCluster c(5, 2, 14);
  c.env->crash(1);
  c.env->crash(2);
  std::optional<ChangeSet> result;
  c.node(0).read_changes(3, [&](const ChangeSet& cs) { result = cs; });
  run_until(*c.env, [&] { return result.has_value(); });
  EXPECT_EQ(result->weight_of(3), Weight(1));
}

// --- Property tests: schedule sweeps ----------------------------------------

struct SweepParams {
  std::uint64_t seed;
  std::uint32_t n;
  std::uint32_t f;
};

class TransferSweepTest : public ::testing::TestWithParam<SweepParams> {};

TEST_P(TransferSweepTest, RpIntegrityInvariantUnderConcurrentTransfers) {
  auto [seed, n, f] = GetParam();
  ReassignCluster c(n, f, seed);
  Weight floor = c.config.floor();
  Rng rng(seed);

  // Every node repeatedly fires random transfers at random peers.
  std::vector<int> remaining(n, 6);
  int in_flight = 0;
  std::function<void(std::uint32_t)> fire = [&](std::uint32_t i) {
    if (remaining[i] == 0) return;
    --remaining[i];
    ++in_flight;
    ProcessId dst = (i + 1 + rng.below(n - 1)) % n;
    Weight delta(1 + static_cast<std::int64_t>(rng.below(40)), 64);
    c.node(i).transfer(dst, delta, [&, i](const TransferOutcome&) {
      --in_flight;
      fire(i);
    });
  };
  for (std::uint32_t i = 0; i < n; ++i) fire(i);

  auto all_done = [&] {
    if (in_flight != 0) return false;
    for (int r : remaining) {
      if (r != 0) return false;
    }
    return true;
  };
  run_until(*c.env, all_done, seconds(600));
  c.env->run_to_quiescence();

  // RP-Integrity at the end on every replica, and total conservation.
  for (auto& node : c.nodes) {
    Weight total(0);
    for (std::uint32_t s = 0; s < n; ++s) {
      Weight w = node->weight_of(s);
      EXPECT_GT(w, floor) << "RP-Integrity violated at "
                          << process_name(node->id()) << " for s" << s;
      total += w;
    }
    EXPECT_EQ(total, c.config.initial_total());  // pairwise conservation
  }
  // Convergence: all correct replicas agree on all weights.
  for (std::uint32_t s = 0; s < n; ++s) {
    for (auto& node : c.nodes) {
      EXPECT_EQ(node->weight_of(s), c.node(0).weight_of(s));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, TransferSweepTest,
    ::testing::Values(SweepParams{101, 4, 1}, SweepParams{102, 4, 1},
                      SweepParams{103, 5, 2}, SweepParams{104, 5, 2},
                      SweepParams{105, 7, 2}, SweepParams{106, 7, 3},
                      SweepParams{107, 9, 4}, SweepParams{108, 10, 3},
                      SweepParams{109, 6, 2}, SweepParams{110, 8, 3}));

class TransferCrashSweepTest : public ::testing::TestWithParam<SweepParams> {
};

TEST_P(TransferCrashSweepTest, LivenessWithFCrashesMidstream) {
  auto [seed, n, f] = GetParam();
  ReassignCluster c(n, f, seed);
  Rng rng(seed ^ 0x5eed);

  // Crash f random servers at random times; the remaining servers keep
  // transferring and must all complete.
  std::set<std::uint32_t> crashed;
  while (crashed.size() < f) {
    crashed.insert(static_cast<std::uint32_t>(rng.below(n)));
  }
  TimeNs when = ms(5);
  for (std::uint32_t victim : crashed) {
    c.env->schedule(kNoProcess, when, [&, victim] { c.env->crash(victim); });
    when += ms(7);
  }

  int completed = 0;
  int expected = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (crashed.count(i) != 0) continue;
    ++expected;
    ProcessId dst = (i + 1) % n;
    c.node(i).transfer(dst, Weight(1, 32),
                       [&](const TransferOutcome&) { ++completed; });
  }
  run_until(*c.env, [&] { return completed == expected; }, seconds(600));

  // Surviving replicas converge and respect the floor.
  c.env->run_to_quiescence();
  Weight floor = c.config.floor();
  for (std::uint32_t i = 0; i < n; ++i) {
    if (crashed.count(i) != 0) continue;
    for (std::uint32_t s = 0; s < n; ++s) {
      EXPECT_GT(c.node(i).weight_of(s), floor);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, TransferCrashSweepTest,
    ::testing::Values(SweepParams{201, 4, 1}, SweepParams{202, 5, 2},
                      SweepParams{203, 7, 2}, SweepParams{204, 7, 3},
                      SweepParams{205, 9, 4}, SweepParams{206, 10, 3}));

}  // namespace
}  // namespace wrs
