// Cross-shard atomic snapshots (ShardRouter::snapshot + the
// ClientHandle verb) and the consolidated builder option structs:
//
//   * a quiet deployment: one double-collect (2 rounds, no fallback)
//     returns exactly the written values, across shards, in key order;
//   * input hygiene: empty key list, duplicate keys, unwritten keys;
//   * cuts race concurrent writers and stay consistent (the history
//     checker's S1/S2 cut conditions over recorded snapshots);
//   * the fenced fallback engages under relentless same-key write
//     pressure once the collect budget is exhausted — and its cut is
//     still consistent;
//   * chaos: snapshots racing a MigrationStorm + Nemesis link faults on
//     BOTH runtimes, every cut validated by check_atomicity;
//   * TuningOptions/FaultOptions/WorkloadOptions build the IDENTICAL
//     deployment as the legacy flat setter chain (same seed => same
//     message-for-message traffic counters and op results on SimEnv).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "api/cluster.h"
#include "storage/history.h"
#include "testing/nemesis.h"

namespace wrs {
namespace {

std::vector<RegisterKey> keyset(std::size_t count) {
  std::vector<RegisterKey> keys;
  for (std::size_t i = 0; i < count; ++i) keys.push_back("k" + std::to_string(i));
  return keys;
}

// --- quiet-path cuts --------------------------------------------------------

TEST(Snapshot, QuietCutReturnsWrittenValuesAcrossShards) {
  Cluster c = Cluster::builder()
                  .servers(3)
                  .shards(4)
                  .runtime(Runtime::kSim)
                  .build();
  auto keys = keyset(8);
  std::vector<std::pair<RegisterKey, Value>> puts;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    puts.emplace_back(keys[i], "v" + std::to_string(i));
  }
  when_all(c.client().write_batch(puts)).get();

  ShardRouter::SnapshotResult r = c.client().snapshot(keys).get();
  ASSERT_EQ(r.cut.size(), keys.size());
  EXPECT_EQ(r.rounds, 2u);  // one clean double-collect
  EXPECT_FALSE(r.used_fallback);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(r.cut[i].first, keys[i]) << "cut preserves request key order";
    EXPECT_EQ(r.cut[i].second.value, "v" + std::to_string(i));
  }
  EXPECT_EQ(c.client().router().snapshots_taken(), 1u);
  EXPECT_EQ(c.client().router().snapshot_fallbacks(), 0u);
}

TEST(Snapshot, HandlesEmptyDuplicateAndUnwrittenKeys) {
  Cluster c = Cluster::builder()
                  .servers(3)
                  .shards(2)
                  .runtime(Runtime::kSim)
                  .build();
  // Empty request: an empty cut, no wire traffic.
  EXPECT_TRUE(c.client().snapshot({}).get().cut.empty());

  c.client().write("a", "1").get();
  // Duplicates collapse; unwritten keys report the initial register.
  auto r = c.client().snapshot({"a", "b", "a"}).get();
  ASSERT_EQ(r.cut.size(), 2u);
  EXPECT_EQ(r.cut[0].first, "a");
  EXPECT_EQ(r.cut[0].second.value, "1");
  EXPECT_EQ(r.cut[1].first, "b");
  EXPECT_EQ(r.cut[1].second.tag, kInitialTag);
}

// --- cuts racing writers ----------------------------------------------------

TEST(Snapshot, CutsUnderConcurrentWritersStayConsistent) {
  // A closed-loop workload that folds a 4-key snapshot into the stream
  // after every 5 completed ops; every cut is recorded and checked.
  WorkloadParams wp;
  wp.num_ops = 60;
  wp.read_ratio = 0.3;
  wp.num_keys = 6;
  wp.snapshot_every_ops = 5;
  wp.snapshot_keys = 4;
  wp.seed = 7;

  auto history = std::make_shared<HistoryRecorder>();
  Cluster c = Cluster::builder()
                  .servers(3)
                  .shards(2)
                  .clients(2)
                  .workload(wp)
                  .history(history)
                  .runtime(Runtime::kSim)
                  .build();
  for (std::size_t k = 0; k < c.num_clients(); ++k) {
    ASSERT_TRUE(c.workload_done(k).try_get(seconds(60)).has_value());
    EXPECT_GT(c.workload(k).snapshots_done(), 0u);
    EXPECT_EQ(c.workload(k).snapshots_done(), c.workload(k).snapshots_issued());
  }
  c.quiesce();
  auto err = check_atomicity(history->completed());
  EXPECT_FALSE(err.has_value()) << *err;
}

TEST(Snapshot, FallbackEngagesUnderWritePressure) {
  // Two collect rounds can never agree while an open-loop writer hammers
  // the snapshotted keys, so the fenced fallback must take the cut.
  TuningOptions tuning;
  tuning.snapshot_max_collect_rounds = 2;

  WorkloadParams wp;
  wp.num_ops = 400;
  wp.read_ratio = 0.0;  // writers only
  wp.num_keys = 2;
  wp.target_ops_per_sec = 4000;  // open loop: relentless pressure
  wp.max_in_flight = 16;
  wp.seed = 11;

  auto history = std::make_shared<HistoryRecorder>();
  Cluster c = Cluster::builder()
                  .servers(3)
                  .shards(2)
                  .clients(2)
                  .tuning(tuning)
                  .workload(wp)
                  .history(history)
                  .runtime(Runtime::kSim)
                  .build();

  testing::SnapshotStormParams ssp;
  ssp.start = ms(20);
  ssp.horizon = ms(120);
  ssp.attempts = 6;
  ssp.num_keys = 2;
  ssp.keys_per_snapshot = 2;
  testing::SnapshotStorm snaps(c, 13, ssp, history);
  snaps.unleash();

  for (int round = 0; round < 200 && snaps.completed() < ssp.attempts;
       ++round) {
    c.run_for(ms(25));
  }
  ASSERT_EQ(snaps.completed(), ssp.attempts)
      << "snapshots stuck (fallback wait-freedom)";
  EXPECT_GT(snaps.fallbacks(), 0u)
      << "write pressure never exhausted the collect budget — the "
         "fallback path went unexercised";

  for (std::size_t k = 0; k < c.num_clients(); ++k) {
    ASSERT_TRUE(c.workload_done(k).try_get(seconds(60)).has_value())
        << "frozen keys never drained parked writes";
  }
  c.quiesce();
  auto err = check_atomicity(history->completed());
  EXPECT_FALSE(err.has_value()) << *err;
}

TEST(Snapshot, ContendingSnapshottersDoNotLivelock) {
  // Regression: four clients each fold 8-key cuts into a capacity-bound
  // open-loop workload over the SAME 64 keys, so their fallback fences
  // constantly collide. An aborted fallback used to re-freeze
  // immediately — contending snapshotters then killed each other's
  // fences in lockstep and no cut ever resolved (surfaced by the
  // EXP-SNAP bench). The seeded jittered backoff desynchronizes them;
  // every issued cut must resolve once the workload drains.
  WorkloadParams wp;
  wp.num_ops = 600;
  wp.read_ratio = 0.5;
  wp.num_keys = 64;
  wp.target_ops_per_sec = 1000;  // 4x1000 offered vs ~2000 capacity
  wp.max_in_flight = 32;
  wp.seed = 20260727;
  wp.snapshot_every_ops = 25;
  wp.snapshot_keys = 8;

  ClusterBuilder b = Cluster::builder()
                         .servers(3)
                         .faults(1)
                         .shards(4)
                         .clients(4)
                         .workload(wp)
                         .service_time(ms(1))
                         .runtime(Runtime::kSim)
                         .seed(20260727);
  b.uniform_latency(us(100), us(500));
  Cluster c = b.build();
  for (std::size_t k = 0; k < c.num_clients(); ++k) {
    ASSERT_TRUE(c.workload_done(k).try_get(seconds(120)).has_value())
        << "client " << k << " wedged with "
        << c.workload(k).snapshots_done() << "/"
        << c.workload(k).snapshots_issued() << " snapshots resolved";
  }
  for (std::size_t k = 0; k < c.num_clients(); ++k) {
    EXPECT_GT(c.workload(k).snapshots_issued(), 0u);
    EXPECT_EQ(c.workload(k).snapshots_done(),
              c.workload(k).snapshots_issued());
  }
}

// --- chaos: snapshots vs migrations vs link faults --------------------------

void expect_snapshot_chaos_consistent(Runtime rt, std::uint64_t seed) {
  const TimeNs horizon = ms(300);
  const std::size_t num_keys = 8;

  WorkloadParams wp;
  wp.num_ops = 40;
  wp.read_ratio = 0.4;
  wp.value_size = 8;
  wp.num_keys = num_keys;
  wp.target_ops_per_sec = 300;
  wp.max_in_flight = 8;
  wp.seed = seed;

  auto history = std::make_shared<HistoryRecorder>();
  Cluster c = Cluster::builder()
                  .servers(3)
                  .faults(1)
                  .shards(3)
                  .clients(2)
                  .workload(wp)
                  .history(history)
                  .uniform_latency(us(200), ms(2))
                  .retry(ms(10))
                  .anti_entropy(ms(25))
                  .runtime(rt)
                  .seed(seed)
                  .build();

  // Keys hop shards while snapshots scan them: every mid-migration
  // window must flag the collect round (frozen/moved) instead of
  // leaking a torn cut.
  testing::MigrationStormParams msp;
  msp.horizon = horizon;
  msp.attempts = 40;
  msp.num_keys = num_keys;
  testing::MigrationStorm mig(c, seed ^ 0x9e3779b97f4a7c15ull, msp);
  mig.unleash();

  testing::SnapshotStormParams ssp;
  ssp.horizon = horizon;
  ssp.attempts = 10;
  ssp.num_keys = num_keys;
  ssp.keys_per_snapshot = 4;
  testing::SnapshotStorm snaps(c, seed + 1, ssp, history);
  snaps.unleash();

  testing::NemesisParams np;
  np.horizon = horizon;
  np.events = 5;
  np.crash_budget = 0;  // the storms already contend; keep quorums whole
  np.drop_p_max = 0.3;
  testing::Nemesis nemesis(c, seed + 2, np);
  nemesis.unleash();

  c.run_for(horizon + ms(80));
  for (int round = 0; round < 200 && (snaps.completed() < ssp.attempts ||
                                      mig.completed() < msp.attempts);
       ++round) {
    c.run_for(ms(25));
  }
  ASSERT_EQ(snaps.completed(), ssp.attempts) << "snapshots stuck (liveness)";
  ASSERT_EQ(mig.completed(), msp.attempts) << "migrations stuck (liveness)";
  EXPECT_GT(c.migration_stats().committed, 0u);

  for (std::size_t k = 0; k < c.num_clients(); ++k) {
    ASSERT_TRUE(c.workload_done(k).try_get(seconds(30)).has_value())
        << "workload client #" << k << " never finished";
  }

  c.set_anti_entropy(0);
  c.quiesce(seconds(120));
  auto err = check_atomicity(history->completed());
  EXPECT_FALSE(err.has_value())
      << "seed=" << seed << " runtime=" << (rt == Runtime::kSim ? "sim" : "threads")
      << ": " << *err;
}

TEST(SnapshotChaos, SimCutsSurviveMigrationStorm) {
  for (std::uint64_t seed : {101u, 202u, 303u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    expect_snapshot_chaos_consistent(Runtime::kSim, seed);
  }
}

TEST(SnapshotChaos, ThreadCutsSurviveMigrationStorm) {
  expect_snapshot_chaos_consistent(Runtime::kThread, 404);
}

// --- builder option structs -------------------------------------------------

/// Runs one deterministic script on `c` and fingerprints everything
/// observable: op results plus the full traffic counter map (every wire
/// message the deployment sent, by type).
std::string deployment_fingerprint(Cluster& c) {
  std::ostringstream fp;
  auto keys = keyset(4);
  std::vector<std::pair<RegisterKey, Value>> puts;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    puts.emplace_back(keys[i], "v" + std::to_string(i));
  }
  for (const Tag& t : when_all(c.client().write_batch(puts)).get()) {
    fp << "w " << t.str() << "\n";
  }
  for (const TaggedValue& tv : when_all(c.client().read_batch(keys)).get()) {
    fp << "r " << tv.tag.str() << " " << tv.value << "\n";
  }
  ShardRouter::SnapshotResult snap = c.client().snapshot(keys).get();
  fp << "snap rounds=" << snap.rounds << " fb=" << snap.used_fallback << "\n";
  for (const auto& [k, tv] : snap.cut) {
    fp << "  " << k << " " << tv.tag.str() << " " << tv.value << "\n";
  }
  c.quiesce();
  for (const auto& [name, count] : c.traffic().map()) {
    fp << name << "=" << count << "\n";
  }
  return fp.str();
}

TEST(BuilderOptions, StructAndFlatSettersBuildIdenticalDeployments) {
  // Same knobs through the legacy flat chain and through the option
  // structs; same seed. On SimEnv the two deployments must be
  // message-for-message identical — identical op results AND identical
  // traffic counters, our byte-level equality proxy.
  Cluster flat = Cluster::builder()
                     .servers(3)
                     .faults(1)
                     .shards(2)
                     .clients(2)
                     .retry(ms(10))
                     .read_fast_path(true)
                     .anti_entropy(ms(25))
                     .batching(4, us(50))
                     .seed(42)
                     .runtime(Runtime::kSim)
                     .build();

  TuningOptions tuning;
  tuning.retry = ms(10);
  tuning.read_fast_path = true;
  tuning.anti_entropy = ms(25);
  tuning.batch_ops = 4;
  tuning.batch_delay = us(50);
  FaultOptions faults;
  faults.faults = 1;
  faults.seed = 42;
  Cluster grouped = Cluster::builder()
                        .servers(3)
                        .shards(2)
                        .clients(2)
                        .tuning(tuning)
                        .fault_options(faults)
                        .runtime(Runtime::kSim)
                        .build();

  EXPECT_EQ(deployment_fingerprint(flat), deployment_fingerprint(grouped));
}

TEST(BuilderOptions, WorkloadOptionsMatchesFlatWorkloadAndHistory) {
  WorkloadParams wp;
  wp.num_ops = 30;
  wp.read_ratio = 0.5;
  wp.num_keys = 4;
  wp.snapshot_every_ops = 10;
  wp.seed = 5;

  auto run = [&](bool grouped) {
    auto history = std::make_shared<HistoryRecorder>();
    ClusterBuilder b = Cluster::builder();
    b.servers(3).shards(2).runtime(Runtime::kSim).seed(9);
    if (grouped) {
      WorkloadOptions wo;
      wo.params = wp;
      wo.history = history;
      b.workload_options(wo);
    } else {
      b.workload(wp).history(history);
    }
    Cluster c = b.build();
    EXPECT_TRUE(c.workload_done().try_get(seconds(60)).has_value());
    c.quiesce();
    std::ostringstream fp;
    for (const OpRecord& op : history->completed()) {
      fp << (op.kind == OpRecord::Kind::kRead ? "R" : "W") << op.key << " "
         << op.tag.str() << " " << op.value << " s=" << op.snap_id << "\n";
    }
    return fp.str();
  };
  std::string flat = run(false);
  std::string grouped = run(true);
  EXPECT_FALSE(flat.empty());
  EXPECT_EQ(flat, grouped);
}

}  // namespace
}  // namespace wrs
