// Edge-case tests for the ABD client/server machinery: stale replies,
// restart budgets, weight views, write-back freshness, and the server
// register rules.
#include <gtest/gtest.h>

#include "storage/abd_server.h"
#include "test_util.h"

namespace wrs {
namespace {

using test::run_until;
using test::StorageCluster;

TEST(AbdServer, KeepsHighestTagOnly) {
  SimEnv env(std::make_shared<ConstantLatency>(ms(1)), 1);
  struct Sink : Process {
    void on_message(ProcessId, const Message&) override {}
  } sink;
  env.register_process(client_id(0), &sink);
  AbdServer server(env, 0, nullptr);
  env.register_process(0, &sink);  // placeholder owner for sends
  env.start();

  WriteReq w1(1, TaggedValue{Tag{5, 1}, "five"});
  server.handle(client_id(0), w1);
  EXPECT_EQ(server.reg().value, "five");

  // Lower tag: ignored.
  WriteReq w2(2, TaggedValue{Tag{3, 9}, "three"});
  server.handle(client_id(0), w2);
  EXPECT_EQ(server.reg().value, "five");
  EXPECT_EQ(server.reg().tag, (Tag{5, 1}));

  // Same ts, higher pid: accepted (lexicographic tag order).
  WriteReq w3(3, TaggedValue{Tag{5, 2}, "five-b"});
  server.handle(client_id(0), w3);
  EXPECT_EQ(server.reg().value, "five-b");
}

TEST(AbdServer, RepliesCarryProvidedChangeSet) {
  SimEnv env(std::make_shared<ConstantLatency>(ms(1)), 1);
  struct Cap : Process {
    ChangeSetPtr last;
    void on_message(ProcessId, const Message& m) override {
      if (const auto* ack = msg_cast<ReadAck>(m)) last = ack->changes();
    }
  } cap;
  env.register_process(client_id(0), &cap);
  auto cs = std::make_shared<ChangeSet>(
      ChangeSet::initial(WeightMap::uniform(3)));
  AbdServer server(env, 0, [cs] { return cs; });
  struct Owner : Process {
    AbdServer* s;
    void on_message(ProcessId from, const Message& m) override {
      s->handle(from, m);
    }
  } owner;
  owner.s = &server;
  env.register_process(0, &owner);
  env.start();
  env.send(client_id(0), 0, std::make_shared<ReadReq>(1));
  env.run_to_quiescence();
  ASSERT_NE(cap.last, nullptr);
  EXPECT_EQ(cap.last->size(), 3u);
}

TEST(AbdClient, ForeignAndStaleAcksIgnored) {
  // Drive a client manually: replies that belong to no in-flight op are
  // left unconsumed (they may target a co-located client), and replies
  // from a superseded phase attempt are swallowed without effect.
  SimEnv env(std::make_shared<ConstantLatency>(ms(1)), 1);
  SystemConfig cfg = SystemConfig::uniform(3, 1);
  struct Holder : Process {
    AbdClient* c = nullptr;
    void on_message(ProcessId from, const Message& m) override {
      c->handle(from, m);
    }
  } holder;
  AbdClient client(env, client_id(0), cfg, AbdClient::Mode::kStatic);
  holder.c = &client;
  env.register_process(client_id(0), &holder);
  env.start();

  bool fired = false;
  OpId op = client.read([&](const TaggedValue&) { fired = true; });
  // An op id no operation of this client owns: NOT consumed.
  ReadAck foreign(/*op_id=*/0xdeadbeef, TaggedValue{}, nullptr);
  EXPECT_FALSE(client.handle(0, foreign));
  // The right op id but a phase attempt that was never issued: consumed
  // silently, no quorum accounting.
  ReadAck stale(op, TaggedValue{}, nullptr, /*seq=*/99);
  EXPECT_TRUE(client.handle(0, stale));
  EXPECT_FALSE(fired);
  EXPECT_TRUE(client.busy());
}

TEST(AbdClient, RestartBudgetThrowsWhenExhausted) {
  StorageCluster c(4, 1, 42);
  std::vector<std::unique_ptr<StorageClient>> clients;
  clients.push_back(std::make_unique<StorageClient>(
      *c.env, client_id(0), c.config, AbdClient::Mode::kDynamic));
  c.env->register_process(client_id(0), clients[0].get());
  clients[0]->abd().set_max_restarts(0);

  // Force a restart: a transfer completes before the client's op.
  bool transferred = false;
  c.node(0).reassign().transfer(
      1, Weight(1, 8), [&](const TransferOutcome&) { transferred = true; });
  run_until(*c.env, [&] { return transferred; });
  c.env->run_to_quiescence();

  clients[0]->abd().read([](const TaggedValue&) {});
  // The read will learn the new changes on the first replies and want to
  // restart — with budget 0 that surfaces as a logic error inside the
  // simulator event. gtest can't catch across the event loop, so step
  // manually and expect the throw.
  EXPECT_THROW(c.env->run_to_quiescence(), std::logic_error);
}

TEST(AbdClient, CurrentWeightsStaticVsDynamic) {
  SimEnv env(std::make_shared<ConstantLatency>(ms(1)), 1);
  WeightMap wm;
  wm.set(0, Weight(2));
  wm.set(1, Weight(1));
  wm.set(2, Weight(1));
  SystemConfig cfg = SystemConfig::make(3, 0, wm);
  AbdClient stat(env, client_id(0), cfg, AbdClient::Mode::kStatic);
  AbdClient dyn(env, client_id(1), cfg, AbdClient::Mode::kDynamic);
  EXPECT_EQ(stat.current_weights().of(0), Weight(2));
  EXPECT_EQ(dyn.current_weights().of(0), Weight(2));  // initial set
  EXPECT_EQ(dyn.changes().size(), 3u);
}

TEST(AbdClient, WritebackMakesSecondReadFastPath) {
  // After a read completed its write-back, a second read observes the
  // same tag at a quorum (no regression), per Definition 6.
  StorageCluster c(5, 2, 43);
  std::vector<std::unique_ptr<StorageClient>> clients;
  for (int k = 0; k < 2; ++k) {
    clients.push_back(std::make_unique<StorageClient>(
        *c.env, client_id(k), c.config, AbdClient::Mode::kDynamic));
    c.env->register_process(client_id(k), clients.back().get());
  }
  bool wrote = false;
  clients[0]->abd().write("wb", [&](const Tag&) { wrote = true; });
  run_until(*c.env, [&] { return wrote; });

  std::optional<TaggedValue> r1, r2;
  clients[1]->abd().read([&](const TaggedValue& tv) { r1 = tv; });
  run_until(*c.env, [&] { return r1.has_value(); });
  clients[1]->abd().read([&](const TaggedValue& tv) { r2 = tv; });
  run_until(*c.env, [&] { return r2.has_value(); });
  EXPECT_EQ(r1->value, "wb");
  EXPECT_FALSE(r2->tag < r1->tag);
}

TEST(AbdClient, LargeValuesRoundTrip) {
  StorageCluster c(4, 1, 44);
  std::vector<std::unique_ptr<StorageClient>> clients;
  clients.push_back(std::make_unique<StorageClient>(
      *c.env, client_id(0), c.config, AbdClient::Mode::kDynamic));
  c.env->register_process(client_id(0), clients[0].get());
  Value big(1 << 20, 'z');  // 1 MiB
  bool wrote = false;
  clients[0]->abd().write(big, [&](const Tag&) { wrote = true; });
  run_until(*c.env, [&] { return wrote; });
  std::optional<TaggedValue> got;
  clients[0]->abd().read([&](const TaggedValue& tv) { got = tv; });
  run_until(*c.env, [&] { return got.has_value(); });
  EXPECT_EQ(got->value.size(), big.size());
  EXPECT_EQ(got->value, big);
}

TEST(ReadChangesEngine, ConcurrentInvocationsIndependent) {
  test::ReassignCluster c(4, 1, 45);
  int done = 0;
  std::optional<ChangeSet> a, b;
  c.node(0).read_changes(1, [&](const ChangeSet& cs) {
    a = cs;
    ++done;
  });
  c.node(0).read_changes(2, [&](const ChangeSet& cs) {
    b = cs;
    ++done;
  });
  run_until(*c.env, [&] { return done == 2; });
  EXPECT_EQ(a->weight_of(1), Weight(1));
  EXPECT_EQ(b->weight_of(2), Weight(1));
  // Each returned set is target-scoped.
  for (const Change& ch : a->all()) EXPECT_EQ(ch.target(), 1u);
  for (const Change& ch : b->all()) EXPECT_EQ(ch.target(), 2u);
}

TEST(ReadChangesEngine, DuplicateAcksFromSameServerCountOnce) {
  // With only f+1 = 2 distinct responders required (n=4, f=1), verify
  // the engine waits for DISTINCT servers: hold 3 of 4 servers so only
  // one can reply; the read must not finish phase 1.
  test::ReassignCluster c(4, 1, 46);
  c.env->hold_messages(1);
  c.env->hold_messages(2);
  c.env->hold_messages(3);
  bool finished = false;
  c.node(0).read_changes(0, [&](const ChangeSet&) { finished = true; });
  c.env->run_until(seconds(5));
  EXPECT_FALSE(finished);  // one responder (itself) is not f+1
  c.env->release_holds(1);
  c.env->release_holds(2);
  c.env->release_holds(3);
  run_until(*c.env, [&] { return finished; });
}

}  // namespace
}  // namespace wrs
