// SystemConfig model-assumption checks.
#include "core/config.h"

#include <gtest/gtest.h>

namespace wrs {
namespace {

TEST(SystemConfig, UniformIsValid) {
  SystemConfig cfg = SystemConfig::uniform(5, 2);
  EXPECT_EQ(cfg.n, 5u);
  EXPECT_EQ(cfg.f, 2u);
  EXPECT_EQ(cfg.initial_total(), Weight(5));
  EXPECT_EQ(cfg.floor(), Weight(5, 6));
  EXPECT_TRUE(cfg.satisfies_rp_floor());  // 1 > 5/6
}

TEST(SystemConfig, RejectsTooManyFaults) {
  EXPECT_THROW(SystemConfig::uniform(4, 2), std::invalid_argument);
  EXPECT_THROW(SystemConfig::uniform(2, 1), std::invalid_argument);
  EXPECT_NO_THROW(SystemConfig::uniform(3, 1));
}

TEST(SystemConfig, RejectsZeroServers) {
  EXPECT_THROW(SystemConfig::uniform(0, 0), std::invalid_argument);
}

TEST(SystemConfig, FZeroIsAllowed) {
  // f=0: no fault tolerance required; Property 1 degenerates.
  SystemConfig cfg = SystemConfig::uniform(3, 0);
  EXPECT_EQ(cfg.floor(), Weight(1, 2));
}

TEST(SystemConfig, RejectsMissingWeight) {
  WeightMap wm;
  wm.set(0, Weight(1));
  wm.set(1, Weight(1));
  // Server 2 missing (only 2 weights for n=3).
  EXPECT_THROW(SystemConfig::make(3, 1, wm), std::invalid_argument);
}

TEST(SystemConfig, RejectsNonPositiveWeight) {
  WeightMap wm;
  wm.set(0, Weight(2));
  wm.set(1, Weight(1));
  wm.set(2, Weight(0));
  EXPECT_THROW(SystemConfig::make(3, 1, wm), std::invalid_argument);
  wm.set(2, -Weight(1));
  EXPECT_THROW(SystemConfig::make(3, 1, wm), std::invalid_argument);
}

TEST(SystemConfig, RejectsProperty1Violation) {
  // One server with half the total voting power and f=1.
  WeightMap wm;
  wm.set(0, Weight(3));
  wm.set(1, Weight(2));
  wm.set(2, Weight(1));
  EXPECT_THROW(SystemConfig::make(3, 1, wm), std::invalid_argument);
}

TEST(SystemConfig, SkewedButAvailableAccepted) {
  WeightMap wm;
  wm.set(0, Weight(2));
  wm.set(1, Weight(3, 2));
  wm.set(2, Weight(1));
  wm.set(3, Weight(1, 2));
  wm.set(4, Weight(1));  // total 6; top-1 = 2 < 3
  SystemConfig cfg = SystemConfig::make(5, 1, wm);
  EXPECT_EQ(cfg.initial_total(), Weight(6));
  // Floor 6/8 = 3/4; s3 is at 1/2 < 3/4: floor violated (but config is
  // legal for static use).
  EXPECT_FALSE(cfg.satisfies_rp_floor());
}

TEST(SystemConfig, ServersEnumeration) {
  SystemConfig cfg = SystemConfig::uniform(4, 1);
  EXPECT_EQ(cfg.servers(), (std::vector<ProcessId>{0, 1, 2, 3}));
}

TEST(SystemConfig, FloorShrinksWithLargerClusters) {
  // With total scaling as n, the floor n/(2(n-f)) approaches 1/2 from
  // above as n grows with f fixed: donatable headroom grows.
  Weight f4 = SystemConfig::uniform(4, 1).floor();    // 4/6
  Weight f7 = SystemConfig::uniform(7, 1).floor();    // 7/12
  Weight f13 = SystemConfig::uniform(13, 1).floor();  // 13/24
  EXPECT_GT(f4, f7);
  EXPECT_GT(f7, f13);
  EXPECT_GT(f13, Weight(1, 2));
}

}  // namespace
}  // namespace wrs
