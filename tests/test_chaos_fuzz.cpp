// Seeded chaos-fuzz harness: many episodes of concurrent open-loop
// reads/writes + weight reassignments under a Nemesis fault schedule
// (partitions, drop/duplicate storms, reordering, slowdowns, rolling
// crashes + restarts-as-new-readers), each checked for
//
//   * atomicity           — check_atomicity over the recorded history;
//   * reassignment safety — every sampled per-server change set grows
//                           monotonically (subset of its successor), and
//                           after healing all live servers agree on the
//                           final change set / weights, with total weight
//                           conserved;
//   * progress            — operations completed and the reassignment
//                           state converged once faults healed.
//
// EVERY failure prints its seed and the Nemesis timeline, and
//
//   ./test_chaos_fuzz --seed=<N>
//
// replays exactly that episode on the deterministic simulator (the
// harness runs it twice and asserts the two runs are bit-for-bit
// identical). WRS_CHAOS_SEEDS=<count> widens the sweep — the `chaos`
// ctest label runs 20 seeds nightly on both runtimes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "api/cluster.h"
#include "storage/history.h"
#include "testing/nemesis.h"

namespace wrs {

std::optional<std::uint64_t> g_replay_seed;  // set by --seed=<N> in main

namespace {

std::size_t seed_count(std::size_t fallback) {
  const char* env = std::getenv("WRS_CHAOS_SEEDS");
  if (env == nullptr || *env == '\0') return fallback;
  long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

std::uint64_t sweep_seed(std::size_t i) { return 20260726u + 7919u * i; }

struct EpisodeOutcome {
  std::vector<std::string> violations;
  std::string fingerprint;  // history + final state (sim: replay-stable)
  std::size_t completed_ops = 0;
  std::size_t transfers_completed = 0;
  std::size_t transfers_effective = 0;
  std::vector<std::string> timeline;
};

std::string runtime_name(Runtime rt) {
  return rt == Runtime::kSim ? "sim" : "threads";
}

/// One chaos episode; everything about it derives from (rt, seed).
EpisodeOutcome run_episode(Runtime rt, std::uint64_t seed) {
  EpisodeOutcome out;
  Rng rng(seed);

  const std::uint32_t n = 4 + static_cast<std::uint32_t>(rng.below(3));
  const std::uint32_t f = (n - 1) / 2;
  const std::uint32_t crash_budget =
      1 + static_cast<std::uint32_t>(rng.below(f));
  const TimeNs horizon = ms(300);

  WorkloadParams wp;
  wp.num_ops = 40;
  wp.read_ratio = 0.5;
  wp.value_size = 8;
  wp.num_keys = 3;
  wp.target_ops_per_sec = 250;  // arrivals span ~160ms of the fault window
  wp.max_in_flight = 8;
  // Mix atomic snapshots into the stream: every cut is recorded and must
  // pass the checker's S1/S2 cut conditions alongside plain atomicity.
  wp.snapshot_every_ops = 10;
  wp.snapshot_keys = 3;
  wp.seed = rng();

  auto history = std::make_shared<HistoryRecorder>();
  Cluster c = Cluster::builder()
                  .servers(n)
                  .faults(f)
                  .clients(2)
                  .workload(wp)
                  .history(history)
                  .uniform_latency(us(200), ms(2))
                  .retry(ms(10))
                  .anti_entropy(ms(25))
                  .runtime(rt)
                  .seed(seed)
                  .build();

  // Concurrent reconfiguration: seeded random transfers across the window.
  testing::TransferStormParams tsp;
  tsp.horizon = horizon;
  tsp.attempts = 6;
  testing::TransferStorm storm(c, rng(), tsp);
  storm.unleash();

  // The fault schedule, drawn from the same master seed.
  testing::NemesisParams np;
  np.horizon = horizon;
  np.events = 8;
  np.crash_budget = crash_budget;
  np.reader_restarts = true;
  np.restart_workload = wp;
  np.restart_workload.num_ops = 8;
  np.restart_workload.read_ratio = 0.9;  // restarted processes are readers
  np.restart_workload.target_ops_per_sec = 400;
  np.restart_workload.max_in_flight = 4;
  testing::Nemesis nemesis(c, rng(), np);
  nemesis.unleash();
  out.timeline = nemesis.timeline();

  // Reassignment-safety probe: sample every server's change set through
  // the chaos (in the server's own context — race-free on threads).
  struct Samples {
    std::mutex mu;
    std::vector<std::vector<ChangeSet>> per_server;
  };
  auto samples = std::make_shared<Samples>();
  samples->per_server.resize(n);
  for (ProcessId s = 0; s < n; ++s) {
    ReassignNode* node = &c.server(s).node();
    for (TimeNs t = ms(30); t <= horizon + ms(60); t += ms(30)) {
      c.env().schedule(s, t, [samples, node, s] {
        std::lock_guard lock(samples->mu);
        samples->per_server[s].push_back(node->changes());
      });
    }
  }

  // The chaotic phase, plus a fault-free tail for retries to fire.
  c.run_for(horizon + ms(80));

  std::vector<ProcessId> live;
  for (ProcessId s = 0; s < n; ++s) {
    if (!c.is_crashed(s)) live.push_back(s);
  }

  // Post-heal convergence: anti-entropy repairs whatever the fault plane
  // destroyed; bounded rounds so a convergence bug fails loudly instead
  // of hanging.
  struct ServerState {
    ChangeSet changes;
    bool transfer_pending = false;
  };
  auto probe = [&c](ProcessId s) {
    Await<ServerState> aw = c.make_await<ServerState>();
    ReassignNode* node = &c.server(s).node();
    c.post(s, [node, aw] {
      aw.fulfill(ServerState{node->changes(), node->transfer_in_flight()});
    });
    return aw;
  };
  bool converged = false;
  std::vector<ChangeSet> final_sets;
  for (int round = 0; round < 80 && !converged; ++round) {
    c.run_for(ms(25));
    final_sets.clear();
    bool pending = false;
    bool missing = false;
    for (ProcessId s : live) {
      auto state = probe(s).try_get(seconds(10));
      if (!state.has_value()) {
        missing = true;
        break;
      }
      pending = pending || state->transfer_pending;
      final_sets.push_back(state->changes);
    }
    if (missing || pending || final_sets.empty()) continue;
    converged = true;
    for (std::size_t i = 1; i < final_sets.size(); ++i) {
      if (!(final_sets[i] == final_sets[0])) converged = false;
    }
  }
  if (!converged) {
    out.violations.push_back(
        "reassignment state did not converge on live servers after healing");
  }

  // Every workload client (original and restarted readers) must finish:
  // retries + healed links restore liveness. 30s per client (sim time is
  // free; real ops finish in well under a second) keeps a genuinely stuck
  // episode from eating the nightly sweep's whole ctest timeout.
  for (std::size_t k = 0; k < c.num_clients(); ++k) {
    if (!c.workload_done(k).try_get(seconds(30)).has_value()) {
      out.violations.push_back("workload client #" + std::to_string(k) +
                               " never finished (liveness)");
    } else {
      out.completed_ops += c.workload(k).completed();
      if (c.workload(k).snapshots_done() != c.workload(k).snapshots_issued()) {
        out.violations.push_back("workload client #" + std::to_string(k) +
                                 " lost a snapshot (liveness)");
      }
    }
  }
  out.transfers_completed = storm.completed();
  out.transfers_effective = storm.effective();

  // Let the deployment quiesce so every history record is closed.
  c.set_anti_entropy(0);
  c.quiesce(seconds(120));

  // --- safety checks --------------------------------------------------------
  std::vector<OpRecord> ops = history->completed();
  if (auto err = check_atomicity(ops)) {
    out.violations.push_back("atomicity: " + *err);
  }
  if (out.completed_ops == 0) {
    out.violations.push_back("no operation completed (progress)");
  }

  {
    std::lock_guard lock(samples->mu);
    for (ProcessId s = 0; s < n; ++s) {
      const auto& seq = samples->per_server[s];
      for (std::size_t i = 1; i < seq.size(); ++i) {
        if (!seq[i - 1].subset_of(seq[i])) {
          out.violations.push_back(
              "change set of " + process_name(s) +
              " shrank between samples " + std::to_string(i - 1) + " and " +
              std::to_string(i) + " (monotonicity)");
          break;
        }
      }
    }
  }
  if (converged && !final_sets.empty()) {
    if (!(final_sets[0].total() == c.config().initial_total())) {
      out.violations.push_back(
          "total weight not conserved: " + final_sets[0].total().str() +
          " != " + c.config().initial_total().str());
    }
  }

  // --- fingerprint (replay determinism) -------------------------------------
  std::ostringstream fp;
  fp << "n=" << n << " f=" << f << " live=" << live.size()
     << " ops=" << ops.size() << "\n";
  for (const OpRecord& op : ops) {
    fp << (op.kind == OpRecord::Kind::kRead ? "R" : "W") << " "
       << process_name(op.process) << " k=" << op.key << " [" << op.start
       << "," << op.end << "] " << op.tag.str() << " v=" << op.value;
    if (op.snap_id != 0) fp << " snap=" << op.snap_id;
    fp << "\n";
  }
  for (std::size_t i = 0; i < final_sets.size() && i < live.size(); ++i) {
    fp << process_name(live[i]) << ": " << final_sets[i].str() << "\n";
  }
  out.fingerprint = fp.str();
  return out;
}

/// Runs one seed, reports any violation with its replay instructions,
/// and returns the episode's outcome for aggregate assertions.
EpisodeOutcome expect_episode_clean(Runtime rt, std::uint64_t seed) {
  EpisodeOutcome out = run_episode(rt, seed);
  EXPECT_GT(out.timeline.size(), 1u);  // the nemesis really scheduled faults
  if (out.violations.empty()) return out;
  std::ostringstream os;
  os << "[chaos] FAILED seed=" << seed << " runtime=" << runtime_name(rt)
     << "\n[chaos] replay: ./test_chaos_fuzz --seed=" << seed << "\n";
  for (const auto& v : out.violations) os << "[chaos]   violation: " << v << "\n";
  os << "[chaos] nemesis timeline:\n";
  for (const auto& t : out.timeline) os << "[chaos]   " << t << "\n";
  ADD_FAILURE() << os.str();
  return out;
}

/// Sweeps `count` seeds and guards against the harness rotting into a
/// no-op: across the sweep, operations and transfer attempts must
/// actually have completed.
void sweep(Runtime rt, std::size_t count) {
  std::size_t total_ops = 0;
  std::size_t total_transfers = 0;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t seed = sweep_seed(i);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    EpisodeOutcome out = expect_episode_clean(rt, seed);
    total_ops += out.completed_ops;
    total_transfers += out.transfers_completed;
  }
  EXPECT_GT(total_ops, 0u);
  EXPECT_GT(total_transfers, 0u);
}

TEST(ChaosFuzz, SimSeedsStayAtomicUnderReconfiguration) {
  sweep(Runtime::kSim, seed_count(4));
}

TEST(ChaosFuzz, ThreadSeedsStayAtomicUnderReconfiguration) {
  sweep(Runtime::kThread, seed_count(2));
}

TEST(ChaosFuzz, ReplayIsBitForBitDeterministic) {
  // The --seed=<N> path: replay that exact episode on the simulator and
  // prove determinism by running it twice. Without the flag, a fixed
  // seed still pins the property in every run.
  std::uint64_t seed = g_replay_seed.value_or(sweep_seed(1));
  std::cout << "[chaos] replaying seed=" << seed << " on SimEnv\n";
  EpisodeOutcome first = run_episode(Runtime::kSim, seed);
  EpisodeOutcome second = run_episode(Runtime::kSim, seed);
  EXPECT_EQ(first.fingerprint, second.fingerprint)
      << "[chaos] seed=" << seed << " episodes diverged — the simulator or "
      << "a protocol consumed unseeded nondeterminism";
  EXPECT_EQ(first.violations, second.violations);
  EXPECT_EQ(first.completed_ops, second.completed_ops);
  if (g_replay_seed.has_value()) {
    std::cout << "[chaos] timeline:\n";
    for (const auto& t : first.timeline) std::cout << "[chaos]   " << t << "\n";
    for (const auto& v : first.violations) {
      std::cout << "[chaos] violation: " << v << "\n";
    }
    std::cout << "[chaos] " << first.completed_ops << " ops, "
              << first.transfers_completed << " transfers ("
              << first.transfers_effective << " effective)\n";
  }
}

}  // namespace
}  // namespace wrs

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg.rfind("--seed=", 0) == 0) {
      value = arg.substr(7);
    } else if (arg == "--seed" && i + 1 < argc) {
      value = argv[++i];
    } else {
      continue;
    }
    char* end = nullptr;
    std::uint64_t seed = std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || end == nullptr || *end != '\0') {
      std::cerr << "test_chaos_fuzz: bad --seed value \"" << value
                << "\" (expected a decimal integer)\n";
      return 2;  // fail fast: replaying seed 0 silently helps no one
    }
    wrs::g_replay_seed = seed;
  }
  if (wrs::g_replay_seed.has_value() &&
      ::testing::GTEST_FLAG(filter) == std::string("*")) {
    // --seed replays just that episode unless the caller asked for more.
    ::testing::GTEST_FLAG(filter) = "ChaosFuzz.ReplayIsBitForBitDeterministic";
  }
  return RUN_ALL_TESTS();
}
