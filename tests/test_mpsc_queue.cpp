// MpscRing semantics (the lock-free mailbox under ThreadEnv) plus the
// ThreadEnv behaviors layered on it: overflow to the locked spill ring
// when a burst outruns the ring, and crash-drop correctness while
// senders keep blasting. The multi-producer tests run under TSan in CI.

#include "runtime/mpsc_queue.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "runtime/msg_pool.h"
#include "runtime/thread_env.h"

namespace wrs {
namespace {

TEST(MpscRing, FifoSingleProducer) {
  MpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  int v = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v));
}

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo) {
  MpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  MpscRing<int> tiny(0);
  EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(MpscRing, FullRingRejectsWithoutConsuming) {
  MpscRing<std::unique_ptr<int>> ring(2);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(1)));
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(2)));

  // try_push is total: on a full ring the value must survive so the
  // caller can divert it to an overflow path.
  std::unique_ptr<int> survivor = std::make_unique<int>(3);
  EXPECT_FALSE(ring.try_push(std::move(survivor)));
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(*survivor, 3);

  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(*out, 1);
  EXPECT_TRUE(ring.try_push(std::move(survivor)));
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(*out, 2);
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(*out, 3);
}

TEST(MpscRing, PopReleasesResourcesImmediately) {
  MpscRing<std::shared_ptr<int>> ring(4);
  std::shared_ptr<int> tracked = std::make_shared<int>(42);
  std::weak_ptr<int> weak = tracked;
  EXPECT_TRUE(ring.try_push(std::move(tracked)));
  std::shared_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  out.reset();
  // The cell must not keep a ref until the ring laps back around.
  EXPECT_TRUE(weak.expired());
}

TEST(MpscRing, MultiProducerEveryItemArrivesOncePerProducerFifo) {
  constexpr unsigned kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20'000;
  MpscRing<std::uint64_t> ring(64);  // small: forces full-ring retries

  std::vector<std::thread> producers;
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        std::uint64_t item = (static_cast<std::uint64_t>(p) << 32) | i;
        while (!ring.try_push(std::move(item))) std::this_thread::yield();
      }
    });
  }

  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::uint64_t popped = 0;
  std::uint64_t v = 0;
  while (popped < kProducers * kPerProducer) {
    if (!ring.try_pop(v)) {
      std::this_thread::yield();
      continue;
    }
    ++popped;
    const unsigned p = static_cast<unsigned>(v >> 32);
    const std::uint64_t seq = v & 0xffffffffu;
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(seq, next_seq[p]) << "producer " << p << " reordered";
    ++next_seq[p];
  }
  for (std::thread& t : producers) t.join();
  EXPECT_FALSE(ring.try_pop(v));
}

// --- ThreadEnv layered behaviors -------------------------------------------

class SeqMsg : public MessageBase<SeqMsg> {
 public:
  SeqMsg(unsigned sender, std::uint64_t seq) : sender_(sender), seq_(seq) {}
  unsigned sender() const { return sender_; }
  std::uint64_t seq() const { return seq_; }
  std::string type_name() const override { return "SEQ"; }
  std::size_t wire_size() const override { return kHeaderBytes + 12; }

 private:
  unsigned sender_;
  std::uint64_t seq_;
};

struct SeqSink : Process {
  explicit SeqSink(unsigned senders) : next(senders, 0) {}
  void on_message(ProcessId, const Message& msg) override {
    const auto* m = msg_cast<SeqMsg>(msg);
    if (m == nullptr) return;
    if (m->seq() != next[m->sender()]) fifo_broken.store(true);
    next[m->sender()] = m->seq() + 1;
    delivered.fetch_add(1, std::memory_order_release);
  }
  std::vector<std::uint64_t> next;
  std::atomic<std::uint64_t> delivered{0};
  std::atomic<bool> fifo_broken{false};
};

TEST(ThreadEnvMailbox, OverflowPreservesEveryMessageAndPerSenderFifo) {
  // mailbox_slots=2: nearly every enqueue lands in the locked overflow
  // ring, and delivery keeps interleaving ring and spill batches.
  constexpr unsigned kSenders = 4;
  constexpr std::uint64_t kPerSender = 5'000;
  ThreadEnv env(nullptr, /*seed=*/1, /*mailbox_slots=*/2);
  SeqSink sink(kSenders);
  env.register_process(0, &sink);
  env.start();

  std::vector<std::thread> senders;
  for (unsigned s = 0; s < kSenders; ++s) {
    senders.emplace_back([&env, s] {
      const ProcessId self = client_id(s);
      for (std::uint64_t i = 0; i < kPerSender; ++i) {
        env.send(self, 0, make_msg<SeqMsg>(s, i));
      }
    });
  }
  for (std::thread& t : senders) t.join();

  const std::uint64_t want = kSenders * kPerSender;
  for (int spin = 0; spin < 20'000 && sink.delivered.load() < want; ++spin) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  env.stop();
  EXPECT_EQ(sink.delivered.load(), want);
  EXPECT_FALSE(sink.fifo_broken.load());
}

TEST(ThreadEnvMailbox, CrashMidBurstDropsCleanlyUnderSeededChaos) {
  // Seeded nemesis: senders blast a tiny mailbox while the main thread
  // crashes the receiver at a random point, then restarts it (fresh
  // registration) and blasts again. Invariants: no deadlock, per-sender
  // FIFO among what IS delivered (drops only cut suffixes — each
  // sender's delivered seqs stay strictly increasing), and after the
  // final crash the delivered count freezes.
  std::mt19937_64 rng(20260808);
  for (int round = 0; round < 5; ++round) {
    constexpr unsigned kSenders = 3;
    constexpr std::uint64_t kPerSender = 4'000;
    ThreadEnv env(nullptr, /*seed=*/7, /*mailbox_slots=*/4);

    struct ChaosSink : Process {
      std::array<std::atomic<std::int64_t>, 3> last{};
      std::atomic<std::uint64_t> delivered{0};
      std::atomic<bool> order_broken{false};
      ChaosSink() {
        for (auto& l : last) l.store(-1);
      }
      void on_message(ProcessId, const Message& msg) override {
        const auto* m = msg_cast<SeqMsg>(msg);
        if (m == nullptr) return;
        const auto seq = static_cast<std::int64_t>(m->seq());
        if (seq <= last[m->sender()].load()) order_broken.store(true);
        last[m->sender()].store(seq);
        delivered.fetch_add(1);
      }
    } sink;

    env.register_process(0, &sink);
    env.start();

    std::atomic<bool> stop_senders{false};
    std::vector<std::thread> senders;
    for (unsigned s = 0; s < kSenders; ++s) {
      senders.emplace_back([&, s] {
        const ProcessId self = client_id(s);
        for (std::uint64_t i = 0; i < kPerSender; ++i) {
          if (stop_senders.load(std::memory_order_relaxed)) break;
          env.send(self, 0, make_msg<SeqMsg>(s, i));
        }
      });
    }

    // Crash at a random point inside the burst.
    std::this_thread::sleep_for(
        std::chrono::microseconds(rng() % 3000));
    env.crash(0);
    stop_senders.store(true);
    for (std::thread& t : senders) t.join();

    // Sends to a crashed process are dropped at enqueue; whatever was
    // in flight is discarded. The count must settle (no late trickle).
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const std::uint64_t frozen = sink.delivered.load();
    for (unsigned s = 0; s < kSenders; ++s) {
      env.send(client_id(s), 0, make_msg<SeqMsg>(s, 999'999));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(sink.delivered.load(), frozen) << "delivery after crash";
    EXPECT_FALSE(sink.order_broken.load());
    EXPECT_LE(frozen, kSenders * kPerSender);
    env.stop();
  }
}

}  // namespace
}  // namespace wrs
