#include "core/change_set.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace wrs {
namespace {

Change mk(ProcessId issuer, std::uint64_t counter, ProcessId target,
          Weight delta) {
  return Change(issuer, counter, target, std::move(delta));
}

TEST(Change, IdentityAndAccessors) {
  Change c = mk(1, 2, 3, Weight(1, 2));
  EXPECT_EQ(c.issuer(), 1u);
  EXPECT_EQ(c.counter(), 2u);
  EXPECT_EQ(c.target(), 3u);
  EXPECT_EQ(c.delta, Weight(1, 2));
  EXPECT_FALSE(c.is_null());
  EXPECT_TRUE(mk(1, 2, 3, Weight(0)).is_null());
}

TEST(ChangeSet, InitialFromWeights) {
  ChangeSet cs = ChangeSet::initial(WeightMap::uniform(3));
  EXPECT_EQ(cs.size(), 3u);
  EXPECT_EQ(cs.weight_of(0), Weight(1));
  EXPECT_EQ(cs.total(), Weight(3));
  // Initial changes use the reserved counter.
  EXPECT_TRUE(cs.contains(ChangeId{0, kInitialChangeCounter, 0}));
}

TEST(ChangeSet, AddIsIdempotent) {
  ChangeSet cs;
  Change c = mk(0, 2, 1, Weight(1, 4));
  EXPECT_TRUE(cs.add(c));
  EXPECT_FALSE(cs.add(c));
  EXPECT_EQ(cs.size(), 1u);
}

TEST(ChangeSet, ConflictingDeltaThrows) {
  ChangeSet cs;
  cs.add(mk(0, 2, 1, Weight(1, 4)));
  EXPECT_THROW(cs.add(mk(0, 2, 1, Weight(1, 2))), std::logic_error);
}

TEST(ChangeSet, WeightOfSumsTargetChanges) {
  ChangeSet cs = ChangeSet::initial(WeightMap::uniform(3));
  cs.add(mk(0, 2, 0, -Weight(1, 4)));
  cs.add(mk(0, 2, 1, Weight(1, 4)));
  EXPECT_EQ(cs.weight_of(0), Weight(3, 4));
  EXPECT_EQ(cs.weight_of(1), Weight(5, 4));
  EXPECT_EQ(cs.weight_of(2), Weight(1));
  EXPECT_EQ(cs.total(), Weight(3));  // pairwise: total invariant
}

TEST(ChangeSet, SubsetForFiltersByTarget) {
  ChangeSet cs = ChangeSet::initial(WeightMap::uniform(3));
  cs.add(mk(0, 2, 1, Weight(1, 4)));
  ChangeSet sub = cs.subset_for(1);
  EXPECT_EQ(sub.size(), 2u);  // initial change + transfer credit
  for (const Change& c : sub.all()) EXPECT_EQ(c.target(), 1u);
}

TEST(ChangeSet, CountPair) {
  ChangeSet cs;
  cs.add(mk(0, 2, 0, -Weight(1, 4)));
  EXPECT_EQ(cs.count_pair(0, 2), 1u);
  cs.add(mk(0, 2, 1, Weight(1, 4)));
  EXPECT_EQ(cs.count_pair(0, 2), 2u);
  EXPECT_EQ(cs.count_pair(0, 3), 0u);
}

TEST(ChangeSet, JoinCountsNewOnly) {
  ChangeSet a = ChangeSet::initial(WeightMap::uniform(2));
  ChangeSet b = a;
  b.add(mk(0, 2, 1, Weight(1, 8)));
  EXPECT_EQ(a.join(b), 1u);
  EXPECT_EQ(a.join(b), 0u);
  EXPECT_EQ(a, b);
}

TEST(ChangeSet, SubsetOf) {
  ChangeSet a = ChangeSet::initial(WeightMap::uniform(2));
  ChangeSet b = a;
  EXPECT_TRUE(a.subset_of(b));
  b.add(mk(0, 2, 1, Weight(1, 8)));
  EXPECT_TRUE(a.subset_of(b));
  EXPECT_FALSE(b.subset_of(a));
}

TEST(ChangeSet, MissingFrom) {
  ChangeSet a = ChangeSet::initial(WeightMap::uniform(2));
  ChangeSet b = a;
  Change extra = mk(1, 2, 0, Weight(1, 8));
  b.add(extra);
  auto missing = a.missing_from(b);
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0], extra);
  EXPECT_TRUE(b.missing_from(a).empty());
}

TEST(ChangeSet, ToWeightMap) {
  ChangeSet cs = ChangeSet::initial(WeightMap::uniform(3));
  cs.add(mk(2, 2, 2, -Weight(1, 10)));
  cs.add(mk(2, 2, 0, Weight(1, 10)));
  WeightMap wm = cs.to_weight_map({0, 1, 2});
  EXPECT_EQ(wm.of(0), Weight(11, 10));
  EXPECT_EQ(wm.of(1), Weight(1));
  EXPECT_EQ(wm.of(2), Weight(9, 10));
}

TEST(ChangeSet, WireSizeGrowsLinearly) {
  ChangeSet cs;
  std::size_t base = cs.wire_size();
  cs.add(mk(0, 2, 1, Weight(1)));
  std::size_t one = cs.wire_size();
  cs.add(mk(0, 3, 1, Weight(1)));
  EXPECT_EQ(cs.wire_size() - one, one - base);
}

// --- Property tests: join is a semilattice ----------------------------------

class ChangeSetLatticeTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  ChangeSet random_set(Rng& rng, std::size_t max_changes = 20) {
    ChangeSet cs;
    std::size_t n = rng.below(max_changes);
    for (std::size_t i = 0; i < n; ++i) {
      auto issuer = static_cast<ProcessId>(rng.below(4));
      auto counter = 2 + rng.below(5);
      auto target = static_cast<ProcessId>(rng.below(4));
      // Delta determined by identity so duplicate ids never conflict.
      auto delta = Weight(
          static_cast<std::int64_t>(issuer + counter + target) - 4, 8);
      cs.add(Change(issuer, counter, target, delta));
    }
    return cs;
  }
};

TEST_P(ChangeSetLatticeTest, JoinLaws) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 100; ++iter) {
    ChangeSet a = random_set(rng);
    ChangeSet b = random_set(rng);
    ChangeSet c = random_set(rng);

    // Idempotence: a ∪ a = a.
    ChangeSet aa = a;
    aa.join(a);
    EXPECT_EQ(aa, a);

    // Commutativity: a ∪ b = b ∪ a.
    ChangeSet ab = a;
    ab.join(b);
    ChangeSet ba = b;
    ba.join(a);
    EXPECT_EQ(ab, ba);

    // Associativity: (a ∪ b) ∪ c = a ∪ (b ∪ c).
    ChangeSet ab_c = ab;
    ab_c.join(c);
    ChangeSet bc = b;
    bc.join(c);
    ChangeSet a_bc = a;
    a_bc.join(bc);
    EXPECT_EQ(ab_c, a_bc);

    // Monotonicity: a ⊆ a ∪ b.
    EXPECT_TRUE(a.subset_of(ab));
    EXPECT_TRUE(b.subset_of(ab));
  }
}

TEST_P(ChangeSetLatticeTest, WeightIsAdditiveOverJoin) {
  Rng rng(GetParam() ^ 0xabcdef);
  for (int iter = 0; iter < 100; ++iter) {
    ChangeSet a = random_set(rng);
    ChangeSet b = random_set(rng);
    ChangeSet joined = a;
    joined.join(b);
    // weight_of(target) over the join equals the sum over the union of
    // unique changes — recompute by brute force.
    for (ProcessId t = 0; t < 4; ++t) {
      Weight expect(0);
      for (const Change& c : joined.all()) {
        if (c.target() == t) expect += c.delta;
      }
      EXPECT_EQ(joined.weight_of(t), expect);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChangeSetLatticeTest,
                         ::testing::Values(21, 22, 23, 24));

}  // namespace
}  // namespace wrs
