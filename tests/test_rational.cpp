#include "common/rational.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.h"

namespace wrs {
namespace {

TEST(Rational, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, NormalizesOnConstruction) {
  Rational r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
}

TEST(Rational, NormalizesSign) {
  Rational r(3, -4);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 4);
  Rational q(-3, -4);
  EXPECT_EQ(q.num(), 3);
  EXPECT_EQ(q.den(), 4);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, ImplicitFromInt) {
  Rational r = 7;
  EXPECT_EQ(r.num(), 7);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, Addition) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) + Rational(-1, 2), Rational(0));
}

TEST(Rational, Subtraction) {
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
}

TEST(Rational, Multiplication) {
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
}

TEST(Rational, Division) {
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_THROW(Rational(1) / Rational(0), std::invalid_argument);
}

TEST(Rational, Negation) {
  EXPECT_EQ(-Rational(1, 2), Rational(-1, 2));
  EXPECT_EQ(-Rational(0), Rational(0));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(2, 3), Rational(1, 2));
  EXPECT_LE(Rational(1, 2), Rational(2, 4));
  EXPECT_EQ(Rational(1, 2), Rational(2, 4));
  EXPECT_LT(Rational(-1, 2), Rational(0));
}

TEST(Rational, StrictBoundaryComparisonIsExact) {
  // The reductions place weights exactly on the Integrity boundary; a
  // double representation of n/2 vs sum of (n-1)/(2f) + 0.5 would be
  // unreliable. Exact rationals make it crisp: for n=4, f=1,
  // W_F = 3/2 + 1/2 = 2 which must NOT be < 4.5/... here simply:
  Rational wf = Rational(3, 2) + Rational(1, 2);
  Rational half_total = Rational(4, 2);
  EXPECT_FALSE(wf < half_total);
  EXPECT_EQ(wf, half_total);
}

TEST(Rational, ParseAndStr) {
  EXPECT_EQ(Rational::parse("3/4"), Rational(3, 4));
  EXPECT_EQ(Rational::parse("-3/4"), Rational(-3, 4));
  EXPECT_EQ(Rational::parse("5"), Rational(5));
  EXPECT_EQ(Rational(3, 4).str(), "3/4");
  EXPECT_EQ(Rational(5).str(), "5");
  std::ostringstream os;
  os << Rational(7, 2);
  EXPECT_EQ(os.str(), "7/2");
}

TEST(Rational, FromDouble) {
  EXPECT_EQ(Rational::from_double(0.5), Rational(1, 2));
  EXPECT_EQ(Rational::from_double(0.4), Rational(2, 5));
  EXPECT_EQ(Rational::from_double(-1.25), Rational(-5, 4));
  EXPECT_THROW(Rational::from_double(std::nan("")), std::invalid_argument);
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 2).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(-3, 4).to_double(), -0.75);
}

TEST(Rational, AbsAndSigns) {
  EXPECT_EQ(Rational(-1, 2).abs(), Rational(1, 2));
  EXPECT_TRUE(Rational(-1, 2).is_negative());
  EXPECT_TRUE(Rational(1, 2).is_positive());
  EXPECT_FALSE(Rational(0).is_positive());
  EXPECT_FALSE(Rational(0).is_negative());
}

TEST(Rational, OverflowDetected) {
  Rational big(std::numeric_limits<std::int64_t>::max(), 1);
  EXPECT_THROW(big * big, RationalOverflow);
  EXPECT_THROW(big + big, RationalOverflow);
}

TEST(Rational, LargeIntermediatesReduce) {
  // Intermediate products exceed int64 but the reduced result fits.
  Rational a(1, 1'000'000'007);
  Rational b(1'000'000'007, 3);
  EXPECT_EQ(a * b, Rational(1, 3));
}

TEST(Rational, CompoundAssignment) {
  Rational r(1, 2);
  r += Rational(1, 4);
  EXPECT_EQ(r, Rational(3, 4));
  r -= Rational(1, 2);
  EXPECT_EQ(r, Rational(1, 4));
  r *= Rational(4);
  EXPECT_EQ(r, Rational(1));
  r /= Rational(3);
  EXPECT_EQ(r, Rational(1, 3));
}

// --- checked_add / checked_mul fast paths ----------------------------------

TEST(RationalChecked, AgreesWithThrowingOperatorsInRange) {
  Rng rng(4242);
  for (int i = 0; i < 500; ++i) {
    Rational a(static_cast<std::int64_t>(rng.below(2001)) - 1000,
               static_cast<std::int64_t>(rng.below(99)) + 1);
    Rational b(static_cast<std::int64_t>(rng.below(2001)) - 1000,
               static_cast<std::int64_t>(rng.below(99)) + 1);
    auto sum = Rational::checked_add(a, b);
    auto prod = Rational::checked_mul(a, b);
    ASSERT_TRUE(sum.has_value());
    ASSERT_TRUE(prod.has_value());
    EXPECT_EQ(*sum, a + b);
    EXPECT_EQ(*prod, a * b);
  }
}

TEST(RationalChecked, OverflowYieldsNulloptWhereOperatorsThrow) {
  Rational big(std::numeric_limits<std::int64_t>::max(), 1);
  EXPECT_EQ(Rational::checked_add(big, big), std::nullopt);
  EXPECT_EQ(Rational::checked_mul(big, big), std::nullopt);
  EXPECT_THROW(big + big, RationalOverflow);
  EXPECT_THROW(big * big, RationalOverflow);

  Rational small(std::numeric_limits<std::int64_t>::min() + 1, 1);
  EXPECT_EQ(Rational::checked_add(small, small), std::nullopt);
  EXPECT_EQ(Rational::checked_mul(small, Rational(2)), std::nullopt);
}

TEST(RationalChecked, LargeIntermediatesStillReduce) {
  // Intermediates exceed int64 but the reduced results fit — the checked
  // path must not reject them.
  Rational a(1, 1'000'000'007);
  Rational b(1'000'000'007, 3);
  EXPECT_EQ(Rational::checked_mul(a, b), Rational(1, 3));
  Rational c(std::numeric_limits<std::int64_t>::max(), 2);
  EXPECT_EQ(Rational::checked_add(c, c),
            Rational(std::numeric_limits<std::int64_t>::max(), 1));
}

TEST(RationalChecked, NearBoundaryResultsSurvive) {
  Rational max64(std::numeric_limits<std::int64_t>::max(), 1);
  EXPECT_EQ(Rational::checked_add(max64, Rational(0)), max64);
  EXPECT_EQ(Rational::checked_mul(max64, Rational(1)), max64);
  EXPECT_EQ(Rational::checked_add(max64, Rational(-1)),
            Rational(std::numeric_limits<std::int64_t>::max() - 1, 1));
}

// --- boundary comparisons at the C2 floor ----------------------------------

TEST(RationalBoundary, C2CheckIsExactAtTheRpIntegrityFloor) {
  // Algorithm 4's C2 guard: a transfer of delta is effective iff
  // weight > delta + W_{S,0}/(2(n-f)). The interesting cases sit EXACTLY
  // on the boundary, where doubles would wobble. n=7, f=2 (Example 2):
  // floor = 7/10.
  Rational floor(7, 10);
  Rational weight(1);
  // delta = 3/10 puts weight exactly at delta + floor: must NOT pass.
  EXPECT_FALSE(weight > Rational(3, 10) + floor);
  // One part in a million below the boundary delta: passes.
  Rational eps(1, 1'000'000);
  EXPECT_TRUE(weight > (Rational(3, 10) - eps) + floor);
  // One above: fails.
  EXPECT_FALSE(weight > (Rational(3, 10) + eps) + floor);
  // The same comparisons via the checked fast path.
  EXPECT_FALSE(weight > *Rational::checked_add(Rational(3, 10), floor));
}

TEST(RationalBoundary, FloorArithmeticMatchesAcrossEquivalentForms) {
  // W_{S,0}/(2(n-f)) computed three ways must compare equal, not merely
  // close: quorum checks use strict inequalities against it.
  Rational total(4);
  Rational n_minus_f(3);
  Rational a = total / (Rational(2) * n_minus_f);
  Rational b = (total / n_minus_f) / Rational(2);
  Rational c = total * Rational(1, 6);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
  EXPECT_EQ(a, Rational(2, 3));
  EXPECT_FALSE(a < c);
  EXPECT_FALSE(a > c);
}

// --- parse / from_double round-trips ---------------------------------------

TEST(RationalRoundTrip, ParseOfStrIsIdentity) {
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    Rational r(static_cast<std::int64_t>(rng.below(200001)) - 100000,
               static_cast<std::int64_t>(rng.below(9999)) + 1);
    EXPECT_EQ(Rational::parse(r.str()), r);
  }
  // Extremes survive too.
  Rational max64(std::numeric_limits<std::int64_t>::max(), 1);
  EXPECT_EQ(Rational::parse(max64.str()), max64);
}

TEST(RationalRoundTrip, FromDoubleOfToDoubleIsIdentityForMonitorWeights) {
  // The monitoring loop converts measured doubles to weights with
  // denominator 1e6; any rational with a denominator dividing 1e6
  // round-trips exactly.
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    Rational r(static_cast<std::int64_t>(rng.below(2'000'001)) - 1'000'000,
               1'000'000);
    EXPECT_EQ(Rational::from_double(r.to_double()), r);
  }
  EXPECT_EQ(Rational::from_double(Rational(7, 10).to_double()),
            Rational(7, 10));
  EXPECT_EQ(Rational::from_double(Rational(-5, 8).to_double()),
            Rational(-5, 8));
}

// --- Property-based: field laws over random rationals ----------------------

class RationalPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Rational random_rational(Rng& rng) {
    auto num = static_cast<std::int64_t>(rng.below(20001)) - 10000;
    auto den = static_cast<std::int64_t>(rng.below(999)) + 1;
    return Rational(num, den);
  }
};

TEST_P(RationalPropertyTest, FieldLaws) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Rational a = random_rational(rng);
    Rational b = random_rational(rng);
    Rational c = random_rational(rng);
    // Commutativity.
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    // Associativity.
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    // Distributivity.
    EXPECT_EQ(a * (b + c), a * b + a * c);
    // Identities and inverses.
    EXPECT_EQ(a + Rational(0), a);
    EXPECT_EQ(a * Rational(1), a);
    EXPECT_EQ(a - a, Rational(0));
    if (!b.is_zero()) {
      EXPECT_EQ(a / b * b, a);
    }
  }
}

TEST_P(RationalPropertyTest, OrderingConsistentWithDouble) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Rational a = random_rational(rng);
    Rational b = random_rational(rng);
    if (a < b) {
      EXPECT_LE(a.to_double(), b.to_double());
    } else if (b < a) {
      EXPECT_LE(b.to_double(), a.to_double());
    } else {
      EXPECT_DOUBLE_EQ(a.to_double(), b.to_double());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace wrs
