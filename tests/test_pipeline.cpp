// The pipelined multi-op client API: operation multiplexing in
// AbdClient, Await composition (then / when_all / poll), batch issue
// through ClientHandle, and the open-loop workload mode — all on BOTH
// runtime substrates.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "api/cluster.h"
#include "storage/history.h"

namespace wrs {
namespace {

class PipelineOnBothRuntimes : public ::testing::TestWithParam<Runtime> {};

/// Reads a client-side counter from the client's own execution context —
/// the race-free way to observe AbdClient state on the thread runtime.
std::size_t max_in_flight_of(Cluster& c, const ClientHandle& h) {
  Await<std::size_t> aw = c.make_await<std::size_t>();
  AbdClient* abd = &h.abd();
  c.post(h.id(), [abd, aw] { aw.fulfill(abd->max_in_flight()); });
  return aw.get(seconds(30));
}

TEST_P(PipelineOnBothRuntimes, SingleClientSustainsManyConcurrentOps) {
  Cluster c = Cluster::builder()
                  .servers(5)
                  .faults(1)
                  .uniform_latency(ms(1), ms(5))
                  .runtime(GetParam())
                  .seed(91)
                  .build();

  // One batch, twelve distinct keys: the whole batch is issued into the
  // client's context before any reply is processed, so all twelve quorum
  // rounds overlap.
  std::vector<std::pair<RegisterKey, Value>> puts;
  for (int i = 0; i < 12; ++i) {
    std::string n = std::to_string(i);
    puts.emplace_back("key" + n, "v" + n);
  }
  std::vector<Tag> tags =
      when_all(c.client().write_batch(puts)).get(seconds(60));
  ASSERT_EQ(tags.size(), 12u);
  for (const Tag& t : tags) EXPECT_EQ(t.pid, c.client().id());

  // The acceptance bar: >= 8 operations genuinely in flight at once.
  EXPECT_GE(max_in_flight_of(c, c.client()), 8u);

  // Batch read-back fans in to the written values, in input order.
  std::vector<RegisterKey> keys;
  for (const auto& [k, _] : puts) keys.push_back(k);
  std::vector<TaggedValue> got =
      when_all(c.client().read_batch(keys)).get(seconds(60));
  ASSERT_EQ(got.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    std::string expected = "v";
    expected += std::to_string(i);
    EXPECT_EQ(got[i].value, expected);
    EXPECT_EQ(got[i].tag, tags[i]);
  }
}

TEST_P(PipelineOnBothRuntimes, ThenAndHeterogeneousWhenAllCompose) {
  Cluster c = Cluster::builder()
                  .servers(4)
                  .faults(1)
                  .uniform_latency(us(500), ms(3))
                  .runtime(GetParam())
                  .seed(92)
                  .build();

  // then() chains a continuation off a write's tag without blocking.
  Await<std::string> chained =
      c.client().write("chain", "payload").then([](const Tag& t) {
        return "ts=" + std::to_string(t.ts);
      });
  EXPECT_EQ(chained.get(seconds(30)), "ts=1");

  // Heterogeneous fan-in: a write's Tag alongside a read's TaggedValue.
  auto [tag, tv] = when_all(c.client().write("other", "x"),
                            c.client().read("chain"))
                       .get(seconds(30));
  EXPECT_EQ(tag.pid, c.client().id());
  EXPECT_EQ(tv.value, "payload");

  // A void continuation stays awaitable (Await<bool>).
  bool side_effect = false;
  Await<bool> done = c.client().read("chain").then(
      [&side_effect](const TaggedValue&) { side_effect = true; });
  EXPECT_TRUE(done.get(seconds(30)));
  EXPECT_TRUE(side_effect);
}

TEST_P(PipelineOnBothRuntimes, OpenLoopMultiKeyWorkloadStaysAtomicPerKey) {
  auto history = std::make_shared<HistoryRecorder>();
  WorkloadParams wp;
  wp.num_ops = 40;
  wp.read_ratio = 0.5;
  wp.value_size = 8;
  wp.num_keys = 4;                // >= 4 keys ...
  wp.target_ops_per_sec = 2000;   // ... open loop, one arrival per 0.5ms
  wp.max_in_flight = 16;

  Cluster c = Cluster::builder()
                  .servers(5)
                  .faults(1)
                  .clients(4)  // ... >= 4 clients, pipelined
                  .uniform_latency(us(200), ms(2))
                  .runtime(GetParam())
                  .seed(93)
                  .workload(wp)
                  .history(history)
                  .build();

  std::size_t total_completed = 0;
  for (std::size_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(c.workload_done(k).try_get(seconds(120)).has_value())
        << "workload client #" << k << " did not finish";
  }
  c.quiesce();
  bool any_overlap = false;
  for (std::size_t k = 0; k < 4; ++k) {
    WorkloadClient& w = c.workload(k);
    EXPECT_EQ(w.completed() + w.shed(), wp.num_ops);
    EXPECT_GT(w.completed(), 0u);
    EXPECT_GT(w.achieved_ops_per_sec(), 0.0);
    if (w.max_in_flight_seen() >= 2) any_overlap = true;
    total_completed += w.completed();
  }
  // Arrivals come 0.5ms apart while ops need at least one ~0.4-4ms quorum
  // round trip: some client must have overlapped operations.
  EXPECT_TRUE(any_overlap);

  // Coordinated-omission audit: every completed op also recorded a
  // corrected latency from its intended arrival tick. The intended start
  // never postdates the actual issue, so corrected >= raw at every
  // percentile (equal on the simulator, where arrivals fire exactly on
  // schedule).
  for (std::size_t k = 0; k < 4; ++k) {
    WorkloadClient& w = c.workload(k);
    EXPECT_EQ(w.corrected_op_latency().count(), w.op_latency().count());
    EXPECT_GE(w.corrected_op_latency().percentile(99),
              w.op_latency().percentile(99));
    if (GetParam() == Runtime::kSim) {
      EXPECT_EQ(w.corrected_op_latency().percentile(50),
                w.op_latency().percentile(50));
    }
  }

  // Every per-key projection of the pipelined multi-client history is an
  // atomic single-register history.
  auto ops = history->completed();
  EXPECT_EQ(ops.size(), total_completed);
  std::set<RegisterKey> keys_seen;
  for (const auto& op : ops) keys_seen.insert(op.key);
  EXPECT_GT(keys_seen.size(), 1u);
  auto err = check_atomicity(ops);
  EXPECT_FALSE(err.has_value()) << *err;
}

TEST_P(PipelineOnBothRuntimes, OpenLoopSingleKeySerializesButCompletes) {
  // Degenerate open loop on one key: the per-key FIFO serializes every
  // op, the window fills, arrivals shed — but the run still terminates
  // and the history stays atomic.
  auto history = std::make_shared<HistoryRecorder>();
  WorkloadParams wp;
  wp.num_ops = 30;
  wp.num_keys = 1;
  wp.target_ops_per_sec = 5000;
  wp.max_in_flight = 4;
  wp.value_size = 8;

  Cluster c = Cluster::builder()
                  .servers(4)
                  .faults(1)
                  .uniform_latency(us(200), ms(1))
                  .runtime(GetParam())
                  .seed(94)
                  .workload(wp)
                  .history(history)
                  .build();

  ASSERT_TRUE(c.workload_done().try_get(seconds(120)).has_value());
  c.quiesce();
  WorkloadClient& w = c.workload();
  EXPECT_EQ(w.completed() + w.shed(), wp.num_ops);
  EXPECT_GT(w.completed(), 0u);
  auto err = check_atomicity(history->completed());
  EXPECT_FALSE(err.has_value()) << *err;
}

TEST_P(PipelineOnBothRuntimes, OpenLoopZeroOpsFinishesImmediately) {
  WorkloadParams wp;
  wp.num_ops = 0;
  wp.target_ops_per_sec = 100;

  Cluster c = Cluster::builder()
                  .servers(4)
                  .faults(1)
                  .uniform_latency(us(200), ms(1))
                  .runtime(GetParam())
                  .seed(95)
                  .workload(wp)
                  .build();
  ASSERT_TRUE(c.workload_done().try_get(seconds(30)).has_value());
  EXPECT_EQ(c.workload().completed(), 0u);
}

INSTANTIATE_TEST_SUITE_P(BothRuntimes, PipelineOnBothRuntimes,
                         ::testing::Values(Runtime::kSim, Runtime::kThread),
                         [](const auto& info) {
                           return info.param == Runtime::kSim ? "Sim"
                                                              : "Threads";
                         });

// --- Await primitives (no cluster needed) -----------------------------------

TEST(Await, PollAndReadyAreNonBlocking) {
  Await<int> aw;
  EXPECT_FALSE(aw.ready());
  EXPECT_FALSE(aw.poll().has_value());
  aw.fulfill(7);
  EXPECT_TRUE(aw.ready());
  EXPECT_EQ(aw.poll().value(), 7);
  aw.fulfill(9);  // first fulfill wins
  EXPECT_EQ(aw.get(), 7);
}

TEST(Await, ThenOnAlreadyFulfilledRunsImmediately) {
  Await<int> aw;
  aw.fulfill(3);
  Await<int> doubled = aw.then([](const int& v) { return v * 2; });
  EXPECT_EQ(doubled.poll().value(), 6);
}

TEST(Await, WhenAllVectorPreservesOrderAndHandlesEmpty) {
  std::vector<Await<int>> parts(3);
  Await<std::vector<int>> all = when_all(parts);
  EXPECT_FALSE(all.ready());
  parts[2].fulfill(30);
  parts[0].fulfill(10);
  EXPECT_FALSE(all.ready());
  parts[1].fulfill(20);
  ASSERT_TRUE(all.ready());
  EXPECT_EQ(all.get(), (std::vector<int>{10, 20, 30}));

  EXPECT_EQ(when_all(std::vector<Await<int>>{}).get(),
            std::vector<int>{});
}

TEST(Await, WhenAllTupleMixesTypes) {
  Await<int> a;
  Await<std::string> b;
  Await<std::tuple<int, std::string>> both = when_all(a, b);
  b.fulfill("hi");
  EXPECT_FALSE(both.ready());
  a.fulfill(4);
  auto [x, s] = both.get();
  EXPECT_EQ(x, 4);
  EXPECT_EQ(s, "hi");
}

}  // namespace
}  // namespace wrs
