#include "runtime/thread_env.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "runtime/sync.h"

namespace wrs {
namespace {

class NoteMsg : public MessageBase<NoteMsg> {
 public:
  explicit NoteMsg(int v) : v_(v) {}
  int value() const { return v_; }
  std::string type_name() const override { return "NOTE"; }
  std::size_t wire_size() const override { return kHeaderBytes + 4; }

 private:
  int v_;
};

class CountingProcess : public Process {
 public:
  void on_message(ProcessId, const Message& msg) override {
    const auto* note = msg_cast<NoteMsg>(msg);
    if (note == nullptr) return;
    // Detect concurrent handler execution (must never happen).
    int expected = 0;
    if (!in_handler.compare_exchange_strong(expected, 1)) {
      overlap.store(true);
    }
    sum += note->value();
    ++count;
    in_handler.store(0);
  }
  std::atomic<int> in_handler{0};
  std::atomic<bool> overlap{false};
  std::atomic<long> sum{0};
  std::atomic<int> count{0};
};

TEST(ThreadEnv, DeliversMessages) {
  ThreadEnv env;
  CountingProcess a;
  CountingProcess b;
  env.register_process(0, &a);
  env.register_process(1, &b);
  env.start();
  for (int i = 1; i <= 100; ++i) {
    env.send(0, 1, std::make_shared<NoteMsg>(i));
  }
  // Wait until everything drained.
  for (int spin = 0; spin < 1000 && b.count.load() < 100; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  env.stop();
  EXPECT_EQ(b.count.load(), 100);
  EXPECT_EQ(b.sum.load(), 5050);
  EXPECT_FALSE(b.overlap.load());
}

TEST(ThreadEnv, HandlersSerializedUnderContention) {
  ThreadEnv env;
  CountingProcess target;
  CountingProcess sender1;
  CountingProcess sender2;
  env.register_process(0, &target);
  env.register_process(1, &sender1);
  env.register_process(2, &sender2);
  env.start();
  // Two threads hammer the same target concurrently.
  std::thread t1([&] {
    for (int i = 0; i < 500; ++i) env.send(1, 0, std::make_shared<NoteMsg>(1));
  });
  std::thread t2([&] {
    for (int i = 0; i < 500; ++i) env.send(2, 0, std::make_shared<NoteMsg>(1));
  });
  t1.join();
  t2.join();
  for (int spin = 0; spin < 2000 && target.count.load() < 1000; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  env.stop();
  EXPECT_EQ(target.count.load(), 1000);
  EXPECT_FALSE(target.overlap.load());
}

TEST(ThreadEnv, ScheduleFiresAfterDelay) {
  ThreadEnv env;
  CountingProcess a;
  env.register_process(0, &a);
  env.start();
  Waiter<TimeNs> waiter;
  TimeNs before = env.now();
  env.schedule(0, ms(20), [&] { waiter.set(env.now()); });
  auto fired_at = waiter.wait_for(seconds(5));
  env.stop();
  ASSERT_TRUE(fired_at.has_value());
  EXPECT_GE(*fired_at - before, ms(15));  // allow scheduler slop downward
}

TEST(ThreadEnv, InjectedLatencyDelaysDelivery) {
  ThreadEnv env(std::make_shared<ConstantLatency>(ms(30)), 1);
  CountingProcess a;
  CountingProcess b;
  env.register_process(0, &a);
  env.register_process(1, &b);
  env.start();
  TimeNs before = env.now();
  env.send(0, 1, std::make_shared<NoteMsg>(1));
  for (int spin = 0; spin < 2000 && b.count.load() < 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  TimeNs elapsed = env.now() - before;
  env.stop();
  EXPECT_EQ(b.count.load(), 1);
  EXPECT_GE(elapsed, ms(25));
}

TEST(ThreadEnv, CrashedProcessReceivesNothing) {
  ThreadEnv env;
  CountingProcess a;
  CountingProcess b;
  env.register_process(0, &a);
  env.register_process(1, &b);
  env.start();
  env.crash(1);
  env.send(0, 1, std::make_shared<NoteMsg>(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  env.stop();
  EXPECT_EQ(b.count.load(), 0);
  EXPECT_TRUE(env.is_crashed(1));
}

TEST(ThreadEnv, RegisterAfterStartSpawnsWorker) {
  // Mid-run registration is allowed (restart-as-new-reader scenarios):
  // the late process gets a worker and receives messages. Re-registering
  // an existing id is the error now — the old worker owns that mailbox.
  ThreadEnv env;
  CountingProcess a;
  env.register_process(0, &a);
  env.start();
  CountingProcess b;
  env.register_process(1, &b);
  env.send(0, 1, std::make_shared<NoteMsg>(1));
  for (int spin = 0; spin < 1000 && b.count.load() < 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  CountingProcess dup;
  EXPECT_THROW(env.register_process(1, &dup), std::logic_error);
  env.stop();
  EXPECT_EQ(b.count.load(), 1);
}

TEST(ThreadEnv, StopIsIdempotentAndDestructorSafe) {
  auto env = std::make_unique<ThreadEnv>();
  CountingProcess a;
  env->register_process(0, &a);
  env->start();
  env->stop();
  env->stop();
  env.reset();  // destructor after stop: no crash
  SUCCEED();
}

TEST(ThreadEnv, CrashDropsInFlightDelayedDelivery) {
  // Pins crash semantics across the lock-free send refactor: a message
  // parked in the timer queue when the target crashes must be dropped at
  // fire time (the crash check happens at enqueue, not only at send).
  ThreadEnv env(std::make_shared<ConstantLatency>(ms(80)), 1);
  CountingProcess a;
  CountingProcess b;
  env.register_process(0, &a);
  env.register_process(1, &b);
  env.start();
  env.send(0, 1, std::make_shared<NoteMsg>(1));  // in flight for 80ms
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  env.crash(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  env.stop();
  EXPECT_EQ(b.count.load(), 0);
  EXPECT_TRUE(env.is_crashed(1));
  EXPECT_EQ(env.traffic().get("msgs"), 1);  // counted at send time
}

TEST(ThreadEnv, ScheduleToCrashedProcessDropped) {
  ThreadEnv env;
  CountingProcess a;
  env.register_process(0, &a);
  env.start();
  std::atomic<bool> fired{false};
  env.schedule(0, ms(30), [&] { fired.store(true); });
  env.crash(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  env.stop();
  EXPECT_FALSE(fired.load());
}

TEST(ThreadEnv, ConcurrentSendersCountExactly) {
  // The sharded ledger must not lose increments under contention: the
  // final "msgs" count has to equal the number of send() calls made.
  ThreadEnv env;
  CountingProcess target;
  CountingProcess s1;
  CountingProcess s2;
  CountingProcess s3;
  env.register_process(0, &target);
  env.register_process(1, &s1);
  env.register_process(2, &s2);
  env.register_process(3, &s3);
  env.start();
  constexpr int kPerSender = 400;
  std::vector<std::thread> threads;
  for (ProcessId from : {ProcessId{1}, ProcessId{2}, ProcessId{3}}) {
    threads.emplace_back([&, from] {
      for (int i = 0; i < kPerSender; ++i) {
        env.send(from, 0, std::make_shared<NoteMsg>(1));
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int spin = 0; spin < 5000 && target.count.load() < 3 * kPerSender;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  env.stop();
  EXPECT_EQ(target.count.load(), 3 * kPerSender);
  EXPECT_FALSE(target.overlap.load());
  EXPECT_EQ(env.traffic().get("msgs"), 3 * kPerSender);
  EXPECT_EQ(env.traffic().get("msg.NOTE"), 3 * kPerSender);
}

TEST(ThreadEnv, TrafficCountersAfterStop) {
  ThreadEnv env;
  CountingProcess a;
  CountingProcess b;
  env.register_process(0, &a);
  env.register_process(1, &b);
  env.start();
  for (int i = 0; i < 10; ++i) {
    env.send(0, 1, std::make_shared<NoteMsg>(i));
  }
  for (int spin = 0; spin < 1000 && b.count.load() < 10; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  env.stop();
  EXPECT_EQ(env.traffic().get("msgs"), 10);
  EXPECT_EQ(env.traffic().get("msg.NOTE"), 10);
}

}  // namespace
}  // namespace wrs
