// Tests for the multi-register (key-value) extension of the dynamic-
// weighted storage: independent named registers over one quorum system,
// weighted-quorum key discovery, and the all-keys refresh on weight gain.
#include <gtest/gtest.h>

#include "storage/history.h"
#include "test_util.h"

namespace wrs {
namespace {

using test::run_until;
using test::StorageCluster;

TEST(KvStore, IndependentKeys) {
  StorageCluster c(4, 1, 61);
  std::vector<std::unique_ptr<StorageClient>> clients;
  clients.push_back(std::make_unique<StorageClient>(
      *c.env, client_id(0), c.config, AbdClient::Mode::kDynamic));
  c.env->register_process(client_id(0), clients[0].get());
  auto& abd = clients[0]->abd();

  int wrote = 0;
  abd.write("alpha", "value-a", [&](const Tag&) { ++wrote; });
  run_until(*c.env, [&] { return wrote == 1; });
  abd.write("beta", "value-b", [&](const Tag&) { ++wrote; });
  run_until(*c.env, [&] { return wrote == 2; });

  std::optional<TaggedValue> a, b, missing;
  abd.read("alpha", [&](const TaggedValue& tv) { a = tv; });
  run_until(*c.env, [&] { return a.has_value(); });
  abd.read("beta", [&](const TaggedValue& tv) { b = tv; });
  run_until(*c.env, [&] { return b.has_value(); });
  abd.read("gamma", [&](const TaggedValue& tv) { missing = tv; });
  run_until(*c.env, [&] { return missing.has_value(); });

  EXPECT_EQ(a->value, "value-a");
  EXPECT_EQ(b->value, "value-b");
  EXPECT_EQ(missing->tag, kInitialTag);  // never written
  EXPECT_EQ(missing->value, "");
}

TEST(KvStore, KeysDoNotInterfereWithDefaultRegister) {
  StorageCluster c(4, 1, 62);
  std::vector<std::unique_ptr<StorageClient>> clients;
  clients.push_back(std::make_unique<StorageClient>(
      *c.env, client_id(0), c.config, AbdClient::Mode::kDynamic));
  c.env->register_process(client_id(0), clients[0].get());
  auto& abd = clients[0]->abd();

  bool w1 = false, w2 = false;
  abd.write("default-value", [&](const Tag&) { w1 = true; });
  run_until(*c.env, [&] { return w1; });
  abd.write("named", "named-value", [&](const Tag&) { w2 = true; });
  run_until(*c.env, [&] { return w2; });

  std::optional<TaggedValue> def;
  abd.read([&](const TaggedValue& tv) { def = tv; });
  run_until(*c.env, [&] { return def.has_value(); });
  EXPECT_EQ(def->value, "default-value");
}

TEST(KvStore, ListKeysDiscoversAllWrittenKeys) {
  StorageCluster c(5, 2, 63);
  std::vector<std::unique_ptr<StorageClient>> clients;
  clients.push_back(std::make_unique<StorageClient>(
      *c.env, client_id(0), c.config, AbdClient::Mode::kDynamic));
  c.env->register_process(client_id(0), clients[0].get());
  auto& abd = clients[0]->abd();

  for (const char* key : {"k1", "k2", "k3"}) {
    bool done = false;
    abd.write(key, std::string("v-") + key, [&](const Tag&) { done = true; });
    run_until(*c.env, [&] { return done; });
  }
  std::optional<std::vector<RegisterKey>> keys;
  abd.list_keys([&](const std::vector<RegisterKey>& k) { keys = k; });
  run_until(*c.env, [&] { return keys.has_value(); });
  std::set<RegisterKey> got(keys->begin(), keys->end());
  EXPECT_TRUE(got.count("k1"));
  EXPECT_TRUE(got.count("k2"));
  EXPECT_TRUE(got.count("k3"));
}

TEST(KvStore, PerWriterTagsSpanKeysSafely) {
  // Tags are per-register; writing two keys from one client must not
  // produce conflicting tags within a register.
  StorageCluster c(4, 1, 64);
  std::vector<std::unique_ptr<StorageClient>> clients;
  clients.push_back(std::make_unique<StorageClient>(
      *c.env, client_id(0), c.config, AbdClient::Mode::kDynamic));
  c.env->register_process(client_id(0), clients[0].get());
  auto& abd = clients[0]->abd();

  std::optional<Tag> t1, t2, t3;
  abd.write("x", "1", [&](const Tag& t) { t1 = t; });
  run_until(*c.env, [&] { return t1.has_value(); });
  abd.write("x", "2", [&](const Tag& t) { t2 = t; });
  run_until(*c.env, [&] { return t2.has_value(); });
  abd.write("y", "3", [&](const Tag& t) { t3 = t; });
  run_until(*c.env, [&] { return t3.has_value(); });
  EXPECT_LT(*t1, *t2);  // same register: strictly increasing
  std::optional<TaggedValue> x;
  abd.read("x", [&](const TaggedValue& tv) { x = tv; });
  run_until(*c.env, [&] { return x.has_value(); });
  EXPECT_EQ(x->value, "2");
}

TEST(KvStore, GainRefreshCoversAllKeys) {
  // After a weight gain, the gaining server must hold fresh copies of
  // EVERY register (the multi-register generalization of Algorithm 4
  // line 9).
  StorageCluster c(4, 1, 65);
  std::vector<std::unique_ptr<StorageClient>> clients;
  clients.push_back(std::make_unique<StorageClient>(
      *c.env, client_id(0), c.config, AbdClient::Mode::kDynamic));
  c.env->register_process(client_id(0), clients[0].get());
  auto& abd = clients[0]->abd();

  for (const char* key : {"a", "b"}) {
    bool done = false;
    abd.write(key, std::string("fresh-") + key,
              [&](const Tag&) { done = true; });
    run_until(*c.env, [&] { return done; });
  }

  bool transferred = false;
  c.node(0).reassign().transfer(
      1, Weight(1, 4), [&](const TransferOutcome&) { transferred = true; });
  run_until(*c.env, [&] { return transferred; });
  c.env->run_to_quiescence();

  EXPECT_EQ(c.node(1).server().reg("a").value, "fresh-a");
  EXPECT_EQ(c.node(1).server().reg("b").value, "fresh-b");
}

TEST(KvStore, AtomicPerKeyUnderTransferChurn) {
  StorageCluster c(5, 1, 66);
  auto history_x = std::make_shared<HistoryRecorder>();
  auto history_y = std::make_shared<HistoryRecorder>();

  std::vector<std::unique_ptr<StorageClient>> clients;
  for (int k = 0; k < 2; ++k) {
    clients.push_back(std::make_unique<StorageClient>(
        *c.env, client_id(k), c.config, AbdClient::Mode::kDynamic));
    c.env->register_process(client_id(k), clients.back().get());
  }

  // Client 0 works key "x", client 1 works key "y"; transfers churn.
  // The test scope owns each self-rescheduling loop; the lambdas hold
  // only weak references to it (a shared self-capture would be a
  // reference cycle and leak the closure — ASan's leak check minds).
  std::vector<std::shared_ptr<std::function<void(int)>>> loops;
  auto drive = [&](int k, const RegisterKey& key,
                   std::shared_ptr<HistoryRecorder> hist) {
    auto loop = std::make_shared<std::function<void(int)>>();
    loops.push_back(loop);
    std::weak_ptr<std::function<void(int)>> weak = loop;
    auto next = [&, k, weak](int left) {
      c.env->schedule(client_id(k), ms(2), [weak, left] {
        if (auto l = weak.lock()) (*l)(left - 1);
      });
    };
    *loop = [&, k, key, hist, next](int left) {
      if (left == 0) return;
      auto& abd = clients[k]->abd();
      bool is_read = (left % 2 == 0);
      TimeNs start = c.env->now();
      if (is_read) {
        auto token = hist->begin(OpRecord::Kind::kRead, client_id(k), start);
        abd.read(key, [&, hist, token, next, left](const TaggedValue& tv) {
          hist->end_read(token, c.env->now(), tv);
          next(left);
        });
      } else {
        Value v = key + "#" + std::to_string(left);
        auto token = hist->begin(OpRecord::Kind::kWrite, client_id(k), start);
        abd.write(key, v, [&, hist, token, v, next, left](const Tag& t) {
          hist->end_write(token, c.env->now(), t, v);
          next(left);
        });
      }
    };
    c.env->schedule(client_id(k), 0, [weak] {
      if (auto l = weak.lock()) (*l)(30);
    });
  };
  drive(0, "x", history_x);
  drive(1, "y", history_y);

  for (std::uint32_t s = 0; s < 5; ++s) {
    c.env->schedule(s, ms(15 + 10 * s), [&, s] {
      if (!c.node(s).reassign().transfer_in_flight()) {
        c.node(s).reassign().transfer((s + 1) % 5, Weight(1, 40),
                                      [](const TransferOutcome&) {});
      }
    });
  }

  run_until(*c.env,
            [&] {
              return history_x->completed_count() == 30 &&
                     history_y->completed_count() == 30;
            },
            seconds(600));

  auto ex = check_atomicity(history_x->completed());
  EXPECT_FALSE(ex.has_value()) << *ex;
  auto ey = check_atomicity(history_y->completed());
  EXPECT_FALSE(ey.has_value()) << *ey;
}

}  // namespace
}  // namespace wrs
