// Batched wire protocol tests: envelope coalescing cuts messages while
// preserving results, per-key FIFO, and unique write tags; batching(1)
// is byte-identical to the unbatched path (pinned, like shards(1));
// servers unpack envelopes with per-frame shard validation and per-frame
// M/D/1 service cost; and a seeded chaos episode (drop/dup/reorder of
// whole envelopes) produces the same check_atomicity verdict as the
// unbatched replay of the same seed — on both runtimes.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "api/cluster.h"
#include "storage/abd_server.h"
#include "storage/history.h"
#include "test_util.h"

namespace wrs {
namespace {

// --- batching(1) byte-compatibility -----------------------------------------

/// The same scripted run with batching(1) (any max_delay) vs a builder
/// that never mentions batching: the knob at window 1 IS the unbatched
/// wire protocol — identical message counts, types, and bytes.
TEST(BatchCompat, BatchingOneIsByteIdenticalToUnbatched) {
  auto run = [](int variant) {
    ClusterBuilder b = Cluster::builder()
                           .servers(3)
                           .shards(2)
                           .clients(1)
                           .runtime(Runtime::kSim)
                           .seed(41);
    if (variant == 1) b.batching(1);
    if (variant == 2) b.batching(1, ms(5));  // delay is moot at window 1
    Cluster c = b.build();
    auto tags = c.client().write_batch(
        {{"x", "1"}, {"y", "2"}, {"z", "3"}, {"x", "4"}});
    for (auto& t : tags) t.get();
    std::string out;
    out += c.client().read("x").get().value;
    out += c.client().read("y").get().value;
    out += c.client().read("z").get().value;
    c.quiesce();
    EXPECT_EQ(c.client().router().batches_sent(), 0u);
    for (const auto& [name, value] : c.traffic().map()) {
      out += " " + name + "=" + std::to_string(value);
    }
    return out;
  };
  std::string unbatched = run(0);
  EXPECT_EQ(unbatched, run(1))
      << "batching(1) must be byte-identical to the unbatched wire protocol";
  EXPECT_EQ(unbatched, run(2));
}

// --- coalescing -------------------------------------------------------------

class BatchCoalescing : public ::testing::TestWithParam<Runtime> {};

TEST_P(BatchCoalescing, CutsMessagesAndPreservesResults) {
  auto run = [&](bool batched) {
    ClusterBuilder b = Cluster::builder()
                           .servers(3)
                           .faults(1)
                           .shards(1)
                           .clients(1)
                           .runtime(GetParam())
                           .seed(43);
    if (batched) b.batching(8, ms(1));
    Cluster c = b.build();
    std::vector<std::pair<RegisterKey, Value>> puts;
    for (int i = 0; i < 24; ++i) {
      puts.emplace_back("key" + std::to_string(i), "v" + std::to_string(i));
    }
    auto tags = c.client().write_batch(puts);
    for (auto& t : tags) t.get();
    std::vector<RegisterKey> keys;
    for (const auto& [k, _] : puts) keys.push_back(k);
    auto reads = c.client().read_batch(keys);
    for (std::size_t i = 0; i < reads.size(); ++i) {
      EXPECT_EQ(reads[i].get().value, puts[i].second) << puts[i].first;
    }
    c.quiesce();
    if (batched) {
      // The whole 24-op burst is issuable in one tick: envelopes must
      // have been flushed and must average > 1 frame.
      EXPECT_GT(c.client().router().batches_sent(), 0u);
      EXPECT_GT(c.client().router().batched_frames(),
                c.client().router().batches_sent());
    } else {
      EXPECT_EQ(c.client().router().batches_sent(), 0u);
    }
    return c.traffic().get("msgs");
  };
  std::int64_t unbatched = run(false);
  std::int64_t batched = run(true);
  EXPECT_LT(batched * 2, unbatched)
      << "window-8 coalescing must at least halve the message count "
      << "(unbatched " << unbatched << ", batched " << batched << ")";
}

TEST_P(BatchCoalescing, SameKeyFifoAndUniqueTagsPreserved) {
  Cluster c = Cluster::builder()
                  .servers(3)
                  .faults(1)
                  .clients(1)
                  .batching(4, ms(1))
                  .runtime(GetParam())
                  .seed(47)
                  .build();
  // Six pipelined writes to ONE key ride the per-key FIFO through the
  // batching layer: completion in issue order, strictly growing tags.
  std::vector<std::pair<RegisterKey, Value>> puts;
  for (int i = 0; i < 6; ++i) puts.emplace_back("hot", std::to_string(i));
  auto tags = c.client().write_batch(puts);
  std::vector<Tag> got;
  for (auto& t : tags) got.push_back(t.get());
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_TRUE(got[i - 1] < got[i])
        << "write tags must stay unique and FIFO-ordered under batching";
  }
  EXPECT_EQ(c.client().read("hot").get().value, "5");
  c.quiesce();
}

INSTANTIATE_TEST_SUITE_P(BothRuntimes, BatchCoalescing,
                         ::testing::Values(Runtime::kSim, Runtime::kThread));

// --- server-side envelope handling ------------------------------------------

TEST(BatchServer, MisroutedEnvelopeAndFramesDroppedAndCounted) {
  auto latency = std::make_shared<UniformLatency>(ms(1), ms(2));
  SimEnv env(latency, 1);
  AbdServer server(env, /*self=*/0, /*changes_provider=*/nullptr,
                   /*shard=*/1);
  // A whole envelope carrying another group's shard id: consumed (it is
  // addressed to this protocol), counted ONCE, never answered.
  std::vector<MsgPtr> frames;
  frames.push_back(std::make_shared<ReadReq>(1, "k", 1, /*shard=*/0));
  frames.push_back(std::make_shared<ReadReq>(2, "k", 1, /*shard=*/0));
  BatchRequest wrong(/*shard=*/0, frames);
  EXPECT_TRUE(server.handle(client_id(0), wrong));
  EXPECT_EQ(server.misrouted_count(), 1u);
  EXPECT_EQ(env.traffic().get("msgs"), 0) << "no reply may leave the server";

  // A correct envelope with one misrouted FRAME inside: the bad frame is
  // skipped (counted), the good one acked — one BatchReply total.
  frames.clear();
  frames.push_back(std::make_shared<ReadReq>(3, "k", 1, /*shard=*/1));
  frames.push_back(std::make_shared<ReadReq>(4, "k", 1, /*shard=*/0));
  BatchRequest mixed(/*shard=*/1, frames);
  EXPECT_TRUE(server.handle(client_id(0), mixed));
  EXPECT_EQ(server.misrouted_count(), 2u);
  EXPECT_EQ(server.batches_served(), 1u);
  EXPECT_EQ(env.traffic().get("msgs"), 1);
  EXPECT_EQ(env.traffic().get("msg.B_A"), 1);
}

TEST(BatchServer, EnvelopeCostsOneServiceTimePerFrame) {
  struct Sink : Process {
    SimEnv* env = nullptr;
    std::vector<std::pair<TimeNs, std::size_t>> replies;  // (time, frames)
    void on_message(ProcessId, const Message& msg) override {
      if (const auto* b = msg_cast<BatchReply>(msg)) {
        replies.emplace_back(env->now(), b->frames().size());
      } else {
        replies.emplace_back(env->now(), 1);
      }
    }
  };
  auto latency = std::make_shared<UniformLatency>(us(1), us(2));
  SimEnv env(latency, 5);
  Sink client;
  client.env = &env;
  env.register_process(client_id(0), &client);

  AbdServer server(env, /*self=*/0, nullptr, /*shard=*/0);
  server.set_service_time(ms(1));
  env.start();

  std::vector<MsgPtr> frames;
  for (OpId id = 1; id <= 4; ++id) {
    frames.push_back(std::make_shared<ReadReq>(id, "k", 1, 0));
  }
  BatchRequest batch(/*shard=*/0, std::move(frames));
  EXPECT_TRUE(server.handle(client_id(0), batch));
  env.run_to_quiescence();

  // One reply carrying all 4 acks, sent only after 4 x 1ms of serial
  // work — batching amortizes messages, never the modeled CPU.
  ASSERT_EQ(client.replies.size(), 1u);
  EXPECT_EQ(client.replies[0].second, 4u);
  EXPECT_GE(client.replies[0].first, ms(4));
  EXPECT_LT(client.replies[0].first, ms(4) + ms(1));
}

// --- chaos: whole-envelope drop/dup/reorder ---------------------------------

struct ChaosOutcome {
  std::string verdict;  // empty = atomic
  std::size_t completed = 0;
  std::size_t shed = 0;
  std::int64_t lost = 0;
  std::int64_t dup = 0;
  std::uint64_t envelopes = 0;
};

/// A seeded episode of drop/dup/reorder storms over an open-loop
/// workload; the fault plane acts on whatever the wire carries — whole
/// BatchRequest envelopes when batching is on.
ChaosOutcome run_chaos(Runtime rt, bool batched, std::uint64_t seed) {
  WorkloadParams wp;
  wp.num_ops = 40;
  wp.read_ratio = 0.5;
  wp.value_size = 8;
  wp.num_keys = 6;
  wp.target_ops_per_sec = 500;
  wp.max_in_flight = 8;
  wp.seed = seed;

  auto history = std::make_shared<HistoryRecorder>();
  ClusterBuilder b = Cluster::builder()
                         .servers(3)
                         .faults(1)
                         .shards(2)
                         .clients(2)
                         .workload(wp)
                         .history(history)
                         .uniform_latency(us(200), ms(2))
                         .retry(ms(10))
                         .anti_entropy(ms(25))
                         .runtime(rt)
                         .seed(seed);
  if (batched) b.batching(4, ms(1));
  Cluster c = b.build();

  c.drop_all_links(0.05);
  c.duplicate_all_links(0.05);
  c.reorder_links(0.3, ms(1));  // sim-only; threads reorder natively
  c.run_for(ms(150));
  c.heal_all_links();

  ChaosOutcome out;
  for (std::size_t k = 0; k < c.num_clients(); ++k) {
    EXPECT_TRUE(c.workload_done(k).try_get(seconds(30)).has_value())
        << "client #" << k << " never finished (liveness under retry)";
    out.completed += c.workload(k).completed();
    out.shed += c.workload(k).shed();
    out.envelopes += c.workload(k).router().batches_sent();
  }
  c.set_anti_entropy(0);
  c.quiesce(seconds(120));
  out.lost = c.traffic().get("msgs.lost");
  out.dup = c.traffic().get("msgs.dup");
  out.verdict = check_atomicity(history->completed()).value_or("");
  return out;
}

class BatchChaos : public ::testing::TestWithParam<Runtime> {};

TEST_P(BatchChaos, SeededEnvelopeChaosKeepsAtomicityVerdictOfUnbatchedRun) {
  const std::uint64_t seed = 20260727;
  ChaosOutcome unbatched = run_chaos(GetParam(), false, seed);
  ChaosOutcome batched = run_chaos(GetParam(), true, seed);

  // Identical verdicts — and both must be "atomic", so the equality is
  // not vacuous.
  EXPECT_EQ(batched.verdict, unbatched.verdict);
  EXPECT_EQ(unbatched.verdict, "") << unbatched.verdict;
  EXPECT_EQ(batched.verdict, "") << batched.verdict;

  // Both runs drained every arrival despite envelope loss: executed to
  // completion or shed at a full in-flight window (legitimate open-loop
  // load shedding — batching adds up to one flush delay per phase, so
  // the batched run may shed more), with real progress in both.
  EXPECT_EQ(unbatched.completed + unbatched.shed, 2u * 40u);
  EXPECT_EQ(batched.completed + batched.shed, 2u * 40u);
  EXPECT_GT(unbatched.completed, 40u);
  EXPECT_GT(batched.completed, 40u);

  // The chaos genuinely acted on batched envelopes: envelopes flowed,
  // and the fault plane dropped and duplicated wire messages.
  EXPECT_GT(batched.envelopes, 0u);
  EXPECT_EQ(unbatched.envelopes, 0u);
  EXPECT_GT(batched.lost, 0);
  EXPECT_GT(batched.dup, 0);
}

INSTANTIATE_TEST_SUITE_P(BothRuntimes, BatchChaos,
                         ::testing::Values(Runtime::kSim, Runtime::kThread));

}  // namespace
}  // namespace wrs
