// End-to-end integration on the thread runtime: the full dynamic storage
// stack (reassignment + weighted ABD) under real concurrency. These tests
// prove the protocols are genuine concurrent programs, not simulator
// artifacts.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

#include "runtime/sync.h"
#include "runtime/thread_env.h"
#include "storage/dynamic_node.h"
#include "storage/history.h"

namespace wrs {
namespace {

struct ThreadCluster {
  ThreadEnv env;
  SystemConfig config;
  std::vector<std::unique_ptr<DynamicStorageNode>> nodes;
  std::vector<std::unique_ptr<StorageClient>> clients;

  ThreadCluster(std::uint32_t n, std::uint32_t f, std::uint32_t n_clients)
      : env(std::make_shared<UniformLatency>(us(100), ms(2)), 5) {
    config = SystemConfig::uniform(n, f);
    for (std::uint32_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<DynamicStorageNode>(env, i, config));
      env.register_process(i, nodes.back().get());
    }
    for (std::uint32_t k = 0; k < n_clients; ++k) {
      clients.push_back(std::make_unique<StorageClient>(
          env, client_id(k), config, AbdClient::Mode::kDynamic));
      env.register_process(client_id(k), clients.back().get());
    }
    env.start();
  }

  ~ThreadCluster() { env.stop(); }
};

TEST(ThreadIntegration, WriteThenReadAcrossClients) {
  ThreadCluster c(4, 1, 2);
  Waiter<Tag> wrote;
  // Operations must be issued from the owning process's context; use
  // schedule to hop onto the client's mailbox thread.
  c.env.schedule(client_id(0), 0, [&] {
    c.clients[0]->abd().write("hello-threads",
                              [&](const Tag& t) { wrote.set(t); });
  });
  auto tag = wrote.wait_for(seconds(30));
  ASSERT_TRUE(tag.has_value());

  Waiter<TaggedValue> got;
  c.env.schedule(client_id(1), 0, [&] {
    c.clients[1]->abd().read([&](const TaggedValue& tv) { got.set(tv); });
  });
  auto tv = got.wait_for(seconds(30));
  ASSERT_TRUE(tv.has_value());
  EXPECT_EQ(tv->value, "hello-threads");
  EXPECT_EQ(tv->tag, *tag);
}

TEST(ThreadIntegration, TransferUnderRealConcurrency) {
  ThreadCluster c(4, 1, 1);
  Waiter<TransferOutcome> done;
  c.env.schedule(0, 0, [&] {
    c.nodes[0]->reassign().transfer(
        1, Weight(1, 4), [&](const TransferOutcome& o) { done.set(o); });
  });
  auto out = done.wait_for(seconds(30));
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->effective);

  // Weights converge on every node (poll from each node's own context).
  for (std::uint32_t i = 0; i < 4; ++i) {
    bool ok = false;
    for (int attempt = 0; attempt < 100 && !ok; ++attempt) {
      Waiter<Weight> probe;
      c.env.schedule(i, 0, [&, i] {
        probe.set(c.nodes[i]->reassign().weight_of(1));
      });
      auto val = probe.wait_for(seconds(5));
      ASSERT_TRUE(val.has_value());
      if (*val == Weight(5, 4)) ok = true;
      if (!ok) std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(ok) << "node " << i << " never converged";
  }
}

TEST(ThreadIntegration, ConcurrentWritersAndTransfersStayAtomic) {
  ThreadCluster c(5, 2, 3);
  auto history = std::make_shared<HistoryRecorder>();
  std::mutex history_mu;  // clients run on different threads

  constexpr int kOpsPerClient = 15;
  std::atomic<int> remaining{3 * kOpsPerClient};
  Waiter<bool> all_done;

  // Each client loops read/write (self-referencing loop via shared_ptr);
  // transfers churn underneath.
  for (std::uint32_t k = 0; k < 3; ++k) {
    auto loop = std::make_shared<std::function<void(int)>>();
    *loop = [&, k, loop](int left) {
      if (left == 0) {
        if (remaining.load() == 0) all_done.set(true);
        return;
      }
      bool is_read = (left % 2 == 0);
      TimeNs start = c.env.now();
      if (is_read) {
        std::size_t token;
        {
          std::lock_guard lk(history_mu);
          token = history->begin(OpRecord::Kind::kRead, client_id(k), start);
        }
        c.clients[k]->abd().read([&, k, left, loop,
                                  token](const TaggedValue& tv) {
          {
            std::lock_guard lk(history_mu);
            history->end_read(token, c.env.now(), tv);
          }
          remaining.fetch_sub(1);
          c.env.schedule(client_id(k), ms(1),
                         [loop, left] { (*loop)(left - 1); });
        });
      } else {
        Value v = process_name(client_id(k)) + "#" + std::to_string(left);
        std::size_t token;
        {
          std::lock_guard lk(history_mu);
          token = history->begin(OpRecord::Kind::kWrite, client_id(k), start);
        }
        c.clients[k]->abd().write(v, [&, k, left, loop, token,
                                      v](const Tag& t) {
          {
            std::lock_guard lk(history_mu);
            history->end_write(token, c.env.now(), t, v);
          }
          remaining.fetch_sub(1);
          c.env.schedule(client_id(k), ms(1),
                         [loop, left] { (*loop)(left - 1); });
        });
      }
    };
    c.env.schedule(client_id(k), 0, [loop] { (*loop)(kOpsPerClient); });
  }

  // Transfer churn from two servers.
  for (std::uint32_t s : {0u, 1u}) {
    c.env.schedule(s, ms(5), [&, s] {
      c.nodes[s]->reassign().transfer((s + 2) % 5, Weight(1, 25),
                                      [](const TransferOutcome&) {});
    });
  }

  // Wait for all operations (remaining hits 0 inside a callback; poll).
  for (int spin = 0; spin < 3000 && remaining.load() > 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(remaining.load(), 0) << "workload did not finish";

  std::lock_guard lk(history_mu);
  auto err = check_atomicity(history->completed());
  EXPECT_FALSE(err.has_value()) << *err;
}

}  // namespace
}  // namespace wrs
