// End-to-end integration on the thread runtime: the full dynamic storage
// stack (reassignment + weighted ABD) under real concurrency. These tests
// prove the protocols are genuine concurrent programs, not simulator
// artifacts. Deployment goes through the wrs::Cluster facade; operations
// complete through Await<T> (condition-variable blocking on this
// substrate).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "api/cluster.h"
#include "storage/history.h"

namespace wrs {
namespace {

ClusterBuilder thread_cluster(std::uint32_t n, std::uint32_t f,
                              std::uint32_t n_clients) {
  return Cluster::builder()
      .servers(n)
      .faults(f)
      .clients(n_clients)
      .uniform_latency(us(100), ms(2))
      .seed(5)
      .runtime(Runtime::kThread);
}

TEST(ThreadIntegration, WriteThenReadAcrossClients) {
  Cluster c = thread_cluster(4, 1, 2).build();
  Tag tag = c.client(0).write("hello-threads").get(seconds(30));

  TaggedValue tv = c.client(1).read().get(seconds(30));
  EXPECT_EQ(tv.value, "hello-threads");
  EXPECT_EQ(tv.tag, tag);
}

TEST(ThreadIntegration, TransferUnderRealConcurrency) {
  Cluster c = thread_cluster(4, 1, 1).build();
  TransferOutcome out = c.server(0).transfer(1, Weight(1, 4)).get(seconds(30));
  EXPECT_TRUE(out.effective);

  // Weights converge on every node; weights_snapshot() observes from each
  // node's own execution context, so there is no racy cross-thread read.
  for (std::uint32_t i = 0; i < 4; ++i) {
    bool ok = false;
    for (int attempt = 0; attempt < 100 && !ok; ++attempt) {
      WeightMap w = c.server(i).weights_snapshot().get(seconds(5));
      if (w.of(1) == Weight(5, 4)) {
        ok = true;
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    EXPECT_TRUE(ok) << "node " << i << " never converged";
  }
}

TEST(ThreadIntegration, ConcurrentWritersAndTransfersStayAtomic) {
  auto history = std::make_shared<HistoryRecorder>();
  WorkloadParams wp;
  wp.num_ops = 15;
  wp.read_ratio = 0.5;
  wp.think_time = ms(1);
  wp.value_size = 16;
  wp.seed = 13;

  Cluster c = thread_cluster(5, 2, 3).workload(wp).history(history).build();

  // Transfer churn from two servers while the three workloads run.
  Await<TransferOutcome> t0 = c.server(0).transfer(2, Weight(1, 25));
  Await<TransferOutcome> t1 = c.server(1).transfer(3, Weight(1, 25));

  for (std::size_t k = 0; k < 3; ++k) {
    ASSERT_TRUE(c.workload_done(k).try_get(seconds(30)).has_value())
        << "workload client #" << k << " did not finish";
  }
  t0.get(seconds(30));
  t1.get(seconds(30));
  c.quiesce();

  auto err = check_atomicity(history->completed());
  EXPECT_FALSE(err.has_value()) << *err;
}

}  // namespace
}  // namespace wrs
