// Tests for the atomicity checker itself: it must accept legal histories
// and reject each class of violation.
#include "storage/history.h"

#include <gtest/gtest.h>

namespace wrs {
namespace {

OpRecord read_op(ProcessId p, TimeNs s, TimeNs e, Tag tag, Value v) {
  OpRecord r;
  r.kind = OpRecord::Kind::kRead;
  r.process = p;
  r.start = s;
  r.end = e;
  r.tag = tag;
  r.value = std::move(v);
  return r;
}

OpRecord write_op(ProcessId p, TimeNs s, TimeNs e, Tag tag, Value v) {
  OpRecord r;
  r.kind = OpRecord::Kind::kWrite;
  r.process = p;
  r.start = s;
  r.end = e;
  r.tag = tag;
  r.value = std::move(v);
  return r;
}

TEST(HistoryChecker, EmptyHistoryIsAtomic) {
  EXPECT_FALSE(check_atomicity({}).has_value());
}

TEST(HistoryChecker, SimpleWriteThenRead) {
  std::vector<OpRecord> h = {
      write_op(1, 0, 10, Tag{1, 1}, "a"),
      read_op(2, 20, 30, Tag{1, 1}, "a"),
  };
  EXPECT_FALSE(check_atomicity(h).has_value());
}

TEST(HistoryChecker, ReadOfInitialValueBeforeAnyWrite) {
  std::vector<OpRecord> h = {
      read_op(2, 0, 5, kInitialTag, ""),
      write_op(1, 10, 20, Tag{1, 1}, "a"),
  };
  EXPECT_FALSE(check_atomicity(h).has_value());
}

TEST(HistoryChecker, ConcurrentReadMayReturnEitherValue) {
  // A read overlapping a write may return old or new.
  std::vector<OpRecord> old_read = {
      write_op(1, 10, 30, Tag{1, 1}, "a"),
      read_op(2, 15, 25, kInitialTag, ""),
  };
  EXPECT_FALSE(check_atomicity(old_read).has_value());
  std::vector<OpRecord> new_read = {
      write_op(1, 10, 30, Tag{1, 1}, "a"),
      read_op(2, 15, 25, Tag{1, 1}, "a"),
  };
  EXPECT_FALSE(check_atomicity(new_read).has_value());
}

TEST(HistoryChecker, RejectsStaleRead) {
  // Write completed before the read started; read missed it.
  std::vector<OpRecord> h = {
      write_op(1, 0, 10, Tag{1, 1}, "a"),
      read_op(2, 20, 30, kInitialTag, ""),
  };
  auto err = check_atomicity(h);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("stale read"), std::string::npos);
}

TEST(HistoryChecker, RejectsReadFromTheFuture) {
  std::vector<OpRecord> h = {
      read_op(2, 0, 10, Tag{1, 1}, "a"),
      write_op(1, 20, 30, Tag{1, 1}, "a"),
  };
  auto err = check_atomicity(h);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("future"), std::string::npos);
}

TEST(HistoryChecker, RejectsPhantomTag) {
  std::vector<OpRecord> h = {
      read_op(2, 0, 10, Tag{7, 3}, "ghost"),
  };
  auto err = check_atomicity(h);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("never written"), std::string::npos);
}

TEST(HistoryChecker, RejectsValueMismatch) {
  std::vector<OpRecord> h = {
      write_op(1, 0, 10, Tag{1, 1}, "a"),
      read_op(2, 5, 15, Tag{1, 1}, "b"),
  };
  auto err = check_atomicity(h);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("does not match"), std::string::npos);
}

TEST(HistoryChecker, RejectsNewOldInversion) {
  // Definition 6 violation: r1 (newer) completes before r2 (older)
  // starts. The second write stays in flight so the stale-read rule (A2)
  // does not trigger first — the inversion rule must catch it.
  std::vector<OpRecord> h = {
      write_op(1, 0, 10, Tag{1, 1}, "a"),
      write_op(1, 12, 100, Tag{2, 1}, "b"),  // still in flight
      read_op(2, 25, 30, Tag{2, 1}, "b"),
      read_op(3, 35, 40, Tag{1, 1}, "a"),
  };
  auto err = check_atomicity(h);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("inversion"), std::string::npos);
}

TEST(HistoryChecker, AcceptsOverlappingReadsInEitherOrder) {
  std::vector<OpRecord> h = {
      write_op(1, 0, 10, Tag{1, 1}, "a"),
      write_op(1, 12, 22, Tag{2, 1}, "b"),
      read_op(2, 20, 40, Tag{2, 1}, "b"),  // overlaps the next read
      read_op(3, 25, 45, Tag{1, 1}, "a"),  // overlapping: old value OK
  };
  // Hmm: read by 3 starts at 25, after write of b completed (22) —
  // that's a stale read, actually illegal. Use truly overlapping writes.
  std::vector<OpRecord> legal = {
      write_op(1, 0, 30, Tag{1, 1}, "a"),   // write still in flight
      read_op(2, 5, 12, kInitialTag, ""),   // old
      read_op(3, 14, 20, Tag{1, 1}, "a"),   // new (overlap allows both... )
  };
  // ...but Definition 6 forbids old AFTER new; here old precedes new: OK.
  EXPECT_FALSE(check_atomicity(legal).has_value());
  (void)h;
}

TEST(HistoryChecker, RejectsDuplicateWriteTags) {
  std::vector<OpRecord> h = {
      write_op(1, 0, 10, Tag{1, 1}, "a"),
      write_op(1, 20, 30, Tag{1, 1}, "b"),
  };
  auto err = check_atomicity(h);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("duplicate write tag"), std::string::npos);
}

TEST(HistoryChecker, RejectsNonMonotoneWriterTags) {
  std::vector<OpRecord> h = {
      write_op(1, 0, 10, Tag{5, 1}, "a"),
      write_op(1, 20, 30, Tag{3, 1}, "b"),
  };
  auto err = check_atomicity(h);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("non-monotone"), std::string::npos);
}

TEST(HistoryChecker, ViolationNamesBothOpsWithProcessKeyTagAndTimes) {
  OpRecord w = write_op(1, 0, 10, Tag{1, 1}, "a");
  OpRecord r = read_op(2, 20, 30, kInitialTag, "");
  w.key = "hot";
  r.key = "hot";
  auto err = check_atomicity({w, r});
  ASSERT_TRUE(err.has_value());
  // Both operations appear, each with process, key, interval, and tag —
  // enough to act on a chaos-fuzz failure without replaying it.
  EXPECT_NE(err->find(process_name(1)), std::string::npos);
  EXPECT_NE(err->find(process_name(2)), std::string::npos);
  EXPECT_NE(err->find("key \"hot\""), std::string::npos);
  EXPECT_NE(err->find("[20,30]"), std::string::npos);
  EXPECT_NE(err->find("[0,10]"), std::string::npos);
  EXPECT_NE(err->find(Tag{1, 1}.str()), std::string::npos);
  EXPECT_NE(err->find(kInitialTag.str()), std::string::npos);
}

TEST(HistoryChecker, SweepMatchesSemanticsOnInterleavedBatches) {
  // Mixed overlapping/non-overlapping batch exercising the sweep's
  // running-max bookkeeping: every read returns the newest completed
  // write at its start — atomic.
  std::vector<OpRecord> h;
  for (int i = 0; i < 50; ++i) {
    TimeNs base = i * 100;
    h.push_back(write_op(1, base, base + 40, Tag{i + 1, 1}, "v"));
    h.push_back(
        read_op(2, base + 50, base + 60, Tag{i + 1, 1}, "v"));
    // A long-running read from way back may surface anywhere overlapping.
    h.push_back(read_op(3, base + 10, base + 90, Tag{i + 1, 1}, "v"));
  }
  EXPECT_FALSE(check_atomicity(h).has_value());
}

TEST(HistoryChecker, ScalesToFuzzLengthHistories) {
  // 60k sequential ops: quadratic pairwise scans made this take minutes;
  // the sort + sweep finishes instantly. The test's 600s ctest timeout is
  // the regression tripwire.
  std::vector<OpRecord> h;
  h.reserve(60'000);
  for (int i = 0; i < 30'000; ++i) {
    TimeNs base = i * 10;
    h.push_back(write_op(1, base, base + 4, Tag{i + 1, 1}, "v"));
    h.push_back(read_op(2, base + 5, base + 9, Tag{i + 1, 1}, "v"));
  }
  EXPECT_FALSE(check_atomicity(h).has_value());
  // And it still catches a violation buried at the end.
  h.push_back(read_op(3, 400'000, 400'001, Tag{1, 1}, "v"));
  auto err = check_atomicity(h);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("stale read"), std::string::npos);
}

TEST(HistoryRecorder, TracksCompletionsOnly) {
  HistoryRecorder rec;
  auto t1 = rec.begin(OpRecord::Kind::kWrite, 1, 0);
  auto t2 = rec.begin(OpRecord::Kind::kRead, 2, 5);
  rec.end_write(t1, 10, Tag{1, 1}, "a");
  // t2 never completes (e.g. client crashed).
  auto completed = rec.completed();
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed[0].kind, OpRecord::Kind::kWrite);
  EXPECT_EQ(completed[0].value, "a");
  (void)t2;
}

}  // namespace
}  // namespace wrs
