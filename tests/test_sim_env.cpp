#include "runtime/sim_env.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace wrs {
namespace {

class NoteMsg : public MessageBase<NoteMsg> {
 public:
  explicit NoteMsg(int v) : v_(v) {}
  int value() const { return v_; }
  std::string type_name() const override { return "NOTE"; }
  std::size_t wire_size() const override { return kHeaderBytes + 4; }

 private:
  int v_;
};

/// Records (from, value, time) of everything delivered.
class Recorder : public Process {
 public:
  struct Entry {
    ProcessId from;
    int value;
    TimeNs at;
  };
  explicit Recorder(SimEnv& env) : env_(env) {}
  void on_message(ProcessId from, const Message& msg) override {
    const auto* note = msg_cast<NoteMsg>(msg);
    ASSERT_NE(note, nullptr);
    entries.push_back({from, note->value(), env_.now()});
  }
  std::vector<Entry> entries;

 private:
  SimEnv& env_;
};

TEST(SimEnv, DeliversMessagesWithLatency) {
  SimEnv env(std::make_shared<ConstantLatency>(ms(5)), 1);
  Recorder a(env);
  Recorder b(env);
  env.register_process(0, &a);
  env.register_process(1, &b);
  env.start();
  env.send(0, 1, std::make_shared<NoteMsg>(42));
  env.run_to_quiescence();
  ASSERT_EQ(b.entries.size(), 1u);
  EXPECT_EQ(b.entries[0].value, 42);
  EXPECT_EQ(b.entries[0].at, ms(5));
  EXPECT_TRUE(a.entries.empty());
}

TEST(SimEnv, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    SimEnv env(std::make_shared<UniformLatency>(ms(1), ms(20)), seed);
    Recorder r(env);
    Recorder s(env);
    env.register_process(0, &r);
    env.register_process(1, &s);
    env.start();
    for (int i = 0; i < 50; ++i) {
      env.send(0, 1, std::make_shared<NoteMsg>(i));
      env.send(1, 0, std::make_shared<NoteMsg>(100 + i));
    }
    env.run_to_quiescence();
    std::vector<std::pair<int, TimeNs>> trace;
    for (const auto& e : r.entries) trace.emplace_back(e.value, e.at);
    for (const auto& e : s.entries) trace.emplace_back(e.value, e.at);
    return trace;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // different seed, different schedule
}

TEST(SimEnv, ScheduleRunsCallbacksInOrder) {
  SimEnv env(std::make_shared<ConstantLatency>(ms(1)), 1);
  Recorder r(env);
  env.register_process(0, &r);
  env.start();
  std::vector<int> order;
  env.schedule(0, ms(30), [&] { order.push_back(3); });
  env.schedule(0, ms(10), [&] { order.push_back(1); });
  env.schedule(0, ms(20), [&] { order.push_back(2); });
  env.run_to_quiescence();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimEnv, TieBreakIsFifoBySequence) {
  SimEnv env(std::make_shared<ConstantLatency>(ms(1)), 1);
  Recorder r(env);
  env.register_process(0, &r);
  env.start();
  std::vector<int> order;
  env.schedule(0, ms(5), [&] { order.push_back(1); });
  env.schedule(0, ms(5), [&] { order.push_back(2); });
  env.schedule(0, ms(5), [&] { order.push_back(3); });
  env.run_to_quiescence();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimEnv, CrashDropsQueuedAndFutureDeliveries) {
  SimEnv env(std::make_shared<ConstantLatency>(ms(5)), 1);
  Recorder a(env);
  Recorder b(env);
  env.register_process(0, &a);
  env.register_process(1, &b);
  env.start();
  env.send(0, 1, std::make_shared<NoteMsg>(1));  // in flight
  env.crash(1);
  env.send(0, 1, std::make_shared<NoteMsg>(2));  // future
  env.run_to_quiescence();
  EXPECT_TRUE(b.entries.empty());
  EXPECT_TRUE(env.is_crashed(1));
}

TEST(SimEnv, CrashedProcessSendsNothing) {
  SimEnv env(std::make_shared<ConstantLatency>(ms(5)), 1);
  Recorder a(env);
  Recorder b(env);
  env.register_process(0, &a);
  env.register_process(1, &b);
  env.start();
  env.crash(0);
  env.send(0, 1, std::make_shared<NoteMsg>(1));
  env.run_to_quiescence();
  EXPECT_TRUE(b.entries.empty());
}

TEST(SimEnv, CrashedProcessScheduledCallbacksDropped) {
  SimEnv env(std::make_shared<ConstantLatency>(ms(5)), 1);
  Recorder a(env);
  env.register_process(0, &a);
  env.start();
  bool fired = false;
  env.schedule(0, ms(10), [&] { fired = true; });
  env.crash(0);
  env.run_to_quiescence();
  EXPECT_FALSE(fired);
}

TEST(SimEnv, HoldAndReleaseDelaysDelivery) {
  SimEnv env(std::make_shared<ConstantLatency>(ms(5)), 1);
  Recorder a(env);
  Recorder b(env);
  env.register_process(0, &a);
  env.register_process(1, &b);
  env.start();
  env.hold_messages(1);
  env.send(0, 1, std::make_shared<NoteMsg>(9));
  env.run_until(ms(100));
  EXPECT_TRUE(b.entries.empty());
  env.release_holds(1);
  env.run_to_quiescence();
  ASSERT_EQ(b.entries.size(), 1u);
  EXPECT_GE(b.entries[0].at, ms(100));  // delivered only after release
}

TEST(SimEnv, RunUntilPredStopsEarly) {
  SimEnv env(std::make_shared<ConstantLatency>(ms(1)), 1);
  Recorder a(env);
  env.register_process(0, &a);
  env.start();
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    env.schedule(0, ms(i + 1), [&] { ++count; });
  }
  EXPECT_TRUE(env.run_until_pred([&] { return count >= 3; }, seconds(1)));
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(env.idle());
}

TEST(SimEnv, TrafficCountersAccumulate) {
  SimEnv env(std::make_shared<ConstantLatency>(ms(1)), 1);
  Recorder a(env);
  Recorder b(env);
  env.register_process(0, &a);
  env.register_process(1, &b);
  env.start();
  env.send(0, 1, std::make_shared<NoteMsg>(1));
  env.send(0, 1, std::make_shared<NoteMsg>(2));
  env.run_to_quiescence();
  EXPECT_EQ(env.traffic().get("msgs"), 2);
  EXPECT_EQ(env.traffic().get("msg.NOTE"), 2);
  EXPECT_GT(env.traffic().get("bytes"), 0);
}

TEST(SimEnv, SeededFaultTrafficReplaysIdentically) {
  // Determinism guard for the ledger refactor: two runs with the same
  // seed and lossy links must produce byte-identical traffic maps
  // (including msgs.lost / msgs.dup drawn from the seeded rng).
  auto run = [](std::uint64_t seed) {
    SimEnv env(std::make_shared<UniformLatency>(ms(1), ms(10)), seed);
    Recorder r(env);
    Recorder s(env);
    env.register_process(0, &r);
    env.register_process(1, &s);
    env.start();
    env.faults().set_drop(0, 1, 0.3);
    env.faults().set_duplicate(1, 0, 0.3);
    for (int i = 0; i < 200; ++i) {
      env.send(0, 1, std::make_shared<NoteMsg>(i));
      env.send(1, 0, std::make_shared<NoteMsg>(1000 + i));
    }
    env.run_to_quiescence();
    return env.traffic().map();
  };
  auto first = run(11);
  EXPECT_EQ(first, run(11));
  EXPECT_GT(first.at("msgs.lost"), 0);
  EXPECT_GT(first.at("msgs.dup"), 0);
}

TEST(SimEnv, ServerIdsExcludeClients) {
  SimEnv env(std::make_shared<ConstantLatency>(ms(1)), 1);
  Recorder a(env);
  Recorder b(env);
  Recorder c(env);
  env.register_process(0, &a);
  env.register_process(1, &b);
  env.register_process(client_id(0), &c);
  auto ids = env.server_ids();
  EXPECT_EQ(ids, (std::vector<ProcessId>{0, 1}));
}

TEST(SimEnv, BroadcastToServersIncludesSender) {
  SimEnv env(std::make_shared<ConstantLatency>(ms(1)), 1);
  Recorder a(env);
  Recorder b(env);
  env.register_process(0, &a);
  env.register_process(1, &b);
  env.start();
  env.broadcast_to_servers(0, std::make_shared<NoteMsg>(5));
  env.run_to_quiescence();
  EXPECT_EQ(a.entries.size(), 1u);  // self-delivery
  EXPECT_EQ(b.entries.size(), 1u);
}

TEST(LatencyModels, HeavyTailRespectsCap) {
  HeavyTailLatency model(ms(1), ms(2), 1.2, ms(500));
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    TimeNs d = model.sample(0, 1, rng);
    EXPECT_GE(d, ms(1));
    EXPECT_LE(d, ms(500));
  }
}

TEST(LatencyModels, DegradableScalesSelectedProcess) {
  auto degradable = std::make_unique<DegradableLatency>(
      std::make_unique<ConstantLatency>(ms(10)));
  DegradableLatency* handle = degradable.get();
  Rng rng(3);
  EXPECT_EQ(handle->sample(0, 1, rng), ms(10));
  handle->set_factor(1, 4.0);
  EXPECT_EQ(handle->sample(0, 1, rng), ms(40));
  EXPECT_EQ(handle->sample(2, 3, rng), ms(10));  // others unaffected
  handle->clear_factor(1);
  EXPECT_EQ(handle->sample(0, 1, rng), ms(10));
}

}  // namespace
}  // namespace wrs
