#include "common/metrics.h"

#include <gtest/gtest.h>

#include <string_view>
#include <thread>
#include <vector>

#include "common/flat_map.h"
#include "common/rng.h"
#include "common/types.h"
#include "runtime/traffic_ledger.h"

namespace wrs {
namespace {

TEST(Histogram, EmptySummaries) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.median(), 3.0);
  EXPECT_DOUBLE_EQ(h.sum(), 15.0);
}

TEST(Histogram, PercentileNearestRank) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.percentile(90), 90.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_THROW(h.percentile(101), std::invalid_argument);
}

TEST(Histogram, StddevOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.add(7.0);
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
}

TEST(Histogram, SummaryScalesValues) {
  Histogram h;
  h.add_time(ms(10));
  std::string s = h.summary(1.0 / kNsPerMs);
  EXPECT_NE(s.find("mean=10.000"), std::string::npos);
}

TEST(TimeSeries, MeanInWindow) {
  TimeSeries ts;
  ts.add(ms(10), 1.0);
  ts.add(ms(20), 3.0);
  ts.add(ms(30), 5.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(ms(10), ms(25)), 2.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(ms(0), ms(100)), 3.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(ms(40), ms(50)), 0.0);
}

TEST(Counters, IncGetMerge) {
  Counters a;
  a.inc("x");
  a.inc("x", 2);
  a.inc("y", 5);
  EXPECT_EQ(a.get("x"), 3);
  EXPECT_EQ(a.get("z"), 0);
  Counters b;
  b.inc("x", 10);
  a.merge(b);
  EXPECT_EQ(a.get("x"), 13);
  EXPECT_EQ(a.get("y"), 5);
}

TEST(Counters, HeterogeneousLookupByStringView) {
  // inc/get take string_view so hot paths can count without building a
  // std::string per call; the transparent comparator makes the lookup
  // allocation-free too.
  Counters c;
  std::string_view key = "msgs.batched";
  c.inc(key, 4);
  c.inc(key);
  EXPECT_EQ(c.get(key), 5);
  EXPECT_EQ(c.get("msgs.batched"), 5);
  EXPECT_EQ(c.map().count("msgs.batched"), 1u);
}

struct LedgerPing : MessageBase<LedgerPing> {
  std::string type_name() const override { return "LPING"; }
  std::size_t wire_size() const override { return kHeaderBytes; }
};

TEST(TrafficLedger, SnapshotUsesLegacyKeyNames) {
  TrafficLedger ledger;
  LedgerPing ping;
  ledger.count_message(ping, 16);
  ledger.count_message(ping, 16);
  ledger.inc(TrafficLedger::kMsgsLost);
  ledger.inc(TrafficLedger::kBytesIn, 128);
  Counters snap = ledger.snapshot();
  EXPECT_EQ(snap.get("msgs"), 2);
  EXPECT_EQ(snap.get("bytes"), 32);
  EXPECT_EQ(snap.get("msg.LPING"), 2);
  EXPECT_EQ(snap.get("msgs.lost"), 1);
  EXPECT_EQ(snap.get("bytes.in"), 128);
  EXPECT_EQ(snap.get("msgs.dup"), 0);          // zero slots are omitted
  EXPECT_EQ(snap.map().count("msgs.dup"), 0u);
  EXPECT_EQ(ledger.get(TrafficLedger::kMsgs), 2);
}

TEST(TrafficLedger, ConcurrentIncrementsSumExactly) {
  // The sharded relaxed-atomic banks must not lose counts: N threads
  // doing K increments each always sum to N*K in the snapshot.
  TrafficLedger ledger;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  LedgerPing ping;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) ledger.count_message(ping, 16);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ledger.get(TrafficLedger::kMsgs), kThreads * kPerThread);
  Counters snap = ledger.snapshot();
  EXPECT_EQ(snap.get("msgs"), kThreads * kPerThread);
  EXPECT_EQ(snap.get("msg.LPING"), kThreads * kPerThread);
  EXPECT_EQ(snap.get("bytes"), 16 * kThreads * kPerThread);
}

TEST(FlatMap, BasicMapSemantics) {
  FlatMap<int, std::string> m;
  EXPECT_TRUE(m.empty());
  m[3] = "three";
  m[1] = "one";
  m[2] = "two";
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.at(2), "two");
  EXPECT_EQ(m.count(1), 1u);
  EXPECT_EQ(m.count(9), 0u);
  EXPECT_EQ(m.find(9), m.end());
  // Iteration is in key order, like std::map — determinism depends on it.
  std::vector<int> keys;
  for (const auto& [k, v] : m) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<int>{1, 2, 3}));
  m[2] = "TWO";  // operator[] on an existing key updates in place
  EXPECT_EQ(m.at(2), "TWO");
  EXPECT_EQ(m.size(), 3u);
}

TEST(FlatMap, EmplaceAndErase) {
  FlatMap<int, int> m;
  auto [it1, inserted1] = m.emplace(5, 50);
  EXPECT_TRUE(inserted1);
  EXPECT_EQ(it1->second, 50);
  auto [it2, inserted2] = m.emplace(5, 99);
  EXPECT_FALSE(inserted2);  // no overwrite, like std::map
  EXPECT_EQ(it2->second, 50);
  m.emplace(1, 10);
  m.emplace(9, 90);
  EXPECT_EQ(m.erase(5), 1u);
  EXPECT_EQ(m.erase(5), 0u);
  auto it = m.find(1);
  ASSERT_NE(it, m.end());
  it = m.erase(it);  // iterator erase returns the successor
  ASSERT_NE(it, m.end());
  EXPECT_EQ(it->first, 9);
  EXPECT_EQ(m.size(), 1u);
}

TEST(Table, FormatsAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::string s = t.str();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("| alpha"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one-cell"}), std::invalid_argument);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(1.0, 0), "1");
}

TEST(Rng, DeterministicStreams) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  Rng c(43);
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 10; ++i) differs |= (a2() != c());
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  // The child must not replay the parent's stream.
  Rng fresh(42);
  fresh();  // advance past the split draw
  bool differs = false;
  for (int i = 0; i < 10; ++i) differs |= (child() != fresh());
  EXPECT_TRUE(differs);
}

TEST(ProcessNames, Formatting) {
  EXPECT_EQ(process_name(0), "s0");
  EXPECT_EQ(process_name(client_id(3)), "c3");
  EXPECT_EQ(process_name(kNoProcess), "none");
  EXPECT_TRUE(is_server(5));
  EXPECT_FALSE(is_client(5));
  EXPECT_TRUE(is_client(client_id(0)));
  EXPECT_EQ(all_servers(3).size(), 3u);
}

}  // namespace
}  // namespace wrs
