#include "consensus/paxos.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>

#include "runtime/sim_env.h"

namespace wrs {
namespace {

class PaxosProcess : public Process {
 public:
  PaxosProcess(Env& env, ProcessId self, std::uint32_t n, std::uint32_t f,
               std::uint64_t seed)
      : node_(
            env, self, n, f,
            [this](InstanceId i, const PaxosValue& v) { decisions[i] = v; },
            seed) {}
  void on_message(ProcessId from, const Message& msg) override {
    node_.handle(from, msg);
  }
  PaxosNode& node() { return node_; }
  std::map<InstanceId, PaxosValue> decisions;

 private:
  PaxosNode node_;
};

struct PaxosCluster {
  std::unique_ptr<SimEnv> env;
  std::vector<std::unique_ptr<PaxosProcess>> servers;
  std::uint32_t n;

  PaxosCluster(std::uint32_t n_, std::uint32_t f, std::uint64_t seed,
               TimeNs lo = ms(1), TimeNs hi = ms(10))
      : n(n_) {
    env = std::make_unique<SimEnv>(std::make_shared<UniformLatency>(lo, hi),
                                   seed);
    for (std::uint32_t i = 0; i < n; ++i) {
      servers.push_back(
          std::make_unique<PaxosProcess>(*env, i, n, f, seed + i));
      env->register_process(i, servers.back().get());
    }
    env->start();
  }

  bool all_decided(InstanceId inst) const {
    for (std::uint32_t i = 0; i < n; ++i) {
      if (env->is_crashed(i)) continue;
      if (!servers[i]->node().decided(inst)) return false;
    }
    return true;
  }
};

TEST(Paxos, SingleProposerDecides) {
  PaxosCluster c(5, 2, 1);
  c.servers[0]->node().propose(0, "alpha");
  ASSERT_TRUE(c.env->run_until_pred([&] { return c.all_decided(0); },
                                    seconds(120)));
  for (const auto& s : c.servers) {
    EXPECT_EQ(*s->node().decision(0), "alpha");
  }
}

TEST(Paxos, AgreementUnderConcurrentProposers) {
  for (std::uint64_t seed : {11u, 12u, 13u, 14u, 15u, 16u, 17u, 18u}) {
    PaxosCluster c(5, 2, seed);
    for (std::uint32_t i = 0; i < 5; ++i) {
      c.servers[i]->node().propose(0, "v" + std::to_string(i));
    }
    ASSERT_TRUE(c.env->run_until_pred([&] { return c.all_decided(0); },
                                      seconds(300)))
        << "seed " << seed;
    // Agreement: all identical.
    PaxosValue v = *c.servers[0]->node().decision(0);
    for (const auto& s : c.servers) {
      EXPECT_EQ(*s->node().decision(0), v) << "seed " << seed;
    }
    // Validity: decided value was proposed.
    EXPECT_TRUE(v.size() == 2 && v[0] == 'v');
  }
}

TEST(Paxos, ToleratesMinorityCrashes) {
  PaxosCluster c(5, 2, 21);
  c.env->crash(3);
  c.env->crash(4);
  c.servers[1]->node().propose(0, "resilient");
  ASSERT_TRUE(c.env->run_until_pred([&] { return c.all_decided(0); },
                                    seconds(300)));
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(*c.servers[i]->node().decision(0), "resilient");
  }
}

TEST(Paxos, IndependentInstances) {
  PaxosCluster c(5, 2, 31);
  c.servers[0]->node().propose(0, "zero");
  c.servers[1]->node().propose(1, "one");
  c.servers[2]->node().propose(2, "two");
  ASSERT_TRUE(c.env->run_until_pred(
      [&] {
        return c.all_decided(0) && c.all_decided(1) && c.all_decided(2);
      },
      seconds(300)));
  EXPECT_EQ(*c.servers[4]->node().decision(0), "zero");
  EXPECT_EQ(*c.servers[4]->node().decision(1), "one");
  EXPECT_EQ(*c.servers[4]->node().decision(2), "two");
}

TEST(Paxos, SafetyUnderHeavyTailDelays) {
  // Safety must hold under nasty asynchrony even if liveness suffers:
  // run with heavy-tailed latencies and verify no two servers disagree.
  for (std::uint64_t seed : {41u, 42u, 43u, 44u}) {
    auto latency = std::make_shared<HeavyTailLatency>(ms(1), ms(5), 1.1,
                                                      seconds(2));
    SimEnv env(latency, seed);
    std::vector<std::unique_ptr<PaxosProcess>> servers;
    for (std::uint32_t i = 0; i < 5; ++i) {
      servers.push_back(std::make_unique<PaxosProcess>(env, i, 5, 2,
                                                       seed + i));
      env.register_process(i, servers.back().get());
    }
    env.start();
    for (std::uint32_t i = 0; i < 5; ++i) {
      servers[i]->node().propose(0, "w" + std::to_string(i));
    }
    env.run_until(seconds(60));
    std::optional<PaxosValue> decided;
    for (const auto& s : servers) {
      auto d = s->node().decision(0);
      if (!d.has_value()) continue;
      if (decided.has_value()) {
        EXPECT_EQ(*decided, *d) << "disagreement, seed " << seed;
      } else {
        decided = d;
      }
    }
  }
}

}  // namespace
}  // namespace wrs
