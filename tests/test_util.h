// Shared helpers for the gtest suite: cluster builders on SimEnv and
// convenience runners.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/config.h"
#include "core/reassign_node.h"
#include "runtime/sim_env.h"
#include "storage/dynamic_node.h"

namespace wrs::test {

/// A simulator with a uniform-latency network, n reassignment servers.
struct ReassignCluster {
  std::unique_ptr<SimEnv> env;
  SystemConfig config;
  std::vector<std::unique_ptr<ReassignNode>> nodes;

  ReassignCluster(std::uint32_t n, std::uint32_t f, std::uint64_t seed,
                  WeightMap initial = WeightMap(), TimeNs lat_lo = ms(1),
                  TimeNs lat_hi = ms(10)) {
    config = initial.size() == 0
                 ? SystemConfig::uniform(n, f)
                 : SystemConfig::make(n, f, std::move(initial));
    env = std::make_unique<SimEnv>(
        std::make_shared<UniformLatency>(lat_lo, lat_hi), seed);
    for (std::uint32_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<ReassignNode>(*env, i, config));
      env->register_process(i, nodes.back().get());
    }
    env->start();
  }

  ReassignNode& node(std::uint32_t i) { return *nodes[i]; }
};

/// n dynamic storage nodes (reassign + ABD server) on a SimEnv.
struct StorageCluster {
  std::unique_ptr<SimEnv> env;
  SystemConfig config;
  std::vector<std::unique_ptr<DynamicStorageNode>> nodes;

  StorageCluster(std::uint32_t n, std::uint32_t f, std::uint64_t seed,
                 WeightMap initial = WeightMap(), TimeNs lat_lo = ms(1),
                 TimeNs lat_hi = ms(10)) {
    config = initial.size() == 0
                 ? SystemConfig::uniform(n, f)
                 : SystemConfig::make(n, f, std::move(initial));
    env = std::make_unique<SimEnv>(
        std::make_shared<UniformLatency>(lat_lo, lat_hi), seed);
    for (std::uint32_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<DynamicStorageNode>(*env, i, config));
      env->register_process(i, nodes.back().get());
    }
    env->start();
  }

  DynamicStorageNode& node(std::uint32_t i) { return *nodes[i]; }
};

/// Runs the simulator until `pred` holds; fails the test on timeout.
inline void run_until(SimEnv& env, const std::function<bool()>& pred,
                      TimeNs deadline = seconds(300)) {
  ASSERT_TRUE(env.run_until_pred(pred, deadline))
      << "simulation deadline reached at t=" << env.now();
}

/// Seeds for schedule-exploration property tests.
inline std::vector<std::uint64_t> sweep_seeds(std::size_t count,
                                              std::uint64_t base = 1000) {
  std::vector<std::uint64_t> seeds(count);
  for (std::size_t i = 0; i < count; ++i) seeds[i] = base + 17 * i;
  return seeds;
}

}  // namespace wrs::test
