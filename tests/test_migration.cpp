// Elastic resharding: the MigrationEngine's linearizable per-key
// handoff, the Rebalancer controller, and their chaos behavior.
//
//   * ShardMap override-table semantics (epoch-versioned exceptions
//     layered on the static hash assignment);
//   * migrate_key end-to-end on both runtimes: data moves, stale
//     clients are redirected exactly once and then route directly,
//     route marks commit on every source server;
//   * writes racing the freeze fence park and land at the destination
//     with per-key tag order intact;
//   * a seeded chaos episode — Nemesis link faults + a server crash +
//     concurrent weight transfers + a MigrationStorm over a recorded
//     workload — stays atomic, loses/duplicates no key across the
//     map-epoch commits, and conserves every shard's total weight;
//   * the Rebalancer moves hot keys off a skewed shard;
//   * the whole path over Transport::kSocket (real loopback TCP).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/cluster.h"
#include "runtime/sync.h"
#include "storage/history.h"
#include "testing/nemesis.h"

namespace wrs {
namespace {

// --- ShardMap overrides -----------------------------------------------------

TEST(ShardMapOverride, LayersExceptionsOnStaticHash) {
  ShardMap map = ShardMap::uniform(4, 3, 1, WeightMap::uniform(3));
  RegisterKey key = "k3";
  ShardId base = map.shard_of(key);
  ShardId other = (base + 1) % 4;

  EXPECT_EQ(map.num_overrides(), 0u);
  EXPECT_EQ(map.epoch(), 0u);

  EXPECT_TRUE(map.apply_override(key, other, 5));
  EXPECT_EQ(map.shard_of(key), other);
  EXPECT_EQ(map.epoch(), 5u);
  EXPECT_EQ(map.num_overrides(), 1u);
  ASSERT_TRUE(map.override_of(key).has_value());
  EXPECT_EQ(map.override_of(key)->owner, other);
  EXPECT_EQ(map.override_of(key)->epoch, 5u);

  // Unrelated keys keep their static assignment.
  EXPECT_EQ(map.shard_of("k4"), map.static_hash_shard_of("k4"));
}

TEST(ShardMapOverride, OnlyStrictlyNewerEpochsApply) {
  ShardMap map = ShardMap::uniform(2, 3, 1, WeightMap::uniform(3));
  RegisterKey key = "x";
  EXPECT_TRUE(map.apply_override(key, 1, 7));
  // Same epoch: refused (duplicate redirect), owner unchanged.
  EXPECT_FALSE(map.apply_override(key, 0, 7));
  EXPECT_EQ(map.shard_of(key), 1u);
  // Older epoch: refused.
  EXPECT_FALSE(map.apply_override(key, 0, 3));
  EXPECT_EQ(map.shard_of(key), 1u);
  // Newer epoch wins, map epoch follows the max.
  EXPECT_TRUE(map.apply_override(key, 0, 9));
  EXPECT_EQ(map.shard_of(key), 0u);
  EXPECT_EQ(map.epoch(), 9u);
}

TEST(ShardMapOverride, ValidatesOwner) {
  ShardMap map = ShardMap::uniform(2, 3, 1, WeightMap::uniform(3));
  EXPECT_THROW(map.apply_override("k", 2, 1), std::out_of_range);
}

// --- end-to-end handoff -----------------------------------------------------

/// The key's static shard under the deployment's map (what a fresh
/// client routes by before it learns any override).
ShardId static_shard(const Cluster& c, const RegisterKey& key) {
  return c.shard_map().static_hash_shard_of(key);
}

void expect_migrate_moves_data(Runtime rt) {
  Cluster c = Cluster::builder()
                  .servers(3)
                  .shards(4)
                  .clients(2)
                  .runtime(rt)
                  .seed(42)
                  .build();

  RegisterKey key = "hot";
  ShardId src = static_shard(c, key);
  ShardId dst = (src + 1) % 4;

  Tag t1 = c.client(0).write(key, "v1").get();
  ASSERT_TRUE(c.migrate_key(key, dst).get());
  EXPECT_EQ(c.migration_engine().owner_of(key), dst);

  MigrationStats ms = c.migration_stats();
  EXPECT_EQ(ms.started, 1u);
  EXPECT_EQ(ms.committed, 1u);
  EXPECT_EQ(ms.in_flight, 0u);
  EXPECT_GE(ms.epoch, 1u);

  // The destination group holds the (tag, value) the source froze.
  std::uint32_t holders = 0;
  for (ProcessId s : c.shard_servers(dst)) {
    if (c.storage_node(s).server().reg(key).tag == t1) ++holders;
  }
  EXPECT_GE(holders, 2u);  // a quorum of the 3-server group

  // Every source server eventually commits its mark (fault-free: the
  // commit broadcast reaches the whole group) — fence down, owner
  // recorded. migrate_key() completes on a QUORUM of commit acks, so on
  // the thread runtime the slowest server's mark can trail the future:
  // probe it ON THAT SERVER'S OWN WORKER (serialized with the pending
  // MigCommit apply) and poll for the settled state. On the simulator
  // the future pumps to quiescence, so a direct read is already settled.
  for (ProcessId s : c.shard_servers(src)) {
    std::optional<AbdServer::RouteMark> mark;
    if (rt == Runtime::kSim) {
      mark = c.storage_node(s).server().route_mark(key);
    } else {
      auto probe = [&] {
        // shared_ptr: the worker's set() may still be inside notify_all
        // when wait_for returns, so the task must co-own the Waiter.
        auto w =
            std::make_shared<Waiter<std::optional<AbdServer::RouteMark>>>();
        c.env().schedule(s, 0, [&, w] {
          w->set(c.storage_node(s).server().route_mark(key));
        });
        return w->wait_for(seconds(5)).value_or(std::nullopt);
      };
      mark = probe();
      for (int spin = 0; spin < 2000 && !(mark && mark->committed);
           ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        mark = probe();
      }
    }
    ASSERT_TRUE(mark.has_value()) << process_name(s);
    EXPECT_EQ(mark->owner, dst);
    EXPECT_TRUE(mark->committed);
    EXPECT_FALSE(mark->frozen);
  }

  // A stale client (static map) reads through exactly one redirect,
  // learns the override, and then routes directly.
  ClientHandle stale = c.client(1);
  EXPECT_EQ(stale.router().redirects(), 0u);
  EXPECT_EQ(stale.read(key).get().value, "v1");
  EXPECT_EQ(stale.router().redirects(), 1u);
  EXPECT_EQ(stale.read(key).get().value, "v1");
  EXPECT_EQ(stale.router().redirects(), 1u);

  // Writes through the learned route land at the destination.
  Tag t2 = stale.write(key, "v2").get();
  EXPECT_TRUE(t1 < t2);
  EXPECT_EQ(c.client(0).read(key).get().value, "v2");

  // Migrating a key already at its target is a no-op success.
  ASSERT_TRUE(c.migrate_key(key, dst).get());
  EXPECT_EQ(c.migration_stats().noops, 1u);

  // And the key can move again — including back to where it started.
  ASSERT_TRUE(c.migrate_key(key, src).get());
  EXPECT_EQ(c.migration_engine().owner_of(key), src);
  EXPECT_EQ(c.client(0).read(key).get().value, "v2");
}

TEST(Migration, MovesDataEndToEndSim) {
  expect_migrate_moves_data(Runtime::kSim);
}

TEST(Migration, MovesDataEndToEndThreads) {
  expect_migrate_moves_data(Runtime::kThread);
}

TEST(Migration, ValidatesTargets) {
  Cluster sharded =
      Cluster::builder().servers(3).shards(2).runtime(Runtime::kSim).build();
  EXPECT_THROW(sharded.migrate_key("k", 2), std::out_of_range);

  Cluster single =
      Cluster::builder().servers(3).runtime(Runtime::kSim).build();
  EXPECT_THROW(single.migrate_key("k", 0), std::logic_error);
  EXPECT_THROW(single.migration_stats(), std::logic_error);
  EXPECT_THROW(single.rebalancer(), std::logic_error);
  EXPECT_THROW(Cluster::builder().servers(3).rebalance().build(),
               std::invalid_argument);
}

TEST(Migration, WritesRacingTheFreezeLandAtTheDestination) {
  Cluster c = Cluster::builder()
                  .servers(3)
                  .shards(2)
                  .clients(2)
                  .uniform_latency(us(200), ms(2))
                  .runtime(Runtime::kSim)
                  .seed(7)
                  .build();

  RegisterKey key = "contested";
  ShardId src = static_shard(c, key);
  ShardId dst = 1 - src;
  c.client(0).write(key, "w0").get();

  // Issue the migration and a burst of writes WITHOUT awaiting, so the
  // writes overlap the freeze window: some park behind the fence and
  // drain as redirects when the commit lifts it.
  Await<bool> mig = c.migrate_key(key, dst);
  std::vector<Await<Tag>> writes;
  for (int i = 0; i < 6; ++i) {
    writes.push_back(c.client(1).write(key, "w" + std::to_string(i + 1)));
  }
  ASSERT_TRUE(mig.get());
  Tag max_tag;
  for (auto& w : writes) {
    Tag t = w.get();
    if (max_tag < t) max_tag = t;
  }

  // Per-key tag order survived the handoff: the read sees the newest
  // write, served by the destination group.
  TaggedValue fin = c.client(0).read(key).get();
  EXPECT_EQ(fin.tag, max_tag);
  EXPECT_EQ(c.migration_engine().owner_of(key), dst);
  std::uint32_t parked = 0;
  for (ProcessId s : c.shard_servers(src)) {
    parked += c.storage_node(s).server().frozen_parked();
  }
  EXPECT_GT(parked, 0u);  // the race really hit the fence
}

// --- chaos: migration storm under nemesis faults ----------------------------

void expect_chaos_migration_atomic(Runtime rt, std::uint64_t seed) {
  const std::uint32_t shards = 4;
  const std::uint32_t n = 3;
  const TimeNs horizon = ms(300);
  const std::size_t num_keys = 16;

  WorkloadParams wp;
  wp.num_ops = 60;
  wp.read_ratio = 0.5;
  wp.value_size = 8;
  wp.num_keys = num_keys;
  wp.zipf_theta = 0.99;
  wp.target_ops_per_sec = 300;
  wp.max_in_flight = 8;
  wp.seed = seed;

  auto history = std::make_shared<HistoryRecorder>();
  Cluster c = Cluster::builder()
                  .servers(n)
                  .faults(1)
                  .shards(shards)
                  .clients(2)
                  .workload(wp)
                  .history(history)
                  .uniform_latency(us(200), ms(2))
                  .retry(ms(10))
                  .anti_entropy(ms(25))
                  .runtime(rt)
                  .seed(seed)
                  .build();

  // The resharding storm: enough attempts that well over 50 handoffs
  // commit even after same-key refusals and same-shard no-ops.
  testing::MigrationStormParams msp;
  msp.horizon = horizon;
  msp.attempts = 150;
  msp.num_keys = num_keys;
  testing::MigrationStorm storm(c, seed ^ 0x9e3779b97f4a7c15ull, msp);
  storm.unleash();

  // Concurrent intra-group reconfiguration, so weight conservation is a
  // live check rather than a vacuous one.
  testing::TransferStormParams tsp;
  tsp.horizon = horizon;
  tsp.attempts = 4;
  testing::TransferStorm transfers(c, seed + 1, tsp);
  transfers.unleash();

  // Link faults + one crash while keys are mid-handoff.
  testing::NemesisParams np;
  np.horizon = horizon;
  np.events = 6;
  np.crash_budget = 1;
  np.drop_p_max = 0.3;
  testing::Nemesis nemesis(c, seed + 2, np);
  nemesis.unleash();

  c.run_for(horizon + ms(80));

  // Drain: every migration attempt must resolve (commit or refusal) —
  // engine retries + the healed tail give the quorum rounds liveness.
  for (int round = 0; round < 200 && storm.completed() < msp.attempts;
       ++round) {
    c.run_for(ms(25));
  }
  ASSERT_EQ(storm.completed(), msp.attempts) << "migrations stuck (liveness)";

  for (std::size_t k = 0; k < c.num_clients(); ++k) {
    ASSERT_TRUE(c.workload_done(k).try_get(seconds(30)).has_value())
        << "workload client #" << k << " never finished";
  }

  MigrationStats mig = c.migration_stats();
  EXPECT_GE(mig.committed, 50u) << "episode did not exercise >= 50 handoffs";
  EXPECT_EQ(mig.in_flight, 0u);

  // Weight reconciliation is anti-entropy-driven: a minority server that
  // missed a transfer round behind a partition (or the crash) catches up
  // only from the periodic exchange, so give it bounded rounds to
  // converge BEFORE freezing the timers (the same convergence-then-check
  // shape as test_chaos_fuzz).
  auto probe = [&c](ProcessId s) {
    Await<ChangeSet> aw = c.make_await<ChangeSet>();
    ReassignNode* node = &c.server(s).node();
    c.post(s, [node, aw] { aw.fulfill(node->changes()); });
    return aw;
  };
  // Weight is conserved over SETTLED state: the initial grants plus every
  // transfer both of whose halves arrived. A crash can strand one half of
  // an in-flight transfer on the dead issuer forever (the live side then
  // carries an unresolved half of pair count 1), so pairwise conservation
  // is asserted over complete pairs, exactly what the paper's invariant
  // covers.
  auto settled_total = [](const ChangeSet& cs) {
    Weight sum;
    for (const Change& ch : cs.all()) {
      if (ch.counter() == kInitialChangeCounter ||
          cs.count_pair(ch.issuer(), ch.counter()) == 2) {
        sum += ch.delta;
      }
    }
    return sum;
  };
  auto weights_converged = [&]() {
    for (ShardId g = 0; g < shards; ++g) {
      std::optional<ChangeSet> first;
      for (std::uint32_t i = 0; i < n; ++i) {
        ProcessId s = c.server_id(g, i);
        if (c.is_crashed(s)) continue;
        auto cs = probe(s).try_get(seconds(10));
        if (!cs.has_value()) return false;
        if (!(settled_total(*cs) == c.shard_config(g).initial_total())) {
          return false;
        }
        if (!first.has_value()) {
          first = *cs;
        } else if (!(*cs == *first)) {
          return false;  // live servers of the shard not yet reconciled
        }
      }
    }
    return true;
  };
  for (int round = 0; round < 200 && !weights_converged(); ++round) {
    c.run_for(ms(25));
  }

  c.set_anti_entropy(0);
  c.quiesce(seconds(120));

  // --- safety ---------------------------------------------------------------
  std::vector<OpRecord> ops = history->completed();
  auto err = check_atomicity(ops);
  EXPECT_FALSE(err.has_value()) << "atomicity: " << err.value_or("");

  // No key lost across the map-epoch commits: every key the workload
  // wrote is still discoverable at some shard's quorum.
  std::set<RegisterKey> expected;
  for (const OpRecord& op : ops) {
    if (op.kind == OpRecord::Kind::kWrite) expected.insert(op.key);
  }
  std::vector<RegisterKey> listed = c.client(0).list_keys().get();
  std::set<RegisterKey> found(listed.begin(), listed.end());
  for (const RegisterKey& key : expected) {
    EXPECT_TRUE(found.count(key)) << "key " << key << " lost by resharding";
  }

  // No split-brain ownership: a FRESH client (static map, no learned
  // overrides) writes a sentinel through the redirect chain; a second
  // fresh client must read exactly that sentinel back. If two groups
  // both still served a key, one of these fresh routes would hit the
  // stale group and miss the sentinel.
  ClientHandle wtr = c.client(c.add_client());
  ClientHandle rdr = c.client(c.add_client());
  for (const RegisterKey& key : expected) {
    Value sentinel = "fin:" + key;
    ASSERT_TRUE(wtr.write(key, sentinel).try_get(seconds(30)).has_value());
    auto got = rdr.read(key).try_get(seconds(30));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->value, sentinel)
        << "key " << key << " has divergent owners (duplicated)";
  }

  // Weight conservation, shard by shard: migrations move KEYS, never
  // weight, and the concurrent transfers only redistribute within their
  // group. Each server's change set is sampled in its own context.
  for (ShardId g = 0; g < shards; ++g) {
    for (std::uint32_t i = 0; i < n; ++i) {
      ProcessId s = c.server_id(g, i);
      if (c.is_crashed(s)) continue;
      auto cs = probe(s).try_get(seconds(10));
      ASSERT_TRUE(cs.has_value());
      EXPECT_TRUE(settled_total(*cs) == c.shard_config(g).initial_total())
          << "shard " << g << " settled weight drifted (seen from "
          << process_name(s) << "): " << settled_total(*cs).str()
          << " raw " << cs->total().str();
    }
  }
}

TEST(Migration, ChaosStormStaysAtomicSim) {
  expect_chaos_migration_atomic(Runtime::kSim, 20260808u);
}

TEST(Migration, ChaosStormStaysAtomicThreads) {
  expect_chaos_migration_atomic(Runtime::kThread, 20260809u);
}

// --- rebalancer -------------------------------------------------------------

TEST(Migration, RebalancerSpreadsAHotShard) {
  // Open-loop Zipf workload: rank-0 keys hash wherever they hash, so
  // one shard serves a large multiple of the mean. The controller must
  // notice and migrate hot keys off it.
  WorkloadParams wp;
  wp.num_ops = 400;
  wp.read_ratio = 0.5;
  wp.value_size = 8;
  wp.num_keys = 32;
  wp.zipf_theta = 0.99;
  wp.target_ops_per_sec = 2000;
  wp.max_in_flight = 16;
  wp.seed = 99;

  RebalanceParams rp;
  rp.period = ms(20);
  rp.skew_threshold = 1.3;
  rp.top_k = 4;
  rp.min_window_ops = 32;

  Cluster c = Cluster::builder()
                  .servers(3)
                  .shards(4)
                  .clients(1)
                  .workload(wp)
                  .rebalance(rp)
                  .uniform_latency(us(200), ms(2))
                  .runtime(Runtime::kSim)
                  .seed(5)
                  .build();

  ASSERT_TRUE(c.workload_done(0).try_get(seconds(60)).has_value());
  c.rebalancer().stop();
  c.quiesce(seconds(120));

  RebalanceStats rs = c.rebalance_stats();
  EXPECT_GT(rs.rounds, 0u);
  EXPECT_GT(rs.skewed, 0u) << "the Zipf hotspot never tripped the threshold";
  EXPECT_GT(rs.moved, 0u) << "no hot key was migrated";
  EXPECT_GT(c.migration_stats().committed, 0u);
  // The authoritative map now carries overrides for the moved keys.
  EXPECT_GT(c.migration_engine().map().num_overrides(), 0u);
}

// --- sockets ----------------------------------------------------------------

#ifdef __linux__
TEST(Migration, MigrateKeyOverSocketTransport) {
  Cluster c = Cluster::builder()
                  .servers(3)
                  .shards(2)
                  .clients(2)
                  .transport(Transport::kSocket)
                  .seed(11)
                  .build();

  RegisterKey key = "sock";
  ShardId src = static_shard(c, key);
  ShardId dst = 1 - src;

  Tag t = c.client(0).write(key, "over-tcp").get();
  ASSERT_TRUE(c.migrate_key(key, dst).try_get(seconds(30)).value_or(false));
  EXPECT_EQ(c.migration_engine().owner_of(key), dst);

  // Stale client redirect + direct route, all over real loopback TCP.
  ClientHandle stale = c.client(1);
  auto got = stale.read(key).try_get(seconds(30));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->value, "over-tcp");
  EXPECT_EQ(got->tag, t);
  EXPECT_GE(stale.router().redirects(), 1u);

  std::uint32_t holders = 0;
  for (ProcessId s : c.shard_servers(dst)) {
    if (c.storage_node(s).server().reg(key).tag == t) ++holders;
  }
  EXPECT_GE(holders, 2u);
}
#endif  // __linux__

}  // namespace
}  // namespace wrs
