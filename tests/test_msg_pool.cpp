// MsgPool: slab recycling, size-class routing, and — the part chaos
// cares about — the transparent heap fallback when the slab budget is
// exhausted (set_slab_limit). These run under ASan in CI: a double-free
// between pool and heap paths, or an adopted block freed with the wrong
// operator, would fire there.

#include "runtime/msg_pool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

namespace wrs {
namespace {

class PoolNote : public MessageBase<PoolNote> {
 public:
  explicit PoolNote(int v) : v_(v) {}
  int value() const { return v_; }
  std::string type_name() const override { return "POOL_NOTE"; }
  std::size_t wire_size() const override { return kHeaderBytes + 4; }

 private:
  int v_;
};

TEST(MsgPool, SizeClassRoundTripReusesBlocks) {
  MsgPool& pool = MsgPool::instance();
  const auto before = pool.stats();

  // Warm the thread-local cache, then free: the next allocation of the
  // same class must come back from the cache (same pointer, LIFO).
  void* a = pool.allocate(64, 8);
  pool.deallocate(a, 64, 8);
  void* b = pool.allocate(64, 8);
  EXPECT_EQ(a, b);
  pool.deallocate(b, 64, 8);

  const auto after = pool.stats();
  EXPECT_GT(after.pool_allocs, before.pool_allocs);
  EXPECT_EQ(after.heap_allocs, before.heap_allocs);
}

TEST(MsgPool, RequestsRoundUpWithinOneClass) {
  MsgPool& pool = MsgPool::instance();
  // 65..96 all land in the 96-byte class: a freed 96-byte request must
  // satisfy a later 70-byte one.
  void* a = pool.allocate(96, 8);
  pool.deallocate(a, 96, 8);
  void* b = pool.allocate(70, 8);
  EXPECT_EQ(a, b);
  pool.deallocate(b, 70, 8);
}

TEST(MsgPool, OversizeFallsThroughToHeap) {
  MsgPool& pool = MsgPool::instance();
  const auto before = pool.stats();
  void* p = pool.allocate(4096, 8);  // > kMaxBlockBytes
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, 4096);
  pool.deallocate(p, 4096, 8);
  const auto after = pool.stats();
  EXPECT_EQ(after.heap_allocs, before.heap_allocs + 1);
  EXPECT_EQ(after.pool_allocs, before.pool_allocs);
}

TEST(MsgPool, MakeMsgProducesWorkingSharedPtr) {
  std::shared_ptr<PoolNote> note = make_msg<PoolNote>(7);
  MsgPtr as_msg = note;
  const auto* cast = msg_cast<PoolNote>(*as_msg);
  ASSERT_NE(cast, nullptr);
  EXPECT_EQ(cast->value(), 7);

  // The shared_ptr machinery (weak counts) is the stock one: only where
  // the control block's bytes come from differs.
  std::weak_ptr<PoolNote> weak = note;
  as_msg.reset();
  note.reset();
  EXPECT_TRUE(weak.expired());
}

TEST(MsgPool, SlabExhaustionFallsBackToHeapAndAdopts) {
  MsgPool& pool = MsgPool::instance();

  // Freeze the slab budget at whatever has been carved so far, then
  // hold enough live 64-byte blocks to drain the cache, the global free
  // list, and the slab remnant — every allocation past that point must
  // come from the heap (and be counted as a future adoptee).
  pool.set_slab_limit(pool.stats().slabs == 0 ? 1 : pool.stats().slabs);

  const auto before = pool.stats();
  std::vector<void*> live;
  live.reserve(200'000);
  while (pool.stats().heap_allocs < before.heap_allocs + 64) {
    ASSERT_LT(live.size(), 200'000u) << "slab budget never exhausted";
    live.push_back(pool.allocate(64, 8));
    ASSERT_NE(live.back(), nullptr);
    std::memset(live.back(), 0xcd, 64);  // fallback blocks are writable
  }
  const auto exhausted = pool.stats();
  EXPECT_GE(exhausted.heap_allocs, before.heap_allocs + 64);
  EXPECT_GT(exhausted.adopted, before.adopted);
  EXPECT_EQ(exhausted.slabs, before.slabs) << "limit did not hold";

  // Freeing mixes slab blocks and heap-fallback blocks back into the
  // same free lists (adoption): indistinguishable at free time, and
  // under ASan this proves none is released with the wrong operator.
  for (void* p : live) pool.deallocate(p, 64, 8);
  live.clear();

  // With everything recycled, the same demand is now served poolside —
  // no new heap allocations, no new slabs.
  const auto recycled_base = pool.stats();
  for (int i = 0; i < 64; ++i) live.push_back(pool.allocate(64, 8));
  for (void* p : live) pool.deallocate(p, 64, 8);
  const auto recycled = pool.stats();
  EXPECT_EQ(recycled.heap_allocs, recycled_base.heap_allocs);
  EXPECT_EQ(recycled.slabs, recycled_base.slabs);

  pool.set_slab_limit(0);  // restore: the pool is process-global
}

TEST(MsgPool, MessagesSurviveExhaustionTransparently) {
  MsgPool& pool = MsgPool::instance();
  pool.set_slab_limit(pool.stats().slabs == 0 ? 1 : pool.stats().slabs);

  // Protocol code never sees the fallback: messages built while the
  // pool is exhausted behave identically.
  std::vector<std::shared_ptr<PoolNote>> held;
  for (int i = 0; i < 50'000; ++i) held.push_back(make_msg<PoolNote>(i));
  for (int i = 0; i < 50'000; ++i) {
    ASSERT_EQ(held[static_cast<std::size_t>(i)]->value(), i);
  }
  held.clear();

  pool.set_slab_limit(0);
}

}  // namespace
}  // namespace wrs
