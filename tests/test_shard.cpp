// Sharded-keyspace subsystem tests: ShardMap routing, router semantics
// (per-key FIFO, pipelining, single-shard byte-compatibility), misrouted
// traffic rejection, validated shard selectors, Zipfian workloads, the
// modeled-service-time scale-out mechanics, and a seeded chaos episode
// with one shard partitioned while another reassigns weights — on both
// runtimes.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "api/cluster.h"
#include "shard/shard_map.h"
#include "shard/shard_router.h"
#include "storage/history.h"
#include "test_util.h"
#include "testing/nemesis.h"

namespace wrs {
namespace {

// --- ShardMap ---------------------------------------------------------------

TEST(ShardMap, RoutingIsDeterministicAndCoversEveryShard) {
  ShardMap a = ShardMap::uniform(4, 3, 1);
  ShardMap b = ShardMap::uniform(4, 3, 1);
  std::set<ShardId> hit;
  for (int i = 0; i < 1000; ++i) {
    RegisterKey key = "k" + std::to_string(i);
    ShardId g = a.shard_of(key);
    // Pure function of the key bytes: every instance agrees.
    EXPECT_EQ(g, b.shard_of(key));
    EXPECT_LT(g, 4u);
    hit.insert(g);
  }
  EXPECT_EQ(hit.size(), 4u) << "1000 keys should cover all 4 shards";
  // The paper's register "" routes somewhere stable too.
  EXPECT_EQ(a.shard_of(""), b.shard_of(""));
}

TEST(ShardMap, LaysGroupsOutShardMajorWithOwnConfigs) {
  ShardMap m = ShardMap::uniform(3, 4, 1);
  EXPECT_EQ(m.num_shards(), 3u);
  EXPECT_EQ(m.total_servers(), 12u);
  for (ShardId g = 0; g < 3; ++g) {
    const SystemConfig& cfg = m.config(g);
    EXPECT_EQ(cfg.shard, g);
    EXPECT_EQ(cfg.base, g * 4);
    EXPECT_EQ(cfg.n, 4u);
    std::vector<ProcessId> servers = m.servers(g);
    ASSERT_EQ(servers.size(), 4u);
    for (std::uint32_t i = 0; i < 4; ++i) {
      EXPECT_EQ(servers[i], g * 4 + i);
      EXPECT_EQ(m.shard_of_server(g * 4 + i), g);
      // Each group's weights are keyed by its GLOBAL ids.
      EXPECT_TRUE(cfg.initial_weights.contains(g * 4 + i));
    }
  }
  EXPECT_EQ(m.all_server_ids().size(), 12u);
}

TEST(ShardMap, ValidationNamesOffenderAndRange) {
  ShardMap m = ShardMap::uniform(2, 3, 1);
  try {
    m.config(5);
    FAIL() << "expected out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("5"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("[0, 2)"), std::string::npos);
  }
  EXPECT_THROW(m.shard_of_server(6), std::out_of_range);
  EXPECT_THROW(ShardMap::uniform(0, 3, 1), std::invalid_argument);
  // A weight template must cover exactly the per-shard servers.
  EXPECT_THROW(ShardMap::uniform(2, 3, 1, WeightMap::uniform(2)),
               std::invalid_argument);
}

// --- single-shard byte-compatibility ----------------------------------------

/// The same scripted run, hand-wired on a SimEnv with the RAW AbdClient
/// (no router anywhere) vs deployed through Cluster::builder().shards(1):
/// the router layer must add ZERO wire overhead — identical message
/// counts, types, and bytes — and return identical results.
TEST(ShardCompat, SingleShardMatchesRawClientByteForByte) {
  const std::uint64_t seed = 99;
  const std::uint32_t n = 3, f = 1;
  std::vector<std::pair<RegisterKey, Value>> puts = {
      {"alpha", "1"}, {"beta", "2"}, {"gamma", "3"}, {"alpha", "4"}};

  // Hand-wired: DynamicStorageNodes + a StorageClient built from the raw
  // config ctor (single-shard map is internal and adds no messages).
  Counters raw_traffic;
  std::vector<std::string> raw_reads;
  {
    test::StorageCluster sc(n, f, seed);
    StorageClient client(*sc.env, client_id(0), sc.config,
                         AbdClient::Mode::kDynamic);
    sc.env->register_process(client_id(0), &client);
    std::size_t done = 0;
    for (const auto& [k, v] : puts) {
      client.abd().write(k, v, [&done](const Tag&) { ++done; });
    }
    test::run_until(*sc.env, [&] { return done == puts.size(); });
    raw_reads.resize(puts.size());
    for (std::size_t i = 0; i < puts.size(); ++i) {
      client.abd().read(puts[i].first,
                        [&raw_reads, &done, i](const TaggedValue& tv) {
                          raw_reads[i] = tv.value;
                          ++done;
                        });
    }
    test::run_until(*sc.env, [&] { return done == 2 * puts.size(); });
    sc.env->run_to_quiescence();
    raw_traffic = sc.env->traffic();
  }

  Counters cluster_traffic;
  std::vector<std::string> cluster_reads;
  {
    Cluster c = Cluster::builder()
                    .servers(n)
                    .faults(f)
                    .shards(1)
                    .runtime(Runtime::kSim)
                    .seed(seed)
                    .build();
    std::vector<Await<Tag>> tags;
    for (const auto& [k, v] : puts) tags.push_back(c.client().write(k, v));
    for (auto& t : tags) t.get();
    for (const auto& [k, _] : puts) {
      cluster_reads.push_back(c.client().read(k).get().value);
    }
    c.quiesce();
    cluster_traffic = c.traffic();
  }

  EXPECT_EQ(raw_reads, cluster_reads);
  EXPECT_EQ(raw_traffic.map(), cluster_traffic.map())
      << "shards(1) must be byte-identical to the raw unsharded client";
}

/// And a shards(1) deployment is indistinguishable from one that never
/// called shards() at all.
TEST(ShardCompat, ShardsOneMatchesUnshardedBuilder) {
  auto run = [](bool sharded) {
    ClusterBuilder b = Cluster::builder()
                           .servers(3)
                           .clients(1)
                           .runtime(Runtime::kSim)
                           .seed(7);
    if (sharded) b.shards(1);
    Cluster c = b.build();
    auto tags = c.client().write_batch({{"x", "1"}, {"y", "2"}, {"", "3"}});
    for (auto& t : tags) t.get();
    std::string out;
    out += c.client().read("x").get().value;
    out += c.client().read("y").get().value;
    out += c.client().read("").get().value;
    c.quiesce();
    out += " msgs=" + std::to_string(c.traffic().get("msgs"));
    out += " bytes=" + std::to_string(c.traffic().get("bytes"));
    return out;
  };
  EXPECT_EQ(run(false), run(true));
}

// --- router semantics -------------------------------------------------------

class ShardRouterSemantics : public ::testing::TestWithParam<Runtime> {};

TEST_P(ShardRouterSemantics, PerKeyFifoPreservedAcrossRouter) {
  Cluster c = Cluster::builder()
                  .servers(3)
                  .shards(4)
                  .clients(1)
                  .runtime(GetParam())
                  .seed(11)
                  .build();
  // Same-key operations complete in issue order even when pipelined
  // through the router; distinct keys (on any shard) overlap freely.
  std::vector<RegisterKey> keys = {"fifo", "a", "b", "c", "d"};
  std::vector<std::pair<RegisterKey, Value>> batch;
  for (int round = 0; round < 5; ++round) {
    for (const auto& k : keys) {
      batch.emplace_back(k, k + "#" + std::to_string(round));
    }
  }
  auto tags = c.client().write_batch(batch);
  for (auto& t : tags) t.get();
  // The last write per key wins under FIFO.
  for (const auto& k : keys) {
    EXPECT_EQ(c.client().read(k).get().value, k + "#4");
  }
  // list_keys unions every shard's discovery.
  std::vector<RegisterKey> found = c.client().list_keys().get();
  std::set<RegisterKey> found_set(found.begin(), found.end());
  for (const auto& k : keys) EXPECT_TRUE(found_set.count(k)) << k;
  c.quiesce();
}

TEST_P(ShardRouterSemantics, OperationsPipelineAcrossShards) {
  Cluster c = Cluster::builder()
                  .servers(3)
                  .shards(2)
                  .clients(1)
                  .runtime(GetParam())
                  .seed(13)
                  .build();
  std::vector<std::pair<RegisterKey, Value>> batch;
  for (int i = 0; i < 16; ++i) {
    batch.emplace_back("key" + std::to_string(i), std::to_string(i));
  }
  auto tags = c.client().write_batch(batch);
  for (auto& t : tags) t.get();
  // Ops went to both shards and the inner clients genuinely overlapped
  // work (the router preserves the multiplexed pipeline).
  std::size_t routed = 0;
  for (ShardId g = 0; g < 2; ++g) {
    routed += (c.client().router().shard_client(g).max_in_flight() > 0);
  }
  EXPECT_EQ(routed, 2u) << "both shards should have seen operations";
  EXPECT_GT(c.client().router().max_in_flight(), 1u);
  c.quiesce();
}

INSTANTIATE_TEST_SUITE_P(BothRuntimes, ShardRouterSemantics,
                         ::testing::Values(Runtime::kSim, Runtime::kThread));

// --- misrouted traffic ------------------------------------------------------

TEST(ShardMisroute, ServerRejectsWrongShardRequests) {
  auto latency = std::make_shared<UniformLatency>(ms(1), ms(2));
  SimEnv env(latency, 1);
  AbdServer server(env, /*self=*/0, /*changes_provider=*/nullptr,
                   /*shard=*/1);
  // A request carrying shard 0 reaches a shard-1 server: consumed (it is
  // addressed to this protocol) but never answered.
  ReadReq wrong(/*op_id=*/42, "key", /*seq=*/1, /*shard=*/0);
  EXPECT_TRUE(server.handle(client_id(0), wrong));
  EXPECT_EQ(server.misrouted_count(), 1u);
  EXPECT_EQ(env.traffic().get("msgs"), 0) << "no reply may leave the server";
  // The right shard id is served.
  ReadReq right(/*op_id=*/43, "key", /*seq=*/1, /*shard=*/1);
  EXPECT_TRUE(server.handle(client_id(0), right));
  EXPECT_EQ(env.traffic().get("msgs"), 1);
}

TEST(ShardMisroute, ShardedClusterSeesNoMisroutedTraffic) {
  Cluster c = Cluster::builder()
                  .servers(3)
                  // Weight 4 each: C2 passes, so the transfer below is
                  // EFFECTIVE and exercises the full T / T_Ack round —
                  // with NO anti-entropy to paper over a dropped ack.
                  .weights(WeightMap::uniform(3, Weight(4)))
                  .shards(3)
                  .clients(2)
                  .runtime(Runtime::kSim)
                  .seed(17)
                  .build();
  std::vector<std::pair<RegisterKey, Value>> batch;
  for (int i = 0; i < 24; ++i) {
    batch.emplace_back("k" + std::to_string(i), "v");
  }
  auto tags = c.client(0).write_batch(batch);
  for (auto& t : tags) t.get();
  TransferOutcome out =
      c.server(1, 0).transfer(c.server_id(1, 1), Weight(1, 4)).get();
  EXPECT_TRUE(out.effective)
      << "an effective transfer must complete in shard 1 (its T_Acks "
         "carry the group's shard id)";
  c.quiesce();
  for (ProcessId s = 0; s < c.num_servers(); ++s) {
    EXPECT_EQ(c.storage_node(s).server().misrouted_count(), 0u)
        << process_name(s);
    EXPECT_EQ(c.reassign_node(s).misrouted_count(), 0u) << process_name(s);
  }
  // Scoped broadcasts: every shard saw real traffic, and the per-shard
  // counters add up to the aggregate. The report folds per-shard
  // counters next to the whole-deployment numbers via merge_prefixed —
  // the shape per-shard metrics reporting uses.
  Counters report = c.traffic();
  std::int64_t sum = 0;
  for (ShardId g = 0; g < 3; ++g) {
    EXPECT_GT(c.shard_traffic(g).get("msgs"), 0) << "shard " << g;
    report.merge_prefixed(c.shard_traffic(g),
                          "shard" + std::to_string(g) + ".");
    sum += c.shard_traffic(g).get("msgs");
  }
  EXPECT_EQ(sum, c.traffic().get("msgs"))
      << "every message belongs to exactly one shard";
  for (ShardId g = 0; g < 3; ++g) {
    EXPECT_EQ(report.get("shard" + std::to_string(g) + ".msgs"),
              c.shard_traffic(g).get("msgs"));
    EXPECT_EQ(report.get("shard" + std::to_string(g) + ".bytes"),
              c.shard_traffic(g).get("bytes"));
  }
}

// --- validated selectors ----------------------------------------------------

TEST(ShardSelectors, VerbsValidateShardAndServerIds) {
  Cluster c = Cluster::builder()
                  .servers(3)
                  .shards(2)
                  .clients(1)
                  .uniform_latency(ms(1), ms(5))
                  .runtime(Runtime::kSim)
                  .seed(19)
                  .build();
  EXPECT_EQ(c.server_id(1, 2), 5u);
  try {
    c.crash(/*shard=*/7, /*index=*/0);
    FAIL() << "expected out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("7"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("[0, 2)"), std::string::npos);
  }
  try {
    c.slow(/*shard=*/0, /*index=*/3, 2.0);
    FAIL() << "expected out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("[0, 3)"), std::string::npos);
  }
  // Plain verbs validate process ids the same way.
  EXPECT_THROW(c.crash(ProcessId{17}), std::out_of_range);
  EXPECT_THROW(c.partition(0, client_id(9)), std::out_of_range);
  EXPECT_THROW(c.isolate(ProcessId{100}), std::out_of_range);
  EXPECT_THROW(c.shard_traffic(9), std::out_of_range);
  // Valid selectors work.
  c.slow(0, 1, 2.0);
  c.clear_slow(0, 1);
  c.crash(1, 2);
  EXPECT_TRUE(c.is_crashed(5));
}

TEST(ShardSelectors, UnshardedClusterHasNoShardTraffic) {
  Cluster c = Cluster::builder()
                  .servers(3)
                  .runtime(Runtime::kSim)
                  .seed(23)
                  .build();
  EXPECT_EQ(c.num_shards(), 1u);
  EXPECT_THROW(c.shard_traffic(0), std::logic_error);
}

TEST(ShardSelectors, ShardedRequiresStorageKind) {
  EXPECT_THROW(Cluster::builder().servers(3).shards(2).reassign_only().build(),
               std::invalid_argument);
}

// --- Zipfian workload -------------------------------------------------------

TEST(ZipfWorkload, SkewsKeysDeterministically) {
  auto run = [](double theta) {
    WorkloadParams wp;
    wp.num_ops = 400;
    wp.num_keys = 16;
    wp.zipf_theta = theta;
    wp.read_ratio = 0;  // writes create the keys
    wp.target_ops_per_sec = 4000;
    wp.max_in_flight = 32;
    wp.seed = 31;
    Cluster c = Cluster::builder()
                    .servers(3)
                    .shards(4)
                    .clients(1)
                    .workload(wp)
                    .runtime(Runtime::kSim)
                    .seed(31)
                    .build();
    c.workload_done(0).get();
    c.quiesce();
    std::vector<std::size_t> per_shard(4);
    for (ShardId g = 0; g < 4; ++g) {
      per_shard[g] = c.workload(0).shard_completed(g);
    }
    return per_shard;
  };
  std::vector<std::size_t> uniform = run(0);
  std::vector<std::size_t> zipf = run(1.2);
  std::vector<std::size_t> zipf2 = run(1.2);
  EXPECT_EQ(zipf, zipf2) << "seeded zipf runs must be deterministic";
  auto spread = [](const std::vector<std::size_t>& v) {
    return *std::max_element(v.begin(), v.end()) -
           *std::min_element(v.begin(), v.end());
  };
  // The hot keys concentrate on their shards: the skewed run's per-shard
  // imbalance strictly dominates the uniform run's.
  EXPECT_GT(spread(zipf), spread(uniform))
      << "theta=1.2 should visibly skew per-shard load";
}

// --- modeled service time ---------------------------------------------------

TEST(ServiceTime, ShardCapacityScalesOutOnSim) {
  // The scale-out bench's mechanics, pinned deterministically: with a
  // modeled 1ms/request serial server, one 3-server shard sustains
  // ~500 ops/s; two shards sustain ~2x that under the same offered load.
  auto throughput = [](std::uint32_t shards) {
    WorkloadParams wp;
    wp.num_ops = 500;
    wp.num_keys = 128;
    wp.target_ops_per_sec = 1000;
    wp.max_in_flight = 32;
    wp.seed = 37;
    Cluster c = Cluster::builder()
                    .servers(3)
                    .faults(1)
                    .shards(shards)
                    .clients(2)
                    .workload(wp)
                    .service_time(ms(1))
                    .uniform_latency(us(100), us(500))
                    .runtime(Runtime::kSim)
                    .seed(37)
                    .build();
    TimeNs t0 = c.now();
    std::size_t completed = 0;
    for (std::size_t k = 0; k < 2; ++k) {
      c.workload_done(k).get();
      completed += c.workload(k).completed();
    }
    TimeNs t1 = c.now();
    c.quiesce(seconds(60));
    return static_cast<double>(completed) * 1e9 /
           static_cast<double>(t1 - t0);
  };
  double one = throughput(1);
  double two = throughput(2);
  EXPECT_GT(one, 300.0);
  EXPECT_LT(one, 700.0) << "one shard must be capacity-bound, not offered-"
                           "load-bound (the scale-out signal needs this)";
  EXPECT_GT(two / one, 1.4) << "2 shards should sustain ~2x the aggregate";
}

// --- chaos: one shard partitioned while another reassigns -------------------

class ShardChaos : public ::testing::TestWithParam<Runtime> {};

TEST_P(ShardChaos, AtomicityAndPerShardSafetyUnderPartitionPlusReassign) {
  const Runtime rt = GetParam();
  const std::uint64_t seed = 20260727;
  const std::uint32_t shards = 2, n = 3, f = 1;
  const TimeNs horizon = ms(200);

  WorkloadParams wp;
  wp.num_ops = 30;
  wp.read_ratio = 0.5;
  wp.value_size = 8;
  wp.num_keys = 8;
  wp.target_ops_per_sec = 250;
  wp.max_in_flight = 8;
  wp.seed = seed;

  auto history = std::make_shared<HistoryRecorder>();
  Cluster c = Cluster::builder()
                  .servers(n)
                  .faults(f)
                  .shards(shards)
                  .clients(2)
                  .workload(wp)
                  .history(history)
                  .uniform_latency(us(200), ms(2))
                  .retry(ms(10))
                  .anti_entropy(ms(25))
                  .runtime(rt)
                  .seed(seed)
                  .build();

  // Shard 1 reassigns weights through the whole window...
  testing::TransferStormParams tsp;
  tsp.horizon = horizon;
  tsp.attempts = 5;
  tsp.shard = 1;
  testing::TransferStorm storm(c, seed ^ 0xabcdef, tsp);
  storm.unleash();

  // ...while a scoped nemesis (partitions, storms, a crash) hammers
  // shard 0 and leaves shard 1's links untouched.
  testing::NemesisParams np;
  np.horizon = horizon;
  np.events = 5;
  np.crash_budget = 1;
  np.shard = 0;
  testing::Nemesis nemesis(c, seed ^ 0x123456, np);
  nemesis.unleash();

  // Monotonicity probe: per-server change-set samples through the chaos.
  struct Samples {
    std::mutex mu;
    std::vector<std::vector<ChangeSet>> per_server;
  };
  auto samples = std::make_shared<Samples>();
  samples->per_server.resize(c.num_servers());
  for (ProcessId s = 0; s < c.num_servers(); ++s) {
    ReassignNode* node = &c.server(s).node();
    for (TimeNs t = ms(20); t <= horizon + ms(40); t += ms(20)) {
      c.env().schedule(s, t, [samples, node, s] {
        std::lock_guard lock(samples->mu);
        samples->per_server[s].push_back(node->changes());
      });
    }
  }

  c.run_for(horizon + ms(80));

  // Liveness: every client finishes once shard 0 healed (retry + sync).
  for (std::size_t k = 0; k < c.num_clients(); ++k) {
    ASSERT_TRUE(c.workload_done(k).try_get(seconds(30)).has_value())
        << "client #" << k << " never finished";
  }
  EXPECT_GT(storm.completed(), 0u);

  // Per-shard convergence: live servers of each group agree, and each
  // group conserves ITS OWN total weight.
  auto probe = [&c](ProcessId s) {
    Await<ChangeSet> aw = c.make_await<ChangeSet>();
    ReassignNode* node = &c.server(s).node();
    c.post(s, [node, aw] { aw.fulfill(node->changes()); });
    return aw;
  };
  for (ShardId g = 0; g < shards; ++g) {
    bool converged = false;
    std::vector<ChangeSet> sets;
    for (int round = 0; round < 80 && !converged; ++round) {
      c.run_for(ms(25));
      sets.clear();
      bool missing = false;
      for (ProcessId s : c.shard_servers(g)) {
        if (c.is_crashed(s)) continue;
        auto cs = probe(s).try_get(seconds(10));
        if (!cs.has_value()) {
          missing = true;
          break;
        }
        sets.push_back(*cs);
      }
      if (missing || sets.empty()) continue;
      converged = true;
      for (std::size_t i = 1; i < sets.size(); ++i) {
        if (!(sets[i] == sets[0])) converged = false;
      }
    }
    ASSERT_TRUE(converged) << "shard " << g << " did not converge";
    EXPECT_EQ(sets[0].total(), c.shard_config(g).initial_total())
        << "shard " << g << " must conserve its own total weight";
    if (g == 0) {
      // The nemesis only faulted shard 0; shard 1's transfers must not
      // have leaked into shard 0's change sets.
      for (const Change& ch : sets[0].all()) {
        EXPECT_EQ(c.shard_map().shard_of_server(ch.target()), 0u);
      }
    }
  }

  c.set_anti_entropy(0);
  c.quiesce(seconds(120));

  // Atomicity holds per key across the whole sharded keyspace.
  std::vector<OpRecord> ops = history->completed();
  EXPECT_GT(ops.size(), 0u);
  auto err = check_atomicity(ops);
  EXPECT_FALSE(err.has_value()) << *err;

  // Monotone change sets, per server (and hence per shard).
  {
    std::lock_guard lock(samples->mu);
    for (ProcessId s = 0; s < c.num_servers(); ++s) {
      const auto& seq = samples->per_server[s];
      for (std::size_t i = 1; i < seq.size(); ++i) {
        EXPECT_TRUE(seq[i - 1].subset_of(seq[i]))
            << "change set of " << process_name(s) << " shrank";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothRuntimes, ShardChaos,
                         ::testing::Values(Runtime::kSim, Runtime::kThread));

}  // namespace
}  // namespace wrs
