// Tests for the comparison baselines: epoch-based reassignment (model of
// [11]), Paxos-sequenced reassignment, and 1-asset transfer ([12]).
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "baselines/asset_transfer.h"
#include "baselines/epoch_reassign.h"
#include "baselines/paxos_reassign.h"
#include "runtime/sim_env.h"
#include "test_util.h"

namespace wrs {
namespace {

using test::run_until;

template <typename NodeT, typename... Args>
struct BaselineCluster {
  std::unique_ptr<SimEnv> env;
  SystemConfig config;
  std::vector<std::unique_ptr<NodeT>> nodes;

  BaselineCluster(std::uint32_t n, std::uint32_t f, std::uint64_t seed,
                  Args... args) {
    config = SystemConfig::uniform(n, f);
    env = std::make_unique<SimEnv>(
        std::make_shared<UniformLatency>(ms(1), ms(10)), seed);
    for (std::uint32_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<NodeT>(*env, i, config, args...));
      env->register_process(i, nodes.back().get());
    }
    env->start();
  }
};

// --- Epoch-based baseline ----------------------------------------------------

TEST(EpochReassign, RequestAppliesAtNextEpochBoundary) {
  BaselineCluster<EpochReassignNode, TimeNs> c(4, 1, 1, ms(100));
  std::optional<TimeNs> applied_at;
  std::optional<Weight> applied_delta;
  c.nodes[2]->set_applied_callback(
      [&](const EpochRequest& req, const Weight& d, TimeNs at) {
        if (req.issuer == 0) {
          applied_at = at;
          applied_delta = d;
        }
      });
  // Issue at t~0 (epoch 0): must apply only after the boundary (100ms)
  // plus the settle delay.
  c.nodes[0]->request_transfer(1, Weight(1, 10));
  c.env->run_until(seconds(1));
  ASSERT_TRUE(applied_at.has_value());
  EXPECT_GE(*applied_at, ms(100));
  EXPECT_LE(*applied_at, ms(250));
  EXPECT_EQ(*applied_delta, Weight(1, 10));
  EXPECT_EQ(c.nodes[2]->weights().of(1), Weight(11, 10));
}

TEST(EpochReassign, CompetingIncreasesAreDroppedAndLeakWeight) {
  BaselineCluster<EpochReassignNode, TimeNs> c(5, 1, 2, ms(100));
  // Two different destinations in the same epoch: both increases dropped.
  c.nodes[0]->request_transfer(1, Weight(1, 10));
  c.nodes[2]->request_transfer(3, Weight(1, 10));
  c.env->run_until(seconds(1));
  for (auto& node : c.nodes) {
    EXPECT_LT(node->total_weight(), c.config.initial_total())
        << "weight should leak";
    EXPECT_EQ(node->total_weight(), Weight(5) - Weight(2, 10));
    EXPECT_GE(node->dropped_increases(), 2u);
  }
}

TEST(EpochReassign, SingleDestinationDoesNotLeak) {
  BaselineCluster<EpochReassignNode, TimeNs> c(5, 1, 3, ms(100));
  c.nodes[0]->request_transfer(1, Weight(1, 10));
  c.nodes[2]->request_transfer(1, Weight(1, 10));  // same destination
  c.env->run_until(seconds(1));
  for (auto& node : c.nodes) {
    EXPECT_EQ(node->total_weight(), Weight(5));
    EXPECT_EQ(node->weights().of(1), Weight(12, 10));
  }
}

TEST(EpochReassign, ReplicasConvergeOnWeights) {
  BaselineCluster<EpochReassignNode, TimeNs> c(4, 1, 4, ms(50));
  c.nodes[0]->request_transfer(1, Weight(1, 20));
  c.nodes[1]->request_transfer(2, Weight(1, 20));
  c.nodes[3]->request_transfer(1, Weight(1, 20));
  c.env->run_until(seconds(1));
  for (std::uint32_t s = 0; s < 4; ++s) {
    for (auto& node : c.nodes) {
      EXPECT_EQ(node->weights().of(s), c.nodes[0]->weights().of(s));
    }
  }
}

TEST(EpochReassign, SourceNeverDropsBelowFloor) {
  BaselineCluster<EpochReassignNode, TimeNs> c(4, 1, 5, ms(50));
  // Ask for far more than the floor allows; the applied decrease clamps.
  c.nodes[0]->request_transfer(1, Weight(9, 10));
  c.env->run_until(seconds(1));
  EXPECT_GE(c.nodes[2]->weights().of(0), c.config.floor());
}

// --- Paxos-sequenced baseline -------------------------------------------------

TEST(PaxosReassign, SingleTransferAppliesEverywhere) {
  BaselineCluster<PaxosReassignNode> c(4, 1, 11);
  std::optional<PaxosTransferOutcome> out;
  c.nodes[0]->transfer(1, Weight(1, 4),
                       [&](const PaxosTransferOutcome& o) { out = o; });
  run_until(*c.env, [&] { return out.has_value(); }, seconds(120));
  EXPECT_TRUE(out->effective);
  // All replicas eventually apply.
  run_until(
      *c.env,
      [&] {
        for (auto& n : c.nodes) {
          if (n->weights().of(1) != Weight(5, 4)) return false;
        }
        return true;
      },
      seconds(120));
}

TEST(PaxosReassign, ConcurrentTransfersAllSequenced) {
  BaselineCluster<PaxosReassignNode> c(5, 2, 12);
  int done = 0;
  for (std::uint32_t i = 0; i < 5; ++i) {
    c.nodes[i]->transfer((i + 1) % 5, Weight(1, 10),
                         [&](const PaxosTransferOutcome&) { ++done; });
  }
  run_until(*c.env, [&] { return done == 5; }, seconds(300));
  // Everyone applied the same log: identical weights everywhere.
  run_until(
      *c.env,
      [&] {
        for (auto& n : c.nodes) {
          for (std::uint32_t s = 0; s < 5; ++s) {
            if (n->weights().of(s) != c.nodes[0]->weights().of(s)) {
              return false;
            }
          }
        }
        return true;
      },
      seconds(300));
  EXPECT_EQ(c.nodes[0]->weights().total(), Weight(5));
}

TEST(PaxosReassign, FloorViolatingTransferIsIneffective) {
  BaselineCluster<PaxosReassignNode> c(4, 1, 13);
  std::optional<PaxosTransferOutcome> out;
  c.nodes[0]->transfer(1, Weight(1, 2),  // 1 - 1/2 = 1/2 < floor 2/3
                       [&](const PaxosTransferOutcome& o) { out = o; });
  run_until(*c.env, [&] { return out.has_value(); }, seconds(120));
  EXPECT_FALSE(out->effective);
  EXPECT_EQ(c.nodes[0]->weights().of(0), Weight(1));
}

// --- 1-asset transfer ---------------------------------------------------------

TEST(AssetTransfer, BasicTransferMovesAssets) {
  BaselineCluster<AssetTransferNode> c(4, 1, 21);
  std::optional<AssetOutcome> out;
  c.nodes[0]->transfer(1, Weight(1, 2),
                       [&](const AssetOutcome& o) { out = o; });
  run_until(*c.env, [&] { return out.has_value(); });
  EXPECT_TRUE(out->accepted);
  c.env->run_to_quiescence();
  for (auto& n : c.nodes) {
    EXPECT_EQ(n->balance_of(0), Weight(1, 2));
    EXPECT_EQ(n->balance_of(1), Weight(3, 2));
    EXPECT_EQ(n->total(), Weight(4));  // conservation
  }
}

TEST(AssetTransfer, BalanceMayReachExactlyZero) {
  // THE contrast with RP-Integrity: an account may be fully drained,
  // while a server's weight must stay strictly above the floor.
  BaselineCluster<AssetTransferNode> c(4, 1, 22);
  std::optional<AssetOutcome> out;
  c.nodes[0]->transfer(1, Weight(1), [&](const AssetOutcome& o) { out = o; });
  run_until(*c.env, [&] { return out.has_value(); });
  EXPECT_TRUE(out->accepted);
  c.env->run_to_quiescence();
  EXPECT_EQ(c.nodes[2]->balance_of(0), Weight(0));
}

TEST(AssetTransfer, OverdraftRejectedLocally) {
  BaselineCluster<AssetTransferNode> c(4, 1, 23);
  std::optional<AssetOutcome> out;
  c.nodes[0]->transfer(1, Weight(3, 2),
                       [&](const AssetOutcome& o) { out = o; });
  run_until(*c.env, [&] { return out.has_value(); });
  EXPECT_FALSE(out->accepted);
  c.env->run_to_quiescence();
  EXPECT_EQ(c.nodes[2]->balance_of(0), Weight(1));
}

TEST(AssetTransfer, SequentialSpendsThenRejects) {
  BaselineCluster<AssetTransferNode> c(4, 1, 24);
  std::vector<bool> results;
  std::function<void(int)> spend = [&](int k) {
    if (k == 0) return;
    c.nodes[0]->transfer(1, Weight(1, 2), [&, k](const AssetOutcome& o) {
      results.push_back(o.accepted);
      spend(k - 1);
    });
  };
  spend(3);
  run_until(*c.env, [&] { return results.size() == 3; });
  // 1 -> 1/2 -> 0 -> reject.
  EXPECT_EQ(results, (std::vector<bool>{true, true, false}));
}

TEST(AssetTransfer, ToleratesFCrashes) {
  BaselineCluster<AssetTransferNode> c(5, 2, 25);
  c.env->crash(3);
  c.env->crash(4);
  std::optional<AssetOutcome> out;
  c.nodes[0]->transfer(1, Weight(1, 4),
                       [&](const AssetOutcome& o) { out = o; });
  run_until(*c.env, [&] { return out.has_value(); });
  EXPECT_TRUE(out->accepted);
}

TEST(AssetTransfer, AcceptanceDiffersFromWeightReassignmentExactlyOnFloor) {
  // EXP-X1's core claim, unit-sized: the same sequence of transfer sizes
  // is accepted by asset transfer until balance 0 but by weight
  // reassignment only down to the floor.
  BaselineCluster<AssetTransferNode> assets(4, 1, 26);
  test::ReassignCluster weights(4, 1, 26);
  Weight floor = weights.config.floor();  // 2/3

  std::vector<Weight> deltas = {Weight(1, 4), Weight(1, 4), Weight(1, 4),
                                Weight(1, 4)};
  std::vector<bool> asset_accepted;
  std::vector<bool> weight_accepted;

  std::function<void(std::size_t)> run_asset = [&](std::size_t k) {
    if (k >= deltas.size()) return;
    assets.nodes[0]->transfer(1, deltas[k], [&, k](const AssetOutcome& o) {
      asset_accepted.push_back(o.accepted);
      run_asset(k + 1);
    });
  };
  std::function<void(std::size_t)> run_weight = [&](std::size_t k) {
    if (k >= deltas.size()) return;
    weights.node(0).transfer(1, deltas[k], [&, k](const TransferOutcome& o) {
      weight_accepted.push_back(o.effective);
      run_weight(k + 1);
    });
  };
  run_asset(0);
  run_weight(0);
  run_until(*assets.env, [&] { return asset_accepted.size() == 4; });
  run_until(*weights.env, [&] { return weight_accepted.size() == 4; });

  // Assets: 1 -> 3/4 -> 1/2 -> 1/4 -> 0 : all four accepted.
  EXPECT_EQ(asset_accepted, (std::vector<bool>{true, true, true, true}));
  // Weights: only the first is effective (3/4 > 1/4 + 2/3 fails next).
  EXPECT_EQ(weight_accepted, (std::vector<bool>{true, false, false, false}));
  (void)floor;
}

}  // namespace
}  // namespace wrs
