#include <gtest/gtest.h>

#include "common/rng.h"
#include "quorum/wmqs.h"

namespace wrs {
namespace {

TEST(WeightMap, UniformConstruction) {
  WeightMap wm = WeightMap::uniform(5);
  EXPECT_EQ(wm.size(), 5u);
  EXPECT_EQ(wm.total(), Weight(5));
  EXPECT_EQ(wm.of(0), Weight(1));
  EXPECT_EQ(wm.of(99), Weight(0));  // unknown server weighs nothing
}

TEST(WeightMap, WeightOfSubset) {
  WeightMap wm;
  wm.set(0, Weight(3, 2));
  wm.set(1, Weight(1, 2));
  wm.set(2, Weight(1));
  EXPECT_EQ(wm.weight_of({0, 1}), Weight(2));
  EXPECT_EQ(wm.weight_of({}), Weight(0));
  EXPECT_EQ(wm.weight_of({0, 1, 2}), wm.total());
}

TEST(WeightMap, SortedDesc) {
  WeightMap wm;
  wm.set(0, Weight(1));
  wm.set(1, Weight(3));
  wm.set(2, Weight(2));
  auto sorted = wm.sorted_desc();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].first, 1u);
  EXPECT_EQ(sorted[1].first, 2u);
  EXPECT_EQ(sorted[2].first, 0u);
}

TEST(Wmqs, UniformMajority) {
  Wmqs q(WeightMap::uniform(5));
  EXPECT_TRUE(q.is_quorum({0, 1, 2}));
  EXPECT_FALSE(q.is_quorum({0, 1}));
  EXPECT_EQ(q.min_quorum_size(), 3u);
  EXPECT_EQ(q.max_minimal_quorum_size(), 3u);
}

TEST(Wmqs, ExactHalfIsNotAQuorum) {
  Wmqs q(WeightMap::uniform(4));
  EXPECT_FALSE(q.is_quorum({0, 1}));  // exactly half: not strict majority
  EXPECT_TRUE(q.is_quorum({0, 1, 2}));
}

TEST(Wmqs, WeightedMinorityQuorum) {
  // A weight-skewed system where 2 of 5 servers form a quorum.
  WeightMap wm;
  wm.set(0, Weight(3));
  wm.set(1, Weight(3));
  wm.set(2, Weight(1));
  wm.set(3, Weight(1));
  wm.set(4, Weight(1));
  Wmqs q(wm);
  EXPECT_TRUE(q.is_quorum({0, 1}));  // 6 > 9/2
  EXPECT_FALSE(q.is_quorum({2, 3, 4}));  // 3 < 9/2: a majority of servers!
  EXPECT_EQ(q.min_quorum_size(), 2u);
  EXPECT_EQ(q.max_minimal_quorum_size(), 4u);
}

TEST(Wmqs, Property1Availability) {
  // Uniform n=5: f=2 ok (2 < 5/2), f=3 not.
  Wmqs q(WeightMap::uniform(5));
  EXPECT_TRUE(q.is_available(1));
  EXPECT_TRUE(q.is_available(2));
  EXPECT_FALSE(q.is_available(3));
  EXPECT_EQ(q.max_tolerable_f(), 2u);
}

TEST(Wmqs, Property1FailsUnderSkew) {
  // One server holding half the voting power: even f=1 is unavailable.
  WeightMap wm;
  wm.set(0, Weight(5));
  wm.set(1, Weight(2));
  wm.set(2, Weight(2));
  wm.set(3, Weight(1));
  Wmqs q(wm);
  EXPECT_FALSE(q.is_available(1));  // 5 >= 10/2
  EXPECT_EQ(q.max_tolerable_f(), 0u);
}

TEST(Wmqs, Example2InitialGeometry) {
  // Example 2: S = {s1..s7}, f=2, uniform weights; every quorum has >= 4
  // servers initially, floor is 7/10.
  SCOPED_TRACE("paper Example 2");
  Wmqs q(WeightMap::uniform(7));
  EXPECT_EQ(q.min_quorum_size(), 4u);
  EXPECT_TRUE(q.is_available(2));
  EXPECT_EQ(rp_integrity_floor(Weight(7), 7, 2), Weight(7, 10));
}

TEST(Wmqs, Example2AfterTransfersMinorityQuorum) {
  // Fig. 1 end state (before the red box): weights
  // s1=1.6, s2=1.4, s3=1.2, s4..s6=0.8, s7=... — paper text: after the
  // legal transfers {s1,s2,s3} (3 of 7 servers) form a quorum.
  WeightMap wm;
  wm.set(0, Weight(8, 5));   // 1.6
  wm.set(1, Weight(7, 5));   // 1.4
  wm.set(2, Weight(3, 4));   // kept above floor 0.7
  wm.set(3, Weight(3, 4));
  wm.set(4, Weight(3, 4));
  wm.set(5, Weight(3, 4));
  wm.set(6, Weight(1));
  // total = 1.6+1.4+0.75*4+1 = 7
  Wmqs q(wm);
  EXPECT_EQ(q.weights().total(), Weight(7));
  EXPECT_TRUE(q.is_quorum({0, 1, 6}));  // 4 > 3.5: a minority quorum
  EXPECT_EQ(q.min_quorum_size(), 3u);
}

TEST(Wmqs, RpFloorFormula) {
  EXPECT_EQ(rp_integrity_floor(Weight(7), 7, 2), Weight(7, 10));
  EXPECT_EQ(rp_integrity_floor(Weight(4), 4, 1), Weight(2, 3));
  EXPECT_EQ(rp_integrity_floor(Weight(10), 5, 2), Weight(5, 3));
  EXPECT_THROW(rp_integrity_floor(Weight(1), 2, 2), std::invalid_argument);
}

TEST(Wmqs, FloorImpliesProperty1) {
  // Lemma 1: if every weight stays above W_{S,0}/(2(n-f)) and the total
  // is constant, Property 1 holds. Randomized check.
  Rng rng(99);
  for (int iter = 0; iter < 100; ++iter) {
    std::uint32_t n = 4 + static_cast<std::uint32_t>(rng.below(8));
    std::uint32_t f = 1 + static_cast<std::uint32_t>(rng.below((n - 1) / 2));
    Weight total(static_cast<std::int64_t>(n));
    Weight floor = rp_integrity_floor(total, n, f);
    // Build weights above the floor summing to `total`: start at floor
    // + epsilon and distribute the remainder to one server.
    Weight eps(1, 1000);
    WeightMap wm;
    Weight used(0);
    for (std::uint32_t i = 0; i + 1 < n; ++i) {
      Weight w = floor + eps;
      wm.set(i, w);
      used += w;
    }
    wm.set(n - 1, total - used);
    ASSERT_GT(wm.of(n - 1), floor);
    Wmqs q(wm);
    EXPECT_TRUE(q.is_available(f)) << "n=" << n << " f=" << f;
  }
}

TEST(Wmqs, ZeroWeightServersCarryNoVotingPower) {
  // Zero-weight members are legal in a raw Wmqs (SystemConfig forbids
  // them as *initial* weights, but a quorum system may inspect arbitrary
  // maps). They must not affect any quorum computation.
  WeightMap wm;
  wm.set(0, Weight(2));
  wm.set(1, Weight(1));
  wm.set(2, Weight(0));
  wm.set(3, Weight(0));
  Wmqs q(wm);
  EXPECT_EQ(q.total(), Weight(3));
  // {s2, s3} weigh nothing: not a quorum even though it is half the ids.
  EXPECT_FALSE(q.is_quorum({2, 3}));
  // s0 alone tips the strict majority (2 > 3/2); adding zero-weight
  // servers changes nothing.
  EXPECT_TRUE(q.is_quorum({0}));
  EXPECT_TRUE(q.is_quorum({0, 2, 3}));
  EXPECT_FALSE(q.is_quorum({1, 2, 3}));
  EXPECT_EQ(q.min_quorum_size(), 1u);
  // Crashing the zero-weight servers costs nothing; crashing s0 is fatal.
  EXPECT_FALSE(q.is_available(1));  // the heaviest (s0) holds 2 >= 3/2
}

TEST(Wmqs, AvailabilityAtTheExactHalfWeightBoundary) {
  // Property 1 is strict: the f heaviest must weigh strictly LESS than
  // half. Construct f servers holding exactly half the total.
  WeightMap wm;
  wm.set(0, Weight(3, 2));
  wm.set(1, Weight(3, 2));
  wm.set(2, Weight(1));
  wm.set(3, Weight(1));
  wm.set(4, Weight(1));  // total 6; {s0, s1} = 3 = total/2 exactly
  Wmqs q(wm);
  EXPECT_TRUE(q.is_available(1));   // 3/2 < 3
  EXPECT_FALSE(q.is_available(2));  // 3 == 3: not strictly less
  EXPECT_EQ(q.max_tolerable_f(), 1u);

  // Nudge one heavy server down by any epsilon and f=2 becomes available.
  wm.set(1, Weight(3, 2) - Weight(1, 1'000'000));
  Wmqs q2(wm);
  EXPECT_TRUE(q2.is_available(2));
}

TEST(Wmqs, SmallestQuorumStaysConsistentAcrossTransferSequence) {
  // Apply a sequence of pairwise transfers (total weight invariant) and
  // check after every step that smallest_quorum() and min_quorum_size()
  // agree, that the returned set IS a quorum, and that it is minimal
  // (dropping its lightest member breaks the majority).
  WeightMap wm = WeightMap::uniform(7);  // Example 2 geometry, total 7
  struct Step {
    ProcessId src, dst;
    Weight delta;
  };
  std::vector<Step> steps = {
      {3, 0, Weight(1, 4)}, {4, 1, Weight(1, 4)}, {5, 2, Weight(1, 4)},
      {6, 0, Weight(1, 10)}, {0, 6, Weight(1, 10)}, {2, 1, Weight(1, 8)},
  };
  for (const Step& step : steps) {
    wm.set(step.src, wm.of(step.src) - step.delta);
    wm.set(step.dst, wm.of(step.dst) + step.delta);
    Wmqs q(wm);
    ASSERT_EQ(q.total(), Weight(7));  // pairwise: total invariant

    std::vector<ProcessId> smallest = q.smallest_quorum();
    EXPECT_EQ(smallest.size(), q.min_quorum_size());
    EXPECT_TRUE(q.is_quorum(smallest));

    // Minimality: the greedy set without its lightest member is not a
    // quorum (members arrive heaviest-first).
    std::vector<ProcessId> trimmed(smallest.begin(), smallest.end() - 1);
    EXPECT_FALSE(q.is_quorum(trimmed));

    // Sizes are sane for 7 servers and bounded by the worst case.
    EXPECT_GE(q.min_quorum_size(), 1u);
    EXPECT_LE(q.min_quorum_size(), q.max_minimal_quorum_size());
  }
}

TEST(ReductionWeights, MatchPaperScheme) {
  // n=4, f=1: F gets (n-1)/(2f) = 3/2; S\F gets (n+1)/(2(n-f)) = 5/6.
  WeightMap wm = reduction_initial_weights(4, 1);
  EXPECT_EQ(wm.of(0), Weight(3, 2));
  EXPECT_EQ(wm.of(1), Weight(5, 6));
  EXPECT_EQ(wm.of(2), Weight(5, 6));
  EXPECT_EQ(wm.of(3), Weight(5, 6));
  EXPECT_EQ(wm.total(), Weight(4));
  EXPECT_TRUE(Wmqs(wm).is_available(1));
}

TEST(ReductionWeights, IntegrityTightness) {
  // The scheme sits exactly at the boundary: one +0.5 grant to an F
  // server is fine, but granting one +0.5 AND one -0.5 breaks Integrity.
  for (std::uint32_t n : {4u, 5u, 7u, 9u}) {
    for (std::uint32_t f = 1; 2 * f + 1 <= n; ++f) {
      WeightMap wm = reduction_initial_weights(n, f);
      // Grant +1/2 to s0 (in F).
      WeightMap one = wm;
      one.set(0, wm.of(0) + Weight(1, 2));
      EXPECT_TRUE(Wmqs(one).is_available(f)) << n << "," << f;
      // Also grant -1/2 to s_f (in S\F): now W_F == W_S/2 exactly.
      WeightMap two = one;
      two.set(f, wm.of(f) - Weight(1, 2));
      EXPECT_FALSE(Wmqs(two).is_available(f)) << n << "," << f;
    }
  }
}

TEST(ReductionWeights, RejectsBadParameters) {
  EXPECT_THROW(reduction_initial_weights(4, 0), std::invalid_argument);
  EXPECT_THROW(reduction_initial_weights(3, 3), std::invalid_argument);
}

}  // namespace
}  // namespace wrs
