// Tests for the (dynamic-weighted) ABD atomic register — Algorithms 5-6
// plus the static baseline — including linearizability sweeps via the
// Definition-6 checker.
#include <gtest/gtest.h>

#include "storage/history.h"
#include "test_util.h"
#include "workload/workload.h"

namespace wrs {
namespace {

using test::run_until;
using test::StorageCluster;

StorageClient* add_client(StorageCluster& c, std::uint32_t k,
                          AbdClient::Mode mode,
                          std::vector<std::unique_ptr<StorageClient>>& own) {
  own.push_back(std::make_unique<StorageClient>(*c.env, client_id(k),
                                                c.config, mode));
  c.env->register_process(client_id(k), own.back().get());
  return own.back().get();
}

TEST(StaticAbd, ReadInitialValue) {
  StorageCluster c(4, 1, 1);
  std::vector<std::unique_ptr<StorageClient>> clients;
  auto* cl = add_client(c, 0, AbdClient::Mode::kStatic, clients);
  std::optional<TaggedValue> got;
  cl->abd().read([&](const TaggedValue& tv) { got = tv; });
  run_until(*c.env, [&] { return got.has_value(); });
  EXPECT_EQ(got->tag, kInitialTag);
  EXPECT_EQ(got->value, "");
}

TEST(StaticAbd, WriteThenRead) {
  StorageCluster c(4, 1, 2);
  std::vector<std::unique_ptr<StorageClient>> clients;
  auto* w = add_client(c, 0, AbdClient::Mode::kStatic, clients);
  auto* r = add_client(c, 1, AbdClient::Mode::kStatic, clients);

  std::optional<Tag> wrote;
  w->abd().write("hello", [&](const Tag& t) { wrote = t; });
  run_until(*c.env, [&] { return wrote.has_value(); });
  EXPECT_EQ(wrote->ts, 1);
  EXPECT_EQ(wrote->pid, client_id(0));

  std::optional<TaggedValue> got;
  r->abd().read([&](const TaggedValue& tv) { got = tv; });
  run_until(*c.env, [&] { return got.has_value(); });
  EXPECT_EQ(got->value, "hello");
  EXPECT_EQ(got->tag, *wrote);
}

TEST(StaticAbd, PipelinesDistinctKeysAndQueuesSameKey) {
  // The multiplexed client overlaps ops on distinct keys; ops on the SAME
  // key run in issue order (concurrent same-key writes from one process
  // could mint duplicate tags).
  StorageCluster c(4, 1, 3);
  std::vector<std::unique_ptr<StorageClient>> clients;
  auto* cl = add_client(c, 0, AbdClient::Mode::kStatic, clients);

  std::optional<Tag> ta, tb1, tb2;
  std::optional<TaggedValue> rb;
  cl->abd().write("a", "va", [&](const Tag& t) { ta = t; });
  cl->abd().write("b", "vb1", [&](const Tag& t) { tb1 = t; });
  cl->abd().write("b", "vb2", [&](const Tag& t) { tb2 = t; });
  cl->abd().read("b", [&](const TaggedValue& tv) { rb = tv; });
  EXPECT_EQ(cl->abd().in_flight(), 4u);
  // Only "a"'s write and "b"'s FIRST write start immediately; the other
  // two queue behind "b" — max_in_flight counts genuinely started ops.
  EXPECT_EQ(cl->abd().max_in_flight(), 2u);

  run_until(*c.env, [&] { return ta && tb1 && tb2 && rb.has_value(); });
  EXPECT_FALSE(cl->abd().busy());
  // Per-key program order: the queued second write got the larger tag and
  // the read (issued last) observed it.
  EXPECT_LT(*tb1, *tb2);
  EXPECT_EQ(rb->value, "vb2");
  EXPECT_EQ(rb->tag, *tb2);
}

TEST(StaticAbd, MultiWriterTagsOrdered) {
  StorageCluster c(4, 1, 4);
  std::vector<std::unique_ptr<StorageClient>> clients;
  auto* w1 = add_client(c, 0, AbdClient::Mode::kStatic, clients);
  auto* w2 = add_client(c, 1, AbdClient::Mode::kStatic, clients);

  std::optional<Tag> t1;
  w1->abd().write("a", [&](const Tag& t) { t1 = t; });
  run_until(*c.env, [&] { return t1.has_value(); });
  std::optional<Tag> t2;
  w2->abd().write("b", [&](const Tag& t) { t2 = t; });
  run_until(*c.env, [&] { return t2.has_value(); });
  EXPECT_LT(*t1, *t2);  // sequential writes get increasing tags

  std::optional<TaggedValue> got;
  w1->abd().read([&](const TaggedValue& tv) { got = tv; });
  run_until(*c.env, [&] { return got.has_value(); });
  EXPECT_EQ(got->value, "b");
}

TEST(StaticAbd, ToleratesFCrashes) {
  StorageCluster c(5, 2, 5);
  c.env->crash(3);
  c.env->crash(4);
  std::vector<std::unique_ptr<StorageClient>> clients;
  auto* cl = add_client(c, 0, AbdClient::Mode::kStatic, clients);
  std::optional<Tag> wrote;
  cl->abd().write("survive", [&](const Tag& t) { wrote = t; });
  run_until(*c.env, [&] { return wrote.has_value(); });
  std::optional<TaggedValue> got;
  cl->abd().read([&](const TaggedValue& tv) { got = tv; });
  run_until(*c.env, [&] { return got.has_value(); });
  EXPECT_EQ(got->value, "survive");
}

TEST(DynamicAbd, ReadWriteWithoutTransfers) {
  StorageCluster c(4, 1, 6);
  std::vector<std::unique_ptr<StorageClient>> clients;
  auto* cl = add_client(c, 0, AbdClient::Mode::kDynamic, clients);
  std::optional<Tag> wrote;
  cl->abd().write("dyn", [&](const Tag& t) { wrote = t; });
  run_until(*c.env, [&] { return wrote.has_value(); });
  std::optional<TaggedValue> got;
  cl->abd().read([&](const TaggedValue& tv) { got = tv; });
  run_until(*c.env, [&] { return got.has_value(); });
  EXPECT_EQ(got->value, "dyn");
  EXPECT_EQ(cl->abd().restarts(), 0u);
}

TEST(DynamicAbd, ClientLearnsChangesAndRestarts) {
  StorageCluster c(4, 1, 7);
  // First run a transfer so servers hold a bigger change set.
  bool transferred = false;
  c.node(0).reassign().transfer(
      1, Weight(1, 4), [&](const TransferOutcome&) { transferred = true; });
  run_until(*c.env, [&] { return transferred; });
  c.env->run_to_quiescence();

  std::vector<std::unique_ptr<StorageClient>> clients;
  auto* cl = add_client(c, 0, AbdClient::Mode::kDynamic, clients);
  std::optional<Tag> wrote;
  cl->abd().write("after-transfer", [&](const Tag& t) { wrote = t; });
  run_until(*c.env, [&] { return wrote.has_value(); });
  // The client started from the initial change set and must have learned
  // the transfer (2 new changes) and restarted at least once.
  EXPECT_GE(cl->abd().restarts(), 1u);
  EXPECT_EQ(cl->abd().current_weights().of(1), Weight(5, 4));
  EXPECT_EQ(cl->abd().current_weights().total(), Weight(4));
}

TEST(DynamicAbd, OperationsDuringConcurrentTransfers) {
  StorageCluster c(5, 2, 8);
  std::vector<std::unique_ptr<StorageClient>> clients;
  auto* cl = add_client(c, 0, AbdClient::Mode::kDynamic, clients);

  // Interleave a write with a storm of transfers.
  int transfers_done = 0;
  for (std::uint32_t i = 0; i < 5; ++i) {
    c.node(i).reassign().transfer((i + 1) % 5, Weight(1, 20),
                                  [&](const TransferOutcome&) {
                                    ++transfers_done;
                                  });
  }
  std::optional<Tag> wrote;
  cl->abd().write("stormy", [&](const Tag& t) { wrote = t; });
  run_until(*c.env,
            [&] { return wrote.has_value() && transfers_done == 5; });
  std::optional<TaggedValue> got;
  cl->abd().read([&](const TaggedValue& tv) { got = tv; });
  run_until(*c.env, [&] { return got.has_value(); });
  EXPECT_EQ(got->value, "stormy");
}

TEST(DynamicAbd, RegisterRefreshOnGainPreservesFreshness) {
  // A server that gains weight must refresh its register first
  // (Algorithm 4 line 9): after a client writes, a gaining server's local
  // register must not serve a stale tag once the transfer completes.
  StorageCluster c(4, 1, 9);
  std::vector<std::unique_ptr<StorageClient>> clients;
  auto* cl = add_client(c, 0, AbdClient::Mode::kDynamic, clients);
  std::optional<Tag> wrote;
  cl->abd().write("fresh", [&](const Tag& t) { wrote = t; });
  run_until(*c.env, [&] { return wrote.has_value(); });

  bool transferred = false;
  c.node(0).reassign().transfer(
      1, Weight(1, 4), [&](const TransferOutcome&) { transferred = true; });
  run_until(*c.env, [&] { return transferred; });
  c.env->run_to_quiescence();
  // The gaining server (s1) refreshed: its register holds the write.
  EXPECT_EQ(c.node(1).server().reg().value, "fresh");
  EXPECT_EQ(c.node(1).server().reg().tag, *wrote);
}

TEST(DynamicAbd, QuorumShrinksAfterReweighting) {
  // After concentrating weight on two servers, a client's phase can
  // complete with fewer responders. Verify via the weight map the client
  // converges to.
  StorageCluster c(7, 2, 10, WeightMap::uniform(7));
  // floor = 7/10. s3..s6 donate 1/4 each to s0 (sequentially).
  int done = 0;
  for (std::uint32_t donor : {3u, 4u, 5u, 6u}) {
    c.node(donor).reassign().transfer(
        0, Weight(1, 4), [&](const TransferOutcome& o) {
          EXPECT_TRUE(o.effective);
          ++done;
        });
  }
  run_until(*c.env, [&] { return done == 4; });
  c.env->run_to_quiescence();

  std::vector<std::unique_ptr<StorageClient>> clients;
  auto* cl = add_client(c, 0, AbdClient::Mode::kDynamic, clients);
  std::optional<TaggedValue> got;
  cl->abd().read([&](const TaggedValue& tv) { got = tv; });
  run_until(*c.env, [&] { return got.has_value(); });
  Wmqs q(cl->abd().current_weights());
  EXPECT_EQ(q.weights().of(0), Weight(2));
  EXPECT_EQ(q.min_quorum_size(), 3u);  // was 4 with uniform weights
}

// --- Atomicity sweeps --------------------------------------------------------

struct AtomicitySweep {
  std::uint64_t seed;
  std::uint32_t n;
  std::uint32_t f;
  bool with_transfers;
  bool with_crashes;
};

class StorageAtomicityTest : public ::testing::TestWithParam<AtomicitySweep> {
};

TEST_P(StorageAtomicityTest, HistoryIsAtomic) {
  auto p = GetParam();
  StorageCluster c(p.n, p.f, p.seed);
  auto history = std::make_shared<HistoryRecorder>();

  WorkloadParams wp;
  wp.num_ops = 30;
  wp.read_ratio = 0.5;
  wp.think_time = ms(2);
  wp.value_size = 8;
  wp.seed = p.seed;

  std::vector<std::unique_ptr<WorkloadClient>> clients;
  const std::uint32_t kClients = 3;
  for (std::uint32_t k = 0; k < kClients; ++k) {
    clients.push_back(std::make_unique<WorkloadClient>(
        *c.env, client_id(k), c.config, AbdClient::Mode::kDynamic, wp,
        history));
    c.env->register_process(client_id(k), clients.back().get());
  }

  if (p.with_transfers) {
    // Background transfer churn: each server donates small slices on a
    // timer while the workload runs.
    for (std::uint32_t i = 0; i < p.n; ++i) {
      auto* node = &c.node(i);
      std::uint32_t dst = (i + 1) % p.n;
      for (int round = 0; round < 4; ++round) {
        c.env->schedule(i, ms(10 + 25 * round), [node, dst] {
          if (!node->reassign().transfer_in_flight()) {
            node->reassign().transfer(dst, Weight(1, 50),
                                      [](const TransferOutcome&) {});
          }
        });
      }
    }
  }
  if (p.with_crashes) {
    // Crash exactly f servers mid-run.
    for (std::uint32_t k = 0; k < p.f; ++k) {
      std::uint32_t victim = p.n - 1 - k;
      c.env->schedule(kNoProcess, ms(30 + 20 * k),
                      [&c, victim] { c.env->crash(victim); });
    }
  }

  auto all_done = [&] {
    for (const auto& cl : clients) {
      if (!cl->done()) return false;
    }
    return true;
  };
  run_until(*c.env, all_done, seconds(600));

  auto err = check_atomicity(history->completed());
  EXPECT_FALSE(err.has_value()) << *err;
  EXPECT_EQ(history->completed_count(), kClients * wp.num_ops);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, StorageAtomicityTest,
    ::testing::Values(
        AtomicitySweep{301, 4, 1, false, false},
        AtomicitySweep{302, 4, 1, true, false},
        AtomicitySweep{303, 5, 2, true, false},
        AtomicitySweep{304, 5, 2, true, true},
        AtomicitySweep{305, 7, 2, true, false},
        AtomicitySweep{306, 7, 3, true, true},
        AtomicitySweep{307, 7, 2, true, true},
        AtomicitySweep{308, 9, 4, true, false},
        AtomicitySweep{309, 6, 1, true, true},
        AtomicitySweep{310, 8, 3, true, false}));

}  // namespace
}  // namespace wrs
