// The fault-injection plane: LinkFaults semantics, per-runtime wiring
// (SimEnv deterministic + seeded, ThreadEnv under real concurrency), the
// Cluster scenario verbs, and the liveness hardening (AbdClient
// retransmission, ReassignNode anti-entropy) that makes protocols survive
// lossy links.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "api/cluster.h"
#include "runtime/link_faults.h"
#include "runtime/sim_env.h"
#include "runtime/thread_env.h"

namespace wrs {
namespace {

class NoteMsg : public MessageBase<NoteMsg> {
 public:
  explicit NoteMsg(int v) : v_(v) {}
  int value() const { return v_; }
  std::string type_name() const override { return "NOTE"; }
  std::size_t wire_size() const override { return kHeaderBytes + 4; }

 private:
  int v_;
};

/// Sim-side recorder (single-threaded).
class Recorder : public Process {
 public:
  explicit Recorder(SimEnv& env) : env_(env) {}
  void on_message(ProcessId from, const Message& msg) override {
    const auto* note = msg_cast<NoteMsg>(msg);
    ASSERT_NE(note, nullptr);
    entries.push_back({from, note->value(), env_.now()});
  }
  struct Entry {
    ProcessId from;
    int value;
    TimeNs at;
  };
  std::vector<Entry> entries;

 private:
  SimEnv& env_;
};

/// Thread-side recorder (atomic counter).
class Counting : public Process {
 public:
  void on_message(ProcessId, const Message& msg) override {
    if (msg_cast<NoteMsg>(msg) != nullptr) ++count;
  }
  std::atomic<int> count{0};
};

void wait_count(const Counting& p, int at_least,
                int spins = 2000) {
  for (int i = 0; i < spins && p.count.load() < at_least; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// --- LinkFaults unit semantics (no env) -------------------------------------

TEST(LinkFaults, PartitionIsSymmetricAndHealable) {
  LinkFaults f;
  EXPECT_FALSE(f.active());
  f.partition(1, 2);
  EXPECT_TRUE(f.active());
  EXPECT_TRUE(f.is_cut(1, 2));
  EXPECT_TRUE(f.is_cut(2, 1));
  EXPECT_FALSE(f.is_cut(1, 3));
  f.heal(1, 2);
  EXPECT_FALSE(f.is_cut(1, 2));
  EXPECT_FALSE(f.active());
}

TEST(LinkFaults, CutOneWayIsDirectional) {
  LinkFaults f;
  f.cut_one_way(1, 2);
  EXPECT_TRUE(f.is_cut(1, 2));
  EXPECT_FALSE(f.is_cut(2, 1));
  Rng rng(1);
  EXPECT_FALSE(f.decide(1, 2, rng).deliver);
  EXPECT_TRUE(f.decide(2, 1, rng).deliver);
}

TEST(LinkFaults, SelfLoopsAreNeverFaulted) {
  LinkFaults f;
  f.partition(3, 3);
  f.set_drop(3, 3, 1.0);
  Rng rng(1);
  EXPECT_TRUE(f.decide(3, 3, rng).deliver);
  EXPECT_FALSE(f.is_cut(3, 3));
}

TEST(LinkFaults, DropAndDuplicateProbabilitiesAreExtremes) {
  LinkFaults f;
  Rng rng(7);
  f.set_drop(0, 1, 1.0);
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(f.decide(0, 1, rng).deliver);
  f.set_drop(0, 1, 0.0);
  f.set_duplicate(0, 1, 1.0);
  for (int i = 0; i < 50; ++i) {
    auto d = f.decide(1, 0, rng);  // symmetric
    EXPECT_TRUE(d.deliver);
    EXPECT_TRUE(d.duplicate);
  }
  f.heal_all();
  EXPECT_FALSE(f.active());
  EXPECT_TRUE(f.decide(0, 1, rng).deliver);
}

TEST(LinkFaults, FaultFreeDecisionsConsumeNoRandomness) {
  LinkFaults f;
  f.partition(5, 6);  // a cut needs no draw either
  Rng a(42);
  Rng b(42);
  (void)f.decide(0, 1, a);
  (void)f.decide(5, 6, a);
  EXPECT_EQ(a(), b());  // identical stream position
}

// --- SimEnv wiring ----------------------------------------------------------

TEST(SimEnvFaults, PartitionDropsUntilHealAndCountsLost) {
  SimEnv env(std::make_shared<ConstantLatency>(ms(5)), 1);
  Recorder a(env);
  Recorder b(env);
  env.register_process(0, &a);
  env.register_process(1, &b);
  env.start();
  env.faults().partition(0, 1);
  env.send(0, 1, std::make_shared<NoteMsg>(1));
  env.send(1, 0, std::make_shared<NoteMsg>(2));
  env.run_to_quiescence();
  EXPECT_TRUE(a.entries.empty());
  EXPECT_TRUE(b.entries.empty());
  EXPECT_EQ(env.traffic().get("msgs.lost"), 2);
  env.faults().heal(0, 1);
  env.send(0, 1, std::make_shared<NoteMsg>(3));
  env.run_to_quiescence();
  ASSERT_EQ(b.entries.size(), 1u);
  EXPECT_EQ(b.entries[0].value, 3);  // the cut-era message stays lost
}

TEST(SimEnvFaults, AsymmetricCutOnlySilencesOneDirection) {
  SimEnv env(std::make_shared<ConstantLatency>(ms(5)), 1);
  Recorder a(env);
  Recorder b(env);
  env.register_process(0, &a);
  env.register_process(1, &b);
  env.start();
  env.faults().cut_one_way(0, 1);
  env.send(0, 1, std::make_shared<NoteMsg>(1));
  env.send(1, 0, std::make_shared<NoteMsg>(2));
  env.run_to_quiescence();
  EXPECT_TRUE(b.entries.empty());
  ASSERT_EQ(a.entries.size(), 1u);
  EXPECT_EQ(a.entries[0].value, 2);
}

TEST(SimEnvFaults, ProbabilisticDropIsSeededAndPartial) {
  auto run = [](std::uint64_t seed) {
    SimEnv env(std::make_shared<ConstantLatency>(ms(1)), seed);
    Recorder a(env);
    Recorder b(env);
    env.register_process(0, &a);
    env.register_process(1, &b);
    env.start();
    env.faults().set_drop(0, 1, 0.5);
    for (int i = 0; i < 200; ++i) {
      env.send(0, 1, std::make_shared<NoteMsg>(i));
    }
    env.run_to_quiescence();
    std::vector<int> got;
    for (const auto& e : b.entries) got.push_back(e.value);
    return got;
  };
  auto got = run(9);
  // Roughly half survive; the exact subset is a pure function of the seed.
  EXPECT_GT(got.size(), 50u);
  EXPECT_LT(got.size(), 150u);
  EXPECT_EQ(got, run(9));
  EXPECT_NE(got, run(10));
}

TEST(SimEnvFaults, DuplicateDeliversExactlyTwice) {
  SimEnv env(std::make_shared<ConstantLatency>(ms(1)), 1);
  Recorder a(env);
  Recorder b(env);
  env.register_process(0, &a);
  env.register_process(1, &b);
  env.start();
  env.faults().set_duplicate(0, 1, 1.0);
  for (int i = 0; i < 10; ++i) {
    env.send(0, 1, std::make_shared<NoteMsg>(i));
  }
  env.run_to_quiescence();
  EXPECT_EQ(b.entries.size(), 20u);
  EXPECT_EQ(env.traffic().get("msgs.dup"), 10);
}

TEST(SimEnvFaults, BoundedReorderingShufflesWithinTheBound) {
  SimEnv env(std::make_shared<ConstantLatency>(ms(5)), 3);
  Recorder a(env);
  Recorder b(env);
  env.register_process(0, &a);
  env.register_process(1, &b);
  env.start();
  env.faults().set_reorder(1.0, ms(50));
  for (int i = 0; i < 100; ++i) {
    env.send(0, 1, std::make_shared<NoteMsg>(i));
  }
  env.run_to_quiescence();
  ASSERT_EQ(b.entries.size(), 100u);
  bool out_of_order = false;
  for (std::size_t i = 0; i < b.entries.size(); ++i) {
    EXPECT_GE(b.entries[i].at, ms(5));
    EXPECT_LE(b.entries[i].at, ms(55));
    if (i > 0 && b.entries[i].value < b.entries[i - 1].value) {
      out_of_order = true;
    }
  }
  EXPECT_TRUE(out_of_order);  // the whole point of the knob
}

// --- ThreadEnv wiring -------------------------------------------------------

TEST(ThreadEnvFaults, PartitionDropsUntilHeal) {
  ThreadEnv env;
  Counting a;
  Counting b;
  env.register_process(0, &a);
  env.register_process(1, &b);
  env.start();
  env.faults().partition(0, 1);
  for (int i = 0; i < 20; ++i) env.send(0, 1, std::make_shared<NoteMsg>(i));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(b.count.load(), 0);
  env.faults().heal(0, 1);
  for (int i = 0; i < 20; ++i) env.send(0, 1, std::make_shared<NoteMsg>(i));
  wait_count(b, 20);
  env.stop();
  EXPECT_EQ(b.count.load(), 20);  // only the post-heal batch arrives
  EXPECT_EQ(env.traffic().get("msgs.lost"), 20);
}

TEST(ThreadEnvFaults, DuplicateDeliversTwice) {
  ThreadEnv env;
  Counting a;
  Counting b;
  env.register_process(0, &a);
  env.register_process(1, &b);
  env.start();
  env.faults().set_duplicate(0, 1, 1.0);
  for (int i = 0; i < 25; ++i) env.send(0, 1, std::make_shared<NoteMsg>(i));
  wait_count(b, 50);
  env.stop();
  EXPECT_EQ(b.count.load(), 50);
}

TEST(ThreadEnvFaults, LateRegistrationDeliversOnStartAndMessages) {
  ThreadEnv env;
  Counting a;
  env.register_process(0, &a);
  env.start();
  Counting late;
  env.register_process(7, &late);  // after start(): worker spawns now
  env.send(0, 7, std::make_shared<NoteMsg>(1));
  wait_count(late, 1);
  env.stop();
  EXPECT_EQ(late.count.load(), 1);
}

// --- Cluster verbs on both runtimes ----------------------------------------

class FaultsOnBothRuntimes : public ::testing::TestWithParam<Runtime> {};

TEST_P(FaultsOnBothRuntimes, PartitionedMinorityStallsReadsUntilHeal) {
  // 5 uniform servers: a weighted quorum needs > 5/2. A client cut off
  // from 3 of them can only ever hear weight 2 — reads MUST stall. After
  // heal, the client's retransmission timer re-broadcasts the stalled
  // phase and the read completes (cut messages were lost, not buffered).
  Cluster c = Cluster::builder()
                  .servers(5)
                  .faults(2)
                  .uniform_latency(us(200), ms(2))
                  .retry(ms(10))
                  .runtime(GetParam())
                  .seed(201)
                  .build();
  ProcessId client = c.client().id();
  for (ProcessId s : {0u, 1u, 2u}) c.partition(client, s);

  Await<TaggedValue> read = c.client().read();
  c.run_for(ms(80));  // plenty of retries — still no quorum reachable
  EXPECT_FALSE(read.ready());

  for (ProcessId s : {0u, 1u, 2u}) c.heal(client, s);
  TaggedValue tv = read.get(seconds(30));
  EXPECT_EQ(tv.tag, kInitialTag);
}

TEST_P(FaultsOnBothRuntimes, ReadsSurviveDropStormsWithRetries) {
  Cluster c = Cluster::builder()
                  .servers(4)
                  .faults(1)
                  .uniform_latency(us(200), ms(1))
                  .retry(ms(5))
                  .runtime(GetParam())
                  .seed(202)
                  .build();
  c.drop_all_links(0.4);  // a permanent 40% loss storm
  Tag t = c.client().write("survivor").get(seconds(60));
  TaggedValue tv = c.client().read().get(seconds(60));
  EXPECT_EQ(tv.tag, t);
  EXPECT_EQ(tv.value, "survivor");
  EXPECT_GT(c.env().traffic().get("msgs.lost"), 0);
}

TEST_P(FaultsOnBothRuntimes, AntiEntropyConvergesIsolatedServerAfterHeal) {
  // s3 is fully isolated while s0 transfers weight to s1. The transfer
  // completes without s3 (n-f-1 = 2 acks reachable); after healing,
  // anti-entropy delivers the change pair to s3 even though every
  // original T broadcast to it was lost.
  Cluster c = Cluster::builder()
                  .servers(4)
                  .faults(1)
                  .uniform_latency(us(200), ms(1))
                  .retry(ms(5))
                  .anti_entropy(ms(10))
                  .runtime(GetParam())
                  .seed(203)
                  .build();
  c.isolate(3);
  TransferOutcome out = c.server(0).transfer(1, Weight(1, 4)).get(seconds(60));
  ASSERT_TRUE(out.effective);
  WeightMap expected = c.server(0).weights_snapshot().get(seconds(30));
  EXPECT_EQ(expected.of(1), Weight(5, 4));

  // While isolated, s3 still believes the initial weights.
  WeightMap stale = c.server(3).weights_snapshot().get(seconds(30));
  EXPECT_EQ(stale.of(1), Weight(1));

  c.heal_all_links();
  // A few sync periods later s3 has caught up.
  WeightMap healed;
  for (int i = 0; i < 100; ++i) {
    c.run_for(ms(20));
    healed = c.server(3).weights_snapshot().get(seconds(30));
    if (healed == expected) break;
  }
  EXPECT_EQ(healed, expected);
}

TEST_P(FaultsOnBothRuntimes, AddClientMidRunReadsTheRegister) {
  Cluster c = Cluster::builder()
                  .servers(4)
                  .faults(1)
                  .uniform_latency(us(200), ms(1))
                  .runtime(GetParam())
                  .seed(204)
                  .build();
  Tag t = c.client().write("before-restart").get(seconds(30));
  c.crash(c.client().id());  // the original reader dies...
  std::size_t fresh = c.add_client();  // ...and "restarts" as a new one
  EXPECT_EQ(c.num_clients(), 2u);
  TaggedValue tv = c.client(fresh).read().get(seconds(30));
  EXPECT_EQ(tv.tag, t);
  EXPECT_EQ(tv.value, "before-restart");
}

INSTANTIATE_TEST_SUITE_P(BothRuntimes, FaultsOnBothRuntimes,
                         ::testing::Values(Runtime::kSim, Runtime::kThread),
                         [](const auto& info) {
                           return info.param == Runtime::kSim ? "Sim"
                                                              : "Threads";
                         });

}  // namespace
}  // namespace wrs
