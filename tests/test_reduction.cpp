// Executable impossibility reductions (Theorems 1 and 2): Algorithms 1
// and 2 solve consensus against the oracle weight-reassignment service.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "consensus/reduction.h"
#include "runtime/sim_env.h"

namespace wrs {
namespace {

template <typename ServerT>
struct ReductionCluster {
  std::unique_ptr<SimEnv> env;
  SystemConfig config;
  std::unique_ptr<OracleReassignService> oracle;
  std::vector<std::unique_ptr<ServerT>> servers;
  std::shared_ptr<SharedRegisters> registers;
  std::vector<std::optional<std::string>> decisions;

  ReductionCluster(std::uint32_t n, std::uint32_t f, std::uint64_t seed) {
    config = SystemConfig::make(n, f, reduction_initial_weights(n, f));
    env = std::make_unique<SimEnv>(
        std::make_shared<UniformLatency>(ms(1), ms(15)), seed);
    oracle = std::make_unique<OracleReassignService>(*env, config);
    env->register_process(kOracleId, oracle.get());
    registers = std::make_shared<SharedRegisters>(n);
    decisions.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      servers.push_back(
          std::make_unique<ServerT>(*env, i, config, registers));
      env->register_process(i, servers.back().get());
    }
    env->start();
  }

  void propose_all() {
    for (std::uint32_t i = 0; i < config.n; ++i) {
      std::uint32_t idx = i;
      servers[i]->propose("proposal-" + std::to_string(i),
                          [this, idx](const std::string& v) {
                            decisions[idx] = v;
                          });
    }
  }

  bool all_decided() const {
    for (const auto& d : decisions) {
      if (!d.has_value()) return false;
    }
    return true;
  }
};

using Alg1Cluster = ReductionCluster<Alg1Server>;
using Alg2Cluster = ReductionCluster<Alg2Server>;

struct RedParams {
  std::uint64_t seed;
  std::uint32_t n;
  std::uint32_t f;
};

class Alg1Test : public ::testing::TestWithParam<RedParams> {};

TEST_P(Alg1Test, ConsensusProperties) {
  auto [seed, n, f] = GetParam();
  Alg1Cluster c(n, f, seed);
  c.propose_all();
  ASSERT_TRUE(c.env->run_until_pred([&] { return c.all_decided(); },
                                    seconds(600)))
      << "termination failed (seed " << seed << ")";

  // Agreement: all servers decide the same value.
  for (std::uint32_t i = 1; i < n; ++i) {
    EXPECT_EQ(*c.decisions[i], *c.decisions[0]);
  }
  // Validity: the decision is one of the proposals.
  EXPECT_EQ(c.decisions[0]->rfind("proposal-", 0), 0u);
  // The mechanism: exactly one effective (non-zero) change was granted.
  EXPECT_EQ(c.oracle->effective_count(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, Alg1Test,
    ::testing::Values(RedParams{1, 4, 1}, RedParams{2, 4, 1},
                      RedParams{3, 5, 2}, RedParams{4, 5, 2},
                      RedParams{5, 7, 2}, RedParams{6, 7, 3},
                      RedParams{7, 9, 4}, RedParams{8, 6, 2},
                      RedParams{9, 8, 3}, RedParams{10, 10, 4}));

class Alg2Test : public ::testing::TestWithParam<RedParams> {};

TEST_P(Alg2Test, ConsensusProperties) {
  auto [seed, n, f] = GetParam();
  Alg2Cluster c(n, f, seed);
  c.propose_all();
  ASSERT_TRUE(c.env->run_until_pred([&] { return c.all_decided(); },
                                    seconds(600)))
      << "termination failed (seed " << seed << ")";

  for (std::uint32_t i = 1; i < n; ++i) {
    EXPECT_EQ(*c.decisions[i], *c.decisions[0]);
  }
  // Validity restricted to S∖F proposals (the decided transfer is one of
  // the S∖F servers' — Algorithm 2's loop only scans j in S∖F).
  std::string v = *c.decisions[0];
  int j = std::stoi(v.substr(std::string("proposal-").size()));
  EXPECT_GE(j, static_cast<int>(f));
  // Exactly one effective S∖F transfer ever (0.4 credit to s0), no
  // matter how many retries were needed.
  std::size_t winners = 0;
  for (const Change& ch : c.oracle->changes().all()) {
    if (ch.issuer() >= f && ch.target() == 0 && ch.delta == Weight(2, 5)) {
      ++winners;
    }
  }
  EXPECT_EQ(winners, 1u);
  // The decided proposal is the winner's.
  EXPECT_GE(c.oracle->effective_count(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, Alg2Test,
    ::testing::Values(RedParams{11, 4, 1}, RedParams{12, 5, 2},
                      RedParams{13, 5, 2}, RedParams{14, 7, 2},
                      RedParams{15, 7, 3}, RedParams{16, 9, 4},
                      RedParams{17, 6, 2}, RedParams{18, 8, 3},
                      RedParams{19, 10, 4}, RedParams{20, 11, 5}));

TEST(Oracle, IntegrityNeverViolated) {
  // Direct oracle check: after arbitrary grant sequences, Property 1
  // holds on the oracle's authoritative weights.
  SystemConfig cfg =
      SystemConfig::make(5, 2, reduction_initial_weights(5, 2));
  SimEnv env(std::make_shared<ConstantLatency>(ms(1)), 1);
  OracleReassignService oracle(env, cfg);
  env.register_process(kOracleId, &oracle);

  // A dummy requester process.
  struct Sink : Process {
    void on_message(ProcessId, const Message&) override {}
  } sink;
  env.register_process(0, &sink);
  env.start();

  for (int i = 0; i < 20; ++i) {
    env.send(0, kOracleId,
             std::make_shared<OracleReassignReq>(2 + i, i % 5,
                                                 Weight(1, 2)));
    env.run_to_quiescence();
    Wmqs q(oracle.changes().to_weight_map(cfg.servers()));
    EXPECT_TRUE(q.is_available(cfg.f)) << "after grant " << i;
  }
}

TEST(Oracle, NullChangesRecordedForAbortedRequests) {
  SystemConfig cfg =
      SystemConfig::make(4, 1, reduction_initial_weights(4, 1));
  SimEnv env(std::make_shared<ConstantLatency>(ms(1)), 1);
  OracleReassignService oracle(env, cfg);
  env.register_process(kOracleId, &oracle);
  struct Cap : Process {
    std::vector<Change> completions;
    void on_message(ProcessId, const Message& m) override {
      const auto* c = msg_cast<OracleComplete>(m);
      if (c != nullptr) completions.push_back(c->change());
    }
  } cap;
  env.register_process(0, &cap);
  env.start();

  // +1/2 to s0 (F member) is fine; then -1/2 to s1 breaks Integrity and
  // must be completed with a null change.
  env.send(0, kOracleId,
           std::make_shared<OracleReassignReq>(2, 0, Weight(1, 2)));
  env.run_to_quiescence();
  env.send(0, kOracleId,
           std::make_shared<OracleReassignReq>(3, 1, Weight(-1, 2)));
  env.run_to_quiescence();

  ASSERT_EQ(cap.completions.size(), 2u);
  EXPECT_FALSE(cap.completions[0].is_null());
  EXPECT_TRUE(cap.completions[1].is_null());
  EXPECT_EQ(oracle.effective_count(), 1u);
}

TEST(SharedRegisters, EnforcesSingleWriter) {
  SharedRegisters regs(3);
  regs.write(1, 1, "ok");
  EXPECT_EQ(*regs.read(1), "ok");
  EXPECT_FALSE(regs.read(0).has_value());
  EXPECT_THROW(regs.write(0, 1, "steal"), std::logic_error);
  EXPECT_THROW(regs.read(7), std::out_of_range);
}

}  // namespace
}  // namespace wrs
