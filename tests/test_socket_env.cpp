// Socket-runtime integration tests (Linux only; the whole file compiles
// away elsewhere and the binary reports zero tests).
//
//  * multi-process: fork real wrs-node groups, drive them over TCP,
//    SIGKILL one and restart it on the same port (liveness);
//  * multi-env in one process: partition mapped onto real connection
//    teardown + reconnect, Unix-domain transport;
//  * single-process loopback Cluster (Transport::kSocket): 2 shards,
//    batching on/off, atomicity-checked workloads, and the per-shard
//    traffic ledger measured in real encoded bytes.
#ifdef __linux__

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "api/cluster.h"
#include "deploy/node_runner.h"
#include "net/socket_addr.h"
#include "runtime/socket_env.h"
#include "shard/shard_map.h"
#include "storage/dynamic_node.h"
#include "storage/history.h"
#include "workload/workload.h"

namespace wrs {
namespace {

using deploy::NodeOptions;
using deploy::SpawnedNode;

/// One SocketEnv hosting a StorageClient, dialing server groups by
/// static route. Ops run through promise-backed awaits (the env has no
/// sim pump; get() blocks on a condition variable).
struct SocketClient {
  SocketEnv env;
  StorageClient client;
  ProcessId pid = client_id(0);

  SocketClient(ShardMap map, TimeNs retry, std::uint64_t seed = 1)
      : env(make_opts(seed)),
        client(env, client_id(0), std::move(map), AbdClient::Mode::kDynamic) {
    if (retry > 0) client.router().set_retry_interval(retry);
    env.register_process(pid, &client);
  }

  static SocketEnv::Options make_opts(std::uint64_t seed) {
    SocketEnv::Options o;
    o.listen = net::SocketAddr::parse("tcp:127.0.0.1:0");
    o.seed = seed;
    return o;
  }

  void route_group(const std::vector<ProcessId>& servers,
                   const std::string& addr) {
    for (ProcessId s : servers) {
      env.add_route(s, net::SocketAddr::parse(addr));
    }
  }

  Tag write(const RegisterKey& key, const Value& value,
            TimeNs timeout = seconds(30)) {
    Await<Tag> aw;
    env.schedule(pid, 0, [this, key, value, aw] {
      client.router().write(key, value,
                            [aw](const Tag& t) { aw.fulfill(t); });
    });
    return aw.get(timeout);
  }

  TaggedValue read(const RegisterKey& key, TimeNs timeout = seconds(30)) {
    Await<TaggedValue> aw;
    env.schedule(pid, 0, [this, key, aw] {
      client.router().read(key,
                          [aw](const TaggedValue& tv) { aw.fulfill(tv); });
    });
    return aw.get(timeout);
  }
};

// --- multi-process -----------------------------------------------------------
// Declared first: fork() happens before any test has started (and
// stopped) in-process loop threads.

TEST(SocketMultiProcess, KillMinusNineThenRestartOnSamePort) {
  NodeOptions opts;
  opts.shard = 0;
  opts.num_shards = 1;
  opts.servers_per_shard = 3;
  opts.faults = 1;
  opts.retry = ms(20);
  SpawnedNode node = deploy::spawn_node_group(opts);
  ASSERT_FALSE(node.addr.empty());

  ShardMap map = ShardMap::uniform(1, 3, 1);
  SocketClient c(map, /*retry=*/ms(50));
  c.route_group(map.servers(0), node.addr);
  c.env.start();

  Tag t1 = c.write("k", "before-kill");
  EXPECT_EQ(c.read("k").value, "before-kill");

  // kill -9: no goodbye, connections die mid-stream.
  deploy::kill_node_group(node);

  // Restart the whole group on the SAME address (fresh state; liveness,
  // not durability, is what the runtime owes us here).
  opts.listen = node.addr;
  SpawnedNode reborn = deploy::spawn_node_group(opts);
  ASSERT_EQ(reborn.addr, node.addr);

  Tag t2 = c.write("k", "after-restart", seconds(60));
  EXPECT_EQ(c.read("k", seconds(60)).value, "after-restart");
  (void)t1;
  (void)t2;

  deploy::stop_node_group(reborn);
  c.env.stop();
}

TEST(SocketMultiProcess, TwoShardGroupsServeDisjointKeyspace) {
  NodeOptions opts;
  opts.num_shards = 2;
  opts.servers_per_shard = 3;
  opts.faults = 1;
  opts.shard = 0;
  SpawnedNode g0 = deploy::spawn_node_group(opts);
  opts.shard = 1;
  SpawnedNode g1 = deploy::spawn_node_group(opts);

  ShardMap map = ShardMap::uniform(2, 3, 1);
  SocketClient c(map, /*retry=*/ms(50));
  c.route_group(map.servers(0), g0.addr);
  c.route_group(map.servers(1), g1.addr);
  c.env.start();

  // Enough keys to hit both shards with near-certainty.
  for (int k = 0; k < 8; ++k) {
    std::string key = "key" + std::to_string(k);
    c.write(key, "v" + std::to_string(k));
  }
  for (int k = 0; k < 8; ++k) {
    std::string key = "key" + std::to_string(k);
    EXPECT_EQ(c.read(key).value, "v" + std::to_string(k));
  }

  deploy::stop_node_group(g0);
  deploy::stop_node_group(g1);
  c.env.stop();
}

// --- multi-env in one process -----------------------------------------------

TEST(SocketMultiEnv, PartitionTearsDownRealConnections) {
  // One env hosts the whole group (like a node process), one the client.
  ShardMap map = ShardMap::uniform(1, 3, 1);
  const SystemConfig& cfg = map.config(0);

  SocketEnv::Options so;
  so.listen = net::SocketAddr::parse("tcp:127.0.0.1:0");
  so.loopback_self = true;
  SocketEnv server_env(so);
  std::vector<std::unique_ptr<DynamicStorageNode>> nodes;
  for (ProcessId s : cfg.servers()) {
    nodes.push_back(std::make_unique<DynamicStorageNode>(server_env, s, cfg));
    server_env.register_process(s, nodes.back().get());
  }
  server_env.start();
  std::string addr = server_env.listen_addr().str();

  SocketClient c(map, /*retry=*/ms(25));
  c.route_group(cfg.servers(), addr);
  c.env.start();

  c.write("k", "v1");
  ASSERT_EQ(c.read("k").value, "v1");
  std::uint64_t opened_before = c.env.transport().conns_opened();
  ASSERT_GE(opened_before, 1u);

  // Cut the client off from every server: the client env's fault poll
  // must tear the underlying connection down for real.
  for (ProcessId s : cfg.servers()) {
    c.env.faults().partition(c.pid, s);
  }
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (c.env.fault_teardowns() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(c.env.fault_teardowns(), 1u);
  EXPECT_GE(c.env.transport().conns_closed(), 1u);

  // Heal: the retrying client redials (fresh connection) and finishes.
  c.env.faults().heal_all();
  EXPECT_EQ(c.read("k", seconds(60)).value, "v1");
  EXPECT_GT(c.env.transport().conns_opened(), opened_before);

  c.env.stop();
  server_env.stop();
}

TEST(SocketMultiEnv, UnixDomainTransport) {
  std::string path = "/tmp/wrs_socket_test_" + std::to_string(::getpid()) +
                     ".sock";
  ShardMap map = ShardMap::uniform(1, 3, 1);
  const SystemConfig& cfg = map.config(0);

  SocketEnv::Options so;
  so.listen = net::SocketAddr::parse("unix:" + path);
  so.loopback_self = true;
  SocketEnv server_env(so);
  std::vector<std::unique_ptr<DynamicStorageNode>> nodes;
  for (ProcessId s : cfg.servers()) {
    nodes.push_back(std::make_unique<DynamicStorageNode>(server_env, s, cfg));
    server_env.register_process(s, nodes.back().get());
  }
  server_env.start();
  EXPECT_EQ(server_env.listen_addr().str(), "unix:" + path);

  SocketClient c(map, /*retry=*/ms(50));
  c.route_group(cfg.servers(), "unix:" + path);
  c.env.start();

  c.write("u", "over-unix-sockets");
  EXPECT_EQ(c.read("u").value, "over-unix-sockets");

  c.env.stop();
  server_env.stop();
}

// --- single-process loopback Cluster ----------------------------------------

struct SmokeResult {
  std::size_t completed = 0;
  std::uint64_t envelopes = 0;
};

/// Runs a 2-shard atomicity-checked workload on Transport::kSocket and
/// asserts the real-bytes shard ledger partitions the aggregate.
SmokeResult run_loopback_smoke(std::size_t batch_window) {
  auto history = std::make_shared<HistoryRecorder>();
  WorkloadParams wp;
  wp.num_ops = 40;
  wp.read_ratio = 0.5;
  wp.think_time = us(200);
  wp.num_keys = 8;
  wp.value_size = 24;
  wp.seed = 11;

  ClusterBuilder b = Cluster::builder()
                         .servers(3)
                         .faults(1)
                         .shards(2)
                         .clients(2)
                         .workload(wp)
                         .history(history)
                         .retry(ms(100))
                         .transport(Transport::kSocket)
                         .seed(11);
  if (batch_window > 1) b.batching(batch_window, ms(1));
  Cluster c = b.build();

  SmokeResult r;
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_TRUE(c.workload_done(k).get(seconds(120)));
  }
  c.quiesce();
  for (std::size_t k = 0; k < 2; ++k) {
    r.completed += c.workload(k).completed();
    r.envelopes += c.workload(k).router().batches_sent();
  }
  EXPECT_EQ(r.completed, 2 * wp.num_ops);

  auto verdict = check_atomicity(history->completed());
  EXPECT_FALSE(verdict.has_value()) << *verdict;

  // Satellite: per-shard traffic — measured in REAL encoded frame bytes
  // on this transport — still partitions the aggregate exactly.
  std::int64_t shard_msgs = 0, shard_bytes = 0;
  for (ShardId g = 0; g < 2; ++g) {
    EXPECT_GT(c.shard_traffic(g).get("msgs"), 0) << "shard " << g;
    shard_msgs += c.shard_traffic(g).get("msgs");
    shard_bytes += c.shard_traffic(g).get("bytes");
  }
  EXPECT_EQ(shard_msgs, c.traffic().get("msgs"));
  EXPECT_EQ(shard_bytes, c.traffic().get("bytes"));
  EXPECT_GT(shard_bytes, 0);
  return r;
}

TEST(SocketCluster, LoopbackWorkloadIsAtomic) {
  run_loopback_smoke(/*batch_window=*/1);
}

TEST(SocketCluster, LoopbackBatchedWorkloadIsAtomic) {
  SmokeResult r = run_loopback_smoke(/*batch_window=*/8);
  // Batching actually engaged: ops were coalesced into envelopes.
  EXPECT_GT(r.envelopes, 0u);
}

TEST(SocketCluster, FaultVerbsAndCrashOnRealSockets) {
  Cluster c = Cluster::builder()
                  .servers(3)
                  .faults(1)
                  .clients(1)
                  .retry(ms(25))
                  .transport(Transport::kSocket)
                  .seed(3)
                  .build();

  EXPECT_EQ(c.transport(), Transport::kSocket);
  ASSERT_NE(c.sockets(), nullptr);

  c.client().write("k", "v0").get(seconds(30));

  // Isolate one server: the 2-of-3 weighted quorum still serves.
  c.isolate(2);
  c.client().write("k", "v1").get(seconds(60));
  EXPECT_EQ(c.client().read("k").get(seconds(60)).value, "v1");
  c.heal_all_links();

  // Crash-stop a different server: still 2 of 3.
  c.crash(1);
  c.client().write("k", "v2").get(seconds(60));
  EXPECT_EQ(c.client().read("k").get(seconds(60)).value, "v2");
}

TEST(SocketCluster, SimRuntimeRequestRejected) {
  EXPECT_THROW(Cluster::builder()
                   .servers(3)
                   .runtime(Runtime::kSim)
                   .transport(Transport::kSocket)
                   .build(),
               std::invalid_argument);
}

TEST(SocketCluster, CustomProcessesRejected) {
  EXPECT_THROW(
      Cluster::builder()
          .servers(3)
          .transport(Transport::kSocket)
          .add_process(7000, [](Env&, const SystemConfig&) {
            return std::unique_ptr<Process>();
          })
          .build(),
      std::invalid_argument);
}

}  // namespace
}  // namespace wrs

#endif  // __linux__
