// Tests for the monitoring substrate and the adaptive node loop.
#include <gtest/gtest.h>

#include <memory>

#include "monitor/adaptive_node.h"
#include "runtime/sim_env.h"

namespace wrs {
namespace {

TEST(LatencyMonitor, EwmaConvergesToSteadyInput) {
  LatencyMonitor m(0.5);
  for (int i = 0; i < 32; ++i) m.add_sample(0, ms(10));
  ASSERT_TRUE(m.estimate(0).has_value());
  EXPECT_NEAR(*m.estimate(0), static_cast<double>(ms(10)), 1.0);
}

TEST(LatencyMonitor, EwmaTracksShift) {
  LatencyMonitor m(0.5);
  for (int i = 0; i < 10; ++i) m.add_sample(0, ms(10));
  for (int i = 0; i < 20; ++i) m.add_sample(0, ms(100));
  EXPECT_GT(*m.estimate(0), static_cast<double>(ms(90)));
}

TEST(LatencyMonitor, FastestPicksMinimum) {
  LatencyMonitor m;
  m.add_sample(0, ms(50));
  m.add_sample(1, ms(10));
  m.add_sample(2, ms(90));
  ASSERT_TRUE(m.fastest().has_value());
  EXPECT_EQ(*m.fastest(), 1u);
}

TEST(LatencyMonitor, NoSamplesNoEstimates) {
  LatencyMonitor m;
  EXPECT_FALSE(m.estimate(0).has_value());
  EXPECT_FALSE(m.fastest().has_value());
  EXPECT_FALSE(m.has_estimates_for_all({0, 1}));
}

TEST(WeightPolicy, NoDecisionWhenSelfIsFastest) {
  LatencyMonitor m;
  m.add_sample(0, ms(5));
  m.add_sample(1, ms(50));
  WeightPolicy p(Weight(1, 10));
  EXPECT_FALSE(p.decide(0, Weight(1), Weight(2, 3), m).has_value());
}

TEST(WeightPolicy, SlowServerDonatesToFastest) {
  LatencyMonitor m;
  m.add_sample(0, ms(100));
  m.add_sample(1, ms(10));
  m.add_sample(2, ms(60));
  WeightPolicy p(Weight(1, 10), 1.5);
  auto d = p.decide(0, Weight(1), Weight(2, 3), m);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->dst, 1u);
  EXPECT_EQ(d->delta, Weight(1, 10));
}

TEST(WeightPolicy, RespectsFloorWithMargin) {
  LatencyMonitor m;
  m.add_sample(0, ms(100));
  m.add_sample(1, ms(10));
  WeightPolicy p(Weight(1, 10), 1.5);
  // weight 0.75, floor 2/3: 0.75 > 0.1 + 0.666..? 0.75 < 0.7666 -> no.
  EXPECT_FALSE(p.decide(0, Weight(3, 4), Weight(2, 3), m).has_value());
  // weight 0.8 > 0.766.. -> yes.
  EXPECT_TRUE(p.decide(0, Weight(4, 5), Weight(2, 3), m).has_value());
}

TEST(WeightPolicy, NotSlowEnoughNoDecision) {
  LatencyMonitor m;
  m.add_sample(0, ms(12));
  m.add_sample(1, ms(10));
  WeightPolicy p(Weight(1, 10), 1.5);
  EXPECT_FALSE(p.decide(0, Weight(1), Weight(1, 2), m).has_value());
}

TEST(AdaptiveNode, WeightsFlowTowardFastServer) {
  // 5 servers; server 4 sits behind a slow link. With adaptation on, its
  // weight should drain toward the fast servers over time.
  SystemConfig cfg = SystemConfig::uniform(5, 1);
  auto inner = std::make_unique<ConstantLatency>(ms(5));
  auto degradable = std::make_shared<DegradableLatency>(std::move(inner));
  degradable->set_factor(4, 20.0);  // server 4 is 20x slower
  SimEnv env(degradable, 77);

  AdaptiveParams params;
  params.probe_interval = ms(20);
  params.eval_interval = ms(60);
  params.step = Weight(1, 20);
  params.slow_factor = 2.0;

  std::vector<std::unique_ptr<AdaptiveNode>> nodes;
  for (std::uint32_t i = 0; i < 5; ++i) {
    nodes.push_back(std::make_unique<AdaptiveNode>(env, i, cfg, params));
    env.register_process(i, nodes.back().get());
  }
  env.start();
  env.run_until(seconds(5));

  // Server 4 donated weight; it never goes below the floor.
  Weight w4 = nodes[0]->reassign().weight_of(4);
  EXPECT_LT(w4, Weight(1));
  EXPECT_GT(w4, cfg.floor());
  EXPECT_GT(nodes[4]->transfers_issued(), 0u);
  // Total conserved.
  Weight total(0);
  for (std::uint32_t s = 0; s < 5; ++s) {
    total += nodes[0]->reassign().weight_of(s);
  }
  EXPECT_EQ(total, Weight(5));
}

TEST(AdaptiveNode, DisabledAdaptationKeepsWeights) {
  SystemConfig cfg = SystemConfig::uniform(4, 1);
  auto degradable = std::make_shared<DegradableLatency>(
      std::make_unique<ConstantLatency>(ms(5)));
  degradable->set_factor(3, 20.0);
  SimEnv env(degradable, 78);
  AdaptiveParams params;
  params.adaptation_enabled = false;
  std::vector<std::unique_ptr<AdaptiveNode>> nodes;
  for (std::uint32_t i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<AdaptiveNode>(env, i, cfg, params));
    env.register_process(i, nodes.back().get());
  }
  env.start();
  env.run_until(seconds(3));
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(nodes[0]->reassign().weight_of(s), Weight(1));
  }
}

}  // namespace
}  // namespace wrs
