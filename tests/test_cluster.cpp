// The deployment facade (api/cluster.h) and awaitable API (api/await.h).
//
// The core promise under test: the SAME driver code runs on the
// deterministic simulator and on the thread runtime, selected only by the
// builder's Runtime enum — so most tests here are parameterized over the
// substrate.
#include <gtest/gtest.h>

#include <memory>

#include "api/cluster.h"
#include "storage/history.h"

namespace wrs {
namespace {

class ClusterOnBothRuntimes : public ::testing::TestWithParam<Runtime> {};

TEST_P(ClusterOnBothRuntimes, WriteReadTransferRoundTrip) {
  Cluster c = Cluster::builder()
                  .servers(4)
                  .faults(1)
                  .uniform_latency(us(200), ms(3))
                  .runtime(GetParam())
                  .seed(11)
                  .build();

  Tag tag = c.client().write("v1").get(seconds(30));
  TaggedValue tv = c.client().read().get(seconds(30));
  EXPECT_EQ(tv.value, "v1");
  EXPECT_EQ(tv.tag, tag);

  TransferOutcome out = c.server(3).transfer(0, Weight(1, 4)).get(seconds(30));
  EXPECT_TRUE(out.effective);

  // The donor's own snapshot reflects the transfer immediately after
  // completion (both changes are stored locally before the callback).
  WeightMap w = c.server(3).weights_snapshot().get(seconds(30));
  EXPECT_EQ(w.of(0), Weight(5, 4));
  EXPECT_EQ(w.of(3), Weight(3, 4));

  // Reads keep working against the new quorum geometry.
  EXPECT_EQ(c.client().read().get(seconds(30)).value, "v1");
}

TEST_P(ClusterOnBothRuntimes, NamedRegistersAndListKeys) {
  Cluster c = Cluster::builder()
                  .servers(4)
                  .faults(1)
                  .uniform_latency(us(200), ms(2))
                  .runtime(GetParam())
                  .seed(23)
                  .build();

  c.client().write("alpha", "1").get(seconds(30));
  c.client().write("beta", "2").get(seconds(30));
  auto keys = c.client().list_keys().get(seconds(30));
  EXPECT_EQ(keys.size(), 2u);

  EXPECT_EQ(c.client().read("beta").get(seconds(30)).value, "2");
}

TEST_P(ClusterOnBothRuntimes, CrashWithinBudgetKeepsServing) {
  Cluster c = Cluster::builder()
                  .servers(5)
                  .faults(1)
                  .uniform_latency(us(200), ms(2))
                  .runtime(GetParam())
                  .seed(31)
                  .build();

  c.client().write("survives").get(seconds(30));
  c.crash(4);
  EXPECT_TRUE(c.is_crashed(4));
  EXPECT_EQ(c.client().read().get(seconds(30)).value, "survives");
}

TEST_P(ClusterOnBothRuntimes, WorkloadClientsRecordAtomicHistories) {
  auto history = std::make_shared<HistoryRecorder>();
  WorkloadParams wp;
  wp.num_ops = 10;
  wp.think_time = ms(1);
  wp.value_size = 8;

  Cluster c = Cluster::builder()
                  .servers(4)
                  .faults(1)
                  .clients(2)
                  .uniform_latency(us(200), ms(2))
                  .runtime(GetParam())
                  .seed(41)
                  .workload(wp)
                  .history(history)
                  .build();

  for (std::size_t k = 0; k < 2; ++k) {
    ASSERT_TRUE(c.workload_done(k).try_get(seconds(60)).has_value());
  }
  c.quiesce();
  EXPECT_EQ(history->completed_count(), 20u);
  EXPECT_FALSE(check_atomicity(history->completed()).has_value());
}

TEST_P(ClusterOnBothRuntimes, ReassignOnlyDeployment) {
  Cluster c = Cluster::builder()
                  .servers(4)
                  .faults(1)
                  .uniform_latency(us(200), ms(2))
                  .runtime(GetParam())
                  .seed(53)
                  .reassign_only()
                  .build();

  EXPECT_TRUE(c.server(0).transfer(1, Weight(1, 8)).get(seconds(30)).effective);
  ChangeSet cs = c.reassign_client().read_changes(0).get(seconds(30));
  EXPECT_EQ(cs.weight_of(0), Weight(7, 8));

  // A storage accessor on a reassign-only deployment is a usage error.
  EXPECT_THROW(c.client(), std::logic_error);
  EXPECT_THROW(c.storage_node(0), std::logic_error);
}

TEST_P(ClusterOnBothRuntimes, StagedScriptsRunEvenWithServer0Crashed) {
  Cluster c = Cluster::builder()
                  .servers(3)
                  .faults(1)
                  .uniform_latency(ms(1), ms(2))
                  .runtime(GetParam())
                  .seed(3)
                  .build();
  // Scenario scripts are env-internal: they must fire on both substrates
  // even when every convenient execution context is gone.
  c.crash(0);
  Await<TimeNs> fired = c.make_await<TimeNs>();
  TimeNs scheduled_at = c.now();
  c.at(ms(100), [&c, fired] { fired.fulfill(c.now()); });
  EXPECT_GE(fired.get(seconds(30)), scheduled_at + ms(100));
}

INSTANTIATE_TEST_SUITE_P(BothRuntimes, ClusterOnBothRuntimes,
                         ::testing::Values(Runtime::kSim, Runtime::kThread),
                         [](const auto& info) {
                           return info.param == Runtime::kSim ? "Sim"
                                                              : "Threads";
                         });

TEST(Cluster, ScenarioHooksReshapeLatencyMidRun) {
  Cluster c = Cluster::builder()
                  .servers(3)
                  .faults(1)
                  .latency(std::make_shared<ConstantLatency>(ms(1)))
                  .seed(7)
                  .build();

  c.client().write("x").get(seconds(30));
  TimeNs t0 = c.now();
  c.client().read().get(seconds(30));
  TimeNs fast = c.now() - t0;

  c.slow(0, 50.0);
  c.slow(1, 50.0);
  c.slow(2, 50.0);
  t0 = c.now();
  c.client().read().get(seconds(200));
  TimeNs slowed = c.now() - t0;
  EXPECT_GT(slowed, fast * 10);

  c.clear_slow(0);
  c.clear_slow(1);
  c.clear_slow(2);
  c.set_latency(std::make_unique<ConstantLatency>(us(10)));
  t0 = c.now();
  c.client().read().get(seconds(30));
  EXPECT_LT(c.now() - t0, fast);
}

TEST(Cluster, AwaitTimesOutWhenNoQuorumExists) {
  Cluster c = Cluster::builder()
                  .servers(5)
                  .faults(1)
                  .uniform_latency(ms(1), ms(2))
                  .seed(9)
                  .build();
  // Crash beyond the budget: 3 of 5 servers — no weighted quorum remains.
  c.crash(2);
  c.crash(3);
  c.crash(4);
  Await<Tag> stuck = c.client().write("never");
  EXPECT_THROW(stuck.get(seconds(5)), AwaitTimeout);
  EXPECT_FALSE(stuck.ready());
}

TEST(Cluster, BuilderValidatesTopology) {
  EXPECT_THROW(Cluster::builder().build(), std::invalid_argument);
  EXPECT_THROW(Cluster::builder().servers(4).faults(2).build(),
               std::invalid_argument);

  // Conflicting server roles fail loudly instead of last-one-wins.
  EXPECT_THROW(Cluster::builder().servers(4).adaptive({}).reassign_only(),
               std::logic_error);
  EXPECT_THROW(Cluster::builder().servers(4).reassign_only().adaptive({}),
               std::logic_error);
  // A workload needs storage clients.
  EXPECT_THROW(Cluster::builder()
                   .servers(4)
                   .faults(1)
                   .reassign_only()
                   .workload({})
                   .build(),
               std::invalid_argument);
  Cluster c = Cluster::builder().servers(4).faults(1).seed(1).build();
  EXPECT_THROW(c.client(7), std::out_of_range);
  EXPECT_THROW(c.server(99), std::out_of_range);
  EXPECT_THROW(c.workload(0), std::logic_error);
  EXPECT_THROW(c.adaptive_node(0), std::logic_error);

  // Bad indices name the offender and the valid range.
  try {
    c.server(99);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("99"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("[0, 4)"), std::string::npos)
        << e.what();
  }
  try {
    c.reassign_client(7);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("7"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("[0, 1)"), std::string::npos)
        << e.what();
  }
}

TEST(Cluster, SameSeedSameSimSchedule) {
  auto run = [] {
    Cluster c = Cluster::builder()
                    .servers(4)
                    .faults(1)
                    .uniform_latency(ms(1), ms(9))
                    .seed(77)
                    .build();
    c.client().write("det").get(seconds(30));
    c.server(0).transfer(1, Weight(1, 3)).get(seconds(30));
    c.quiesce();
    return c.now();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace wrs
