// Reproduces Example 1 of Section III step by step against the oracle
// weight-reassignment service (the general problem's interface —
// implementable only by an oracle, per Corollary 1).
//
// S = {s1..s4}, Pi = {c1, c2}, f = 1, uniform initial weight 1.
//  * s1 invokes reassign(s1, +1.5): Integrity survives (new total 5.5,
//    top-1 = 2.5 < 2.75), so a change <s1, 2, s1, 1.5> is created —
//    Validity-I forbids completing it as null.
//  * c1 reads s1's changes and computes weight 2.5 (Validity-II).
//  * s3 invokes reassign(s2, -0.5): granting it would leave total 5 and
//    top-1 = 2.5, violating Integrity — a null change is created.
//  * c2 reads s2's changes: the null change is there, weight still 1.
#include <gtest/gtest.h>

#include "consensus/oracle.h"
#include "runtime/sim_env.h"

namespace wrs {
namespace {

struct Requester : Process {
  std::vector<Change> completions;
  std::map<std::uint64_t, ChangeSet> reads;
  void on_message(ProcessId, const Message& m) override {
    if (const auto* c = msg_cast<OracleComplete>(m)) {
      completions.push_back(c->change());
    } else if (const auto* r = msg_cast<OracleReadAck>(m)) {
      reads[r->op_id()] = r->changes();
    }
  }
};

TEST(Example1, FullWalkthrough) {
  SystemConfig cfg = SystemConfig::uniform(4, 1);
  SimEnv env(std::make_shared<UniformLatency>(ms(1), ms(5)), 8);
  OracleReassignService oracle(env, cfg);
  env.register_process(kOracleId, &oracle);

  Requester s1, s3;  // servers 0 and 2 in 0-based ids
  Requester c1, c2;
  env.register_process(0, &s1);
  env.register_process(2, &s3);
  env.register_process(client_id(0), &c1);
  env.register_process(client_id(1), &c2);
  env.start();

  // Step 1: s1 invokes reassign(s1, 1.5) with local counter 2.
  env.send(0, kOracleId,
           std::make_shared<OracleReassignReq>(2, 0, Weight(3, 2)));
  env.run_to_quiescence();
  ASSERT_EQ(s1.completions.size(), 1u);
  // Validity-I: the change MUST be non-null (Integrity is preserved).
  EXPECT_EQ(s1.completions[0], Change(0, 2, 0, Weight(3, 2)));

  // Step 2: c1 invokes read_changes(s1) and computes the weight 2.5.
  env.send(client_id(0), kOracleId, std::make_shared<OracleReadReq>(1, 0));
  env.run_to_quiescence();
  ASSERT_TRUE(c1.reads.count(1));
  const ChangeSet& cs1 = c1.reads[1];
  // Validity-II: contains the initial change AND the new one.
  EXPECT_TRUE(cs1.contains(ChangeId{0, kInitialChangeCounter, 0}));
  EXPECT_TRUE(cs1.contains(ChangeId{0, 2, 0}));
  EXPECT_EQ(cs1.weight_of(0), Weight(5, 2));

  // Step 3: s3 invokes reassign(s2, -0.5) with local counter 2.
  // Granting it would make W_{S} = 5 with the top server at 2.5 — not
  // strictly below half — so Integrity forces a null change.
  env.send(2, kOracleId,
           std::make_shared<OracleReassignReq>(2, 1, Weight(-1, 2)));
  env.run_to_quiescence();
  ASSERT_EQ(s3.completions.size(), 1u);
  EXPECT_TRUE(s3.completions[0].is_null());
  EXPECT_EQ(s3.completions[0].issuer(), 2u);
  EXPECT_EQ(s3.completions[0].target(), 1u);

  // Step 4: c2 invokes read_changes(s2): the null change is visible and
  // the weight of s2 is unchanged.
  env.send(client_id(1), kOracleId, std::make_shared<OracleReadReq>(1, 1));
  env.run_to_quiescence();
  ASSERT_TRUE(c2.reads.count(1));
  const ChangeSet& cs2 = c2.reads[1];
  EXPECT_TRUE(cs2.contains(ChangeId{2, 2, 1}));
  EXPECT_EQ(cs2.find(ChangeId{2, 2, 1})->delta, Weight(0));
  EXPECT_EQ(cs2.weight_of(1), Weight(1));

  // System-wide: exactly one effective reassignment happened.
  EXPECT_EQ(oracle.effective_count(), 1u);
}

TEST(Example1, IntegrityBoundaryIsExact) {
  // The example's arithmetic, verified symbolically: after +1.5 to s1,
  // granting -0.5 to s2 yields total 5 and max weight 5/2 — Integrity
  // requires max < total/2, and 5/2 < 5/2 is false. Exact rationals make
  // this a crisp equality, not a floating-point coin flip.
  WeightMap wm = WeightMap::uniform(4);
  wm.set(0, Weight(5, 2));
  wm.set(1, Weight(1, 2));
  Wmqs q(wm);
  EXPECT_EQ(q.total(), Weight(5));
  EXPECT_FALSE(q.is_available(1));
  // And the state BEFORE the second reassignment is fine:
  WeightMap before = WeightMap::uniform(4);
  before.set(0, Weight(5, 2));
  EXPECT_TRUE(Wmqs(before).is_available(1));
}

}  // namespace
}  // namespace wrs
