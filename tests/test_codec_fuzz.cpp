// Seeded fuzz of the socket wire codec (src/net/wire_codec.h).
//
//  * Round trip: random instances of EVERY wire message type must
//    survive serialize -> deserialize -> serialize byte-identically.
//  * Truncation: every strict prefix of a valid frame body is rejected.
//  * Corruption: seeded random byte flips either decode to a
//    re-encodable message or are rejected — never a crash (run under
//    ASan/UBSan in CI).
//  * Lifetime: decoded messages own all their state — nothing aliases
//    the receive buffer, and encoded frames never alias sender-owned
//    message state (the in-process runtimes share messages as MsgPtr;
//    the wire boundary must deep-copy). The scribble/free pattern below
//    turns any aliasing into an ASan report or a byte mismatch.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "broadcast/reliable_broadcast.h"
#include "common/rng.h"
#include "core/reassign_messages.h"
#include "monitor/adaptive_node.h"
#include "net/wire_codec.h"
#include "storage/abd_messages.h"
#include "storage/migration_messages.h"
#include "storage/snapshot_messages.h"

namespace wrs::net {
namespace {

// --- seeded generators ------------------------------------------------------

std::string rand_string(Rng& rng, std::size_t max_len = 24) {
  std::size_t n = rng.below(max_len + 1);
  std::string s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>('!' + rng.below(94)));
  }
  return s;
}

Weight rand_weight(Rng& rng) {
  auto num = static_cast<std::int64_t>(rng.below(41)) - 20;
  auto den = static_cast<std::int64_t>(1 + rng.below(9));
  return Weight(num, den);
}

Tag rand_tag(Rng& rng) {
  return Tag{static_cast<std::int64_t>(rng.below(1'000'000)),
             static_cast<ProcessId>(rng.below(kClientIdBase + 64))};
}

TaggedValue rand_tagged_value(Rng& rng) {
  return TaggedValue{rand_tag(rng), rand_string(rng, 48)};
}

ChangeSet rand_change_set(Rng& rng) {
  ChangeSet cs;
  std::size_t n = rng.below(5);
  for (std::size_t i = 0; i < n; ++i) {
    // Unique counters so ids never collide within the set.
    cs.add(Change(static_cast<ProcessId>(rng.below(8)),
                  kFirstCounter + i,
                  static_cast<ProcessId>(rng.below(8)), rand_weight(rng)));
  }
  return cs;
}

ChangeSetPtr rand_changes_ptr(Rng& rng) {
  if (rng.below(3) == 0) return nullptr;
  return std::make_shared<const ChangeSet>(rand_change_set(rng));
}

MsgPtr rand_read_req(Rng& rng) {
  return std::make_shared<ReadReq>(rng(), rand_string(rng),
                                   static_cast<std::uint32_t>(rng.below(100)),
                                   static_cast<ShardId>(rng.below(4)));
}

MsgPtr rand_write_req(Rng& rng) {
  return std::make_shared<WriteReq>(rng(), rand_tagged_value(rng),
                                    rand_string(rng),
                                    static_cast<std::uint32_t>(rng.below(100)),
                                    static_cast<ShardId>(rng.below(4)));
}

MsgPtr rand_keys_req(Rng& rng) {
  return std::make_shared<KeysReq>(rng(),
                                   static_cast<std::uint32_t>(rng.below(100)),
                                   static_cast<ShardId>(rng.below(4)));
}

MsgPtr rand_read_ack(Rng& rng) {
  return std::make_shared<ReadAck>(rng(), rand_tagged_value(rng),
                                   rand_changes_ptr(rng),
                                   static_cast<std::uint32_t>(rng.below(100)));
}

MsgPtr rand_write_ack(Rng& rng) {
  return std::make_shared<WriteAck>(rng(), rand_changes_ptr(rng),
                                    static_cast<std::uint32_t>(rng.below(100)));
}

MsgPtr rand_keys_ack(Rng& rng) {
  std::vector<RegisterKey> keys;
  std::size_t n = rng.below(6);
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back(rand_string(rng));
  return std::make_shared<KeysAck>(rng(), std::move(keys),
                                   rand_changes_ptr(rng),
                                   static_cast<std::uint32_t>(rng.below(100)));
}

MsgPtr rand_batch_request(Rng& rng) {
  std::vector<MsgPtr> frames;
  std::size_t n = 1 + rng.below(4);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.below(3)) {
      case 0: frames.push_back(rand_read_req(rng)); break;
      case 1: frames.push_back(rand_write_req(rng)); break;
      default: frames.push_back(rand_keys_req(rng)); break;
    }
  }
  return std::make_shared<BatchRequest>(static_cast<ShardId>(rng.below(4)),
                                        std::move(frames));
}

MsgPtr rand_batch_reply(Rng& rng) {
  std::vector<MsgPtr> frames;
  std::size_t n = 1 + rng.below(4);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.below(3)) {
      case 0: frames.push_back(rand_read_ack(rng)); break;
      case 1: frames.push_back(rand_write_ack(rng)); break;
      default: frames.push_back(rand_keys_ack(rng)); break;
    }
  }
  return std::make_shared<BatchReply>(std::move(frames));
}

MsgPtr rand_transfer(Rng& rng) {
  Weight delta = rand_weight(rng);
  std::uint64_t counter = kFirstCounter + rng.below(50);
  auto issuer = static_cast<ProcessId>(rng.below(8));
  return std::make_shared<TransferMsg>(
      Change(issuer, counter, static_cast<ProcessId>(rng.below(8)), -delta),
      Change(issuer, counter, static_cast<ProcessId>(rng.below(8)), delta),
      static_cast<ShardId>(rng.below(4)));
}

MsgPtr rand_rb(Rng& rng) {
  return std::make_shared<RbMsg>(static_cast<ProcessId>(rng.below(8)), rng(),
                                 rand_transfer(rng));
}

MsgPtr rand_sync(Rng& rng) {
  std::optional<std::uint64_t> pending;
  if (rng.below(2) == 0) pending = rng();
  return std::make_shared<SyncMsg>(rand_change_set(rng), pending,
                                   static_cast<ShardId>(rng.below(4)));
}

MsgPtr rand_mig_freeze(Rng& rng) {
  return std::make_shared<MigFreeze>(rng(), rand_string(rng), rng(),
                                     static_cast<ShardId>(rng.below(4)),
                                     static_cast<std::uint32_t>(rng.below(100)),
                                     static_cast<ShardId>(rng.below(4)));
}

MsgPtr rand_mig_commit(Rng& rng) {
  std::optional<TaggedValue> install;
  if (rng.below(2) == 0) install = rand_tagged_value(rng);
  return std::make_shared<MigCommit>(rng(), rand_string(rng),
                                     static_cast<ShardId>(rng.below(4)), rng(),
                                     std::move(install),
                                     static_cast<std::uint32_t>(rng.below(100)),
                                     static_cast<ShardId>(rng.below(4)));
}

MsgPtr rand_wrong_shard(Rng& rng) {
  return std::make_shared<WrongShardAck>(
      rng(), rand_string(rng), static_cast<ShardId>(rng.below(4)), rng(),
      static_cast<std::uint32_t>(rng.below(100)));
}

std::vector<RegisterKey> rand_key_list(Rng& rng) {
  std::vector<RegisterKey> keys;
  std::size_t n = rng.below(6);
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back(rand_string(rng));
  return keys;
}

SnapEntry rand_snap_entry(Rng& rng) {
  SnapEntry e;
  e.key = rand_string(rng);
  e.reg = rand_tagged_value(rng);
  e.flag = static_cast<std::uint8_t>(rng.below(3));
  e.owner = static_cast<ShardId>(rng.below(4));
  e.epoch = rng();
  return e;
}

std::vector<SnapEntry> rand_snap_entries(Rng& rng) {
  std::vector<SnapEntry> entries;
  std::size_t n = rng.below(5);
  entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) entries.push_back(rand_snap_entry(rng));
  return entries;
}

MsgPtr rand_snap_req(Rng& rng) {
  return std::make_shared<SnapReq>(rng(), rand_key_list(rng),
                                   static_cast<std::uint32_t>(rng.below(100)),
                                   static_cast<ShardId>(rng.below(4)));
}

MsgPtr rand_snap_ack(Rng& rng) {
  return std::make_shared<SnapAck>(rng(), rand_snap_entries(rng),
                                   rand_changes_ptr(rng),
                                   static_cast<std::uint32_t>(rng.below(100)),
                                   rng.below(2) == 0);
}

MsgPtr rand_snap_freeze(Rng& rng) {
  return std::make_shared<SnapFreeze>(rng(), rng(), rand_key_list(rng),
                                      static_cast<std::uint32_t>(rng.below(100)),
                                      static_cast<ShardId>(rng.below(4)));
}

MsgPtr rand_snap_release(Rng& rng) {
  return std::make_shared<SnapRelease>(
      rng(), rng(), rand_snap_entries(rng),
      static_cast<std::uint32_t>(rng.below(100)),
      static_cast<ShardId>(rng.below(4)));
}

MsgPtr rand_rtt_report(Rng& rng) {
  std::map<ProcessId, double> rtts;
  std::size_t n = rng.below(6);
  for (std::size_t i = 0; i < n; ++i) {
    rtts[static_cast<ProcessId>(rng.below(16))] = rng.uniform(0.0, 50.0);
  }
  return std::make_shared<RttReportMsg>(std::move(rtts));
}

using Maker = std::function<MsgPtr(Rng&)>;

const std::vector<std::pair<const char*, Maker>>& all_makers() {
  static const std::vector<std::pair<const char*, Maker>> makers = {
      {"ReadReq", rand_read_req},
      {"ReadAck", rand_read_ack},
      {"WriteReq", rand_write_req},
      {"WriteAck", rand_write_ack},
      {"KeysReq", rand_keys_req},
      {"KeysAck", rand_keys_ack},
      {"BatchRequest", rand_batch_request},
      {"BatchReply", rand_batch_reply},
      {"RcReq",
       [](Rng& rng) -> MsgPtr {
         return std::make_shared<RcReq>(rng(),
                                        static_cast<ProcessId>(rng.below(8)),
                                        static_cast<ShardId>(rng.below(4)));
       }},
      {"RcAck",
       [](Rng& rng) -> MsgPtr {
         return std::make_shared<RcAck>(rng(), rand_change_set(rng));
       }},
      {"WcReq",
       [](Rng& rng) -> MsgPtr {
         return std::make_shared<WcReq>(rng(), rand_change_set(rng),
                                        static_cast<ShardId>(rng.below(4)));
       }},
      {"WcAck", [](Rng& rng) -> MsgPtr { return std::make_shared<WcAck>(rng()); }},
      {"Transfer", rand_transfer},
      {"TAck",
       [](Rng& rng) -> MsgPtr {
         return std::make_shared<TAck>(rng(),
                                       static_cast<ShardId>(rng.below(4)));
       }},
      {"Sync", rand_sync},
      {"Rb", rand_rb},
      {"Ping",
       [](Rng& rng) -> MsgPtr {
         return std::make_shared<PingMsg>(
             static_cast<TimeNs>(rng.below(1'000'000'000)));
       }},
      {"Pong",
       [](Rng& rng) -> MsgPtr {
         return std::make_shared<PongMsg>(
             static_cast<TimeNs>(rng.below(1'000'000'000)));
       }},
      {"RttReport", rand_rtt_report},
      {"MigFreeze", rand_mig_freeze},
      {"MigCommit", rand_mig_commit},
      {"WrongShard", rand_wrong_shard},
      {"SnapReq", rand_snap_req},
      {"SnapAck", rand_snap_ack},
      {"SnapFreeze", rand_snap_freeze},
      {"SnapRelease", rand_snap_release},
  };
  return makers;
}

ProcessId rand_pid(Rng& rng) {
  return rng.below(2) ? static_cast<ProcessId>(rng.below(64))
                      : client_id(static_cast<std::uint32_t>(rng.below(8)));
}

// --- round trip -------------------------------------------------------------

TEST(CodecFuzz, RoundTripByteIdenticalEveryType) {
  Rng rng(0xC0DEC);
  for (const auto& [name, make] : all_makers()) {
    for (int i = 0; i < 200; ++i) {
      MsgPtr msg = make(rng);
      ProcessId from = rand_pid(rng);
      ProcessId to = rand_pid(rng);
      std::vector<std::uint8_t> bytes = WireCodec::encode_frame(from, to, *msg);
      ASSERT_GT(bytes.size(), 4u) << name;
      auto decoded = WireCodec::decode_frame(bytes.data() + 4, bytes.size() - 4);
      ASSERT_TRUE(decoded.has_value()) << name << " iteration " << i;
      EXPECT_EQ(decoded->from, from) << name;
      EXPECT_EQ(decoded->to, to) << name;
      ASSERT_NE(decoded->msg, nullptr) << name;
      // The decoded message is a fresh object of the same concrete type
      // whose re-encoding is byte-identical.
      EXPECT_EQ(decoded->msg->type_name(), msg->type_name()) << name;
      std::vector<std::uint8_t> again =
          WireCodec::encode_frame(decoded->from, decoded->to, *decoded->msg);
      EXPECT_EQ(bytes, again) << name << " iteration " << i
                              << ": re-encode not byte-identical";
    }
  }
}

TEST(CodecFuzz, ArenaEncodeByteIdenticalToLegacyEveryType) {
  // encode_frame_arena is the hot-path encoder (SocketEnv writes arena
  // segments straight to the wire); it must produce exactly the bytes
  // of the vector-returning encode_frame for every type — including
  // when frames straddle a chunk boundary, which the shared arena below
  // eventually forces.
  Rng rng(0xA7E4A);
  net::EncodeArena arena;
  std::vector<net::Segment> held;  // pin chunks so offsets keep advancing
  for (const auto& [name, make] : all_makers()) {
    for (int i = 0; i < 100; ++i) {
      MsgPtr msg = make(rng);
      ProcessId from = rand_pid(rng);
      ProcessId to = rand_pid(rng);
      std::vector<std::uint8_t> legacy =
          WireCodec::encode_frame(from, to, *msg);
      net::Segment seg =
          WireCodec::encode_frame_arena(arena, from, to, *msg);
      ASSERT_EQ(seg.size(), legacy.size()) << name << " iteration " << i;
      EXPECT_EQ(std::memcmp(seg.data(), legacy.data(), legacy.size()), 0)
          << name << " iteration " << i << ": arena encode differs";
      if (rng.below(4) == 0) held.push_back(std::move(seg));
      if (held.size() > 64) held.clear();
    }
  }
}

TEST(CodecFuzz, ArenaSegmentsSurviveArenaReuse) {
  // A retained segment (a queued write) stays valid while the arena
  // moves on to fresh chunks; copies share the refcount.
  net::EncodeArena arena;
  Rng rng(0x5E6);
  MsgPtr msg = all_makers()[0].second(rng);
  net::Segment first = WireCodec::encode_frame_arena(arena, 1, 2, *msg);
  std::vector<std::uint8_t> pinned(first.data(), first.data() + first.size());
  // Churn the arena well past one chunk.
  for (int i = 0; i < 50'000; ++i) {
    net::Segment s = WireCodec::encode_frame_arena(arena, 1, 2, *msg);
    (void)s;
  }
  net::Segment copy(first);
  EXPECT_EQ(copy.size(), first.size());
  EXPECT_EQ(std::memcmp(first.data(), pinned.data(), pinned.size()), 0);
  EXPECT_EQ(std::memcmp(copy.data(), pinned.data(), pinned.size()), 0);
}

TEST(CodecFuzz, WireTypeTagsAreStable) {
  // The on-the-wire tags are a protocol contract — pin EVERY value so a
  // refactor reordering the enum (a silent wire break between versions
  // of wrs-node) fails loudly here. The enum is append-only; these pins
  // mirror the static_asserts in net/wire_format.h.
  EXPECT_EQ(WireCodec::wire_type_of(ReadReq(1)), WireType::kReadReq);
  EXPECT_EQ(static_cast<int>(WireType::kReadReq), 1);
  EXPECT_EQ(static_cast<int>(WireType::kReadAck), 2);
  EXPECT_EQ(static_cast<int>(WireType::kWriteReq), 3);
  EXPECT_EQ(static_cast<int>(WireType::kWriteAck), 4);
  EXPECT_EQ(static_cast<int>(WireType::kKeysReq), 5);
  EXPECT_EQ(static_cast<int>(WireType::kKeysAck), 6);
  EXPECT_EQ(static_cast<int>(WireType::kBatchRequest), 7);
  EXPECT_EQ(static_cast<int>(WireType::kBatchReply), 8);
  EXPECT_EQ(static_cast<int>(WireType::kRcReq), 9);
  EXPECT_EQ(static_cast<int>(WireType::kRcAck), 10);
  EXPECT_EQ(static_cast<int>(WireType::kWcReq), 11);
  EXPECT_EQ(static_cast<int>(WireType::kWcAck), 12);
  EXPECT_EQ(static_cast<int>(WireType::kTransfer), 13);
  EXPECT_EQ(static_cast<int>(WireType::kTAck), 14);
  EXPECT_EQ(static_cast<int>(WireType::kSync), 15);
  EXPECT_EQ(static_cast<int>(WireType::kRb), 16);
  EXPECT_EQ(static_cast<int>(WireType::kPing), 17);
  EXPECT_EQ(static_cast<int>(WireType::kPong), 18);
  EXPECT_EQ(static_cast<int>(WireType::kRttReport), 19);
  EXPECT_EQ(static_cast<int>(WireType::kMigFreeze), 20);
  EXPECT_EQ(static_cast<int>(WireType::kMigCommit), 21);
  EXPECT_EQ(static_cast<int>(WireType::kWrongShard), 22);
  EXPECT_EQ(static_cast<int>(WireType::kSnapReq), 23);
  EXPECT_EQ(static_cast<int>(WireType::kSnapAck), 24);
  EXPECT_EQ(static_cast<int>(WireType::kSnapFreeze), 25);
  EXPECT_EQ(static_cast<int>(WireType::kSnapRelease), 26);
  EXPECT_TRUE(WireCodec::encodable(ReadReq(1)));
  EXPECT_EQ(WireCodec::wire_type_of(MigFreeze(1, "k", 1, 0)),
            WireType::kMigFreeze);
  EXPECT_EQ(WireCodec::wire_type_of(MigCommit(1, "k", 0, 1)),
            WireType::kMigCommit);
  EXPECT_EQ(WireCodec::wire_type_of(WrongShardAck(1, "k", 0, 1)),
            WireType::kWrongShard);
  EXPECT_EQ(WireCodec::wire_type_of(SnapReq(1, {"k"})), WireType::kSnapReq);
  EXPECT_EQ(WireCodec::wire_type_of(SnapAck(1, {}, nullptr)),
            WireType::kSnapAck);
  EXPECT_EQ(WireCodec::wire_type_of(SnapFreeze(1, 2, {"k"})),
            WireType::kSnapFreeze);
  EXPECT_EQ(WireCodec::wire_type_of(SnapRelease(1, 2, {})),
            WireType::kSnapRelease);
}

// --- malformed input --------------------------------------------------------

TEST(CodecFuzz, EveryStrictPrefixRejected) {
  Rng gen(0x7121);
  for (const auto& [name, make] : all_makers()) {
    for (int i = 0; i < 10; ++i) {
      MsgPtr msg = make(gen);
      std::vector<std::uint8_t> bytes =
          WireCodec::encode_frame(3, client_id(1), *msg);
      const std::uint8_t* body = bytes.data() + 4;
      std::size_t body_len = bytes.size() - 4;
      for (std::size_t cut = 0; cut < body_len; ++cut) {
        auto decoded = WireCodec::decode_frame(body, cut);
        EXPECT_FALSE(decoded.has_value())
            << name << ": prefix of " << cut << "/" << body_len
            << " bytes decoded";
      }
    }
  }
}

TEST(CodecFuzz, SeededByteFlipsNeverCrash) {
  Rng rng(0xF1195);
  std::size_t malformed = 0;
  std::size_t survived = 0;
  for (const auto& [name, make] : all_makers()) {
    for (int i = 0; i < 100; ++i) {
      MsgPtr msg = make(rng);
      std::vector<std::uint8_t> bytes =
          WireCodec::encode_frame(1, client_id(0), *msg);
      std::size_t flips = 1 + rng.below(3);
      for (std::size_t k = 0; k < flips; ++k) {
        std::size_t at = 4 + rng.below(bytes.size() - 4);
        bytes[at] ^= static_cast<std::uint8_t>(1u << rng.below(8));
      }
      auto decoded = WireCodec::decode_frame(bytes.data() + 4, bytes.size() - 4);
      if (!decoded) {
        ++malformed;  // rejected, counted — the required behavior
      } else {
        ++survived;  // flip hit a don't-care bit or produced another
                     // valid message; it must still be re-encodable
        EXPECT_NO_THROW({
          auto again = WireCodec::encode_frame(decoded->from, decoded->to,
                                               *decoded->msg);
          EXPECT_FALSE(again.empty());
        }) << name;
      }
    }
  }
  // Sanity: the corpus actually exercised the rejection path.
  EXPECT_GT(malformed, 0u);
  EXPECT_GT(malformed + survived, 0u);
}

TEST(CodecFuzz, VersionAndTagRejection) {
  std::vector<std::uint8_t> bytes =
      WireCodec::encode_frame(0, client_id(0), ReadReq(7, "k", 1, 0));
  // Wrong version byte.
  auto bad_version = bytes;
  bad_version[4] = kWireVersion + 1;
  EXPECT_FALSE(
      WireCodec::decode_frame(bad_version.data() + 4, bad_version.size() - 4));
  // Unknown type tag.
  auto bad_tag = bytes;
  bad_tag[5] = 0xEE;
  EXPECT_FALSE(WireCodec::decode_frame(bad_tag.data() + 4, bad_tag.size() - 4));
  // Trailing garbage after a complete payload.
  auto trailing = bytes;
  trailing.push_back(0x00);
  EXPECT_FALSE(
      WireCodec::decode_frame(trailing.data() + 4, trailing.size() - 4));
  // Empty body.
  EXPECT_FALSE(WireCodec::decode_frame(bytes.data() + 4, 0));
}

TEST(CodecFuzz, AbsurdContainerCountRejectedWithoutAllocating) {
  // Hand-craft a KeysAck whose key count claims 2^32-1 entries in a
  // 30-byte frame: the decoder must reject it before reserving anything.
  std::vector<std::uint8_t> body;
  auto le32 = [&body](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) body.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  body.push_back(kWireVersion);
  body.push_back(static_cast<std::uint8_t>(WireType::kKeysAck));
  le32(0);                     // from
  le32(client_id(0));          // to
  for (int i = 0; i < 8; ++i) body.push_back(0);  // op_id
  le32(1);                     // seq
  le32(0xFFFFFFFFu);           // key count — absurd
  EXPECT_FALSE(WireCodec::decode_frame(body.data(), body.size()));
}

TEST(CodecFuzz, OverDeepNestingRejectedBothDirections) {
  // Encoding: an RbMsg chain deeper than kMaxNestingDepth throws.
  MsgPtr msg = std::make_shared<PingMsg>(1);
  for (int i = 0; i < kMaxNestingDepth + 1; ++i) {
    msg = std::make_shared<RbMsg>(0, i, msg);
  }
  EXPECT_THROW(WireCodec::encode_frame(0, 1, *msg), std::invalid_argument);

  // Decoding: hand-crafted bytes nesting RbMsg past the cap are
  // malformed, not a stack overflow.
  std::vector<std::uint8_t> inner;  // PingMsg body
  for (int i = 0; i < 8; ++i) inner.push_back(0);
  std::uint8_t inner_tag = static_cast<std::uint8_t>(WireType::kPing);
  for (int level = 0; level < kMaxNestingDepth + 1; ++level) {
    std::vector<std::uint8_t> rb;  // RbMsg body: origin, seq, nested msg
    auto le32 = [&rb](std::uint32_t v) {
      for (int i = 0; i < 4; ++i) rb.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    le32(0);                                  // origin
    for (int i = 0; i < 8; ++i) rb.push_back(0);  // seq
    rb.push_back(inner_tag);                  // nested tag
    le32(static_cast<std::uint32_t>(inner.size()));
    rb.insert(rb.end(), inner.begin(), inner.end());
    inner = std::move(rb);
    inner_tag = static_cast<std::uint8_t>(WireType::kRb);
  }
  std::vector<std::uint8_t> body;
  auto le32 = [&body](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) body.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  body.push_back(kWireVersion);
  body.push_back(inner_tag);
  le32(0);  // from
  le32(1);  // to
  body.insert(body.end(), inner.begin(), inner.end());
  EXPECT_FALSE(WireCodec::decode_frame(body.data(), body.size()));
}

// --- lifetime: copy, never alias -------------------------------------------

TEST(CodecFuzz, EncodedFrameOutlivesSenderOwnedMessage) {
  // The in-process runtimes share messages as MsgPtr; on the wire the
  // frame must be self-contained. Encode, destroy the message (and the
  // shared change set it referenced), then decode from the frame alone.
  std::vector<std::uint8_t> bytes;
  {
    auto changes = std::make_shared<const ChangeSet>([] {
      ChangeSet cs;
      cs.add(Change(0, kFirstCounter, 1, Weight(1, 3)));
      cs.add(Change(2, kFirstCounter, 0, Weight(-1, 3)));
      return cs;
    }());
    auto ack = std::make_shared<ReadAck>(
        42, TaggedValue{Tag{7, client_id(1)}, "sender-owned-value"}, changes, 3);
    std::vector<MsgPtr> frames{ack, std::make_shared<WriteAck>(43, changes, 4)};
    BatchReply reply(std::move(frames));
    bytes = WireCodec::encode_frame(2, client_id(1), reply);
  }  // message, frames, and the shared ChangeSet are gone
  auto decoded = WireCodec::decode_frame(bytes.data() + 4, bytes.size() - 4);
  ASSERT_TRUE(decoded.has_value());
  const auto* reply = msg_cast<BatchReply>(*decoded->msg);
  ASSERT_NE(reply, nullptr);
  ASSERT_EQ(reply->frames().size(), 2u);
  const auto* ack = msg_cast<ReadAck>(*reply->frames()[0]);
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(ack->reg().value, "sender-owned-value");
  ASSERT_NE(ack->changes(), nullptr);
  EXPECT_EQ(ack->changes()->size(), 2u);
}

TEST(CodecFuzz, DecodedMessageNeverAliasesReceiveBuffer) {
  Rng rng(0xA11A5);
  for (const auto& [name, make] : all_makers()) {
    MsgPtr msg = make(rng);
    std::vector<std::uint8_t> bytes =
        WireCodec::encode_frame(1, client_id(2), *msg);
    const std::vector<std::uint8_t> pristine = bytes;

    auto decoded = WireCodec::decode_frame(bytes.data() + 4, bytes.size() - 4);
    ASSERT_TRUE(decoded.has_value()) << name;

    // Scribble over the receive buffer, then FREE it. Any decoded field
    // aliasing it now reads 0xAA garbage (byte mismatch below) or freed
    // memory (ASan report — this test runs in the asan-ubsan CI job).
    std::fill(bytes.begin(), bytes.end(), 0xAA);
    std::vector<std::uint8_t>().swap(bytes);

    std::vector<std::uint8_t> again =
        WireCodec::encode_frame(decoded->from, decoded->to, *decoded->msg);
    EXPECT_EQ(again, pristine) << name << ": decoded message aliased buffer";
  }
}

}  // namespace
}  // namespace wrs::net
