// wrs-node — one OS process hosting one replica group (shard) of the
// weighted-quorum store, serving clients over TCP or Unix sockets.
//
//   wrs-node --shard=0 --num-shards=2 --servers=3 --faults=1 \
//            --listen=tcp:127.0.0.1:7000 [--service-time-us=100] \
//            [--retry-ms=10] [--anti-entropy-ms=25] [--seed=1] \
//            [--ready-fd=N] [--config=node.json]
//
// After the listener is bound the process prints its actual address
// ("tcp:127.0.0.1:7000", with port 0 resolved to the ephemeral choice)
// on stdout — or to --ready-fd when given — then serves until SIGTERM
// or SIGINT. --config takes a flat JSON object with the same keys
// ({"shard": 0, "listen": "tcp:..."}); explicit flags win.
#ifdef __linux__

#include <signal.h>

#include <atomic>
#include <cstdio>
#include <exception>

#include "deploy/node_runner.h"

namespace {

std::atomic<bool> g_stop{false};

void stop_handler(int) { g_stop.store(true, std::memory_order_release); }

}  // namespace

int main(int argc, char** argv) {
  struct sigaction sa{};
  sa.sa_handler = stop_handler;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  try {
    wrs::deploy::NodeOptions opts = wrs::deploy::parse_node_flags(argc, argv);
    return wrs::deploy::run_node(opts, &g_stop);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}

#else  // !__linux__

#include <cstdio>

int main() {
  std::fprintf(stderr, "wrs-node: the socket runtime requires Linux\n");
  return 2;
}

#endif
