// Example: geo-replicated adaptive storage (the paper's motivating
// scenario, Section I).
//
// Five servers spread over five cloud regions serve a client in
// Virginia. The deployment starts with uniform weights (plain majority
// quorums) and the monitoring loop reassigns voting power toward the
// regions close to the quorum's critical path. Watch the client's read
// latency drop as the system converges — no operator, no consensus, no
// reconfiguration.
//
// Run: ./build/examples/geo_adaptive_storage
#include <iostream>

#include "api/cluster.h"

using namespace wrs;

int main() {
  WanProfile profile = wan5_profile();
  std::cout << "regions: ";
  for (const auto& s : profile.sites) std::cout << s << " ";
  std::cout << "\nclient region: " << profile.sites[0] << "\n\n";

  AdaptiveParams params;
  params.probe_interval = ms(250);
  params.eval_interval = ms(500);
  params.step = Weight(1, 10);
  params.slow_factor = 1.25;

  Cluster cluster = Cluster::builder()
                        .servers(5)
                        .faults(1)
                        .wan(profile, /*client_site=*/0)
                        .seed(2718)
                        .adaptive(params)
                        .build();
  ClientHandle client = cluster.client();

  // Closed loop of reads, one every ~100ms of deployment time; print a
  // latency sample every 10 seconds alongside the evolving weight map.
  Histogram window;
  for (int epoch = 1; epoch <= 6; ++epoch) {
    while (cluster.now() < seconds(10) * epoch) {
      TimeNs start = cluster.now();
      client.read().get();
      window.add_time(cluster.now() - start);
      cluster.run_for(ms(100));
    }
    WeightMap weights = cluster.server(0).weights_snapshot().get();
    Wmqs q(weights);
    std::cout << "t=" << 10 * epoch << "s  read p50 "
              << Table::fmt(to_ms(window.percentile(50))) << " ms"
              << "  | min quorum " << q.min_quorum_size() << "  | weights "
              << weights.str() << "\n";
    window.clear();
  }

  std::cout << "\nThe heavy weights migrate to the regions with the best "
               "connectivity; the minimum quorum shrinks and the client "
               "stops waiting for the far side of the planet.\n";
  return 0;
}
