// Example: geo-replicated adaptive storage (the paper's motivating
// scenario, Section I).
//
// Five servers spread over five cloud regions serve a client in
// Virginia. The deployment starts with uniform weights (plain majority
// quorums) and the monitoring loop reassigns voting power toward the
// regions close to the quorum's critical path. Watch the client's read
// latency drop as the system converges — no operator, no consensus, no
// reconfiguration.
//
// Run: ./build/examples/geo_adaptive_storage
#include <iostream>

#include "monitor/adaptive_node.h"
#include "runtime/sim_env.h"
#include "workload/wan_profiles.h"
#include "workload/workload.h"

using namespace wrs;

int main() {
  WanProfile profile = wan5_profile();
  std::cout << "regions: ";
  for (const auto& s : profile.sites) std::cout << s << " ";
  std::cout << "\nclient region: " << profile.sites[0] << "\n\n";

  SystemConfig cfg = SystemConfig::uniform(/*n=*/5, /*f=*/1);
  auto latency = std::make_shared<SiteMatrixLatency>(
      profile.rtt_ms, site_mapper(profile.sites.size(), /*client_site=*/0));
  SimEnv env(latency, /*seed=*/2718);

  AdaptiveParams params;
  params.probe_interval = ms(250);
  params.eval_interval = ms(500);
  params.step = Weight(1, 10);
  params.slow_factor = 1.25;

  std::vector<std::unique_ptr<AdaptiveNode>> servers;
  for (ProcessId s : cfg.servers()) {
    servers.push_back(std::make_unique<AdaptiveNode>(env, s, cfg, params));
    env.register_process(s, servers.back().get());
  }
  StorageClient client(env, client_id(0), cfg, AbdClient::Mode::kDynamic);
  env.register_process(client.id(), &client);
  env.start();

  // Closed loop of reads; print a latency sample every 10 seconds of
  // simulated time alongside the evolving weight map.
  Histogram window;
  auto loop = std::make_shared<std::function<void()>>();
  *loop = [&, loop] {
    TimeNs start = env.now();
    client.abd().read([&, loop, start](const TaggedValue&) {
      window.add_time(env.now() - start);
      env.schedule(client.id(), ms(100), [loop] { (*loop)(); });
    });
  };
  env.schedule(client.id(), 0, [loop] { (*loop)(); });

  for (int epoch = 1; epoch <= 6; ++epoch) {
    env.run_until(seconds(10) * epoch);
    WeightMap weights =
        servers[0]->reassign().changes().to_weight_map(cfg.servers());
    Wmqs q(weights);
    std::cout << "t=" << 10 * epoch << "s  read p50 "
              << Table::fmt(to_ms(window.percentile(50))) << " ms"
              << "  | min quorum " << q.min_quorum_size()
              << "  | weights " << weights.str() << "\n";
    window.clear();
  }

  std::cout << "\nThe heavy weights migrate to the regions with the best "
               "connectivity; the minimum quorum shrinks and the client "
               "stops waiting for the far side of the planet.\n";
  return 0;
}
