// Quickstart: a 4-server dynamic-weighted atomic register in ~60 lines.
//
//   1. deploy four DynamicStorageNodes (reassignment + weighted ABD) on
//      the deterministic simulator;
//   2. write and read a value through a client;
//   3. transfer voting weight from s3 to s0 with Algorithm 4;
//   4. observe the new weights and the shrunken quorum.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <iostream>

#include "runtime/sim_env.h"
#include "storage/dynamic_node.h"

using namespace wrs;

int main() {
  // A 4-server system tolerating f=1 crash, uniform initial weights.
  // The RP-Integrity floor is W_{S,0}/(2(n-f)) = 4/6 = 2/3.
  SystemConfig cfg = SystemConfig::uniform(/*n=*/4, /*f=*/1);
  SimEnv env(std::make_shared<UniformLatency>(ms(1), ms(10)), /*seed=*/7);

  std::vector<std::unique_ptr<DynamicStorageNode>> servers;
  for (ProcessId s : cfg.servers()) {
    servers.push_back(std::make_unique<DynamicStorageNode>(env, s, cfg));
    env.register_process(s, servers.back().get());
  }
  StorageClient client(env, client_id(0), cfg, AbdClient::Mode::kDynamic);
  env.register_process(client.id(), &client);
  env.start();

  // --- write, then read back ------------------------------------------------
  bool wrote = false;
  client.abd().write("hello, weighted quorums",
                     [&](const Tag& tag) {
                       std::cout << "wrote with tag " << tag.str() << "\n";
                       wrote = true;
                     });
  env.run_until_pred([&] { return wrote; }, seconds(10));

  bool read_done = false;
  client.abd().read([&](const TaggedValue& tv) {
    std::cout << "read back: \"" << tv.value << "\" (tag " << tv.tag.str()
              << ")\n";
    read_done = true;
  });
  env.run_until_pred([&] { return read_done; }, seconds(10));

  // --- reassign weight (Algorithm 4) ----------------------------------------
  // s3 donates 1/4 of its voting power to s0. The C2 check requires
  // 1 > 1/4 + 2/3, which holds, so the transfer is effective.
  bool transferred = false;
  servers[3]->reassign().transfer(0, Weight(1, 4),
                                  [&](const TransferOutcome& outcome) {
                                    std::cout
                                        << "transfer completed, effective="
                                        << outcome.effective << "\n";
                                    transferred = true;
                                  });
  env.run_until_pred([&] { return transferred; }, seconds(10));
  env.run_to_quiescence();

  // --- inspect the new quorum geometry --------------------------------------
  WeightMap weights =
      servers[1]->reassign().changes().to_weight_map(cfg.servers());
  std::cout << "weights after transfer: " << weights.str() << "\n";
  Wmqs quorums(weights);
  std::cout << "minimum quorum size: " << quorums.min_quorum_size()
            << " (was 3 with uniform weights)\n";
  std::cout << "available with f=1 crash? "
            << (quorums.is_available(cfg.f) ? "yes" : "no") << "\n";

  // A follow-up read still works — clients discover the new weights via
  // the piggybacked change sets and restart onto the new quorum system.
  bool read2 = false;
  client.abd().read([&](const TaggedValue& tv) {
    std::cout << "read after reassignment: \"" << tv.value << "\"\n";
    read2 = true;
  });
  env.run_until_pred([&] { return read2; }, seconds(10));
  return 0;
}
