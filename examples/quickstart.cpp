// Quickstart: a 4-server dynamic-weighted atomic register in ~50 lines.
//
//   1. deploy four dynamic storage nodes (reassignment + weighted ABD)
//      through the wrs::Cluster facade;
//   2. write and read a value through an awaitable client;
//   3. pipeline a batch of writes over distinct keys through ONE client
//      and fan the tags in with when_all;
//   4. transfer voting weight from s3 to s0 with Algorithm 4;
//   5. observe the new weights and the shrunken quorum.
//
// The SAME source runs on the deterministic simulator (default) or the
// thread-per-process runtime: pass "threads" as the first argument.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart [threads]
#include <cstring>
#include <iostream>

#include "api/cluster.h"

using namespace wrs;

int main(int argc, char** argv) {
  Runtime runtime = (argc > 1 && std::strcmp(argv[1], "threads") == 0)
                        ? Runtime::kThread
                        : Runtime::kSim;

  // A 4-server system tolerating f=1 crash, uniform initial weights.
  // The RP-Integrity floor is W_{S,0}/(2(n-f)) = 4/6 = 2/3.
  Cluster cluster = Cluster::builder()
                        .servers(4)
                        .faults(1)
                        .uniform_latency(ms(1), ms(10))
                        .runtime(runtime)
                        .seed(7)
                        .build();
  ClientHandle client = cluster.client();

  // --- write, then read back ------------------------------------------------
  Tag tag = client.write("hello, weighted quorums").get();
  std::cout << "wrote with tag " << tag.str() << "\n";

  TaggedValue tv = client.read().get();
  std::cout << "read back: \"" << tv.value << "\" (tag " << tv.tag.str()
            << ")\n";

  // --- pipeline a batch over distinct keys ----------------------------------
  // One client multiplexes any number of in-flight operations: the whole
  // batch is issued before the first quorum round completes, so the wall
  // clock pays ~one round trip, not one per key.
  std::vector<std::pair<RegisterKey, Value>> puts;
  for (int i = 0; i < 8; ++i) {
    puts.emplace_back("shard" + std::to_string(i), "value" + std::to_string(i));
  }
  std::vector<Tag> tags = when_all(client.write_batch(puts)).get();
  std::cout << "pipelined " << tags.size() << " writes through one client; "
            << "keys stored: " << client.list_keys().get().size() << "\n";

  // --- reassign weight (Algorithm 4) ----------------------------------------
  // s3 donates 1/4 of its voting power to s0. The C2 check requires
  // 1 > 1/4 + 2/3, which holds, so the transfer is effective.
  TransferOutcome outcome = cluster.server(3).transfer(0, Weight(1, 4)).get();
  std::cout << "transfer completed, effective=" << outcome.effective << "\n";
  cluster.quiesce();

  // --- inspect the new quorum geometry --------------------------------------
  WeightMap weights = cluster.server(1).weights_snapshot().get();
  std::cout << "weights after transfer: " << weights.str() << "\n";
  Wmqs quorums(weights);
  std::cout << "minimum quorum size: " << quorums.min_quorum_size()
            << " (was 3 with uniform weights)\n";
  std::cout << "available with f=1 crash? "
            << (quorums.is_available(cluster.config().f) ? "yes" : "no")
            << "\n";

  // A follow-up read still works — clients discover the new weights via
  // the piggybacked change sets and restart onto the new quorum system.
  std::cout << "read after reassignment: \"" << client.read().get().value
            << "\"\n";
  return 0;
}
