// socket_demo — the weighted-quorum store as REAL OS processes.
//
// Forks two wrs-node processes (one per shard, 3 servers each) listening
// on ephemeral loopback TCP ports, then drives an atomicity-checked
// read/write workload against them from two socket clients in this
// process. Every protocol message is WireCodec-serialized and crosses
// the kernel; nothing is shared with the server processes but the wire.
//
//   $ socket_demo
//   shard 0 -> tcp:127.0.0.1:40213 (pid 12345)
//   shard 1 -> tcp:127.0.0.1:40214 (pid 12346)
//   ... workload table ...
//   atomicity: OK
//
// Exit code 0 iff the recorded history passed the atomicity checker.
#ifdef __linux__

#include <cstdio>
#include <memory>
#include <vector>

#include "api/await.h"
#include "common/metrics.h"
#include "deploy/node_runner.h"
#include "net/socket_addr.h"
#include "runtime/socket_env.h"
#include "shard/shard_map.h"
#include "storage/history.h"
#include "workload/workload.h"

using namespace wrs;

int main() {
  constexpr std::uint32_t kShards = 2;
  constexpr std::uint32_t kPerShardN = 3;
  constexpr std::uint32_t kPerShardF = 1;
  constexpr std::uint32_t kClients = 2;
  constexpr std::size_t kOpsPerClient = 200;

  // 1. Fork the server processes FIRST — fork() and threads do not mix,
  //    and our own SocketEnv will start a loop thread.
  std::vector<deploy::SpawnedNode> groups;
  for (std::uint32_t g = 0; g < kShards; ++g) {
    deploy::NodeOptions opts;
    opts.shard = g;
    opts.num_shards = kShards;
    opts.servers_per_shard = kPerShardN;
    opts.faults = kPerShardF;
    opts.retry = ms(20);
    groups.push_back(deploy::spawn_node_group(opts));
    std::printf("shard %u -> %s (pid %d)\n", g, groups.back().addr.c_str(),
                static_cast<int>(groups.back().pid));
  }

  // 2. The client side: one SocketEnv, workload clients routing by key.
  ShardMap map = ShardMap::uniform(kShards, kPerShardN, kPerShardF);
  SocketEnv::Options eo;
  eo.listen = net::SocketAddr::parse("tcp:127.0.0.1:0");
  SocketEnv env(eo);
  for (std::uint32_t g = 0; g < kShards; ++g) {
    for (ProcessId s : map.servers(g)) {
      env.add_route(s, net::SocketAddr::parse(groups[g].addr));
    }
  }

  auto history = std::make_shared<HistoryRecorder>();
  WorkloadParams wp;
  wp.num_ops = kOpsPerClient;
  wp.read_ratio = 0.5;
  wp.think_time = us(200);
  wp.num_keys = 16;
  wp.value_size = 32;
  wp.seed = 42;

  std::vector<std::unique_ptr<WorkloadClient>> clients;
  std::vector<Await<bool>> done;
  for (std::uint32_t k = 0; k < kClients; ++k) {
    auto c = std::make_unique<WorkloadClient>(env, client_id(k), map,
                                              AbdClient::Mode::kDynamic, wp,
                                              history);
    c->router().set_retry_interval(ms(100));
    Await<bool> aw;
    c->set_on_done([aw] { aw.fulfill(true); });
    env.register_process(client_id(k), c.get());
    clients.push_back(std::move(c));
    done.push_back(aw);
  }
  env.start();

  for (auto& aw : done) aw.get(seconds(120));

  // 3. Report and verify.
  Table table({"client", "completed", "ops/s", "p50 ms", "p99 ms"});
  for (std::uint32_t k = 0; k < kClients; ++k) {
    const Histogram& lat = clients[k]->op_latency();
    table.add_row({"c" + std::to_string(k),
                   std::to_string(clients[k]->completed()),
                   Table::fmt(clients[k]->achieved_ops_per_sec()),
                   Table::fmt(lat.percentile(50) / 1e6),
                   Table::fmt(lat.percentile(99) / 1e6)});
  }
  table.print();
  std::printf("wire: %lld frames out, %lld bytes out, %lld frames in\n",
              static_cast<long long>(env.traffic().get("msgs")),
              static_cast<long long>(env.traffic().get("bytes")),
              static_cast<long long>(env.traffic().get("msgs.in")));

  auto verdict = check_atomicity(history->completed());
  if (verdict.has_value()) {
    std::printf("atomicity: VIOLATION\n%s\n", verdict->c_str());
  } else {
    std::printf("atomicity: OK (%zu ops across %u real server processes)\n",
                history->completed().size(), kShards);
  }

  env.stop();
  for (const auto& g : groups) deploy::stop_node_group(g);
  return verdict.has_value() ? 1 : 0;
}

#else  // !__linux__

#include <cstdio>

int main() {
  std::fprintf(stderr, "socket_demo: the socket runtime requires Linux\n");
  return 0;  // not a failure on platforms without the runtime
}

#endif
