// Example: watching the impossibility proof run.
//
// Theorem 1 says: give me any black box solving the weight reassignment
// problem (Definition 3) and I will solve consensus with it — hence no
// such box exists in an asynchronous failure-prone system (FLP).
//
// This demo wires Algorithm 1 to the oracle linearizer (the "impossible
// box") and runs it: n servers propose different values, exactly one
// reassign completes with a non-zero change, and everyone decides its
// issuer's proposal.
//
// Run: ./build/examples/consensus_reduction_demo
#include <algorithm>
#include <iostream>

#include "api/cluster.h"
#include "consensus/reduction.h"

using namespace wrs;

int main() {
  const std::uint32_t n = 5, f = 2;
  // The paper's boundary-tight initial weights: members of F get
  // (n-1)/(2f), the rest (n+1)/(2(n-f)).
  auto registers = std::make_shared<SharedRegisters>(n);
  std::vector<Alg1Server*> servers;
  OracleReassignService* oracle = nullptr;

  Cluster cluster =
      Cluster::builder()
          .servers(n)
          .faults(f)
          .weights(reduction_initial_weights(n, f))
          .uniform_latency(ms(1), ms(20))
          .seed(99)
          .clients(0)
          .server_factory([&](Env& env, ProcessId s, const SystemConfig& cfg) {
            auto server = std::make_unique<Alg1Server>(env, s, cfg, registers);
            servers.push_back(server.get());
            return server;
          })
          .add_process(kOracleId,
                       [&](Env& env, const SystemConfig& cfg) {
                         auto box =
                             std::make_unique<OracleReassignService>(env, cfg);
                         oracle = box.get();
                         return box;
                       })
          .build();

  std::cout << "initial weights: " << cluster.config().initial_weights.str()
            << "\n";
  std::cout << "Integrity allows at most ONE of the +1/2 / -1/2 requests "
               "to be granted — that grant is the consensus decision.\n\n";

  const char* proposals[] = {"apply-config-A", "apply-config-B",
                             "apply-config-C", "apply-config-D",
                             "apply-config-E"};
  std::vector<Await<std::string>> decisions;
  for (std::uint32_t i = 0; i < n; ++i) {
    Await<std::string> decided = cluster.make_await<std::string>();
    decisions.push_back(decided);
    Alg1Server* server = servers[i];
    std::string proposal = proposals[i];
    cluster.post(i, [server, proposal, decided] {
      server->propose(proposal,
                      [decided](const std::string& v) { decided.fulfill(v); });
    });
    std::cout << "s" << i << " proposes \"" << proposals[i] << "\" and asks "
              << (i < f ? "reassign(+1/2)" : "reassign(-1/2)") << "\n";
  }

  std::vector<std::string> decided(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    decided[i] = decisions[i].get(seconds(120));
    std::cout << "s" << i << " decided \"" << decided[i] << "\" by t="
              << Table::fmt(to_ms(cluster.now())) << " ms\n";
  }

  std::cout << "\noracle granted " << oracle->effective_count()
            << " effective change(s); all " << n
            << " servers decided the same value: "
            << (std::all_of(decided.begin(), decided.end(),
                            [&](const std::string& d) { return d == decided[0]; })
                    ? "yes"
                    : "NO (bug!)")
            << "\n";
  std::cout << "\nSince consensus is unsolvable in this system model, the "
               "oracle's power cannot be implemented — that is Corollary 1. "
               "The implementable fallback is the RESTRICTED pairwise "
               "problem (see examples/quickstart.cpp).\n";
  return 0;
}
