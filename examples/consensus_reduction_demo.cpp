// Example: watching the impossibility proof run.
//
// Theorem 1 says: give me any black box solving the weight reassignment
// problem (Definition 3) and I will solve consensus with it — hence no
// such box exists in an asynchronous failure-prone system (FLP).
//
// This demo wires Algorithm 1 to the oracle linearizer (the "impossible
// box") and runs it: n servers propose different values, exactly one
// reassign completes with a non-zero change, and everyone decides its
// issuer's proposal.
//
// Run: ./build/examples/consensus_reduction_demo
#include <iostream>

#include "consensus/reduction.h"
#include "runtime/sim_env.h"

using namespace wrs;

int main() {
  const std::uint32_t n = 5, f = 2;
  // The paper's boundary-tight initial weights: members of F get
  // (n-1)/(2f), the rest (n+1)/(2(n-f)).
  SystemConfig cfg = SystemConfig::make(n, f, reduction_initial_weights(n, f));
  std::cout << "initial weights: " << cfg.initial_weights.str() << "\n";
  std::cout << "Integrity allows at most ONE of the +1/2 / -1/2 requests "
               "to be granted — that grant is the consensus decision.\n\n";

  SimEnv env(std::make_shared<UniformLatency>(ms(1), ms(20)), /*seed=*/99);
  OracleReassignService oracle(env, cfg);
  env.register_process(kOracleId, &oracle);

  auto registers = std::make_shared<SharedRegisters>(n);
  std::vector<std::unique_ptr<Alg1Server>> servers;
  std::vector<std::optional<std::string>> decisions(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    servers.push_back(std::make_unique<Alg1Server>(env, i, cfg, registers));
    env.register_process(i, servers.back().get());
  }
  env.start();

  const char* proposals[] = {"apply-config-A", "apply-config-B",
                             "apply-config-C", "apply-config-D",
                             "apply-config-E"};
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t idx = i;
    servers[i]->propose(proposals[i], [&, idx](const std::string& v) {
      std::cout << "s" << idx << " decided \"" << v << "\" at t="
                << Table::fmt(to_ms(env.now())) << " ms\n";
      decisions[idx] = v;
    });
    std::cout << "s" << i << " proposes \"" << proposals[i] << "\" and asks "
              << (i < f ? "reassign(+1/2)" : "reassign(-1/2)") << "\n";
  }

  env.run_until_pred(
      [&] {
        for (const auto& d : decisions) {
          if (!d.has_value()) return false;
        }
        return true;
      },
      seconds(120));

  std::cout << "\noracle granted " << oracle.effective_count()
            << " effective change(s); all " << n
            << " servers decided the same value: "
            << (std::all_of(decisions.begin(), decisions.end(),
                            [&](const auto& d) {
                              return d.has_value() && *d == *decisions[0];
                            })
                    ? "yes"
                    : "NO (bug!)")
            << "\n";
  std::cout << "\nSince consensus is unsolvable in this system model, the "
               "oracle's power cannot be implemented — that is Corollary 1. "
               "The implementable fallback is the RESTRICTED pairwise "
               "problem (see examples/quickstart.cpp).\n";
  return 0;
}
