// Example: riding out a degraded replica — and a crash — without
// reconfiguration.
//
// The set of servers and the fault threshold f are STATIC (that is the
// paper's model); what changes is voting power. When a replica turns
// slow, it demotes itself (C1: only the owner moves its weight; C2: it
// keeps the floor). When a replica crashes, nothing needs to happen at
// all: Property 1 guarantees a weighted quorum of correct servers.
//
// Run: ./build/examples/slow_replica_failover
#include <iostream>

#include "api/cluster.h"

using namespace wrs;

namespace {

void report(const char* phase, Cluster& cluster, ClientHandle& client) {
  // Measure 20 reads.
  Histogram lat;
  for (int i = 0; i < 20; ++i) {
    TimeNs start = cluster.now();
    client.read().get(seconds(30));
    lat.add_time(cluster.now() - start);
  }
  // Read the weight map from the first server that is still alive.
  ProcessId alive = kNoProcess;
  for (ProcessId s : cluster.config().servers()) {
    if (!cluster.is_crashed(s)) {
      alive = s;
      break;
    }
  }
  WeightMap weights = cluster.server(alive).weights_snapshot().get();
  std::cout << phase << ": read p50 " << Table::fmt(to_ms(lat.percentile(50)))
            << " ms, weights " << weights.str() << "\n";
}

}  // namespace

int main() {
  AdaptiveParams params;
  params.probe_interval = ms(100);
  params.eval_interval = ms(300);
  params.step = Weight(1, 20);
  params.slow_factor = 2.0;

  Cluster cluster = Cluster::builder()
                        .servers(5)
                        .faults(1)
                        .uniform_latency(ms(2), ms(8))
                        .seed(31)
                        .adaptive(params)
                        .build();
  ClientHandle client = cluster.client();

  client.write("payload").get(seconds(30));
  report("healthy          ", cluster, client);

  // Phase 2: s2 degrades 30x. Its own monitoring notices (via gossip)
  // and it starts donating weight to faster peers.
  cluster.slow(2, 30.0);
  cluster.run_for(seconds(15));  // let adaptation converge
  report("s2 slow (adapted)", cluster, client);
  std::cout << "   s2 demoted itself toward the floor "
            << cluster.config().floor().str()
            << " — approach (I) of Section V-C is the "
            << "only one available, and only s2 itself may execute it.\n";

  // Phase 3: s2 crashes outright. f=1 is budgeted for this: Property 1
  // (maintained by RP-Integrity) says the remaining servers hold a
  // strict weighted majority, so reads/writes continue untouched.
  cluster.crash(2);
  report("s2 crashed       ", cluster, client);

  std::cout << "\nNo reconfiguration, no consensus, no epoch boundaries: "
               "the server set and f never changed — only voting power "
               "moved, and availability held throughout.\n";
  return 0;
}
