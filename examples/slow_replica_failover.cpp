// Example: riding out a degraded replica — and a crash — without
// reconfiguration.
//
// The set of servers and the fault threshold f are STATIC (that is the
// paper's model); what changes is voting power. When a replica turns
// slow, it demotes itself (C1: only the owner moves its weight; C2: it
// keeps the floor). When a replica crashes, nothing needs to happen at
// all: Property 1 guarantees a weighted quorum of correct servers.
//
// Run: ./build/examples/slow_replica_failover
#include <iostream>

#include "monitor/adaptive_node.h"
#include "runtime/sim_env.h"
#include "workload/wan_profiles.h"

using namespace wrs;

namespace {

void report(const char* phase, SimEnv& env,
            std::vector<std::unique_ptr<AdaptiveNode>>& servers,
            StorageClient& client, SystemConfig& cfg) {
  // Measure 20 reads.
  Histogram lat;
  for (int i = 0; i < 20; ++i) {
    bool done = false;
    TimeNs start = env.now();
    client.abd().read([&](const TaggedValue&) { done = true; });
    env.run_until_pred([&] { return done; }, seconds(30));
    lat.add_time(env.now() - start);
  }
  ProcessId alive = kNoProcess;
  for (ProcessId s : cfg.servers()) {
    if (!env.is_crashed(s)) {
      alive = s;
      break;
    }
  }
  WeightMap weights =
      servers[alive]->reassign().changes().to_weight_map(cfg.servers());
  std::cout << phase << ": read p50 " << Table::fmt(to_ms(lat.percentile(50)))
            << " ms, weights " << weights.str() << "\n";
}

}  // namespace

int main() {
  SystemConfig cfg = SystemConfig::uniform(/*n=*/5, /*f=*/1);
  auto degradable = std::make_shared<DegradableLatency>(
      std::make_unique<UniformLatency>(ms(2), ms(8)));
  SimEnv env(degradable, /*seed=*/31);

  AdaptiveParams params;
  params.probe_interval = ms(100);
  params.eval_interval = ms(300);
  params.step = Weight(1, 20);
  params.slow_factor = 2.0;

  std::vector<std::unique_ptr<AdaptiveNode>> servers;
  for (ProcessId s : cfg.servers()) {
    servers.push_back(std::make_unique<AdaptiveNode>(env, s, cfg, params));
    env.register_process(s, servers.back().get());
  }
  StorageClient client(env, client_id(0), cfg, AbdClient::Mode::kDynamic);
  env.register_process(client.id(), &client);
  env.start();

  bool seeded = false;
  client.abd().write("payload", [&](const Tag&) { seeded = true; });
  env.run_until_pred([&] { return seeded; }, seconds(30));

  report("healthy          ", env, servers, client, cfg);

  // Phase 2: s2 degrades 30x. Its own monitoring notices (via gossip)
  // and it starts donating weight to faster peers.
  degradable->set_factor(2, 30.0);
  env.run_until(env.now() + seconds(15));  // let adaptation converge
  report("s2 slow (adapted)", env, servers, client, cfg);
  std::cout << "   s2 demoted itself toward the floor "
            << cfg.floor().str() << " — approach (I) of Section V-C is the "
            << "only one available, and only s2 itself may execute it.\n";

  // Phase 3: s2 crashes outright. f=1 is budgeted for this: Property 1
  // (maintained by RP-Integrity) says the remaining servers hold a
  // strict weighted majority, so reads/writes continue untouched.
  env.crash(2);
  report("s2 crashed       ", env, servers, client, cfg);

  std::cout << "\nNo reconfiguration, no consensus, no epoch boundaries: "
               "the server set and f never changed — only voting power "
               "moved, and availability held throughout.\n";
  return 0;
}
