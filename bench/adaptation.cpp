// EXP-A1 — why weights must be *re*-assignable (Sections I and V-C):
// replicas degrade mid-run; the dynamic deployment shifts their voting
// power to fast replicas and recovers client latency, while the static
// weighted deployment stays degraded.
//
// Setup notes:
//  * initial weights (1.4, 1.4, 0.8, 0.7, 0.7) respect the RP-Integrity
//    floor 5/8 — the paper's model requires RP-Integrity at t=0, and
//    Lemma 1's availability guarantee depends on it;
//  * the two heavy servers s0 and s1 both become 25x slower during
//    [20s, 60s). The light servers alone weigh 2.2 < W_{S,0}/2 = 2.5, so
//    a static deployment MUST keep touching a slow server, while the
//    dynamic one drains s0/s1 toward the floor until the fast servers
//    form quorums on their own.
#include "bench_util.h"

namespace wrs {
namespace {

struct SeriesResult {
  TimeSeries latency;
  WeightMap final_weights;
};

SeriesResult run_one(bool adaptive, std::uint64_t seed) {
  // Initial weights favor s0 and s1 (as a tuned system would), while
  // every server stays strictly above the RP floor 5/8.
  WeightMap weights;
  weights.set(0, Weight(7, 5));
  weights.set(1, Weight(7, 5));
  weights.set(2, Weight(4, 5));
  weights.set(3, Weight(7, 10));
  weights.set(4, Weight(7, 10));

  AdaptiveParams params;
  params.probe_interval = ms(200);
  params.eval_interval = ms(400);
  params.step = Weight(1, 10);
  params.slow_factor = 1.5;
  params.adaptation_enabled = adaptive;

  Cluster cluster = Cluster::builder()
                        .servers(5)
                        .faults(1)
                        .weights(weights)
                        .wan(continental_profile(), /*client_site=*/0)
                        .seed(seed)
                        .adaptive(params)
                        .build();
  ClientHandle client = cluster.client();

  // Degradation script: s0 and s1 slow 25x during [20s, 60s).
  cluster.at(seconds(20), [&] {
    cluster.slow(0, 25.0);
    cluster.slow(1, 25.0);
  });
  cluster.at(seconds(60), [&] {
    cluster.clear_slow(0);
    cluster.clear_slow(1);
  });

  // Closed loop of reads, ~one every 50ms, recording per-op latency into
  // a time series.
  SeriesResult result;
  while (cluster.now() < seconds(80)) {
    TimeNs start = cluster.now();
    client.read().get(seconds(120));
    result.latency.add(cluster.now(), to_ms(cluster.now() - start));
    cluster.run_for(ms(50));
  }
  result.final_weights = cluster.server(0).weights_snapshot().get();
  return result;
}

void run() {
  bench::banner("EXP-A1",
                "adaptation to degraded replicas (s0,s1 slow 25x during "
                "[20s,60s); n=5, f=1, continental profile)");

  SeriesResult dynamic_run = run_one(true, 99);
  SeriesResult static_run = run_one(false, 99);

  Table table({"window (s)", "static WMQS read mean (ms)",
               "dynamic read mean (ms)"});
  for (TimeNs t = 0; t < seconds(80); t += seconds(8)) {
    table.add_row(
        {Table::fmt(static_cast<double>(t) / kNsPerSec, 0) + "-" +
             Table::fmt(static_cast<double>(t + seconds(8)) / kNsPerSec, 0),
         Table::fmt(static_run.latency.mean_in(t, t + seconds(8))),
         Table::fmt(dynamic_run.latency.mean_in(t, t + seconds(8)))});
  }
  table.print();

  bench::note("\nfinal weights, static : " + static_run.final_weights.str());
  bench::note("final weights, dynamic: " + dynamic_run.final_weights.str());
  bench::note(
      "\nPaper claim check: during the degradation window the adaptive "
      "deployment drains s0/s1's weight (down to the RP-Integrity floor "
      "at most) until the fast servers form quorums alone and latency "
      "recovers; the static deployment must keep touching a slow heavy "
      "server. Per Section V-C, this self-demotion is the ONLY remedy the "
      "restricted problem allows: others cannot take a slow server's "
      "weight away (C1), and the total cannot be inflated (pairwise).");
}

}  // namespace
}  // namespace wrs

int main() {
  wrs::run();
  return 0;
}
