// EXP-A1 — why weights must be *re*-assignable (Sections I and V-C):
// replicas degrade mid-run; the dynamic deployment shifts their voting
// power to fast replicas and recovers client latency, while the static
// weighted deployment stays degraded.
//
// Setup notes:
//  * initial weights (1.4, 1.4, 0.8, 0.7, 0.7) respect the RP-Integrity
//    floor 5/8 — the paper's model requires RP-Integrity at t=0, and
//    Lemma 1's availability guarantee depends on it;
//  * the two heavy servers s0 and s1 both become 25x slower during
//    [20s, 60s). The light servers alone weigh 2.2 < W_{S,0}/2 = 2.5, so
//    a static deployment MUST keep touching a slow server, while the
//    dynamic one drains s0/s1 toward the floor until the fast servers
//    form quorums on their own.
#include "bench_util.h"

#include "monitor/adaptive_node.h"

namespace wrs {
namespace {

struct SeriesResult {
  TimeSeries latency;
  WeightMap final_weights;
};

SeriesResult run_one(bool adaptive, std::uint64_t seed) {
  const std::uint32_t n = 5;
  const std::uint32_t f = 1;
  WanProfile profile = continental_profile();
  bench::WanSim sim(profile, 0, seed);

  // Initial weights favor s0 and s1 (as a tuned system would), while
  // every server stays strictly above the RP floor 5/8.
  WeightMap weights;
  weights.set(0, Weight(7, 5));
  weights.set(1, Weight(7, 5));
  weights.set(2, Weight(4, 5));
  weights.set(3, Weight(7, 10));
  weights.set(4, Weight(7, 10));
  SystemConfig cfg = SystemConfig::make(n, f, weights);

  AdaptiveParams params;
  params.probe_interval = ms(200);
  params.eval_interval = ms(400);
  params.step = Weight(1, 10);
  params.slow_factor = 1.5;
  params.adaptation_enabled = adaptive;

  std::vector<std::unique_ptr<AdaptiveNode>> nodes;
  for (std::uint32_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<AdaptiveNode>(*sim.env, i, cfg, params));
    sim.env->register_process(i, nodes.back().get());
  }

  // A client that reads in a closed loop and records per-op latency into
  // a time series.
  SeriesResult result;
  auto client = std::make_unique<StorageClient>(
      *sim.env, client_id(0), cfg, AbdClient::Mode::kDynamic);
  sim.env->register_process(client_id(0), client.get());
  sim.env->start();

  auto loop = std::make_shared<std::function<void()>>();
  *loop = [&, loop] {
    TimeNs start = sim.env->now();
    client->abd().read([&, loop, start](const TaggedValue&) {
      result.latency.add(sim.env->now(), to_ms(sim.env->now() - start));
      sim.env->schedule(client_id(0), ms(50), [loop] { (*loop)(); });
    });
  };
  sim.env->schedule(client_id(0), 0, [loop] { (*loop)(); });

  // Degradation script: s0 and s1 slow 25x during [20s, 60s).
  sim.env->schedule(kNoProcess, seconds(20), [&] {
    sim.latency->set_factor(0, 25.0);
    sim.latency->set_factor(1, 25.0);
  });
  sim.env->schedule(kNoProcess, seconds(60), [&] {
    sim.latency->clear_factor(0);
    sim.latency->clear_factor(1);
  });

  sim.env->run_until(seconds(80));
  result.final_weights =
      nodes[0]->reassign().changes().to_weight_map(cfg.servers());
  return result;
}

void run() {
  bench::banner("EXP-A1",
                "adaptation to degraded replicas (s0,s1 slow 25x during "
                "[20s,60s); n=5, f=1, continental profile)");

  SeriesResult dynamic_run = run_one(true, 99);
  SeriesResult static_run = run_one(false, 99);

  Table table({"window (s)", "static WMQS read mean (ms)",
               "dynamic read mean (ms)"});
  for (TimeNs t = 0; t < seconds(80); t += seconds(8)) {
    table.add_row(
        {Table::fmt(static_cast<double>(t) / kNsPerSec, 0) + "-" +
             Table::fmt(static_cast<double>(t + seconds(8)) / kNsPerSec, 0),
         Table::fmt(static_run.latency.mean_in(t, t + seconds(8))),
         Table::fmt(dynamic_run.latency.mean_in(t, t + seconds(8)))});
  }
  table.print();

  bench::note("\nfinal weights, static : " + static_run.final_weights.str());
  bench::note("final weights, dynamic: " + dynamic_run.final_weights.str());
  bench::note(
      "\nPaper claim check: during the degradation window the adaptive "
      "deployment drains s0/s1's weight (down to the RP-Integrity floor "
      "at most) until the fast servers form quorums alone and latency "
      "recovers; the static deployment must keep touching a slow heavy "
      "server. Per Section V-C, this self-demotion is the ONLY remedy the "
      "restricted problem allows: others cannot take a slow server's "
      "weight away (C1), and the total cannot be inflated (pairwise).");
}

}  // namespace
}  // namespace wrs

int main() {
  wrs::run();
  return 0;
}
