// EXP-T1 / EXP-T2 — Theorems 1 and 2 as executable artifacts.
//
// Runs Algorithm 1 (consensus from the weight reassignment problem) and
// Algorithm 2 (consensus from pairwise weight reassignment) against the
// oracle service over many seeds and system sizes, and reports the three
// consensus properties plus the mechanism invariant (exactly one
// effective reassignment decides).
#include "bench_util.h"

#include "consensus/reduction.h"

namespace wrs {
namespace {

template <typename ServerT>
struct Row {
  std::uint32_t n;
  std::uint32_t f;
  int runs = 0;
  int agreement_ok = 0;
  int validity_ok = 0;
  int termination_ok = 0;
  int mechanism_ok = 0;  // exactly-one-effective invariant
  Histogram decide_ms;
};

template <typename ServerT>
Row<ServerT> sweep(std::uint32_t n, std::uint32_t f, int seeds,
                   bool is_alg2) {
  Row<ServerT> row;
  row.n = n;
  row.f = f;
  for (int s = 0; s < seeds; ++s) {
    std::uint64_t seed = 1000 + 97 * s + n * 13 + f;
    SystemConfig cfg = SystemConfig::make(n, f,
                                          reduction_initial_weights(n, f));
    SimEnv env(std::make_shared<UniformLatency>(ms(1), ms(15)), seed);
    OracleReassignService oracle(env, cfg);
    env.register_process(kOracleId, &oracle);
    auto registers = std::make_shared<SharedRegisters>(n);
    std::vector<std::unique_ptr<ServerT>> servers;
    std::vector<std::optional<std::string>> decisions(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      servers.push_back(std::make_unique<ServerT>(env, i, cfg, registers));
      env.register_process(i, servers.back().get());
    }
    env.start();
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint32_t idx = i;
      servers[i]->propose(
          "proposal-" + std::to_string(i),
          [&decisions, idx](const std::string& v) { decisions[idx] = v; });
    }
    bool terminated = env.run_until_pred(
        [&] {
          for (const auto& d : decisions) {
            if (!d.has_value()) return false;
          }
          return true;
        },
        seconds(600));
    ++row.runs;
    if (!terminated) continue;
    ++row.termination_ok;
    row.decide_ms.add(to_ms(env.now()));
    bool agree = true;
    for (std::uint32_t i = 1; i < n; ++i) {
      agree &= (*decisions[i] == *decisions[0]);
    }
    if (agree) ++row.agreement_ok;
    if (decisions[0]->rfind("proposal-", 0) == 0) ++row.validity_ok;
    // Mechanism invariant.
    if (!is_alg2) {
      if (oracle.effective_count() == 1) ++row.mechanism_ok;
    } else {
      std::size_t winners = 0;
      for (const Change& ch : oracle.changes().all()) {
        if (ch.issuer() >= f && ch.target() == 0 &&
            ch.delta == Weight(2, 5)) {
          ++winners;
        }
      }
      if (winners == 1) ++row.mechanism_ok;
    }
  }
  return row;
}

template <typename ServerT>
void print_sweep(const std::string& id, const std::string& title,
                 bool is_alg2) {
  bench::banner(id, title);
  Table table({"n", "f", "runs", "agreement", "validity", "termination",
               "one-effective", "decide p50 (ms)", "decide max (ms)"});
  struct NF {
    std::uint32_t n, f;
  };
  for (NF nf : {NF{4, 1}, NF{5, 2}, NF{7, 2}, NF{7, 3}, NF{9, 4},
                NF{10, 3}, NF{13, 6}}) {
    auto row = sweep<ServerT>(nf.n, nf.f, /*seeds=*/25, is_alg2);
    auto frac = [&](int x) {
      return std::to_string(x) + "/" + std::to_string(row.runs);
    };
    table.add_row({std::to_string(row.n), std::to_string(row.f),
                   std::to_string(row.runs), frac(row.agreement_ok),
                   frac(row.validity_ok), frac(row.termination_ok),
                   frac(row.mechanism_ok),
                   Table::fmt(row.decide_ms.percentile(50)),
                   Table::fmt(row.decide_ms.max())});
  }
  table.print();
}

void run() {
  print_sweep<Alg1Server>(
      "EXP-T1", "Theorem 1 — consensus from weight reassignment (Alg. 1)",
      false);
  bench::note(
      "Paper claim check: all runs satisfy agreement/validity/termination "
      "and exactly ONE reassign completes with a non-zero change — the "
      "oracle's linearization power is what an asynchronous implementation "
      "cannot have (Corollary 1).");

  print_sweep<Alg2Server>(
      "EXP-T2",
      "Theorem 2 — consensus from pairwise weight reassignment (Alg. 2)",
      true);
  bench::note(
      "Paper claim check: exactly one S\\F transfer (0.4 credit to s1) is "
      "ever effective; its issuer's proposal is decided by every server.");
}

}  // namespace
}  // namespace wrs

int main() {
  wrs::run();
  return 0;
}
