// Shared helpers for the experiment harnesses in bench/.
//
// Each binary reproduces one experiment from DESIGN.md §4 / EXPERIMENTS.md
// and prints paper-style tables to stdout. All runs are seeded and
// deterministic.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "api/cluster.h"
#include "common/metrics.h"
#include "core/config.h"
#include "runtime/sim_env.h"
#include "storage/dynamic_node.h"
#include "workload/wan_profiles.h"
#include "workload/workload.h"

namespace wrs::bench {

inline void banner(const std::string& id, const std::string& title) {
  std::cout << "\n==== " << id << ": " << title << " ====\n\n";
}

inline void note(const std::string& text) { std::cout << text << "\n"; }

#ifndef WRS_GIT_SHA
#define WRS_GIT_SHA "unknown"
#endif

/// Machine-readable experiment output: rows of (name, value) fields per
/// experiment, written as JSON so the perf trajectory can be tracked
/// across PRs:
///
///   {"experiment": ..., "git_sha": "...", "seed": ..., "rows": [{...}]}
///
/// `git_sha` is baked in at configure time and `seed` is set by the
/// harness (null when a run is unseeded), so every recorded BENCH_*.json
/// line is reproducible: check out the SHA, rerun with the seed.
class JsonReport {
 public:
  explicit JsonReport(std::string experiment)
      : experiment_(std::move(experiment)) {}

  /// Records the master seed the experiment ran under.
  JsonReport& seed(std::uint64_t s) {
    seed_ = std::to_string(s);
    return *this;
  }

  /// Opens a fresh row; subsequent field() calls fill it.
  JsonReport& row() {
    rows_.emplace_back();
    return *this;
  }

  /// Opens a row describing one shard of a sharded run (shard < 0 opens
  /// the aggregate row, tagged "all") — keeps per-shard and aggregate
  /// rows of the same experiment distinguishable to consumers.
  JsonReport& shard_row(std::int64_t shard) {
    row();
    if (shard < 0) {
      field("shard", std::string("all"));
    } else {
      field("shard", static_cast<double>(shard));
    }
    return *this;
  }

  /// Emits every counter of `c` as "<prefix><name>" fields on the open
  /// row (e.g. the per-shard msgs/bytes counters next to the aggregate).
  JsonReport& counters(const Counters& c, const std::string& prefix = "") {
    for (const auto& [name, value] : c.map()) {
      field(prefix + name, static_cast<double>(value));
    }
    return *this;
  }

  JsonReport& field(const std::string& name, double value) {
    std::ostringstream os;
    if (std::isfinite(value)) {
      os << value;
    } else {
      os << "null";  // JSON has no NaN/inf literals
    }
    rows_.back().emplace_back(name, os.str());
    return *this;
  }
  JsonReport& field(const std::string& name, const std::string& value) {
    std::string quoted = "\"";
    quoted += escape(value);
    quoted += '"';
    rows_.back().emplace_back(name, std::move(quoted));
    return *this;
  }

  /// Value of a numeric field on the most recently opened row (0 when
  /// absent) — lets a sweep echo a row field into its console table.
  double last_field(const std::string& name) const {
    if (rows_.empty()) return 0;
    for (const auto& [n, v] : rows_.back()) {
      if (n == name) return std::strtod(v.c_str(), nullptr);
    }
    return 0;
  }

  /// Appends this experiment's object to `path` (one JSON object per
  /// line, so several experiments in one binary can share a file).
  /// Returns false — and says so — when the file cannot be written, so
  /// a perf-tracking pipeline never silently records nothing.
  bool write(const std::string& path) const {
    std::ofstream out(path, std::ios::app);
    out << str() << "\n";
    out.flush();
    if (!out) {
      std::cerr << "[json] ERROR: cannot write " << experiment_ << " to "
                << path << "\n";
      return false;
    }
    std::cout << "[json] " << experiment_ << " -> " << path << "\n";
    return true;
  }

  std::string str() const {
    std::ostringstream os;
    os << "{\"experiment\":\"" << escape(experiment_) << "\",\"git_sha\":\""
       << escape(WRS_GIT_SHA) << "\",\"seed\":"
       << (seed_.empty() ? "null" : seed_) << ",\"rows\":[";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      os << (r ? ",{" : "{");
      for (std::size_t f = 0; f < rows_[r].size(); ++f) {
        os << (f ? "," : "") << "\"" << escape(rows_[r][f].first)
           << "\":" << rows_[r][f].second;
      }
      // Derived field: every row carrying both a message count and a
      // completed-op count also reports msgs/op, the batching/overhead
      // metric CI gates on — readers no longer divide by hand.
      if (!has_field(rows_[r], "msgs_per_op")) {
        double msgs = 0, ops = 0;
        if (numeric_field(rows_[r], "msgs", &msgs) &&
            numeric_field(rows_[r], "ops_completed", &ops) && ops > 0) {
          os << (rows_[r].empty() ? "" : ",") << "\"msgs_per_op\":"
             << msgs / ops;
        }
      }
      os << "}";
    }
    os << "]}";
    return os.str();
  }

 private:
  using Row = std::vector<std::pair<std::string, std::string>>;

  static bool has_field(const Row& row, const std::string& name) {
    for (const auto& [n, _] : row) {
      if (n == name) return true;
    }
    return false;
  }

  /// Reads field `name` of `row` as a number; false when absent or
  /// non-numeric (string fields are stored quoted).
  static bool numeric_field(const Row& row, const std::string& name,
                            double* out) {
    for (const auto& [n, v] : row) {
      if (n != name) continue;
      if (v.empty() || v.front() == '"' || v == "null") return false;
      *out = std::strtod(v.c_str(), nullptr);
      return true;
    }
    return false;
  }

  static std::string escape(const std::string& s) {
    std::string out;
    for (char ch : s) {
      if (ch == '"' || ch == '\\') {
        out.push_back('\\');
        out.push_back(ch);
      } else if (static_cast<unsigned char>(ch) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
        out += buf;
      } else {
        out.push_back(ch);
      }
    }
    return out;
  }

  std::string experiment_;
  std::string seed_;  // empty = unseeded (emitted as null)
  std::vector<Row> rows_;
};

/// `--json <path>` from a bench binary's argv; empty when absent. A
/// dangling `--json` with no path is a usage error, not a silent no-op.
inline std::string json_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") != 0) continue;
    if (i + 1 >= argc) {
      std::cerr << "usage: " << argv[0] << " [--json <path>]\n";
      std::exit(2);
    }
    return argv[i + 1];
  }
  return {};
}

/// Builds a SimEnv over a WAN profile; returns the env and keeps the
/// degradable wrapper accessible for mid-run degradation experiments.
struct WanSim {
  std::shared_ptr<DegradableLatency> latency;
  std::unique_ptr<SimEnv> env;

  WanSim(const WanProfile& profile, std::size_t client_site,
         std::uint64_t seed) {
    auto matrix = std::make_unique<SiteMatrixLatency>(
        profile.rtt_ms, site_mapper(profile.sites.size(), client_site));
    latency = std::make_shared<DegradableLatency>(std::move(matrix));
    env = std::make_unique<SimEnv>(latency, seed);
  }
};

/// A full dynamic storage deployment + one closed-loop client; returns
/// the client's latency histograms after the run.
struct StorageRun {
  Histogram read_latency;
  Histogram write_latency;
  std::uint64_t restarts = 0;
  Counters traffic;
  std::size_t ops_completed = 0;
};

}  // namespace wrs::bench
