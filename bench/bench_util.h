// Shared helpers for the experiment harnesses in bench/.
//
// Each binary reproduces one experiment from DESIGN.md §4 / EXPERIMENTS.md
// and prints paper-style tables to stdout. All runs are seeded and
// deterministic.
#pragma once

#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "api/cluster.h"
#include "common/metrics.h"
#include "core/config.h"
#include "runtime/sim_env.h"
#include "storage/dynamic_node.h"
#include "workload/wan_profiles.h"
#include "workload/workload.h"

namespace wrs::bench {

inline void banner(const std::string& id, const std::string& title) {
  std::cout << "\n==== " << id << ": " << title << " ====\n\n";
}

inline void note(const std::string& text) { std::cout << text << "\n"; }

/// Builds a SimEnv over a WAN profile; returns the env and keeps the
/// degradable wrapper accessible for mid-run degradation experiments.
struct WanSim {
  std::shared_ptr<DegradableLatency> latency;
  std::unique_ptr<SimEnv> env;

  WanSim(const WanProfile& profile, std::size_t client_site,
         std::uint64_t seed) {
    auto matrix = std::make_unique<SiteMatrixLatency>(
        profile.rtt_ms, site_mapper(profile.sites.size(), client_site));
    latency = std::make_shared<DegradableLatency>(std::move(matrix));
    env = std::make_unique<SimEnv>(latency, seed);
  }
};

/// A full dynamic storage deployment + one closed-loop client; returns
/// the client's latency histograms after the run.
struct StorageRun {
  Histogram read_latency;
  Histogram write_latency;
  std::uint64_t restarts = 0;
  Counters traffic;
  std::size_t ops_completed = 0;
};

}  // namespace wrs::bench
