// EXP-X1 — Section VIII relationship with 1-asset transfer [12]: run the
// SAME randomized transfer workload against the 1-asset-transfer service
// (validity: balance >= 0) and the restricted pairwise reassignment
// (validity: weight stays strictly above W_{S,0}/(2(n-f))), and show the
// acceptance sets differ exactly on the Integrity-relevant transfers.
#include "bench_util.h"

#include "baselines/asset_transfer.h"
#include "core/reassign_node.h"

namespace wrs {
namespace {

struct Op {
  std::uint32_t src;
  std::uint32_t dst;
  Weight amount;
};

std::vector<Op> make_workload(std::uint32_t n, int count,
                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Op> ops;
  for (int i = 0; i < count; ++i) {
    Op op;
    op.src = static_cast<std::uint32_t>(rng.below(n));
    op.dst = (op.src + 1 + static_cast<std::uint32_t>(rng.below(n - 1))) % n;
    op.amount = Weight(1 + static_cast<std::int64_t>(rng.below(30)), 100);
    ops.push_back(op);
  }
  return ops;
}

void run() {
  bench::banner("EXP-X1",
                "1-asset transfer [12] vs restricted pairwise weight "
                "reassignment on an identical workload (n=5, f=1, "
                "120 sequential transfers, amounts 0.01-0.30)");

  const std::uint32_t n = 5, f = 1;
  SystemConfig cfg = SystemConfig::uniform(n, f);
  auto ops = make_workload(n, 120, 606);

  // --- assets ---------------------------------------------------------------
  SimEnv aenv(std::make_shared<UniformLatency>(ms(1), ms(6)), 1);
  std::vector<std::unique_ptr<AssetTransferNode>> anodes;
  for (std::uint32_t i = 0; i < n; ++i) {
    anodes.push_back(std::make_unique<AssetTransferNode>(aenv, i, cfg));
    aenv.register_process(i, anodes.back().get());
  }
  aenv.start();
  std::vector<bool> asset_ok;
  for (const Op& op : ops) {
    bool done = false;
    anodes[op.src]->transfer(op.dst, op.amount, [&](const AssetOutcome& o) {
      asset_ok.push_back(o.accepted);
      done = true;
    });
    aenv.run_until_pred([&] { return done; }, seconds(60));
    aenv.run_to_quiescence();
  }

  // --- weights --------------------------------------------------------------
  SimEnv wenv(std::make_shared<UniformLatency>(ms(1), ms(6)), 1);
  std::vector<std::unique_ptr<ReassignNode>> wnodes;
  for (std::uint32_t i = 0; i < n; ++i) {
    wnodes.push_back(std::make_unique<ReassignNode>(wenv, i, cfg));
    wenv.register_process(i, wnodes.back().get());
  }
  wenv.start();
  std::vector<bool> weight_ok;
  for (const Op& op : ops) {
    bool done = false;
    wnodes[op.src]->transfer(op.dst, op.amount,
                             [&](const TransferOutcome& o) {
                               weight_ok.push_back(o.effective);
                               done = true;
                             });
    wenv.run_until_pred([&] { return done; }, seconds(60));
    wenv.run_to_quiescence();
  }

  // --- comparison -----------------------------------------------------------
  int both = 0, asset_only = 0, weight_only = 0, neither = 0;
  int floor_explained = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (asset_ok[i] && weight_ok[i]) ++both;
    if (asset_ok[i] && !weight_ok[i]) ++asset_only;
    if (!asset_ok[i] && weight_ok[i]) ++weight_only;
    if (!asset_ok[i] && !weight_ok[i]) ++neither;
  }
  // Every asset-only acceptance must be explained by the floor: the
  // source's weight would have dropped to <= floor.
  (void)floor_explained;

  Table table({"outcome", "count"});
  table.add_row({"accepted by both", std::to_string(both)});
  table.add_row({"accepted by assets only (floor-blocked)",
                 std::to_string(asset_only)});
  table.add_row({"accepted by weights only", std::to_string(weight_only)});
  table.add_row({"rejected by both", std::to_string(neither)});
  table.print();

  Weight min_balance(99), min_weight(99);
  for (std::uint32_t s = 0; s < n; ++s) {
    min_balance = std::min(min_balance, anodes[0]->balance_of(s));
    min_weight = std::min(min_weight, wnodes[0]->weight_of(s));
  }
  bench::note("\nminimum final balance (assets):  " + min_balance.str() +
              "   (may legally reach 0)");
  bench::note("minimum final weight  (weights): " + min_weight.str() +
              "   (must stay > floor = " + cfg.floor().str() + ")");
  bench::note(
      "\nPaper claim check (Section VIII): the two problems share the "
      "ownership discipline (only the owner spends), so the asset service "
      "accepts a superset of the weight service's transfers; the gap is "
      "exactly the transfers that would cross the Integrity floor — the "
      "condition on the *distribution* that asset transfer does not "
      "have. 'weights only' must be 0.");
}

}  // namespace
}  // namespace wrs

int main() {
  wrs::run();
  return 0;
}
