// EXP-RT1: runtime hot-path overhead — what does one message cost?
//
// Measures the enqueue→deliver path of the runtimes with the protocol
// stripped away: a sender fires small messages at a sink process and we
// report wall-clock ns per delivered message plus heap allocations per
// message, counted by a global operator new hook (this binary only).
// Three rows:
//
//   threads/spsc   one sender thread -> one mailbox (the EXP-SH3 shape)
//   threads/mpsc4  four sender threads -> one mailbox (contended: what
//                  the old global-mutex send path serialized)
//   sim/spsc       the discrete-event simulator as the reference point
//   socket/spsc    SocketEnv with loopback_self: every message is arena-
//                  encoded, crosses the kernel over TCP loopback, and is
//                  pool-decoded — the full real-transport path
//   pool/churn     make_msg<T> construct+destroy round trips (the slab
//                  pool's thread-local cache in isolation)
//   mpsc/push4     four producers pushing inline Tasks through one
//                  MpscRing while the consumer drains (the raw mailbox)
//
// The interesting gate is allocs_per_msg == 0 on the thread AND socket
// runtimes in steady state: routing is a lock-free snapshot, traffic
// counters are pre-interned ledger slots, the delivery closure fits in
// Task's inline buffer, the mailbox ring never shrinks, messages come
// from the slab pool, and the wire path encodes into recycled arena
// chunks — so after warm-up, no message touches the allocator. CI
// enforces that plus an ns/msg regression bound against the committed
// baseline (and --gate-spsc-ns bounds threads/spsc absolutely).
//
// Senders pace themselves (bounded backlog, wait for the sink to catch
// up) so queues plateau during warm-up and the measured window exercises
// the steady state, not queue growth.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "monitor/adaptive_node.h"
#include "net/socket_addr.h"
#include "runtime/latency_model.h"
#include "runtime/mpsc_queue.h"
#include "runtime/msg_pool.h"
#include "runtime/sim_env.h"
#include "runtime/socket_env.h"
#include "runtime/thread_env.h"

namespace {

// --- counting allocator hook -----------------------------------------------
// Global operator new/delete replacements: every heap allocation in the
// process routes through here. Counting is gated so setup/teardown noise
// (thread spawn, container warm-up) is excluded from the measured window.

std::atomic<bool> g_count_allocs{false};
std::atomic<std::int64_t> g_allocs{0};

void* counted_alloc(std::size_t n) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc_aligned(std::size_t n, std::size_t align) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     n == 0 ? align : n) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace wrs::bench {
namespace {

struct Ping : MessageBase<Ping> {
  std::string type_name() const override { return "PING"; }
  std::size_t wire_size() const override { return kHeaderBytes; }
};

struct Sink : Process {
  std::atomic<std::uint64_t> delivered{0};
  void on_message(ProcessId, const Message&) override {
    delivered.fetch_add(1, std::memory_order_relaxed);
  }
};

constexpr ProcessId kServer = 0;
constexpr std::uint64_t kWarmupMsgs = 20'000;
// Senders stall once this many messages are in flight, so the mailbox
// ring's capacity plateaus during warm-up and the measured steady state
// never grows it again.
constexpr std::uint64_t kMaxBacklog = 512;

struct Measurement {
  double ns_per_msg = 0;
  double allocs_per_msg = 0;
  double wall_ms = 0;
  std::uint64_t msgs = 0;
};

/// Paced multi-threaded fire-hose at one ThreadEnv mailbox. Sender
/// threads are spawned (and the deployment warmed) with counting OFF;
/// only the steady-state window is measured.
Measurement run_threads(unsigned senders, std::uint64_t msgs) {
  ThreadEnv env;
  Sink sink;
  env.register_process(kServer, &sink);
  env.start();

  // Unpaced prefill: drive the mailbox ring past any backlog the paced
  // senders can reach (pacing is check-then-send, so `senders` threads
  // can overshoot kMaxBacklog by senders-1), guaranteeing the ring never
  // grows inside the measured window.
  const std::uint64_t prefill = 2 * kMaxBacklog;
  {
    MsgPtr warm = std::make_shared<Ping>();
    for (std::uint64_t i = 0; i < prefill; ++i) {
      env.send(client_id(0), kServer, warm);
    }
    while (sink.delivered.load(std::memory_order_acquire) < prefill) {
      std::this_thread::yield();
    }
  }

  std::atomic<std::uint64_t> sent{prefill};
  std::atomic<int> phase{0};  // 0 = warmup, 1 = measure, 2 = done
  const std::uint64_t warm_quota = kWarmupMsgs / senders;
  const std::uint64_t quota = msgs / senders;
  const std::uint64_t warm_total = prefill + warm_quota * senders;
  const std::uint64_t total = quota * senders;

  auto pump = [&](ProcessId self, const MsgPtr& msg, std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      while (sent.load(std::memory_order_relaxed) -
                 sink.delivered.load(std::memory_order_relaxed) >=
             kMaxBacklog) {
        std::this_thread::yield();
      }
      env.send(self, kServer, msg);
      sent.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> pumps;
  pumps.reserve(senders);
  for (unsigned s = 0; s < senders; ++s) {
    pumps.emplace_back([&, s] {
      const ProcessId self = client_id(s);
      // One message reused for every send (the runtimes share MsgPtrs
      // zero-copy); created here so the measured window allocates nothing.
      MsgPtr msg = std::make_shared<Ping>();
      pump(self, msg, warm_quota);
      while (phase.load(std::memory_order_acquire) < 1) {
        std::this_thread::yield();
      }
      pump(self, msg, quota);
    });
  }

  while (sink.delivered.load(std::memory_order_acquire) < warm_total) {
    std::this_thread::yield();
  }

  g_allocs.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_release);
  auto t0 = std::chrono::steady_clock::now();
  phase.store(1, std::memory_order_release);
  while (sink.delivered.load(std::memory_order_acquire) < warm_total + total) {
    std::this_thread::yield();
  }
  auto t1 = std::chrono::steady_clock::now();
  g_count_allocs.store(false, std::memory_order_release);

  for (std::thread& t : pumps) t.join();
  env.stop();

  Measurement m;
  m.msgs = total;
  m.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  m.ns_per_msg = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                 static_cast<double>(total);
  m.allocs_per_msg = static_cast<double>(g_allocs.load()) /
                     static_cast<double>(total);
  return m;
}

/// The simulator as the single-threaded reference: same pacing (chunks
/// bounded by kMaxBacklog, drained between chunks), wall clock over the
/// send+drain loop.
Measurement run_sim(std::uint64_t msgs) {
  auto env = SimEnv(std::make_shared<ConstantLatency>(us(10)), 1);
  Sink sink;
  env.register_process(kServer, &sink);
  env.start();
  env.run_to_quiescence();

  const ProcessId self = client_id(0);
  MsgPtr msg = std::make_shared<Ping>();
  auto burst = [&](std::uint64_t n) {
    std::uint64_t done = 0;
    while (done < n) {
      std::uint64_t chunk = std::min<std::uint64_t>(kMaxBacklog, n - done);
      for (std::uint64_t i = 0; i < chunk; ++i) env.send(self, kServer, msg);
      env.run_to_quiescence();
      done += chunk;
    }
  };

  burst(kWarmupMsgs);

  g_allocs.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_release);
  auto t0 = std::chrono::steady_clock::now();
  burst(msgs);
  auto t1 = std::chrono::steady_clock::now();
  g_count_allocs.store(false, std::memory_order_release);

  Measurement m;
  m.msgs = msgs;
  m.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  m.ns_per_msg = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                 static_cast<double>(msgs);
  m.allocs_per_msg =
      static_cast<double>(g_allocs.load()) / static_cast<double>(msgs);
  return m;
}

/// SocketEnv loopback: sends are arena-encoded, cross the kernel over a
/// real TCP connection to our own listener, and are pool-decoded on the
/// loop thread. Same pacing as run_threads; the gate is that the whole
/// wire round trip — encode, enqueue, sendmsg, recv, decode, deliver —
/// stays allocation-free once the arena chunk pool and slab pool are
/// warm.
Measurement run_socket(std::uint64_t msgs) {
  SocketEnv::Options opts;
  opts.listen = net::SocketAddr::parse("tcp:127.0.0.1:0");
  opts.loopback_self = true;
  SocketEnv env(opts);
  Sink sink;
  env.register_process(kServer, &sink);
  env.start();

  const ProcessId self = client_id(0);
  // PingMsg instead of the bench-local Ping: the wire codec only knows
  // protocol types. One pooled message reused for every send.
  MsgPtr msg = make_msg<PingMsg>(0);

  auto pump = [&](std::uint64_t sent_before, std::uint64_t n) {
    std::uint64_t sent = sent_before;
    for (std::uint64_t i = 0; i < n; ++i) {
      while (sent - sink.delivered.load(std::memory_order_relaxed) >=
             kMaxBacklog) {
        std::this_thread::yield();
      }
      env.send(self, kServer, msg);
      ++sent;
    }
    while (sink.delivered.load(std::memory_order_acquire) < sent) {
      std::this_thread::yield();
    }
  };

  pump(0, kWarmupMsgs);

  g_allocs.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_release);
  auto t0 = std::chrono::steady_clock::now();
  pump(kWarmupMsgs, msgs);
  auto t1 = std::chrono::steady_clock::now();
  g_count_allocs.store(false, std::memory_order_release);

  env.stop();

  Measurement m;
  m.msgs = msgs;
  m.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  m.ns_per_msg = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                 static_cast<double>(msgs);
  m.allocs_per_msg =
      static_cast<double>(g_allocs.load()) / static_cast<double>(msgs);
  return m;
}

/// Slab-pool churn: make_msg construct + destroy round trips on one
/// thread. After warm-up every block comes from (and returns to) the
/// thread-local cache — no lock, no atomics, no allocator.
Measurement run_pool(std::uint64_t ops) {
  for (std::uint64_t i = 0; i < kWarmupMsgs; ++i) {
    MsgPtr m = make_msg<PingMsg>(static_cast<TimeNs>(i));
    (void)m;
  }

  g_allocs.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_release);
  auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    MsgPtr m = make_msg<PingMsg>(static_cast<TimeNs>(i));
    (void)m;
  }
  auto t1 = std::chrono::steady_clock::now();
  g_count_allocs.store(false, std::memory_order_release);

  Measurement m;
  m.msgs = ops;
  m.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  m.ns_per_msg = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                 static_cast<double>(ops);
  m.allocs_per_msg =
      static_cast<double>(g_allocs.load()) / static_cast<double>(ops);
  return m;
}

/// Raw mailbox ring: `producers` threads push inline no-op Tasks through
/// one MpscRing while the consumer drains. try_push spins on full (the
/// ThreadEnv overflow path is measured end-to-end by threads/mpsc4; this
/// row isolates the ring itself).
Measurement run_mpsc(unsigned producers, std::uint64_t ops) {
  MpscRing<Task> ring(1024);
  const std::uint64_t quota = ops / producers;
  const std::uint64_t total = quota * producers;
  std::atomic<int> phase{0};

  std::vector<std::thread> pumps;
  pumps.reserve(producers);
  for (unsigned p = 0; p < producers; ++p) {
    pumps.emplace_back([&] {
      while (phase.load(std::memory_order_acquire) < 1) {
        std::this_thread::yield();
      }
      for (std::uint64_t i = 0; i < quota; ++i) {
        Task t([] {});
        while (!ring.try_push(std::move(t))) {
          std::this_thread::yield();
        }
      }
    });
  }

  g_allocs.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_release);
  auto t0 = std::chrono::steady_clock::now();
  phase.store(1, std::memory_order_release);
  std::uint64_t popped = 0;
  Task t;
  while (popped < total) {
    if (ring.try_pop(t)) {
      ++popped;
    } else {
      std::this_thread::yield();
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  g_count_allocs.store(false, std::memory_order_release);

  for (std::thread& th : pumps) th.join();

  Measurement m;
  m.msgs = total;
  m.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  m.ns_per_msg = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                 static_cast<double>(total);
  m.allocs_per_msg =
      static_cast<double>(g_allocs.load()) / static_cast<double>(total);
  return m;
}

int run(int argc, char** argv) {
  std::uint64_t msgs = 200'000;
  double gate_spsc_ns = 0;  // 0 = no absolute bound
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--msgs") == 0 && i + 1 < argc) {
      msgs = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--gate-spsc-ns") == 0 && i + 1 < argc) {
      gate_spsc_ns = std::strtod(argv[++i], nullptr);
    }
  }

  banner("EXP-RT1", "runtime enqueue→deliver overhead (ns/msg, allocs/msg)");
  note("Counting allocator hook active in the measured window only;");
  note("warm-up (" + std::to_string(kWarmupMsgs) +
       " msgs) grows rings/queues to steady state first.\n");

  struct NamedRow {
    const char* runtime;
    const char* mode;
    Measurement m;
  };
  std::vector<NamedRow> rows;
  rows.push_back({"threads", "spsc", run_threads(1, msgs)});
  rows.push_back({"threads", "mpsc4", run_threads(4, msgs)});
  rows.push_back({"sim", "spsc", run_sim(msgs)});
#ifdef __linux__
  rows.push_back({"socket", "spsc", run_socket(msgs)});
#endif
  rows.push_back({"pool", "churn", run_pool(msgs)});
  rows.push_back({"mpsc", "push4", run_mpsc(4, msgs)});

  Table table({"runtime", "mode", "msgs", "ns/msg", "allocs/msg", "wall ms"});
  for (const NamedRow& r : rows) {
    table.add_row({r.runtime, r.mode, std::to_string(r.m.msgs),
                   Table::fmt(r.m.ns_per_msg, 1),
                   Table::fmt(r.m.allocs_per_msg, 4),
                   Table::fmt(r.m.wall_ms, 1)});
  }
  table.print();

  const std::string path = json_path(argc, argv);
  if (!path.empty()) {
    JsonReport report("EXP-RT1 runtime overhead");
    report.seed(1);
    for (const NamedRow& r : rows) {
      report.row()
          .field("runtime", std::string(r.runtime))
          .field("mode", std::string(r.mode))
          .field("msgs", static_cast<double>(r.m.msgs))
          .field("ns_per_msg", r.m.ns_per_msg)
          .field("allocs_per_msg", r.m.allocs_per_msg)
          .field("wall_ms", r.m.wall_ms);
    }
    if (!report.write(path)) return 1;
  }

  // Self-check (CI re-gates from the JSON): the thread runtime, socket
  // runtime, message pool, and raw mailbox must all be allocation-free
  // per message in steady state; --gate-spsc-ns bounds threads/spsc
  // absolutely against the committed baseline.
  bool ok = true;
  for (const NamedRow& r : rows) {
    const std::string rt = r.runtime;
    if (rt != "sim" && r.m.allocs_per_msg != 0.0) {
      std::cerr << "[gate] FAIL: " << r.runtime << "/" << r.mode << " made "
                << r.m.allocs_per_msg << " allocs/msg (want 0)\n";
      ok = false;
    }
    if (gate_spsc_ns > 0 && rt == "threads" &&
        std::string(r.mode) == "spsc" && r.m.ns_per_msg > gate_spsc_ns) {
      std::cerr << "[gate] FAIL: threads/spsc " << r.m.ns_per_msg
                << " ns/msg exceeds bound " << gate_spsc_ns << "\n";
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace wrs::bench

int main(int argc, char** argv) { return wrs::bench::run(argc, argv); }
