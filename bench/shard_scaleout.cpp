// EXP-SH1/SH2: sharded keyspace scale-out.
//
// Sweeps 1 -> 8 shards at FIXED per-shard cluster size (n=3, f=1) under a
// fixed aggregate offered load, on both runtimes. Every storage server
// models a serial per-request service time (Cluster::Builder::
// service_time, an M/D/1-style busy-until queue — think SSD access or a
// CPU-bound storage engine), so one shard has a finite capacity of
// roughly (1/service_time)/2 ops/s: each op costs every group server one
// R and one W request. Adding shards multiplies that capacity — the
// measured near-linear aggregate-throughput scaling is the system's
// behavior against the modeled per-node bottleneck, independent of the
// benchmarking host's core count.
//
// Reported per (runtime, shard count):
//   * aggregate row — completed ops, achieved ops/s, shed arrivals,
//     p50/p95/p99 latency, total msgs/bytes, speedup vs the 1-shard run;
//   * one row per shard — ops routed there, per-shard p50/p95, and the
//     shard's msgs/bytes from the runtime's per-shard traffic counters.
//
// EXP-SH2 repeats the 4-shard sim point with Zipfian key popularity
// (theta = 0.99) to show skewed-load imbalance across shards.
//
//   shard_scaleout [--json <path>] [--ops <per-client arrivals>]
//                  [--runtime sim|threads|both] [--shards 1,2,4,8]
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"

namespace wrs::bench {
namespace {

constexpr std::uint64_t kSeed = 20260727;
constexpr std::uint32_t kPerShardN = 3;
constexpr std::uint32_t kPerShardF = 1;
constexpr std::uint32_t kClients = 4;
constexpr TimeNs kServiceTime = ms(1);
constexpr double kOfferedOpsPerSec = 4000;  // aggregate, across clients

struct SweepPoint {
  std::uint32_t shards = 1;
  double ops_per_sec = 0;
  std::size_t completed = 0;
};

std::string runtime_name(Runtime rt) {
  return rt == Runtime::kSim ? "sim" : "threads";
}

/// One deployment at `shards` groups; returns the achieved aggregate
/// throughput and appends its rows to `report`.
SweepPoint run_point(Runtime rt, std::uint32_t shards, std::size_t ops,
                     double zipf_theta, JsonReport& report) {
  WorkloadParams wp;
  wp.num_ops = ops;
  wp.read_ratio = 0.5;
  wp.value_size = 16;
  wp.num_keys = 512;
  wp.zipf_theta = zipf_theta;
  wp.target_ops_per_sec = kOfferedOpsPerSec / kClients;
  wp.max_in_flight = 32;
  wp.seed = kSeed;

  ClusterBuilder b = Cluster::builder()
                         .servers(kPerShardN)
                         .faults(kPerShardF)
                         .shards(shards)
                         .clients(kClients)
                         .workload(wp)
                         .service_time(kServiceTime)
                         .runtime(rt)
                         .seed(kSeed);
  if (rt == Runtime::kSim) {
    b.uniform_latency(us(100), us(500));
  }
  Cluster c = b.build();

  TimeNs t0 = c.now();
  for (std::uint32_t k = 0; k < kClients; ++k) {
    c.workload_done(k).get();
  }
  TimeNs t1 = c.now();
  c.quiesce(seconds(60));

  SweepPoint point;
  point.shards = shards;
  Histogram latency;
  std::size_t shed = 0;
  double sum_client_rate = 0;
  std::vector<std::size_t> shard_ops(shards, 0);
  std::vector<Histogram> shard_latency(shards);
  for (std::uint32_t k = 0; k < kClients; ++k) {
    WorkloadClient& w = c.workload(k);
    point.completed += w.completed();
    shed += w.shed();
    sum_client_rate += w.achieved_ops_per_sec();
    latency.merge(w.op_latency());
    for (ShardId g = 0; g < shards; ++g) {
      shard_ops[g] += w.shard_completed(g);
      shard_latency[g].merge(w.shard_latency(g));
    }
  }
  point.ops_per_sec = t1 > t0 ? static_cast<double>(point.completed) * 1e9 /
                                    static_cast<double>(t1 - t0)
                              : 0;

  for (ShardId g = 0; g < shards; ++g) {
    const Counters& t = c.shard_traffic(g);
    report.shard_row(g)
        .field("runtime", runtime_name(rt))
        .field("shards", static_cast<double>(shards))
        .field("zipf_theta", zipf_theta)
        .field("ops_completed", static_cast<double>(shard_ops[g]))
        .field("p50_ms",
               shard_latency[g].empty()
                   ? 0.0
                   : shard_latency[g].percentile(50) / 1e6)
        .field("p95_ms",
               shard_latency[g].empty()
                   ? 0.0
                   : shard_latency[g].percentile(95) / 1e6)
        .counters(t);
  }

  // The aggregate row is opened LAST so the caller can append
  // cross-point fields (the speedup) to it.
  report.shard_row(-1)
      .field("runtime", runtime_name(rt))
      .field("shards", static_cast<double>(shards))
      .field("servers_per_shard", static_cast<double>(kPerShardN))
      .field("clients", static_cast<double>(kClients))
      .field("service_time_ms", to_ms(kServiceTime))
      .field("offered_ops_per_sec", kOfferedOpsPerSec)
      .field("zipf_theta", zipf_theta)
      .field("ops_completed", static_cast<double>(point.completed))
      .field("ops_shed", static_cast<double>(shed))
      .field("ops_per_sec", point.ops_per_sec)
      .field("sum_client_ops_per_sec", sum_client_rate)
      .field("p50_ms", latency.percentile(50) / 1e6)
      .field("p95_ms", latency.percentile(95) / 1e6)
      .field("p99_ms", latency.percentile(99) / 1e6)
      .field("msgs", static_cast<double>(c.traffic().get("msgs")))
      .field("bytes", static_cast<double>(c.traffic().get("bytes")));
  return point;
}

void sweep(Runtime rt, const std::vector<std::uint32_t>& shard_counts,
           std::size_t ops, JsonReport& report, Table& table) {
  double base = 0;
  for (std::uint32_t shards : shard_counts) {
    SweepPoint p = run_point(rt, shards, ops, /*zipf_theta=*/0, report);
    if (base <= 0) base = p.ops_per_sec;
    double speedup = base > 0 ? p.ops_per_sec / base : 0;
    // Lands on the aggregate ("all") row, which run_point opened last.
    report.field("speedup_vs_first", speedup);
    table.add_row({runtime_name(rt), std::to_string(shards),
                   std::to_string(p.completed), Table::fmt(p.ops_per_sec),
                   Table::fmt(speedup)});
  }
}

}  // namespace
}  // namespace wrs::bench

int main(int argc, char** argv) {
  using namespace wrs;
  using namespace wrs::bench;

  std::string json = json_path(argc, argv);
  std::size_t ops = 2000;
  std::string runtime = "both";
  std::vector<std::uint32_t> shard_counts = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
      ops = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--runtime") == 0 && i + 1 < argc) {
      runtime = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shard_counts.clear();
      std::stringstream ss(argv[++i]);
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        shard_counts.push_back(
            static_cast<std::uint32_t>(std::strtoul(tok.c_str(), nullptr, 10)));
      }
    }
  }

  banner("EXP-SH1", "sharded keyspace scale-out (fixed per-shard size n=" +
                        std::to_string(kPerShardN) + ", service time " +
                        std::to_string(to_ms(kServiceTime)) + "ms/request)");
  note("offered load " + Table::fmt(kOfferedOpsPerSec) +
       " ops/s across " + std::to_string(kClients) +
       " open-loop clients; capacity ~= shards * (1/service_time)/2");

  Table table({"runtime", "shards", "ops", "ops/s", "speedup"});
  JsonReport scaleout("EXP-SH1 shard scale-out");
  scaleout.seed(kSeed);
  if (runtime == "sim" || runtime == "both") {
    sweep(Runtime::kSim, shard_counts, ops, scaleout, table);
  }
  if (runtime == "threads" || runtime == "both") {
    sweep(Runtime::kThread, shard_counts, ops, scaleout, table);
  }
  table.print();

  banner("EXP-SH2", "zipfian key popularity across shards (theta=0.99)");
  JsonReport zipf("EXP-SH2 zipfian shard skew");
  zipf.seed(kSeed);
  {
    Table zt({"shards", "zipf", "ops", "ops/s"});
    SweepPoint p =
        run_point(Runtime::kSim, 4, ops, /*zipf_theta=*/0.99, zipf);
    zt.add_row({"4", "0.99", std::to_string(p.completed),
                Table::fmt(p.ops_per_sec)});
    zt.print();
    note("per-shard ops in the JSON rows show the skew (hottest keys "
         "concentrate on their shards)");
  }

  if (!json.empty()) {
    bool ok = scaleout.write(json);
    ok = zipf.write(json) && ok;
    return ok ? 0 : 1;
  }
  return 0;
}
