// EXP-SH1/SH2: sharded keyspace scale-out. EXP-SH3: batched wire
// protocol.
//
// EXP-SH1 sweeps 1 -> 8 shards at FIXED per-shard cluster size (n=3,
// f=1) under a fixed aggregate offered load, on both runtimes. Every
// storage server models a serial per-request service time
// (Cluster::Builder::service_time, an M/D/1-style busy-until queue —
// think SSD access or a CPU-bound storage engine), so one shard has a
// finite capacity of roughly (1/service_time)/2 ops/s: each op costs
// every group server one R and one W request. Adding shards multiplies
// that capacity — the measured near-linear aggregate-throughput scaling
// is the system's behavior against the modeled per-node bottleneck,
// independent of the benchmarking host's core count.
//
// Reported per (runtime, shard count):
//   * aggregate row — completed ops, achieved ops/s, shed arrivals,
//     p50/p95/p99 latency (plus coordinated-omission-corrected
//     percentiles from intended-start times), total msgs/bytes,
//     msgs/op, speedup vs the 1-shard run;
//   * one row per shard — ops routed there, per-shard p50/p95, and the
//     shard's msgs/bytes from the runtime's per-shard traffic counters.
//
// EXP-SH2 repeats the 4-shard sim point with Zipfian key popularity
// (theta = 0.99) to show skewed-load imbalance across shards.
//
// EXP-SH3 sweeps the batched wire protocol's window (--batch, default
// 1,8) at 2 shards under a lighter service time (0.1ms, so the point is
// offered-load- rather than capacity-bound and frames genuinely
// coalesce): batching(w, 2ms) must cut msgs/op by ~w while atomicity,
// throughput, and the modeled per-frame CPU stay unchanged. CI gates on
// the window-8/window-1 msgs-per-op ratio (<= 0.5) from these rows.
//
// EXP-SNAP measures cross-shard atomic snapshots at 4 shards. The quiet
// point issues sequential ClientHandle::snapshot() cuts against a
// written keyspace — every cut must be a clean double collect (exactly
// 2 rounds, no fallback), which pins the per-cut message budget. The
// mixed point races cuts against the open-loop write workload on the
// same keys (WorkloadParams::snapshot_every_ops) and reports realized
// rounds/cut, fenced-fallback rate, and cut latency. CI gates quiet
// rounds == 2 / fallbacks == 0 / msgs-per-cut, and mixed liveness
// (every issued cut resolves).
//
//   shard_scaleout [--json <path>] [--ops <per-client arrivals>]
//                  [--runtime sim|threads|both] [--shards 1,2,4,8]
//                  [--batch 1,8]
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"

namespace wrs::bench {
namespace {

constexpr std::uint64_t kSeed = 20260727;
constexpr std::uint32_t kPerShardN = 3;
constexpr std::uint32_t kPerShardF = 1;
constexpr std::uint32_t kClients = 4;
constexpr TimeNs kServiceTime = ms(1);
constexpr double kOfferedOpsPerSec = 4000;  // aggregate, across clients

// EXP-SH3: the batching point must not be capacity-bound (a saturated
// shard throttles the per-client frame rate and with it the coalescing
// opportunity), so it runs 2 shards at 0.1ms/request under 8000 ops/s
// aggregate — ~0.8 per-server utilization — with a 2ms batch window.
constexpr std::uint32_t kBatchShards = 2;
constexpr std::uint32_t kBatchClients = 2;
constexpr TimeNs kBatchServiceTime = us(100);
constexpr double kBatchOfferedOpsPerSec = 8000;
constexpr TimeNs kBatchDelay = ms(2);

/// One deployment's knobs (EXP-SH1/SH2 scale shards; EXP-SH3 scales the
/// batch window at fixed shards).
struct PointCfg {
  std::uint32_t shards = 1;
  std::size_t ops = 2000;  // per-client arrivals
  double zipf_theta = 0;
  std::uint32_t clients = kClients;
  double offered_ops_per_sec = kOfferedOpsPerSec;
  TimeNs service_time = kServiceTime;
  std::size_t max_in_flight = 32;
  std::uint32_t batch_window = 1;  // 1 = unbatched wire protocol
  TimeNs batch_delay = 0;
  std::size_t num_keys = 512;
  /// EXP-SH2R: pre-migrate the `pack_hot` hottest keys ("k0"..) onto
  /// shard 0 before measuring — the adversarial placement a hash map can
  /// stumble into (FNV anti-clusters consecutive small keys, so the
  /// natural map never concentrates the zipf head; a rebalancer's worst
  /// case has to be constructed).
  std::uint32_t pack_hot = 0;
  bool rebalance = false;  ///< run the skew-triggered rebalancer
  double read_ratio = 0.5;
  /// EXP-SH3R: one-round read fast path (skip the write-back when the
  /// phase-1 quorum unanimously reports the max tag).
  bool read_fast_path = false;
};

struct SweepPoint {
  std::uint32_t shards = 1;
  double ops_per_sec = 0;
  std::size_t completed = 0;
  double msgs_per_op = 0;
};

std::string runtime_name(Runtime rt) {
  return rt == Runtime::kSim ? "sim" : "threads";
}

/// One deployment; returns the achieved aggregate throughput and msgs/op
/// and appends its rows to `report`.
SweepPoint run_point(Runtime rt, const PointCfg& cfg, JsonReport& report) {
  WorkloadParams wp;
  wp.num_ops = cfg.ops;
  wp.read_ratio = cfg.read_ratio;
  wp.value_size = 16;
  wp.num_keys = cfg.num_keys;
  wp.zipf_theta = cfg.zipf_theta;
  wp.target_ops_per_sec = cfg.offered_ops_per_sec / cfg.clients;
  wp.max_in_flight = cfg.max_in_flight;
  wp.seed = kSeed;

  ClusterBuilder b = Cluster::builder()
                         .servers(kPerShardN)
                         .faults(kPerShardF)
                         .shards(cfg.shards)
                         .clients(cfg.clients)
                         .workload(wp)
                         .service_time(cfg.service_time)
                         .runtime(rt)
                         .seed(kSeed);
  if (cfg.batch_window > 1) b.batching(cfg.batch_window, cfg.batch_delay);
  if (cfg.read_fast_path) b.read_fast_path();
  if (cfg.rebalance) {
    // Calm controller: long windows with a real sample, settle between
    // rounds (the engine's in-flight guard), and a threshold above the
    // zipf head's indivisible share so it stops once spread.
    RebalanceParams rp;
    rp.period = ms(50);
    rp.skew_threshold = 1.5;
    rp.top_k = 4;
    rp.min_window_ops = 200;
    b.rebalance(rp);
  }
  if (rt == Runtime::kSim) {
    b.uniform_latency(us(100), us(500));
  }
  Cluster c = b.build();

  TimeNs t0 = c.now();
  // Adversarial hotspot: pack the zipf head onto shard 0 while the
  // workload ramps (the handoffs finish within the first few ms of a
  // multi-second run). Racing rebalancer attempts can refuse one — the
  // controller then owns that key's placement, which is the point.
  for (std::uint32_t i = 0; i < cfg.pack_hot; ++i) {
    c.migrate_key("k" + std::to_string(i), 0).get();
  }
  for (std::uint32_t k = 0; k < cfg.clients; ++k) {
    c.workload_done(k).get();
  }
  TimeNs t1 = c.now();
  // The periodic tick would keep the simulator from quiescing (same
  // convention as set_anti_entropy(0) for the anti-entropy timer).
  if (cfg.rebalance) c.rebalancer().stop();
  c.quiesce(seconds(60));

  SweepPoint point;
  point.shards = cfg.shards;
  Histogram latency;
  Histogram corrected;
  std::size_t shed = 0;
  double sum_client_rate = 0;
  std::uint64_t envelopes = 0, frames = 0;
  std::vector<std::size_t> shard_ops(cfg.shards, 0);
  std::vector<Histogram> shard_latency(cfg.shards);
  for (std::uint32_t k = 0; k < cfg.clients; ++k) {
    WorkloadClient& w = c.workload(k);
    point.completed += w.completed();
    shed += w.shed();
    sum_client_rate += w.achieved_ops_per_sec();
    latency.merge(w.op_latency());
    corrected.merge(w.corrected_op_latency());
    envelopes += w.router().batches_sent();
    frames += w.router().batched_frames();
    for (ShardId g = 0; g < cfg.shards; ++g) {
      shard_ops[g] += w.shard_completed(g);
      shard_latency[g].merge(w.shard_latency(g));
    }
  }
  point.ops_per_sec = t1 > t0 ? static_cast<double>(point.completed) * 1e9 /
                                    static_cast<double>(t1 - t0)
                              : 0;
  if (point.completed > 0) {
    point.msgs_per_op = static_cast<double>(c.traffic().get("msgs")) /
                        static_cast<double>(point.completed);
  }

  for (ShardId g = 0; g < cfg.shards; ++g) {
    const Counters& t = c.shard_traffic(g);
    report.shard_row(g)
        .field("runtime", runtime_name(rt))
        .field("shards", static_cast<double>(cfg.shards))
        .field("zipf_theta", cfg.zipf_theta)
        .field("batch_window", static_cast<double>(cfg.batch_window))
        .field("ops_completed", static_cast<double>(shard_ops[g]))
        .field("p50_ms",
               shard_latency[g].empty()
                   ? 0.0
                   : shard_latency[g].percentile(50) / 1e6)
        .field("p95_ms",
               shard_latency[g].empty()
                   ? 0.0
                   : shard_latency[g].percentile(95) / 1e6)
        .counters(t);
  }

  // The aggregate row is opened LAST so the caller can append
  // cross-point fields (the speedup) to it.
  report.shard_row(-1)
      .field("runtime", runtime_name(rt))
      .field("shards", static_cast<double>(cfg.shards))
      .field("servers_per_shard", static_cast<double>(kPerShardN))
      .field("clients", static_cast<double>(cfg.clients))
      .field("service_time_ms", to_ms(cfg.service_time))
      .field("offered_ops_per_sec", cfg.offered_ops_per_sec)
      .field("zipf_theta", cfg.zipf_theta)
      .field("batch_window", static_cast<double>(cfg.batch_window))
      .field("batch_delay_ms", to_ms(cfg.batch_delay))
      .field("batch_envelopes", static_cast<double>(envelopes))
      .field("batch_frames", static_cast<double>(frames))
      .field("ops_completed", static_cast<double>(point.completed))
      .field("ops_shed", static_cast<double>(shed))
      .field("ops_per_sec", point.ops_per_sec)
      .field("sum_client_ops_per_sec", sum_client_rate)
      .field("p50_ms", latency.percentile(50) / 1e6)
      .field("p95_ms", latency.percentile(95) / 1e6)
      .field("p99_ms", latency.percentile(99) / 1e6)
      .field("corrected_p50_ms", corrected.percentile(50) / 1e6)
      .field("corrected_p95_ms", corrected.percentile(95) / 1e6)
      .field("corrected_p99_ms", corrected.percentile(99) / 1e6)
      .field("msgs", static_cast<double>(c.traffic().get("msgs")))
      .field("bytes", static_cast<double>(c.traffic().get("bytes")))
      .field("num_keys", static_cast<double>(cfg.num_keys))
      .field("packed_hot_keys", static_cast<double>(cfg.pack_hot))
      .field("rebalance", cfg.rebalance ? 1.0 : 0.0)
      .field("read_ratio", cfg.read_ratio)
      .field("read_fast_path", cfg.read_fast_path ? 1.0 : 0.0)
      .field("fast_path_reads",
             static_cast<double>(c.traffic().get("reads.fast_path")));
  if (cfg.shards > 1) {
    MigrationStats mig = c.migration_stats();
    report.field("migrations_committed", static_cast<double>(mig.committed));
    report.field("map_epoch", static_cast<double>(mig.epoch));
  }
  if (cfg.rebalance) {
    RebalanceStats rbs = c.rebalance_stats();
    report.field("rebalance_rounds", static_cast<double>(rbs.rounds));
    report.field("rebalance_skewed", static_cast<double>(rbs.skewed));
    report.field("rebalance_moved", static_cast<double>(rbs.moved));
  }
  return point;
}

void sweep(Runtime rt, const std::vector<std::uint32_t>& shard_counts,
           std::size_t ops, JsonReport& report, Table& table) {
  double base = 0;
  for (std::uint32_t shards : shard_counts) {
    PointCfg cfg;
    cfg.shards = shards;
    cfg.ops = ops;
    SweepPoint p = run_point(rt, cfg, report);
    if (base <= 0) base = p.ops_per_sec;
    double speedup = base > 0 ? p.ops_per_sec / base : 0;
    // Lands on the aggregate ("all") row, which run_point opened last.
    report.field("speedup_vs_first", speedup);
    table.add_row({runtime_name(rt), std::to_string(shards),
                   std::to_string(p.completed), Table::fmt(p.ops_per_sec),
                   Table::fmt(speedup)});
  }
}

void batch_sweep(Runtime rt, const std::vector<std::uint32_t>& windows,
                 std::size_t ops, JsonReport& report, Table& table) {
  double base_msgs_per_op = 0;
  for (std::uint32_t window : windows) {
    PointCfg cfg;
    cfg.shards = kBatchShards;
    cfg.ops = ops;
    cfg.clients = kBatchClients;
    cfg.offered_ops_per_sec = kBatchOfferedOpsPerSec;
    cfg.service_time = kBatchServiceTime;
    cfg.max_in_flight = 64;
    cfg.batch_window = window;
    // The window-1 baseline runs genuinely unbatched; recording the
    // sweep's delay on its row would mislabel the artifact.
    cfg.batch_delay = window > 1 ? kBatchDelay : 0;
    SweepPoint p = run_point(rt, cfg, report);
    if (base_msgs_per_op <= 0) base_msgs_per_op = p.msgs_per_op;
    double reduction =
        p.msgs_per_op > 0 ? base_msgs_per_op / p.msgs_per_op : 0;
    report.field("msgs_per_op_reduction_vs_first", reduction);
    table.add_row({runtime_name(rt), std::to_string(window),
                   std::to_string(p.completed), Table::fmt(p.ops_per_sec),
                   Table::fmt(p.msgs_per_op), Table::fmt(reduction)});
  }
}

std::vector<std::uint32_t> parse_list(const char* arg) {
  std::vector<std::uint32_t> out;
  std::stringstream ss(arg);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    out.push_back(
        static_cast<std::uint32_t>(std::strtoul(tok.c_str(), nullptr, 10)));
  }
  return out;
}

}  // namespace
}  // namespace wrs::bench

int main(int argc, char** argv) {
  using namespace wrs;
  using namespace wrs::bench;

  std::string json = json_path(argc, argv);
  std::size_t ops = 2000;
  std::string runtime = "both";
  std::vector<std::uint32_t> shard_counts = {1, 2, 4, 8};
  std::vector<std::uint32_t> batch_windows = {1, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
      ops = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--runtime") == 0 && i + 1 < argc) {
      runtime = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shard_counts = parse_list(argv[++i]);
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      batch_windows = parse_list(argv[++i]);
    }
  }
  bool run_sim = runtime == "sim" || runtime == "both";
  bool run_threads = runtime == "threads" || runtime == "both";

  banner("EXP-SH1", "sharded keyspace scale-out (fixed per-shard size n=" +
                        std::to_string(kPerShardN) + ", service time " +
                        std::to_string(to_ms(kServiceTime)) + "ms/request)");
  note("offered load " + Table::fmt(kOfferedOpsPerSec) +
       " ops/s across " + std::to_string(kClients) +
       " open-loop clients; capacity ~= shards * (1/service_time)/2");

  Table table({"runtime", "shards", "ops", "ops/s", "speedup"});
  JsonReport scaleout("EXP-SH1 shard scale-out");
  scaleout.seed(kSeed);
  if (run_sim) sweep(Runtime::kSim, shard_counts, ops, scaleout, table);
  if (run_threads) sweep(Runtime::kThread, shard_counts, ops, scaleout, table);
  table.print();

  banner("EXP-SH2", "zipfian key popularity across shards (theta=0.99)");
  JsonReport zipf("EXP-SH2 zipfian shard skew");
  zipf.seed(kSeed);
  {
    Table zt({"shards", "zipf", "ops", "ops/s"});
    PointCfg cfg;
    cfg.shards = 4;
    cfg.ops = ops;
    cfg.zipf_theta = 0.99;
    SweepPoint p = run_point(Runtime::kSim, cfg, zipf);
    zt.add_row({"4", "0.99", std::to_string(p.completed),
                Table::fmt(p.ops_per_sec)});
    zt.print();
    note("per-shard ops in the JSON rows show the skew (hottest keys "
         "concentrate on their shards)");
  }

  banner("EXP-SH2R",
         "elastic resharding of an adversarial hotspot (4 shards, "
         "theta=0.99, 64 keys, zipf head packed onto one shard)");
  note("the 24 hottest keys (~4/5 of the zipf mass) are migrated onto "
       "shard 0 up front; the static point then holds the map fixed "
       "(hot-shard-bound), the rebalanced point lets the controller "
       "disperse them — CI gates rebalanced/static ops/s >= 2x");
  JsonReport resharded("EXP-SH2R rebalanced zipfian hotspot");
  resharded.seed(kSeed);
  {
    Table rbt({"mode", "ops", "ops/s", "moved", "speedup"});
    PointCfg cfg;
    cfg.shards = 4;
    // 8x the sweep's per-client arrivals: the controller's detect +
    // disperse ramp is a fixed ~300ms, so the measured average needs a
    // long post-rebalance tail to reflect the steady state.
    cfg.ops = ops * 8;
    cfg.zipf_theta = 0.99;
    cfg.num_keys = 64;
    cfg.pack_hot = 24;
    SweepPoint st = run_point(Runtime::kSim, cfg, resharded);
    resharded.field("speedup_rebalanced_vs_static", 1.0);
    cfg.rebalance = true;
    SweepPoint rb = run_point(Runtime::kSim, cfg, resharded);
    double speedup = st.ops_per_sec > 0 ? rb.ops_per_sec / st.ops_per_sec : 0;
    resharded.field("speedup_rebalanced_vs_static", speedup);
    rbt.add_row({"static", std::to_string(st.completed),
                 Table::fmt(st.ops_per_sec), "0", "1.00"});
    rbt.add_row({"rebalanced", std::to_string(rb.completed),
                 Table::fmt(rb.ops_per_sec), "-", Table::fmt(speedup)});
    rbt.print();
  }

  banner("EXP-SH3",
         "batched wire protocol (" + std::to_string(kBatchShards) +
             " shards, service time " + std::to_string(to_ms(kBatchServiceTime)) +
             "ms/request, batch delay " + std::to_string(to_ms(kBatchDelay)) +
             "ms)");
  note("same-shard phase broadcasts coalesce into BatchRequest envelopes; "
       "msgs/op should fall ~linearly with the realized batch size while "
       "throughput holds (per-frame M/D/1 service cost)");
  JsonReport batched("EXP-SH3 batched wire protocol");
  batched.seed(kSeed);
  {
    Table bt({"runtime", "batch", "ops", "ops/s", "msgs/op", "reduction"});
    if (run_sim) batch_sweep(Runtime::kSim, batch_windows, ops, batched, bt);
    if (run_threads) {
      batch_sweep(Runtime::kThread, batch_windows, ops, batched, bt);
    }
    bt.print();
  }

  banner("EXP-SH3R",
         "read-heavy one-round fast path (read ratio 0.9, unbatched)");
  note("when the phase-1 quorum unanimously reports the max tag the "
       "write-back round is provably redundant; skipping it should cut "
       "msgs/op toward ~half on reads without touching correctness");
  JsonReport readheavy("EXP-SH3R read fast path");
  readheavy.seed(kSeed);
  {
    Table rt({"runtime", "fastpath", "ops", "ops/s", "msgs/op", "p50 ms",
              "fp reads"});
    for (bool fp : {false, true}) {
      PointCfg cfg;
      cfg.shards = 1;
      cfg.ops = ops;
      cfg.read_ratio = 0.9;
      cfg.read_fast_path = fp;
      SweepPoint p = run_point(Runtime::kSim, cfg, readheavy);
      // The aggregate row (opened last by run_point) carries the p50 and
      // fast-path count; re-derive the table cells from the same source.
      rt.add_row({"sim", fp ? "on" : "off", std::to_string(p.completed),
                  Table::fmt(p.ops_per_sec), Table::fmt(p.msgs_per_op),
                  Table::fmt(readheavy.last_field("p50_ms"), 2),
                  Table::fmt(readheavy.last_field("fast_path_reads"), 0)});
    }
    rt.print();
  }

  banner("EXP-SNAP",
         "cross-shard atomic snapshots (4 shards, 8 keys/cut)");
  note("quiet: sequential snapshot() cuts over a written keyspace — a "
       "clean double collect is exactly 2 rounds and pins msgs/cut; "
       "mixed: cuts race the open-loop write workload on the same keys");
  JsonReport snapshots("EXP-SNAP atomic snapshots");
  snapshots.seed(kSeed);
  {
    constexpr std::uint32_t kSnapShards = 4;
    constexpr std::size_t kSnapKeysPerCut = 8;
    constexpr std::size_t kSnapKeyspace = 64;
    Table st({"mode", "cuts", "rounds/cut", "fallbacks", "msgs/cut",
              "p50 ms", "p99 ms"});

    {  // Quiet point: sequential cuts, nothing else in flight.
      constexpr std::size_t kQuietCuts = 32;
      ClusterBuilder b = Cluster::builder()
                             .servers(kPerShardN)
                             .faults(kPerShardF)
                             .shards(kSnapShards)
                             .clients(1)
                             .runtime(Runtime::kSim)
                             .seed(kSeed);
      b.uniform_latency(us(100), us(500));
      Cluster c = b.build();
      std::vector<std::pair<RegisterKey, Value>> puts;
      for (std::size_t i = 0; i < kSnapKeyspace; ++i) {
        puts.emplace_back("k" + std::to_string(i), "v" + std::to_string(i));
      }
      for (auto& aw : c.client(0).write_batch(std::move(puts))) aw.get();

      std::uint64_t msgs0 = c.traffic().get("msgs");
      Histogram lat;
      std::uint64_t rounds = 0;
      std::size_t fallbacks = 0;
      for (std::size_t i = 0; i < kQuietCuts; ++i) {
        // Rotate through the keyspace so cuts cross every shard.
        std::vector<RegisterKey> keys;
        for (std::size_t j = 0; j < kSnapKeysPerCut; ++j) {
          keys.push_back("k" + std::to_string((i * kSnapKeysPerCut + j) %
                                              kSnapKeyspace));
        }
        TimeNs t0 = c.now();
        ShardRouter::SnapshotResult r =
            c.client(0).snapshot(std::move(keys)).get();
        lat.add_time(c.now() - t0);
        rounds += r.rounds;
        if (r.used_fallback) ++fallbacks;
      }
      double msgs_per_cut =
          static_cast<double>(c.traffic().get("msgs") - msgs0) / kQuietCuts;
      double rounds_per_cut = static_cast<double>(rounds) / kQuietCuts;
      snapshots.row()
          .field("mode", std::string("quiet"))
          .field("runtime", std::string("sim"))
          .field("shards", static_cast<double>(kSnapShards))
          .field("keys_per_cut", static_cast<double>(kSnapKeysPerCut))
          .field("num_keys", static_cast<double>(kSnapKeyspace))
          .field("snapshots_issued", static_cast<double>(kQuietCuts))
          .field("snapshots_done", static_cast<double>(kQuietCuts))
          .field("fallbacks", static_cast<double>(fallbacks))
          .field("rounds_per_cut", rounds_per_cut)
          .field("msgs_per_cut", msgs_per_cut)
          .field("p50_ms", lat.percentile(50) / 1e6)
          .field("p95_ms", lat.percentile(95) / 1e6)
          .field("p99_ms", lat.percentile(99) / 1e6);
      st.add_row({"quiet", std::to_string(kQuietCuts),
                  Table::fmt(rounds_per_cut), std::to_string(fallbacks),
                  Table::fmt(msgs_per_cut), Table::fmt(lat.percentile(50) / 1e6),
                  Table::fmt(lat.percentile(99) / 1e6)});
    }

    {  // Mixed point: cuts race the open-loop write workload.
      WorkloadParams wp;
      wp.num_ops = ops;
      wp.read_ratio = 0.5;
      wp.value_size = 16;
      wp.num_keys = kSnapKeyspace;
      wp.target_ops_per_sec = kOfferedOpsPerSec / kClients;
      wp.max_in_flight = 32;
      wp.seed = kSeed;
      wp.snapshot_every_ops = 25;
      wp.snapshot_keys = kSnapKeysPerCut;
      ClusterBuilder b = Cluster::builder()
                             .servers(kPerShardN)
                             .faults(kPerShardF)
                             .shards(kSnapShards)
                             .clients(kClients)
                             .workload(wp)
                             .service_time(kServiceTime)
                             .runtime(Runtime::kSim)
                             .seed(kSeed);
      b.uniform_latency(us(100), us(500));
      Cluster c = b.build();
      for (std::uint32_t k = 0; k < kClients; ++k) {
        c.workload_done(k).get();
      }
      c.quiesce(seconds(60));
      std::size_t issued = 0, done = 0, fallbacks = 0, completed = 0;
      std::uint64_t rounds = 0;
      Histogram lat;
      for (std::uint32_t k = 0; k < kClients; ++k) {
        WorkloadClient& w = c.workload(k);
        issued += w.snapshots_issued();
        done += w.snapshots_done();
        fallbacks += w.snapshot_fallbacks();
        rounds += w.snapshot_rounds();
        completed += w.completed();
        lat.merge(w.snapshot_latency());
      }
      double rounds_per_cut =
          done > 0 ? static_cast<double>(rounds) / static_cast<double>(done)
                   : 0;
      snapshots.row()
          .field("mode", std::string("mixed"))
          .field("runtime", std::string("sim"))
          .field("shards", static_cast<double>(kSnapShards))
          .field("keys_per_cut", static_cast<double>(kSnapKeysPerCut))
          .field("num_keys", static_cast<double>(kSnapKeyspace))
          .field("offered_ops_per_sec", kOfferedOpsPerSec)
          .field("ops_completed", static_cast<double>(completed))
          .field("snapshots_issued", static_cast<double>(issued))
          .field("snapshots_done", static_cast<double>(done))
          .field("fallbacks", static_cast<double>(fallbacks))
          .field("rounds_per_cut", rounds_per_cut)
          .field("p50_ms", lat.percentile(50) / 1e6)
          .field("p95_ms", lat.percentile(95) / 1e6)
          .field("p99_ms", lat.percentile(99) / 1e6);
      st.add_row({"mixed", std::to_string(done), Table::fmt(rounds_per_cut),
                  std::to_string(fallbacks), "-",
                  Table::fmt(lat.percentile(50) / 1e6),
                  Table::fmt(lat.percentile(99) / 1e6)});
    }
    st.print();
  }

  if (!json.empty()) {
    bool ok = scaleout.write(json);
    ok = zipf.write(json) && ok;
    ok = resharded.write(json) && ok;
    ok = batched.write(json) && ok;
    ok = readheavy.write(json) && ok;
    ok = snapshots.write(json) && ok;
    return ok ? 0 : 1;
  }
  return 0;
}
