// EXP-C1 — Section VIII comparison with consensus-based reassignment
// (AWARE [10] / WHEAT [20] style): transfer latency under
//  (a) a quiet, well-behaved network,
//  (b) heavy-tailed asynchrony (no stable delays),
//  (c) proposer contention (every server reassigns at once).
//
// Expected shape: comparable under (a); under (b) and (c) the Paxos-
// sequenced baseline pays retry/backoff stalls (liveness needs partial
// synchrony), while the consensus-free protocol stays flat — the
// practical payoff of Theorem 5.
#include "bench_util.h"

#include "baselines/paxos_reassign.h"
#include "core/reassign_node.h"

namespace wrs {
namespace {

std::shared_ptr<LatencyModel> make_latency(const std::string& scenario) {
  if (scenario == "heavy-tail") {
    return std::make_shared<HeavyTailLatency>(ms(2), ms(6), 1.15,
                                              seconds(3));
  }
  return std::make_shared<UniformLatency>(ms(2), ms(10));
}

Histogram run_consensus_free(const std::string& scenario, bool contention,
                             std::uint64_t seed) {
  const std::uint32_t n = 5, f = 2;
  SystemConfig cfg = SystemConfig::uniform(n, f);
  SimEnv env(make_latency(scenario), seed);
  std::vector<std::unique_ptr<ReassignNode>> nodes;
  for (std::uint32_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<ReassignNode>(env, i, cfg));
    env.register_process(i, nodes.back().get());
  }
  env.start();
  Histogram lat;
  int done = 0, expected = 0;
  for (int round = 0; round < 20; ++round) {
    TimeNs when = round * ms(200);
    std::uint32_t first = contention ? 0 : (round % n);
    std::uint32_t count = contention ? n : 1;
    for (std::uint32_t k = 0; k < count; ++k) {
      std::uint32_t src = (first + k) % n;
      ++expected;
      env.schedule(src, when, [&, src] {
        if (nodes[src]->transfer_in_flight()) {
          ++done;  // skip: still busy from previous round
          return;
        }
        TimeNs start = env.now();
        nodes[src]->transfer((src + 1) % n, Weight(1, 200),
                             [&, start](const TransferOutcome&) {
                               lat.add(to_ms(env.now() - start));
                               ++done;
                             });
      });
    }
  }
  env.run_until_pred([&] { return done == expected; }, seconds(1200));
  return lat;
}

Histogram run_paxos(const std::string& scenario, bool contention,
                    std::uint64_t seed) {
  const std::uint32_t n = 5, f = 2;
  SystemConfig cfg = SystemConfig::uniform(n, f);
  SimEnv env(make_latency(scenario), seed);
  std::vector<std::unique_ptr<PaxosReassignNode>> nodes;
  for (std::uint32_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<PaxosReassignNode>(env, i, cfg, seed));
    env.register_process(i, nodes.back().get());
  }
  env.start();
  Histogram lat;
  int done = 0, expected = 0;
  for (int round = 0; round < 20; ++round) {
    TimeNs when = round * ms(200);
    std::uint32_t first = contention ? 0 : (round % n);
    std::uint32_t count = contention ? n : 1;
    for (std::uint32_t k = 0; k < count; ++k) {
      std::uint32_t src = (first + k) % n;
      ++expected;
      env.schedule(src, when, [&, src] {
        TimeNs start = env.now();
        nodes[src]->transfer((src + 1) % n, Weight(1, 200),
                             [&, start](const PaxosTransferOutcome&) {
                               lat.add(to_ms(env.now() - start));
                               ++done;
                             });
      });
    }
  }
  env.run_until_pred([&] { return done == expected; }, seconds(1200));
  return lat;
}

void run() {
  bench::banner("EXP-C1",
                "transfer latency: consensus-free (ours) vs Paxos-"
                "sequenced (n=5, f=2, 20 rounds)");
  Table table({"scenario", "protocol", "p50 (ms)", "p90 (ms)", "p99 (ms)",
               "max (ms)", "completed"});
  struct Scenario {
    std::string latency;
    bool contention;
    std::string label;
  };
  for (const Scenario& sc :
       {Scenario{"quiet", false, "quiet network"},
        Scenario{"heavy-tail", false, "heavy-tail asynchrony"},
        Scenario{"quiet", true, "all-server contention"},
        Scenario{"heavy-tail", true, "heavy-tail + contention"}}) {
    Histogram ours = run_consensus_free(sc.latency, sc.contention, 2024);
    Histogram paxos = run_paxos(sc.latency, sc.contention, 2024);
    auto row = [&](const std::string& proto, const Histogram& h) {
      table.add_row({sc.label, proto, Table::fmt(h.percentile(50)),
                     Table::fmt(h.percentile(90)),
                     Table::fmt(h.percentile(99)), Table::fmt(h.max()),
                     std::to_string(h.count())});
    };
    row("consensus-free (ours)", ours);
    row("paxos-sequenced", paxos);
  }
  table.print();
  bench::note(
      "\nPaper claim check: under a quiet network both are fast; under "
      "adversarial delay distributions and contention the consensus "
      "baseline's tail explodes (ballot races + backoff), while the "
      "consensus-free protocol keeps a flat ~2-delay profile — the "
      "practical content of implementing reassignment WITHOUT consensus "
      "(Theorem 5) in a model where consensus itself is impossible.");
}

}  // namespace
}  // namespace wrs

int main() {
  wrs::run();
  return 0;
}
