// EXP-NET1: sim-vs-real calibration of the socket runtime.
//
// Replays the EXP-SH3 scenario (2 shards x 3 servers, 100us modeled
// service time, open-loop offered load, batched and unbatched wire
// protocol) twice:
//
//  * REAL: two forked wrs-node server processes on loopback TCP, driven
//    by socket workload clients — wall-clock time, real serialization,
//    real kernel round trips; wire bytes/op measured from the frames
//    that actually crossed the socket.
//  * SIM:  the same deployment on the deterministic simulator, with a
//    latency model in the loopback range — the model's prediction.
//
// Methodology: the M/D/1 service-time model bounds per-shard capacity at
// 1/service_time on both substrates, and the offered rate sits below
// that bound, so predicted and achieved throughput should agree closely;
// latency percentiles differ by scheduling noise and the latency-model
// fit; bytes/op compares the codec's real encoded frames against the
// wire_size() estimates. The run FAILS (exit 1) if achieved throughput
// or bytes/op is off the prediction by more than 2x — the acceptance
// band CI gates on — and always records both sides plus the ratios in
// BENCH_socket_calibration.json.
#include "bench_util.h"

#ifdef __linux__
#include <memory>
#include <vector>

#include "api/await.h"
#include "deploy/node_runner.h"
#include "net/socket_addr.h"
#include "runtime/socket_env.h"
#include "shard/shard_map.h"
#endif

using namespace wrs;
using namespace wrs::bench;

namespace {

constexpr std::uint32_t kShards = 2;
constexpr std::uint32_t kPerShardN = 3;
constexpr std::uint32_t kPerShardF = 1;
constexpr std::uint32_t kClients = 2;
constexpr std::size_t kOpsPerClient = 1500;
constexpr double kOfferedOpsPerSec = 3000;  // well under 2 * 1/100us
constexpr TimeNs kServiceTime = us(100);
constexpr std::uint64_t kSeed = 7;

struct PhaseResult {
  double ops_per_sec = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double msgs_per_op = 0;
  double bytes_per_op = 0;
  std::size_t completed = 0;
};

WorkloadParams make_params() {
  WorkloadParams wp;
  wp.num_ops = kOpsPerClient;
  wp.read_ratio = 0.5;
  wp.value_size = 16;
  wp.num_keys = 512;
  wp.target_ops_per_sec = kOfferedOpsPerSec / kClients;
  wp.max_in_flight = 32;
  wp.seed = kSeed;
  return wp;
}

/// The simulator's prediction for one batch window.
PhaseResult run_sim(std::size_t batch_window) {
  ClusterBuilder b = Cluster::builder()
                         .servers(kPerShardN)
                         .faults(kPerShardF)
                         .shards(kShards)
                         .clients(kClients)
                         .workload(make_params())
                         .service_time(kServiceTime)
                         .runtime(Runtime::kSim)
                         // Loopback-range delays: tens of microseconds.
                         .uniform_latency(us(10), us(80))
                         .seed(kSeed);
  if (batch_window > 1) b.batching(batch_window, ms(1));
  Cluster c = b.build();

  TimeNs t0 = c.now();
  for (std::uint32_t k = 0; k < kClients; ++k) {
    c.workload_done(k).get();
  }
  TimeNs t1 = c.now();
  c.quiesce(seconds(60));

  PhaseResult r;
  Histogram lat;
  for (std::uint32_t k = 0; k < kClients; ++k) {
    r.completed += c.workload(k).completed();
    lat.merge(c.workload(k).op_latency());
  }
  r.ops_per_sec = t1 > t0 ? static_cast<double>(r.completed) * 1e9 /
                                static_cast<double>(t1 - t0)
                          : 0;
  r.p50_ms = lat.percentile(50) / 1e6;
  r.p95_ms = lat.percentile(95) / 1e6;
  r.p99_ms = lat.percentile(99) / 1e6;
  if (r.completed > 0) {
    r.msgs_per_op = static_cast<double>(c.traffic().get("msgs")) /
                    static_cast<double>(r.completed);
    r.bytes_per_op = static_cast<double>(c.traffic().get("bytes")) /
                     static_cast<double>(r.completed);
  }
  return r;
}

#ifdef __linux__

/// The same scenario against real forked server processes.
PhaseResult run_sockets(std::size_t batch_window,
                        const std::vector<deploy::SpawnedNode>& groups) {
  ShardMap map = ShardMap::uniform(kShards, kPerShardN, kPerShardF);
  SocketEnv::Options eo;
  eo.listen = net::SocketAddr::parse("tcp:127.0.0.1:0");
  eo.seed = kSeed;
  SocketEnv env(eo);
  for (std::uint32_t g = 0; g < kShards; ++g) {
    for (ProcessId s : map.servers(g)) {
      env.add_route(s, net::SocketAddr::parse(groups[g].addr));
    }
  }

  WorkloadParams wp = make_params();
  std::vector<std::unique_ptr<WorkloadClient>> clients;
  std::vector<Await<bool>> done;
  for (std::uint32_t k = 0; k < kClients; ++k) {
    auto c = std::make_unique<WorkloadClient>(env, client_id(k), map,
                                              AbdClient::Mode::kDynamic, wp);
    c->router().set_retry_interval(ms(100));
    if (batch_window > 1) c->router().set_batching(batch_window, ms(1));
    Await<bool> aw;
    c->set_on_done([aw] { aw.fulfill(true); });
    env.register_process(client_id(k), c.get());
    clients.push_back(std::move(c));
    done.push_back(aw);
  }

  TimeNs t0_wall = env.now();
  env.start();
  for (auto& aw : done) aw.get(seconds(300));
  TimeNs t1_wall = env.now();

  PhaseResult r;
  Histogram lat;
  for (std::uint32_t k = 0; k < kClients; ++k) {
    r.completed += clients[k]->completed();
    lat.merge(clients[k]->op_latency());
  }
  r.ops_per_sec = t1_wall > t0_wall
                      ? static_cast<double>(r.completed) * 1e9 /
                            static_cast<double>(t1_wall - t0_wall)
                      : 0;
  r.p50_ms = lat.percentile(50) / 1e6;
  r.p95_ms = lat.percentile(95) / 1e6;
  r.p99_ms = lat.percentile(99) / 1e6;
  if (r.completed > 0) {
    // Real wire traffic seen by this env: frames out plus frames in
    // (server replies), in actually-encoded bytes.
    double msgs = static_cast<double>(env.traffic().get("msgs") +
                                      env.traffic().get("msgs.in"));
    double bytes = static_cast<double>(env.traffic().get("bytes") +
                                       env.traffic().get("bytes.in"));
    r.msgs_per_op = msgs / static_cast<double>(r.completed);
    r.bytes_per_op = bytes / static_cast<double>(r.completed);
  }
  env.stop();
  return r;
}

#endif  // __linux__

void report_phase(JsonReport& report, const std::string& substrate,
                  std::size_t batch_window, const PhaseResult& r) {
  report.row()
      .field("substrate", substrate)
      .field("batch_window", static_cast<double>(batch_window))
      .field("shards", static_cast<double>(kShards))
      .field("servers_per_shard", static_cast<double>(kPerShardN))
      .field("service_time_ms", to_ms(kServiceTime))
      .field("offered_ops_per_sec", kOfferedOpsPerSec)
      .field("ops_completed", static_cast<double>(r.completed))
      .field("ops_per_sec", r.ops_per_sec)
      .field("p50_ms", r.p50_ms)
      .field("p95_ms", r.p95_ms)
      .field("p99_ms", r.p99_ms)
      .field("wire_msgs_per_op", r.msgs_per_op)
      .field("wire_bytes_per_op", r.bytes_per_op);
}

double ratio(double real, double predicted) {
  if (predicted <= 0) return 0;
  return real / predicted;
}

}  // namespace

int main() {
  banner("EXP-NET1", "socket runtime calibration vs simulator prediction");

#ifndef __linux__
  note("socket runtime requires Linux; recording sim prediction only");
  JsonReport report("EXP-NET1 socket calibration");
  report.seed(kSeed);
  report_phase(report, "sim", 1, run_sim(1));
  report.write("BENCH_socket_calibration.json");
  return 0;
#else
  // Fork every server process before anything in this process starts a
  // thread (the SocketEnvs and the sim phases come after).
  std::vector<deploy::SpawnedNode> groups;
  for (std::uint32_t g = 0; g < kShards; ++g) {
    deploy::NodeOptions opts;
    opts.shard = g;
    opts.num_shards = kShards;
    opts.servers_per_shard = kPerShardN;
    opts.faults = kPerShardF;
    opts.service_time = kServiceTime;
    opts.retry = ms(20);
    opts.seed = kSeed + g;
    groups.push_back(deploy::spawn_node_group(opts));
    note("shard " + std::to_string(g) + " -> " + groups.back().addr);
  }

  JsonReport report("EXP-NET1 socket calibration");
  report.seed(kSeed);
  Table table({"batch", "substrate", "ops/s", "p50 ms", "p95 ms", "p99 ms",
               "bytes/op"});
  bool within_band = true;

  for (std::size_t window : {std::size_t{1}, std::size_t{8}}) {
    PhaseResult real = run_sockets(window, groups);
    PhaseResult sim = run_sim(window);
    report_phase(report, "socket", window, real);
    report_phase(report, "sim", window, sim);

    double tput_ratio = ratio(real.ops_per_sec, sim.ops_per_sec);
    double bytes_ratio = ratio(real.bytes_per_op, sim.bytes_per_op);
    double p50_ratio = ratio(real.p50_ms, sim.p50_ms);
    report.row()
        .field("substrate", std::string("calibration"))
        .field("batch_window", static_cast<double>(window))
        .field("throughput_ratio", tput_ratio)
        .field("bytes_per_op_ratio", bytes_ratio)
        .field("p50_ratio", p50_ratio)
        .field("p99_ratio", ratio(real.p99_ms, sim.p99_ms));

    for (const auto& [name, r] :
         {std::pair<std::string, PhaseResult>{"socket", real},
          std::pair<std::string, PhaseResult>{"sim", sim}}) {
      table.add_row({std::to_string(window), name, Table::fmt(r.ops_per_sec),
                     Table::fmt(r.p50_ms), Table::fmt(r.p95_ms),
                     Table::fmt(r.p99_ms), Table::fmt(r.bytes_per_op)});
    }
    note("batch=" + std::to_string(window) +
         ": throughput ratio " + Table::fmt(tput_ratio) +
         ", bytes/op ratio " + Table::fmt(bytes_ratio) + ", p50 ratio " +
         Table::fmt(p50_ratio));

    // The acceptance band: real within 2x of predicted, both directions.
    if (tput_ratio < 0.5 || tput_ratio > 2.0 || bytes_ratio < 0.5 ||
        bytes_ratio > 2.0) {
      within_band = false;
    }
  }
  table.print();

  for (const auto& g : groups) deploy::stop_node_group(g);
  bool wrote = report.write("BENCH_socket_calibration.json");
  if (!within_band) {
    note("CALIBRATION OUT OF BAND: real deviates from prediction by > 2x");
    return 1;
  }
  return wrote ? 0 : 1;
#endif
}
