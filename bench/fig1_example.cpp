// EXP-F1 — reproduces Figure 1 / Example 2 of the paper with the real
// protocol (Algorithms 3+4) running on the simulator.
//
// Setup: S = {s1..s7}, f = 2, uniform initial weights (total 7, so the
// RP-Integrity floor is 7/10 and the initial minimum quorum has 4
// servers). Three legal transfers move 1/4 from s4->s1, s5->s2, s6->s3;
// afterwards {s1, s2, s3} — a minority of servers — forms a quorum of
// size 3. The two "red box" transfers (s6 and s7 trying to drop below
// the floor) must complete as NULL transfers under the restricted
// problem, exactly as the figure's red region cannot be executed.
#include "bench_util.h"

namespace wrs {
namespace {

struct Fig1Step {
  std::string op;
  ProcessId src;
  ProcessId dst;
  Weight delta;
};

void run() {
  bench::banner("EXP-F1", "Figure 1 / Example 2 walkthrough (n=7, f=2)");

  Cluster cluster = Cluster::builder()
                        .servers(7)
                        .faults(2)
                        .uniform_latency(ms(1), ms(5))
                        .seed(4242)
                        .reassign_only()
                        .clients(0)
                        .build();

  bench::note("RP-Integrity floor W_{S,0}/(2(n-f)) = " +
              cluster.config().floor().str());

  // The figure's steps: three legal transfers, then the two red-box ones.
  // (ids are 0-based: paper's s1 is our s0.)
  std::vector<Fig1Step> steps = {
      {"transfer(s4, s1, 1/4)", 3, 0, Weight(1, 4)},
      {"transfer(s5, s2, 1/4)", 4, 1, Weight(1, 4)},
      {"transfer(s6, s3, 1/4)", 5, 2, Weight(1, 4)},
      {"transfer(s6, s1, 1/10)  [red box]", 5, 0, Weight(1, 10)},
      {"transfer(s7, s1, 7/20)  [red box]", 6, 0, Weight(7, 20)},
  };

  Table table({"step", "operation", "outcome", "w(s1..s7)", "min quorum",
               "|{s1,s2,s3}| quorum?"});

  auto weight_row = [&]() {
    std::string ws;
    for (std::uint32_t s = 0; s < 7; ++s) {
      if (!ws.empty()) ws += " ";
      ws += cluster.server(0).weight_of(s).str();
    }
    return ws;
  };
  auto geometry = [&]() {
    Wmqs q(cluster.server(0).weights());
    bool minority = q.is_quorum({0, 1, 2});
    return std::make_pair(q.min_quorum_size(), minority);
  };

  {
    auto [mq, minority] = geometry();
    table.add_row({"0", "(initial)", "-", weight_row(), std::to_string(mq),
                   minority ? "yes" : "no"});
  }

  int step_no = 1;
  for (const auto& step : steps) {
    TransferOutcome outcome =
        cluster.server(step.src).transfer(step.dst, step.delta).get(seconds(60));
    cluster.quiesce();
    auto [mq, minority] = geometry();
    table.add_row({std::to_string(step_no++), step.op,
                   outcome.effective ? "effective" : "null", weight_row(),
                   std::to_string(mq), minority ? "yes" : "no"});
  }

  table.print();

  bench::note(
      "\nPaper claim check: after the three legal transfers the minimum "
      "quorum shrinks 4 -> 3 and {s1,s2,s3} (a minority of servers) is a "
      "quorum; both red-box transfers complete as null (RP-Integrity "
      "would be violated).");
}

}  // namespace
}  // namespace wrs

int main() {
  wrs::run();
  return 0;
}
