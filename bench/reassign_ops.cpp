// EXP-P1 — cost of the reassignment protocol itself: latency and traffic
// of transfer (Algorithm 4) and read_changes (Algorithm 3) as the system
// grows. f is the maximum tolerable threshold for each n.
//
// `--json <path>` appends the table as a JSON line for cross-PR perf
// tracking.
#include "bench_util.h"

namespace wrs {
namespace {

struct OpCosts {
  Histogram transfer_ms;
  Histogram read_changes_ms;
  double msgs_per_transfer = 0;
  double bytes_per_transfer = 0;
  double msgs_per_read = 0;
};

OpCosts measure(std::uint32_t n, std::uint32_t f, std::uint64_t seed) {
  OpCosts costs;
  Cluster cluster = Cluster::builder()
                        .servers(n)
                        .faults(f)
                        .uniform_latency(ms(2), ms(12))
                        .seed(seed)
                        .reassign_only()
                        .clients(1)
                        .build();

  constexpr int kTransfers = 30;
  std::int64_t msgs0 = 0, bytes0 = 0;
  for (int k = 0; k < kTransfers; ++k) {
    std::uint32_t src = k % n;
    std::uint32_t dst = (src + 1) % n;
    msgs0 = cluster.traffic().get("msgs");
    bytes0 = cluster.traffic().get("bytes");
    TimeNs start = cluster.now();
    cluster.server(src).transfer(dst, Weight(1, 100)).get(seconds(60));
    costs.transfer_ms.add(to_ms(cluster.now() - start));
    cluster.quiesce();  // count the full propagation cost
    costs.msgs_per_transfer +=
        static_cast<double>(cluster.traffic().get("msgs") - msgs0) /
        kTransfers;
    costs.bytes_per_transfer +=
        static_cast<double>(cluster.traffic().get("bytes") - bytes0) /
        kTransfers;
  }

  constexpr int kReads = 30;
  for (int k = 0; k < kReads; ++k) {
    msgs0 = cluster.traffic().get("msgs");
    TimeNs start = cluster.now();
    cluster.reassign_client().read_changes(k % n).get(seconds(60));
    costs.read_changes_ms.add(to_ms(cluster.now() - start));
    cluster.quiesce();
    costs.msgs_per_read +=
        static_cast<double>(cluster.traffic().get("msgs") - msgs0) / kReads;
  }
  return costs;
}

void run(bench::JsonReport* json) {
  bench::banner("EXP-P1",
                "reassignment operation costs vs system size "
                "(latency 2-12ms/hop)");
  Table table({"n", "f", "transfer p50 (ms)", "transfer p99 (ms)",
               "msgs/transfer", "KB/transfer", "read_changes p50 (ms)",
               "msgs/read_changes"});
  struct NF {
    std::uint32_t n, f;
  };
  for (NF nf :
       {NF{4, 1}, NF{7, 3}, NF{10, 4}, NF{13, 6}, NF{16, 7}, NF{19, 9}}) {
    OpCosts c = measure(nf.n, nf.f, 555 + nf.n);
    table.add_row({std::to_string(nf.n), std::to_string(nf.f),
                   Table::fmt(c.transfer_ms.percentile(50)),
                   Table::fmt(c.transfer_ms.percentile(99)),
                   Table::fmt(c.msgs_per_transfer, 1),
                   Table::fmt(c.bytes_per_transfer / 1024.0, 2),
                   Table::fmt(c.read_changes_ms.percentile(50)),
                   Table::fmt(c.msgs_per_read, 1)});
    if (json) {
      json->row()
          .field("n", static_cast<double>(nf.n))
          .field("f", static_cast<double>(nf.f))
          .field("transfer_p50_ms", c.transfer_ms.percentile(50))
          .field("transfer_p99_ms", c.transfer_ms.percentile(99))
          .field("msgs_per_transfer", c.msgs_per_transfer)
          .field("kb_per_transfer", c.bytes_per_transfer / 1024.0)
          .field("read_changes_p50_ms", c.read_changes_ms.percentile(50))
          .field("msgs_per_read_changes", c.msgs_per_read);
    }
  }
  table.print();
  bench::note(
      "\nShape check: transfer completes in ~2 message delays (RB "
      "broadcast + T_Ack wait) independent of n; traffic grows O(n^2) "
      "from the echo reliable broadcast; read_changes is two quorum "
      "round-trips (f+1 collect, n-f write-back). No consensus anywhere.");
}

}  // namespace
}  // namespace wrs

int main(int argc, char** argv) {
  std::string path = wrs::bench::json_path(argc, argv);
  wrs::bench::JsonReport json("reassign_ops");
  json.seed(555);  // per-size deployments run under 555 + n
  wrs::run(path.empty() ? nullptr : &json);
  if (!path.empty() && !json.write(path)) return 1;
  return 0;
}
