// EXP-E1 — Section VIII comparison with the epoch-based consensus-free
// protocol of [11]:
//  (a) request-to-application delay: epoch-based requests wait for the
//      epoch boundary (so the epoch length is a hard latency floor and a
//      tuning burden); our epochless transfer applies in ~2 deliveries.
//  (b) total-weight preservation: competing increases in one epoch are
//      dropped by the baseline, leaking voting power below W_{S,0}; the
//      restricted pairwise protocol keeps the total exactly constant.
#include "bench_util.h"

#include "baselines/epoch_reassign.h"
#include "core/reassign_node.h"

namespace wrs {
namespace {

struct EpochResult {
  Histogram delay_ms;
  Weight final_total{0};
  std::uint64_t dropped = 0;
};

EpochResult run_epoch(TimeNs epoch_length, std::uint64_t seed) {
  const std::uint32_t n = 5, f = 1;
  SystemConfig cfg = SystemConfig::uniform(n, f);
  SimEnv env(std::make_shared<UniformLatency>(ms(1), ms(8)), seed);
  std::vector<std::unique_ptr<EpochReassignNode>> nodes;
  for (std::uint32_t i = 0; i < n; ++i) {
    nodes.push_back(
        std::make_unique<EpochReassignNode>(env, i, cfg, epoch_length));
    env.register_process(i, nodes.back().get());
  }
  EpochResult res;
  nodes[0]->set_applied_callback(
      [&](const EpochRequest& req, const Weight&, TimeNs at) {
        res.delay_ms.add(to_ms(at - req.issued_at));
      });
  env.start();

  // 12 rounds; in each round two servers request transfers to DIFFERENT
  // destinations (competing increases -> baseline drops both).
  Rng rng(seed);
  for (int round = 0; round < 12; ++round) {
    TimeNs when = epoch_length / 4 + round * epoch_length;
    env.schedule(0, when, [&, round] {
      nodes[0]->request_transfer(1 + (round % 2), Weight(1, 100));
    });
    env.schedule(2, when, [&, round] {
      nodes[2]->request_transfer(3 + (round % 2), Weight(1, 100));
    });
  }
  env.run_until(14 * epoch_length + seconds(1));
  res.final_total = nodes[0]->total_weight();
  res.dropped = nodes[0]->dropped_increases();
  return res;
}

struct EpochlessResult {
  Histogram delay_ms;
  Weight final_total{0};
};

EpochlessResult run_epochless(std::uint64_t seed) {
  const std::uint32_t n = 5, f = 1;
  SystemConfig cfg = SystemConfig::uniform(n, f);
  SimEnv env(std::make_shared<UniformLatency>(ms(1), ms(8)), seed);
  std::vector<std::unique_ptr<ReassignNode>> nodes;
  for (std::uint32_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<ReassignNode>(env, i, cfg));
    env.register_process(i, nodes.back().get());
  }
  env.start();
  EpochlessResult res;
  // Same pattern: 12 rounds of two concurrent transfers to different
  // destinations — all effective here, applied immediately.
  int done = 0;
  for (int round = 0; round < 12; ++round) {
    TimeNs when = ms(25) + round * ms(100);
    env.schedule(0, when, [&, round] {
      TimeNs start = env.now();
      nodes[0]->transfer(1 + (round % 2), Weight(1, 100),
                         [&, start](const TransferOutcome&) {
                           res.delay_ms.add(to_ms(env.now() - start));
                           ++done;
                         });
    });
    env.schedule(2, when, [&, round] {
      TimeNs start = env.now();
      nodes[2]->transfer(3 + (round % 2), Weight(1, 100),
                         [&, start](const TransferOutcome&) {
                           res.delay_ms.add(to_ms(env.now() - start));
                           ++done;
                         });
    });
  }
  env.run_until_pred([&] { return done == 24; }, seconds(120));
  env.run_to_quiescence();
  Weight total(0);
  for (std::uint32_t s = 0; s < n; ++s) total += nodes[0]->weight_of(s);
  res.final_total = total;
  return res;
}

void run() {
  bench::banner("EXP-E1",
                "epochless (this paper) vs epoch-based [11] "
                "(n=5, f=1, 12 rounds of 2 concurrent transfers)");
  Table table({"protocol", "epoch (ms)", "apply delay p50 (ms)",
               "apply delay p99 (ms)", "final total weight",
               "dropped increases"});
  for (TimeNs epoch : {ms(50), ms(100), ms(200), ms(400)}) {
    EpochResult r = run_epoch(epoch, 31337);
    table.add_row({"epoch-based [11]", Table::fmt(to_ms(epoch), 0),
                   Table::fmt(r.delay_ms.percentile(50)),
                   Table::fmt(r.delay_ms.percentile(99)),
                   r.final_total.str(), std::to_string(r.dropped)});
  }
  EpochlessResult ours = run_epochless(31337);
  table.add_row({"restricted pairwise (ours)", "-",
                 Table::fmt(ours.delay_ms.percentile(50)),
                 Table::fmt(ours.delay_ms.percentile(99)),
                 ours.final_total.str(), "0"});
  table.print();
  bench::note(
      "\nPaper claim check (Section VIII): the epoch-based protocol's "
      "application delay scales with the epoch length (a tuning problem "
      "the paper calls out), and its total weight decays below W_{S,0}=5 "
      "when increases compete; the epochless protocol applies transfers "
      "in ~2 message delays and conserves the total exactly.");
}

}  // namespace
}  // namespace wrs

int main() {
  wrs::run();
  return 0;
}
