// EXP-S1 — ablation of the Algorithm 5/6 design: what do the piggybacked
// change sets and restart-on-newer-set cost as reassignment churn grows?
//
// Sweep the background transfer rate while a client runs a fixed
// read/write workload; report bytes per storage operation (dominated by
// the piggybacked sets), operation restart rate, and latency.
#include "bench_util.h"

namespace wrs {
namespace {

struct ChurnResult {
  double bytes_per_op = 0;
  double restarts_per_op = 0;
  double read_p50_ms = 0;
  double read_p99_ms = 0;
  std::uint64_t transfers = 0;
};

ChurnResult run_churn(TimeNs transfer_interval, std::uint64_t seed) {
  const std::uint32_t n = 5, f = 1;
  SystemConfig cfg = SystemConfig::uniform(n, f);
  SimEnv env(std::make_shared<UniformLatency>(ms(2), ms(10)), seed);
  std::vector<std::unique_ptr<DynamicStorageNode>> nodes;
  for (std::uint32_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<DynamicStorageNode>(env, i, cfg));
    env.register_process(i, nodes.back().get());
  }

  WorkloadParams wp;
  wp.num_ops = 200;
  wp.read_ratio = 0.7;
  wp.think_time = ms(10);
  wp.value_size = 32;
  wp.seed = seed;
  auto client = std::make_unique<WorkloadClient>(
      env, client_id(0), cfg, AbdClient::Mode::kDynamic, wp);
  env.register_process(client_id(0), client.get());
  env.start();

  // Background churn: a rotating donor fires a tiny transfer every
  // `transfer_interval` (0 = no churn).
  auto transfers = std::make_shared<std::uint64_t>(0);
  if (transfer_interval > 0) {
    auto tick = std::make_shared<std::function<void(std::uint32_t)>>();
    *tick = [&env, &nodes, transfers, transfer_interval, tick,
             n](std::uint32_t k) {
      std::uint32_t src = k % n;
      auto* node = nodes[src].get();
      if (!node->reassign().transfer_in_flight() &&
          node->reassign().weight() > Weight(1, 1000) + Weight(5, 8)) {
        node->reassign().transfer((src + 1) % n, Weight(1, 1000),
                                  [](const TransferOutcome&) {});
        ++*transfers;
      }
      env.schedule(src, transfer_interval,
                   [tick, k] { (*tick)(k + 1); });
    };
    env.schedule(0, transfer_interval, [tick] { (*tick)(0); });
  }

  std::int64_t bytes0 = env.traffic().get("bytes");
  env.run_until_pred([&] { return client->done(); }, seconds(1200));

  ChurnResult r;
  // Storage bytes only: subtract reassignment message types.
  std::int64_t total_bytes = env.traffic().get("bytes") - bytes0;
  r.bytes_per_op = static_cast<double>(total_bytes) /
                   static_cast<double>(wp.num_ops);
  r.restarts_per_op = static_cast<double>(client->abd().restarts()) /
                      static_cast<double>(wp.num_ops);
  r.read_p50_ms = to_ms(client->read_latency().percentile(50));
  r.read_p99_ms = to_ms(client->read_latency().percentile(99));
  r.transfers = *transfers;
  return r;
}

void run() {
  bench::banner("EXP-S1",
                "piggybacked change-set overhead and operation restarts "
                "vs transfer churn (n=5, f=1, 200 client ops)");
  Table table({"transfer interval", "transfers fired", "KB per client op",
               "restarts per op", "read p50 (ms)", "read p99 (ms)"});
  struct Conf {
    TimeNs interval;
    std::string label;
  };
  for (const Conf& conf :
       {Conf{0, "none"}, Conf{ms(500), "500 ms"}, Conf{ms(200), "200 ms"},
        Conf{ms(100), "100 ms"}, Conf{ms(50), "50 ms"}}) {
    ChurnResult r = run_churn(conf.interval, 909);
    table.add_row({conf.label, std::to_string(r.transfers),
                   Table::fmt(r.bytes_per_op / 1024.0, 2),
                   Table::fmt(r.restarts_per_op, 3),
                   Table::fmt(r.read_p50_ms), Table::fmt(r.read_p99_ms)});
  }
  table.print();
  bench::note(
      "\nShape check: each completed transfer adds two changes that ride "
      "on every subsequent reply, so bytes/op grow linearly with churn; "
      "restarts happen when an operation straddles a transfer and stay "
      "rare (an op restarts at most once per new change-set it meets). "
      "Latency degrades gracefully — the design trades bounded metadata "
      "growth for consensus-freedom.");
}

}  // namespace
}  // namespace wrs

int main() {
  wrs::run();
  return 0;
}
