// Micro-benchmarks (google-benchmark) for the hot paths of the library:
// rational arithmetic, change-set operations, quorum checks, and
// simulator event throughput. These bound the per-message bookkeeping
// cost of the protocol implementations.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/change_set.h"
#include "core/reassign_node.h"
#include "quorum/wmqs.h"
#include "runtime/sim_env.h"

namespace wrs {
namespace {

void BM_RationalAdd(benchmark::State& state) {
  Rational a(355, 113);
  Rational b(-7, 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a + b);
  }
}
BENCHMARK(BM_RationalAdd);

void BM_RationalCompare(benchmark::State& state) {
  Rational a(355, 113);
  Rational b(356, 114);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a < b);
  }
}
BENCHMARK(BM_RationalCompare);

void BM_ChangeSetWeightOf(benchmark::State& state) {
  ChangeSet cs = ChangeSet::initial(WeightMap::uniform(
      static_cast<std::uint32_t>(state.range(0))));
  // Add a transfer history.
  for (std::uint64_t c = 2; c < 50; ++c) {
    cs.add(Change(0, c, 0, Weight(-1, 1000)));
    cs.add(Change(0, c, 1, Weight(1, 1000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cs.weight_of(1));
  }
}
BENCHMARK(BM_ChangeSetWeightOf)->Arg(5)->Arg(9)->Arg(17);

void BM_ChangeSetJoin(benchmark::State& state) {
  ChangeSet base = ChangeSet::initial(WeightMap::uniform(9));
  ChangeSet incoming = base;
  for (std::uint64_t c = 2; c < 2 + static_cast<std::uint64_t>(state.range(0));
       ++c) {
    incoming.add(Change(1, c, 1, Weight(-1, 1000)));
    incoming.add(Change(1, c, 2, Weight(1, 1000)));
  }
  for (auto _ : state) {
    ChangeSet cs = base;
    benchmark::DoNotOptimize(cs.join(incoming));
  }
}
BENCHMARK(BM_ChangeSetJoin)->Arg(8)->Arg(64);

void BM_WmqsIsQuorum(benchmark::State& state) {
  auto n = static_cast<std::uint32_t>(state.range(0));
  Wmqs q(WeightMap::uniform(n));
  std::vector<ProcessId> subset;
  for (std::uint32_t i = 0; i <= n / 2; ++i) subset.push_back(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.is_quorum(subset));
  }
}
BENCHMARK(BM_WmqsIsQuorum)->Arg(5)->Arg(17)->Arg(65);

void BM_WmqsMinQuorumSize(benchmark::State& state) {
  auto n = static_cast<std::uint32_t>(state.range(0));
  WeightMap wm;
  for (std::uint32_t i = 0; i < n; ++i) {
    wm.set(i, Weight(static_cast<std::int64_t>(i % 7) + 1, 4));
  }
  Wmqs q(std::move(wm));
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.min_quorum_size());
  }
}
BENCHMARK(BM_WmqsMinQuorumSize)->Arg(5)->Arg(17)->Arg(65);

void BM_SimEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    SimEnv env(std::make_shared<ConstantLatency>(us(10)), 3);
    state.ResumeTiming();
    // Drain 10k scheduled closures through the event queue.
    int count = 0;
    for (int i = 0; i < 10'000; ++i) {
      env.schedule(kNoProcess, us(i), [&count] { ++count; });
    }
    env.run_to_quiescence();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimEventThroughput)->Unit(benchmark::kMillisecond);

void BM_TransferEndToEnd(benchmark::State& state) {
  // Full protocol cost of one transfer on a zero-latency simulated
  // network — pure CPU cost of Algorithm 4 + reliable broadcast.
  auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SystemConfig cfg = SystemConfig::uniform(n, (n - 1) / 2);
    SimEnv env(std::make_shared<ConstantLatency>(us(1)), 3);
    std::vector<std::unique_ptr<ReassignNode>> nodes;
    for (std::uint32_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<ReassignNode>(env, i, cfg));
      env.register_process(i, nodes.back().get());
    }
    env.start();
    env.run_to_quiescence();
    state.ResumeTiming();
    bool done = false;
    nodes[0]->transfer(1, Weight(1, 1000),
                       [&](const TransferOutcome&) { done = true; });
    env.run_until_pred([&] { return done; }, seconds(10));
    env.run_to_quiescence();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_TransferEndToEnd)->Arg(4)->Arg(7)->Arg(10);

}  // namespace
}  // namespace wrs

BENCHMARK_MAIN();
