// EXP-Q1 — quorum geometry under weight skew (Definition 1, Property 1):
// how much smaller can quorums get before availability (Property 1)
// breaks? Quantifies the "minority quorum" benefit the paper's Example 2
// illustrates, as a sweep over skew.
//
// Skew model: server i gets weight proportional to 1/(i+1)^alpha
// (Zipf-like), rescaled so the total is n; alpha=0 is uniform.
#include "bench_util.h"

#include <cmath>

namespace wrs {
namespace {

WeightMap zipf_weights(std::uint32_t n, double alpha) {
  // Build exact rational weights from a quantized Zipf shape.
  std::vector<double> raw(n);
  double sum = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    raw[i] = 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    sum += raw[i];
  }
  WeightMap wm;
  for (std::uint32_t i = 0; i < n; ++i) {
    wm.set(i, Rational::from_double(raw[i] / sum * n, 10'000));
  }
  return wm;
}

void run() {
  bench::banner("EXP-Q1",
                "quorum geometry vs weight skew (zipf exponent alpha)");
  Table table({"n", "alpha", "min quorum", "max minimal quorum",
               "max tolerable f", "Property 1 holds (f=1)",
               "top weight / total"});
  for (std::uint32_t n : {5u, 7u, 9u, 15u}) {
    for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0, 1.5}) {
      WeightMap wm = zipf_weights(n, alpha);
      Wmqs q(wm);
      double top_frac =
          q.weights().sorted_desc()[0].second.to_double() /
          q.total().to_double();
      table.add_row({std::to_string(n), Table::fmt(alpha, 2),
                     std::to_string(q.min_quorum_size()),
                     std::to_string(q.max_minimal_quorum_size()),
                     std::to_string(q.max_tolerable_f()),
                     q.is_available(1) ? "yes" : "no",
                     Table::fmt(top_frac, 3)});
    }
  }
  table.print();
  bench::note(
      "\nShape check: mild skew shrinks the minimum quorum (latency win), "
      "but past a point the heaviest f servers hold half the power and "
      "Property 1 — hence availability under f crashes — collapses. This "
      "is exactly the tension Integrity polices, and why transfers that "
      "concentrate too much weight must be rejected.");

  // RP floor headroom: how much weight a server can donate from uniform,
  // as n and f vary (the Section V-C limitation made quantitative).
  bench::banner("EXP-Q1b", "donatable headroom above the RP floor");
  Table t2({"n", "f", "floor", "uniform weight", "max single donation"});
  struct NF {
    std::uint32_t n, f;
  };
  for (NF nf : {NF{4, 1}, NF{5, 1}, NF{5, 2}, NF{7, 2}, NF{7, 3}, NF{9, 4},
                NF{13, 6}}) {
    SystemConfig cfg = SystemConfig::uniform(nf.n, nf.f);
    Weight headroom = Weight(1) - cfg.floor();
    t2.add_row({std::to_string(nf.n), std::to_string(nf.f),
                cfg.floor().str(), "1", headroom.str() + " (exclusive)"});
  }
  t2.print();
}

}  // namespace
}  // namespace wrs

int main() {
  wrs::run();
  return 0;
}
