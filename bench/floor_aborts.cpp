// EXP-R1 — behaviour at the RP-Integrity floor: null-transfer (abort)
// rate as the requested delta approaches the headroom above
// W_{S,0}/(2(n-f)), and the Section V-C limitation that a failed server's
// weight cannot be reduced by others.
#include "bench_util.h"

#include "core/reassign_node.h"

namespace wrs {
namespace {

void run() {
  bench::banner("EXP-R1",
                "null-transfer rate near the RP-Integrity floor "
                "(n=7, f=2, uniform start, floor=7/10)");

  const std::uint32_t n = 7, f = 2;
  Table table({"requested delta", "headroom (1 - floor)", "outcome",
               "weight after"});
  // Fresh cluster per delta: uniform weight 1, headroom 1 - 7/10 = 3/10
  // (exclusive: delta must satisfy 1 > delta + 7/10).
  for (const Weight& delta :
       {Weight(1, 10), Weight(2, 10), Weight(29, 100), Weight(3, 10),
        Weight(31, 100), Weight(4, 10)}) {
    SystemConfig cfg = SystemConfig::uniform(n, f);
    SimEnv env(std::make_shared<UniformLatency>(ms(1), ms(5)), 17);
    std::vector<std::unique_ptr<ReassignNode>> nodes;
    for (std::uint32_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<ReassignNode>(env, i, cfg));
      env.register_process(i, nodes.back().get());
    }
    env.start();
    bool done = false;
    bool effective = false;
    nodes[0]->transfer(1, delta, [&](const TransferOutcome& o) {
      effective = o.effective;
      done = true;
    });
    env.run_until_pred([&] { return done; }, seconds(60));
    env.run_to_quiescence();
    table.add_row({delta.str(), (Weight(1) - cfg.floor()).str(),
                   effective ? "effective" : "null (aborted)",
                   nodes[2]->weight_of(0).str()});
  }
  table.print();

  bench::note(
      "\nAbort-rate sweep under random concurrent transfers "
      "(100 transfers per configuration, delta drawn near the floor):");
  Table sweep({"delta as % of headroom", "effective", "null",
               "RP-Integrity violations"});
  for (int pct : {50, 80, 95, 105, 150}) {
    SystemConfig cfg = SystemConfig::uniform(n, f);
    SimEnv env(std::make_shared<UniformLatency>(ms(1), ms(5)),
               7000 + pct);
    std::vector<std::unique_ptr<ReassignNode>> nodes;
    for (std::uint32_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<ReassignNode>(env, i, cfg));
      env.register_process(i, nodes.back().get());
    }
    env.start();
    Weight headroom = Weight(1) - cfg.floor();
    Weight delta = headroom * Weight(pct, 100);
    int effective = 0, null_count = 0, done = 0;
    constexpr int kPerServer = 15;
    std::vector<int> remaining(n, kPerServer);
    Rng rng(pct);
    std::function<void(std::uint32_t)> fire = [&](std::uint32_t i) {
      if (remaining[i]-- <= 0) return;
      ProcessId dst = (i + 1 + rng.below(n - 1)) % n;
      nodes[i]->transfer(dst, delta, [&, i](const TransferOutcome& o) {
        (o.effective ? effective : null_count) += 1;
        ++done;
        fire(i);
      });
    };
    for (std::uint32_t i = 0; i < n; ++i) fire(i);
    env.run_until_pred(
        [&] { return done == static_cast<int>(n) * kPerServer; },
        seconds(600));
    env.run_to_quiescence();
    int violations = 0;
    for (auto& node : nodes) {
      for (std::uint32_t s = 0; s < n; ++s) {
        if (!(node->weight_of(s) > cfg.floor())) ++violations;
      }
    }
    sweep.add_row({std::to_string(pct) + "%", std::to_string(effective),
                   std::to_string(null_count), std::to_string(violations)});
  }
  sweep.print();
  bench::note(
      "\nPaper claim check: transfers are aborted exactly when they would "
      "push the source to (or below) the floor — the strict inequality of "
      "RP-Integrity holds in every state, at every replica, under any "
      "concurrency; deltas above the headroom are always null. The cost "
      "of asynchrony is this conservatism (Section V-C): weight above the "
      "floor is the only transferable currency, and only its owner can "
      "spend it.");
}

}  // namespace
}  // namespace wrs

int main() {
  wrs::run();
  return 0;
}
