// EXP-L1 — the paper's motivating claim (Section I): weighted majority
// quorums beat the regular MQS on heterogeneous WANs, and dynamic
// reassignment recovers the benefit without hand-tuning.
//
// For each WAN profile we run the same closed-loop read/write workload
// against three deployments:
//   MQS       — classic ABD, uniform weights (the paper's baseline);
//   WMQS*     — static weighted ABD with oracle-tuned weights (what WHEAT
//               would configure offline for this topology);
//   dynamic   — our dynamic-weighted storage starting from uniform
//               weights with the adaptive monitoring loop enabled.
//
// Expected shape: on heterogeneous profiles (wan5) WMQS* < MQS latency,
// and dynamic converges to (near) WMQS*; on the homogeneous LAN profile
// all three coincide.
//
// EXP-L2 — open-loop throughput over the pipelined client: clients issue
// on a fixed arrival clock (WorkloadParams::target_ops_per_sec) against
// multiple keys, so many quorum rounds overlap per client. Reported:
// achieved throughput + p50/p95/p99 op latency per offered rate.
//
// `--json <path>` appends both experiments' tables as JSON lines for
// cross-PR perf tracking.
#include "bench_util.h"

namespace wrs {
namespace {

struct RunResult {
  double read_p50 = 0, read_p99 = 0, write_p50 = 0, write_p99 = 0;
  std::size_t ops = 0;
};

RunResult run_deployment(const WanProfile& profile, const std::string& mode,
                         std::uint64_t seed) {
  const std::uint32_t n = 5;
  const std::uint32_t f = 1;

  WeightMap weights = WeightMap::uniform(n);
  if (mode == "wmqs") {
    // Oracle tuning: rank servers by RTT from the client's site and give
    // the two closest more voting power (Property 1 must keep holding:
    // top-1 weight 3/2 < total/2 = 5/2).
    std::vector<std::pair<double, ProcessId>> by_rtt;
    for (ProcessId s = 0; s < n; ++s) {
      by_rtt.emplace_back(profile.rtt_ms[0][s % profile.sites.size()], s);
    }
    std::sort(by_rtt.begin(), by_rtt.end());
    weights.set(by_rtt[0].second, Weight(3, 2));
    weights.set(by_rtt[1].second, Weight(3, 2));
    weights.set(by_rtt[2].second, Weight(1));
    weights.set(by_rtt[3].second, Weight(1, 2));
    weights.set(by_rtt[4].second, Weight(1, 2));
  }

  WorkloadParams wp;
  wp.num_ops = 150;
  wp.read_ratio = 0.5;
  wp.think_time = ms(20);
  wp.value_size = 64;
  wp.seed = seed;

  ClusterBuilder builder = Cluster::builder()
                               .servers(n)
                               .faults(f)
                               .weights(weights)
                               .wan(profile, /*client_site=*/0)
                               .seed(seed)
                               .clients(1)
                               .client_mode(mode == "dynamic"
                                                ? AbdClient::Mode::kDynamic
                                                : AbdClient::Mode::kStatic)
                               .workload(wp);
  if (mode == "dynamic") {
    AdaptiveParams params;
    params.probe_interval = ms(250);
    params.eval_interval = ms(500);
    params.step = Weight(1, 10);
    params.slow_factor = 1.25;
    builder.adaptive(params);
  }
  Cluster cluster = builder.build();

  if (mode == "dynamic") {
    // Warm-up: let the monitoring loop converge before measuring.
    cluster.run_for(seconds(20));
  }
  cluster.workload_done().get(seconds(600));

  WorkloadClient& client = cluster.workload();
  RunResult r;
  r.read_p50 = to_ms(client.read_latency().percentile(50));
  r.read_p99 = to_ms(client.read_latency().percentile(99));
  r.write_p50 = to_ms(client.write_latency().percentile(50));
  r.write_p99 = to_ms(client.write_latency().percentile(99));
  r.ops = client.completed();
  return r;
}

void run_closed_loop(bench::JsonReport* json) {
  bench::banner("EXP-L1",
                "read/write latency: MQS vs static WMQS vs dynamic "
                "(client at site 0, n=5, f=1)");
  Table table({"profile", "deployment", "read p50 (ms)", "read p99 (ms)",
               "write p50 (ms)", "write p99 (ms)"});
  for (const WanProfile& profile :
       {wan5_profile(), continental_profile(), lan_profile()}) {
    for (const char* mode : {"mqs", "wmqs", "dynamic"}) {
      RunResult r = run_deployment(profile, mode, 777);
      std::string label = std::string(mode) == "mqs"    ? "MQS (uniform)"
                          : std::string(mode) == "wmqs" ? "WMQS* (tuned static)"
                                                        : "dynamic (adaptive)";
      table.add_row({profile.name, label, Table::fmt(r.read_p50),
                     Table::fmt(r.read_p99), Table::fmt(r.write_p50),
                     Table::fmt(r.write_p99)});
      if (json) {
        json->row()
            .field("profile", profile.name)
            .field("deployment", mode)
            .field("read_p50_ms", r.read_p50)
            .field("read_p99_ms", r.read_p99)
            .field("write_p50_ms", r.write_p50)
            .field("write_p99_ms", r.write_p99);
      }
    }
  }
  table.print();
  bench::note(
      "\nPaper claim check (Section I / [20]): weighted quorums cut "
      "latency on heterogeneous WANs because a light-majority quorum of "
      "nearby servers suffices; the dynamic deployment approaches the "
      "hand-tuned WMQS without offline knowledge. On the homogeneous LAN "
      "profile the three deployments coincide (weights cannot help).");
}

struct OpenLoopResult {
  double offered = 0, achieved = 0;
  double p50 = 0, p95 = 0, p99 = 0;
  // Coordinated-omission-corrected percentiles: measured from each op's
  // intended arrival-clock tick instead of its actual issue time.
  double cp50 = 0, cp95 = 0, cp99 = 0;
  std::size_t completed = 0, shed = 0, max_in_flight = 0;
};

OpenLoopResult run_open_loop(double target_ops_per_sec, std::uint64_t seed) {
  WorkloadParams wp;
  wp.num_ops = 400;
  wp.read_ratio = 0.5;
  wp.value_size = 64;
  wp.seed = seed;
  wp.num_keys = 16;  // pipelining overlaps ops on distinct keys
  wp.target_ops_per_sec = target_ops_per_sec;
  wp.max_in_flight = 64;

  Cluster cluster = Cluster::builder()
                        .servers(5)
                        .faults(1)
                        .uniform_latency(ms(1), ms(8))
                        .seed(seed)
                        .clients(1)
                        .workload(wp)
                        .build();
  cluster.workload_done().get(seconds(600));

  WorkloadClient& client = cluster.workload();
  OpenLoopResult r;
  r.offered = target_ops_per_sec;
  r.achieved = client.achieved_ops_per_sec();
  r.p50 = to_ms(client.op_latency().percentile(50));
  r.p95 = to_ms(client.op_latency().percentile(95));
  r.p99 = to_ms(client.op_latency().percentile(99));
  r.cp50 = to_ms(client.corrected_op_latency().percentile(50));
  r.cp95 = to_ms(client.corrected_op_latency().percentile(95));
  r.cp99 = to_ms(client.corrected_op_latency().percentile(99));
  r.completed = client.completed();
  r.shed = client.shed();
  r.max_in_flight = client.max_in_flight_seen();
  return r;
}

void run_open_loop_sweep(bench::JsonReport* json) {
  bench::banner("EXP-L2",
                "open-loop throughput over the pipelined client "
                "(n=5, f=1, 16 keys, window 64, latency 1-8ms/hop)");
  Table table({"offered ops/s", "achieved ops/s", "p50 (ms)", "p95 (ms)",
               "p99 (ms)", "CO p99 (ms)", "completed", "shed",
               "max in-flight"});
  for (double rate : {50.0, 200.0, 800.0, 3200.0}) {
    OpenLoopResult r = run_open_loop(rate, 888);
    table.add_row({Table::fmt(r.offered, 0), Table::fmt(r.achieved, 1),
                   Table::fmt(r.p50), Table::fmt(r.p95), Table::fmt(r.p99),
                   Table::fmt(r.cp99), std::to_string(r.completed),
                   std::to_string(r.shed), std::to_string(r.max_in_flight)});
    if (json) {
      json->row()
          .field("offered_ops_per_sec", r.offered)
          .field("achieved_ops_per_sec", r.achieved)
          .field("p50_ms", r.p50)
          .field("p95_ms", r.p95)
          .field("p99_ms", r.p99)
          .field("corrected_p50_ms", r.cp50)
          .field("corrected_p95_ms", r.cp95)
          .field("corrected_p99_ms", r.cp99)
          .field("completed", static_cast<double>(r.completed))
          .field("shed", static_cast<double>(r.shed))
          .field("max_in_flight", static_cast<double>(r.max_in_flight));
    }
  }
  table.print();
  bench::note(
      "\nShape check: a closed-loop client caps at 1/RTT ops/s; the "
      "open-loop pipelined client multiplexes independent keys over the "
      "same replicas, so achieved throughput tracks the offered rate "
      "until the in-flight window saturates (shed > 0) while per-op "
      "latency stays near the quorum round-trip. The corrected_* "
      "percentiles measure from intended-start times (coordinated-"
      "omission audit): identical on the simulator, >= p* on the thread "
      "runtime whenever arrival handlers lag.");
}

}  // namespace
}  // namespace wrs

int main(int argc, char** argv) {
  std::string path = wrs::bench::json_path(argc, argv);
  wrs::bench::JsonReport closed("storage_latency.closed_loop");
  wrs::bench::JsonReport open("storage_latency.open_loop");
  closed.seed(777);  // the seed every EXP-L1 deployment runs under
  open.seed(888);    // ... and EXP-L2's

  wrs::run_closed_loop(path.empty() ? nullptr : &closed);
  wrs::run_open_loop_sweep(path.empty() ? nullptr : &open);
  if (!path.empty()) {
    bool ok = closed.write(path);
    ok = open.write(path) && ok;
    if (!ok) return 1;
  }
  return 0;
}
