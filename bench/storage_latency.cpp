// EXP-L1 — the paper's motivating claim (Section I): weighted majority
// quorums beat the regular MQS on heterogeneous WANs, and dynamic
// reassignment recovers the benefit without hand-tuning.
//
// For each WAN profile we run the same closed-loop read/write workload
// against three deployments:
//   MQS       — classic ABD, uniform weights (the paper's baseline);
//   WMQS*     — static weighted ABD with oracle-tuned weights (what WHEAT
//               would configure offline for this topology);
//   dynamic   — our dynamic-weighted storage starting from uniform
//               weights with the adaptive monitoring loop enabled.
//
// Expected shape: on heterogeneous profiles (wan5) WMQS* < MQS latency,
// and dynamic converges to (near) WMQS*; on the homogeneous LAN profile
// all three coincide.
#include "bench_util.h"

namespace wrs {
namespace {

struct RunResult {
  double read_p50 = 0, read_p99 = 0, write_p50 = 0, write_p99 = 0;
  std::size_t ops = 0;
};

RunResult run_deployment(const WanProfile& profile, const std::string& mode,
                         std::uint64_t seed) {
  const std::uint32_t n = 5;
  const std::uint32_t f = 1;

  WeightMap weights = WeightMap::uniform(n);
  if (mode == "wmqs") {
    // Oracle tuning: rank servers by RTT from the client's site and give
    // the two closest more voting power (Property 1 must keep holding:
    // top-1 weight 3/2 < total/2 = 5/2).
    std::vector<std::pair<double, ProcessId>> by_rtt;
    for (ProcessId s = 0; s < n; ++s) {
      by_rtt.emplace_back(profile.rtt_ms[0][s % profile.sites.size()], s);
    }
    std::sort(by_rtt.begin(), by_rtt.end());
    weights.set(by_rtt[0].second, Weight(3, 2));
    weights.set(by_rtt[1].second, Weight(3, 2));
    weights.set(by_rtt[2].second, Weight(1));
    weights.set(by_rtt[3].second, Weight(1, 2));
    weights.set(by_rtt[4].second, Weight(1, 2));
  }

  WorkloadParams wp;
  wp.num_ops = 150;
  wp.read_ratio = 0.5;
  wp.think_time = ms(20);
  wp.value_size = 64;
  wp.seed = seed;

  ClusterBuilder builder = Cluster::builder()
                               .servers(n)
                               .faults(f)
                               .weights(weights)
                               .wan(profile, /*client_site=*/0)
                               .seed(seed)
                               .clients(1)
                               .client_mode(mode == "dynamic"
                                                ? AbdClient::Mode::kDynamic
                                                : AbdClient::Mode::kStatic)
                               .workload(wp);
  if (mode == "dynamic") {
    AdaptiveParams params;
    params.probe_interval = ms(250);
    params.eval_interval = ms(500);
    params.step = Weight(1, 10);
    params.slow_factor = 1.25;
    builder.adaptive(params);
  }
  Cluster cluster = builder.build();

  if (mode == "dynamic") {
    // Warm-up: let the monitoring loop converge before measuring.
    cluster.run_for(seconds(20));
  }
  cluster.workload_done().get(seconds(600));

  ClosedLoopClient& client = cluster.workload();
  RunResult r;
  r.read_p50 = to_ms(client.read_latency().percentile(50));
  r.read_p99 = to_ms(client.read_latency().percentile(99));
  r.write_p50 = to_ms(client.write_latency().percentile(50));
  r.write_p99 = to_ms(client.write_latency().percentile(99));
  r.ops = client.completed();
  return r;
}

void run() {
  bench::banner("EXP-L1",
                "read/write latency: MQS vs static WMQS vs dynamic "
                "(client at site 0, n=5, f=1)");
  Table table({"profile", "deployment", "read p50 (ms)", "read p99 (ms)",
               "write p50 (ms)", "write p99 (ms)"});
  for (const WanProfile& profile :
       {wan5_profile(), continental_profile(), lan_profile()}) {
    for (const char* mode : {"mqs", "wmqs", "dynamic"}) {
      RunResult r = run_deployment(profile, mode, 777);
      std::string label = std::string(mode) == "mqs"    ? "MQS (uniform)"
                          : std::string(mode) == "wmqs" ? "WMQS* (tuned static)"
                                                        : "dynamic (adaptive)";
      table.add_row({profile.name, label, Table::fmt(r.read_p50),
                     Table::fmt(r.read_p99), Table::fmt(r.write_p50),
                     Table::fmt(r.write_p99)});
    }
  }
  table.print();
  bench::note(
      "\nPaper claim check (Section I / [20]): weighted quorums cut "
      "latency on heterogeneous WANs because a light-majority quorum of "
      "nearby servers suffices; the dynamic deployment approaches the "
      "hand-tuned WMQS without offline knowledge. On the homogeneous LAN "
      "profile the three deployments coincide (weights cannot help).");
}

}  // namespace
}  // namespace wrs

int main() {
  wrs::run();
  return 0;
}
