// The shared array R of SWMR registers used by the reduction algorithms
// (Algorithms 1 and 2, line 1).
//
// The paper assumes atomic SWMR registers as given (they are implementable
// from message passing with f < n/2 via ABD, so assuming them does not
// weaken the reduction). In the simulator every event runs serially, so a
// plain in-memory array *is* linearizable; writes are restricted to each
// process's own slot to honor the single-writer discipline.
#pragma once

#include <cassert>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"

namespace wrs {

class SharedRegisters {
 public:
  explicit SharedRegisters(std::size_t n) : slots_(n) {}

  /// R[i] <- value; only process i may write slot i (SWMR).
  void write(ProcessId writer, std::size_t index, std::string value) {
    if (index >= slots_.size()) throw std::out_of_range("SharedRegisters");
    if (static_cast<std::size_t>(writer) != index) {
      throw std::logic_error(
          "SharedRegisters: single-writer violation — " +
          process_name(writer) + " writing R[" + std::to_string(index) + "]");
    }
    slots_[index] = std::move(value);
  }

  /// Read R[index]; nullopt when never written.
  const std::optional<std::string>& read(std::size_t index) const {
    if (index >= slots_.size()) throw std::out_of_range("SharedRegisters");
    return slots_[index];
  }

  std::size_t size() const { return slots_.size(); }

 private:
  std::vector<std::optional<std::string>> slots_;
};

}  // namespace wrs
