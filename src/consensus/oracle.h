// Oracle weight-reassignment service.
//
// Theorems 1-2 prove that no asynchronous fault-tolerant implementation
// of the (pairwise) weight reassignment problem exists. To make the
// reductions *executable artifacts*, this oracle provides the problem's
// interface (reassign / transfer / read_changes per Definitions 3-4) as a
// centralized linearizer: requests are processed in arrival order, and
// Validity-I / P-Validity-I decide whether each request completes with a
// non-zero change (Integrity preserved) or a null change.
//
// The oracle is "magic" — it is a single process that never crashes; that
// is precisely the power the theorems say cannot be distilled from an
// asynchronous failure-prone system. Algorithms 1 and 2 run against it
// and solve consensus, which is the content of the reduction.
#pragma once

#include <memory>

#include "core/change_set.h"
#include "core/config.h"
#include "runtime/env.h"

namespace wrs {

// --- wire messages ---------------------------------------------------------

/// reassign(target, delta) request (Definition 3 interface).
class OracleReassignReq : public MessageBase<OracleReassignReq> {
 public:
  OracleReassignReq(std::uint64_t counter, ProcessId target, Weight delta)
      : counter_(counter), target_(target), delta_(std::move(delta)) {}
  std::uint64_t counter() const { return counter_; }
  ProcessId target() const { return target_; }
  const Weight& delta() const { return delta_; }
  std::string type_name() const override { return "ORA_REASSIGN"; }
  std::size_t wire_size() const override { return kHeaderBytes + 28; }

 private:
  std::uint64_t counter_;
  ProcessId target_;
  Weight delta_;
};

/// transfer(src, dst, delta) request (Definition 4 interface).
class OracleTransferReq : public MessageBase<OracleTransferReq> {
 public:
  OracleTransferReq(std::uint64_t counter, ProcessId src, ProcessId dst,
                    Weight delta)
      : counter_(counter), src_(src), dst_(dst), delta_(std::move(delta)) {}
  std::uint64_t counter() const { return counter_; }
  ProcessId src() const { return src_; }
  ProcessId dst() const { return dst_; }
  const Weight& delta() const { return delta_; }
  std::string type_name() const override { return "ORA_TRANSFER"; }
  std::size_t wire_size() const override { return kHeaderBytes + 32; }

 private:
  std::uint64_t counter_;
  ProcessId src_;
  ProcessId dst_;
  Weight delta_;
};

/// <Complete, c> response.
class OracleComplete : public MessageBase<OracleComplete> {
 public:
  explicit OracleComplete(Change change) : change_(std::move(change)) {}
  const Change& change() const { return change_; }
  std::string type_name() const override { return "ORA_COMPLETE"; }
  std::size_t wire_size() const override { return kHeaderBytes + 32; }

 private:
  Change change_;
};

/// read_changes(target) request / response.
class OracleReadReq : public MessageBase<OracleReadReq> {
 public:
  OracleReadReq(std::uint64_t op_id, ProcessId target)
      : op_id_(op_id), target_(target) {}
  std::uint64_t op_id() const { return op_id_; }
  ProcessId target() const { return target_; }
  std::string type_name() const override { return "ORA_READ"; }
  std::size_t wire_size() const override { return kHeaderBytes + 12; }

 private:
  std::uint64_t op_id_;
  ProcessId target_;
};

class OracleReadAck : public MessageBase<OracleReadAck> {
 public:
  OracleReadAck(std::uint64_t op_id, ChangeSet changes)
      : op_id_(op_id), changes_(std::move(changes)) {}
  std::uint64_t op_id() const { return op_id_; }
  const ChangeSet& changes() const { return changes_; }
  std::string type_name() const override { return "ORA_READ_ACK"; }
  std::size_t wire_size() const override {
    return kHeaderBytes + 8 + changes_.wire_size();
  }

 private:
  std::uint64_t op_id_;
  ChangeSet changes_;
};

// --- the oracle process ------------------------------------------------------

/// Conventional process id for the oracle (outside the server range).
inline constexpr ProcessId kOracleId = kClientIdBase - 1;

class OracleReassignService : public Process {
 public:
  explicit OracleReassignService(Env& env, const SystemConfig& config);

  void on_message(ProcessId from, const Message& msg) override;

  /// Authoritative change set (test inspection).
  const ChangeSet& changes() const { return changes_; }

  /// Number of effective (non-null) completions granted so far.
  std::size_t effective_count() const { return effective_; }

 private:
  /// Integrity (Def. 3): after applying `candidate` changes, the f
  /// heaviest servers must weigh strictly less than half the new total.
  bool integrity_holds_after(const std::vector<Change>& candidate) const;

  Env& env_;
  SystemConfig config_;
  ChangeSet changes_;
  std::size_t effective_ = 0;
};

}  // namespace wrs
