// Paxos wire messages.
#pragma once

#include <optional>

#include "consensus/paxos.h"
#include "runtime/message.h"

namespace wrs {

class PaxPrepare : public MessageBase<PaxPrepare> {
 public:
  PaxPrepare(InstanceId inst, Ballot b) : inst_(inst), ballot_(b) {}
  InstanceId instance() const { return inst_; }
  Ballot ballot() const { return ballot_; }
  std::string type_name() const override { return "PAX_PREPARE"; }
  std::size_t wire_size() const override { return kHeaderBytes + 20; }

 private:
  InstanceId inst_;
  Ballot ballot_;
};

class PaxPromise : public MessageBase<PaxPromise> {
 public:
  PaxPromise(InstanceId inst, Ballot b, bool ok,
             std::optional<Ballot> accepted_ballot, PaxosValue accepted_value)
      : inst_(inst),
        ballot_(b),
        ok_(ok),
        accepted_ballot_(accepted_ballot),
        accepted_value_(std::move(accepted_value)) {}
  InstanceId instance() const { return inst_; }
  Ballot ballot() const { return ballot_; }
  bool ok() const { return ok_; }
  const std::optional<Ballot>& accepted_ballot() const {
    return accepted_ballot_;
  }
  const PaxosValue& accepted_value() const { return accepted_value_; }
  std::string type_name() const override { return "PAX_PROMISE"; }
  std::size_t wire_size() const override {
    return kHeaderBytes + 33 + accepted_value_.size();
  }

 private:
  InstanceId inst_;
  Ballot ballot_;
  bool ok_;
  std::optional<Ballot> accepted_ballot_;
  PaxosValue accepted_value_;
};

class PaxAccept : public MessageBase<PaxAccept> {
 public:
  PaxAccept(InstanceId inst, Ballot b, PaxosValue value)
      : inst_(inst), ballot_(b), value_(std::move(value)) {}
  InstanceId instance() const { return inst_; }
  Ballot ballot() const { return ballot_; }
  const PaxosValue& value() const { return value_; }
  std::string type_name() const override { return "PAX_ACCEPT"; }
  std::size_t wire_size() const override {
    return kHeaderBytes + 20 + value_.size();
  }

 private:
  InstanceId inst_;
  Ballot ballot_;
  PaxosValue value_;
};

class PaxAccepted : public MessageBase<PaxAccepted> {
 public:
  PaxAccepted(InstanceId inst, Ballot b, bool ok)
      : inst_(inst), ballot_(b), ok_(ok) {}
  InstanceId instance() const { return inst_; }
  Ballot ballot() const { return ballot_; }
  bool ok() const { return ok_; }
  std::string type_name() const override { return "PAX_ACCEPTED"; }
  std::size_t wire_size() const override { return kHeaderBytes + 21; }

 private:
  InstanceId inst_;
  Ballot ballot_;
  bool ok_;
};

class PaxLearn : public MessageBase<PaxLearn> {
 public:
  PaxLearn(InstanceId inst, PaxosValue value)
      : inst_(inst), value_(std::move(value)) {}
  InstanceId instance() const { return inst_; }
  const PaxosValue& value() const { return value_; }
  std::string type_name() const override { return "PAX_LEARN"; }
  std::size_t wire_size() const override {
    return kHeaderBytes + 8 + value_.size();
  }

 private:
  InstanceId inst_;
  PaxosValue value_;
};

}  // namespace wrs
