#include "consensus/reduction.h"

#include "common/logging.h"
#include "runtime/msg_pool.h"

namespace wrs {

ReductionServerBase::ReductionServerBase(
    Env& env, ProcessId self, const SystemConfig& config,
    std::shared_ptr<SharedRegisters> registers)
    : env_(env),
      self_(self),
      config_(config),
      registers_(std::move(registers)) {}

void ReductionServerBase::propose(std::string value, DecideCallback cb) {
  my_value_ = std::move(value);
  cb_ = std::move(cb);
  // Line 1: R[i] <- v_i.
  registers_->write(self_, self_, my_value_);
  // Lines 2-6: issue the variant's reassignment request. The polling loop
  // (lines 7-12) starts right away — the decision may come from another
  // server's request.
  issue_request();
  start_polling();
}

void ReductionServerBase::on_message(ProcessId from, const Message& msg) {
  if (from == kOracleId) {
    if (const auto* comp = msg_cast<OracleComplete>(msg)) {
      if (comp->change().is_null() && !decided_.has_value()) {
        on_null_completion();
      }
      return;
    }
    if (const auto* ack = msg_cast<OracleReadAck>(msg)) {
      if (outstanding_reads_.erase(ack->op_id()) == 0) return;  // stale
      if (decided_.has_value()) return;
      auto winner = winning_issuer(
          /*target inferred by variant from contents*/ kNoProcess,
          ack->changes());
      if (winner.has_value()) {
        decide(*winner);
        return;
      }
      if (outstanding_reads_.empty()) {
        // Round exhausted without a decision: poll again shortly.
        env_.schedule(self_, poll_interval_, [this] { poll_round(); });
      }
      return;
    }
  }
  WRS_DEBUG("ReductionServer " << process_name(self_) << ": unhandled "
                               << msg.type_name());
}

void ReductionServerBase::start_polling() {
  if (polling_) return;
  polling_ = true;
  poll_round();
}

void ReductionServerBase::poll_round() {
  if (decided_.has_value()) return;
  for (ProcessId target : poll_targets()) {
    std::uint64_t op = next_op_id_++;
    outstanding_reads_.insert(op);
    env_.send(self_, kOracleId, make_msg<OracleReadReq>(op, target));
  }
}

void ReductionServerBase::decide(ProcessId winner) {
  const auto& slot = registers_->read(winner);
  if (!slot.has_value()) {
    // Cannot happen: the winner wrote R[winner] before issuing its
    // request, and the oracle only created the change afterwards.
    throw std::logic_error("reduction: winner register unwritten");
  }
  decided_ = *slot;
  outstanding_reads_.clear();
  if (cb_) cb_(*decided_);
}

// --- Algorithm 1 -------------------------------------------------------------

bool Alg1Server::issue_request() {
  // Lines 2-5: s_i ∈ F asks +1/2; s_i ∈ S∖F asks -1/2.
  Weight delta = self_ < config_.f ? Weight(1, 2) : Weight(-1, 2);
  env_.send(self_, kOracleId,
            make_msg<OracleReassignReq>(lc_++, self_, delta));
  return true;
}

std::vector<ProcessId> Alg1Server::poll_targets() const {
  return config_.servers();  // lines 8-9: read_changes(s_j) for every j
}

std::optional<ProcessId> Alg1Server::winning_issuer(
    ProcessId, const ChangeSet& cs) const {
  // Line 10: a change <s_j, lc, s_j, delta != 0> (lc >= kFirstCounter —
  // i.e. not the initial weight change).
  for (const Change& c : cs.all()) {
    if (c.counter() >= kFirstCounter && c.issuer() == c.target() &&
        !c.is_null()) {
      return c.issuer();
    }
  }
  return std::nullopt;
}

// --- Algorithm 2 -------------------------------------------------------------

bool Alg2Server::issue_request() {
  if (self_ < config_.f) {
    // Ring transfer inside F (line 3-4); degenerate when f == 1.
    if (config_.f < 2) return false;
    ProcessId dst = (self_ + 1) % config_.f;
    env_.send(self_, kOracleId,
              make_msg<OracleTransferReq>(lc_++, self_, dst,
                                                  Weight(1, 10)));
  } else {
    // Line 6: transfer(s_i, s_0, 0.4).
    env_.send(self_, kOracleId,
              make_msg<OracleTransferReq>(lc_++, self_, ProcessId{0},
                                                  Weight(2, 5)));
  }
  return true;
}

void Alg2Server::on_null_completion() {
  // Retry (see class comment). Only S∖F servers retry — an aborted ring
  // transfer implies a winner already exists, so there is no point.
  if (self_ < config_.f) return;
  env_.schedule(self_, poll_interval_, [this] {
    if (decided_.has_value()) return;
    issue_request();
  });
}

std::vector<ProcessId> Alg2Server::poll_targets() const {
  // Poll s_0's changes: the effective S∖F transfer deposits
  // <s_j, 2, s_0, 0.4> there (lines 9-10 of the paper, reformulated on
  // the destination side).
  return {ProcessId{0}};
}

std::optional<ProcessId> Alg2Server::winning_issuer(
    ProcessId, const ChangeSet& cs) const {
  for (const Change& c : cs.all()) {
    if (c.counter() >= kFirstCounter && c.issuer() >= config_.f &&
        c.target() == ProcessId{0} && c.delta == Weight(2, 5)) {
      return c.issuer();
    }
  }
  return std::nullopt;
}

}  // namespace wrs
