// Executable reductions: consensus from weight reassignment.
//
// Algorithm 1 (Theorem 1): every server writes its proposal to the shared
// SWMR array R, then invokes reassign(s_i, +0.5) if s_i ∈ F or
// reassign(s_i, -0.5) otherwise, against a service solving the weight
// reassignment problem (our oracle). Integrity permits exactly ONE of
// those changes to be non-zero; everyone polls read_changes until they
// spot it and decides R[j] of its issuer.
//
// Algorithm 2 (Theorem 2): same skeleton for the *pairwise* problem —
// F servers shuffle 0.1 around a ring inside F (total weight of F
// unchanged, always effective); each server in S∖F tries to transfer 0.4
// to s_0 ∈ F. P-Integrity permits exactly one of the S∖F transfers to be
// effective; its issuer's proposal is the decision.
//
// Initial weights follow the paper: w(s∈F) = (n-1)/(2f),
// w(s∈S∖F) = (n+1)/(2(n-f)) — see reduction_initial_weights().
//
// Degenerate case: for f = 1 the paper's ring j = (i+1) mod f maps s_i to
// itself; self-transfers are meaningless, so the single F server simply
// skips its transfer (it plays no role in the agreement argument).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <set>

#include "consensus/oracle.h"
#include "consensus/shared_registers.h"
#include "core/config.h"
#include "runtime/env.h"

namespace wrs {

/// Common skeleton of both reduction servers.
class ReductionServerBase : public Process {
 public:
  using DecideCallback = std::function<void(const std::string&)>;

  ReductionServerBase(Env& env, ProcessId self, const SystemConfig& config,
                      std::shared_ptr<SharedRegisters> registers);

  /// The paper's propose(v_i).
  void propose(std::string value, DecideCallback cb);

  bool has_decided() const { return decided_.has_value(); }
  const std::optional<std::string>& decision() const { return decided_; }

  void on_message(ProcessId from, const Message& msg) override;

 protected:
  /// Issues this server's reassignment request (variant-specific);
  /// returns false when the server has no request to issue (degenerate
  /// f=1 ring case of Algorithm 2).
  virtual bool issue_request() = 0;

  /// Which servers' change sets to poll.
  virtual std::vector<ProcessId> poll_targets() const = 0;

  /// Inspects a polled change set; returns the deciding server's id when
  /// the effective change has been spotted.
  virtual std::optional<ProcessId> winning_issuer(
      ProcessId target, const ChangeSet& cs) const = 0;

  /// Hook invoked when this server's own request completed null.
  virtual void on_null_completion() {}

  void start_polling();
  void poll_round();
  void decide(ProcessId winner);

  Env& env_;
  ProcessId self_;
  SystemConfig config_;
  std::shared_ptr<SharedRegisters> registers_;
  std::string my_value_;
  DecideCallback cb_;
  std::optional<std::string> decided_;
  bool polling_ = false;
  std::uint64_t next_op_id_ = 1;
  std::uint64_t lc_ = kFirstCounter;  // local counter for (re)issued requests
  std::set<std::uint64_t> outstanding_reads_;
  TimeNs poll_interval_ = ms(1);
};

/// Algorithm 1 server.
class Alg1Server : public ReductionServerBase {
 public:
  using ReductionServerBase::ReductionServerBase;

 protected:
  bool issue_request() override;
  std::vector<ProcessId> poll_targets() const override;
  std::optional<ProcessId> winning_issuer(ProcessId target,
                                          const ChangeSet& cs) const override;
};

/// Algorithm 2 server.
///
/// Liveness refinement: the paper's argument that "not all S∖F transfers
/// can complete null" (proof of Theorem 2) examines the quiesced state;
/// under adversarial interleavings with the F-ring mid-flight a transfer
/// may legitimately be aborted by P-Validity-I even though it would
/// succeed later. S∖F servers therefore RETRY a null transfer (fresh
/// counter, small backoff) until a winner is visible. P-Integrity still
/// permits at most one effective S∖F transfer ever, so Agreement is
/// unaffected, and in any no-winner quiesced state a retry is granted, so
/// Termination is restored.
class Alg2Server : public ReductionServerBase {
 public:
  using ReductionServerBase::ReductionServerBase;

 protected:
  bool issue_request() override;
  std::vector<ProcessId> poll_targets() const override;
  std::optional<ProcessId> winning_issuer(ProcessId target,
                                          const ChangeSet& cs) const override;
  void on_null_completion() override;
};

}  // namespace wrs
