// Single-decree Paxos, multi-instance, with colocated proposer/acceptor/
// learner roles on every server.
//
// Role in this repository:
//  * substrate for the consensus-based weight-reassignment baseline
//    (src/baselines/paxos_reassign.*), the kind of protocol the paper's
//    related work (AWARE [10], WHEAT [20]) relies on;
//  * a working referee for "this problem is as hard as consensus": the
//    EXP-C1 bench shows it stalls under the asynchrony/crash schedules
//    the consensus-free protocol shrugs off.
//
// Safety holds under full asynchrony; liveness needs partial synchrony
// (retries use randomized exponential backoff).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "common/rng.h"
#include "runtime/env.h"

namespace wrs {

/// Ballot = (round, proposer id), ordered lexicographically.
struct Ballot {
  std::uint64_t round = 0;
  ProcessId pid = kNoProcess;
  friend auto operator<=>(const Ballot&, const Ballot&) = default;
};

using PaxosValue = std::string;
using InstanceId = std::uint64_t;

class PaxosNode {
 public:
  using DecideCallback = std::function<void(InstanceId, const PaxosValue&)>;

  /// `on_decide` fires exactly once per instance on every correct node
  /// that learns the decision.
  PaxosNode(Env& env, ProcessId self, std::uint32_t n, std::uint32_t f,
            DecideCallback on_decide, std::uint64_t seed = 7);

  /// Proposes `value` for `instance`. Safe to call on multiple nodes for
  /// the same instance; Paxos decides a single value.
  void propose(InstanceId instance, PaxosValue value);

  /// Routes paxos messages; true iff consumed.
  bool handle(ProcessId from, const Message& msg);

  bool decided(InstanceId instance) const {
    return decisions_.count(instance) != 0;
  }
  std::optional<PaxosValue> decision(InstanceId instance) const;

  /// Retry timeout base (default 20ms simulated).
  void set_retry_timeout(TimeNs t) { retry_timeout_ = t; }

 private:
  struct AcceptorState {
    Ballot promised;
    std::optional<Ballot> accepted_ballot;
    PaxosValue accepted_value;
  };
  struct ProposerState {
    bool active = false;
    PaxosValue my_value;
    Ballot ballot;
    std::set<ProcessId> promises;
    std::optional<Ballot> best_accepted;
    PaxosValue best_value;
    std::set<ProcessId> accepts;
    bool accept_phase = false;
    std::uint64_t attempt = 0;
  };

  void start_round(InstanceId instance);
  void retry_later(InstanceId instance);
  void learn(InstanceId instance, const PaxosValue& value);
  std::uint32_t majority() const { return n_ / 2 + 1; }

  Env& env_;
  ProcessId self_;
  std::uint32_t n_;
  std::uint32_t f_;
  DecideCallback on_decide_;
  Rng rng_;
  TimeNs retry_timeout_ = ms(20);

  std::map<InstanceId, AcceptorState> acceptors_;
  std::map<InstanceId, ProposerState> proposers_;
  std::map<InstanceId, PaxosValue> decisions_;
};

}  // namespace wrs
