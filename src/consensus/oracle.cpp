#include "consensus/oracle.h"

#include <memory>

#include "quorum/wmqs.h"
#include "runtime/msg_pool.h"

namespace wrs {

OracleReassignService::OracleReassignService(Env& env,
                                             const SystemConfig& config)
    : env_(env),
      config_(config),
      changes_(ChangeSet::initial(config.initial_weights)) {}

bool OracleReassignService::integrity_holds_after(
    const std::vector<Change>& candidate) const {
  ChangeSet next = changes_;
  for (const Change& c : candidate) next.add(c);
  Wmqs q(next.to_weight_map(config_.servers()));
  return q.is_available(config_.f);
}

void OracleReassignService::on_message(ProcessId from, const Message& msg) {
  if (const auto* req = msg_cast<OracleReassignReq>(msg)) {
    // Validity-I: create the requested change if Integrity survives,
    // otherwise a null change.
    Change c(from, req->counter(), req->target(), req->delta());
    if (integrity_holds_after({c})) {
      changes_.add(c);
      ++effective_;
    } else {
      c.delta = Weight(0);
      changes_.add(c);
    }
    env_.send(kOracleId, from, make_msg<OracleComplete>(c));
    return;
  }

  if (const auto* req = msg_cast<OracleTransferReq>(msg)) {
    // P-Validity-I: both changes non-zero iff P-Integrity survives.
    Change neg(from, req->counter(), req->src(), -req->delta());
    Change pos(from, req->counter(), req->dst(), req->delta());
    if (integrity_holds_after({neg, pos})) {
      changes_.add(neg);
      changes_.add(pos);
      ++effective_;
      env_.send(kOracleId, from, make_msg<OracleComplete>(neg));
    } else {
      Change null_neg(from, req->counter(), req->src(), Weight(0));
      Change null_pos(from, req->counter(), req->dst(), Weight(0));
      changes_.add(null_neg);
      changes_.add(null_pos);
      env_.send(kOracleId, from, make_msg<OracleComplete>(null_neg));
    }
    return;
  }

  if (const auto* req = msg_cast<OracleReadReq>(msg)) {
    env_.send(kOracleId, from,
              make_msg<OracleReadAck>(
                  req->op_id(), changes_.subset_for(req->target())));
    return;
  }
}

}  // namespace wrs
