#include "consensus/paxos.h"

#include <memory>

#include "common/logging.h"
#include "consensus/paxos_messages.h"
#include "runtime/msg_pool.h"

namespace wrs {

PaxosNode::PaxosNode(Env& env, ProcessId self, std::uint32_t n,
                     std::uint32_t f, DecideCallback on_decide,
                     std::uint64_t seed)
    : env_(env),
      self_(self),
      n_(n),
      f_(f),
      on_decide_(std::move(on_decide)),
      rng_(seed ^ (std::uint64_t{self} << 32)) {}

std::optional<PaxosValue> PaxosNode::decision(InstanceId instance) const {
  auto it = decisions_.find(instance);
  if (it == decisions_.end()) return std::nullopt;
  return it->second;
}

void PaxosNode::propose(InstanceId instance, PaxosValue value) {
  if (decisions_.count(instance) != 0) return;
  ProposerState& p = proposers_[instance];
  if (p.active) return;  // already proposing; our value is queued by state
  p.active = true;
  p.my_value = std::move(value);
  start_round(instance);
}

void PaxosNode::start_round(InstanceId instance) {
  ProposerState& p = proposers_[instance];
  if (decisions_.count(instance) != 0) return;
  ++p.attempt;
  p.ballot = Ballot{p.attempt, self_};
  p.promises.clear();
  p.accepts.clear();
  p.best_accepted.reset();
  p.best_value.clear();
  p.accept_phase = false;
  env_.broadcast_to_servers(self_,
                            make_msg<PaxPrepare>(instance, p.ballot));
  retry_later(instance);
}

void PaxosNode::retry_later(InstanceId instance) {
  // Randomized exponential backoff; a fresh round only starts if the
  // instance is still undecided and this proposer is still active.
  ProposerState& p = proposers_[instance];
  std::uint64_t attempt = p.attempt;
  TimeNs backoff = retry_timeout_ * static_cast<TimeNs>(1 + p.attempt);
  backoff += static_cast<TimeNs>(rng_.below(
      static_cast<std::uint64_t>(retry_timeout_)));
  env_.schedule(self_, backoff, [this, instance, attempt] {
    auto it = proposers_.find(instance);
    if (it == proposers_.end() || !it->second.active) return;
    if (decisions_.count(instance) != 0) return;
    if (it->second.attempt != attempt) return;  // a newer round is running
    start_round(instance);
  });
}

void PaxosNode::learn(InstanceId instance, const PaxosValue& value) {
  auto [it, inserted] = decisions_.emplace(instance, value);
  if (!inserted) return;
  auto pit = proposers_.find(instance);
  if (pit != proposers_.end()) pit->second.active = false;
  if (on_decide_) on_decide_(instance, value);
}

bool PaxosNode::handle(ProcessId from, const Message& msg) {
  if (const auto* prep = msg_cast<PaxPrepare>(msg)) {
    AcceptorState& a = acceptors_[prep->instance()];
    bool ok = prep->ballot() > a.promised;
    if (ok) a.promised = prep->ballot();
    env_.send(self_, from,
              make_msg<PaxPromise>(prep->instance(), prep->ballot(),
                                           ok, a.accepted_ballot,
                                           a.accepted_value));
    return true;
  }

  if (const auto* prom = msg_cast<PaxPromise>(msg)) {
    auto it = proposers_.find(prom->instance());
    if (it == proposers_.end()) return true;
    ProposerState& p = it->second;
    if (!p.active || p.accept_phase || !(prom->ballot() == p.ballot)) {
      return true;  // stale
    }
    if (!prom->ok()) return true;  // rejected; backoff timer will retry
    p.promises.insert(from);
    if (prom->accepted_ballot().has_value() &&
        (!p.best_accepted.has_value() ||
         *prom->accepted_ballot() > *p.best_accepted)) {
      p.best_accepted = *prom->accepted_ballot();
      p.best_value = prom->accepted_value();
    }
    if (p.promises.size() >= majority()) {
      p.accept_phase = true;
      const PaxosValue& v =
          p.best_accepted.has_value() ? p.best_value : p.my_value;
      env_.broadcast_to_servers(
          self_, make_msg<PaxAccept>(prom->instance(), p.ballot, v));
    }
    return true;
  }

  if (const auto* acc = msg_cast<PaxAccept>(msg)) {
    AcceptorState& a = acceptors_[acc->instance()];
    bool ok = !(acc->ballot() < a.promised);
    if (ok) {
      a.promised = acc->ballot();
      a.accepted_ballot = acc->ballot();
      a.accepted_value = acc->value();
    }
    env_.send(self_, from,
              make_msg<PaxAccepted>(acc->instance(), acc->ballot(),
                                            ok));
    return true;
  }

  if (const auto* acd = msg_cast<PaxAccepted>(msg)) {
    auto it = proposers_.find(acd->instance());
    if (it == proposers_.end()) return true;
    ProposerState& p = it->second;
    if (!p.active || !p.accept_phase || !(acd->ballot() == p.ballot)) {
      return true;
    }
    if (!acd->ok()) return true;
    p.accepts.insert(from);
    if (p.accepts.size() >= majority()) {
      // Decided: tell everyone (including self via loopback).
      PaxosValue v = p.best_accepted.has_value() ? p.best_value : p.my_value;
      env_.broadcast_to_servers(
          self_, make_msg<PaxLearn>(acd->instance(), v));
    }
    return true;
  }

  if (const auto* learn_msg = msg_cast<PaxLearn>(msg)) {
    learn(learn_msg->instance(), learn_msg->value());
    return true;
  }

  return false;
}

}  // namespace wrs
