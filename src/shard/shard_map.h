// Key -> shard assignment for a multi-group WMQS deployment.
//
// A ShardMap describes N independent replica groups ("shards") living in
// one runtime: shard g owns the contiguous global server ids
// [g*n, (g+1)*n), its own SystemConfig (weights, fault threshold) and —
// deployed on top of it — its own Wmqs quorum geometry and ReassignNode
// group. Weight reassignment thereby becomes a PER-SHARD tuning knob:
// each group's change sets, floors, and transfer protocols are fully
// independent of every other group's.
//
// Keys route by hash: FNV-1a(key) mod N. The function is a pure,
// process-independent function of the key bytes, so every client, every
// test, and every replayed chaos episode agrees on the placement without
// coordination. The paper's single-group system is exactly the N=1 map
// (every key, including the paper's register "", maps to shard 0).
// Elastic resharding (PR 7) layers an *override table* on the static
// hash: individual keys can be re-homed to another shard by the
// MigrationEngine, each override stamped with the migration's map epoch.
// Epochs are globally monotone per deployment (the engine is the single
// allocator), so "newest epoch wins" makes override propagation a
// monotone merge — the cross-group analogue of the paper's change-set
// piggybacking. Clients hold their own ShardMap copy and learn overrides
// lazily from WrongShardAck redirects; apply_override() ignores anything
// not strictly newer than what the copy already knows.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/config.h"
#include "storage/tag.h"

namespace wrs {

class ShardMap {
 public:
  /// Wraps an unsharded deployment as its own single shard (the config
  /// is used verbatim; shard/base keep whatever the config says).
  static ShardMap single(SystemConfig config);

  /// `shards` uniform groups of `per_shard_n` servers each, fault
  /// threshold `f` per group. `weight_template` (keyed 0..per_shard_n-1)
  /// seeds every group's initial weights; defaults to uniform weight 1.
  static ShardMap uniform(std::uint32_t shards, std::uint32_t per_shard_n,
                          std::uint32_t f,
                          std::optional<WeightMap> weight_template = {});

  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(configs_.size());
  }
  std::uint32_t total_servers() const { return total_servers_; }

  /// The shard responsible for `key`: the override table when the key
  /// has been migrated, the static hash placement otherwise.
  ShardId shard_of(const RegisterKey& key) const {
    if (!overrides_.empty()) {
      auto it = overrides_.find(key);
      if (it != overrides_.end()) return it->second.owner;
    }
    return static_hash_shard_of(key);
  }

  /// The static hash placement, ignoring overrides (the "home" shard a
  /// client with no migration knowledge would pick).
  ShardId static_hash_shard_of(const RegisterKey& key) const {
    return static_cast<ShardId>(key_hash(key) % configs_.size());
  }

  /// One migrated-key exception layered on the static hash.
  struct Override {
    ShardId owner = 0;
    std::uint64_t epoch = 0;  ///< map epoch of the migration that set it
  };

  /// Learns "`key` is owned by `owner` as of map epoch `epoch`". Applies
  /// only when strictly newer than what this copy already knows for the
  /// key (epoch monotonicity — stale redirects are ignored); an override
  /// pointing back at the key's static hash shard is stored all the same
  /// so later stale epochs still lose. Returns whether the table changed.
  bool apply_override(const RegisterKey& key, ShardId owner,
                      std::uint64_t epoch);

  /// Newest map epoch this copy has seen (0 = only the static hash).
  std::uint64_t epoch() const { return epoch_; }

  /// The override entry for `key`, if any.
  std::optional<Override> override_of(const RegisterKey& key) const {
    auto it = overrides_.find(key);
    if (it == overrides_.end()) return std::nullopt;
    return it->second;
  }

  std::size_t num_overrides() const { return overrides_.size(); }

  /// Config of shard `g`; throws std::out_of_range naming the offender
  /// and the valid range.
  const SystemConfig& config(ShardId g) const;

  /// The shard owning global server id `s`; throws std::out_of_range
  /// when `s` is no deployed server.
  ShardId shard_of_server(ProcessId s) const;

  /// Non-throwing variant for hot paths (reply routing): O(1) on the
  /// uniform shard-major layout, a group scan otherwise.
  std::optional<ShardId> try_shard_of_server(ProcessId s) const {
    if (uniform_n_ > 0) {
      if (s >= total_servers_) return std::nullopt;
      return static_cast<ShardId>(s / uniform_n_);
    }
    return scan_shard_of_server(s);
  }

  /// Global server ids of shard `g` (validated like config(g)).
  std::vector<ProcessId> servers(ShardId g) const {
    return config(g).servers();
  }

  /// Every deployed server id, shard-major ascending.
  std::vector<ProcessId> all_server_ids() const;

  /// FNV-1a 64-bit over the key bytes (exposed so tests can pin the
  /// placement function).
  static std::uint64_t key_hash(const RegisterKey& key);

 private:
  explicit ShardMap(std::vector<SystemConfig> configs);

  std::optional<ShardId> scan_shard_of_server(ProcessId s) const;

  std::vector<SystemConfig> configs_;
  /// Migrated-key exceptions (see apply_override). Keyed by register key;
  /// entries are never removed, only superseded by newer epochs.
  std::map<RegisterKey, Override> overrides_;
  std::uint64_t epoch_ = 0;
  std::uint32_t total_servers_ = 0;
  /// Per-shard size when groups are uniform and contiguous from id 0
  /// (the Cluster layout) — enables O(1) server->shard; 0 otherwise.
  std::uint32_t uniform_n_ = 0;
};

}  // namespace wrs
