#include "shard/shard_map.h"

#include <stdexcept>
#include <string>

namespace wrs {

ShardMap::ShardMap(std::vector<SystemConfig> configs)
    : configs_(std::move(configs)) {
  bool uniform = true;
  for (ShardId g = 0; g < configs_.size(); ++g) {
    const SystemConfig& cfg = configs_[g];
    uniform = uniform && cfg.n == configs_[0].n && cfg.base == g * cfg.n;
    total_servers_ += cfg.n;
  }
  if (uniform) uniform_n_ = configs_[0].n;
}

ShardMap ShardMap::single(SystemConfig config) {
  std::vector<SystemConfig> configs;
  configs.push_back(std::move(config));
  return ShardMap(std::move(configs));
}

ShardMap ShardMap::uniform(std::uint32_t shards, std::uint32_t per_shard_n,
                           std::uint32_t f,
                           std::optional<WeightMap> weight_template) {
  if (shards == 0) {
    throw std::invalid_argument("ShardMap: need at least 1 shard");
  }
  WeightMap tmpl =
      weight_template ? *weight_template : WeightMap::uniform(per_shard_n);
  if (tmpl.size() != per_shard_n) {
    throw std::invalid_argument(
        "ShardMap: weight template has " + std::to_string(tmpl.size()) +
        " entries, want one per shard server (" +
        std::to_string(per_shard_n) + ")");
  }
  std::vector<SystemConfig> configs;
  configs.reserve(shards);
  for (ShardId g = 0; g < shards; ++g) {
    ProcessId base = g * per_shard_n;
    configs.push_back(SystemConfig::make_shard(g, base, per_shard_n, f,
                                               tmpl.shifted_by(base)));
  }
  return ShardMap(std::move(configs));
}

bool ShardMap::apply_override(const RegisterKey& key, ShardId owner,
                              std::uint64_t epoch) {
  if (owner >= configs_.size()) {
    throw std::out_of_range("ShardMap: override owner shard " +
                            std::to_string(owner) + " out of range [0, " +
                            std::to_string(configs_.size()) + ")");
  }
  auto it = overrides_.find(key);
  if (it != overrides_.end() && it->second.epoch >= epoch) return false;
  overrides_[key] = Override{owner, epoch};
  if (epoch > epoch_) epoch_ = epoch;
  return true;
}

const SystemConfig& ShardMap::config(ShardId g) const {
  if (g >= configs_.size()) {
    throw std::out_of_range("ShardMap: shard id " + std::to_string(g) +
                            " out of range [0, " +
                            std::to_string(configs_.size()) + ")");
  }
  return configs_[g];
}

std::optional<ShardId> ShardMap::scan_shard_of_server(ProcessId s) const {
  for (ShardId g = 0; g < configs_.size(); ++g) {
    const SystemConfig& cfg = configs_[g];
    if (s >= cfg.base && s < cfg.base + cfg.n) return g;
  }
  return std::nullopt;
}

ShardId ShardMap::shard_of_server(ProcessId s) const {
  if (auto g = try_shard_of_server(s)) return *g;
  throw std::out_of_range("ShardMap: " + process_name(s) +
                          " is no deployed server (total " +
                          std::to_string(total_servers_) + " across " +
                          std::to_string(configs_.size()) + " shards)");
}

std::vector<ProcessId> ShardMap::all_server_ids() const {
  std::vector<ProcessId> out;
  out.reserve(total_servers_);
  for (const SystemConfig& cfg : configs_) {
    for (ProcessId s : cfg.servers()) out.push_back(s);
  }
  return out;
}

std::uint64_t ShardMap::key_hash(const RegisterKey& key) {
  // FNV-1a 64-bit.
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char ch : key) {
    h ^= ch;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace wrs
