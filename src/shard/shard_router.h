// Client-side shard routing layer: one operation-multiplexed AbdClient
// per shard, every read/write routed by ShardMap::shard_of(key).
//
// The router preserves the pipelined client's semantics exactly:
//  * per-key FIFO — held by the ROUTER on multi-shard maps: a migration
//    can move a key between groups mid-operation, so two inner clients'
//    FIFOs alone would let a later same-key op overlap an earlier one
//    mid-redirect (and race the (max_ts+1, pid) tag choice). The router
//    dispatches one keyed operation at a time per key, in issue order,
//    each routed by the map AS OF its dispatch; a single-shard map keeps
//    the legacy direct path (the one inner client's FIFO suffices,
//    byte-identically);
//  * pipelining — operations on distinct keys multiplex freely, now both
//    within a shard (the AbdClient's op map) and across shards (disjoint
//    replica groups never share quorum traffic at all);
//  * change-set restarts stay shard-local: a reassignment in shard g
//    restarts only the operations routed to g.
//
// list_keys() fans out to every shard and resolves with the union once
// all groups answered — the sharded analogue of the single weighted
// quorum's key discovery.
//
// snapshot(keys) returns a CONSISTENT CUT across keys on any shards: a
// set of (key, register) pairs that all coexisted at one linearization
// point. Fast path: repeated pipelined collect rounds (one SnapReq per
// involved shard) until two consecutive rounds observe the same tag for
// every key (double collect — the ABD tag is the modification counter);
// keys whose confirming tag was not quorum-unanimous get a write-back
// install before the cut returns. Under sustained write pressure the
// double collect may never confirm, so after a bounded number of rounds
// the router switches to the fenced fallback (scan embedded in update):
// SnapFreeze parks writers behind per-key fences at every involved
// shard, SnapRelease installs the frozen maxima and lifts the fences —
// two rounds per shard, wait-free regardless of contention. A round that
// observes a migration fence, a moved key, or a foreign snapshot aborts
// (lift-only release) and retries under seeded jittered exponential
// backoff — contending snapshotters that abort each other's fences in
// lockstep would otherwise livelock; moved keys teach the router's map
// the same way WrongShardAck redirects do.
//
// Replies route back by SENDER: a server's global id names its shard, so
// handle() dispatches to exactly one inner client (no per-client probing
// on the reply hot path).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.h"
#include "shard/shard_map.h"
#include "storage/abd_client.h"

namespace wrs {

class ShardRouter {
 public:
  ShardRouter(Env& env, ProcessId self, ShardMap map, AbdClient::Mode mode);

  /// Routed atomic operations (see AbdClient for the callback contracts).
  OpId read(RegisterKey key, AbdClient::ReadCallback cb);
  OpId write(RegisterKey key, Value value, AbdClient::WriteCallback cb);

  /// Key discovery across every shard; cb fires once with the sorted
  /// union after all groups answered.
  OpId list_keys(AbdClient::KeysCallback cb);

  /// The consistent cut a snapshot() resolved with.
  struct SnapshotResult {
    /// One (key, register) per requested key, in first-occurrence
    /// request order (duplicates collapsed). All pairs coexisted at a
    /// single linearization point between the snapshot's invocation and
    /// its response.
    std::vector<std::pair<RegisterKey, TaggedValue>> cut;
    std::uint32_t rounds = 0;    ///< collect rounds run (fast path >= 2)
    bool used_fallback = false;  ///< the fenced fallback produced the cut
  };
  using SnapshotCallback = std::function<void(const SnapshotResult&)>;

  /// Atomic snapshot of `keys` (any shards); cb fires once with the cut.
  /// Never queued behind keyed traffic — snapshots multiplex freely with
  /// reads and writes, like list_keys(). An empty key set resolves
  /// immediately with an empty cut.
  OpId snapshot(std::vector<RegisterKey> keys, SnapshotCallback cb);

  /// Routes a server reply to the inner client of the sender's shard;
  /// true iff consumed. Messages from non-servers are not the router's.
  ///
  /// WrongShardAck redirects are the router's own: the carried override
  /// is merged into this client's ShardMap copy (newest epoch wins) and,
  /// when the map now disagrees with the sender's shard, the operation is
  /// ejected from the sender's inner client and reissued at the current
  /// owner — a write keeps its once-chosen tag. A redirect that does NOT
  /// move the map (a relic server lagging behind a newer migration) is
  /// consumed without ejecting, so stale redirects can never livelock an
  /// operation that is already at the right shard.
  bool handle(ProcessId from, const Message& msg);

  const ShardMap& map() const { return map_; }
  std::uint32_t num_shards() const { return map_.num_shards(); }
  ShardId shard_of(const RegisterKey& key) const { return map_.shard_of(key); }

  /// The inner client of shard `g` (validated like ShardMap::config).
  AbdClient& shard_client(ShardId g);

  /// Single-shard deployments only: the one inner client (the legacy
  /// AbdClient surface); throws std::logic_error on a multi-shard map.
  AbdClient& only_client();

  // --- aggregated observability (sums/maxima over the inner clients) ------
  bool busy() const;
  std::size_t in_flight() const;
  /// Max over shards of each inner client's started-op high-water mark
  /// (a lower bound on the true cross-shard concurrency).
  std::size_t max_in_flight() const;
  std::uint64_t restarts() const;
  std::uint64_t retransmits() const;
  /// Batched envelopes flushed / frames carried, summed over shards.
  std::uint64_t batches_sent() const;
  std::uint64_t batched_frames() const;
  /// Operations reissued at another shard after a WrongShardAck.
  std::uint64_t redirects() const { return redirects_; }
  /// Snapshots resolved / collect rounds run / fenced-fallback attempts.
  std::uint64_t snapshots_taken() const { return snapshots_taken_; }
  std::uint64_t snapshot_rounds() const { return snapshot_rounds_; }
  std::uint64_t snapshot_fallbacks() const { return snapshot_fallbacks_; }

  /// Collect rounds a snapshot tries before engaging the fenced
  /// fallback (clamped to >= 2: a double collect needs two rounds).
  void set_snapshot_max_collect_rounds(std::uint32_t n);

  void set_retry_interval(TimeNs interval);
  void set_max_restarts(std::uint32_t m);
  /// One-round read fast path on every inner client (see
  /// AbdClient::set_read_fast_path).
  void set_read_fast_path(bool on);
  /// Reads completed in one round across all inner clients.
  std::uint64_t fast_path_reads() const;
  /// Batched wire mode on every inner client. Batching is inherently
  /// same-shard: each inner client only ever talks to its own group, so
  /// coalescing its buffered phase broadcasts can never mix shards.
  void set_batching(std::size_t max_ops, TimeNs max_delay);

 private:
  /// One keyed operation awaiting its per-key turn (multi-shard only).
  struct QueuedOp {
    bool is_write = false;
    RegisterKey key;
    Value value;
    AbdClient::ReadCallback rcb;
    AbdClient::WriteCallback wcb;
  };

  /// One in-flight snapshot's state machine, shared by the per-shard
  /// fan-out callbacks of its current round.
  struct SnapState {
    std::vector<RegisterKey> keys;  ///< deduped, first-occurrence order
    SnapshotCallback cb;
    std::uint32_t rounds = 0;
    bool used_fallback = false;
    /// Double-collect memory: the previous clean round's tag vector.
    bool have_prev = false;
    std::vector<Tag> prev_tags;
    /// Current round's per-key aggregates, index-aligned with `keys`.
    std::vector<AbdClient::CollectEntry> acc;
    std::size_t pending = 0;  ///< shards (or installs) still outstanding
    bool all_held = true;
    SnapId snap_id = 0;
    std::uint32_t backoffs = 0;  ///< aborted fallback attempts so far
    /// Fallback freeze partition (shard, key indices): the release round
    /// targets the SAME groups that were frozen, even if the map learns
    /// new overrides in between.
    std::vector<std::pair<ShardId, std::vector<std::size_t>>> frozen_parts;
  };
  using SnapPtr = std::shared_ptr<SnapState>;

  std::vector<std::pair<ShardId, std::vector<std::size_t>>> snap_partition(
      const SnapState& st) const;
  OpId snap_collect_round(SnapPtr st);
  void snap_collect_done(SnapPtr st);
  void snap_install_and_finish(SnapPtr st);
  void snap_fallback(SnapPtr st);
  void snap_freeze_done(SnapPtr st);
  void snap_finish(SnapPtr st);

  OpId submit(QueuedOp op);
  OpId dispatch(QueuedOp op);
  void next_for(const RegisterKey& key);

  /// Learned routing state: starts as the static hash map, accumulates
  /// overrides from WrongShardAck redirects.
  ShardMap map_;
  Env& env_;
  ProcessId self_ = 0;
  Rng snap_rng_;  ///< fallback-retry jitter (seeded by self_)
  std::vector<std::unique_ptr<AbdClient>> clients_;
  std::uint64_t redirects_ = 0;
  std::uint64_t snapshots_taken_ = 0;
  std::uint64_t snapshot_rounds_ = 0;
  std::uint64_t snapshot_fallbacks_ = 0;
  std::uint32_t snap_max_collect_rounds_ = 6;
  std::uint32_t snap_seq_ = 0;  ///< per-client snapshot instance counter
  /// Cross-shard per-key FIFO (multi-shard maps): keys with a dispatched
  /// operation, and the issue-order queue behind each.
  std::set<RegisterKey> keyed_busy_;
  std::map<RegisterKey, std::deque<QueuedOp>> keyed_queue_;
};

}  // namespace wrs
