// Client-side shard routing layer: one operation-multiplexed AbdClient
// per shard, every read/write routed by ShardMap::shard_of(key).
//
// The router preserves the pipelined client's semantics exactly:
//  * per-key FIFO — a key deterministically maps to one shard, so all of
//    a client's operations on that key flow through the same AbdClient,
//    which serializes them in issue order;
//  * pipelining — operations on distinct keys multiplex freely, now both
//    within a shard (the AbdClient's op map) and across shards (disjoint
//    replica groups never share quorum traffic at all);
//  * change-set restarts stay shard-local: a reassignment in shard g
//    restarts only the operations routed to g.
//
// list_keys() fans out to every shard and resolves with the union once
// all groups answered — the sharded analogue of the single weighted
// quorum's key discovery.
//
// Replies route back by SENDER: a server's global id names its shard, so
// handle() dispatches to exactly one inner client (no per-client probing
// on the reply hot path).
#pragma once

#include <memory>
#include <vector>

#include "shard/shard_map.h"
#include "storage/abd_client.h"

namespace wrs {

class ShardRouter {
 public:
  ShardRouter(Env& env, ProcessId self, ShardMap map, AbdClient::Mode mode);

  /// Routed atomic operations (see AbdClient for the callback contracts).
  OpId read(RegisterKey key, AbdClient::ReadCallback cb);
  OpId write(RegisterKey key, Value value, AbdClient::WriteCallback cb);

  /// Key discovery across every shard; cb fires once with the sorted
  /// union after all groups answered.
  OpId list_keys(AbdClient::KeysCallback cb);

  /// Routes a server reply to the inner client of the sender's shard;
  /// true iff consumed. Messages from non-servers are not the router's.
  bool handle(ProcessId from, const Message& msg);

  const ShardMap& map() const { return map_; }
  std::uint32_t num_shards() const { return map_.num_shards(); }
  ShardId shard_of(const RegisterKey& key) const { return map_.shard_of(key); }

  /// The inner client of shard `g` (validated like ShardMap::config).
  AbdClient& shard_client(ShardId g);

  /// Single-shard deployments only: the one inner client (the legacy
  /// AbdClient surface); throws std::logic_error on a multi-shard map.
  AbdClient& only_client();

  // --- aggregated observability (sums/maxima over the inner clients) ------
  bool busy() const;
  std::size_t in_flight() const;
  /// Max over shards of each inner client's started-op high-water mark
  /// (a lower bound on the true cross-shard concurrency).
  std::size_t max_in_flight() const;
  std::uint64_t restarts() const;
  std::uint64_t retransmits() const;
  /// Batched envelopes flushed / frames carried, summed over shards.
  std::uint64_t batches_sent() const;
  std::uint64_t batched_frames() const;

  void set_retry_interval(TimeNs interval);
  void set_max_restarts(std::uint32_t m);
  /// Batched wire mode on every inner client. Batching is inherently
  /// same-shard: each inner client only ever talks to its own group, so
  /// coalescing its buffered phase broadcasts can never mix shards.
  void set_batching(std::size_t max_ops, TimeNs max_delay);

 private:
  ShardMap map_;
  std::vector<std::unique_ptr<AbdClient>> clients_;
};

}  // namespace wrs
