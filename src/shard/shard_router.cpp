#include "shard/shard_router.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace wrs {

ShardRouter::ShardRouter(Env& env, ProcessId self, ShardMap map,
                         AbdClient::Mode mode)
    : map_(std::move(map)) {
  clients_.reserve(map_.num_shards());
  for (ShardId g = 0; g < map_.num_shards(); ++g) {
    clients_.push_back(
        std::make_unique<AbdClient>(env, self, map_.config(g), mode));
  }
}

OpId ShardRouter::read(RegisterKey key, AbdClient::ReadCallback cb) {
  if (clients_.size() == 1) {
    return clients_[0]->read(std::move(key), std::move(cb));
  }
  QueuedOp op;
  op.key = std::move(key);
  op.rcb = std::move(cb);
  return submit(std::move(op));
}

OpId ShardRouter::write(RegisterKey key, Value value,
                        AbdClient::WriteCallback cb) {
  if (clients_.size() == 1) {
    return clients_[0]->write(std::move(key), std::move(value), std::move(cb));
  }
  QueuedOp op;
  op.is_write = true;
  op.key = std::move(key);
  op.value = std::move(value);
  op.wcb = std::move(cb);
  return submit(std::move(op));
}

OpId ShardRouter::submit(QueuedOp op) {
  if (keyed_busy_.count(op.key)) {
    keyed_queue_[op.key].push_back(std::move(op));
    return 0;  // queued; callers consume results via the callback
  }
  return dispatch(std::move(op));
}

OpId ShardRouter::dispatch(QueuedOp op) {
  keyed_busy_.insert(op.key);
  // Routed by the map AS OF dispatch — a queued op issued before a
  // redirect was learned still goes straight to the current owner.
  RegisterKey key = op.key;
  AbdClient& c = *clients_[map_.shard_of(key)];
  if (op.is_write) {
    return c.write(key, std::move(op.value),
                   [this, key, cb = std::move(op.wcb)](const Tag& tag) {
                     cb(tag);
                     next_for(key);
                   });
  }
  return c.read(key, [this, key, cb = std::move(op.rcb)](const TaggedValue& tv) {
    cb(tv);
    next_for(key);
  });
}

void ShardRouter::next_for(const RegisterKey& key) {
  keyed_busy_.erase(key);
  auto it = keyed_queue_.find(key);
  if (it == keyed_queue_.end()) return;
  QueuedOp op = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) keyed_queue_.erase(it);
  dispatch(std::move(op));
}

OpId ShardRouter::list_keys(AbdClient::KeysCallback cb) {
  struct FanOut {
    std::size_t remaining;
    std::set<RegisterKey> keys;
    AbdClient::KeysCallback cb;
  };
  auto state = std::make_shared<FanOut>();
  state->remaining = clients_.size();
  state->cb = std::move(cb);
  OpId first = 0;
  for (std::size_t g = 0; g < clients_.size(); ++g) {
    OpId id = clients_[g]->list_keys(
        [state](const std::vector<RegisterKey>& keys) {
          state->keys.insert(keys.begin(), keys.end());
          if (--state->remaining == 0) {
            state->cb(std::vector<RegisterKey>(state->keys.begin(),
                                               state->keys.end()));
          }
        });
    if (g == 0) first = id;
  }
  return first;
}

bool ShardRouter::handle(ProcessId from, const Message& msg) {
  if (!is_server(from)) return false;
  // O(1) on the uniform shard-major layout — this is the per-reply hot
  // path (every quorum ack of every shard funnels through here).
  std::optional<ShardId> g = map_.try_shard_of_server(from);
  if (!g.has_value()) return false;  // outside every group (co-located)
  if (const auto* ws = msg_cast<WrongShardAck>(msg)) {
    map_.apply_override(ws->key(), ws->owner(), ws->epoch());
    ShardId cur = map_.shard_of(ws->key());
    // Only eject when the map moved the key off the sender's shard — a
    // redirect from a relic server (its mark predates a newer migration
    // this client already learned) must not bounce a correctly-routed op.
    if (cur == *g) return true;
    std::optional<AbdClient::EjectedOp> op = clients_[*g]->eject(ws->op_id());
    if (!op) return true;  // completed, or already reissued by an earlier ack
    ++redirects_;
    clients_[cur]->resume(std::move(*op));
    return true;
  }
  return clients_[*g]->handle(from, msg);
}

AbdClient& ShardRouter::shard_client(ShardId g) {
  map_.config(g);  // validates, naming offender + range
  return *clients_[g];
}

AbdClient& ShardRouter::only_client() {
  if (clients_.size() != 1) {
    throw std::logic_error(
        "ShardRouter: the raw AbdClient surface needs a single-shard "
        "deployment (" +
        std::to_string(clients_.size()) +
        " shards here) — use shard_client(g)");
  }
  return *clients_[0];
}

bool ShardRouter::busy() const {
  return std::any_of(clients_.begin(), clients_.end(),
                     [](const auto& c) { return c->busy(); });
}

std::size_t ShardRouter::in_flight() const {
  std::size_t sum = 0;
  for (const auto& c : clients_) sum += c->in_flight();
  return sum;
}

std::size_t ShardRouter::max_in_flight() const {
  std::size_t best = 0;
  for (const auto& c : clients_) best = std::max(best, c->max_in_flight());
  return best;
}

std::uint64_t ShardRouter::restarts() const {
  std::uint64_t sum = 0;
  for (const auto& c : clients_) sum += c->restarts();
  return sum;
}

std::uint64_t ShardRouter::retransmits() const {
  std::uint64_t sum = 0;
  for (const auto& c : clients_) sum += c->retransmits();
  return sum;
}

std::uint64_t ShardRouter::batches_sent() const {
  std::uint64_t sum = 0;
  for (const auto& c : clients_) sum += c->batches_sent();
  return sum;
}

std::uint64_t ShardRouter::batched_frames() const {
  std::uint64_t sum = 0;
  for (const auto& c : clients_) sum += c->batched_frames();
  return sum;
}

void ShardRouter::set_retry_interval(TimeNs interval) {
  for (const auto& c : clients_) c->set_retry_interval(interval);
}

void ShardRouter::set_read_fast_path(bool on) {
  for (const auto& c : clients_) c->set_read_fast_path(on);
}

std::uint64_t ShardRouter::fast_path_reads() const {
  std::uint64_t sum = 0;
  for (const auto& c : clients_) sum += c->fast_path_reads();
  return sum;
}

void ShardRouter::set_batching(std::size_t max_ops, TimeNs max_delay) {
  for (const auto& c : clients_) c->set_batching(max_ops, max_delay);
}

void ShardRouter::set_max_restarts(std::uint32_t m) {
  for (const auto& c : clients_) c->set_max_restarts(m);
}

}  // namespace wrs
