#include "shard/shard_router.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace wrs {

ShardRouter::ShardRouter(Env& env, ProcessId self, ShardMap map,
                         AbdClient::Mode mode)
    : map_(std::move(map)),
      env_(env),
      self_(self),
      snap_rng_(0x9E3779B97F4A7C15ull ^ self) {
  clients_.reserve(map_.num_shards());
  for (ShardId g = 0; g < map_.num_shards(); ++g) {
    clients_.push_back(
        std::make_unique<AbdClient>(env, self, map_.config(g), mode));
  }
}

OpId ShardRouter::read(RegisterKey key, AbdClient::ReadCallback cb) {
  if (clients_.size() == 1) {
    return clients_[0]->read(std::move(key), std::move(cb));
  }
  QueuedOp op;
  op.key = std::move(key);
  op.rcb = std::move(cb);
  return submit(std::move(op));
}

OpId ShardRouter::write(RegisterKey key, Value value,
                        AbdClient::WriteCallback cb) {
  if (clients_.size() == 1) {
    return clients_[0]->write(std::move(key), std::move(value), std::move(cb));
  }
  QueuedOp op;
  op.is_write = true;
  op.key = std::move(key);
  op.value = std::move(value);
  op.wcb = std::move(cb);
  return submit(std::move(op));
}

OpId ShardRouter::submit(QueuedOp op) {
  if (keyed_busy_.count(op.key)) {
    keyed_queue_[op.key].push_back(std::move(op));
    return 0;  // queued; callers consume results via the callback
  }
  return dispatch(std::move(op));
}

OpId ShardRouter::dispatch(QueuedOp op) {
  keyed_busy_.insert(op.key);
  // Routed by the map AS OF dispatch — a queued op issued before a
  // redirect was learned still goes straight to the current owner.
  RegisterKey key = op.key;
  AbdClient& c = *clients_[map_.shard_of(key)];
  if (op.is_write) {
    return c.write(key, std::move(op.value),
                   [this, key, cb = std::move(op.wcb)](const Tag& tag) {
                     cb(tag);
                     next_for(key);
                   });
  }
  return c.read(key, [this, key, cb = std::move(op.rcb)](const TaggedValue& tv) {
    cb(tv);
    next_for(key);
  });
}

void ShardRouter::next_for(const RegisterKey& key) {
  keyed_busy_.erase(key);
  auto it = keyed_queue_.find(key);
  if (it == keyed_queue_.end()) return;
  QueuedOp op = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) keyed_queue_.erase(it);
  dispatch(std::move(op));
}

OpId ShardRouter::list_keys(AbdClient::KeysCallback cb) {
  struct FanOut {
    std::size_t remaining;
    std::set<RegisterKey> keys;
    AbdClient::KeysCallback cb;
  };
  auto state = std::make_shared<FanOut>();
  state->remaining = clients_.size();
  state->cb = std::move(cb);
  OpId first = 0;
  for (std::size_t g = 0; g < clients_.size(); ++g) {
    OpId id = clients_[g]->list_keys(
        [state](const std::vector<RegisterKey>& keys) {
          state->keys.insert(keys.begin(), keys.end());
          if (--state->remaining == 0) {
            state->cb(std::vector<RegisterKey>(state->keys.begin(),
                                               state->keys.end()));
          }
        });
    if (g == 0) first = id;
  }
  return first;
}

void ShardRouter::set_snapshot_max_collect_rounds(std::uint32_t n) {
  snap_max_collect_rounds_ = std::max<std::uint32_t>(2, n);
}

OpId ShardRouter::snapshot(std::vector<RegisterKey> keys, SnapshotCallback cb) {
  // Collapse duplicates, keeping first-occurrence order (the cut echoes
  // this order back).
  std::vector<RegisterKey> uniq;
  uniq.reserve(keys.size());
  std::set<RegisterKey> seen;
  for (auto& key : keys) {
    if (seen.insert(key).second) uniq.push_back(std::move(key));
  }
  auto st = std::make_shared<SnapState>();
  st->keys = std::move(uniq);
  st->cb = std::move(cb);
  if (st->keys.empty()) {
    st->cb(SnapshotResult{});
    return 0;
  }
  st->acc.resize(st->keys.size());
  return snap_collect_round(std::move(st));
}

std::vector<std::pair<ShardId, std::vector<std::size_t>>>
ShardRouter::snap_partition(const SnapState& st) const {
  // Group key indices by their CURRENT shard (a retried round re-reads
  // the map, so overrides learned from moved flags take effect). The
  // handful of involved shards makes the linear scan cheaper than a map.
  std::vector<std::pair<ShardId, std::vector<std::size_t>>> parts;
  for (std::size_t i = 0; i < st.keys.size(); ++i) {
    ShardId g = map_.shard_of(st.keys[i]);
    auto it = std::find_if(parts.begin(), parts.end(),
                           [g](const auto& p) { return p.first == g; });
    if (it == parts.end()) {
      parts.emplace_back(g, std::vector<std::size_t>{i});
    } else {
      it->second.push_back(i);
    }
  }
  return parts;
}

OpId ShardRouter::snap_collect_round(SnapPtr st) {
  ++st->rounds;
  ++snapshot_rounds_;
  auto parts = snap_partition(*st);
  st->pending = parts.size();
  OpId first = 0;
  for (auto& part : parts) {
    const std::vector<std::size_t>& idxs = part.second;
    std::vector<RegisterKey> ks;
    ks.reserve(idxs.size());
    for (std::size_t i : idxs) ks.push_back(st->keys[i]);
    OpId id = clients_[part.first]->collect(
        std::move(ks),
        [this, st, idxs](const std::vector<AbdClient::CollectEntry>& es) {
          for (std::size_t j = 0; j < idxs.size(); ++j) {
            st->acc[idxs[j]] = es[j];
          }
          if (--st->pending == 0) snap_collect_done(st);
        });
    if (first == 0) first = id;
  }
  return first;
}

void ShardRouter::snap_collect_done(SnapPtr st) {
  bool flagged = false;
  for (const AbdClient::CollectEntry& ce : st->acc) {
    if (ce.flag == SnapEntry::kMoved) {
      map_.apply_override(ce.key, ce.owner, ce.epoch);
      flagged = true;
    } else if (ce.flag != SnapEntry::kOk) {
      flagged = true;
    }
  }
  if (flagged) {
    // A fenced or mid-migration key poisons the round: tags observed
    // around a fence prove nothing. Start the double collect over.
    st->have_prev = false;
    if (st->rounds >= snap_max_collect_rounds_) return snap_fallback(st);
    snap_collect_round(std::move(st));
    return;
  }
  if (st->have_prev) {
    bool same = true;
    for (std::size_t i = 0; i < st->acc.size(); ++i) {
      if (st->acc[i].reg.tag != st->prev_tags[i]) {
        same = false;
        break;
      }
    }
    // Two consecutive clean rounds with identical tag vectors: no write
    // to any key completed in between, so the vector is a consistent
    // cut. (Quorum intersection makes a completed write visible to the
    // confirming round's quorum — it would have bumped that key's tag.)
    if (same) return snap_install_and_finish(std::move(st));
  }
  st->prev_tags.resize(st->acc.size());
  for (std::size_t i = 0; i < st->acc.size(); ++i) {
    st->prev_tags[i] = st->acc[i].reg.tag;
  }
  st->have_prev = true;
  if (st->rounds >= snap_max_collect_rounds_) return snap_fallback(st);
  snap_collect_round(std::move(st));
}

void ShardRouter::snap_install_and_finish(SnapPtr st) {
  // A unanimous key's (tag, value) is already committed at a weighted
  // quorum (the one that answered); a non-unanimous key needs the ABD
  // write-back before its tag may appear in the cut, or a crashed
  // writer's value could be visible here yet lost to later reads.
  std::vector<std::size_t> need;
  for (std::size_t i = 0; i < st->acc.size(); ++i) {
    if (!st->acc[i].unanimous) need.push_back(i);
  }
  if (need.empty()) return snap_finish(std::move(st));
  st->pending = need.size();
  for (std::size_t i : need) {
    const AbdClient::CollectEntry& ce = st->acc[i];
    clients_[map_.shard_of(ce.key)]->install(
        ce.key, ce.reg, [this, st](const Tag&) {
          if (--st->pending == 0) snap_finish(st);
        });
  }
}

void ShardRouter::snap_fallback(SnapPtr st) {
  st->used_fallback = true;
  ++snapshot_fallbacks_;
  // Fresh instance id per attempt: a retry must never be confused with
  // stale fences of its own previous attempt.
  st->snap_id = (static_cast<SnapId>(self_) << 32) | ++snap_seq_;
  st->frozen_parts = snap_partition(*st);
  st->pending = st->frozen_parts.size();
  for (auto& part : st->frozen_parts) {
    const std::vector<std::size_t>& idxs = part.second;
    std::vector<RegisterKey> ks;
    ks.reserve(idxs.size());
    for (std::size_t i : idxs) ks.push_back(st->keys[i]);
    clients_[part.first]->snap_freeze(
        st->snap_id, std::move(ks),
        [this, st, idxs](const std::vector<AbdClient::CollectEntry>& es) {
          for (std::size_t j = 0; j < idxs.size(); ++j) {
            st->acc[idxs[j]] = es[j];
          }
          if (--st->pending == 0) snap_freeze_done(st);
        });
  }
}

void ShardRouter::snap_freeze_done(SnapPtr st) {
  // Adopt only a fully clean freeze: any migration fence, moved key, or
  // foreign snapshot aborts (never hold our fences while waiting on
  // someone else's — that is how distributed deadlocks are built).
  bool adopt = true;
  for (const AbdClient::CollectEntry& ce : st->acc) {
    if (ce.flag == SnapEntry::kMoved) {
      map_.apply_override(ce.key, ce.owner, ce.epoch);
      adopt = false;
    } else if (ce.flag != SnapEntry::kOk) {
      adopt = false;
    }
  }
  st->all_held = true;
  st->pending = st->frozen_parts.size();
  for (const auto& part : st->frozen_parts) {
    const std::vector<std::size_t>& idxs = part.second;
    std::vector<SnapEntry> installs;
    installs.reserve(idxs.size());
    for (std::size_t i : idxs) {
      SnapEntry e;
      e.key = st->keys[i];
      if (adopt) {
        e.reg = st->acc[i].reg;  // the scan embedded in our own update
      } else {
        e.flag = SnapEntry::kFrozen;  // lift-only: abort this attempt
      }
      installs.push_back(std::move(e));
    }
    clients_[part.first]->snap_release(
        st->snap_id, std::move(installs), [this, st, adopt](bool held) {
          if (!held) st->all_held = false;
          if (--st->pending != 0) return;
          if (adopt && st->all_held) return snap_finish(st);
          // Aborted, or a fence TTL-expired before we released it (a
          // write may have slipped past the cut): retry with a fresh
          // instance id. Moved keys already taught the map, so the next
          // attempt freezes at the current owners. The retry is DELAYED
          // by seeded jittered exponential backoff: clients whose
          // snapshots overlap abort on each other's fences, and bare
          // re-freezing keeps them aborting in lockstep forever.
          std::uint32_t shift = std::min<std::uint32_t>(st->backoffs++, 5);
          auto delay = static_cast<TimeNs>(
              snap_rng_.uniform(0.5, 1.5) *
              static_cast<double>(ms(1) << shift));
          env_.schedule(self_, delay, [this, st] { snap_fallback(st); });
        });
  }
}

void ShardRouter::snap_finish(SnapPtr st) {
  ++snapshots_taken_;
  SnapshotResult r;
  r.rounds = st->rounds;
  r.used_fallback = st->used_fallback;
  r.cut.reserve(st->keys.size());
  for (std::size_t i = 0; i < st->keys.size(); ++i) {
    r.cut.emplace_back(st->keys[i], st->acc[i].reg);
  }
  st->cb(r);
}

bool ShardRouter::handle(ProcessId from, const Message& msg) {
  if (!is_server(from)) return false;
  // O(1) on the uniform shard-major layout — this is the per-reply hot
  // path (every quorum ack of every shard funnels through here).
  std::optional<ShardId> g = map_.try_shard_of_server(from);
  if (!g.has_value()) return false;  // outside every group (co-located)
  if (const auto* ws = msg_cast<WrongShardAck>(msg)) {
    map_.apply_override(ws->key(), ws->owner(), ws->epoch());
    ShardId cur = map_.shard_of(ws->key());
    // Only eject when the map moved the key off the sender's shard — a
    // redirect from a relic server (its mark predates a newer migration
    // this client already learned) must not bounce a correctly-routed op.
    if (cur == *g) return true;
    std::optional<AbdClient::EjectedOp> op = clients_[*g]->eject(ws->op_id());
    if (!op) return true;  // completed, or already reissued by an earlier ack
    ++redirects_;
    clients_[cur]->resume(std::move(*op));
    return true;
  }
  return clients_[*g]->handle(from, msg);
}

AbdClient& ShardRouter::shard_client(ShardId g) {
  map_.config(g);  // validates, naming offender + range
  return *clients_[g];
}

AbdClient& ShardRouter::only_client() {
  if (clients_.size() != 1) {
    throw std::logic_error(
        "ShardRouter: the raw AbdClient surface needs a single-shard "
        "deployment (" +
        std::to_string(clients_.size()) +
        " shards here) — use shard_client(g)");
  }
  return *clients_[0];
}

bool ShardRouter::busy() const {
  return std::any_of(clients_.begin(), clients_.end(),
                     [](const auto& c) { return c->busy(); });
}

std::size_t ShardRouter::in_flight() const {
  std::size_t sum = 0;
  for (const auto& c : clients_) sum += c->in_flight();
  return sum;
}

std::size_t ShardRouter::max_in_flight() const {
  std::size_t best = 0;
  for (const auto& c : clients_) best = std::max(best, c->max_in_flight());
  return best;
}

std::uint64_t ShardRouter::restarts() const {
  std::uint64_t sum = 0;
  for (const auto& c : clients_) sum += c->restarts();
  return sum;
}

std::uint64_t ShardRouter::retransmits() const {
  std::uint64_t sum = 0;
  for (const auto& c : clients_) sum += c->retransmits();
  return sum;
}

std::uint64_t ShardRouter::batches_sent() const {
  std::uint64_t sum = 0;
  for (const auto& c : clients_) sum += c->batches_sent();
  return sum;
}

std::uint64_t ShardRouter::batched_frames() const {
  std::uint64_t sum = 0;
  for (const auto& c : clients_) sum += c->batched_frames();
  return sum;
}

void ShardRouter::set_retry_interval(TimeNs interval) {
  for (const auto& c : clients_) c->set_retry_interval(interval);
}

void ShardRouter::set_read_fast_path(bool on) {
  for (const auto& c : clients_) c->set_read_fast_path(on);
}

std::uint64_t ShardRouter::fast_path_reads() const {
  std::uint64_t sum = 0;
  for (const auto& c : clients_) sum += c->fast_path_reads();
  return sum;
}

void ShardRouter::set_batching(std::size_t max_ops, TimeNs max_delay) {
  for (const auto& c : clients_) c->set_batching(max_ops, max_delay);
}

void ShardRouter::set_max_restarts(std::uint32_t m) {
  for (const auto& c : clients_) c->set_max_restarts(m);
}

}  // namespace wrs
