// AdaptiveNode: a DynamicStorageNode plus the monitoring/adaptation loop.
//
//   * every `probe_interval` the node pings all other servers, records
//     RTTs, and gossips its RTT vector to the other servers;
//   * from the gossiped vectors each node derives a *perceived latency*
//     per server k: the median of RTT_i[k] over reporters i != k. This
//     makes "server 4 is slow" visible to server 4 itself (its own pings
//     cannot distinguish "I am slow" from "everyone else is slow");
//   * every `eval_interval` the node consults the WeightPolicy and, when
//     the policy says so (and no transfer is in flight), invokes
//     transfer(fastest, step) on the embedded ReassignNode.
//
// This closes the loop the paper sketches: monitoring system -> weight
// reassignment -> dynamic-weighted quorums. Per C1, a node only ever
// moves its own weight.
#pragma once

#include <map>
#include <memory>

#include "monitor/latency_monitor.h"
#include "monitor/weight_policy.h"
#include "runtime/msg_pool.h"
#include "storage/dynamic_node.h"

namespace wrs {

/// Probe messages.
class PingMsg : public MessageBase<PingMsg> {
 public:
  explicit PingMsg(TimeNs sent_at) : sent_at_(sent_at) {}
  TimeNs sent_at() const { return sent_at_; }
  std::string type_name() const override { return "PING"; }
  std::size_t wire_size() const override { return kHeaderBytes + 8; }

 private:
  TimeNs sent_at_;
};

class PongMsg : public MessageBase<PongMsg> {
 public:
  explicit PongMsg(TimeNs sent_at) : sent_at_(sent_at) {}
  TimeNs sent_at() const { return sent_at_; }
  std::string type_name() const override { return "PONG"; }
  std::size_t wire_size() const override { return kHeaderBytes + 8; }

 private:
  TimeNs sent_at_;
};

/// Gossiped RTT vector: the reporter's EWMA estimate per server.
class RttReportMsg : public MessageBase<RttReportMsg> {
 public:
  explicit RttReportMsg(std::map<ProcessId, double> rtts)
      : rtts_(std::move(rtts)) {}
  const std::map<ProcessId, double>& rtts() const { return rtts_; }
  std::string type_name() const override { return "RTT_REPORT"; }
  std::size_t wire_size() const override {
    return kHeaderBytes + 4 + rtts_.size() * 12;
  }

 private:
  std::map<ProcessId, double> rtts_;
};

struct AdaptiveParams {
  TimeNs probe_interval = ms(50);
  TimeNs eval_interval = ms(200);
  Weight step = Weight(1, 10);
  double slow_factor = 1.3;
  /// Adaptation can be disabled to build a "static WMQS" control group
  /// that still answers pings.
  bool adaptation_enabled = true;
};

class AdaptiveNode : public Process {
 public:
  AdaptiveNode(Env& env, ProcessId self, const SystemConfig& config,
               AdaptiveParams params)
      : env_(env),
        self_(self),
        config_(config),
        servers_(config.servers()),
        params_(std::move(params)),
        node_(env, self, config),
        policy_(params_.step, params_.slow_factor) {}

  DynamicStorageNode& storage() { return node_; }
  ReassignNode& reassign() { return node_.reassign(); }
  const LatencyMonitor& monitor() const { return monitor_; }
  std::uint64_t transfers_issued() const { return transfers_issued_; }

  /// Perceived latency of server k: median of the gossiped RTT_i[k] over
  /// reporters i != k (plus our own measurement). Empty until reports
  /// arrive.
  std::map<ProcessId, double> perceived_latencies() const {
    std::map<ProcessId, double> out;
    for (ProcessId k : config_.servers()) {
      std::vector<double> obs;
      for (const auto& [reporter, rtts] : reports_) {
        if (reporter == k) continue;
        auto it = rtts.find(k);
        if (it != rtts.end()) obs.push_back(it->second);
      }
      if (obs.empty()) continue;
      std::sort(obs.begin(), obs.end());
      out[k] = obs[obs.size() / 2];
    }
    return out;
  }

  void on_start() override {
    env_.schedule(self_, params_.probe_interval, [this] { probe(); });
    env_.schedule(self_, params_.eval_interval, [this] { evaluate(); });
  }

  void on_message(ProcessId from, const Message& msg) override {
    if (const auto* ping = msg_cast<PingMsg>(msg)) {
      env_.send(self_, from, make_msg<PongMsg>(ping->sent_at()));
      return;
    }
    if (const auto* pong = msg_cast<PongMsg>(msg)) {
      monitor_.add_sample(from, env_.now() - pong->sent_at());
      return;
    }
    if (const auto* report = msg_cast<RttReportMsg>(msg)) {
      reports_[from] = report->rtts();
      return;
    }
    node_.handle(from, msg);
  }

 private:
  void probe() {
    for (ProcessId s : servers_) {
      if (s == self_) continue;
      env_.send(self_, s, make_msg<PingMsg>(env_.now()));
    }
    // Gossip what we currently believe (our EWMA vector).
    if (!monitor_.estimates().empty()) {
      auto snapshot = monitor_.estimates();
      reports_[self_] = snapshot;  // include ourselves as a reporter
      env_.broadcast_to_group(
          self_, servers_,
          make_msg<RttReportMsg>(std::move(snapshot)));
    }
    env_.schedule(self_, params_.probe_interval, [this] { probe(); });
  }

  void evaluate() {
    env_.schedule(self_, params_.eval_interval, [this] { evaluate(); });
    if (!params_.adaptation_enabled) return;
    if (node_.reassign().transfer_in_flight()) return;
    auto decision = policy_.decide(self_, node_.reassign().weight(),
                                   config_.floor(), perceived_latencies());
    if (!decision.has_value()) return;
    ++transfers_issued_;
    node_.reassign().transfer(decision->dst, decision->delta,
                              [](const TransferOutcome&) {});
  }

  Env& env_;
  ProcessId self_;
  SystemConfig config_;
  std::vector<ProcessId> servers_;  // cached group for probe broadcasts
  AdaptiveParams params_;
  DynamicStorageNode node_;
  LatencyMonitor monitor_;
  WeightPolicy policy_;
  std::map<ProcessId, std::map<ProcessId, double>> reports_;
  std::uint64_t transfers_issued_ = 0;
};

}  // namespace wrs
