// Per-server latency estimation — the "monitoring system" the paper
// assumes as input to weight reassignment decisions ([9]-[11]).
//
// Exponentially weighted moving averages of observed round-trip times,
// one per server. Deliberately simple: the paper treats monitoring as an
// oracle; what matters here is the *interface* the reassignment policy
// consumes.
#pragma once

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "common/types.h"

namespace wrs {

class LatencyMonitor {
 public:
  explicit LatencyMonitor(double alpha = 0.2) : alpha_(alpha) {}

  void add_sample(ProcessId server, TimeNs rtt) {
    auto it = ewma_.find(server);
    if (it == ewma_.end()) {
      ewma_[server] = static_cast<double>(rtt);
    } else {
      it->second = alpha_ * static_cast<double>(rtt) +
                   (1.0 - alpha_) * it->second;
    }
  }

  std::optional<double> estimate(ProcessId server) const {
    auto it = ewma_.find(server);
    if (it == ewma_.end()) return std::nullopt;
    return it->second;
  }

  bool has_estimates_for_all(const std::vector<ProcessId>& servers) const {
    return std::all_of(servers.begin(), servers.end(), [this](ProcessId s) {
      return ewma_.count(s) != 0;
    });
  }

  /// Fastest server by current estimate (nullopt when no samples yet).
  std::optional<ProcessId> fastest() const {
    std::optional<ProcessId> best;
    double best_v = 0;
    for (const auto& [s, v] : ewma_) {
      if (!best.has_value() || v < best_v) {
        best = s;
        best_v = v;
      }
    }
    return best;
  }

  double median_estimate() const {
    std::vector<double> v;
    v.reserve(ewma_.size());
    for (const auto& [_, e] : ewma_) v.push_back(e);
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  }

  const std::map<ProcessId, double>& estimates() const { return ewma_; }

 private:
  double alpha_;
  std::map<ProcessId, double> ewma_;
};

}  // namespace wrs
