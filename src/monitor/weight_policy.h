// Decentralized weight policy in the WHEAT/AWARE spirit, constrained to
// the restricted pairwise problem:
//
//  * C1 — a server only ever moves its OWN weight, so the policy runs at
//    each server and may only propose outgoing transfers;
//  * C2 — proposals keep the server's weight strictly above the floor
//    (with a configurable safety margin on top).
//
// Rule: if this server's RTT estimate is at least `slow_factor` times the
// current fastest server's estimate, donate `step` of weight to that
// fastest server (if C2 allows). Fast servers accumulate voting power;
// slow ones converge toward the floor — exactly the adaptation mechanism
// the paper motivates with geo-replication.
#pragma once

#include <optional>

#include "common/rational.h"
#include "common/types.h"
#include "monitor/latency_monitor.h"

namespace wrs {

struct PolicyDecision {
  ProcessId dst = kNoProcess;
  Weight delta;
};

class WeightPolicy {
 public:
  WeightPolicy(Weight step, double slow_factor = 1.3)
      : step_(std::move(step)), slow_factor_(slow_factor) {}

  /// `self_weight` per the server's local change set; `floor` is
  /// W_{S,0}/(2(n-f)); `latency_by_server` is perceived latency per
  /// server (e.g. gossip medians from AdaptiveNode, or a single node's
  /// LatencyMonitor estimates in tests).
  std::optional<PolicyDecision> decide(
      ProcessId self, const Weight& self_weight, const Weight& floor,
      const std::map<ProcessId, double>& latency_by_server) const {
    auto mine_it = latency_by_server.find(self);
    if (mine_it == latency_by_server.end()) return std::nullopt;
    std::optional<ProcessId> fastest;
    double best = 0;
    for (const auto& [s, v] : latency_by_server) {
      if (!fastest.has_value() || v < best) {
        fastest = s;
        best = v;
      }
    }
    if (!fastest.has_value() || *fastest == self) return std::nullopt;
    if (mine_it->second < slow_factor_ * best) return std::nullopt;
    // C2 with margin: keep strictly above floor after donating.
    if (!(self_weight > step_ + floor)) return std::nullopt;
    PolicyDecision d;
    d.dst = *fastest;
    d.delta = step_;
    return d;
  }

  /// Convenience overload over a LatencyMonitor.
  std::optional<PolicyDecision> decide(ProcessId self,
                                       const Weight& self_weight,
                                       const Weight& floor,
                                       const LatencyMonitor& monitor) const {
    return decide(self, self_weight, floor, monitor.estimates());
  }

  const Weight& step() const { return step_; }

 private:
  Weight step_;
  double slow_factor_;
};

}  // namespace wrs
