// Seeded chaos-scenario drivers for wrs::Cluster deployments.
//
// Nemesis composes a timed fault schedule — symmetric/asymmetric
// partitions, probabilistic drop and duplication storms, bounded
// reordering windows, slowdowns, rolling server crashes (optionally
// "restarting" crashed capacity as fresh reader processes) — from a
// single RNG seed. The WHOLE timeline is drawn up-front at unleash()
// time and executed through Cluster::at, so on Runtime::kSim an episode
// is a pure function of (cluster seed, nemesis seed) and any failure
// replays bit-for-bit. Every fault heals itself by `horizon`, and a
// final safety net heals all links at the horizon, so episodes always
// reach a fault-free tail in which retries/anti-entropy can restore
// liveness.
//
// Overlap semantics: events draw independent windows, so they may
// overlap on the same links; LinkFaults state is last-writer-wins, which
// means one event's heal can END an overlapping event's fault early
// (never extend it — faults never outlive their printed window, and the
// horizon safety net bounds everything). The printed timeline is the
// SCHEDULE; under overlap the realized fault exposure can be weaker.
// Replay determinism is unaffected.
//
// TransferStorm drives the reconfiguration side of a chaos episode: it
// posts seeded weight transfers (random source/destination/delta) into
// server contexts across the same horizon, skipping servers whose
// previous transfer is still in flight (the protocol is sequential per
// node) and counting effective/null/skipped outcomes thread-safely.
//
// Both drivers only touch thread-safe Cluster state (the fault plane,
// crash, slow factors, add_client, per-process posts), so their timeline
// callbacks may run on the thread runtime's timer thread.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "api/cluster.h"

namespace wrs::testing {

struct NemesisParams {
  /// Faults are injected in [start, horizon); everything is healed by
  /// `horizon` at the latest.
  TimeNs start = ms(20);
  TimeNs horizon = ms(300);
  /// Number of fault events drawn from the seed.
  std::size_t events = 8;
  /// How long one fault stays active (uniform in [min_hold, max_hold],
  /// clamped to end by `horizon`).
  TimeNs min_hold = ms(20);
  TimeNs max_hold = ms(120);
  /// Servers crashed at most (must stay <= config().f or quorums die
  /// with the fault budget); 0 disables crash events.
  std::uint32_t crash_budget = 0;
  /// Crashed-server events schedule a fresh reader process (running
  /// `restart_workload`) shortly after the crash — the paper's model of a
  /// restarted process rejoining with empty state as a new client.
  bool reader_restarts = false;
  WorkloadParams restart_workload;
  /// Enabled fault kinds.
  bool partitions = true;
  bool asymmetric = true;
  bool drops = true;
  bool duplicates = true;
  bool slow_downs = true;
  bool reorder = true;  // applied by the simulator only
  /// Probability caps for the storm events.
  double drop_p_max = 0.5;
  double dup_p_max = 0.5;
  /// Restricts the chaos to ONE shard of a sharded deployment: crash /
  /// slow / partition victims come from that shard's servers only, and
  /// drop/duplicate storms become per-link rates on that shard's links
  /// (other shards keep serving untouched). The crash budget is checked
  /// against the selected shard's f. Unset = whole deployment (on a
  /// sharded cluster victims are drawn across every shard).
  std::optional<ShardId> shard;
};

class Nemesis {
 public:
  Nemesis(Cluster& cluster, std::uint64_t seed, NemesisParams params = {});

  /// Draws the whole fault timeline from the seed and schedules it.
  /// Call at most once.
  void unleash();

  /// Human-readable schedule ("t=120ms partition {s0 s2 | rest}" ...),
  /// available after unleash() — printed by harnesses on failure so a
  /// seed's episode can be read without replaying it.
  const std::vector<std::string>& timeline() const { return timeline_; }

  std::uint32_t crashes_scheduled() const { return crashes_scheduled_; }

 private:
  enum class Kind {
    kSymPartition,
    kAsymPartition,
    kDropStorm,
    kDupStorm,
    kReorderWindow,
    kSlow,
    kCrash,
  };

  std::vector<Kind> enabled_kinds() const;
  void schedule_event(Kind kind, TimeNs at, TimeNs until);
  /// One drop/duplicate storm window: the global knob, or (shard-scoped)
  /// per-link rates applied at start + midpoint and zeroed at `until`.
  void schedule_storm(const std::string& label, double p, TimeNs at,
                      TimeNs until,
                      void (Cluster::*per_link)(ProcessId, ProcessId, double),
                      void (Cluster::*global)(double));
  void note(TimeNs at, const std::string& text);

  Cluster& cluster_;
  Rng rng_;
  NemesisParams params_;
  bool unleashed_ = false;
  std::vector<std::string> timeline_;
  std::vector<ProcessId> victims_;      // server pool faults draw from
  std::vector<ProcessId> crash_order_;  // pre-drawn distinct crash victims
  std::uint32_t crashes_scheduled_ = 0;
};

struct TransferStormParams {
  TimeNs start = ms(10);
  TimeNs horizon = ms(300);
  std::size_t attempts = 8;
  /// Transferred weight is 1/denominator with denominator drawn from
  /// [min_denom, max_denom] — small enough that C2 usually passes.
  std::uint64_t min_denom = 4;
  std::uint64_t max_denom = 16;
  /// Reassignment is intra-group, so every attempt picks its (from, to)
  /// pair within one shard: this one when set, a seeded-random shard per
  /// attempt otherwise.
  std::optional<ShardId> shard;
};

class TransferStorm {
 public:
  TransferStorm(Cluster& cluster, std::uint64_t seed,
                TransferStormParams params = {});

  /// Draws and schedules all transfer attempts. Call at most once.
  void unleash();

  // Outcome counters (thread-safe snapshots).
  std::size_t attempts_scheduled() const;
  std::size_t completed() const;  // callbacks fired (effective or null)
  std::size_t effective() const;
  std::size_t skipped() const;  // server still had a transfer in flight

 private:
  Cluster& cluster_;
  Rng rng_;
  TransferStormParams params_;
  bool unleashed_ = false;
  std::size_t scheduled_ = 0;

  mutable std::mutex mu_;
  std::size_t completed_ = 0;
  std::size_t effective_ = 0;
  std::size_t skipped_ = 0;
};

struct MigrationStormParams {
  TimeNs start = ms(10);
  TimeNs horizon = ms(300);
  /// Seeded migrate_key attempts posted across [start, horizon).
  std::size_t attempts = 50;
  /// Keys are drawn from "k0".."k<num_keys-1>" — the WorkloadClient's
  /// keyspace, so storms compose with a concurrent workload + history.
  std::size_t num_keys = 16;
};

/// Seeded elastic-resharding chaos driver: posts random key handoffs
/// (random key, random destination shard) into the MigrationEngine's
/// context across the horizon — the resharding analogue of
/// TransferStorm. Attempts racing an in-flight handoff of the same key
/// are REFUSED by the engine (serialized per key) and counted here, so
/// refused + moved == completed once the episode drains. Requires a
/// deployment with shards(s >= 2).
class MigrationStorm {
 public:
  MigrationStorm(Cluster& cluster, std::uint64_t seed,
                 MigrationStormParams params = {});

  /// Draws and schedules all migration attempts. Call at most once.
  void unleash();

  // Outcome counters (thread-safe snapshots).
  std::size_t attempts_scheduled() const;
  std::size_t completed() const;  // callbacks fired (moved or refused)
  std::size_t moved() const;      // handoff committed (or was a no-op)
  std::size_t refused() const;    // same-key handoff still in flight

 private:
  Cluster& cluster_;
  Rng rng_;
  MigrationStormParams params_;
  bool unleashed_ = false;
  std::size_t scheduled_ = 0;

  mutable std::mutex mu_;
  std::size_t completed_ = 0;
  std::size_t moved_ = 0;
};

struct SnapshotStormParams {
  TimeNs start = ms(10);
  TimeNs horizon = ms(300);
  /// Seeded snapshot() calls posted across [start, horizon).
  std::size_t attempts = 20;
  /// Keys are drawn from "k0".."k<num_keys-1>" — the WorkloadClient's
  /// keyspace, so storms race a concurrent workload on the same keys.
  std::size_t num_keys = 16;
  /// Distinct keys per snapshot (clamped to num_keys).
  std::size_t keys_per_snapshot = 4;
};

/// Seeded atomic-snapshot chaos driver: posts random multi-key
/// snapshot() calls into round-robin client contexts across the horizon
/// — racing writers, key migrations, and the fault plane. When a
/// HistoryRecorder is given, every cut is recorded (begin_snapshot /
/// end_snapshot), so check_atomicity validates cut consistency (S1) and
/// pairwise comparability (S2) once the episode drains.
class SnapshotStorm {
 public:
  SnapshotStorm(Cluster& cluster, std::uint64_t seed,
                SnapshotStormParams params = {},
                std::shared_ptr<HistoryRecorder> history = nullptr);

  /// Draws and schedules all snapshot attempts. Call at most once.
  void unleash();

  // Outcome counters (thread-safe snapshots).
  std::size_t attempts_scheduled() const;
  std::size_t completed() const;   // snapshot callbacks fired
  std::size_t fallbacks() const;   // cuts that needed the fenced fallback
  std::uint64_t rounds() const;    // total collect rounds across all cuts

 private:
  Cluster& cluster_;
  Rng rng_;
  SnapshotStormParams params_;
  std::shared_ptr<HistoryRecorder> history_;
  bool unleashed_ = false;
  std::size_t scheduled_ = 0;

  mutable std::mutex mu_;
  std::size_t completed_ = 0;
  std::size_t fallbacks_ = 0;
  std::uint64_t rounds_ = 0;
};

}  // namespace wrs::testing
