#include "testing/nemesis.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace wrs::testing {

namespace {

std::string ms_str(TimeNs t) {
  std::ostringstream os;
  os << to_ms(t) << "ms";
  return os.str();
}

}  // namespace

Nemesis::Nemesis(Cluster& cluster, std::uint64_t seed, NemesisParams params)
    : cluster_(cluster), rng_(seed), params_(params) {}

std::vector<Nemesis::Kind> Nemesis::enabled_kinds() const {
  std::vector<Kind> kinds;
  if (params_.partitions) kinds.push_back(Kind::kSymPartition);
  if (params_.asymmetric) kinds.push_back(Kind::kAsymPartition);
  if (params_.drops) kinds.push_back(Kind::kDropStorm);
  if (params_.duplicates) kinds.push_back(Kind::kDupStorm);
  // The reorder knob is deployment-global on the simulator, so a
  // shard-scoped nemesis cannot use it without leaking faults into
  // other shards.
  if (params_.reorder && !params_.shard) kinds.push_back(Kind::kReorderWindow);
  if (params_.slow_downs) kinds.push_back(Kind::kSlow);
  if (params_.crash_budget > 0) kinds.push_back(Kind::kCrash);
  return kinds;
}

void Nemesis::note(TimeNs at, const std::string& text) {
  timeline_.push_back("t=" + ms_str(at) + " " + text);
}

void Nemesis::unleash() {
  if (unleashed_) throw std::logic_error("Nemesis: unleash() called twice");
  unleashed_ = true;

  // Victim pool: one shard's servers when scoped, every deployed server
  // otherwise (identical to config().servers() on unsharded clusters,
  // so pre-shard seeds replay the exact same timelines).
  victims_ = params_.shard ? cluster_.shard_servers(*params_.shard)
                           : cluster_.all_server_ids();
  std::uint32_t f = params_.shard ? cluster_.shard_config(*params_.shard).f
                                  : cluster_.config().f;
  std::uint32_t budget = std::min(params_.crash_budget, f);
  if (budget < params_.crash_budget) {
    // Crashing more than f servers (of one group) would kill its quorums
    // permanently; the nemesis never exceeds the model's fault budget.
    params_.crash_budget = budget;
  }
  crash_order_ = victims_;
  for (std::size_t i = crash_order_.size(); i > 1; --i) {
    std::swap(crash_order_[i - 1], crash_order_[rng_.below(i)]);
  }
  crash_order_.resize(budget);

  std::vector<Kind> kinds = enabled_kinds();
  if (kinds.empty()) return;

  TimeNs window = params_.horizon - params_.start;
  if (window <= params_.min_hold) {
    throw std::invalid_argument("Nemesis: horizon too close to start");
  }
  for (std::size_t e = 0; e < params_.events; ++e) {
    Kind kind = kinds[rng_.below(kinds.size())];
    if (kind == Kind::kCrash && crashes_scheduled_ >= budget) {
      kind = params_.slow_downs ? Kind::kSlow : Kind::kDropStorm;
      if (kind == Kind::kDropStorm && !params_.drops) continue;
    }
    TimeNs at = params_.start +
                static_cast<TimeNs>(rng_.below(
                    static_cast<std::uint64_t>(window - params_.min_hold)));
    TimeNs hold =
        params_.min_hold +
        static_cast<TimeNs>(rng_.below(static_cast<std::uint64_t>(
            params_.max_hold - params_.min_hold + 1)));
    TimeNs until = std::min(at + hold, params_.horizon);
    schedule_event(kind, at, until);
  }

  // Safety net: whatever overlapping heals missed, the deployment is
  // fault-free from the horizon on (slow factors are cleared per event).
  Cluster* c = &cluster_;
  cluster_.at(params_.horizon, [c] { c->heal_all_links(); });
  note(params_.horizon, "heal_all_links (horizon safety net)");
}

void Nemesis::schedule_storm(const std::string& label, double p, TimeNs at,
                             TimeNs until,
                             void (Cluster::*per_link)(ProcessId, ProcessId,
                                                       double),
                             void (Cluster::*global)(double)) {
  std::ostringstream os;
  os << label << " p=" << p
     << (params_.shard ? " (shard " + std::to_string(*params_.shard) + ")"
                       : "")
     << " until t=" << ms_str(until);
  note(at, os.str());
  Cluster* c = &cluster_;
  if (params_.shard) {
    // Shard-scoped: per-link rates on the shard's links only (the
    // network-wide knob would leak faults into other groups). Links are
    // enumerated when each application runs; a midpoint re-application
    // extends coverage to readers restarted inside the window (per-link
    // rates, unlike the global storm, cannot cover processes registered
    // after they were set). Teardown zeroes the shard's per-link rates:
    // like every Nemesis overlap (see the header), last writer wins, so
    // an overlapping scoped storm — or an externally set rate on these
    // links — can be ended early but never extended.
    std::vector<ProcessId> pool = victims_;
    auto set_links = [c, pool, per_link](double rate) {
      for (ProcessId s : pool) {
        for (ProcessId other : c->process_ids()) {
          if (other != s) (c->*per_link)(s, other, rate);
        }
      }
    };
    cluster_.at(at, [set_links, p] { set_links(p); });
    cluster_.at(at + (until - at) / 2, [set_links, p] { set_links(p); });
    cluster_.at(until, [set_links] { set_links(0); });
  } else {
    cluster_.at(at, [c, global, p] { (c->*global)(p); });
    cluster_.at(until, [c, global] { (c->*global)(0); });
  }
}

void Nemesis::schedule_event(Kind kind, TimeNs at, TimeNs until) {
  Cluster* c = &cluster_;
  // Scoped episodes draw every victim — including partition sides — from
  // the selected shard's servers, so other shards never see a fault.
  std::vector<ProcessId> all =
      params_.shard ? victims_ : cluster_.process_ids();
  const std::vector<ProcessId>& servers = victims_;

  switch (kind) {
    case Kind::kSymPartition: {
      // Random bipartition of every deployed process; both sides keep at
      // least one server so neither is trivially empty.
      std::vector<ProcessId> side;
      for (ProcessId p : all) {
        if (rng_() % 2 == 0) side.push_back(p);
      }
      auto has_server = [&](const std::vector<ProcessId>& v, bool inside) {
        for (ProcessId s : servers) {
          bool in = std::find(v.begin(), v.end(), s) != v.end();
          if (in == inside) return true;
        }
        return false;
      };
      if (!has_server(side, true)) side.push_back(servers[rng_.below(servers.size())]);
      if (!has_server(side, false)) {
        // Every server landed inside: pull one back out.
        ProcessId victim = servers[rng_.below(servers.size())];
        side.erase(std::remove(side.begin(), side.end(), victim), side.end());
      }
      std::ostringstream os;
      os << "partition {";
      for (ProcessId p : side) os << " " << process_name(p);
      os << " | rest }";
      note(at, os.str() + " until t=" + ms_str(until));
      cluster_.at(at, [c, side] { c->partition_split(side); });
      cluster_.at(until, [c, side] { c->heal_split(side); });
      break;
    }
    case Kind::kAsymPartition: {
      ProcessId victim = all[rng_.below(all.size())];
      bool outgoing = rng_() % 2 == 0;
      note(at, "asym partition " + process_name(victim) +
                   (outgoing ? " (mute: cannot send)" : " (deaf: cannot hear)") +
                   " until t=" + ms_str(until));
      // Both lambdas enumerate processes at execution time so readers
      // restarted mid-window are cut AND healed consistently.
      cluster_.at(at, [c, victim, outgoing] {
        for (ProcessId other : c->process_ids()) {
          if (other == victim) continue;
          if (outgoing) {
            c->env().faults().cut_one_way(victim, other);
          } else {
            c->env().faults().cut_one_way(other, victim);
          }
        }
      });
      cluster_.at(until, [c, victim, outgoing] {
        for (ProcessId other : c->process_ids()) {
          if (other == victim) continue;
          if (outgoing) {
            c->env().faults().heal_one_way(victim, other);
          } else {
            c->env().faults().heal_one_way(other, victim);
          }
        }
      });
      break;
    }
    case Kind::kDropStorm: {
      // Floor of 0.1 so storms bite, unless the configured cap is gentler.
      double lo = std::min(0.1, params_.drop_p_max);
      double p = lo + rng_.uniform() * (params_.drop_p_max - lo);
      schedule_storm("drop storm", p, at, until, &Cluster::drop_link,
                     &Cluster::drop_all_links);
      break;
    }
    case Kind::kDupStorm: {
      double lo = std::min(0.1, params_.dup_p_max);
      double p = lo + rng_.uniform() * (params_.dup_p_max - lo);
      schedule_storm("duplicate storm", p, at, until, &Cluster::duplicate_link,
                     &Cluster::duplicate_all_links);
      break;
    }
    case Kind::kReorderWindow: {
      double p = 0.2 + rng_.uniform() * 0.6;
      TimeNs extra = ms(1 + rng_.below(8));
      std::ostringstream os;
      os << "reorder window p=" << p << " extra<" << to_ms(extra)
         << "ms until t=" << ms_str(until);
      note(at, os.str());
      cluster_.at(at, [c, p, extra] { c->reorder_links(p, extra); });
      cluster_.at(until, [c] { c->reorder_links(0, 0); });
      break;
    }
    case Kind::kSlow: {
      ProcessId victim = servers[rng_.below(servers.size())];
      double factor = 2.0 + rng_.uniform() * 8.0;
      std::ostringstream os;
      os << "slow " << process_name(victim) << " x" << factor
         << " until t=" << ms_str(until);
      note(at, os.str());
      cluster_.at(at, [c, victim, factor] { c->slow(victim, factor); });
      cluster_.at(until, [c, victim] { c->clear_slow(victim); });
      break;
    }
    case Kind::kCrash: {
      ProcessId victim = crash_order_[crashes_scheduled_++];
      note(at, "crash " + process_name(victim));
      cluster_.at(at, [c, victim] { c->crash(victim); });
      if (params_.reader_restarts) {
        WorkloadParams wp = params_.restart_workload;
        wp.seed = rng_();
        note(at + ms(10), "restart-as-new-reader (after crash of " +
                              process_name(victim) + ")");
        cluster_.at(at + ms(10), [c, wp] { c->add_client(wp); });
      }
      break;
    }
  }
}

// --- TransferStorm ----------------------------------------------------------

TransferStorm::TransferStorm(Cluster& cluster, std::uint64_t seed,
                             TransferStormParams params)
    : cluster_(cluster), rng_(seed), params_(params) {}

void TransferStorm::unleash() {
  if (unleashed_) {
    throw std::logic_error("TransferStorm: unleash() called twice");
  }
  unleashed_ = true;
  // Reassignment is intra-group: each attempt draws its pair within one
  // shard. Unsharded clusters take the num_shards()==1 path, which
  // consumes exactly the pre-shard rng sequence (replay-stable seeds).
  std::uint32_t shards = cluster_.num_shards();
  for (std::size_t i = 0; i < params_.attempts; ++i) {
    ShardId g = 0;
    if (params_.shard) {
      g = *params_.shard;
    } else if (shards > 1) {
      g = static_cast<ShardId>(rng_.below(shards));
    }
    std::vector<ProcessId> servers = cluster_.shard_servers(g);
    if (servers.size() < 2) return;
    TimeNs at = params_.start +
                static_cast<TimeNs>(rng_.below(static_cast<std::uint64_t>(
                    params_.horizon - params_.start)));
    ProcessId from = servers[rng_.below(servers.size())];
    ProcessId to = servers[rng_.below(servers.size())];
    // Contiguous group ids: (to - base + 1) mod n indexes the next server.
    if (to == from) to = servers[(to - servers.front() + 1) % servers.size()];
    std::uint64_t denom =
        params_.min_denom +
        rng_.below(params_.max_denom - params_.min_denom + 1);
    Weight delta(1, static_cast<std::int64_t>(denom));
    ReassignNode* node = &cluster_.reassign_node(from);
    TransferStorm* self = this;
    // Posted into the source server's context: transfer() must run there,
    // and a crashed server simply drops the post.
    cluster_.env().schedule(from, at, [self, node, to, delta] {
      if (node->transfer_in_flight()) {
        std::lock_guard lock(self->mu_);
        ++self->skipped_;
        return;
      }
      node->transfer(to, delta, [self](const TransferOutcome& out) {
        std::lock_guard lock(self->mu_);
        ++self->completed_;
        if (out.effective) ++self->effective_;
      });
    });
    ++scheduled_;
  }
}

std::size_t TransferStorm::attempts_scheduled() const { return scheduled_; }

std::size_t TransferStorm::completed() const {
  std::lock_guard lock(mu_);
  return completed_;
}

std::size_t TransferStorm::effective() const {
  std::lock_guard lock(mu_);
  return effective_;
}

std::size_t TransferStorm::skipped() const {
  std::lock_guard lock(mu_);
  return skipped_;
}

// --- MigrationStorm ---------------------------------------------------------

MigrationStorm::MigrationStorm(Cluster& cluster, std::uint64_t seed,
                               MigrationStormParams params)
    : cluster_(cluster), rng_(seed), params_(params) {}

void MigrationStorm::unleash() {
  if (unleashed_) {
    throw std::logic_error("MigrationStorm: unleash() called twice");
  }
  unleashed_ = true;
  MigrationEngine* engine = &cluster_.migration_engine();  // validates shards
  std::uint32_t shards = cluster_.num_shards();
  for (std::size_t i = 0; i < params_.attempts; ++i) {
    TimeNs at = params_.start +
                static_cast<TimeNs>(rng_.below(static_cast<std::uint64_t>(
                    params_.horizon - params_.start)));
    RegisterKey key = "k" + std::to_string(rng_.below(params_.num_keys));
    ShardId to = static_cast<ShardId>(rng_.below(shards));
    MigrationStorm* self = this;
    // Posted into the engine's context: migrate() must run there; the
    // done callback fires there once both sides committed (or at once on
    // refusal), so the counters are exact when the episode drains.
    cluster_.env().schedule(engine->pid(), at, [self, engine, key, to] {
      engine->migrate(key, to, [self](bool ok) {
        std::lock_guard lock(self->mu_);
        ++self->completed_;
        if (ok) ++self->moved_;
      });
    });
    ++scheduled_;
  }
}

std::size_t MigrationStorm::attempts_scheduled() const { return scheduled_; }

std::size_t MigrationStorm::completed() const {
  std::lock_guard lock(mu_);
  return completed_;
}

std::size_t MigrationStorm::moved() const {
  std::lock_guard lock(mu_);
  return moved_;
}

std::size_t MigrationStorm::refused() const {
  std::lock_guard lock(mu_);
  return completed_ - moved_;
}

// --- SnapshotStorm ----------------------------------------------------------

SnapshotStorm::SnapshotStorm(Cluster& cluster, std::uint64_t seed,
                             SnapshotStormParams params,
                             std::shared_ptr<HistoryRecorder> history)
    : cluster_(cluster),
      rng_(seed),
      params_(params),
      history_(std::move(history)) {}

void SnapshotStorm::unleash() {
  if (unleashed_) {
    throw std::logic_error("SnapshotStorm: unleash() called twice");
  }
  unleashed_ = true;
  std::size_t clients = cluster_.num_clients();
  if (clients == 0) {
    throw std::logic_error("SnapshotStorm: deployment has no clients");
  }
  std::size_t want = std::min(std::max<std::size_t>(params_.keys_per_snapshot,
                                                    1),
                              std::max<std::size_t>(params_.num_keys, 1));
  for (std::size_t i = 0; i < params_.attempts; ++i) {
    TimeNs at = params_.start +
                static_cast<TimeNs>(rng_.below(static_cast<std::uint64_t>(
                    params_.horizon - params_.start)));
    std::size_t k = i % clients;  // round-robin issuing client
    // Distinct keys: seeded draws, then a sequential fill if the draws
    // collide too often (bounded attempts keeps unleash O(attempts)).
    std::set<RegisterKey> picked;
    for (int tries = 0; tries < 64 && picked.size() < want; ++tries) {
      picked.insert("k" + std::to_string(rng_.below(params_.num_keys)));
    }
    for (std::size_t r = 0; picked.size() < want; ++r) {
      picked.insert("k" + std::to_string(r));
    }
    std::vector<RegisterKey> keys(picked.begin(), picked.end());
    ShardRouter* router = &cluster_.client(k).router();
    ProcessId pid = cluster_.client(k).id();
    SnapshotStorm* self = this;
    // Posted into the issuing client's context: snapshot() must run
    // there, and its callback fires there once the cut is taken.
    cluster_.env().schedule(pid, at, [self, router, pid,
                                      keys = std::move(keys)] {
      std::size_t token = 0;
      if (self->history_) {
        token = self->history_->begin_snapshot(pid, self->cluster_.now());
      }
      router->snapshot(keys, [self, token](
                                 const ShardRouter::SnapshotResult& res) {
        if (self->history_) {
          self->history_->end_snapshot(token, self->cluster_.now(), res.cut);
        }
        std::lock_guard lock(self->mu_);
        ++self->completed_;
        if (res.used_fallback) ++self->fallbacks_;
        self->rounds_ += res.rounds;
      });
    });
    ++scheduled_;
  }
}

std::size_t SnapshotStorm::attempts_scheduled() const { return scheduled_; }

std::size_t SnapshotStorm::completed() const {
  std::lock_guard lock(mu_);
  return completed_;
}

std::size_t SnapshotStorm::fallbacks() const {
  std::lock_guard lock(mu_);
  return fallbacks_;
}

std::uint64_t SnapshotStorm::rounds() const {
  std::lock_guard lock(mu_);
  return rounds_;
}

}  // namespace wrs::testing
