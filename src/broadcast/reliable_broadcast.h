// Crash-tolerant reliable broadcast (Hadzilacos & Toueg style).
//
// Guarantees, with at most f crash faults and reliable links:
//  * Validity: if a correct process broadcasts m, it delivers m.
//  * Agreement: if any correct process delivers m, every correct process
//    delivers m.
//  * Integrity: every process delivers m at most once.
//
// Mechanism: the origin sends <RB, origin, seq, payload> to all servers;
// on first receipt every server forwards the same message to all servers
// and then delivers the payload locally. The forwarding step is what
// provides Agreement when the origin crashes mid-broadcast.
//
// Algorithm 4 of the paper broadcasts its T messages through this
// primitive (line 14).
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <utility>

#include "runtime/env.h"
#include "runtime/msg_pool.h"

namespace wrs {

/// The wrapper message carried on the wire.
class RbMsg : public MessageBase<RbMsg> {
 public:
  RbMsg(ProcessId origin, std::uint64_t seq, MsgPtr payload)
      : origin_(origin), seq_(seq), payload_(std::move(payload)) {}

  ProcessId origin() const { return origin_; }
  std::uint64_t seq() const { return seq_; }
  const MsgPtr& payload() const { return payload_; }

  std::string type_name() const override { return "RB"; }
  std::size_t wire_size() const override {
    return kHeaderBytes + 12 + payload_->wire_size();
  }

 private:
  ProcessId origin_;
  std::uint64_t seq_;
  MsgPtr payload_;
};

/// Per-process reliable broadcast endpoint. Owned by a protocol component;
/// not itself a Process. The owner must route RbMsg instances received in
/// its on_message into handle().
///
/// A non-empty `group` scopes both the origin broadcast and the forward
/// step to exactly that server set (one replica group of a sharded
/// deployment); an empty group falls back to every server registered in
/// the Env (the classic single-group behavior).
class ReliableBroadcast {
 public:
  using DeliverFn = std::function<void(ProcessId origin, const Message&)>;

  ReliableBroadcast(Env& env, ProcessId self, DeliverFn deliver,
                    std::vector<ProcessId> group = {})
      : env_(env),
        self_(self),
        deliver_(std::move(deliver)),
        group_(std::move(group)) {}

  /// R-broadcasts `payload` to the group (including self).
  void broadcast(MsgPtr payload) {
    send_all(make_msg<RbMsg>(self_, next_seq_++, std::move(payload)));
  }

  /// Returns true iff `msg` was an RbMsg and has been consumed.
  bool handle(ProcessId /*from*/, const Message& msg) {
    const auto* rb = msg_cast<RbMsg>(msg);
    if (rb == nullptr) return false;
    auto key = std::make_pair(rb->origin(), rb->seq());
    if (!delivered_.insert(key).second) return true;  // duplicate
    // Forward before delivering so Agreement holds even if the local
    // deliver callback crashes this process.
    if (rb->origin() != self_) {
      send_all(make_msg<RbMsg>(rb->origin(), rb->seq(),
                                       rb->payload()));
    }
    deliver_(rb->origin(), *rb->payload());
    return true;
  }

  std::size_t delivered_count() const { return delivered_.size(); }

 private:
  void send_all(const MsgPtr& wrapped) {
    if (group_.empty()) {
      env_.broadcast_to_servers(self_, wrapped);
    } else {
      env_.broadcast_to_group(self_, group_, wrapped);
    }
  }

  Env& env_;
  ProcessId self_;
  DeliverFn deliver_;
  std::vector<ProcessId> group_;
  std::uint64_t next_seq_ = 0;
  std::set<std::pair<ProcessId, std::uint64_t>> delivered_;
};

}  // namespace wrs
