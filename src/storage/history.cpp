#include "storage/history.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <sstream>

namespace wrs {

std::size_t HistoryRecorder::begin(OpRecord::Kind kind, ProcessId process,
                                   TimeNs start, RegisterKey key) {
  std::lock_guard lock(mu_);
  Slot slot;
  slot.rec.kind = kind;
  slot.rec.process = process;
  slot.rec.key = std::move(key);
  slot.rec.start = start;
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

void HistoryRecorder::end_read(std::size_t token, TimeNs end,
                               const TaggedValue& result) {
  std::lock_guard lock(mu_);
  Slot& s = slots_.at(token);
  s.rec.end = end;
  s.rec.tag = result.tag;
  s.rec.value = result.value;
  s.done = true;
}

void HistoryRecorder::end_write(std::size_t token, TimeNs end, const Tag& tag,
                                const Value& value) {
  std::lock_guard lock(mu_);
  Slot& s = slots_.at(token);
  s.rec.end = end;
  s.rec.tag = tag;
  s.rec.value = value;
  s.done = true;
}

std::size_t HistoryRecorder::begin_snapshot(ProcessId process, TimeNs start) {
  std::lock_guard lock(mu_);
  // The placeholder slot carries the snapshot's identity and start; it
  // stays !done forever (end_snapshot appends one completed record per
  // cut key instead), so completed() never surfaces it.
  Slot slot;
  slot.rec.kind = OpRecord::Kind::kRead;
  slot.rec.process = process;
  slot.rec.start = start;
  slot.rec.snap_id = ++next_snap_id_;
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

void HistoryRecorder::end_snapshot(
    std::size_t token, TimeNs end,
    const std::vector<std::pair<RegisterKey, TaggedValue>>& cut) {
  std::lock_guard lock(mu_);
  OpRecord tmpl = slots_.at(token).rec;  // copied: push_back may realloc
  for (const auto& [key, reg] : cut) {
    Slot slot;
    slot.rec = tmpl;
    slot.rec.key = key;
    slot.rec.end = end;
    slot.rec.tag = reg.tag;
    slot.rec.value = reg.value;
    slot.done = true;
    slots_.push_back(std::move(slot));
  }
}

std::vector<OpRecord> HistoryRecorder::completed() const {
  std::lock_guard lock(mu_);
  std::vector<OpRecord> out;
  for (const auto& s : slots_) {
    if (s.done) out.push_back(s.rec);
  }
  return out;
}

std::size_t HistoryRecorder::completed_count() const {
  return completed().size();
}

namespace {

std::string describe(const OpRecord& op) {
  std::ostringstream os;
  if (op.snap_id != 0) {
    os << "snapshot#" << op.snap_id << " entry";
  } else {
    os << (op.kind == OpRecord::Kind::kRead ? "read" : "write");
  }
  os << " by " << process_name(op.process);
  if (!op.key.empty()) os << " key=\"" << op.key << "\"";
  os << " [" << op.start << "," << op.end << "] tag=" << op.tag.str()
     << " value=\"" << op.value << "\"";
  return os.str();
}

/// Checks one register's (single-key) sub-history.
///
/// Fuzz-length histories made the original pairwise scans (A2: reads x
/// writes, A3: reads x reads) the bottleneck, so both are sort + sweep:
/// order the candidate predecessors by completion time, the successors by
/// start time, and carry the running maximum tag (with the op that set
/// it) across the sweep — O(n log n) total, and the reported violation
/// still names both offending operations with their (process, key, tag,
/// interval).
std::optional<std::string> check_single_key(
    const std::vector<const OpRecord*>& ops) {
  std::vector<const OpRecord*> reads;
  std::vector<const OpRecord*> writes;
  for (const OpRecord* op : ops) {
    (op->kind == OpRecord::Kind::kRead ? reads : writes).push_back(op);
  }

  // (A4) unique write tags, strictly increasing per writer.
  std::map<Tag, const OpRecord*> by_tag;
  for (const auto* w : writes) {
    auto [it, inserted] = by_tag.emplace(w->tag, w);
    if (!inserted) {
      return "duplicate write tag: " + describe(*w) + " vs " +
             describe(*it->second);
    }
  }
  std::map<ProcessId, std::vector<const OpRecord*>> per_writer;
  for (const auto* w : writes) per_writer[w->process].push_back(w);
  for (auto& [pid, ws] : per_writer) {
    std::sort(ws.begin(), ws.end(), [](const auto* a, const auto* b) {
      return a->start < b->start;
    });
    for (std::size_t i = 1; i < ws.size(); ++i) {
      if (!(ws[i - 1]->tag < ws[i]->tag)) {
        return "non-monotone tags from one writer: " + describe(*ws[i - 1]) +
               " then " + describe(*ws[i]);
      }
    }
  }

  // (A1) tag validity (O(log n) lookups against the by_tag index).
  for (const auto* r : reads) {
    if (r->tag == kInitialTag) {
      // Reading the initial value is fine as long as (A2) below holds.
      continue;
    }
    auto it = by_tag.find(r->tag);
    if (it == by_tag.end()) {
      return "read of a tag never written: " + describe(*r);
    }
    const OpRecord* w = it->second;
    if (w->start > r->end) {
      return "read returned a write from its future: " + describe(*r) +
             " vs " + describe(*w);
    }
    if (w->value != r->value) {
      return "read value does not match the write with its tag: " +
             describe(*r) + " vs " + describe(*w);
    }
  }

  // Shared sweep machinery for (A2) and (A3): predecessors sorted by end,
  // successors sorted by start; a two-pointer walk folds every
  // predecessor with pred->end < succ->start into a running max tag.
  auto sweep = [](std::vector<const OpRecord*>& preds,
                  std::vector<const OpRecord*>& succs,
                  const char* what) -> std::optional<std::string> {
    std::sort(preds.begin(), preds.end(), [](const auto* a, const auto* b) {
      return a->end < b->end;
    });
    std::sort(succs.begin(), succs.end(), [](const auto* a, const auto* b) {
      return a->start < b->start;
    });
    const OpRecord* max_pred = nullptr;  // highest tag completed so far
    std::size_t next = 0;
    for (const auto* s : succs) {
      while (next < preds.size() && preds[next]->end < s->start) {
        if (max_pred == nullptr || max_pred->tag < preds[next]->tag) {
          max_pred = preds[next];
        }
        ++next;
      }
      if (max_pred != nullptr && s->tag < max_pred->tag) {
        return std::string(what) + ": " + describe(*s) + " missed " +
               describe(*max_pred);
      }
    }
    return std::nullopt;
  };

  // (A2) regularity: a read is at least as new as every write completed
  // before it started.
  if (auto err = sweep(writes, reads,
                       "stale read (write completed before it started)")) {
    return err;
  }

  // (A3) Definition 6: no new/old inversion between non-overlapping reads.
  std::vector<const OpRecord*> reads_by_end = reads;
  if (auto err = sweep(reads_by_end, reads, "new/old inversion")) {
    return err;
  }

  return std::nullopt;
}

/// (S1): the cut's entries must share an instant T — for every entry,
/// T >= the start of the write producing its (non-initial) tag, and T <
/// the end of every op on its key carrying a strictly higher tag (that
/// op proves the higher tag was committed by then). The check folds the
/// per-entry constraints into one [lower, upper] window and reports the
/// two operations that squeeze it shut.
std::optional<std::string> check_cut_consistency(
    const std::vector<const OpRecord*>& entries,
    const std::map<RegisterKey, std::vector<const OpRecord*>>& by_key) {
  TimeNs lower = std::numeric_limits<TimeNs>::min();
  TimeNs upper = std::numeric_limits<TimeNs>::max();
  const OpRecord* lower_op = nullptr;
  const OpRecord* upper_op = nullptr;
  for (const OpRecord* e : entries) {
    for (const OpRecord* op : by_key.at(e->key)) {
      if (op->kind == OpRecord::Kind::kWrite && op->tag == e->tag &&
          op->start > lower) {
        lower = op->start;
        lower_op = op;
      }
      if (e->tag < op->tag && op->end < upper) {
        upper = op->end;
        upper_op = op;
      }
    }
  }
  if (upper >= lower || lower_op == nullptr || upper_op == nullptr) {
    return std::nullopt;
  }
  std::string err = "inconsistent snapshot cut: entry tags cannot coexist — ";
  err += describe(*upper_op);
  err += " proves its key moved on before ";
  err += describe(*lower_op);
  err += " even began";
  return err;
}

}  // namespace

std::optional<std::string> check_atomicity(const std::vector<OpRecord>& ops) {
  // Each named register is an independent atomic object: partition by key
  // and check every per-key projection on its own (snapshot entries
  // participate as ordinary reads).
  std::map<RegisterKey, std::vector<const OpRecord*>> by_key;
  for (const auto& op : ops) by_key[op.key].push_back(&op);
  for (const auto& [key, key_ops] : by_key) {
    if (auto err = check_single_key(key_ops)) {
      if (key.empty()) return err;
      // Built by append: chained operator+ trips gcc-12's -Wrestrict
      // false positive (PR105329) at -O2.
      std::string prefixed = "[key \"";
      prefixed += key;
      prefixed += "\"] ";
      prefixed += *err;
      return prefixed;
    }
  }

  // Cross-key snapshot checks.
  std::map<std::uint64_t, std::vector<const OpRecord*>> cuts;
  for (const auto& op : ops) {
    if (op.snap_id != 0) cuts[op.snap_id].push_back(&op);
  }
  if (cuts.empty()) return std::nullopt;

  // (S1) every cut is a consistent instant.
  for (const auto& [sid, entries] : cuts) {
    if (auto err = check_cut_consistency(entries, by_key)) return err;
  }

  // (S2) cuts sharing keys are pairwise comparable: one dominates the
  // other on every shared key. Snapshot counts are small (tens), so the
  // pairwise scan over per-cut key indexes is cheap.
  std::vector<std::map<RegisterKey, const OpRecord*>> indexed;
  indexed.reserve(cuts.size());
  for (const auto& [sid, entries] : cuts) {
    std::map<RegisterKey, const OpRecord*> m;
    for (const OpRecord* e : entries) m[e->key] = e;
    indexed.push_back(std::move(m));
  }
  for (std::size_t a = 0; a < indexed.size(); ++a) {
    for (std::size_t b = a + 1; b < indexed.size(); ++b) {
      const OpRecord* a_newer = nullptr;  // a key where cut a leads
      const OpRecord* b_newer = nullptr;  // a key where cut b leads
      for (const auto& [key, ea] : indexed[a]) {
        auto it = indexed[b].find(key);
        if (it == indexed[b].end()) continue;
        const OpRecord* eb = it->second;
        if (eb->tag < ea->tag) a_newer = ea;
        if (ea->tag < eb->tag) b_newer = eb;
      }
      if (a_newer != nullptr && b_newer != nullptr) {
        std::string err = "crossing snapshot cuts: ";
        err += describe(*a_newer);
        err += " is newer on its key while ";
        err += describe(*b_newer);
        err += " is newer on another shared key";
        return err;
      }
    }
  }
  return std::nullopt;
}

}  // namespace wrs
