#include "storage/history.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace wrs {

std::size_t HistoryRecorder::begin(OpRecord::Kind kind, ProcessId process,
                                   TimeNs start, RegisterKey key) {
  std::lock_guard lock(mu_);
  Slot slot;
  slot.rec.kind = kind;
  slot.rec.process = process;
  slot.rec.key = std::move(key);
  slot.rec.start = start;
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

void HistoryRecorder::end_read(std::size_t token, TimeNs end,
                               const TaggedValue& result) {
  std::lock_guard lock(mu_);
  Slot& s = slots_.at(token);
  s.rec.end = end;
  s.rec.tag = result.tag;
  s.rec.value = result.value;
  s.done = true;
}

void HistoryRecorder::end_write(std::size_t token, TimeNs end, const Tag& tag,
                                const Value& value) {
  std::lock_guard lock(mu_);
  Slot& s = slots_.at(token);
  s.rec.end = end;
  s.rec.tag = tag;
  s.rec.value = value;
  s.done = true;
}

std::vector<OpRecord> HistoryRecorder::completed() const {
  std::lock_guard lock(mu_);
  std::vector<OpRecord> out;
  for (const auto& s : slots_) {
    if (s.done) out.push_back(s.rec);
  }
  return out;
}

std::size_t HistoryRecorder::completed_count() const {
  return completed().size();
}

namespace {

std::string describe(const OpRecord& op) {
  std::ostringstream os;
  os << (op.kind == OpRecord::Kind::kRead ? "read" : "write") << " by "
     << process_name(op.process);
  if (!op.key.empty()) os << " key=\"" << op.key << "\"";
  os << " [" << op.start << "," << op.end << "] tag=" << op.tag.str()
     << " value=\"" << op.value << "\"";
  return os.str();
}

/// Checks one register's (single-key) sub-history.
///
/// Fuzz-length histories made the original pairwise scans (A2: reads x
/// writes, A3: reads x reads) the bottleneck, so both are sort + sweep:
/// order the candidate predecessors by completion time, the successors by
/// start time, and carry the running maximum tag (with the op that set
/// it) across the sweep — O(n log n) total, and the reported violation
/// still names both offending operations with their (process, key, tag,
/// interval).
std::optional<std::string> check_single_key(
    const std::vector<const OpRecord*>& ops) {
  std::vector<const OpRecord*> reads;
  std::vector<const OpRecord*> writes;
  for (const OpRecord* op : ops) {
    (op->kind == OpRecord::Kind::kRead ? reads : writes).push_back(op);
  }

  // (A4) unique write tags, strictly increasing per writer.
  std::map<Tag, const OpRecord*> by_tag;
  for (const auto* w : writes) {
    auto [it, inserted] = by_tag.emplace(w->tag, w);
    if (!inserted) {
      return "duplicate write tag: " + describe(*w) + " vs " +
             describe(*it->second);
    }
  }
  std::map<ProcessId, std::vector<const OpRecord*>> per_writer;
  for (const auto* w : writes) per_writer[w->process].push_back(w);
  for (auto& [pid, ws] : per_writer) {
    std::sort(ws.begin(), ws.end(), [](const auto* a, const auto* b) {
      return a->start < b->start;
    });
    for (std::size_t i = 1; i < ws.size(); ++i) {
      if (!(ws[i - 1]->tag < ws[i]->tag)) {
        return "non-monotone tags from one writer: " + describe(*ws[i - 1]) +
               " then " + describe(*ws[i]);
      }
    }
  }

  // (A1) tag validity (O(log n) lookups against the by_tag index).
  for (const auto* r : reads) {
    if (r->tag == kInitialTag) {
      // Reading the initial value is fine as long as (A2) below holds.
      continue;
    }
    auto it = by_tag.find(r->tag);
    if (it == by_tag.end()) {
      return "read of a tag never written: " + describe(*r);
    }
    const OpRecord* w = it->second;
    if (w->start > r->end) {
      return "read returned a write from its future: " + describe(*r) +
             " vs " + describe(*w);
    }
    if (w->value != r->value) {
      return "read value does not match the write with its tag: " +
             describe(*r) + " vs " + describe(*w);
    }
  }

  // Shared sweep machinery for (A2) and (A3): predecessors sorted by end,
  // successors sorted by start; a two-pointer walk folds every
  // predecessor with pred->end < succ->start into a running max tag.
  auto sweep = [](std::vector<const OpRecord*>& preds,
                  std::vector<const OpRecord*>& succs,
                  const char* what) -> std::optional<std::string> {
    std::sort(preds.begin(), preds.end(), [](const auto* a, const auto* b) {
      return a->end < b->end;
    });
    std::sort(succs.begin(), succs.end(), [](const auto* a, const auto* b) {
      return a->start < b->start;
    });
    const OpRecord* max_pred = nullptr;  // highest tag completed so far
    std::size_t next = 0;
    for (const auto* s : succs) {
      while (next < preds.size() && preds[next]->end < s->start) {
        if (max_pred == nullptr || max_pred->tag < preds[next]->tag) {
          max_pred = preds[next];
        }
        ++next;
      }
      if (max_pred != nullptr && s->tag < max_pred->tag) {
        return std::string(what) + ": " + describe(*s) + " missed " +
               describe(*max_pred);
      }
    }
    return std::nullopt;
  };

  // (A2) regularity: a read is at least as new as every write completed
  // before it started.
  if (auto err = sweep(writes, reads,
                       "stale read (write completed before it started)")) {
    return err;
  }

  // (A3) Definition 6: no new/old inversion between non-overlapping reads.
  std::vector<const OpRecord*> reads_by_end = reads;
  if (auto err = sweep(reads_by_end, reads, "new/old inversion")) {
    return err;
  }

  return std::nullopt;
}

}  // namespace

std::optional<std::string> check_atomicity(const std::vector<OpRecord>& ops) {
  // Each named register is an independent atomic object: partition by key
  // and check every per-key projection on its own.
  std::map<RegisterKey, std::vector<const OpRecord*>> by_key;
  for (const auto& op : ops) by_key[op.key].push_back(&op);
  for (const auto& [key, key_ops] : by_key) {
    if (auto err = check_single_key(key_ops)) {
      if (key.empty()) return err;
      // Built by append: chained operator+ trips gcc-12's -Wrestrict
      // false positive (PR105329) at -O2.
      std::string prefixed = "[key \"";
      prefixed += key;
      prefixed += "\"] ";
      prefixed += *err;
      return prefixed;
    }
  }
  return std::nullopt;
}

}  // namespace wrs
