// Operation-history recording and atomicity checking.
//
// The checker verifies the guarantees of an atomic MWMR register over a
// recorded concurrent history, using tag order as the version order:
//
//  (A1) tag validity  — every read returns the initial tag or the tag of
//       some write whose invocation precedes the read's response;
//  (A2) regularity    — a read returns a tag >= the tag of every write
//       that completed before the read started;
//  (A3) Definition 6  — for two reads r1, r2 where r1 completes before r2
//       starts, tag(r2) >= tag(r1) (no new/old inversion);
//  (A4) write tags are unique and strictly increase per writer.
//
// These conditions are exactly atomicity for tag-ordered registers where
// phase-2 write-backs ensure reads are linearized at tag order.
//
// Snapshots (ShardRouter::snapshot) record one read-like entry per cut
// key, all sharing the snapshot's [start, end] interval and a unique
// snap_id. Each entry participates in the per-key checks above as an
// ordinary read, and the cut as a whole must be CONSISTENT across keys:
//
//  (S1) cut consistency — some instant T exists at which every entry's
//       tag was current: T >= the start of the write producing each
//       non-initial entry tag, and T < the end of every operation that
//       returned/wrote a HIGHER tag on an entry's key (such an operation
//       proves the higher tag was committed by its end);
//  (S2) cut comparability — two cuts sharing keys are ordered: one
//       dominates the other (per-key tag comparison) on EVERY shared
//       key. Crossing cuts (j newer here, k newer there) cannot both be
//       instants of the same linearization.
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "storage/tag.h"

namespace wrs {

struct OpRecord {
  enum class Kind { kRead, kWrite };
  Kind kind = Kind::kRead;
  ProcessId process = kNoProcess;
  RegisterKey key;  // register the op targeted ("" = the paper's)
  TimeNs start = 0;
  TimeNs end = 0;
  Tag tag;      // tag read / tag written
  Value value;  // value read / value written
  /// 0 = a plain operation. Non-zero groups the entries of one atomic
  /// snapshot: every record with the same snap_id is one key of that
  /// snapshot's cut (kind kRead, shared [start, end]).
  std::uint64_t snap_id = 0;
};

/// Internally synchronized: on the thread runtime the recording clients
/// run on different worker threads.
class HistoryRecorder {
 public:
  /// Begins an operation; returns a token to close it with.
  std::size_t begin(OpRecord::Kind kind, ProcessId process, TimeNs start,
                    RegisterKey key = {});
  void end_read(std::size_t token, TimeNs end, const TaggedValue& result);
  void end_write(std::size_t token, TimeNs end, const Tag& tag,
                 const Value& value);

  /// Begins an atomic snapshot; returns a token to close it with. The
  /// snapshot is assigned a recorder-unique snap_id.
  std::size_t begin_snapshot(ProcessId process, TimeNs start);
  /// Completes a snapshot: records one read-like entry per cut pair, all
  /// sharing the snapshot's interval and snap_id. A snapshot never
  /// closed (crashed client) leaves no completed records, like any
  /// unfinished op.
  void end_snapshot(std::size_t token, TimeNs end,
                    const std::vector<std::pair<RegisterKey, TaggedValue>>& cut);

  /// Completed records only (unfinished ops are ignored by the checker —
  /// crashes may legitimately leave them open).
  std::vector<OpRecord> completed() const;

  std::size_t completed_count() const;

 private:
  struct Slot {
    OpRecord rec;
    bool done = false;
  };
  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  std::uint64_t next_snap_id_ = 0;
};

/// Returns nullopt when the history is atomic; otherwise a description of
/// the first violation found, naming the offending operations with their
/// (process, key, tag, [start, end]) so a chaos-fuzz failure is
/// actionable without replaying. Each named register is an independent
/// atomic object, so the history is partitioned by key and every per-key
/// sub-history checked on its own (a multi-key pipelined history is
/// atomic iff each per-key projection is).
///
/// Scales to fuzz-length histories: the (A2) read-vs-completed-write and
/// (A3) read-vs-read checks are per-key sort + sweep with a running
/// maximum tag — O(n log n) overall, not the previous O(n^2) pairwise
/// scan.
///
/// Records with a snap_id additionally run the cross-key cut checks
/// (S1)/(S2) described above — a history with snapshots is atomic iff
/// every per-key projection is atomic AND every cut is a consistent,
/// pairwise-comparable instant.
std::optional<std::string> check_atomicity(const std::vector<OpRecord>& ops);

}  // namespace wrs
