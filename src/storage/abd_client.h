// Reader/writer side of the (dynamic-weighted) ABD register — Algorithm 5.
//
// read() and write() both run the two-phase read_write skeleton:
//   phase 1  broadcast <R>; collect <R_A, reg, C'> replies until the
//            responders form a *weighted quorum* under the client's
//            current change set C (threshold W_{S,0}/2);
//   phase 2  broadcast <W, <tag,val>> (the write-back for reads, the new
//            value with tag (max_ts+1, pid) for writes); collect <W_A>
//            until a weighted quorum acked.
//
// Dynamic mode: every reply carries the server's change set C'. If C'
// contains changes the client has not seen, the client merges them and
// RESTARTS the operation from phase 1 (Algorithm 5 lines 14-16/30-32).
// Deviations from the paper's literal pseudocode (rationale in
// DESIGN.md §2): newer sets are MERGED rather than adopted verbatim, and
// a write keeps its once-chosen tag across restarts.
//
// Multi-register extension (beyond the paper): registers are named; the
// paper's register is key "". list_keys() discovers every key any
// completed write could have created, by collecting from a *weighted
// quorum* — a weighted quorum intersects every past write quorum, which
// a mere f+1-server sample does not (a weighted quorum may have fewer
// than f+1 members).
//
// Static mode ignores change sets entirely and uses the fixed initial
// weights — this is the classical weighted/unweighted ABD baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "core/config.h"
#include "runtime/env.h"
#include "storage/abd_messages.h"

namespace wrs {

class AbdClient {
 public:
  enum class Mode { kStatic, kDynamic };

  using ReadCallback = std::function<void(const TaggedValue&)>;
  using WriteCallback = std::function<void(const Tag&)>;
  using KeysCallback = std::function<void(const std::vector<RegisterKey>&)>;

  AbdClient(Env& env, ProcessId self, const SystemConfig& config, Mode mode);

  /// Atomic read of register `key`; cb fires once with the (tag, value)
  /// read. One operation at a time (processes are sequential) — throws
  /// if busy.
  void read(RegisterKey key, ReadCallback cb);
  void read(ReadCallback cb) { read(RegisterKey{}, std::move(cb)); }

  /// Atomic write; cb fires once with the tag the value was written
  /// under.
  void write(RegisterKey key, Value value, WriteCallback cb);
  void write(Value value, WriteCallback cb) {
    write(RegisterKey{}, std::move(value), std::move(cb));
  }

  /// Discovers every register key stored at some weighted quorum.
  void list_keys(KeysCallback cb);

  /// Routes R_A / W_A / KEYS_A replies; true iff consumed.
  bool handle(ProcessId from, const Message& msg);

  bool busy() const { return op_.has_value(); }

  /// The client's current change set (dynamic mode).
  const ChangeSet& changes() const { return changes_; }

  /// Weight map the client currently derives quorums from.
  WeightMap current_weights() const;

  /// Total operation restarts caused by newer change sets (EXP-S1).
  std::uint64_t restarts() const { return restarts_; }

  /// Safety valve for tests: maximum restarts per operation before the
  /// client reports a bug (liveness assumes finitely many transfers).
  void set_max_restarts(std::uint32_t m) { max_restarts_ = m; }

 private:
  enum class OpKind { kRead, kWrite, kListKeys };

  struct Op {
    OpKind kind = OpKind::kRead;
    RegisterKey key;
    Value value;  // payload for writes
    int phase = 1;
    std::uint64_t phase_op_id = 0;
    std::map<ProcessId, TaggedValue> phase1_replies;
    std::set<ProcessId> phase2_acks;
    TaggedValue to_write;
    bool write_tag_chosen = false;
    ReadCallback rcb;
    WriteCallback wcb;
    KeysCallback kcb;
    TaggedValue read_result;
    std::set<ProcessId> keys_acks;
    std::set<RegisterKey> keys_acc;
    std::uint32_t op_restarts = 0;
  };

  void start_phase1();
  void start_phase2();
  bool merge_and_maybe_restart(const ChangeSetPtr& incoming);
  bool responders_form_quorum(const std::set<ProcessId>& responders) const;
  std::uint64_t fresh_op_id();

  Env& env_;
  ProcessId self_;
  SystemConfig config_;
  Mode mode_;
  Weight initial_total_;

  ChangeSet changes_;
  std::optional<Op> op_;
  std::uint64_t restarts_ = 0;
  std::uint32_t max_restarts_ = 10'000;
};

}  // namespace wrs
