// Reader/writer side of the (dynamic-weighted) ABD register — Algorithm 5,
// generalized to an operation-multiplexed pipeline.
//
// Every operation runs the two-phase read_write skeleton:
//   phase 1  broadcast <R>; collect <R_A, reg, C'> replies until the
//            responders form a *weighted quorum* under the client's
//            current change set C (threshold W_{S,0}/2);
//   phase 2  broadcast <W, <tag,val>> (the write-back for reads, the new
//            value with tag (max_ts+1, pid) for writes); collect <W_A>
//            until a weighted quorum acked.
//
// Pipelining (beyond the paper's sequential client): many operations may
// be in flight at once, each an independent state machine keyed by its
// OpId in the request/reply messages. Nothing in the protocol requires
// per-client serialization across *distinct* keys — quorum intersection
// is per-operation — so independent operations multiplex freely over the
// same replicas. Operations on the SAME key from one client execute in
// issue order (a per-key FIFO): concurrent same-key writes from one
// process would otherwise race the (max_ts+1, pid) tag choice and could
// mint duplicate tags, and FIFO also gives drivers per-key program
// order. list_keys() has no key and never queues.
//
// Dynamic mode: every reply carries the server's change set C'. If C'
// contains changes the client has not seen, the client merges them and
// RESTARTS every started operation from phase 1 (Algorithm 5 lines
// 14-16/30-32 — the change set is client-level state, so all in-flight
// quorum accounting predates the merge, not just the op whose reply
// carried the news). Deviations from the paper's literal pseudocode
// (rationale in DESIGN.md §2): newer sets are MERGED rather than adopted
// verbatim, and a write keeps its once-chosen tag across restarts.
//
// Multi-register extension (beyond the paper): registers are named; the
// paper's register is key "". list_keys() discovers every key any
// completed write could have created, by collecting from a *weighted
// quorum* — a weighted quorum intersects every past write quorum, which
// a mere f+1-server sample does not (a weighted quorum may have fewer
// than f+1 members).
//
// Batched wire mode (off by default): set_batching(max_ops, max_delay)
// buffers phase broadcasts and coalesces them into one BatchRequest per
// flush — flushed as soon as `max_ops` frames are pending or `max_delay`
// after the first one, whichever comes first. Servers apply each frame
// individually and answer with one BatchReply the client demultiplexes,
// so per-key FIFO, unique write tags, change-set restarts, and retries
// are all untouched; only the per-operation message constant shrinks.
// set_batching(1, ...) IS the unbatched path, byte for byte.
//
// Static mode ignores change sets entirely and uses the fixed initial
// weights — this is the classical weighted/unweighted ABD baseline.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "core/config.h"
#include "runtime/env.h"
#include "storage/abd_messages.h"
#include "storage/migration_messages.h"
#include "storage/snapshot_messages.h"

namespace wrs {

class AbdClient {
 public:
  enum class Mode { kStatic, kDynamic };

  using ReadCallback = std::function<void(const TaggedValue&)>;
  using WriteCallback = std::function<void(const Tag&)>;
  using KeysCallback = std::function<void(const std::vector<RegisterKey>&)>;

  /// One key's aggregate over a weighted quorum of SnapAcks: the max-tag
  /// replica, whether every quorum responder reported that same tag
  /// (unanimous => the tag is already committed at this quorum), and any
  /// routing flag a responder raised (frozen / moved).
  struct CollectEntry {
    RegisterKey key;
    TaggedValue reg;
    std::uint8_t flag = SnapEntry::kOk;
    ShardId owner = 0;        ///< valid when flag == SnapEntry::kMoved
    std::uint64_t epoch = 0;  ///< valid when flag == SnapEntry::kMoved
    bool unanimous = false;
  };
  using CollectCallback = std::function<void(const std::vector<CollectEntry>&)>;
  using ReleaseCallback = std::function<void(bool all_held)>;

  /// What an operation is doing (public so EjectedOp can carry it).
  enum class OpKind {
    kRead,
    kWrite,
    kListKeys,
    kFreeze,
    kCommit,
    kCollect,      ///< snapshot collect round (SnapReq)
    kInstall,      ///< snapshot write-back: phase-2 write with a preset tag
    kSnapFreeze,   ///< fenced-fallback round 1 (SnapFreeze)
    kSnapRelease,  ///< fenced-fallback round 2 (SnapRelease)
  };

  AbdClient(Env& env, ProcessId self, const SystemConfig& config, Mode mode);

  /// Atomic read of register `key`; cb fires once with the (tag, value)
  /// read. Pipelined: any number of operations may be in flight;
  /// operations on the same key run in issue order.
  OpId read(RegisterKey key, ReadCallback cb);
  OpId read(ReadCallback cb) { return read(RegisterKey{}, std::move(cb)); }

  /// Atomic write; cb fires once with the tag the value was written
  /// under. Same pipelining rules as read().
  OpId write(RegisterKey key, Value value, WriteCallback cb);
  OpId write(Value value, WriteCallback cb) {
    return write(RegisterKey{}, std::move(value), std::move(cb));
  }

  /// Discovers every register key stored at some weighted quorum. Never
  /// queued behind keyed operations.
  OpId list_keys(KeysCallback cb);

  // --- elastic resharding (MigrationEngine verbs) --------------------------

  /// Freeze `key` at this group behind map epoch `epoch` and collect the
  /// final read: cb fires with the max-tag replica of a weighted quorum
  /// of freeze acks. One-round (no write-back); `dest` is advisory.
  OpId freeze_key(RegisterKey key, std::uint64_t epoch, ShardId dest,
                  ReadCallback cb);

  /// Commit "key is owned by `owner` as of `epoch`" at this group; the
  /// destination-side round carries the frozen replica in `install`. cb
  /// fires once a weighted quorum acked. One-round (ack collection only).
  OpId commit_mark(RegisterKey key, ShardId owner, std::uint64_t epoch,
                   std::optional<TaggedValue> install, WriteCallback cb);

  // --- cross-shard snapshots (ShardRouter::snapshot verbs) -----------------

  /// One snapshot collect round: reads the (tag, value) of every listed
  /// key from a weighted quorum in a single round trip; cb fires with
  /// one CollectEntry per key (same order). Never queued behind keyed
  /// operations, never batched.
  OpId collect(std::vector<RegisterKey> keys, CollectCallback cb);

  /// Fenced-fallback round 1: fence `keys` under `snap_id` at a weighted
  /// quorum and return their replicas (same aggregate as collect()). A
  /// key a responder could not fence (migration fence, foreign snapshot,
  /// moved) comes back flagged — the caller must abort via
  /// snap_release() with lift-only entries.
  OpId snap_freeze(SnapId snap_id, std::vector<RegisterKey> keys,
                   CollectCallback cb);

  /// Fenced-fallback round 2: installs entries flagged kOk
  /// tag-monotonically, lifts the named fences, drains parked requests.
  /// cb fires with all_held = true iff every quorum responder still held
  /// every named fence under `snap_id` (false => a fence TTL-expired and
  /// the round must be discarded).
  OpId snap_release(SnapId snap_id, std::vector<SnapEntry> installs,
                    ReleaseCallback cb);

  /// Snapshot write-back: a phase-2-only write of a PRESET (tag, value)
  /// (the double-collect confirmation writes back non-unanimous keys).
  /// Tag-monotone and idempotent, like any ABD write-back. Bypasses the
  /// per-key FIFO: it races no tag choice (its tag is fixed) and must
  /// not deadlock behind requests parked at a fenced server.
  OpId install(RegisterKey key, TaggedValue reg, WriteCallback cb);

  /// A started operation extracted for reissue at another shard after a
  /// WrongShardAck redirect (ShardRouter). Carries exactly the state the
  /// new shard's client needs: a write keeps its once-chosen tag — the
  /// ghost-tag argument for change-set restarts applies unchanged to
  /// cross-shard reissue.
  struct EjectedOp {
    OpKind kind = OpKind::kRead;
    RegisterKey key;
    Value value;
    TaggedValue to_write;
    bool write_tag_chosen = false;
    ReadCallback rcb;
    WriteCallback wcb;
  };

  /// Removes operation `id` (promoting its per-key FIFO successor) and
  /// returns its reissuable state; nullopt when the op is unknown,
  /// already completed, or not reissuable (kListKeys and the migration
  /// verbs are never redirected).
  std::optional<EjectedOp> eject(OpId id);

  /// Re-enqueues an ejected operation on THIS client (the redirect
  /// target). Runs the full two-phase protocol under a fresh OpId; the
  /// per-key FIFO keeps reissue order.
  OpId resume(EjectedOp op);

  /// Routes R_A / W_A / KEYS_A replies; true iff consumed. Replies whose
  /// OpId belongs to no in-flight operation are NOT consumed (they may
  /// target a co-located client sharing this mailbox, or be late acks of
  /// a completed operation).
  bool handle(ProcessId from, const Message& msg);

  /// True while any operation is in flight.
  bool busy() const { return !ops_.empty(); }
  /// Operations currently in flight (started + queued on a key FIFO).
  std::size_t in_flight() const { return ops_.size(); }
  /// High-water mark of concurrently STARTED operations (ops whose
  /// quorum rounds genuinely overlapped; FIFO-queued ops don't count) —
  /// lets tests assert that pipelining actually overlapped work.
  std::size_t max_in_flight() const { return max_started_; }

  /// The client's current change set (dynamic mode).
  const ChangeSet& changes() const { return changes_; }

  /// Weight map the client currently derives quorums from.
  WeightMap current_weights() const;

  /// Total operation restarts caused by newer change sets (EXP-S1).
  std::uint64_t restarts() const { return restarts_; }

  /// Safety valve for tests: maximum restarts per operation before the
  /// client reports a bug (liveness assumes finitely many transfers).
  void set_max_restarts(std::uint32_t m) { max_restarts_ = m; }

  /// Retransmission (off by default, interval <= 0): while an operation
  /// sits in the same (phase, seq) for `interval`, its current phase
  /// broadcast is re-sent with the SAME (op_id, seq) — servers are
  /// idempotent and duplicate replies collapse, so this is always safe.
  /// Required for liveness when the fault plane (Env::faults()) loses
  /// messages: without it a dropped quorum message stalls the operation
  /// forever, even after the link heals.
  void set_retry_interval(TimeNs interval) { retry_interval_ = interval; }
  TimeNs retry_interval() const { return retry_interval_; }

  /// Phase broadcasts re-sent by the retry timer (observability/tests).
  std::uint64_t retransmits() const { return retransmits_; }

  /// One-round read fast path (off by default). When every phase-1
  /// quorum reply reports the max tag, that (tag, value) is already
  /// stored at a weighted quorum — the one the replies came from — so
  /// the write-back round re-installs what quorum intersection already
  /// guarantees every future read will see. With the fast path on, such
  /// reads complete after one round (halving msgs/op on read-heavy,
  /// contention-free workloads) and are counted as "reads.fast_path" in
  /// the env ledger. Off by default to keep the classical two-round
  /// message pattern byte-for-byte for pinned traffic tests.
  void set_read_fast_path(bool on) { read_fast_path_ = on; }
  bool read_fast_path() const { return read_fast_path_; }

  /// Reads completed via the one-round fast path (observability/tests).
  std::uint64_t fast_path_reads() const { return fast_path_reads_; }

  /// Batched wire mode. `max_ops` <= 1 disables it (the default) — that
  /// path is byte-identical to the pre-batching client. With batching on,
  /// every phase broadcast is buffered and the buffer is flushed as ONE
  /// BatchRequest to the group when it holds `max_ops` frames or
  /// `max_delay` after the first frame was buffered, whichever happens
  /// first (max_delay 0 still defers to a zero-delay callback, so every
  /// operation issued in the same handler tick coalesces).
  void set_batching(std::size_t max_ops, TimeNs max_delay);
  std::size_t batch_max_ops() const { return batch_max_ops_; }
  TimeNs batch_max_delay() const { return batch_max_delay_; }
  bool batching() const { return batch_max_ops_ > 1; }

  /// Envelopes flushed / frames carried by them (observability: the mean
  /// frames-per-envelope is batched_frames()/batches_sent()).
  std::uint64_t batches_sent() const { return batches_sent_; }
  std::uint64_t batched_frames() const { return batched_frames_; }

 private:
  struct Op {
    OpId id = 0;
    OpKind kind = OpKind::kRead;
    RegisterKey key;
    Value value;  // payload for writes
    bool started = false;  // false while waiting on the per-key FIFO
    int phase = 1;
    std::uint32_t seq = 0;  // phase-attempt counter echoed in replies
    // Reply accounting is flat vectors, not node-based sets/maps: a
    // replica group is a handful of servers, so membership checks are a
    // short linear scan over one cache line and collection never
    // allocates per reply.
    std::vector<std::pair<ProcessId, TaggedValue>> phase1_replies;
    std::vector<ProcessId> phase2_acks;
    TaggedValue to_write;
    bool write_tag_chosen = false;
    ReadCallback rcb;
    WriteCallback wcb;
    KeysCallback kcb;
    TaggedValue read_result;
    std::vector<ProcessId> keys_acks;
    std::set<RegisterKey> keys_acc;
    std::uint32_t op_restarts = 0;
    // Migration verbs (kFreeze/kCommit) only.
    std::uint64_t mig_epoch = 0;
    ShardId mig_owner = 0;  ///< freeze: advisory dest; commit: new owner
    std::optional<TaggedValue> mig_install;
    // Snapshot verbs (kCollect/kSnapFreeze/kSnapRelease) only.
    std::vector<RegisterKey> snap_keys;
    SnapId snap_id = 0;
    std::vector<SnapEntry> snap_installs;
    /// Last SnapAck entry vector per responder (dedupe by pid, last
    /// wins — mirrors phase1_replies); keys_acks tracks the pids.
    std::vector<std::pair<ProcessId, std::vector<SnapEntry>>> snap_replies;
    bool snap_all_held = true;
    CollectCallback ccb;
    ReleaseCallback relcb;
  };

  /// One buffered phase broadcast awaiting the next envelope flush. The
  /// (id, seq) pair lets the flush skip frames whose operation completed
  /// or restarted while buffered.
  struct PendingFrame {
    OpId id = 0;
    std::uint32_t seq = 0;
    MsgPtr msg;
  };

  /// Kinds that have no register key: they bypass the per-key FIFO
  /// entirely (enqueue, eject, complete all skip FIFO bookkeeping).
  /// kInstall HAS a key but is still keyless-by-policy (see install()).
  static bool keyless(OpKind kind) {
    return kind == OpKind::kListKeys || kind == OpKind::kCollect ||
           kind == OpKind::kInstall || kind == OpKind::kSnapFreeze ||
           kind == OpKind::kSnapRelease;
  }

  OpId enqueue(Op op);
  std::vector<CollectEntry> aggregate_snap(const Op& op) const;
  void start_phase1(Op& op);
  void start_phase2(Op& op);
  void broadcast_phase(const Op& op);
  void enqueue_frame(const Op& op, MsgPtr msg);
  void flush_batch();
  void schedule_retry(OpId id, std::uint32_t seq);
  void complete(OpId id);
  bool merge_and_maybe_restart(const ChangeSetPtr& incoming);
  bool responders_form_quorum(const std::vector<ProcessId>& responders) const;
  bool responders_form_quorum(
      const std::vector<std::pair<ProcessId, TaggedValue>>& replies) const;
  static OpId fresh_op_id();

  Env& env_;
  ProcessId self_;
  SystemConfig config_;
  /// The group's server ids, cached: broadcasts go to exactly this set
  /// (one replica group of a possibly sharded deployment), never to
  /// every server registered in the Env.
  std::vector<ProcessId> servers_;
  Mode mode_;
  Weight initial_total_;

  ChangeSet changes_;
  /// Concurrent operation state machines, keyed by OpId. FlatMap keeps
  /// in-flight state contiguous; OpIds are allocated monotonically, so
  /// inserts land at the back.
  FlatMap<OpId, Op> ops_;
  /// Issue-order FIFO per key; the front op is the started one.
  FlatMap<RegisterKey, std::deque<OpId>> key_fifo_;
  std::size_t started_count_ = 0;
  std::size_t max_started_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint32_t max_restarts_ = 10'000;
  TimeNs retry_interval_ = 0;
  std::uint64_t retransmits_ = 0;
  bool read_fast_path_ = false;
  std::uint64_t fast_path_reads_ = 0;

  // --- batched wire mode ---------------------------------------------------
  std::size_t batch_max_ops_ = 1;  // <= 1: unbatched (byte-identical)
  TimeNs batch_max_delay_ = 0;
  std::vector<PendingFrame> batch_buf_;
  /// Bumped on every flush and every armed timer; a timer only fires its
  /// flush when its generation is still current (stale timers of already
  /// flushed batches must not split the batch that followed them).
  std::uint64_t batch_timer_gen_ = 0;
  std::uint64_t batches_sent_ = 0;
  std::uint64_t batched_frames_ = 0;
};

}  // namespace wrs
