// Wire messages of the elastic-resharding handoff (src/rebalance/).
//
// A migration moves ONE register between replica groups while both keep
// serving traffic, in three quorum rounds driven by the MigrationEngine:
//
//   1. MigFreeze  -> source group.  Each server fences the key behind the
//      migration's map epoch (client requests for the key are parked, see
//      AbdServer) and answers with a plain ReadAck carrying its replica —
//      the freeze doubles as the final ABD read, so the engine's quorum
//      of freeze acks yields the definitive (tag, value) by the standard
//      intersection argument.
//   2. MigCommit(install) -> destination group.  Carries the frozen
//      (tag, value); each server installs it tag-monotonically AND marks
//      itself the key's owner in the same step, then acks with a plain
//      WriteAck. Install and ownership flip atomically per server, so a
//      destination quorum can serve reads the moment this round completes.
//   3. MigCommit -> source group.  Flips the source servers' route marks
//      to "owned by dest as of epoch e"; parked requests drain as
//      WrongShardAck redirects and late clients learn the move lazily.
//
// Acks reuse ReadAck/WriteAck — the fence rides the existing ABD quorum
// machinery (AbdClient grows kFreeze/kCommit op kinds), so exactly three
// new message types hit the wire (WireType 20..22).
//
// Safety is epoch monotonicity (servers and ShardMap copies apply only
// strictly-newer marks; the engine is the single epoch allocator) plus
// the per-key tag order (the installed value's tag dominates every write
// completed at the source before the freeze).
#pragma once

#include <cstdint>
#include <optional>

#include "storage/abd_messages.h"

namespace wrs {

/// <M_FRZ, opId, seq, g, key, epoch, dest> — freeze `key` at its source
/// group `g` behind map epoch `epoch`; acked by ReadAck (the final read).
/// `dest` travels for observability (logs, tests) — safety never reads it.
class MigFreeze : public MessageBase<MigFreeze> {
 public:
  MigFreeze(OpId op_id, RegisterKey key, std::uint64_t epoch, ShardId dest,
            std::uint32_t seq = 0, ShardId shard = 0)
      : op_id_(op_id),
        epoch_(epoch),
        seq_(seq),
        shard_(shard),
        dest_(dest),
        key_(std::move(key)) {}
  OpId op_id() const { return op_id_; }
  std::uint64_t epoch() const { return epoch_; }
  std::uint32_t seq() const { return seq_; }
  ShardId shard() const { return shard_; }
  ShardId dest() const { return dest_; }
  const RegisterKey& key() const { return key_; }
  std::string type_name() const override { return "M_FRZ"; }
  std::size_t wire_size() const override {
    return kHeaderBytes + 28 + key_.size();
  }

 private:
  OpId op_id_;
  std::uint64_t epoch_;
  std::uint32_t seq_;
  ShardId shard_;
  ShardId dest_;
  RegisterKey key_;
};

/// <M_CMT, opId, seq, g, key, owner, epoch, install?> — commit "key is
/// owned by `owner` as of `epoch`" at group `g`; acked by WriteAck. The
/// destination-group round carries the frozen replica in `install` (the
/// write-with-tag); the source-group round carries none.
class MigCommit : public MessageBase<MigCommit> {
 public:
  MigCommit(OpId op_id, RegisterKey key, ShardId owner, std::uint64_t epoch,
            std::optional<TaggedValue> install = std::nullopt,
            std::uint32_t seq = 0, ShardId shard = 0)
      : op_id_(op_id),
        epoch_(epoch),
        seq_(seq),
        shard_(shard),
        owner_(owner),
        key_(std::move(key)),
        install_(std::move(install)) {}
  OpId op_id() const { return op_id_; }
  std::uint64_t epoch() const { return epoch_; }
  std::uint32_t seq() const { return seq_; }
  ShardId shard() const { return shard_; }
  ShardId owner() const { return owner_; }
  const RegisterKey& key() const { return key_; }
  const std::optional<TaggedValue>& install() const { return install_; }
  std::string type_name() const override { return "M_CMT"; }
  std::size_t wire_size() const override {
    std::size_t sz = kHeaderBytes + 29 + key_.size();
    if (install_) sz += 12 + install_->value.size();
    return sz;
  }

 private:
  OpId op_id_;
  std::uint64_t epoch_;
  std::uint32_t seq_;
  ShardId shard_;
  ShardId owner_;
  RegisterKey key_;
  std::optional<TaggedValue> install_;
};

/// <W_S, opId, seq, key, owner, epoch> — server -> client redirect: the
/// addressed group no longer owns `key`; it moved to `owner` as of map
/// epoch `epoch`. The router merges the override into its ShardMap copy
/// (newest epoch wins) and reissues the operation at the current owner.
class WrongShardAck : public MessageBase<WrongShardAck> {
 public:
  WrongShardAck(OpId op_id, RegisterKey key, ShardId owner,
                std::uint64_t epoch, std::uint32_t seq = 0)
      : op_id_(op_id), epoch_(epoch), seq_(seq), owner_(owner),
        key_(std::move(key)) {}
  OpId op_id() const { return op_id_; }
  std::uint64_t epoch() const { return epoch_; }
  std::uint32_t seq() const { return seq_; }
  ShardId owner() const { return owner_; }
  const RegisterKey& key() const { return key_; }
  std::string type_name() const override { return "W_S"; }
  std::size_t wire_size() const override {
    return kHeaderBytes + 24 + key_.size();
  }

 private:
  OpId op_id_;
  std::uint64_t epoch_;
  std::uint32_t seq_;
  ShardId owner_;
  RegisterKey key_;
};

}  // namespace wrs
