// Wire messages of the cross-shard atomic snapshot (ShardRouter::snapshot).
//
// A snapshot returns a consistent cut across keys that may live on
// different replica groups. The client drives it in two regimes:
//
//   Fast path — double collect. One SnapReq per involved shard asks a
//   quorum for the (tag, value) of every requested key in a single
//   round (the multi-key analogue of the one-round read fast path); the
//   client keeps the per-key max tag plus a unanimity bit. Two
//   consecutive collects observing the SAME tag for every key form a
//   consistent cut (any interfering write would have bumped a tag —
//   the ABD tag plays the modification-counter role of the classic
//   double-collect snapshot). Keys whose max tag was NOT unanimous in
//   the confirming collect get a phase-2-style write-back (an ordinary
//   WriteReq with the same tag) before the cut is returned, so no
//   uncommitted tag can leak into the cut.
//
//   Fallback — fenced snapshot (the scan-embedded-in-update adaptation).
//   After a bounded number of failed collect rounds under write
//   pressure, the client sends SnapFreeze to each involved shard: every
//   server parks client requests (and migration freezes) for the named
//   keys behind a per-key snap fence and answers with its replicas.
//   The client computes the per-key max over a quorum of freeze acks,
//   then SnapRelease installs those (tag, value)s tag-monotonically,
//   lifts the fences, and drains the parked requests — the scanner
//   embeds its scan result into its own releasing update, so the
//   snapshot completes in two rounds per shard regardless of writer
//   contention. The cut linearizes after the last freeze quorum and
//   before the first release: a write completing before that point was
//   applied at a quorum-intersection server and is seen by the freeze
//   read; a write parked at an intersection server completes only after
//   the release and linearizes after the cut.
//
//   Fences are leases: each server auto-releases a snap fence after a
//   TTL so a crashed snapshot client cannot park a key forever. The
//   release ack's `held` bit reports whether the fence was still up; a
//   client seeing held=false discards the round and retries.
//
// All four types are MsgPool-allocated (make_msg) and arena-encoded
// like every other protocol message — the snapshot path adds zero
// steady-state allocations per message.
#pragma once

#include <cstdint>
#include <vector>

#include "storage/abd_messages.h"

namespace wrs {

/// Client-unique snapshot instance id: (client pid << 32) | counter.
using SnapId = std::uint64_t;

/// One key's slice of a SnapAck: its replica plus the server-side state
/// the client needs to route around (migration fences and moved keys).
/// SnapRelease reuses the struct for its installs (flag/owner/epoch are
/// ignored there).
struct SnapEntry {
  enum Flag : std::uint8_t {
    kOk = 0,      ///< served from a live replica
    kFrozen = 1,  ///< parked behind a migration or foreign snap fence
    kMoved = 2,   ///< this group no longer owns the key (see owner/epoch)
  };
  RegisterKey key;
  TaggedValue reg;
  std::uint8_t flag = kOk;
  ShardId owner = 0;        ///< valid when flag == kMoved
  std::uint64_t epoch = 0;  ///< valid when flag == kMoved

  std::size_t wire_bytes() const {
    return 4 + key.size() + 12 + reg.value.size() + 1 + 4 + 8;
  }
};

/// <SNAP, opId, seq, g, keys> — one collect round: read the current
/// (tag, value) of every listed key at group `g` in a single round trip.
class SnapReq : public MessageBase<SnapReq> {
 public:
  SnapReq(OpId op_id, std::vector<RegisterKey> keys, std::uint32_t seq = 0,
          ShardId shard = 0)
      : op_id_(op_id), seq_(seq), shard_(shard), keys_(std::move(keys)) {}
  OpId op_id() const { return op_id_; }
  std::uint32_t seq() const { return seq_; }
  ShardId shard() const { return shard_; }
  const std::vector<RegisterKey>& keys() const { return keys_; }
  std::string type_name() const override { return "SNAP"; }
  std::size_t wire_size() const override {
    std::size_t k = 0;
    for (const auto& key : keys_) k += key.size() + 4;
    return kHeaderBytes + 16 + k;
  }

 private:
  OpId op_id_;
  std::uint32_t seq_;
  ShardId shard_;
  std::vector<RegisterKey> keys_;
};

/// <SNAP_A, opId, seq, entries, held, C> — reply to SnapReq, SnapFreeze
/// AND SnapRelease. Collect/freeze acks carry one entry per requested
/// key; release acks carry none and report fence liveness in `held`.
class SnapAck : public MessageBase<SnapAck> {
 public:
  SnapAck(OpId op_id, std::vector<SnapEntry> entries, ChangeSetPtr changes,
          std::uint32_t seq = 0, bool held = true)
      : op_id_(op_id),
        seq_(seq),
        held_(held),
        entries_(std::move(entries)),
        changes_(std::move(changes)) {}
  OpId op_id() const { return op_id_; }
  std::uint32_t seq() const { return seq_; }
  bool held() const { return held_; }
  const std::vector<SnapEntry>& entries() const { return entries_; }
  const ChangeSetPtr& changes() const { return changes_; }
  std::string type_name() const override { return "SNAP_A"; }
  std::size_t wire_size() const override {
    std::size_t e = 0;
    for (const auto& entry : entries_) e += entry.wire_bytes();
    return kHeaderBytes + 13 + 4 + e + changes_wire_size(changes_);
  }

 private:
  OpId op_id_;
  std::uint32_t seq_;
  bool held_;
  std::vector<SnapEntry> entries_;
  ChangeSetPtr changes_;
};

/// <SNAP_FRZ, opId, seq, g, snapId, keys> — fallback round 1: fence the
/// listed keys at group `g` under `snap_id` (client requests and
/// migration freezes park behind the fence) and reply with the replicas;
/// acked by SnapAck. Idempotent per (snap_id, key) — retransmits refresh
/// the fence TTL instead of double-fencing.
class SnapFreeze : public MessageBase<SnapFreeze> {
 public:
  SnapFreeze(OpId op_id, SnapId snap_id, std::vector<RegisterKey> keys,
             std::uint32_t seq = 0, ShardId shard = 0)
      : op_id_(op_id),
        snap_id_(snap_id),
        seq_(seq),
        shard_(shard),
        keys_(std::move(keys)) {}
  OpId op_id() const { return op_id_; }
  SnapId snap_id() const { return snap_id_; }
  std::uint32_t seq() const { return seq_; }
  ShardId shard() const { return shard_; }
  const std::vector<RegisterKey>& keys() const { return keys_; }
  std::string type_name() const override { return "SNAP_FRZ"; }
  std::size_t wire_size() const override {
    std::size_t k = 0;
    for (const auto& key : keys_) k += key.size() + 4;
    return kHeaderBytes + 24 + k;
  }

 private:
  OpId op_id_;
  SnapId snap_id_;
  std::uint32_t seq_;
  ShardId shard_;
  std::vector<RegisterKey> keys_;
};

/// <SNAP_REL, opId, seq, g, snapId, installs> — fallback round 2: one
/// entry per fenced key. Entries flagged kOk adopt their (tag, value)
/// tag-monotonically; entries with any other flag only lift the fence
/// (the abort path sends all keys lift-only). Either way the fence is
/// removed and parked requests drain. Acked by SnapAck whose `held` bit
/// is true iff every named fence was still up under this snap_id (a
/// TTL-expired fence makes the client discard the round).
class SnapRelease : public MessageBase<SnapRelease> {
 public:
  SnapRelease(OpId op_id, SnapId snap_id, std::vector<SnapEntry> installs,
              std::uint32_t seq = 0, ShardId shard = 0)
      : op_id_(op_id),
        snap_id_(snap_id),
        seq_(seq),
        shard_(shard),
        installs_(std::move(installs)) {}
  OpId op_id() const { return op_id_; }
  SnapId snap_id() const { return snap_id_; }
  std::uint32_t seq() const { return seq_; }
  ShardId shard() const { return shard_; }
  const std::vector<SnapEntry>& installs() const { return installs_; }
  std::string type_name() const override { return "SNAP_REL"; }
  std::size_t wire_size() const override {
    std::size_t e = 0;
    for (const auto& entry : installs_) e += entry.wire_bytes();
    return kHeaderBytes + 24 + 4 + e;
  }

 private:
  OpId op_id_;
  SnapId snap_id_;
  std::uint32_t seq_;
  ShardId shard_;
  std::vector<SnapEntry> installs_;
};

}  // namespace wrs
