// A full dynamic-weighted storage server: the composition described in
// Section VII.
//
//   DynamicStorageNode = ReassignNode (Algorithms 3+4)
//                      + AbdServer    (Algorithm 6)
//                      + a private AbdClient used for the register
//                        refresh that Algorithm 4 line 9 performs before
//                        a weight gain is applied.
//
// All three share this Process's mailbox; on_message dispatches to each
// component in turn. ABD replies from this node's AbdServer piggyback the
// ReassignNode's current change set (cached per version so snapshots are
// O(1) between reassignments).
#pragma once

#include <memory>

#include "core/reassign_node.h"
#include "shard/shard_router.h"
#include "storage/abd_client.h"
#include "storage/abd_server.h"

namespace wrs {

class DynamicStorageNode : public Process {
 public:
  DynamicStorageNode(Env& env, ProcessId self, const SystemConfig& config);

  ReassignNode& reassign() { return reassign_; }
  AbdServer& server() { return server_; }

  /// The node's own client endpoint (a server may also read/write the
  /// register, e.g. for the refresh; applications normally use external
  /// StorageClient processes instead).
  AbdClient& client() { return refresh_client_; }

  void on_message(ProcessId from, const Message& msg) override;

  /// Component-style dispatch (for composition, e.g. AdaptiveNode);
  /// true iff the message belonged to one of this node's components.
  bool handle(ProcessId from, const Message& msg);

  ProcessId id() const { return self_; }

 private:
  ChangeSetPtr changes_snapshot();
  void drain_pending_refreshes();
  void refresh_keys(std::vector<RegisterKey> keys,
                    std::function<void()> done);

  Env& env_;
  ProcessId self_;
  ReassignNode reassign_;
  AbdClient refresh_client_;
  AbdServer server_;
  std::vector<std::function<void()>> pending_refreshes_;

  std::uint64_t snapshot_version_ = 0;   // bumped on every change-set growth
  std::uint64_t cached_version_ = ~0ull;
  ChangeSetPtr cached_snapshot_;
};

/// A standalone storage client process (reader or writer, member of Pi).
/// Runs over a ShardRouter: a one-shard map IS the paper's client; a
/// sharded map routes every operation by key.
class StorageClient : public Process {
 public:
  StorageClient(Env& env, ProcessId self, const SystemConfig& config,
                AbdClient::Mode mode)
      : StorageClient(env, self, ShardMap::single(config), mode) {}

  StorageClient(Env& env, ProcessId self, ShardMap map, AbdClient::Mode mode)
      : self_(self), router_(env, self, std::move(map), mode) {}

  /// The raw single-group client (throws on sharded deployments).
  AbdClient& abd() { return router_.only_client(); }
  ShardRouter& router() { return router_; }
  ProcessId id() const { return self_; }

  void on_message(ProcessId from, const Message& msg) override {
    router_.handle(from, msg);
  }

 private:
  ProcessId self_;
  ShardRouter router_;
};

}  // namespace wrs
