// Server side of the (dynamic-weighted) ABD register — Algorithm 6.
//
// Differences from classical ABD:
//  * every reply carries the server's current set of changes (supplied
//    by a provider callback wired to the co-located ReassignNode; null
//    in static deployments);
//  * registers are NAMED: the paper's single register is key "". The
//    multi-register ("key-value") mode is an extension of the paper —
//    see DynamicStorageNode for the gain-refresh implications.
//
// Sharding: the server belongs to one replica group and DROPS requests
// whose shard id differs from its own (misrouted traffic — counted, so
// routing bugs surface in tests instead of silently inflating quorums).
//
// Batched envelopes: a BatchRequest is unpacked and every frame applied
// through the ordinary request logic; the acks travel back as one
// BatchReply. Each APPLIED frame costs a full service_time of modeled
// serial work (misrouted frames are free, like misrouted singles), so
// batching amortizes MESSAGES, never the M/D/1 CPU.
//
// Service-time model (off by default): set_service_time(t) makes the
// server behave like a node whose storage engine needs `t` of serial
// per-request work (disk/SSD access, CPU-bound state machine, ...).
// Requests are queued through a busy-until watermark — exactly an
// M/D/1-style serial queue — so a server's capacity is 1/t requests per
// second on BOTH runtimes. This is what gives a shard a finite, honest
// capacity in scale-out benchmarks: the quorum protocol above it is
// measured against a modeled per-node bottleneck instead of whatever
// the host machine's core count happens to be.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>

#include "runtime/env.h"
#include "storage/abd_messages.h"

namespace wrs {

class AbdServer {
 public:
  /// `changes_provider` returns the server's current change set snapshot
  /// for piggybacking, or null in static deployments.
  using ChangesProvider = std::function<ChangeSetPtr()>;

  AbdServer(Env& env, ProcessId self, ChangesProvider changes_provider,
            ShardId shard = 0)
      : env_(env),
        self_(self),
        shard_(shard),
        changes_provider_(std::move(changes_provider)) {}

  /// Routes R / W / KEYS messages and batched envelopes; true iff
  /// consumed. Replies echo the request's (op_id, seq) so the client can
  /// route and de-stale them. Requests addressed to another shard are
  /// consumed but never answered.
  ///
  /// A BatchRequest is unpacked frame by frame through the same
  /// per-request logic, its acks collected into ONE BatchReply, and the
  /// envelope charged one `service_time` of serial work per APPLIED
  /// frame (misrouted frames are dropped without an ack and — like
  /// misrouted single requests — cost nothing): batching cuts messages,
  /// never modeled CPU.
  bool handle(ProcessId from, const Message& msg) {
    if (const auto* b = msg_cast<BatchRequest>(msg)) {
      if (misrouted(b->shard())) return true;
      ++batches_served_;
      std::vector<MsgPtr> acks;
      acks.reserve(b->frames().size());
      for (const MsgPtr& frame : b->frames()) {
        if (MsgPtr ack = apply(*frame)) acks.push_back(std::move(ack));
      }
      if (!acks.empty()) {
        TimeNs cost =
            service_time_ * static_cast<TimeNs>(acks.size());
        reply(from, std::make_shared<BatchReply>(std::move(acks)), cost);
      }
      return true;
    }
    if (!msg_cast<ReadReq>(msg) && !msg_cast<WriteReq>(msg) &&
        !msg_cast<KeysReq>(msg)) {
      return false;
    }
    if (MsgPtr ack = apply(msg)) reply(from, std::move(ack), service_time_);
    return true;
  }

  /// Register contents for `key` (initial <<0,⊥>,⊥> when never written).
  const TaggedValue& reg(const RegisterKey& key = "") const {
    static const TaggedValue kEmpty{};
    auto it = regs_.find(key);
    return it == regs_.end() ? kEmpty : it->second;
  }
  void set_reg(TaggedValue reg, const RegisterKey& key = "") {
    regs_[key] = std::move(reg);
  }
  std::size_t register_count() const { return regs_.size(); }

  ShardId shard() const { return shard_; }
  /// Requests dropped because they carried another group's shard id —
  /// whole misrouted envelopes count once, like any other request.
  std::uint64_t misrouted_count() const { return misrouted_; }
  /// Batched envelopes unpacked (observability for batching tests).
  std::uint64_t batches_served() const { return batches_served_; }

  /// Serial per-request service time (0 = reply inline, the default —
  /// byte- and event-identical to the pre-model server).
  void set_service_time(TimeNs t) { service_time_ = t; }
  TimeNs service_time() const { return service_time_; }

 private:
  ChangeSetPtr snapshot() const {
    return changes_provider_ ? changes_provider_() : nullptr;
  }

  bool misrouted(ShardId requested) {
    if (requested == shard_) return false;
    ++misrouted_;
    return true;
  }

  /// Applies one ABD request against the register state and returns its
  /// ack — or null when `msg` is no ABD request, or is addressed to
  /// another shard (counted; defense in depth for frames of a batched
  /// envelope whose own shard id somehow disagrees with the envelope's).
  MsgPtr apply(const Message& msg) {
    if (const auto* r = msg_cast<ReadReq>(msg)) {
      if (misrouted(r->shard())) return nullptr;
      return std::make_shared<ReadAck>(r->op_id(), reg(r->key()), snapshot(),
                                       r->seq());
    }
    if (const auto* w = msg_cast<WriteReq>(msg)) {
      if (misrouted(w->shard())) return nullptr;
      TaggedValue& slot = regs_[w->key()];
      if (slot.tag < w->reg().tag) slot = w->reg();
      return std::make_shared<WriteAck>(w->op_id(), snapshot(), w->seq());
    }
    if (const auto* k = msg_cast<KeysReq>(msg)) {
      if (misrouted(k->shard())) return nullptr;
      std::vector<RegisterKey> keys;
      keys.reserve(regs_.size());
      for (const auto& [key, _] : regs_) keys.push_back(key);
      return std::make_shared<KeysAck>(k->op_id(), std::move(keys), snapshot(),
                                       k->seq());
    }
    return nullptr;
  }

  /// Replies inline, or through the serial service queue: each request
  /// occupies the server for `cost` (one service_time_ per applied frame
  /// — a batched envelope costs as much modeled CPU as its frames would
  /// have individually), requests arriving while busy wait their turn
  /// (handlers are serialized per process, so the watermark needs no
  /// lock).
  void reply(ProcessId to, MsgPtr ack, TimeNs cost) {
    if (cost <= 0) {
      env_.send(self_, to, std::move(ack));
      return;
    }
    TimeNs free_at = std::max(env_.now(), busy_until_) + cost;
    busy_until_ = free_at;
    env_.schedule(self_, free_at - env_.now(),
                  [this, to, ack = std::move(ack)]() mutable {
                    env_.send(self_, to, std::move(ack));
                  });
  }

  Env& env_;
  ProcessId self_;
  ShardId shard_;
  ChangesProvider changes_provider_;
  std::map<RegisterKey, TaggedValue> regs_;
  std::uint64_t misrouted_ = 0;
  std::uint64_t batches_served_ = 0;
  TimeNs service_time_ = 0;
  TimeNs busy_until_ = 0;
};

}  // namespace wrs
