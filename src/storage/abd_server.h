// Server side of the (dynamic-weighted) ABD register — Algorithm 6.
//
// Differences from classical ABD:
//  * every reply carries the server's current set of changes (supplied
//    by a provider callback wired to the co-located ReassignNode; null
//    in static deployments);
//  * registers are NAMED: the paper's single register is key "". The
//    multi-register ("key-value") mode is an extension of the paper —
//    see DynamicStorageNode for the gain-refresh implications.
//
// Sharding: the server belongs to one replica group and DROPS requests
// whose shard id differs from its own (misrouted traffic — counted, so
// routing bugs surface in tests instead of silently inflating quorums).
//
// Batched envelopes: a BatchRequest is unpacked and every frame applied
// through the ordinary request logic; the acks travel back as one
// BatchReply. Each APPLIED frame costs a full service_time of modeled
// serial work (misrouted frames are free, like misrouted singles), so
// batching amortizes MESSAGES, never the M/D/1 CPU.
//
// Service-time model (off by default): set_service_time(t) makes the
// server behave like a node whose storage engine needs `t` of serial
// per-request work (disk/SSD access, CPU-bound state machine, ...).
// Requests are queued through a busy-until watermark — exactly an
// M/D/1-style serial queue — so a server's capacity is 1/t requests per
// second on BOTH runtimes. This is what gives a shard a finite, honest
// capacity in scale-out benchmarks: the quorum protocol above it is
// measured against a modeled per-node bottleneck instead of whatever
// the host machine's core count happens to be.
// Elastic resharding (PR 7): the server keeps a per-key ROUTE MARK
// — (map epoch, owner shard, frozen?) — driven by the MigrationEngine's
// MigFreeze/MigCommit rounds. A frozen key parks incoming client
// requests (bounded queue) instead of serving them, so the engine's
// final read is definitive; a key whose mark names another owner is
// answered with a WrongShardAck redirect carrying the owner and epoch.
// Marks apply with "newest epoch wins", mirroring ShardMap overrides.
//
// Atomic snapshots (PR 10): SnapReq answers a whole key list in one
// round (the collect of the double-collect snapshot). The fenced
// fallback adds per-key SNAP FENCES, separate from migration route
// marks: SnapFreeze parks client requests AND MigFreeze rounds for the
// named keys behind the snapshot's id, SnapRelease installs the adopted
// replicas tag-monotonically and drains the parked queue. Fences are
// leases — a TTL timer auto-releases them so a dead snapshot client
// cannot park a key forever; the release ack's `held` bit tells the
// client when its fence expired underneath it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "runtime/env.h"
#include "runtime/msg_pool.h"
#include "storage/abd_messages.h"
#include "storage/migration_messages.h"
#include "storage/snapshot_messages.h"

namespace wrs {

class AbdServer {
 public:
  /// `changes_provider` returns the server's current change set snapshot
  /// for piggybacking, or null in static deployments.
  using ChangesProvider = std::function<ChangeSetPtr()>;

  AbdServer(Env& env, ProcessId self, ChangesProvider changes_provider,
            ShardId shard = 0)
      : env_(env),
        self_(self),
        shard_(shard),
        changes_provider_(std::move(changes_provider)) {}

  /// Routes R / W / KEYS messages and batched envelopes; true iff
  /// consumed. Replies echo the request's (op_id, seq) so the client can
  /// route and de-stale them. Requests addressed to another shard are
  /// consumed but never answered.
  ///
  /// A BatchRequest is unpacked frame by frame through the same
  /// per-request logic, its acks collected into ONE BatchReply, and the
  /// envelope charged one `service_time` of serial work per APPLIED
  /// frame (misrouted frames are dropped without an ack and — like
  /// misrouted single requests — cost nothing): batching cuts messages,
  /// never modeled CPU.
  bool handle(ProcessId from, const Message& msg) {
    if (const auto* b = msg_cast<BatchRequest>(msg)) {
      if (misrouted(b->shard())) return true;
      ++batches_served_;
      std::vector<MsgPtr> acks;
      acks.reserve(b->frames().size());
      for (const MsgPtr& frame : b->frames()) {
        MsgPtr ack = apply(from, *frame);
        if (!ack) continue;
        if (msg_cast<WrongShardAck>(*ack)) {
          // Redirects travel as singles: the router intercepts them at
          // the top level (a nested redirect would reach the inner
          // client's demux, which cannot eject across shards).
          reply(from, std::move(ack), service_time_);
          continue;
        }
        acks.push_back(std::move(ack));
      }
      if (!acks.empty()) {
        TimeNs cost =
            service_time_ * static_cast<TimeNs>(acks.size());
        reply(from, make_msg<BatchReply>(std::move(acks)), cost);
      }
      return true;
    }
    if (const auto* f = msg_cast<MigFreeze>(msg)) {
      if (misrouted(f->shard())) return true;
      handle_freeze(from, *f);
      return true;
    }
    if (const auto* c = msg_cast<MigCommit>(msg)) {
      if (misrouted(c->shard())) return true;
      handle_commit(from, *c);
      return true;
    }
    if (const auto* s = msg_cast<SnapReq>(msg)) {
      if (misrouted(s->shard())) return true;
      handle_snap_collect(from, *s);
      return true;
    }
    if (const auto* s = msg_cast<SnapFreeze>(msg)) {
      if (misrouted(s->shard())) return true;
      handle_snap_freeze(from, *s);
      return true;
    }
    if (const auto* s = msg_cast<SnapRelease>(msg)) {
      if (misrouted(s->shard())) return true;
      handle_snap_release(from, *s);
      return true;
    }
    if (!msg_cast<ReadReq>(msg) && !msg_cast<WriteReq>(msg) &&
        !msg_cast<KeysReq>(msg)) {
      return false;
    }
    if (MsgPtr ack = apply(from, msg)) {
      reply(from, std::move(ack), service_time_);
    }
    return true;
  }

  /// Register contents for `key` (initial <<0,⊥>,⊥> when never written).
  const TaggedValue& reg(const RegisterKey& key = "") const {
    static const TaggedValue kEmpty{};
    auto it = regs_.find(key);
    return it == regs_.end() ? kEmpty : it->second;
  }
  void set_reg(TaggedValue reg, const RegisterKey& key = "") {
    regs_[key] = std::move(reg);
  }
  std::size_t register_count() const { return regs_.size(); }

  ShardId shard() const { return shard_; }
  /// Requests dropped because they carried another group's shard id —
  /// whole misrouted envelopes count once, like any other request.
  std::uint64_t misrouted_count() const { return misrouted_; }
  /// Batched envelopes unpacked (observability for batching tests).
  std::uint64_t batches_served() const { return batches_served_; }

  /// Serial per-request service time (0 = reply inline, the default —
  /// byte- and event-identical to the pre-model server).
  void set_service_time(TimeNs t) { service_time_ = t; }
  TimeNs service_time() const { return service_time_; }

  // --- elastic resharding -------------------------------------------------

  /// The migration state of one key as this server knows it.
  struct RouteMark {
    std::uint64_t epoch = 0;  ///< newest map epoch seen for the key
    ShardId owner = 0;        ///< the key's owner shard as of `epoch`
    bool frozen = false;      ///< fence up: park client requests
    bool committed = false;   ///< latest event was a commit (not a freeze)
  };

  /// This server's route mark for `key`, if any migration ever touched it
  /// (test observability; call only when the deployment is quiescent).
  std::optional<RouteMark> route_mark(const RegisterKey& key) const {
    auto it = route_marks_.find(key);
    if (it == route_marks_.end()) return std::nullopt;
    return it->second;
  }

  /// Client requests parked behind a freeze fence (cumulative).
  std::uint64_t frozen_parked() const { return frozen_parked_; }
  /// Parked requests dropped because a key's park queue overflowed —
  /// client retries cover these.
  std::uint64_t parked_dropped() const { return parked_dropped_; }
  /// WrongShardAck redirects sent for moved keys.
  std::uint64_t redirects_sent() const { return redirects_sent_; }
  /// MigCommit rounds applied (either side of a handoff).
  std::uint64_t migration_commits() const { return migration_commits_; }

  // --- atomic snapshots ----------------------------------------------------

  /// Snap fences currently up (test observability; call only from this
  /// server's execution context or when the deployment is quiescent).
  std::size_t snap_fences_up() const { return snap_fences_.size(); }
  /// Snap fences installed by SnapFreeze rounds (cumulative).
  std::uint64_t snap_fences_installed() const { return snap_fences_installed_; }
  /// Snap fences auto-released by the TTL lease instead of a SnapRelease.
  std::uint64_t snap_fences_expired() const { return snap_fences_expired_; }
  /// SnapReq collect rounds served.
  std::uint64_t snap_collects_served() const { return snap_collects_served_; }

  /// Lease on a snap fence: a SnapRelease normally lifts it, the TTL
  /// covers a crashed snapshot client. Default spans hundreds of quorum
  /// round trips — long enough that a live client never loses its fence
  /// mid-snapshot, short enough that chaos episodes drain.
  void set_snap_fence_ttl(TimeNs ttl) { snap_fence_ttl_ = ttl; }

  /// Served read/write requests per key since the last drain, and clears
  /// the window. Thread-safe (the Rebalancer reads it from another
  /// execution context on the thread runtime).
  std::map<RegisterKey, std::uint64_t> drain_key_hits() {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return std::exchange(key_hits_, {});
  }

  /// Cumulative served read/write requests (never cleared); thread-safe.
  std::uint64_t hits_total() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return hits_total_;
  }

 private:
  ChangeSetPtr snapshot() const {
    return changes_provider_ ? changes_provider_() : nullptr;
  }

  bool misrouted(ShardId requested) {
    if (requested == shard_) return false;
    ++misrouted_;
    return true;
  }

  /// Applies one ABD request against the register state and returns its
  /// ack — or null when `msg` is no ABD request, is addressed to another
  /// shard (counted; defense in depth for frames of a batched envelope
  /// whose own shard id somehow disagrees with the envelope's), or was
  /// parked behind a freeze fence (answered later, when the fence lifts).
  MsgPtr apply(ProcessId from, const Message& msg) {
    if (const auto* r = msg_cast<ReadReq>(msg)) {
      if (misrouted(r->shard())) return nullptr;
      if (MsgPtr verdict = route_check(from, r->key(), r->op_id(), r->seq(),
                                       make_msg<ReadReq>(*r))) {
        return verdict == kParkedSentinel() ? nullptr : verdict;
      }
      note_hit(r->key());
      return make_msg<ReadAck>(r->op_id(), reg(r->key()), snapshot(),
                                       r->seq());
    }
    if (const auto* w = msg_cast<WriteReq>(msg)) {
      if (misrouted(w->shard())) return nullptr;
      if (MsgPtr verdict = route_check(from, w->key(), w->op_id(), w->seq(),
                                       make_msg<WriteReq>(*w))) {
        return verdict == kParkedSentinel() ? nullptr : verdict;
      }
      note_hit(w->key());
      TaggedValue& slot = regs_[w->key()];
      if (slot.tag < w->reg().tag) slot = w->reg();
      return make_msg<WriteAck>(w->op_id(), snapshot(), w->seq());
    }
    if (const auto* k = msg_cast<KeysReq>(msg)) {
      if (misrouted(k->shard())) return nullptr;
      std::vector<RegisterKey> keys;
      keys.reserve(regs_.size());
      for (const auto& [key, _] : regs_) {
        // A replica left behind by an outbound migration is a ghost: the
        // key's owner lists it, this group must not (no double-listing
        // across the map-epoch commit).
        auto it = route_marks_.find(key);
        if (it != route_marks_.end() && it->second.owner != shard_) continue;
        keys.push_back(key);
      }
      return make_msg<KeysAck>(k->op_id(), std::move(keys), snapshot(),
                                       k->seq());
    }
    return nullptr;
  }

  /// Shared read/write admission against the key's route mark and snap
  /// fence: null means "serve it", the park sentinel means "parked,
  /// answer later", anything else is the WrongShardAck to send instead.
  /// The snap-fence check precedes the moved check so that requests a
  /// concurrent migration drains early re-park until the snapshot's
  /// release — the cut must not observe writes completing mid-fence.
  MsgPtr route_check(ProcessId from, const RegisterKey& key, OpId op_id,
                     std::uint32_t seq, MsgPtr req) {
    auto it = route_marks_.find(key);
    if (it != route_marks_.end() && it->second.frozen) {
      park(from, key, std::move(req));
      return kParkedSentinel();
    }
    if (snap_fences_.count(key)) {
      park(from, key, std::move(req));
      return kParkedSentinel();
    }
    if (it != route_marks_.end() && it->second.owner != shard_) {
      ++redirects_sent_;
      return make_msg<WrongShardAck>(op_id, key, it->second.owner,
                                             it->second.epoch, seq);
    }
    return nullptr;
  }

  /// Parks one request behind a (migration or snap) fence, bounded per
  /// key — overflow is shed to client retries.
  void park(ProcessId from, const RegisterKey& key, MsgPtr req) {
    auto& queue = parked_[key];
    if (queue.size() >= kMaxParkedPerKey) {
      ++parked_dropped_;  // client retry covers it
    } else {
      queue.push_back(Parked{from, std::move(req)});
      ++frozen_parked_;
    }
  }

  /// Distinguishes "parked" from "serve" in route_check's return channel.
  static const MsgPtr& kParkedSentinel() {
    static const MsgPtr sentinel =
        make_msg<WrongShardAck>(0, "", 0, 0);
    return sentinel;
  }

  /// MigFreeze: fence the key and answer with the replica — the final
  /// ABD read of the handoff. Stale fences (older than the newest mark,
  /// or a duplicate of an epoch already committed) are dropped so a
  /// delayed/duplicated freeze can never re-fence a finished migration.
  void handle_freeze(ProcessId from, const MigFreeze& f) {
    // A snap fence parks the migration fence itself: the snapshot's
    // freeze quorum intersects the migration's, so either the snapshot
    // aborts on a frozen flag or the migration waits for the release —
    // never a missed ownership move inside a cut.
    if (snap_fences_.count(f.key())) {
      park(from, f.key(), make_msg<MigFreeze>(f));
      return;
    }
    RouteMark& mark = route_marks_[f.key()];
    bool fresh = f.epoch() > mark.epoch;
    bool retry = f.epoch() == mark.epoch && !mark.committed;
    if (!fresh && !retry) return;
    mark.epoch = f.epoch();
    mark.owner = shard_;
    mark.frozen = true;
    mark.committed = false;
    reply(from,
          make_msg<ReadAck>(f.op_id(), reg(f.key()), snapshot(),
                                    f.seq()),
          service_time_);
  }

  /// MigCommit: adopt "key is owned by `owner` as of `epoch`", lift the
  /// fence, and drain parked requests through the ordinary apply path
  /// (they come out as redirects when ownership moved away). Applies for
  /// any epoch >= the newest mark (idempotent under engine retries);
  /// older commits are dropped without an ack.
  void handle_commit(ProcessId from, const MigCommit& c) {
    RouteMark& mark = route_marks_[c.key()];
    if (c.epoch() < mark.epoch) return;
    mark.epoch = c.epoch();
    mark.owner = c.owner();
    mark.frozen = false;
    mark.committed = true;
    ++migration_commits_;
    // The destination-side commit carries the frozen replica: install it
    // tag-monotonically in the same step that flips ownership, so a
    // destination quorum never serves the key without the migrated value.
    if (c.install()) {
      TaggedValue& slot = regs_[c.key()];
      if (slot.tag < c.install()->tag) slot = *c.install();
    }
    reply(from, make_msg<WriteAck>(c.op_id(), snapshot(), c.seq()),
          service_time_);
    drain_parked(c.key());
  }

  /// Replays the key's parked queue: MigFreeze rounds re-enter
  /// handle_freeze (they may re-park under a snap fence), client
  /// requests go through the ordinary apply path (re-parking or
  /// redirecting as the current marks dictate).
  void drain_parked(const RegisterKey& key) {
    auto parked = parked_.find(key);
    if (parked == parked_.end()) return;
    std::vector<Parked> queue = std::move(parked->second);
    parked_.erase(parked);
    for (Parked& p : queue) {
      if (const auto* f = msg_cast<MigFreeze>(*p.req)) {
        handle_freeze(p.from, *f);
        continue;
      }
      if (MsgPtr ack = apply(p.from, *p.req)) {
        reply(p.from, std::move(ack), service_time_);
      }
    }
  }

  // --- atomic snapshots ----------------------------------------------------

  /// One key's slice of a collect/freeze ack: the replica when the key
  /// is serveable, else the flag the client routes around. `requester`
  /// is the asking snapshot's id (its own fence does not block it); 0
  /// for collects, which any fence blocks.
  SnapEntry snap_entry_for(const RegisterKey& key, SnapId requester) {
    SnapEntry e;
    e.key = key;
    auto mark = route_marks_.find(key);
    if (mark != route_marks_.end()) {
      if (mark->second.frozen) {
        e.flag = SnapEntry::kFrozen;
        return e;
      }
      if (mark->second.owner != shard_) {
        e.flag = SnapEntry::kMoved;
        e.owner = mark->second.owner;
        e.epoch = mark->second.epoch;
        return e;
      }
    }
    auto fence = snap_fences_.find(key);
    if (fence != snap_fences_.end() && fence->second.snap_id != requester) {
      e.flag = SnapEntry::kFrozen;
      return e;
    }
    note_hit(key);
    e.reg = reg(key);
    return e;
  }

  /// SnapReq: the collect round — every requested key's replica (or its
  /// blocking flag) in one reply. Costs one service_time per key: a
  /// collect reads as many registers as the individual reads it
  /// replaces, so it amortizes messages, never modeled CPU.
  void handle_snap_collect(ProcessId from, const SnapReq& s) {
    ++snap_collects_served_;
    std::vector<SnapEntry> entries;
    entries.reserve(s.keys().size());
    for (const RegisterKey& key : s.keys()) {
      entries.push_back(snap_entry_for(key, /*requester=*/0));
    }
    TimeNs cost = service_time_ * static_cast<TimeNs>(s.keys().size());
    reply(from,
          make_msg<SnapAck>(s.op_id(), std::move(entries), snapshot(),
                            s.seq()),
          cost);
  }

  /// SnapFreeze: fence every serveable key under the snapshot's id and
  /// reply with the replicas (the freeze doubles as the fallback's
  /// read). Keys blocked by a migration fence, a foreign snapshot, or a
  /// moved mark are flagged instead of fenced — the client aborts and
  /// retries on any non-ok flag. Re-fencing under the same snap_id
  /// refreshes the TTL lease (idempotent under retransmits).
  void handle_snap_freeze(ProcessId from, const SnapFreeze& f) {
    std::vector<SnapEntry> entries;
    entries.reserve(f.keys().size());
    for (const RegisterKey& key : f.keys()) {
      SnapEntry e = snap_entry_for(key, f.snap_id());
      if (e.flag == SnapEntry::kOk) {
        SnapFence& fence = snap_fences_[key];
        if (fence.snap_id != f.snap_id()) ++snap_fences_installed_;
        fence.snap_id = f.snap_id();
        std::uint64_t gen = ++snap_fence_gen_;
        fence.gen = gen;
        env_.schedule(self_, snap_fence_ttl_, [this, key, gen] {
          auto it = snap_fences_.find(key);
          if (it == snap_fences_.end() || it->second.gen != gen) return;
          snap_fences_.erase(it);
          ++snap_fences_expired_;
          drain_parked(key);
        });
      }
      entries.push_back(std::move(e));
    }
    TimeNs cost = service_time_ * static_cast<TimeNs>(f.keys().size());
    reply(from,
          make_msg<SnapAck>(f.op_id(), std::move(entries), snapshot(),
                            f.seq()),
          cost);
  }

  /// SnapRelease: adopt kOk installs tag-monotonically (the scanner's
  /// scan-embedded-in-update — the cut's values land before any parked
  /// writer resumes), lift this snapshot's fences, and drain the parked
  /// queues. `held` reports whether every named fence was still up under
  /// the releasing snap_id; a TTL-expired fence turns it false and the
  /// client discards the round.
  void handle_snap_release(ProcessId from, const SnapRelease& rel) {
    bool held = true;
    for (const SnapEntry& e : rel.installs()) {
      auto it = snap_fences_.find(e.key);
      bool mine =
          it != snap_fences_.end() && it->second.snap_id == rel.snap_id();
      if (!mine) held = false;
      if (e.flag == SnapEntry::kOk) {
        TaggedValue& slot = regs_[e.key];
        if (slot.tag < e.reg.tag) slot = e.reg;
      }
      if (mine) {
        snap_fences_.erase(it);
        drain_parked(e.key);
      }
    }
    reply(from,
          make_msg<SnapAck>(rel.op_id(), std::vector<SnapEntry>{}, snapshot(),
                            rel.seq(), held),
          service_time_);
  }

  void note_hit(const RegisterKey& key) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++key_hits_[key];
    ++hits_total_;
  }

  /// Replies inline, or through the serial service queue: each request
  /// occupies the server for `cost` (one service_time_ per applied frame
  /// — a batched envelope costs as much modeled CPU as its frames would
  /// have individually), requests arriving while busy wait their turn
  /// (handlers are serialized per process, so the watermark needs no
  /// lock).
  void reply(ProcessId to, MsgPtr ack, TimeNs cost) {
    if (cost <= 0) {
      env_.send(self_, to, std::move(ack));
      return;
    }
    TimeNs free_at = std::max(env_.now(), busy_until_) + cost;
    busy_until_ = free_at;
    env_.schedule(self_, free_at - env_.now(),
                  [this, to, ack = std::move(ack)]() mutable {
                    env_.send(self_, to, std::move(ack));
                  });
  }

  /// One client request waiting behind a freeze fence.
  struct Parked {
    ProcessId from;
    MsgPtr req;
  };
  /// Per-key park queue bound: the fence window is a couple of quorum
  /// round trips, so anything past this is a pathological pile-up better
  /// shed to client retries than buffered.
  static constexpr std::size_t kMaxParkedPerKey = 512;

  Env& env_;
  ProcessId self_;
  ShardId shard_;
  ChangesProvider changes_provider_;
  std::map<RegisterKey, TaggedValue> regs_;
  /// Checked on EVERY read/write (route_check) but populated only by the
  /// rare migration verbs: flat and contiguous, so the common probe is a
  /// binary search over a handful of entries instead of a tree walk.
  FlatMap<RegisterKey, RouteMark> route_marks_;
  FlatMap<RegisterKey, std::vector<Parked>> parked_;
  /// One fence per snap-frozen key. `gen` invalidates stale TTL timers:
  /// every install/refresh bumps it, and an expiry callback fires only
  /// when its captured gen still matches.
  struct SnapFence {
    SnapId snap_id = 0;
    std::uint64_t gen = 0;
  };
  FlatMap<RegisterKey, SnapFence> snap_fences_;
  std::uint64_t snap_fence_gen_ = 0;
  TimeNs snap_fence_ttl_ = ms(1000);
  std::uint64_t snap_fences_installed_ = 0;
  std::uint64_t snap_fences_expired_ = 0;
  std::uint64_t snap_collects_served_ = 0;
  std::uint64_t misrouted_ = 0;
  std::uint64_t batches_served_ = 0;
  std::uint64_t frozen_parked_ = 0;
  std::uint64_t parked_dropped_ = 0;
  std::uint64_t redirects_sent_ = 0;
  std::uint64_t migration_commits_ = 0;
  TimeNs service_time_ = 0;
  TimeNs busy_until_ = 0;
  /// Guards the hit-count window: written on the serve path (server
  /// context), drained by the Rebalancer from the engine's context.
  mutable std::mutex stats_mu_;
  std::map<RegisterKey, std::uint64_t> key_hits_;
  std::uint64_t hits_total_ = 0;
};

}  // namespace wrs
