// Server side of the (dynamic-weighted) ABD register — Algorithm 6.
//
// Differences from classical ABD:
//  * every reply carries the server's current set of changes (supplied
//    by a provider callback wired to the co-located ReassignNode; null
//    in static deployments);
//  * registers are NAMED: the paper's single register is key "". The
//    multi-register ("key-value") mode is an extension of the paper —
//    see DynamicStorageNode for the gain-refresh implications.
#pragma once

#include <functional>
#include <map>

#include "runtime/env.h"
#include "storage/abd_messages.h"

namespace wrs {

class AbdServer {
 public:
  /// `changes_provider` returns the server's current change set snapshot
  /// for piggybacking, or null in static deployments.
  using ChangesProvider = std::function<ChangeSetPtr()>;

  AbdServer(Env& env, ProcessId self, ChangesProvider changes_provider)
      : env_(env),
        self_(self),
        changes_provider_(std::move(changes_provider)) {}

  /// Routes R / W / KEYS messages; true iff consumed. Replies echo the
  /// request's (op_id, seq) so the client can route and de-stale them.
  bool handle(ProcessId from, const Message& msg) {
    if (const auto* r = msg_cast<ReadReq>(msg)) {
      env_.send(self_, from,
                std::make_shared<ReadAck>(r->op_id(), reg(r->key()),
                                          snapshot(), r->seq()));
      return true;
    }
    if (const auto* w = msg_cast<WriteReq>(msg)) {
      TaggedValue& slot = regs_[w->key()];
      if (slot.tag < w->reg().tag) slot = w->reg();
      env_.send(self_, from,
                std::make_shared<WriteAck>(w->op_id(), snapshot(), w->seq()));
      return true;
    }
    if (const auto* k = msg_cast<KeysReq>(msg)) {
      std::vector<RegisterKey> keys;
      keys.reserve(regs_.size());
      for (const auto& [key, _] : regs_) keys.push_back(key);
      env_.send(self_, from,
                std::make_shared<KeysAck>(k->op_id(), std::move(keys),
                                          snapshot(), k->seq()));
      return true;
    }
    return false;
  }

  /// Register contents for `key` (initial <<0,⊥>,⊥> when never written).
  const TaggedValue& reg(const RegisterKey& key = "") const {
    static const TaggedValue kEmpty{};
    auto it = regs_.find(key);
    return it == regs_.end() ? kEmpty : it->second;
  }
  void set_reg(TaggedValue reg, const RegisterKey& key = "") {
    regs_[key] = std::move(reg);
  }
  std::size_t register_count() const { return regs_.size(); }

 private:
  ChangeSetPtr snapshot() const {
    return changes_provider_ ? changes_provider_() : nullptr;
  }

  Env& env_;
  ProcessId self_;
  ChangesProvider changes_provider_;
  std::map<RegisterKey, TaggedValue> regs_;
};

}  // namespace wrs
