// Wire messages of the (dynamic-weighted) ABD register protocol
// (Algorithms 5 and 6). The same messages serve the static baseline —
// then `changes` is null and no set is piggybacked.
//
// Operation multiplexing: every request carries the issuing client's
// OpId (identifies the storage operation; unique across every client in
// the process so co-located clients never confuse replies) plus a `seq`
// (the operation's phase-attempt counter, bumped on every phase start
// and change-set restart). Servers echo both verbatim; the client
// routes a reply to the operation by OpId and discards it as stale when
// the seq does not match the operation's current attempt.
#pragma once

#include <memory>
#include <vector>

#include "core/change_set.h"
#include "runtime/message.h"
#include "storage/tag.h"

namespace wrs {

/// Shared immutable change-set payload. Replies from servers carry the
/// server's current set; null in static deployments.
using ChangeSetPtr = std::shared_ptr<const ChangeSet>;

inline std::size_t changes_wire_size(const ChangeSetPtr& c) {
  return c ? c->wire_size() : 0;
}

/// Identifies one client storage operation across all its phases and
/// restarts. Process-wide unique (see AbdClient::fresh_op_id).
using OpId = std::uint64_t;

/// Sharded deployments run several replica groups in one runtime, so
/// every REQUEST carries the shard id of the group the client addressed;
/// servers drop requests whose shard does not match their own group
/// (defense in depth against routing bugs — scoped broadcasts should
/// never produce them). Unsharded deployments are shard 0 throughout.
/// Replies are point-to-point and matched by OpId, so they carry none.

/// <R, opId, seq, g> — phase-1 request.
class ReadReq : public MessageBase<ReadReq> {
 public:
  explicit ReadReq(OpId op_id, RegisterKey key = "", std::uint32_t seq = 0,
                   ShardId shard = 0)
      : op_id_(op_id), seq_(seq), shard_(shard), key_(std::move(key)) {}
  OpId op_id() const { return op_id_; }
  std::uint32_t seq() const { return seq_; }
  ShardId shard() const { return shard_; }
  const RegisterKey& key() const { return key_; }
  std::string type_name() const override { return "R"; }
  std::size_t wire_size() const override {
    return kHeaderBytes + 16 + key_.size();
  }

 private:
  OpId op_id_;
  std::uint32_t seq_;
  ShardId shard_;
  RegisterKey key_;
};

/// <KEYS, opId, seq, g> — asks a server for the set of register keys it
/// stores (used by the multi-register refresh on weight gain).
class KeysReq : public MessageBase<KeysReq> {
 public:
  explicit KeysReq(OpId op_id, std::uint32_t seq = 0, ShardId shard = 0)
      : op_id_(op_id), seq_(seq), shard_(shard) {}
  OpId op_id() const { return op_id_; }
  std::uint32_t seq() const { return seq_; }
  ShardId shard() const { return shard_; }
  std::string type_name() const override { return "KEYS"; }
  std::size_t wire_size() const override { return kHeaderBytes + 16; }

 private:
  OpId op_id_;
  std::uint32_t seq_;
  ShardId shard_;
};

/// <KEYS_A, opId, seq, keys, C>.
class KeysAck : public MessageBase<KeysAck> {
 public:
  KeysAck(OpId op_id, std::vector<RegisterKey> keys, ChangeSetPtr changes,
          std::uint32_t seq = 0)
      : op_id_(op_id),
        seq_(seq),
        keys_(std::move(keys)),
        changes_(std::move(changes)) {}
  OpId op_id() const { return op_id_; }
  std::uint32_t seq() const { return seq_; }
  const std::vector<RegisterKey>& keys() const { return keys_; }
  const ChangeSetPtr& changes() const { return changes_; }
  std::string type_name() const override { return "KEYS_A"; }
  std::size_t wire_size() const override {
    std::size_t k = 0;
    for (const auto& key : keys_) k += key.size() + 4;
    return kHeaderBytes + 12 + k + changes_wire_size(changes_);
  }

 private:
  OpId op_id_;
  std::uint32_t seq_;
  std::vector<RegisterKey> keys_;
  ChangeSetPtr changes_;
};

/// <R_A, reg, opId, seq, C> — phase-1 reply: register contents + change
/// set.
class ReadAck : public MessageBase<ReadAck> {
 public:
  ReadAck(OpId op_id, TaggedValue reg, ChangeSetPtr changes,
          std::uint32_t seq = 0)
      : op_id_(op_id),
        seq_(seq),
        reg_(std::move(reg)),
        changes_(std::move(changes)) {}
  OpId op_id() const { return op_id_; }
  std::uint32_t seq() const { return seq_; }
  const TaggedValue& reg() const { return reg_; }
  const ChangeSetPtr& changes() const { return changes_; }
  std::string type_name() const override { return "R_A"; }
  std::size_t wire_size() const override {
    return kHeaderBytes + 12 + 12 + reg_.value.size() +
           changes_wire_size(changes_);
  }

 private:
  OpId op_id_;
  std::uint32_t seq_;
  TaggedValue reg_;
  ChangeSetPtr changes_;
};

/// <W, <tag, val>, opId, seq, g> — phase-2 request (write or read
/// write-back).
class WriteReq : public MessageBase<WriteReq> {
 public:
  WriteReq(OpId op_id, TaggedValue reg, RegisterKey key = "",
           std::uint32_t seq = 0, ShardId shard = 0)
      : op_id_(op_id),
        seq_(seq),
        shard_(shard),
        reg_(std::move(reg)),
        key_(std::move(key)) {}
  OpId op_id() const { return op_id_; }
  std::uint32_t seq() const { return seq_; }
  ShardId shard() const { return shard_; }
  const TaggedValue& reg() const { return reg_; }
  const RegisterKey& key() const { return key_; }
  std::string type_name() const override { return "W"; }
  std::size_t wire_size() const override {
    return kHeaderBytes + 16 + 12 + reg_.value.size() + key_.size();
  }

 private:
  OpId op_id_;
  std::uint32_t seq_;
  ShardId shard_;
  TaggedValue reg_;
  RegisterKey key_;
};

/// <B, g, [frame...]> — batched wire envelope (client -> servers).
///
/// A batching client coalesces the phase requests of several operations
/// addressed to the SAME shard into one envelope: `frames` holds the
/// individual ReadReq / WriteReq / KeysReq messages exactly as the
/// unbatched protocol would have sent them, so servers apply each frame
/// through the ordinary per-request logic (idempotent, seq-echoing) and
/// nothing about the quorum protocol changes — only the message count.
/// The fault plane acts on whole envelopes: dropping / duplicating /
/// reordering a BatchRequest drops / duplicates / reorders every frame
/// in it together.
///
/// Wire size amortizes the per-message header: each frame contributes
/// its own payload plus a 4-byte frame-length field instead of a full
/// header.
class BatchRequest : public MessageBase<BatchRequest> {
 public:
  BatchRequest(ShardId shard, std::vector<MsgPtr> frames)
      : shard_(shard), frames_(std::move(frames)) {}
  ShardId shard() const { return shard_; }
  const std::vector<MsgPtr>& frames() const { return frames_; }
  std::string type_name() const override { return "B"; }
  std::size_t wire_size() const override {
    std::size_t sz = kHeaderBytes + 4;
    for (const MsgPtr& f : frames_) sz += f->wire_size() - kHeaderBytes + 4;
    return sz;
  }

 private:
  ShardId shard_;
  std::vector<MsgPtr> frames_;
};

/// <B_A, [frame...]> — one reply per BatchRequest, carrying the
/// per-(op_id, seq) acks of every applied frame. The client demultiplexes
/// the frames back into its concurrent two-phase state machines exactly
/// as if they had arrived as individual messages.
class BatchReply : public MessageBase<BatchReply> {
 public:
  explicit BatchReply(std::vector<MsgPtr> frames)
      : frames_(std::move(frames)) {}
  const std::vector<MsgPtr>& frames() const { return frames_; }
  std::string type_name() const override { return "B_A"; }
  std::size_t wire_size() const override {
    std::size_t sz = kHeaderBytes + 4;
    for (const MsgPtr& f : frames_) sz += f->wire_size() - kHeaderBytes + 4;
    return sz;
  }

 private:
  std::vector<MsgPtr> frames_;
};

/// <W_A, opId, seq, C>.
class WriteAck : public MessageBase<WriteAck> {
 public:
  WriteAck(OpId op_id, ChangeSetPtr changes, std::uint32_t seq = 0)
      : op_id_(op_id), seq_(seq), changes_(std::move(changes)) {}
  OpId op_id() const { return op_id_; }
  std::uint32_t seq() const { return seq_; }
  const ChangeSetPtr& changes() const { return changes_; }
  std::string type_name() const override { return "W_A"; }
  std::size_t wire_size() const override {
    return kHeaderBytes + 12 + changes_wire_size(changes_);
  }

 private:
  OpId op_id_;
  std::uint32_t seq_;
  ChangeSetPtr changes_;
};

}  // namespace wrs
