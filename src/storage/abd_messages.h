// Wire messages of the (dynamic-weighted) ABD register protocol
// (Algorithms 5 and 6). The same messages serve the static baseline —
// then `changes` is null and no set is piggybacked.
#pragma once

#include <memory>

#include "core/change_set.h"
#include "runtime/message.h"
#include "storage/tag.h"

namespace wrs {

/// Shared immutable change-set payload. Replies from servers carry the
/// server's current set; null in static deployments.
using ChangeSetPtr = std::shared_ptr<const ChangeSet>;

inline std::size_t changes_wire_size(const ChangeSetPtr& c) {
  return c ? c->wire_size() : 0;
}

/// Registers are named; the paper's single atomic register is key "".
using RegisterKey = std::string;

/// <R, opCnt> — phase-1 request.
class ReadReq : public MessageBase<ReadReq> {
 public:
  explicit ReadReq(std::uint64_t op_id, RegisterKey key = "")
      : op_id_(op_id), key_(std::move(key)) {}
  std::uint64_t op_id() const { return op_id_; }
  const RegisterKey& key() const { return key_; }
  std::string type_name() const override { return "R"; }
  std::size_t wire_size() const override {
    return kHeaderBytes + 8 + key_.size();
  }

 private:
  std::uint64_t op_id_;
  RegisterKey key_;
};

/// <KEYS, opCnt> — asks a server for the set of register keys it stores
/// (used by the multi-register refresh on weight gain).
class KeysReq : public MessageBase<KeysReq> {
 public:
  explicit KeysReq(std::uint64_t op_id) : op_id_(op_id) {}
  std::uint64_t op_id() const { return op_id_; }
  std::string type_name() const override { return "KEYS"; }
  std::size_t wire_size() const override { return kHeaderBytes + 8; }

 private:
  std::uint64_t op_id_;
};

/// <KEYS_A, opCnt, keys, C>.
class KeysAck : public MessageBase<KeysAck> {
 public:
  KeysAck(std::uint64_t op_id, std::vector<RegisterKey> keys,
          ChangeSetPtr changes)
      : op_id_(op_id), keys_(std::move(keys)), changes_(std::move(changes)) {}
  std::uint64_t op_id() const { return op_id_; }
  const std::vector<RegisterKey>& keys() const { return keys_; }
  const ChangeSetPtr& changes() const { return changes_; }
  std::string type_name() const override { return "KEYS_A"; }
  std::size_t wire_size() const override {
    std::size_t k = 0;
    for (const auto& key : keys_) k += key.size() + 4;
    return kHeaderBytes + 8 + k + changes_wire_size(changes_);
  }

 private:
  std::uint64_t op_id_;
  std::vector<RegisterKey> keys_;
  ChangeSetPtr changes_;
};

/// <R_A, reg, opCnt, C> — phase-1 reply: register contents + change set.
class ReadAck : public MessageBase<ReadAck> {
 public:
  ReadAck(std::uint64_t op_id, TaggedValue reg, ChangeSetPtr changes)
      : op_id_(op_id), reg_(std::move(reg)), changes_(std::move(changes)) {}
  std::uint64_t op_id() const { return op_id_; }
  const TaggedValue& reg() const { return reg_; }
  const ChangeSetPtr& changes() const { return changes_; }
  std::string type_name() const override { return "R_A"; }
  std::size_t wire_size() const override {
    return kHeaderBytes + 8 + 12 + reg_.value.size() +
           changes_wire_size(changes_);
  }

 private:
  std::uint64_t op_id_;
  TaggedValue reg_;
  ChangeSetPtr changes_;
};

/// <W, <tag, val>, opCnt> — phase-2 request (write or read write-back).
class WriteReq : public MessageBase<WriteReq> {
 public:
  WriteReq(std::uint64_t op_id, TaggedValue reg, RegisterKey key = "")
      : op_id_(op_id), reg_(std::move(reg)), key_(std::move(key)) {}
  std::uint64_t op_id() const { return op_id_; }
  const TaggedValue& reg() const { return reg_; }
  const RegisterKey& key() const { return key_; }
  std::string type_name() const override { return "W"; }
  std::size_t wire_size() const override {
    return kHeaderBytes + 8 + 12 + reg_.value.size() + key_.size();
  }

 private:
  std::uint64_t op_id_;
  TaggedValue reg_;
  RegisterKey key_;
};

/// <W_A, opCnt, C>.
class WriteAck : public MessageBase<WriteAck> {
 public:
  WriteAck(std::uint64_t op_id, ChangeSetPtr changes)
      : op_id_(op_id), changes_(std::move(changes)) {}
  std::uint64_t op_id() const { return op_id_; }
  const ChangeSetPtr& changes() const { return changes_; }
  std::string type_name() const override { return "W_A"; }
  std::size_t wire_size() const override {
    return kHeaderBytes + 8 + changes_wire_size(changes_);
  }

 private:
  std::uint64_t op_id_;
  ChangeSetPtr changes_;
};

}  // namespace wrs
