#include "storage/dynamic_node.h"

#include "common/logging.h"
#include "runtime/msg_pool.h"

namespace wrs {

DynamicStorageNode::DynamicStorageNode(Env& env, ProcessId self,
                                       const SystemConfig& config)
    : env_(env),
      self_(self),
      reassign_(env, self, config),
      refresh_client_(env, self, config, AbdClient::Mode::kDynamic),
      server_(env, self, [this] { return changes_snapshot(); },
              config.shard) {
  reassign_.set_on_changes_grown([this] { ++snapshot_version_; });
  // Algorithm 4 line 9: before a weight gain is applied, refresh the
  // register by performing a full atomic read. Gains arriving while the
  // private client is busy (an earlier refresh or a test using client())
  // queue up and drain in order.
  reassign_.set_refresh_hook([this](std::function<void()> done) {
    pending_refreshes_.push_back(std::move(done));
    drain_pending_refreshes();
  });
}

void DynamicStorageNode::drain_pending_refreshes() {
  if (pending_refreshes_.empty()) return;
  if (refresh_client_.busy()) {
    // Poll until the in-flight operation finishes; cheap and avoids
    // entangling completion paths.
    env_.schedule(self_, us(200), [this] { drain_pending_refreshes(); });
    return;
  }
  auto done = std::move(pending_refreshes_.front());
  pending_refreshes_.erase(pending_refreshes_.begin());
  // Multi-register refresh: a weight gain changes which sets of servers
  // form quorums, so EVERY register this node serves must be as fresh as
  // a pre-gain quorum before the gain applies. Key discovery itself goes
  // through a weighted quorum (list_keys), which intersects every quorum
  // a past write used.
  refresh_client_.list_keys([this, done](std::vector<RegisterKey> keys) {
    refresh_keys(std::move(keys), std::move(done));
  });
}

void DynamicStorageNode::refresh_keys(std::vector<RegisterKey> keys,
                                      std::function<void()> done) {
  if (keys.empty()) {
    done();
    drain_pending_refreshes();
    return;
  }
  // The client multiplexes operations, so refresh every register in one
  // pipelined burst (distinct keys never serialize) instead of one atomic
  // read per round trip.
  auto remaining = std::make_shared<std::size_t>(keys.size());
  auto when_done = std::make_shared<std::function<void()>>(std::move(done));
  for (const RegisterKey& key : keys) {
    refresh_client_.read(key, [this, key, remaining,
                               when_done](const TaggedValue& tv) {
      // Install the fresh value locally (the ABD read's write-back
      // already pushed it to a quorum; this keeps our own replica
      // current too).
      if (server_.reg(key).tag < tv.tag) server_.set_reg(tv, key);
      if (--*remaining == 0) {
        (*when_done)();
        drain_pending_refreshes();
      }
    });
  }
}

ChangeSetPtr DynamicStorageNode::changes_snapshot() {
  if (cached_version_ != snapshot_version_) {
    cached_snapshot_ = make_pooled<ChangeSet>(reassign_.changes());
    cached_version_ = snapshot_version_;
  }
  return cached_snapshot_;
}

bool DynamicStorageNode::handle(ProcessId from, const Message& msg) {
  if (reassign_.handle(from, msg)) return true;
  if (server_.handle(from, msg)) return true;
  if (refresh_client_.handle(from, msg)) return true;
  return false;
}

void DynamicStorageNode::on_message(ProcessId from, const Message& msg) {
  if (!handle(from, msg)) {
    WRS_DEBUG("DynamicStorageNode " << process_name(self_)
                                    << ": unhandled message "
                                    << msg.type_name());
  }
}

}  // namespace wrs
