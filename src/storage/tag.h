// Tags for the multi-writer ABD register (footnote 3 of the paper):
// a tag is (timestamp, writer id), ordered lexicographically.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace wrs {

struct Tag {
  std::int64_t ts = 0;
  ProcessId pid = kNoProcess;

  friend auto operator<=>(const Tag&, const Tag&) = default;

  std::string str() const {
    // Append style: chained operator+ trips gcc's -Wrestrict false
    // positive (PR105329) when inlined at -O3.
    std::string out = "(";
    out += std::to_string(ts);
    out += ',';
    out += process_name(pid);
    out += ')';
    return out;
  }
};

/// The initial register tag <<0, ⊥>, ⊥>.
inline constexpr Tag kInitialTag{0, kNoProcess};

/// Register values are opaque byte strings.
using Value = std::string;

/// Registers are named; the paper's single atomic register is key "".
using RegisterKey = std::string;

struct TaggedValue {
  Tag tag = kInitialTag;
  Value value;
};

}  // namespace wrs
