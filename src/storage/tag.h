// Tags for the multi-writer ABD register (footnote 3 of the paper):
// a tag is (timestamp, writer id), ordered lexicographically.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace wrs {

struct Tag {
  std::int64_t ts = 0;
  ProcessId pid = kNoProcess;

  friend auto operator<=>(const Tag&, const Tag&) = default;

  std::string str() const {
    return "(" + std::to_string(ts) + "," + process_name(pid) + ")";
  }
};

/// The initial register tag <<0, ⊥>, ⊥>.
inline constexpr Tag kInitialTag{0, kNoProcess};

/// Register values are opaque byte strings.
using Value = std::string;

struct TaggedValue {
  Tag tag = kInitialTag;
  Value value;
};

}  // namespace wrs
