#include "storage/abd_client.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "common/logging.h"
#include "runtime/msg_pool.h"

namespace wrs {

namespace {
// Op ids are unique across every AbdClient instance in the process so
// that two clients co-located in one Process (e.g. a storage node's
// refresh reader plus a workload client) never confuse replies.
std::atomic<std::uint64_t> g_next_op_id{1};
}  // namespace

AbdClient::AbdClient(Env& env, ProcessId self, const SystemConfig& config,
                     Mode mode)
    : env_(env),
      self_(self),
      config_(config),
      servers_(config.servers()),
      mode_(mode),
      initial_total_(config.initial_total()),
      changes_(ChangeSet::initial(config.initial_weights)) {}

OpId AbdClient::fresh_op_id() {
  return g_next_op_id.fetch_add(1, std::memory_order_relaxed);
}

WeightMap AbdClient::current_weights() const {
  if (mode_ == Mode::kStatic) return config_.initial_weights;
  return changes_.to_weight_map(servers_);
}

OpId AbdClient::read(RegisterKey key, ReadCallback cb) {
  Op op;
  op.kind = OpKind::kRead;
  op.key = std::move(key);
  op.rcb = std::move(cb);
  return enqueue(std::move(op));
}

OpId AbdClient::write(RegisterKey key, Value value, WriteCallback cb) {
  Op op;
  op.kind = OpKind::kWrite;
  op.key = std::move(key);
  op.value = std::move(value);
  op.wcb = std::move(cb);
  return enqueue(std::move(op));
}

OpId AbdClient::list_keys(KeysCallback cb) {
  Op op;
  op.kind = OpKind::kListKeys;
  op.kcb = std::move(cb);
  return enqueue(std::move(op));
}

OpId AbdClient::freeze_key(RegisterKey key, std::uint64_t epoch, ShardId dest,
                           ReadCallback cb) {
  Op op;
  op.kind = OpKind::kFreeze;
  op.key = std::move(key);
  op.mig_epoch = epoch;
  op.mig_owner = dest;
  op.rcb = std::move(cb);
  return enqueue(std::move(op));
}

OpId AbdClient::commit_mark(RegisterKey key, ShardId owner,
                            std::uint64_t epoch,
                            std::optional<TaggedValue> install,
                            WriteCallback cb) {
  Op op;
  op.kind = OpKind::kCommit;
  op.key = std::move(key);
  op.mig_epoch = epoch;
  op.mig_owner = owner;
  op.mig_install = std::move(install);
  op.wcb = std::move(cb);
  return enqueue(std::move(op));
}

OpId AbdClient::collect(std::vector<RegisterKey> keys, CollectCallback cb) {
  Op op;
  op.kind = OpKind::kCollect;
  op.snap_keys = std::move(keys);
  op.ccb = std::move(cb);
  return enqueue(std::move(op));
}

OpId AbdClient::snap_freeze(SnapId snap_id, std::vector<RegisterKey> keys,
                            CollectCallback cb) {
  Op op;
  op.kind = OpKind::kSnapFreeze;
  op.snap_id = snap_id;
  op.snap_keys = std::move(keys);
  op.ccb = std::move(cb);
  return enqueue(std::move(op));
}

OpId AbdClient::snap_release(SnapId snap_id, std::vector<SnapEntry> installs,
                             ReleaseCallback cb) {
  Op op;
  op.kind = OpKind::kSnapRelease;
  op.snap_id = snap_id;
  op.snap_installs = std::move(installs);
  op.relcb = std::move(cb);
  return enqueue(std::move(op));
}

OpId AbdClient::install(RegisterKey key, TaggedValue reg, WriteCallback cb) {
  Op op;
  op.kind = OpKind::kInstall;
  op.key = std::move(key);
  op.to_write = std::move(reg);
  op.write_tag_chosen = true;  // the tag is preset: never re-minted
  op.wcb = std::move(cb);
  return enqueue(std::move(op));
}

std::optional<AbdClient::EjectedOp> AbdClient::eject(OpId id) {
  auto it = ops_.find(id);
  if (it == ops_.end()) return std::nullopt;
  Op& op = it->second;
  if (op.kind != OpKind::kRead && op.kind != OpKind::kWrite &&
      op.kind != OpKind::kInstall) {
    return std::nullopt;
  }
  EjectedOp out;
  out.kind = op.kind;
  out.key = op.key;
  out.value = std::move(op.value);
  out.to_write = std::move(op.to_write);
  out.write_tag_chosen = op.write_tag_chosen;
  out.rcb = std::move(op.rcb);
  out.wcb = std::move(op.wcb);
  bool was_started = op.started;
  ops_.erase(it);
  if (was_started) --started_count_;
  if (keyless(out.kind)) return out;  // kInstall: no FIFO entry to fix up
  auto fit = key_fifo_.find(out.key);
  auto& fifo = fit->second;
  bool was_front = fifo.front() == id;
  fifo.erase(std::find(fifo.begin(), fifo.end(), id));
  if (fifo.empty()) {
    key_fifo_.erase(fit);
  } else if (was_front) {
    // The ejected op held the key: start its successor (which will chase
    // the same redirect and reissue behind this op at the new shard).
    start_phase1(ops_.at(fifo.front()));
  }
  return out;
}

OpId AbdClient::resume(EjectedOp e) {
  Op op;
  op.kind = e.kind;
  op.key = std::move(e.key);
  op.value = std::move(e.value);
  op.to_write = std::move(e.to_write);
  op.write_tag_chosen = e.write_tag_chosen;
  op.rcb = std::move(e.rcb);
  op.wcb = std::move(e.wcb);
  return enqueue(std::move(op));
}

OpId AbdClient::enqueue(Op op) {
  OpId id = fresh_op_id();
  op.id = id;
  OpKind kind = op.kind;
  RegisterKey key = op.key;
  Op& slot = ops_.emplace(id, std::move(op)).first->second;
  if (keyless(kind)) {
    // Keyless ops (discovery, snapshot verbs, installs) are never
    // serialized behind keyed traffic.
    start_phase1(slot);
    return id;
  }
  std::deque<OpId>& fifo = key_fifo_[key];
  fifo.push_back(id);
  if (fifo.size() == 1) start_phase1(slot);
  return id;
}

void AbdClient::start_phase1(Op& op) {
  if (!op.started) {
    op.started = true;
    ++started_count_;
    max_started_ = std::max(max_started_, started_count_);
  }
  if (op.kind == OpKind::kCommit || op.kind == OpKind::kInstall) {
    // One-round verbs that only collect WriteAcks (a commit's mark round,
    // a snapshot install of a preset tag): every (re)start — including
    // change-set restarts — re-runs the ack phase directly.
    start_phase2(op);
    return;
  }
  op.phase = 1;
  ++op.seq;
  op.phase1_replies.clear();
  op.phase2_acks.clear();
  op.keys_acks.clear();
  op.keys_acc.clear();
  op.snap_replies.clear();
  op.snap_all_held = true;
  broadcast_phase(op);
  schedule_retry(op.id, op.seq);
}

void AbdClient::start_phase2(Op& op) {
  op.phase = 2;
  ++op.seq;
  op.phase2_acks.clear();
  broadcast_phase(op);
  schedule_retry(op.id, op.seq);
}

void AbdClient::broadcast_phase(const Op& op) {
  MsgPtr req;
  if (op.kind == OpKind::kFreeze) {
    req = make_msg<MigFreeze>(op.id, op.key, op.mig_epoch,
                                      op.mig_owner, op.seq, config_.shard);
  } else if (op.kind == OpKind::kCommit) {
    req = make_msg<MigCommit>(op.id, op.key, op.mig_owner,
                                      op.mig_epoch, op.mig_install, op.seq,
                                      config_.shard);
  } else if (op.kind == OpKind::kCollect) {
    req = make_msg<SnapReq>(op.id, op.snap_keys, op.seq, config_.shard);
  } else if (op.kind == OpKind::kSnapFreeze) {
    req = make_msg<SnapFreeze>(op.id, op.snap_id, op.snap_keys, op.seq,
                               config_.shard);
  } else if (op.kind == OpKind::kSnapRelease) {
    req = make_msg<SnapRelease>(op.id, op.snap_id, op.snap_installs, op.seq,
                                config_.shard);
  } else if (op.phase == 2) {
    req = make_msg<WriteReq>(op.id, op.to_write, op.key, op.seq,
                                     config_.shard);
  } else if (op.kind == OpKind::kListKeys) {
    req = make_msg<KeysReq>(op.id, op.seq, config_.shard);
  } else {
    req = make_msg<ReadReq>(op.id, op.key, op.seq, config_.shard);
  }
  // Migration and snapshot verbs never coalesce: servers apply them
  // outside the batched-frame path (fences and collects are rare control
  // traffic, not hot ops). Installs are plain WriteReqs and batch freely.
  if (!batching() || op.kind == OpKind::kFreeze ||
      op.kind == OpKind::kCommit || op.kind == OpKind::kCollect ||
      op.kind == OpKind::kSnapFreeze || op.kind == OpKind::kSnapRelease) {
    env_.broadcast_to_group(self_, servers_, req);
    return;
  }
  enqueue_frame(op, std::move(req));
}

void AbdClient::set_batching(std::size_t max_ops, TimeNs max_delay) {
  if (max_delay < 0) {
    throw std::invalid_argument("AbdClient: batching max_delay must be >= 0");
  }
  batch_max_ops_ = max_ops == 0 ? 1 : max_ops;
  batch_max_delay_ = max_delay;
  if (!batching()) flush_batch();  // turned off mid-run: drain the buffer
}

void AbdClient::enqueue_frame(const Op& op, MsgPtr msg) {
  batch_buf_.push_back(PendingFrame{op.id, op.seq, std::move(msg)});
  if (batch_buf_.size() >= batch_max_ops_) {
    flush_batch();
    return;
  }
  if (batch_buf_.size() > 1) return;  // the first frame already armed a timer
  // Arm the max_delay timer for THIS batch. The generation check makes
  // a timer whose batch was already flushed (by count, or by an earlier
  // timer) a no-op instead of prematurely splitting the next batch.
  std::uint64_t gen = ++batch_timer_gen_;
  env_.schedule(self_, batch_max_delay_, [this, gen] {
    if (gen != batch_timer_gen_) return;  // batch superseded: stale timer
    flush_batch();
  });
}

void AbdClient::flush_batch() {
  ++batch_timer_gen_;  // any armed timer belongs to the batch ending here
  if (batch_buf_.empty()) return;
  std::vector<MsgPtr> frames;
  frames.reserve(batch_buf_.size());
  for (PendingFrame& f : batch_buf_) {
    // Skip frames whose operation completed or restarted (bumped seq)
    // while buffered — the servers would only produce stale replies.
    auto it = ops_.find(f.id);
    if (it == ops_.end() || it->second.seq != f.seq) continue;
    frames.push_back(std::move(f.msg));
  }
  batch_buf_.clear();
  if (frames.empty()) return;
  ++batches_sent_;
  batched_frames_ += frames.size();
  env_.broadcast_to_group(
      self_, servers_,
      make_msg<BatchRequest>(config_.shard, std::move(frames)));
}

void AbdClient::schedule_retry(OpId id, std::uint32_t seq) {
  if (retry_interval_ <= 0) return;
  env_.schedule(self_, retry_interval_, [this, id, seq] {
    auto it = ops_.find(id);
    if (it == ops_.end()) return;       // completed
    const Op& op = it->second;
    if (!op.started || op.seq != seq) return;  // progressed or restarted
    // Same (op_id, seq) on the wire: servers re-reply, the client's
    // per-server reply maps absorb duplicates.
    ++retransmits_;
    broadcast_phase(op);
    schedule_retry(id, seq);
  });
}

void AbdClient::complete(OpId id) {
  auto it = ops_.find(id);
  Op finished = std::move(it->second);
  ops_.erase(it);
  --started_count_;  // only started ops complete
  if (!keyless(finished.kind)) {
    // Release the key FIFO and start the successor, if any, BEFORE the
    // callback runs: the callback may issue new operations on this key.
    auto fit = key_fifo_.find(finished.key);
    fit->second.pop_front();
    if (fit->second.empty()) {
      key_fifo_.erase(fit);
    } else {
      start_phase1(ops_.at(fit->second.front()));
    }
  }
  switch (finished.kind) {
    case OpKind::kRead:
    case OpKind::kFreeze:
      finished.rcb(finished.read_result);
      break;
    case OpKind::kWrite:
    case OpKind::kCommit:
    case OpKind::kInstall:
      finished.wcb(finished.to_write.tag);
      break;
    case OpKind::kListKeys: {
      std::vector<RegisterKey> keys(finished.keys_acc.begin(),
                                    finished.keys_acc.end());
      finished.kcb(keys);
      break;
    }
    case OpKind::kCollect:
    case OpKind::kSnapFreeze:
      finished.ccb(aggregate_snap(finished));
      break;
    case OpKind::kSnapRelease:
      finished.relcb(finished.snap_all_held);
      break;
  }
}

std::vector<AbdClient::CollectEntry> AbdClient::aggregate_snap(
    const Op& op) const {
  // Per-key fold over the quorum's SnapAck entry vectors: max tag over
  // kOk entries, unanimity of that tag, and any raised routing flag
  // (kMoved wins over kFrozen — it carries the override the router
  // needs; either one fails the round).
  std::vector<CollectEntry> out(op.snap_keys.size());
  for (std::size_t i = 0; i < op.snap_keys.size(); ++i) {
    CollectEntry& ce = out[i];
    ce.key = op.snap_keys[i];
    bool first = true;
    for (const auto& [pid, entries] : op.snap_replies) {
      if (entries.size() != op.snap_keys.size()) continue;  // malformed
      const SnapEntry& e = entries[i];
      if (e.flag != SnapEntry::kOk) {
        if (ce.flag == SnapEntry::kOk || e.flag == SnapEntry::kMoved) {
          ce.flag = e.flag;
          ce.owner = e.owner;
          ce.epoch = e.epoch;
        }
        continue;
      }
      if (first) {
        ce.reg = e.reg;
        ce.unanimous = true;
        first = false;
      } else {
        if (e.reg.tag != ce.reg.tag) ce.unanimous = false;
        if (ce.reg.tag < e.reg.tag) ce.reg = e.reg;
      }
    }
    if (ce.flag != SnapEntry::kOk) ce.unanimous = false;
  }
  return out;
}

bool AbdClient::merge_and_maybe_restart(const ChangeSetPtr& incoming) {
  if (mode_ == Mode::kStatic || !incoming) return false;
  std::size_t added = changes_.join(*incoming);
  if (added == 0) return false;
  // Learned of newer completed changes: the change set is client-level
  // state, so EVERY started operation's quorum accounting predates the
  // merge — restart them all from phase 1 under the new weights
  // (Algorithm 5 "restart the operation").
  for (auto& [id, op] : ops_) {
    if (!op.started) continue;
    ++restarts_;
    if (++op.op_restarts > max_restarts_) {
      throw std::logic_error(
          "AbdClient: restart budget exhausted — unbounded concurrent "
          "transfers?");
    }
    start_phase1(op);
  }
  return true;
}

bool AbdClient::responders_form_quorum(
    const std::vector<ProcessId>& responders) const {
  // Algorithm 5 is_quorum: responders' total weight under the client's
  // current change set must exceed W_{S,0}/2.
  WeightMap weights = current_weights();
  Weight sum(0);
  for (ProcessId s : responders) sum += weights.of(s);
  return sum * Weight(2) > initial_total_;
}

bool AbdClient::responders_form_quorum(
    const std::vector<std::pair<ProcessId, TaggedValue>>& replies) const {
  WeightMap weights = current_weights();
  Weight sum(0);
  for (const auto& [s, reg] : replies) sum += weights.of(s);
  return sum * Weight(2) > initial_total_;
}

bool AbdClient::handle(ProcessId from, const Message& msg) {
  if (const auto* batch = msg_cast<BatchReply>(msg)) {
    // Demultiplex the envelope back into the per-operation state
    // machines. A frame may restart or complete operations whose later
    // frames are also in this envelope — the ordinary per-frame seq and
    // liveness checks below absorb that, exactly as they absorb a
    // reordered stream of individual replies.
    bool any = false;
    for (const MsgPtr& frame : batch->frames()) {
      if (handle(from, *frame)) any = true;
    }
    return any;
  }

  if (const auto* ack = msg_cast<ReadAck>(msg)) {
    auto it = ops_.find(ack->op_id());
    if (it == ops_.end()) return false;  // not mine (or long completed)
    Op& op = it->second;
    if (op.phase != 1 || op.kind == OpKind::kListKeys ||
        ack->seq() != op.seq) {
      return true;  // stale reply (from a restarted phase): consumed
    }
    if (merge_and_maybe_restart(ack->changes())) return true;
    auto slot = std::find_if(
        op.phase1_replies.begin(), op.phase1_replies.end(),
        [from](const auto& reply) { return reply.first == from; });
    if (slot == op.phase1_replies.end()) {
      op.phase1_replies.emplace_back(from, ack->reg());
    } else {
      slot->second = ack->reg();  // duplicate reply: last one wins
    }
    if (!responders_form_quorum(op.phase1_replies)) return true;

    // Phase 1 complete: pick the highest tag.
    TaggedValue maxreg;
    for (const auto& [_, reg] : op.phase1_replies) {
      if (maxreg.tag < reg.tag) maxreg = reg;
    }
    if (op.kind == OpKind::kFreeze) {
      // The freeze IS the final read: a quorum of fence acks intersects
      // every completed write quorum, so maxreg is the definitive replica
      // to hand to the destination. No write-back round.
      op.read_result = maxreg;
      complete(op.id);
      return true;
    }
    if (op.kind == OpKind::kRead) {
      if (read_fast_path_) {
        // If EVERY quorum responder already reported the max tag, the
        // value is provably stored at a weighted quorum and the
        // write-back is redundant: any later read's quorum intersects
        // this one and sees a tag >= maxreg.tag. Complete in one round.
        bool unanimous = true;
        for (const auto& [_, reg] : op.phase1_replies) {
          if (reg.tag != maxreg.tag) {
            unanimous = false;
            break;
          }
        }
        if (unanimous) {
          ++fast_path_reads_;
          env_.count_event(TrafficLedger::kReadsFastPath);
          op.read_result = maxreg;
          complete(op.id);
          return true;
        }
      }
      op.read_result = maxreg;
      op.to_write = maxreg;  // write-back phase
    } else {
      // Choose the write's tag exactly once, even across change-set
      // restarts: re-tagging the same value would leave "ghost" tags on
      // servers that partially received an earlier phase 2. The original
      // tag already dominates every write completed before this
      // operation started (it came from a quorum read), which is all
      // atomicity requires.
      if (!op.write_tag_chosen) {
        op.to_write.tag = Tag{maxreg.tag.ts + 1, self_};
        op.write_tag_chosen = true;
      }
      op.to_write.value = op.value;
    }
    start_phase2(op);
    return true;
  }

  if (const auto* ack = msg_cast<WriteAck>(msg)) {
    auto it = ops_.find(ack->op_id());
    if (it == ops_.end()) return false;  // not mine (or long completed)
    Op& op = it->second;
    if (op.phase != 2 || ack->seq() != op.seq) {
      return true;  // stale reply: consumed
    }
    if (merge_and_maybe_restart(ack->changes())) return true;
    if (std::find(op.phase2_acks.begin(), op.phase2_acks.end(), from) ==
        op.phase2_acks.end()) {
      op.phase2_acks.push_back(from);
    }
    if (!responders_form_quorum(op.phase2_acks)) return true;
    complete(op.id);
    return true;
  }

  if (const auto* ack = msg_cast<SnapAck>(msg)) {
    auto it = ops_.find(ack->op_id());
    if (it == ops_.end()) return false;  // not mine (or long completed)
    Op& op = it->second;
    bool snap_kind = op.kind == OpKind::kCollect ||
                     op.kind == OpKind::kSnapFreeze ||
                     op.kind == OpKind::kSnapRelease;
    if (!snap_kind || ack->seq() != op.seq) {
      return true;  // stale reply (from a restarted attempt): consumed
    }
    if (merge_and_maybe_restart(ack->changes())) return true;
    if (std::find(op.keys_acks.begin(), op.keys_acks.end(), from) ==
        op.keys_acks.end()) {
      op.keys_acks.push_back(from);
    }
    if (op.kind == OpKind::kSnapRelease) {
      // One false `held` poisons the round: some fence TTL-expired (or a
      // retransmit raced the first release) and writes may have slipped
      // past the cut — the caller discards and retries.
      if (!ack->held()) op.snap_all_held = false;
    } else {
      auto slot = std::find_if(
          op.snap_replies.begin(), op.snap_replies.end(),
          [from](const auto& reply) { return reply.first == from; });
      if (slot == op.snap_replies.end()) {
        op.snap_replies.emplace_back(from, ack->entries());
      } else {
        slot->second = ack->entries();  // duplicate reply: last one wins
      }
    }
    if (!responders_form_quorum(op.keys_acks)) return true;
    complete(op.id);
    return true;
  }

  if (const auto* ack = msg_cast<KeysAck>(msg)) {
    auto it = ops_.find(ack->op_id());
    if (it == ops_.end()) return false;  // not mine (or long completed)
    Op& op = it->second;
    if (op.kind != OpKind::kListKeys || ack->seq() != op.seq) {
      return true;  // stale
    }
    if (merge_and_maybe_restart(ack->changes())) return true;
    if (std::find(op.keys_acks.begin(), op.keys_acks.end(), from) ==
        op.keys_acks.end()) {
      op.keys_acks.push_back(from);
    }
    for (const auto& key : ack->keys()) op.keys_acc.insert(key);
    if (!responders_form_quorum(op.keys_acks)) return true;
    complete(op.id);
    return true;
  }

  return false;
}

}  // namespace wrs
