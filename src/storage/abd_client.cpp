#include "storage/abd_client.h"

#include <atomic>
#include <stdexcept>

#include "common/logging.h"

namespace wrs {

namespace {
// Phase op-ids are unique across every AbdClient instance in the process
// so that two clients co-located in one Process (e.g. a storage node's
// refresh reader plus a workload client) never confuse replies.
std::atomic<std::uint64_t> g_next_op_id{1};
}  // namespace

AbdClient::AbdClient(Env& env, ProcessId self, const SystemConfig& config,
                     Mode mode)
    : env_(env),
      self_(self),
      config_(config),
      mode_(mode),
      initial_total_(config.initial_total()),
      changes_(ChangeSet::initial(config.initial_weights)) {}

std::uint64_t AbdClient::fresh_op_id() {
  return g_next_op_id.fetch_add(1, std::memory_order_relaxed);
}

WeightMap AbdClient::current_weights() const {
  if (mode_ == Mode::kStatic) return config_.initial_weights;
  return changes_.to_weight_map(config_.servers());
}

void AbdClient::read(RegisterKey key, ReadCallback cb) {
  if (op_.has_value()) {
    throw std::logic_error("AbdClient: operation already in flight");
  }
  Op op;
  op.kind = OpKind::kRead;
  op.key = std::move(key);
  op.rcb = std::move(cb);
  op_ = std::move(op);
  start_phase1();
}

void AbdClient::write(RegisterKey key, Value value, WriteCallback cb) {
  if (op_.has_value()) {
    throw std::logic_error("AbdClient: operation already in flight");
  }
  Op op;
  op.kind = OpKind::kWrite;
  op.key = std::move(key);
  op.value = std::move(value);
  op.wcb = std::move(cb);
  op_ = std::move(op);
  start_phase1();
}

void AbdClient::list_keys(KeysCallback cb) {
  if (op_.has_value()) {
    throw std::logic_error("AbdClient: operation already in flight");
  }
  Op op;
  op.kind = OpKind::kListKeys;
  op.kcb = std::move(cb);
  op_ = std::move(op);
  start_phase1();
}

void AbdClient::start_phase1() {
  op_->phase = 1;
  op_->phase_op_id = fresh_op_id();
  op_->phase1_replies.clear();
  op_->phase2_acks.clear();
  op_->keys_acks.clear();
  op_->keys_acc.clear();
  if (op_->kind == OpKind::kListKeys) {
    env_.broadcast_to_servers(self_,
                              std::make_shared<KeysReq>(op_->phase_op_id));
  } else {
    env_.broadcast_to_servers(
        self_, std::make_shared<ReadReq>(op_->phase_op_id, op_->key));
  }
}

void AbdClient::start_phase2() {
  op_->phase = 2;
  op_->phase_op_id = fresh_op_id();
  op_->phase2_acks.clear();
  env_.broadcast_to_servers(
      self_,
      std::make_shared<WriteReq>(op_->phase_op_id, op_->to_write, op_->key));
}

bool AbdClient::merge_and_maybe_restart(const ChangeSetPtr& incoming) {
  if (mode_ == Mode::kStatic || !incoming) return false;
  std::size_t added = changes_.join(*incoming);
  if (added == 0) return false;
  // Learned of newer completed changes: restart from phase 1 under the
  // new weights (Algorithm 5 "restart the operation").
  ++restarts_;
  if (++op_->op_restarts > max_restarts_) {
    throw std::logic_error(
        "AbdClient: restart budget exhausted — unbounded concurrent "
        "transfers?");
  }
  start_phase1();
  return true;
}

bool AbdClient::responders_form_quorum(
    const std::set<ProcessId>& responders) const {
  // Algorithm 5 is_quorum: responders' total weight under the client's
  // current change set must exceed W_{S,0}/2.
  WeightMap weights = current_weights();
  Weight sum(0);
  for (ProcessId s : responders) sum += weights.of(s);
  return sum * Weight(2) > initial_total_;
}

bool AbdClient::handle(ProcessId from, const Message& msg) {
  if (const auto* ack = msg_cast<ReadAck>(msg)) {
    if (!op_.has_value() || op_->kind == OpKind::kListKeys ||
        op_->phase != 1 || ack->op_id() != op_->phase_op_id) {
      return true;  // stale reply (from a restarted phase): consumed
    }
    if (merge_and_maybe_restart(ack->changes())) return true;
    op_->phase1_replies[from] = ack->reg();
    std::set<ProcessId> responders;
    for (const auto& [s, _] : op_->phase1_replies) responders.insert(s);
    if (!responders_form_quorum(responders)) return true;

    // Phase 1 complete: pick the highest tag.
    TaggedValue maxreg;
    for (const auto& [_, reg] : op_->phase1_replies) {
      if (maxreg.tag < reg.tag) maxreg = reg;
    }
    if (op_->kind == OpKind::kRead) {
      op_->read_result = maxreg;
      op_->to_write = maxreg;  // write-back phase
    } else {
      // Choose the write's tag exactly once, even across change-set
      // restarts: re-tagging the same value would leave "ghost" tags on
      // servers that partially received an earlier phase 2. The original
      // tag already dominates every write completed before this
      // operation started (it came from a quorum read), which is all
      // atomicity requires.
      if (!op_->write_tag_chosen) {
        op_->to_write.tag = Tag{maxreg.tag.ts + 1, self_};
        op_->write_tag_chosen = true;
      }
      op_->to_write.value = op_->value;
    }
    start_phase2();
    return true;
  }

  if (const auto* ack = msg_cast<WriteAck>(msg)) {
    if (!op_.has_value() || op_->phase != 2 ||
        ack->op_id() != op_->phase_op_id) {
      return true;  // stale reply: consumed
    }
    if (merge_and_maybe_restart(ack->changes())) return true;
    op_->phase2_acks.insert(from);
    if (!responders_form_quorum(op_->phase2_acks)) return true;

    // Operation complete.
    Op finished = std::move(*op_);
    op_.reset();
    if (finished.kind == OpKind::kRead) {
      finished.rcb(finished.read_result);
    } else {
      finished.wcb(finished.to_write.tag);
    }
    return true;
  }

  if (const auto* ack = msg_cast<KeysAck>(msg)) {
    if (!op_.has_value() || op_->kind != OpKind::kListKeys ||
        ack->op_id() != op_->phase_op_id) {
      return true;  // stale
    }
    if (merge_and_maybe_restart(ack->changes())) return true;
    op_->keys_acks.insert(from);
    for (const auto& key : ack->keys()) op_->keys_acc.insert(key);
    if (!responders_form_quorum(op_->keys_acks)) return true;
    Op finished = std::move(*op_);
    op_.reset();
    std::vector<RegisterKey> keys(finished.keys_acc.begin(),
                                  finished.keys_acc.end());
    finished.kcb(keys);
    return true;
  }

  return false;
}

}  // namespace wrs
