#include "net/socket_addr.h"

#include <stdexcept>

namespace wrs::net {

SocketAddr SocketAddr::parse(const std::string& spec) {
  SocketAddr addr;
  if (spec.rfind("tcp:", 0) == 0) {
    addr.kind = Kind::kTcp;
    std::string rest = spec.substr(4);
    std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
      throw std::invalid_argument("SocketAddr: want tcp:HOST:PORT, got \"" +
                                  spec + "\"");
    }
    addr.host = rest.substr(0, colon);
    std::string port_str = rest.substr(colon + 1);
    try {
      std::size_t used = 0;
      unsigned long port = std::stoul(port_str, &used);
      if (used != port_str.size() || port > 65535) throw std::out_of_range("");
      addr.port = static_cast<std::uint16_t>(port);
    } catch (const std::exception&) {
      throw std::invalid_argument("SocketAddr: bad port in \"" + spec + "\"");
    }
    return addr;
  }
  if (spec.rfind("unix:", 0) == 0) {
    addr.kind = Kind::kUnix;
    addr.path = spec.substr(5);
    if (addr.path.empty()) {
      throw std::invalid_argument("SocketAddr: empty unix path in \"" + spec +
                                  "\"");
    }
    // sockaddr_un::sun_path is 108 bytes including the terminator.
    if (addr.path.size() >= 108) {
      throw std::invalid_argument("SocketAddr: unix path too long (>= 108): " +
                                  addr.path);
    }
    return addr;
  }
  throw std::invalid_argument(
      "SocketAddr: want \"tcp:HOST:PORT\" or \"unix:PATH\", got \"" + spec +
      "\"");
}

std::string SocketAddr::str() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

}  // namespace wrs::net
