// Serializer/deserializer for every on-the-wire message type — see
// wire_format.h for the frame layout and encoding rules.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "net/encode_arena.h"
#include "net/wire_format.h"
#include "runtime/message.h"

namespace wrs::net {

/// One decoded frame: the routing pair plus a freshly built message that
/// owns all of its state (never aliases the receive buffer).
struct DecodedFrame {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  MsgPtr msg;
};

class WireCodec {
 public:
  /// Serializes a routed message into one complete frame (length prefix
  /// included) ready to write to a socket. Throws std::invalid_argument
  /// for message types without a wire mapping (custom/test-only types —
  /// the socket runtime refuses them at send time).
  static std::vector<std::uint8_t> encode_frame(ProcessId from, ProcessId to,
                                                const Message& msg);

  /// Arena encode: byte-identical to encode_frame (pinned by test), but
  /// written straight into `arena` — the steady-state socket send path
  /// does zero heap allocations per frame. The returned Segment keeps
  /// its chunk alive; copies share the encode (duplicate sends).
  static Segment encode_frame_arena(EncodeArena& arena, ProcessId from,
                                    ProcessId to, const Message& msg);

  /// Parses one frame BODY (the bytes after the u32 length prefix; the
  /// transport strips the prefix during reassembly). Returns nullopt on
  /// any malformed input — truncation, trailing garbage, unknown tag,
  /// version mismatch, nested lengths pointing past the buffer — and
  /// never throws or crashes.
  static std::optional<DecodedFrame> decode_frame(const std::uint8_t* body,
                                                  std::size_t len);

  /// True iff `msg`'s concrete type has a wire mapping.
  static bool encodable(const Message& msg);

  /// The stable wire tag of `msg`'s concrete type (nullopt when the type
  /// has no mapping).
  static std::optional<WireType> wire_type_of(const Message& msg);
};

}  // namespace wrs::net
