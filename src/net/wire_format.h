// The wire format of the socket runtime.
//
// Frame layout (all integers little-endian, no padding):
//
//   offset  size  field
//   ------  ----  --------------------------------------------------------
//   0       4     u32  body length (bytes following this field)
//   4       1     u8   wire version            (kWireVersion)
//   5       1     u8   wire type tag           (WireType below)
//   6       4     u32  sender process id       (from)
//   10      4     u32  receiver process id     (to)
//   14      ...   type-specific payload
//
// The 4+1+1+4+4 = 14-byte prelude is the real-transport analogue of
// Message::kHeaderBytes: length-prefixed so a stream socket can be cut
// into frames with one u32 read, versioned so incompatible peers reject
// each other's traffic instead of misparsing it, and self-addressed so
// one connection can carry traffic for ANY (from, to) pair — a wrs-node
// process hosts a whole replica group behind a single listening socket,
// and clients are routed back over whichever connection they dialed in
// on.
//
// Type tags: the in-process runtime dispatches on CRTP type ids
// (Message::type_id()), but those are allocated lazily in first-use
// order and therefore differ between OS processes. WireType pins ONE
// stable on-the-wire tag per message type; the codec maps runtime ids to
// wire tags when serializing and switches on the wire tag when
// deserializing, so the lazy in-process tags never leak onto the wire.
//
// Nested messages (the frames of a BatchRequest/BatchReply envelope, the
// payload of a reliable-broadcast RbMsg) are encoded recursively as
//
//   u8 wire type tag | u32 body length | body
//
// with a hard nesting-depth cap (kMaxNestingDepth) so adversarial input
// cannot recurse the decoder.
//
// Primitive encodings:
//   u8/u32/u64      little-endian fixed width
//   i64             two's complement in a u64
//   f64             IEEE-754 bit pattern in a u64 (RTT gossip)
//   string/bytes    u32 length + raw bytes
//   Weight          i64 numerator + i64 denominator (always normalized)
//   Tag             i64 ts + u32 pid
//   TaggedValue     Tag + string value
//   Change          u32 issuer + u64 counter + u32 target + Weight
//   ChangeSet       u32 count + Change... (ascending ChangeId order)
//   optional<u64>   u8 present + u64 (present only)
//   ChangeSetPtr    u8 present + ChangeSet (present only)
//
// Every container is encoded in a deterministic order (ChangeSet and
// RTT maps iterate their ordered std::map, vectors keep their order), so
// serialize(deserialize(serialize(m))) is byte-identical — pinned by the
// codec fuzz test.
//
// Malformed input (truncated frame, unknown tag, bad version, length
// fields pointing past the buffer, denormal weights, duplicate change
// ids, over-deep nesting) makes decode_frame() return nullopt; it never
// throws out of the codec and never crashes. Decoded messages own every
// byte of their state — nothing aliases the receive buffer (pinned by
// the ASan lifetime test in tests/test_codec_fuzz.cpp).
#pragma once

#include <cstdint>
#include <cstddef>

namespace wrs::net {

/// Bumped on any incompatible change to the frame or payload encodings.
inline constexpr std::uint8_t kWireVersion = 1;

/// Bytes before the payload, counting the u32 length prefix.
inline constexpr std::size_t kFramePreludeBytes = 14;

/// Upper bound on one frame's body length; longer frames are malformed
/// (protects the reassembly buffer from absurd length prefixes).
inline constexpr std::size_t kMaxFrameBodyBytes = 64u << 20;

/// Maximum recursion depth of nested message encodings (a batch envelope
/// of RbMsg-wrapped payloads is depth 2; anything deeper is suspect).
inline constexpr int kMaxNestingDepth = 8;

/// Stable on-the-wire message type tags. Append-only: renumbering any
/// entry is a wire-protocol break (bump kWireVersion instead).
enum class WireType : std::uint8_t {
  // ABD register protocol (storage/abd_messages.h).
  kReadReq = 1,
  kReadAck = 2,
  kWriteReq = 3,
  kWriteAck = 4,
  kKeysReq = 5,
  kKeysAck = 6,
  kBatchRequest = 7,
  kBatchReply = 8,
  // Pairwise weight reassignment (core/reassign_messages.h).
  kRcReq = 9,
  kRcAck = 10,
  kWcReq = 11,
  kWcAck = 12,
  kTransfer = 13,
  kTAck = 14,
  kSync = 15,
  // Reliable broadcast wrapper (broadcast/reliable_broadcast.h).
  kRb = 16,
  // Adaptive-weights gossip (monitor/adaptive_node.h).
  kPing = 17,
  kPong = 18,
  kRttReport = 19,
  // Elastic resharding (storage/migration_messages.h). Freeze and commit
  // are acked by the plain ReadAck/WriteAck above — the migration fence
  // reuses the ABD quorum machinery, so only the three requests below
  // are new wire entries.
  kMigFreeze = 20,
  kMigCommit = 21,
  kWrongShard = 22,
  // Cross-shard atomic snapshots (storage/snapshot_messages.h). The
  // double-collect fast path and the fenced fallback share one ack type
  // (SnapAck carries per-key entries + flags + the `held` bit), so four
  // new wire entries cover collect, freeze, release, and their replies.
  kSnapReq = 23,
  kSnapAck = 24,
  kSnapFreeze = 25,
  kSnapRelease = 26,
};

// Compile-time pin of every tag value shipped so far. A new message type
// appended without its own static_assert, or any renumbering of an
// existing entry, fails the build here before it can silently change the
// wire format (the runtime twin is CodecFuzz.WireTypeTagsAreStable).
static_assert(static_cast<std::uint8_t>(WireType::kReadReq) == 1);
static_assert(static_cast<std::uint8_t>(WireType::kReadAck) == 2);
static_assert(static_cast<std::uint8_t>(WireType::kWriteReq) == 3);
static_assert(static_cast<std::uint8_t>(WireType::kWriteAck) == 4);
static_assert(static_cast<std::uint8_t>(WireType::kKeysReq) == 5);
static_assert(static_cast<std::uint8_t>(WireType::kKeysAck) == 6);
static_assert(static_cast<std::uint8_t>(WireType::kBatchRequest) == 7);
static_assert(static_cast<std::uint8_t>(WireType::kBatchReply) == 8);
static_assert(static_cast<std::uint8_t>(WireType::kRcReq) == 9);
static_assert(static_cast<std::uint8_t>(WireType::kRcAck) == 10);
static_assert(static_cast<std::uint8_t>(WireType::kWcReq) == 11);
static_assert(static_cast<std::uint8_t>(WireType::kWcAck) == 12);
static_assert(static_cast<std::uint8_t>(WireType::kTransfer) == 13);
static_assert(static_cast<std::uint8_t>(WireType::kTAck) == 14);
static_assert(static_cast<std::uint8_t>(WireType::kSync) == 15);
static_assert(static_cast<std::uint8_t>(WireType::kRb) == 16);
static_assert(static_cast<std::uint8_t>(WireType::kPing) == 17);
static_assert(static_cast<std::uint8_t>(WireType::kPong) == 18);
static_assert(static_cast<std::uint8_t>(WireType::kRttReport) == 19);
static_assert(static_cast<std::uint8_t>(WireType::kMigFreeze) == 20);
static_assert(static_cast<std::uint8_t>(WireType::kMigCommit) == 21);
static_assert(static_cast<std::uint8_t>(WireType::kWrongShard) == 22);
static_assert(static_cast<std::uint8_t>(WireType::kSnapReq) == 23);
static_assert(static_cast<std::uint8_t>(WireType::kSnapAck) == 24);
static_assert(static_cast<std::uint8_t>(WireType::kSnapFreeze) == 25);
static_assert(static_cast<std::uint8_t>(WireType::kSnapRelease) == 26);

}  // namespace wrs::net
