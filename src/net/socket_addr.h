// Transport endpoint addresses for the socket runtime.
//
// Two address families, spelled as strings everywhere user-facing
// (flags, JSON config, add_route):
//
//   "tcp:127.0.0.1:7000"   TCP over IPv4 (port 0 = bind ephemeral)
//   "unix:/tmp/wrs.sock"   Unix-domain stream socket
#pragma once

#include <cstdint>
#include <string>

namespace wrs::net {

struct SocketAddr {
  enum class Kind { kTcp, kUnix };

  Kind kind = Kind::kTcp;
  std::string host = "127.0.0.1";  // TCP only (IPv4 dotted quad)
  std::uint16_t port = 0;          // TCP only; 0 binds an ephemeral port
  std::string path;                // Unix only

  /// Parses "tcp:HOST:PORT" or "unix:PATH"; throws std::invalid_argument
  /// naming the offender on anything else.
  static SocketAddr parse(const std::string& spec);

  /// Canonical spec string ("tcp:127.0.0.1:7000" / "unix:/tmp/x.sock") —
  /// also the routing key, so two routes to one endpoint share state.
  std::string str() const;

  friend bool operator==(const SocketAddr& a, const SocketAddr& b) {
    return a.kind == b.kind && a.host == b.host && a.port == b.port &&
           a.path == b.path;
  }
};

}  // namespace wrs::net
