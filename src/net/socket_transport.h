// Nonblocking epoll reactor: the byte-moving half of the socket runtime
// (SocketEnv in src/runtime/socket_env.h is the Env-semantics half).
//
// One loop thread owns an epoll instance, every socket, every
// per-connection read/write buffer, and a deadline min-heap. The public
// API is thread-safe: calls enqueue typed command records onto the loop
// through an eventfd-woken ring, so all connection state is
// single-threaded by construction (the same serialize-everything trick
// the rest of the library plays per process).
//
// The command plane is engineered for zero steady-state allocations
// (bench/runtime_overhead gates this end to end with SocketEnv):
//
//  * Peers are INTERNED once (intern_peer → small dense PeerId); the
//    per-send path never builds an address string or hashes a map key.
//  * Commands are a tagged struct (send/post/timer/close) in a pair of
//    grow-only rings swapped under the lock — producers fill one while
//    the loop drains the other, and both buffers stay warm forever
//    (unlike the old swap-into-empty-vector, which reallocated every
//    batch). Callables ride as small-buffer Tasks, not std::functions.
//  * Frames are arena `Segment`s (net/encode_arena.h): the sender's
//    encode is the only copy; per-connection write queues are rings of
//    segments flushed with scatter-gather sendmsg().
//  * Timers carry Tasks plus an opaque gate token: at fire time the
//    owner's `timer_gate` callback decides whether the task still runs
//    (SocketEnv uses it for crash semantics without wrapping the Task
//    in a second closure).
//
//  * Listener: nonblocking accept4 loop; TCP (SO_REUSEADDR, port 0 =
//    ephemeral, actual address readable after listen()) and Unix-domain
//    stream sockets (stale path unlinked before bind).
//  * Outbound connections: nonblocking connect (EINPROGRESS ->
//    EPOLLOUT -> SO_ERROR), keyed by PeerId. Frames sent while a peer
//    is down queue up (bounded) and flush on connect; failed dials
//    retry with exponential backoff.
//  * Framing: each frame starts with a u32 length prefix (see
//    wire_format.h). Partial reads accumulate per connection; partial
//    writes keep their queue position and EPOLLOUT re-arms. A length
//    prefix over kMaxFrameBodyBytes closes the connection as malformed.
//
// This layer knows nothing about message types or process ids — it
// moves length-prefixed byte frames between interned peers and hands
// complete frames (and connection lifecycle events) to callbacks that
// run on the loop thread.
#pragma once
#ifdef __linux__

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "net/encode_arena.h"
#include "net/socket_addr.h"
#include "runtime/task.h"

namespace wrs::net {

class SocketTransport {
 public:
  /// Identifies one live connection (never reused within a transport).
  using ConnId = std::uint64_t;
  static constexpr ConnId kNoConn = 0;

  /// Dense id of an interned peer address (stable for the transport's
  /// lifetime).
  using PeerId = std::uint32_t;
  static constexpr PeerId kNoPeer = 0xffffffffu;

  /// All callbacks run on the loop thread.
  struct Events {
    /// One complete frame BODY (length prefix stripped).
    std::function<void(ConnId, const std::uint8_t* body, std::size_t len)>
        on_frame;
    /// Connection died (EOF, error, malformed frame, forced close).
    std::function<void(ConnId)> on_conn_closed;
    /// Gate for timers scheduled with a nonzero token: return false to
    /// drop the task at fire time (crashed-process semantics). Absent =
    /// every timer runs.
    std::function<bool(std::uint64_t token)> timer_gate;
  };

  SocketTransport();
  ~SocketTransport();

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Must be set before start().
  void set_events(Events events);

  /// Binds and listens; call before start(). With a TCP port of 0 the
  /// kernel picks one — listen_addr() reports the actual address.
  /// Throws std::runtime_error on bind/listen failure.
  void listen(const SocketAddr& addr);
  std::optional<SocketAddr> listen_addr() const;

  /// Spawns the loop thread. Idempotent stop(); the destructor stops too.
  void start();
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // --- frame output (thread-safe) -----------------------------------------
  /// Interns `addr` once and returns its dense id; the same address
  /// always maps to the same id. Cheap enough to call on a warm path
  /// but meant to be cached by the caller (SocketEnv caches per route).
  PeerId intern_peer(const SocketAddr& addr);

  /// Queues one frame (complete wire bytes, length prefix included) to
  /// an interned peer, dialing if no connection exists.
  void send_to_peer(PeerId peer, Segment frame);

  /// Queues one frame onto an existing connection (how servers answer
  /// clients that dialed in); silently dropped (and counted) when the
  /// connection is gone.
  void send_on_conn(ConnId conn, Segment frame);

  /// Tears down any connection to `peer` and drops its queued frames.
  /// The peer stays dialable — a later send_to_peer reconnects.
  void close_peer(PeerId peer);
  /// Tears down one connection (inbound or outbound).
  void close_conn(ConnId conn);

  // --- loop-thread execution (thread-safe) --------------------------------
  /// Runs `fn` on the loop thread (soon; FIFO with sends).
  void post(wrs::Task fn);
  /// Runs `fn` on the loop thread after `delay`. A nonzero `token` is
  /// passed to Events::timer_gate at fire time; 0 = ungated.
  void schedule_after(TimeNs delay, std::uint64_t token, wrs::Task fn);
  void schedule_after(TimeNs delay, wrs::Task fn) {
    schedule_after(delay, 0, std::move(fn));
  }

  // --- counters (atomic; readable from any thread) ------------------------
  std::uint64_t conns_opened() const { return conns_opened_.load(); }
  std::uint64_t conns_closed() const { return conns_closed_.load(); }
  std::uint64_t dials_failed() const { return dials_failed_.load(); }
  std::uint64_t frames_dropped() const { return frames_dropped_.load(); }
  std::uint64_t oversize_frames() const { return oversize_frames_.load(); }

 private:
  struct Conn {
    ConnId id = kNoConn;
    int fd = -1;
    bool connecting = false;       // nonblocking connect in flight
    PeerId peer = kNoPeer;         // outbound only (kNoPeer for inbound)
    std::vector<std::uint8_t> rbuf;
    std::size_t rpos = 0;          // parsed-up-to offset into rbuf
    wrs::GrowRing<Segment> wq;
    std::size_t woff = 0;          // bytes of wq front already written
    bool want_write = false;       // EPOLLOUT currently armed
  };

  struct Peer {
    SocketAddr addr;
    ConnId conn = kNoConn;
    wrs::GrowRing<Segment> pending;  // queued while down (bounded)
    TimeNs backoff = 0;            // current redial backoff (0 = none yet)
    bool dial_timer_armed = false;
  };

  struct TimerItem {
    TimeNs at;
    std::uint64_t seq;
    std::uint64_t token;
    wrs::Task fn;
    bool operator>(const TimerItem& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  /// One cross-thread command. A tagged struct in a reused ring instead
  /// of a heap-allocated closure per call: the send path moves a
  /// Segment and two ints, posts/timers move a small-buffer Task.
  struct Cmd {
    enum class Kind : std::uint8_t {
      kNone,
      kTask,
      kTimer,
      kSendPeer,
      kSendConn,
      kClosePeer,
      kCloseConn,
    };
    Kind kind = Kind::kNone;
    wrs::Task fn;              // kTask, kTimer
    TimeNs at = 0;             // kTimer: absolute deadline
    std::uint64_t token = 0;   // kTimer: gate token
    PeerId peer = kNoPeer;     // kSendPeer, kClosePeer
    ConnId conn = kNoConn;     // kSendConn, kCloseConn
    Segment seg;               // kSendPeer, kSendConn
  };

  // Loop internals (loop thread only).
  void loop();
  void drain_commands();
  void dispatch(Cmd cmd);
  void run_due_timers(TimeNs now);
  TimeNs mono_now() const;
  Conn* find_conn(ConnId id);
  Peer* peer(PeerId id);
  void post_cmd(Cmd cmd);
  void do_send_to_peer(PeerId id, Segment frame);
  void do_send_on_conn(ConnId conn, Segment frame);
  void do_close_peer(PeerId id);
  void dial(Peer& p, PeerId id);
  void arm_redial(PeerId id);
  void on_connect_ready(Conn& conn);
  void accept_ready();
  void read_ready(Conn& conn);
  void write_ready(Conn& conn);
  bool flush_writes(Conn& conn);   // false = connection died
  void parse_frames(Conn& conn);
  void enqueue_frame(Conn& conn, Segment frame);
  void close_conn_internal(ConnId id, bool notify);
  void update_epoll(Conn& conn);
  void wake();

  Events events_;

  // Command rings (any thread -> loop thread). Producers push into
  // commands_ under cmd_mu_; the loop swaps it with drain_ (O(1)) and
  // dispatches lock-free. The buffers ping-pong, so both stay at their
  // high-water capacity — steady state never touches the allocator.
  std::mutex cmd_mu_;
  wrs::GrowRing<Cmd> commands_;
  wrs::GrowRing<Cmd> drain_;  // loop thread only

  // Interned peers. The vector only grows and elements are unique_ptr,
  // so a Peer* stays valid forever; intern_mu_ guards the vector/index
  // themselves (interning is rare, the lock is uncontended).
  mutable std::mutex intern_mu_;
  std::vector<std::unique_ptr<Peer>> peers_;
  std::map<std::string, PeerId> peer_index_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;   // eventfd
  int listen_fd_ = -1;
  std::optional<SocketAddr> listen_addr_;
  std::string unix_path_;  // unlinked on stop

  std::map<ConnId, std::unique_ptr<Conn>> conns_;
  // Ids 0..15 are reserved for non-connection epoll entries (the wake
  // eventfd and the listener); see kFirstConnId in the .cpp.
  ConnId next_conn_id_ = 16;

  std::priority_queue<TimerItem, std::vector<TimerItem>, std::greater<>>
      timers_;
  std::uint64_t timer_seq_ = 0;

  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> conns_opened_{0};
  std::atomic<std::uint64_t> conns_closed_{0};
  std::atomic<std::uint64_t> dials_failed_{0};
  std::atomic<std::uint64_t> frames_dropped_{0};
  std::atomic<std::uint64_t> oversize_frames_{0};
};

}  // namespace wrs::net

#endif  // __linux__
