// Nonblocking epoll reactor: the byte-moving half of the socket runtime
// (SocketEnv in src/runtime/socket_env.h is the Env-semantics half).
//
// One loop thread owns an epoll instance, every socket, every
// per-connection read/write buffer, and a deadline min-heap. The public
// API is thread-safe: calls enqueue commands onto the loop through an
// eventfd-woken queue, so all connection state is single-threaded by
// construction (the same serialize-everything trick the rest of the
// library plays per process).
//
//  * Listener: nonblocking accept4 loop; TCP (SO_REUSEADDR, port 0 =
//    ephemeral, actual address readable after listen()) and Unix-domain
//    stream sockets (stale path unlinked before bind).
//  * Outbound connections: nonblocking connect (EINPROGRESS ->
//    EPOLLOUT -> SO_ERROR), keyed by canonical address string. Frames
//    sent while a peer is down queue up (bounded) and flush on connect;
//    failed dials retry with exponential backoff.
//  * Framing: each frame starts with a u32 length prefix (see
//    wire_format.h). Partial reads accumulate per connection; partial
//    writes keep their queue position and EPOLLOUT re-arms. A length
//    prefix over kMaxFrameBodyBytes closes the connection as malformed.
//
// This layer knows nothing about message types or process ids — it
// moves length-prefixed byte frames between addresses and hands
// complete frames (and connection lifecycle events) to callbacks that
// run on the loop thread.
#pragma once
#ifdef __linux__

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "net/socket_addr.h"

namespace wrs::net {

class SocketTransport {
 public:
  /// Identifies one live connection (never reused within a transport).
  using ConnId = std::uint64_t;
  static constexpr ConnId kNoConn = 0;

  /// All callbacks run on the loop thread.
  struct Events {
    /// One complete frame BODY (length prefix stripped).
    std::function<void(ConnId, const std::uint8_t* body, std::size_t len)>
        on_frame;
    /// Connection died (EOF, error, malformed frame, forced close).
    std::function<void(ConnId)> on_conn_closed;
  };

  SocketTransport();
  ~SocketTransport();

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Must be set before start().
  void set_events(Events events);

  /// Binds and listens; call before start(). With a TCP port of 0 the
  /// kernel picks one — listen_addr() reports the actual address.
  /// Throws std::runtime_error on bind/listen failure.
  void listen(const SocketAddr& addr);
  std::optional<SocketAddr> listen_addr() const;

  /// Spawns the loop thread. Idempotent stop(); the destructor stops too.
  void start();
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // --- frame output (thread-safe) -----------------------------------------
  /// Queues one frame (complete wire bytes, length prefix included) to
  /// the peer at `addr`, dialing if no connection exists. `key` must be
  /// addr.str() (callers always have it precomputed).
  void send_to_peer(const std::string& key, const SocketAddr& addr,
                    std::vector<std::uint8_t> frame);

  /// Queues one frame onto an existing connection (how servers answer
  /// clients that dialed in); silently dropped (and counted) when the
  /// connection is gone.
  void send_on_conn(ConnId conn, std::vector<std::uint8_t> frame);

  /// Tears down any connection to `key` and drops its queued frames.
  /// The peer stays dialable — a later send_to_peer reconnects.
  void close_peer(const std::string& key);
  /// Tears down one connection (inbound or outbound).
  void close_conn(ConnId conn);

  // --- loop-thread execution (thread-safe) --------------------------------
  /// Runs `fn` on the loop thread (soon; FIFO with sends).
  void post(std::function<void()> fn);
  /// Runs `fn` on the loop thread after `delay`.
  void schedule_after(TimeNs delay, std::function<void()> fn);

  // --- counters (atomic; readable from any thread) ------------------------
  std::uint64_t conns_opened() const { return conns_opened_.load(); }
  std::uint64_t conns_closed() const { return conns_closed_.load(); }
  std::uint64_t dials_failed() const { return dials_failed_.load(); }
  std::uint64_t frames_dropped() const { return frames_dropped_.load(); }
  std::uint64_t oversize_frames() const { return oversize_frames_.load(); }

 private:
  struct Conn {
    ConnId id = kNoConn;
    int fd = -1;
    bool connecting = false;       // nonblocking connect in flight
    std::string peer_key;          // outbound only ("" for inbound)
    std::vector<std::uint8_t> rbuf;
    std::size_t rpos = 0;          // parsed-up-to offset into rbuf
    std::deque<std::vector<std::uint8_t>> wq;
    std::size_t woff = 0;          // bytes of wq.front() already written
    bool want_write = false;       // EPOLLOUT currently armed
  };

  struct Peer {
    SocketAddr addr;
    ConnId conn = kNoConn;
    std::deque<std::vector<std::uint8_t>> pending;  // queued while down
    TimeNs backoff = 0;            // current redial backoff (0 = none yet)
    bool dial_timer_armed = false;
  };

  struct TimerItem {
    TimeNs at;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const TimerItem& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  // Loop internals (loop thread only).
  void loop();
  void drain_commands();
  void run_due_timers(TimeNs now);
  TimeNs mono_now() const;
  Conn* find_conn(ConnId id);
  void do_send_to_peer(const std::string& key, const SocketAddr& addr,
                       std::vector<std::uint8_t> frame);
  void do_send_on_conn(ConnId conn, std::vector<std::uint8_t> frame);
  void dial(Peer& peer, const std::string& key);
  void arm_redial(const std::string& key);
  void on_connect_ready(Conn& conn);
  void accept_ready();
  void read_ready(Conn& conn);
  void write_ready(Conn& conn);
  bool flush_writes(Conn& conn);   // false = connection died
  void parse_frames(Conn& conn);
  void enqueue_frame(Conn& conn, std::vector<std::uint8_t> frame);
  void close_conn_internal(ConnId id, bool notify);
  void update_epoll(Conn& conn);
  void wake();

  Events events_;

  // Command queue (any thread -> loop thread).
  std::mutex cmd_mu_;
  std::vector<std::function<void()>> commands_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;   // eventfd
  int listen_fd_ = -1;
  std::optional<SocketAddr> listen_addr_;
  std::string unix_path_;  // unlinked on stop

  std::map<ConnId, std::unique_ptr<Conn>> conns_;
  std::map<std::string, Peer> peers_;
  // Ids 0..15 are reserved for non-connection epoll entries (the wake
  // eventfd and the listener); see kFirstConnId in the .cpp.
  ConnId next_conn_id_ = 16;

  std::priority_queue<TimerItem, std::vector<TimerItem>, std::greater<>>
      timers_;
  std::uint64_t timer_seq_ = 0;

  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> conns_opened_{0};
  std::atomic<std::uint64_t> conns_closed_{0};
  std::atomic<std::uint64_t> dials_failed_{0};
  std::atomic<std::uint64_t> frames_dropped_{0};
  std::atomic<std::uint64_t> oversize_frames_{0};
};

}  // namespace wrs::net

#endif  // __linux__
