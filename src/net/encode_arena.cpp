#include "net/encode_arena.h"

#include <mutex>
#include <new>
#include <vector>

namespace wrs::net {
namespace {

/// Process-wide recycler of standard-size chunks. Leaky singleton, like
/// MsgPool: segments released during static destruction must always
/// find a live pool, and LSan sees the free list as reachable.
class ChunkPool {
 public:
  static ChunkPool& instance() {
    static ChunkPool* pool = new ChunkPool();
    return *pool;
  }

  /// A chunk with cap >= max(min_cap, kArenaChunkBytes requirement);
  /// refs == 1 (the caller's reference). Oversize requests bypass the
  /// free list and are freed outright on release.
  ArenaChunk* acquire(std::size_t min_cap) {
    if (min_cap <= kArenaChunkBytes) {
      {
        std::lock_guard lock(mu_);
        if (!free_.empty()) {
          ArenaChunk* c = free_.back();
          free_.pop_back();
          c->refs.store(1, std::memory_order_relaxed);
          return c;
        }
      }
      return make(kArenaChunkBytes, /*pooled=*/true);
    }
    return make(min_cap, /*pooled=*/false);
  }

  void put(ArenaChunk* c) {
    std::lock_guard lock(mu_);
    free_.push_back(c);
  }

 private:
  static ArenaChunk* make(std::size_t cap, bool pooled) {
    void* raw = ::operator new(sizeof(ArenaChunk) + cap);
    auto* c = new (raw) ArenaChunk();
    c->cap = static_cast<std::uint32_t>(cap);
    c->pooled = pooled;
    return c;
  }

  std::mutex mu_;
  std::vector<ArenaChunk*> free_;
};

/// Below this much slack, rotate chunks instead of attempting an encode
/// that will almost certainly overflow and retry.
constexpr std::size_t kMinUsefulSpan = 4096;

}  // namespace

void ArenaChunk::release() noexcept {
  if (refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (pooled) {
      ChunkPool::instance().put(this);
    } else {
      this->~ArenaChunk();
      ::operator delete(this);
    }
  }
}

EncodeArena::~EncodeArena() {
  if (cur_ != nullptr) cur_->release();
}

std::uint8_t* EncodeArena::reserve(std::size_t min_bytes) {
  const std::size_t want = min_bytes == 0 ? kMinUsefulSpan : min_bytes;
  if (cur_ == nullptr || cur_->cap - off_ < want) {
    if (cur_ != nullptr) cur_->release();
    cur_ = ChunkPool::instance().acquire(want);
    off_ = 0;
  }
  return cur_->data() + off_;
}

std::size_t EncodeArena::writable() const {
  return cur_ == nullptr ? 0 : cur_->cap - off_;
}

Segment EncodeArena::commit(std::size_t n) {
  Segment seg(cur_, cur_->data() + off_, n);
  off_ += n;
  return seg;
}

}  // namespace wrs::net
