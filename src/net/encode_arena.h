// Arena-backed scatter-gather buffers for the socket send path.
//
// The pre-arena encode path allocated one std::vector per frame, moved
// it through a std::function command closure (a second allocation), and
// copied it into a per-connection deque. With the arena, a sender
// encodes directly into a large refcounted chunk and ships a `Segment`
// — a (chunk, offset, length) view — down to the transport's write
// queue, which hands segment spans straight to sendmsg(). Steady state:
// zero allocations per message, because chunks recycle through a
// process-wide pool the moment their last segment is released.
//
// Ownership model:
//  * `ArenaChunk` carries an atomic refcount. The arena that is filling
//    a chunk holds one reference; every Segment cut from it holds one
//    more. Chunks may therefore cross threads freely (encode on the
//    caller's thread, write + release on the transport loop thread).
//  * Standard-size chunks return to the global `ChunkPool` free list on
//    final release (the pool is a leaky singleton, like MsgPool, so
//    releases during static destruction stay safe). Oversize chunks —
//    frames bigger than one chunk — are one-shot heap allocations.
//  * `EncodeArena` is single-threaded by design: use one per sending
//    thread (thread_local) or one owned by the loop thread.
//
// `SpanWriter` is the bounded writer the codec encodes through: it
// writes into a raw span and throws `ArenaFull` on overflow, which the
// caller turns into "reserve a bigger span and re-encode" (frames are
// almost always far smaller than a chunk, so the retry is cold).
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

namespace wrs::net {

/// Usable payload bytes per pooled chunk. Large enough that hundreds of
/// protocol frames amortize one chunk rotation; small enough that a
/// handful of live chunks per process is noise.
inline constexpr std::size_t kArenaChunkBytes = 256 * 1024;

/// A refcounted block of encode memory; payload bytes follow the header.
struct ArenaChunk {
  std::atomic<std::uint32_t> refs{1};
  std::uint32_t cap = 0;  ///< usable payload bytes
  bool pooled = false;    ///< false: freed outright on last release

  std::uint8_t* data() {
    return reinterpret_cast<std::uint8_t*>(this) + sizeof(ArenaChunk);
  }

  void retain() { refs.fetch_add(1, std::memory_order_relaxed); }
  /// Returns the chunk to the pool (or the heap) when the last
  /// reference drops. Defined out of line: needs ChunkPool.
  void release() noexcept;
};

/// An immutable view of encoded bytes, keeping its chunk alive. Copy is
/// a refcount bump (fault-injected duplicate sends reuse one encode).
class Segment {
 public:
  Segment() = default;
  Segment(ArenaChunk* chunk, const std::uint8_t* data, std::size_t len)
      : chunk_(chunk), data_(data), len_(len) {
    if (chunk_ != nullptr) chunk_->retain();
  }

  Segment(const Segment& o) : Segment(o.chunk_, o.data_, o.len_) {}
  Segment(Segment&& o) noexcept
      : chunk_(o.chunk_), data_(o.data_), len_(o.len_) {
    o.chunk_ = nullptr;
    o.data_ = nullptr;
    o.len_ = 0;
  }

  Segment& operator=(const Segment& o) {
    if (this != &o) *this = Segment(o);  // copy-retain, then move in
    return *this;
  }

  Segment& operator=(Segment&& o) noexcept {
    if (this != &o) {
      reset();
      chunk_ = std::exchange(o.chunk_, nullptr);
      data_ = std::exchange(o.data_, nullptr);
      len_ = std::exchange(o.len_, 0);
    }
    return *this;
  }

  ~Segment() { reset(); }

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  explicit operator bool() const { return data_ != nullptr; }

 private:
  void reset() {
    if (chunk_ != nullptr) chunk_->release();
    chunk_ = nullptr;
    data_ = nullptr;
    len_ = 0;
  }

  ArenaChunk* chunk_ = nullptr;
  const std::uint8_t* data_ = nullptr;
  std::size_t len_ = 0;
};

/// Single-threaded bump allocator cutting Segments from pooled chunks.
class EncodeArena {
 public:
  EncodeArena() = default;
  ~EncodeArena();

  EncodeArena(const EncodeArena&) = delete;
  EncodeArena& operator=(const EncodeArena&) = delete;

  /// Ensures at least `min_bytes` (or, for 0, a useful working span) of
  /// contiguous writable space at the cursor and returns its base.
  /// Rotates to a fresh pooled chunk — or a one-shot oversize chunk —
  /// when the current one is (nearly) full.
  std::uint8_t* reserve(std::size_t min_bytes);

  /// Bytes writable at the pointer reserve() returned.
  std::size_t writable() const;

  /// Seals the first `n` bytes of the reserved span as a Segment and
  /// advances the cursor. `n` must not exceed writable().
  Segment commit(std::size_t n);

  /// Copies arbitrary bytes into the arena as one Segment.
  Segment copy(const std::uint8_t* p, std::size_t n) {
    std::memcpy(reserve(n), p, n);
    return commit(n);
  }

 private:
  ArenaChunk* cur_ = nullptr;
  std::size_t off_ = 0;
};

/// Thrown by SpanWriter on overflow; callers re-reserve and re-encode.
struct ArenaFull {};

/// Bounded little-endian writer over a raw span — the arena twin of the
/// codec's vector-backed Writer, byte-for-byte the same encoding.
class SpanWriter {
 public:
  SpanWriter(std::uint8_t* base, std::size_t cap) : base_(base), cap_(cap) {}

  std::size_t size() const { return n_; }

  void u8(std::uint8_t v) {
    need(1);
    base_[n_++] = v;
  }

  void u32(std::uint32_t v) {
    need(4);
    for (int i = 0; i < 4; ++i) base_[n_++] = static_cast<std::uint8_t>(v >> (8 * i));
  }

  void u64(std::uint64_t v) {
    need(8);
    for (int i = 0; i < 8; ++i) base_[n_++] = static_cast<std::uint8_t>(v >> (8 * i));
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    need(s.size());
    std::memcpy(base_ + n_, s.data(), s.size());
    n_ += s.size();
  }

  /// Patches a previously written u32 in place (length backfill).
  void patch_u32(std::size_t at, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) base_[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }

 private:
  void need(std::size_t n) const {
    if (cap_ - n_ < n) throw ArenaFull{};
  }

  std::uint8_t* base_;
  std::size_t cap_;
  std::size_t n_ = 0;
};

}  // namespace wrs::net
