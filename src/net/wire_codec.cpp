#include "net/wire_codec.h"

#include <bit>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>

#include "broadcast/reliable_broadcast.h"
#include "core/reassign_messages.h"
#include "monitor/adaptive_node.h"
#include "runtime/msg_pool.h"
#include "storage/abd_messages.h"
#include "storage/migration_messages.h"
#include "storage/snapshot_messages.h"

namespace wrs::net {
namespace {

// Thrown inside the decoder on any malformed input; decode_frame() turns
// it (and anything else the reconstructed types throw — denormal
// Rationals, duplicate change ids) into nullopt at the boundary.
struct CodecError : std::runtime_error {
  explicit CodecError(const char* what) : std::runtime_error(what) {}
};

// --- primitive writer ------------------------------------------------------

class Writer {
 public:
  std::vector<std::uint8_t>& out() { return buf_; }
  std::size_t size() const { return buf_.size(); }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Patches a previously written u32 in place (length backfill).
  void patch_u32(std::size_t at, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }

 private:
  std::vector<std::uint8_t> buf_;
};

// --- primitive reader ------------------------------------------------------

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len) : data_(data), end_(len) {}

  std::size_t remaining() const { return end_ - pos_; }
  bool done() const { return pos_ == end_; }

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[pos_ + i]} << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[pos_ + i]} << (8 * i);
    pos_ += 8;
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    std::uint32_t n = u32();
    need(n);
    // Construct from the buffer range: std::string always copies.
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  /// A sub-reader over the next `n` bytes (for length-delimited nested
  /// messages); consumes them from this reader.
  Reader slice(std::size_t n) {
    need(n);
    Reader sub(data_ + pos_, n);
    pos_ += n;
    return sub;
  }

  /// Guards count-prefixed containers: a claimed element count whose
  /// minimum encoding would not fit in the remaining bytes is malformed
  /// (rejects absurd counts before any allocation).
  void check_count(std::uint64_t count, std::size_t min_elem_bytes) const {
    if (count * min_elem_bytes > remaining()) {
      throw CodecError("wire: container count exceeds frame");
    }
  }

 private:
  void need(std::size_t n) const {
    if (end_ - pos_ < n) throw CodecError("wire: truncated frame");
  }

  const std::uint8_t* data_;
  std::size_t pos_ = 0;
  std::size_t end_;
};

// --- shared composite encodings --------------------------------------------

template <typename W>
void put_weight(W& w, const Weight& v) {
  w.i64(v.num());
  w.i64(v.den());
}

Weight get_weight(Reader& r) {
  std::int64_t num = r.i64();
  std::int64_t den = r.i64();
  // Rational(num, den) throws on den == 0; a NON-normalized pair decodes
  // fine but would re-encode differently, so reject it explicitly — valid
  // encoders only ever emit normalized weights.
  Weight v(num, den);
  if (v.num() != num || v.den() != den) {
    throw CodecError("wire: denormalized weight");
  }
  return v;
}

template <typename W>
void put_change(W& w, const Change& c) {
  w.u32(c.id.issuer);
  w.u64(c.id.counter);
  w.u32(c.id.target);
  put_weight(w, c.delta);
}

constexpr std::size_t kChangeBytes = 4 + 8 + 4 + 16;

Change get_change(Reader& r) {
  ProcessId issuer = r.u32();
  std::uint64_t counter = r.u64();
  ProcessId target = r.u32();
  Weight delta = get_weight(r);
  return Change(issuer, counter, target, std::move(delta));
}

template <typename W>
void put_change_set(W& w, const ChangeSet& cs) {
  // all() iterates the underlying ordered map — deterministic order, so
  // round trips are byte-identical.
  std::vector<Change> changes = cs.all();
  w.u32(static_cast<std::uint32_t>(changes.size()));
  for (const Change& c : changes) put_change(w, c);
}

ChangeSet get_change_set(Reader& r) {
  std::uint32_t n = r.u32();
  r.check_count(n, kChangeBytes);
  ChangeSet cs;
  for (std::uint32_t i = 0; i < n; ++i) {
    // add() throws on a duplicate id with a different delta — malformed.
    cs.add(get_change(r));
  }
  return cs;
}

template <typename W>
void put_changes_ptr(W& w, const ChangeSetPtr& cs) {
  w.u8(cs ? 1 : 0);
  if (cs) put_change_set(w, *cs);
}

ChangeSetPtr get_changes_ptr(Reader& r) {
  std::uint8_t present = r.u8();
  if (present > 1) throw CodecError("wire: bad optional marker");
  if (!present) return nullptr;
  return make_pooled<const ChangeSet>(get_change_set(r));
}

template <typename W>
void put_tagged_value(W& w, const TaggedValue& tv) {
  w.i64(tv.tag.ts);
  w.u32(tv.tag.pid);
  w.str(tv.value);
}

TaggedValue get_tagged_value(Reader& r) {
  TaggedValue tv;
  tv.tag.ts = r.i64();
  tv.tag.pid = r.u32();
  tv.value = r.str();
  return tv;
}

template <typename W>
void put_snap_entries(W& w, const std::vector<SnapEntry>& entries) {
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const SnapEntry& e : entries) {
    w.str(e.key);
    put_tagged_value(w, e.reg);
    w.u8(e.flag);
    w.u32(e.owner);
    w.u64(e.epoch);
  }
}

std::vector<SnapEntry> get_snap_entries(Reader& r) {
  std::uint32_t n = r.u32();
  // Minimum entry: empty key (4) + tag (12) + empty value (4) + flag/
  // owner/epoch (13).
  r.check_count(n, 33);
  std::vector<SnapEntry> entries;
  entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    SnapEntry e;
    e.key = r.str();
    e.reg = get_tagged_value(r);
    e.flag = r.u8();
    if (e.flag > SnapEntry::kMoved) throw CodecError("wire: bad snap flag");
    e.owner = r.u32();
    e.epoch = r.u64();
    entries.push_back(std::move(e));
  }
  return entries;
}

template <typename W>
void put_key_list(W& w, const std::vector<RegisterKey>& keys) {
  w.u32(static_cast<std::uint32_t>(keys.size()));
  for (const RegisterKey& k : keys) w.str(k);
}

std::vector<RegisterKey> get_key_list(Reader& r) {
  std::uint32_t n = r.u32();
  r.check_count(n, 4);
  std::vector<RegisterKey> keys;
  keys.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) keys.push_back(r.str());
  return keys;
}

// --- per-type payloads ------------------------------------------------------

template <typename W>
void put_message(W& w, const Message& msg, int depth);
MsgPtr get_message(Reader& r, int depth);

template <typename W>
void put_frames(W& w, const std::vector<MsgPtr>& frames, int depth) {
  w.u32(static_cast<std::uint32_t>(frames.size()));
  for (const MsgPtr& f : frames) put_message(w, *f, depth);
}

std::vector<MsgPtr> get_frames(Reader& r, int depth) {
  std::uint32_t n = r.u32();
  r.check_count(n, 5);  // nested prelude: u8 tag + u32 length
  std::vector<MsgPtr> frames;
  frames.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) frames.push_back(get_message(r, depth));
  return frames;
}

/// Writes one payload body (no tag, no length). `depth` is the nesting
/// level already consumed; nested messages bump it.
template <typename W>
void put_body(W& w, const Message& msg, int depth) {
  if (const auto* m = msg_cast<ReadReq>(msg)) {
    w.u64(m->op_id());
    w.u32(m->seq());
    w.u32(m->shard());
    w.str(m->key());
  } else if (const auto* m = msg_cast<ReadAck>(msg)) {
    w.u64(m->op_id());
    w.u32(m->seq());
    put_tagged_value(w, m->reg());
    put_changes_ptr(w, m->changes());
  } else if (const auto* m = msg_cast<WriteReq>(msg)) {
    w.u64(m->op_id());
    w.u32(m->seq());
    w.u32(m->shard());
    put_tagged_value(w, m->reg());
    w.str(m->key());
  } else if (const auto* m = msg_cast<WriteAck>(msg)) {
    w.u64(m->op_id());
    w.u32(m->seq());
    put_changes_ptr(w, m->changes());
  } else if (const auto* m = msg_cast<KeysReq>(msg)) {
    w.u64(m->op_id());
    w.u32(m->seq());
    w.u32(m->shard());
  } else if (const auto* m = msg_cast<KeysAck>(msg)) {
    w.u64(m->op_id());
    w.u32(m->seq());
    w.u32(static_cast<std::uint32_t>(m->keys().size()));
    for (const RegisterKey& k : m->keys()) w.str(k);
    put_changes_ptr(w, m->changes());
  } else if (const auto* m = msg_cast<BatchRequest>(msg)) {
    w.u32(m->shard());
    put_frames(w, m->frames(), depth);
  } else if (const auto* m = msg_cast<BatchReply>(msg)) {
    put_frames(w, m->frames(), depth);
  } else if (const auto* m = msg_cast<RcReq>(msg)) {
    w.u64(m->op_id());
    w.u32(m->target());
    w.u32(m->shard());
  } else if (const auto* m = msg_cast<RcAck>(msg)) {
    w.u64(m->op_id());
    put_change_set(w, m->changes());
  } else if (const auto* m = msg_cast<WcReq>(msg)) {
    w.u64(m->op_id());
    w.u32(m->shard());
    put_change_set(w, m->changes());
  } else if (const auto* m = msg_cast<WcAck>(msg)) {
    w.u64(m->op_id());
  } else if (const auto* m = msg_cast<TransferMsg>(msg)) {
    put_change(w, m->neg());
    put_change(w, m->pos());
    w.u32(m->shard());
  } else if (const auto* m = msg_cast<TAck>(msg)) {
    w.u64(m->counter());
    w.u32(m->shard());
  } else if (const auto* m = msg_cast<SyncMsg>(msg)) {
    w.u8(m->pending_counter() ? 1 : 0);
    if (m->pending_counter()) w.u64(*m->pending_counter());
    w.u32(m->shard());
    put_change_set(w, m->changes());
  } else if (const auto* m = msg_cast<RbMsg>(msg)) {
    w.u32(m->origin());
    w.u64(m->seq());
    put_message(w, *m->payload(), depth);
  } else if (const auto* m = msg_cast<PingMsg>(msg)) {
    w.i64(m->sent_at());
  } else if (const auto* m = msg_cast<PongMsg>(msg)) {
    w.i64(m->sent_at());
  } else if (const auto* m = msg_cast<RttReportMsg>(msg)) {
    w.u32(static_cast<std::uint32_t>(m->rtts().size()));
    for (const auto& [pid, rtt] : m->rtts()) {  // std::map: ordered
      w.u32(pid);
      w.f64(rtt);
    }
  } else if (const auto* m = msg_cast<MigFreeze>(msg)) {
    w.u64(m->op_id());
    w.u32(m->seq());
    w.u32(m->shard());
    w.u64(m->epoch());
    w.u32(m->dest());
    w.str(m->key());
  } else if (const auto* m = msg_cast<MigCommit>(msg)) {
    w.u64(m->op_id());
    w.u32(m->seq());
    w.u32(m->shard());
    w.u64(m->epoch());
    w.u32(m->owner());
    w.str(m->key());
    w.u8(m->install() ? 1 : 0);
    if (m->install()) put_tagged_value(w, *m->install());
  } else if (const auto* m = msg_cast<WrongShardAck>(msg)) {
    w.u64(m->op_id());
    w.u32(m->seq());
    w.u64(m->epoch());
    w.u32(m->owner());
    w.str(m->key());
  } else if (const auto* m = msg_cast<SnapReq>(msg)) {
    w.u64(m->op_id());
    w.u32(m->seq());
    w.u32(m->shard());
    put_key_list(w, m->keys());
  } else if (const auto* m = msg_cast<SnapAck>(msg)) {
    w.u64(m->op_id());
    w.u32(m->seq());
    w.u8(m->held() ? 1 : 0);
    put_snap_entries(w, m->entries());
    put_changes_ptr(w, m->changes());
  } else if (const auto* m = msg_cast<SnapFreeze>(msg)) {
    w.u64(m->op_id());
    w.u32(m->seq());
    w.u32(m->shard());
    w.u64(m->snap_id());
    put_key_list(w, m->keys());
  } else if (const auto* m = msg_cast<SnapRelease>(msg)) {
    w.u64(m->op_id());
    w.u32(m->seq());
    w.u32(m->shard());
    w.u64(m->snap_id());
    put_snap_entries(w, m->installs());
  } else {
    throw std::invalid_argument("WireCodec: no wire mapping for message type " +
                                msg.type_name());
  }
}

/// Reads one payload body of type `type`; the reader is scoped to exactly
/// the body bytes, and leftovers are malformed (checked by the caller).
MsgPtr get_body(Reader& r, WireType type, int depth) {
  switch (type) {
    case WireType::kReadReq: {
      OpId op = r.u64();
      std::uint32_t seq = r.u32();
      ShardId shard = r.u32();
      RegisterKey key = r.str();
      return make_msg<ReadReq>(op, std::move(key), seq, shard);
    }
    case WireType::kReadAck: {
      OpId op = r.u64();
      std::uint32_t seq = r.u32();
      TaggedValue tv = get_tagged_value(r);
      ChangeSetPtr cs = get_changes_ptr(r);
      return make_msg<ReadAck>(op, std::move(tv), std::move(cs), seq);
    }
    case WireType::kWriteReq: {
      OpId op = r.u64();
      std::uint32_t seq = r.u32();
      ShardId shard = r.u32();
      TaggedValue tv = get_tagged_value(r);
      RegisterKey key = r.str();
      return make_msg<WriteReq>(op, std::move(tv), std::move(key), seq,
                                        shard);
    }
    case WireType::kWriteAck: {
      OpId op = r.u64();
      std::uint32_t seq = r.u32();
      ChangeSetPtr cs = get_changes_ptr(r);
      return make_msg<WriteAck>(op, std::move(cs), seq);
    }
    case WireType::kKeysReq: {
      OpId op = r.u64();
      std::uint32_t seq = r.u32();
      ShardId shard = r.u32();
      return make_msg<KeysReq>(op, seq, shard);
    }
    case WireType::kKeysAck: {
      OpId op = r.u64();
      std::uint32_t seq = r.u32();
      std::uint32_t n = r.u32();
      r.check_count(n, 4);
      std::vector<RegisterKey> keys;
      keys.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) keys.push_back(r.str());
      ChangeSetPtr cs = get_changes_ptr(r);
      return make_msg<KeysAck>(op, std::move(keys), std::move(cs), seq);
    }
    case WireType::kBatchRequest: {
      ShardId shard = r.u32();
      return make_msg<BatchRequest>(shard, get_frames(r, depth));
    }
    case WireType::kBatchReply:
      return make_msg<BatchReply>(get_frames(r, depth));
    case WireType::kRcReq: {
      std::uint64_t op = r.u64();
      ProcessId target = r.u32();
      ShardId shard = r.u32();
      return make_msg<RcReq>(op, target, shard);
    }
    case WireType::kRcAck: {
      std::uint64_t op = r.u64();
      return make_msg<RcAck>(op, get_change_set(r));
    }
    case WireType::kWcReq: {
      std::uint64_t op = r.u64();
      ShardId shard = r.u32();
      return make_msg<WcReq>(op, get_change_set(r), shard);
    }
    case WireType::kWcAck:
      return make_msg<WcAck>(r.u64());
    case WireType::kTransfer: {
      Change neg = get_change(r);
      Change pos = get_change(r);
      ShardId shard = r.u32();
      return make_msg<TransferMsg>(std::move(neg), std::move(pos),
                                           shard);
    }
    case WireType::kTAck: {
      std::uint64_t counter = r.u64();
      ShardId shard = r.u32();
      return make_msg<TAck>(counter, shard);
    }
    case WireType::kSync: {
      std::uint8_t present = r.u8();
      if (present > 1) throw CodecError("wire: bad optional marker");
      std::optional<std::uint64_t> pending;
      if (present) pending = r.u64();
      ShardId shard = r.u32();
      return make_msg<SyncMsg>(get_change_set(r), pending, shard);
    }
    case WireType::kRb: {
      ProcessId origin = r.u32();
      std::uint64_t seq = r.u64();
      return make_msg<RbMsg>(origin, seq, get_message(r, depth));
    }
    case WireType::kPing:
      return make_msg<PingMsg>(r.i64());
    case WireType::kPong:
      return make_msg<PongMsg>(r.i64());
    case WireType::kRttReport: {
      std::uint32_t n = r.u32();
      r.check_count(n, 12);
      std::map<ProcessId, double> rtts;
      for (std::uint32_t i = 0; i < n; ++i) {
        ProcessId pid = r.u32();
        double rtt = r.f64();
        if (!rtts.emplace(pid, rtt).second) {
          throw CodecError("wire: duplicate rtt key");
        }
      }
      return make_msg<RttReportMsg>(std::move(rtts));
    }
    case WireType::kMigFreeze: {
      OpId op = r.u64();
      std::uint32_t seq = r.u32();
      ShardId shard = r.u32();
      std::uint64_t epoch = r.u64();
      ShardId dest = r.u32();
      RegisterKey key = r.str();
      return make_msg<MigFreeze>(op, std::move(key), epoch, dest, seq,
                                         shard);
    }
    case WireType::kMigCommit: {
      OpId op = r.u64();
      std::uint32_t seq = r.u32();
      ShardId shard = r.u32();
      std::uint64_t epoch = r.u64();
      ShardId owner = r.u32();
      RegisterKey key = r.str();
      std::uint8_t present = r.u8();
      if (present > 1) throw CodecError("wire: bad optional marker");
      std::optional<TaggedValue> install;
      if (present) install = get_tagged_value(r);
      return make_msg<MigCommit>(op, std::move(key), owner, epoch,
                                         std::move(install), seq, shard);
    }
    case WireType::kWrongShard: {
      OpId op = r.u64();
      std::uint32_t seq = r.u32();
      std::uint64_t epoch = r.u64();
      ShardId owner = r.u32();
      RegisterKey key = r.str();
      return make_msg<WrongShardAck>(op, std::move(key), owner, epoch,
                                             seq);
    }
    case WireType::kSnapReq: {
      OpId op = r.u64();
      std::uint32_t seq = r.u32();
      ShardId shard = r.u32();
      return make_msg<SnapReq>(op, get_key_list(r), seq, shard);
    }
    case WireType::kSnapAck: {
      OpId op = r.u64();
      std::uint32_t seq = r.u32();
      std::uint8_t held = r.u8();
      if (held > 1) throw CodecError("wire: bad held marker");
      std::vector<SnapEntry> entries = get_snap_entries(r);
      ChangeSetPtr cs = get_changes_ptr(r);
      return make_msg<SnapAck>(op, std::move(entries), std::move(cs), seq,
                               held == 1);
    }
    case WireType::kSnapFreeze: {
      OpId op = r.u64();
      std::uint32_t seq = r.u32();
      ShardId shard = r.u32();
      SnapId snap = r.u64();
      return make_msg<SnapFreeze>(op, snap, get_key_list(r), seq, shard);
    }
    case WireType::kSnapRelease: {
      OpId op = r.u64();
      std::uint32_t seq = r.u32();
      ShardId shard = r.u32();
      SnapId snap = r.u64();
      return make_msg<SnapRelease>(op, snap, get_snap_entries(r), seq, shard);
    }
  }
  throw CodecError("wire: unknown type tag");
}

std::optional<WireType> type_tag(const Message& msg) {
  if (msg_cast<ReadReq>(msg)) return WireType::kReadReq;
  if (msg_cast<ReadAck>(msg)) return WireType::kReadAck;
  if (msg_cast<WriteReq>(msg)) return WireType::kWriteReq;
  if (msg_cast<WriteAck>(msg)) return WireType::kWriteAck;
  if (msg_cast<KeysReq>(msg)) return WireType::kKeysReq;
  if (msg_cast<KeysAck>(msg)) return WireType::kKeysAck;
  if (msg_cast<BatchRequest>(msg)) return WireType::kBatchRequest;
  if (msg_cast<BatchReply>(msg)) return WireType::kBatchReply;
  if (msg_cast<RcReq>(msg)) return WireType::kRcReq;
  if (msg_cast<RcAck>(msg)) return WireType::kRcAck;
  if (msg_cast<WcReq>(msg)) return WireType::kWcReq;
  if (msg_cast<WcAck>(msg)) return WireType::kWcAck;
  if (msg_cast<TransferMsg>(msg)) return WireType::kTransfer;
  if (msg_cast<TAck>(msg)) return WireType::kTAck;
  if (msg_cast<SyncMsg>(msg)) return WireType::kSync;
  if (msg_cast<RbMsg>(msg)) return WireType::kRb;
  if (msg_cast<PingMsg>(msg)) return WireType::kPing;
  if (msg_cast<PongMsg>(msg)) return WireType::kPong;
  if (msg_cast<RttReportMsg>(msg)) return WireType::kRttReport;
  if (msg_cast<MigFreeze>(msg)) return WireType::kMigFreeze;
  if (msg_cast<MigCommit>(msg)) return WireType::kMigCommit;
  if (msg_cast<WrongShardAck>(msg)) return WireType::kWrongShard;
  if (msg_cast<SnapReq>(msg)) return WireType::kSnapReq;
  if (msg_cast<SnapAck>(msg)) return WireType::kSnapAck;
  if (msg_cast<SnapFreeze>(msg)) return WireType::kSnapFreeze;
  if (msg_cast<SnapRelease>(msg)) return WireType::kSnapRelease;
  return std::nullopt;
}

/// Nested encoding: u8 tag + u32 body length + body.
template <typename W>
void put_message(W& w, const Message& msg, int depth) {
  if (depth + 1 > kMaxNestingDepth) {
    throw std::invalid_argument("WireCodec: message nesting too deep");
  }
  std::optional<WireType> type = type_tag(msg);
  if (!type) {
    throw std::invalid_argument("WireCodec: no wire mapping for message type " +
                                msg.type_name());
  }
  w.u8(static_cast<std::uint8_t>(*type));
  std::size_t len_at = w.size();
  w.u32(0);  // backfilled
  std::size_t body_at = w.size();
  put_body(w, msg, depth + 1);
  w.patch_u32(len_at, static_cast<std::uint32_t>(w.size() - body_at));
}

MsgPtr get_message(Reader& r, int depth) {
  if (depth + 1 > kMaxNestingDepth) {
    throw CodecError("wire: message nesting too deep");
  }
  std::uint8_t tag = r.u8();
  std::uint32_t len = r.u32();
  Reader body = r.slice(len);
  MsgPtr msg = get_body(body, static_cast<WireType>(tag), depth + 1);
  if (!body.done()) throw CodecError("wire: trailing bytes in nested message");
  return msg;
}

}  // namespace

std::vector<std::uint8_t> WireCodec::encode_frame(ProcessId from, ProcessId to,
                                                  const Message& msg) {
  std::optional<WireType> type = type_tag(msg);
  if (!type) {
    throw std::invalid_argument("WireCodec: no wire mapping for message type " +
                                msg.type_name());
  }
  Writer w;
  w.u32(0);  // body length, backfilled
  w.u8(kWireVersion);
  w.u8(static_cast<std::uint8_t>(*type));
  w.u32(from);
  w.u32(to);
  put_body(w, msg, /*depth=*/0);
  w.patch_u32(0, static_cast<std::uint32_t>(w.size() - 4));
  return std::move(w.out());
}

Segment WireCodec::encode_frame_arena(EncodeArena& arena, ProcessId from,
                                      ProcessId to, const Message& msg) {
  std::optional<WireType> type = type_tag(msg);
  if (!type) {
    throw std::invalid_argument("WireCodec: no wire mapping for message type " +
                                msg.type_name());
  }
  // First attempt encodes into whatever the current chunk has left
  // (plenty for any protocol frame); an overflow escalates the
  // reservation geometrically until the frame fits. The retry re-runs
  // the whole encode — overflows are rare enough that simplicity wins
  // over resumable state.
  std::size_t want = 0;
  for (;;) {
    std::uint8_t* base = arena.reserve(want);
    SpanWriter w(base, arena.writable());
    try {
      w.u32(0);  // body length, backfilled
      w.u8(kWireVersion);
      w.u8(static_cast<std::uint8_t>(*type));
      w.u32(from);
      w.u32(to);
      put_body(w, msg, /*depth=*/0);
      w.patch_u32(0, static_cast<std::uint32_t>(w.size() - 4));
      return arena.commit(w.size());
    } catch (const ArenaFull&) {
      want = want == 0 ? kArenaChunkBytes : want * 2;
    }
  }
}

std::optional<DecodedFrame> WireCodec::decode_frame(const std::uint8_t* body,
                                                    std::size_t len) {
  try {
    Reader r(body, len);
    std::uint8_t version = r.u8();
    if (version != kWireVersion) return std::nullopt;
    std::uint8_t tag = r.u8();
    DecodedFrame frame;
    frame.from = r.u32();
    frame.to = r.u32();
    frame.msg = get_body(r, static_cast<WireType>(tag), /*depth=*/0);
    if (!r.done()) return std::nullopt;  // trailing garbage
    return frame;
  } catch (const std::exception&) {
    // CodecError, plus anything the reconstructed domain types throw on
    // invalid states (denormal Rational, duplicate change id, ...).
    return std::nullopt;
  }
}

bool WireCodec::encodable(const Message& msg) {
  return type_tag(msg).has_value();
}

std::optional<WireType> WireCodec::wire_type_of(const Message& msg) {
  return type_tag(msg);
}

}  // namespace wrs::net
