#ifdef __linux__

#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "net/wire_format.h"

namespace wrs::net {
namespace {

// epoll user-data ids below the first connection id are reserved
// (next_conn_id_ starts at 16 so conn ids never collide with these).
constexpr std::uint64_t kWakeId = 0;
constexpr std::uint64_t kListenId = 1;

constexpr TimeNs kDialBackoffMin = ms(20);
constexpr TimeNs kDialBackoffMax = ms(500);

/// Frames a disconnected peer may queue before new ones are dropped
/// (the bound a real network's socket buffers would impose).
constexpr std::size_t kMaxPendingFrames = 8192;

/// Segments per scatter-gather sendmsg() burst.
constexpr std::size_t kMaxIov = 64;

int make_socket(const SocketAddr& addr) {
  int domain = addr.kind == SocketAddr::Kind::kUnix ? AF_UNIX : AF_INET;
  int fd = ::socket(domain, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket(): ") + std::strerror(errno));
  }
  if (addr.kind == SocketAddr::Kind::kTcp) {
    int one = 1;
    // Protocol frames are small and latency-sensitive.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

/// Fills a sockaddr for `addr`; returns its length.
socklen_t fill_sockaddr(const SocketAddr& addr, sockaddr_storage* out) {
  std::memset(out, 0, sizeof(*out));
  if (addr.kind == SocketAddr::Kind::kUnix) {
    auto* sun = reinterpret_cast<sockaddr_un*>(out);
    sun->sun_family = AF_UNIX;
    std::strncpy(sun->sun_path, addr.path.c_str(), sizeof(sun->sun_path) - 1);
    return sizeof(sockaddr_un);
  }
  auto* sin = reinterpret_cast<sockaddr_in*>(out);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(addr.port);
  if (::inet_pton(AF_INET, addr.host.c_str(), &sin->sin_addr) != 1) {
    throw std::runtime_error("SocketTransport: bad IPv4 host \"" + addr.host +
                             "\"");
  }
  return sizeof(sockaddr_in);
}

}  // namespace

SocketTransport::SocketTransport() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw std::runtime_error(std::string("epoll_create1: ") +
                             std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    throw std::runtime_error(std::string("eventfd: ") + std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
}

SocketTransport::~SocketTransport() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
}

void SocketTransport::set_events(Events events) { events_ = std::move(events); }

void SocketTransport::listen(const SocketAddr& addr) {
  if (listen_fd_ >= 0) {
    throw std::logic_error("SocketTransport: listen() called twice");
  }
  int fd = make_socket(addr);
  if (addr.kind == SocketAddr::Kind::kTcp) {
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  } else {
    // A previous process's stale socket file blocks bind.
    ::unlink(addr.path.c_str());
  }
  sockaddr_storage ss;
  socklen_t len = fill_sockaddr(addr, &ss);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&ss), len) != 0) {
    int err = errno;
    ::close(fd);
    throw std::runtime_error("SocketTransport: bind(" + addr.str() +
                             "): " + std::strerror(err));
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    int err = errno;
    ::close(fd);
    throw std::runtime_error("SocketTransport: listen(" + addr.str() +
                             "): " + std::strerror(err));
  }
  SocketAddr actual = addr;
  if (addr.kind == SocketAddr::Kind::kTcp) {
    sockaddr_in sin{};
    socklen_t sl = sizeof(sin);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sin), &sl) == 0) {
      actual.port = ntohs(sin.sin_port);
    }
  } else {
    unix_path_ = addr.path;
  }
  listen_fd_ = fd;
  listen_addr_ = actual;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
}

std::optional<SocketAddr> SocketTransport::listen_addr() const {
  return listen_addr_;
}

void SocketTransport::start() {
  if (running_.load()) return;
  stopping_.store(false);
  running_.store(true);
  loop_thread_ = std::thread([this] { loop(); });
}

void SocketTransport::stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  running_.store(false);
  // Abrupt teardown: no goodbye protocol, exactly like a killed process.
  for (auto& [id, conn] : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  conns_.clear();
  std::lock_guard lock(intern_mu_);
  peers_.clear();
  peer_index_.clear();
}

// --- thread-safe entry points ----------------------------------------------

SocketTransport::PeerId SocketTransport::intern_peer(const SocketAddr& addr) {
  std::string key = addr.str();
  std::lock_guard lock(intern_mu_);
  auto [it, inserted] = peer_index_.try_emplace(std::move(key), 0);
  if (inserted) {
    it->second = static_cast<PeerId>(peers_.size());
    auto p = std::make_unique<Peer>();
    p->addr = addr;
    peers_.push_back(std::move(p));
  }
  return it->second;
}

SocketTransport::Peer* SocketTransport::peer(PeerId id) {
  std::lock_guard lock(intern_mu_);
  return id < peers_.size() ? peers_[id].get() : nullptr;
}

void SocketTransport::post_cmd(Cmd cmd) {
  {
    std::lock_guard lock(cmd_mu_);
    commands_.push(std::move(cmd));
  }
  wake();
}

void SocketTransport::send_to_peer(PeerId peer_id, Segment frame) {
  if (std::this_thread::get_id() == loop_thread_.get_id()) {
    do_send_to_peer(peer_id, std::move(frame));
    return;
  }
  Cmd cmd;
  cmd.kind = Cmd::Kind::kSendPeer;
  cmd.peer = peer_id;
  cmd.seg = std::move(frame);
  post_cmd(std::move(cmd));
}

void SocketTransport::send_on_conn(ConnId conn, Segment frame) {
  if (std::this_thread::get_id() == loop_thread_.get_id()) {
    do_send_on_conn(conn, std::move(frame));
    return;
  }
  Cmd cmd;
  cmd.kind = Cmd::Kind::kSendConn;
  cmd.conn = conn;
  cmd.seg = std::move(frame);
  post_cmd(std::move(cmd));
}

void SocketTransport::close_peer(PeerId peer_id) {
  Cmd cmd;
  cmd.kind = Cmd::Kind::kClosePeer;
  cmd.peer = peer_id;
  post_cmd(std::move(cmd));
}

void SocketTransport::close_conn(ConnId conn) {
  Cmd cmd;
  cmd.kind = Cmd::Kind::kCloseConn;
  cmd.conn = conn;
  post_cmd(std::move(cmd));
}

void SocketTransport::post(wrs::Task fn) {
  Cmd cmd;
  cmd.kind = Cmd::Kind::kTask;
  cmd.fn = std::move(fn);
  post_cmd(std::move(cmd));
}

void SocketTransport::schedule_after(TimeNs delay, std::uint64_t token,
                                     wrs::Task fn) {
  if (delay < 0) delay = 0;
  TimeNs at = mono_now() + delay;
  if (std::this_thread::get_id() == loop_thread_.get_id()) {
    timers_.push(TimerItem{at, timer_seq_++, token, std::move(fn)});
    return;
  }
  Cmd cmd;
  cmd.kind = Cmd::Kind::kTimer;
  cmd.at = at;
  cmd.token = token;
  cmd.fn = std::move(fn);
  post_cmd(std::move(cmd));
}

void SocketTransport::wake() {
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

TimeNs SocketTransport::mono_now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- loop -------------------------------------------------------------------

void SocketTransport::loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    drain_commands();
    TimeNs now = mono_now();
    run_due_timers(now);

    // Sleep until the next timer (ns precision — the M/D/1 service-time
    // model schedules in the ~100us range) or the next io/wake event.
    timespec ts{};
    timespec* tsp = nullptr;
    bool more_cmds;
    {
      std::lock_guard lock(cmd_mu_);
      more_cmds = !commands_.empty();
    }
    if (more_cmds) {
      ts.tv_sec = 0;
      ts.tv_nsec = 0;
      tsp = &ts;
    } else if (!timers_.empty()) {
      TimeNs delta = timers_.top().at - mono_now();
      if (delta < 0) delta = 0;
      ts.tv_sec = delta / kNsPerSec;
      ts.tv_nsec = delta % kNsPerSec;
      tsp = &ts;
    }
    int n = ::epoll_pwait2(epoll_fd_, events, kMaxEvents, tsp, nullptr);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone — shutting down
    }
    for (int i = 0; i < n; ++i) {
      std::uint64_t id = events[i].data.u64;
      std::uint32_t mask = events[i].events;
      if (id == kWakeId) {
        std::uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (id == kListenId) {
        accept_ready();
        continue;
      }
      Conn* conn = find_conn(id);
      if (conn == nullptr) continue;  // closed earlier this batch
      if (conn->connecting) {
        if (mask & (EPOLLOUT | EPOLLERR | EPOLLHUP)) on_connect_ready(*conn);
        continue;
      }
      if (mask & (EPOLLERR | EPOLLHUP)) {
        close_conn_internal(id, /*notify=*/true);
        continue;
      }
      if (mask & EPOLLIN) {
        read_ready(*conn);
        if (find_conn(id) == nullptr) continue;
      }
      if (mask & EPOLLOUT) write_ready(*conn);
    }
  }
}

void SocketTransport::drain_commands() {
  {
    std::lock_guard lock(cmd_mu_);
    commands_.swap(drain_);  // O(1); both buffers stay warm forever
  }
  while (!drain_.empty()) dispatch(drain_.pop());
}

void SocketTransport::dispatch(Cmd cmd) {
  switch (cmd.kind) {
    case Cmd::Kind::kNone:
      break;
    case Cmd::Kind::kTask:
      cmd.fn();
      break;
    case Cmd::Kind::kTimer:
      timers_.push(TimerItem{cmd.at, timer_seq_++, cmd.token,
                             std::move(cmd.fn)});
      break;
    case Cmd::Kind::kSendPeer:
      do_send_to_peer(cmd.peer, std::move(cmd.seg));
      break;
    case Cmd::Kind::kSendConn:
      do_send_on_conn(cmd.conn, std::move(cmd.seg));
      break;
    case Cmd::Kind::kClosePeer:
      do_close_peer(cmd.peer);
      break;
    case Cmd::Kind::kCloseConn:
      close_conn_internal(cmd.conn, /*notify=*/true);
      break;
  }
}

void SocketTransport::run_due_timers(TimeNs now) {
  while (!timers_.empty() && timers_.top().at <= now) {
    TimerItem item = std::move(const_cast<TimerItem&>(timers_.top()));
    timers_.pop();
    if (item.token == 0 || !events_.timer_gate ||
        events_.timer_gate(item.token)) {
      item.fn();
    }
  }
}

SocketTransport::Conn* SocketTransport::find_conn(ConnId id) {
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : it->second.get();
}

// --- outbound path ----------------------------------------------------------

void SocketTransport::do_send_to_peer(PeerId id, Segment frame) {
  Peer* p = peer(id);
  if (p == nullptr) {
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (p->conn != kNoConn) {
    Conn* conn = find_conn(p->conn);
    if (conn != nullptr && !conn->connecting) {
      enqueue_frame(*conn, std::move(frame));
      return;
    }
  }
  // Not (yet) connected: queue, bounded like a real socket buffer.
  if (p->pending.size() >= kMaxPendingFrames) {
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  p->pending.push(std::move(frame));
  if (p->conn == kNoConn && !p->dial_timer_armed) dial(*p, id);
}

void SocketTransport::do_send_on_conn(ConnId conn_id, Segment frame) {
  Conn* conn = find_conn(conn_id);
  if (conn == nullptr || conn->connecting) {
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  enqueue_frame(*conn, std::move(frame));
}

void SocketTransport::do_close_peer(PeerId id) {
  Peer* p = peer(id);
  if (p == nullptr) return;
  ConnId conn = p->conn;
  p->conn = kNoConn;
  p->pending.clear();
  p->backoff = 0;
  if (conn != kNoConn) close_conn_internal(conn, /*notify=*/true);
}

void SocketTransport::dial(Peer& p, PeerId id) {
  int fd = -1;
  try {
    fd = make_socket(p.addr);
  } catch (const std::exception&) {
    dials_failed_.fetch_add(1, std::memory_order_relaxed);
    arm_redial(id);
    return;
  }
  sockaddr_storage ss;
  socklen_t len = fill_sockaddr(p.addr, &ss);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&ss), len);
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    dials_failed_.fetch_add(1, std::memory_order_relaxed);
    arm_redial(id);
    return;
  }
  auto conn = std::make_unique<Conn>();
  conn->id = next_conn_id_++;
  conn->fd = fd;
  conn->connecting = (rc != 0);
  conn->peer = id;
  p.conn = conn->id;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;  // EPOLLOUT signals connect completion
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  Conn& ref = *conn;
  conns_[conn->id] = std::move(conn);
  if (!ref.connecting) on_connect_ready(ref);
}

void SocketTransport::arm_redial(PeerId id) {
  Peer* p = peer(id);
  if (p == nullptr || p->dial_timer_armed) return;
  p->backoff = p->backoff == 0 ? kDialBackoffMin
                               : std::min(p->backoff * 2, kDialBackoffMax);
  p->dial_timer_armed = true;
  schedule_after(p->backoff, [this, id] {
    Peer* p2 = peer(id);
    if (p2 == nullptr) return;
    p2->dial_timer_armed = false;
    if (p2->conn == kNoConn && !p2->pending.empty()) dial(*p2, id);
  });
}

void SocketTransport::on_connect_ready(Conn& conn) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (conn.connecting) {
    ::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
  }
  PeerId id = conn.peer;
  if (err != 0) {
    dials_failed_.fetch_add(1, std::memory_order_relaxed);
    close_conn_internal(conn.id, /*notify=*/false);
    arm_redial(id);
    return;
  }
  conn.connecting = false;
  conns_opened_.fetch_add(1, std::memory_order_relaxed);
  Peer* p = peer(id);
  if (p != nullptr) {
    p->backoff = 0;
    while (!p->pending.empty()) conn.wq.push(p->pending.pop());
  }
  if (!flush_writes(conn)) return;
  update_epoll(conn);
}

// --- inbound path -----------------------------------------------------------

void SocketTransport::accept_ready() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error
    if (listen_addr_ && listen_addr_->kind == SocketAddr::Kind::kTcp) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conns_opened_.fetch_add(1, std::memory_order_relaxed);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conns_[conn->id] = std::move(conn);
  }
}

void SocketTransport::read_ready(Conn& conn) {
  std::uint8_t chunk[64 * 1024];
  while (true) {
    ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn.rbuf.insert(conn.rbuf.end(), chunk, chunk + n);
      if (static_cast<std::size_t>(n) < sizeof(chunk)) break;
      continue;
    }
    if (n == 0) {  // EOF
      close_conn_internal(conn.id, /*notify=*/true);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_conn_internal(conn.id, /*notify=*/true);
    return;
  }
  parse_frames(conn);
}

void SocketTransport::parse_frames(Conn& conn) {
  ConnId id = conn.id;
  while (true) {
    std::size_t avail = conn.rbuf.size() - conn.rpos;
    if (avail < 4) break;
    const std::uint8_t* p = conn.rbuf.data() + conn.rpos;
    std::uint32_t body_len = 0;
    for (int i = 0; i < 4; ++i) body_len |= std::uint32_t{p[i]} << (8 * i);
    if (body_len > kMaxFrameBodyBytes) {
      // An absurd length prefix means the stream is garbage (or hostile);
      // there is no way to resynchronize a length-prefixed stream.
      oversize_frames_.fetch_add(1, std::memory_order_relaxed);
      close_conn_internal(id, /*notify=*/true);
      return;
    }
    if (avail < 4 + static_cast<std::size_t>(body_len)) break;
    conn.rpos += 4 + body_len;
    if (events_.on_frame) events_.on_frame(id, p + 4, body_len);
    // The callback may have closed this very connection.
    if (find_conn(id) == nullptr) return;
  }
  // Compact once the parsed prefix dominates the buffer.
  if (conn.rpos > 0 && (conn.rpos >= conn.rbuf.size() ||
                        conn.rpos > (64u << 10))) {
    conn.rbuf.erase(conn.rbuf.begin(),
                    conn.rbuf.begin() + static_cast<std::ptrdiff_t>(conn.rpos));
    conn.rpos = 0;
  }
}

// --- write path -------------------------------------------------------------

void SocketTransport::enqueue_frame(Conn& conn, Segment frame) {
  if (conn.wq.size() >= kMaxPendingFrames) {
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  conn.wq.push(std::move(frame));
  if (!flush_writes(conn)) return;
  update_epoll(conn);
}

void SocketTransport::write_ready(Conn& conn) {
  if (!flush_writes(conn)) return;
  update_epoll(conn);
}

bool SocketTransport::flush_writes(Conn& conn) {
  while (!conn.wq.empty()) {
    // Scatter-gather straight from the queued segments: no coalescing
    // copy, one syscall per burst of up to kMaxIov frames.
    iovec iov[kMaxIov];
    std::size_t nseg = std::min(conn.wq.size(), kMaxIov);
    for (std::size_t i = 0; i < nseg; ++i) {
      const Segment& s = conn.wq[i];
      std::size_t skip = i == 0 ? conn.woff : 0;
      iov[i].iov_base =
          const_cast<std::uint8_t*>(s.data()) + skip;
      iov[i].iov_len = s.size() - skip;
    }
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = nseg;
    ssize_t n = ::sendmsg(conn.fd, &mh, MSG_NOSIGNAL);
    if (n > 0) {
      std::size_t left = static_cast<std::size_t>(n);
      while (left > 0) {
        std::size_t rem = conn.wq[0].size() - conn.woff;
        if (left >= rem) {
          left -= rem;
          conn.wq.pop();
          conn.woff = 0;
        } else {
          conn.woff += left;
          left = 0;
        }
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_conn_internal(conn.id, /*notify=*/true);
    return false;
  }
  return true;
}

void SocketTransport::update_epoll(Conn& conn) {
  bool want_write = conn.connecting || !conn.wq.empty();
  if (want_write == conn.want_write) return;
  conn.want_write = want_write;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

// --- teardown ---------------------------------------------------------------

void SocketTransport::close_conn_internal(ConnId id, bool notify) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn* conn = it->second.get();
  if (!conn->wq.empty()) {
    frames_dropped_.fetch_add(conn->wq.size(), std::memory_order_relaxed);
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  PeerId peer_id = conn->peer;
  conns_.erase(it);
  conns_closed_.fetch_add(1, std::memory_order_relaxed);
  if (peer_id != kNoPeer) {
    Peer* p = peer(peer_id);
    if (p != nullptr && p->conn == id) {
      p->conn = kNoConn;
      // Frames queued while we believed the connection healthy are lost
      // (like in-flight packets of a real dropped connection); anything
      // still pending redials with backoff.
      if (!p->pending.empty()) arm_redial(peer_id);
    }
  }
  if (notify && events_.on_conn_closed) events_.on_conn_closed(id);
}

}  // namespace wrs::net

#endif  // __linux__
