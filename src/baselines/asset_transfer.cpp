#include "baselines/asset_transfer.h"

#include <stdexcept>
#include "runtime/msg_pool.h"

namespace wrs {

AssetTransferNode::AssetTransferNode(Env& env, ProcessId self,
                                     const SystemConfig& config)
    : env_(env),
      self_(self),
      config_(config),
      rb_(env, self, [this](ProcessId, const Message& payload) {
        const auto* m = msg_cast<AssetMsg>(payload);
        if (m != nullptr) apply(m->rec());
      }) {
  // Initial balances mirror the initial weights (so EXP-X1 runs the same
  // workload on both services).
  for (const auto& [s, w] : config.initial_weights.entries()) {
    balances_[s] = w;
  }
}

Weight AssetTransferNode::balance_of(ProcessId account) const {
  auto it = balances_.find(account);
  return it == balances_.end() ? Weight(0) : it->second;
}

Weight AssetTransferNode::total() const {
  Weight sum(0);
  for (const auto& [_, b] : balances_) sum += b;
  return sum;
}

void AssetTransferNode::transfer(ProcessId dst, const Weight& amount,
                                 Callback cb) {
  if (pending_.has_value()) {
    throw std::logic_error("AssetTransferNode: transfer already in flight");
  }
  if (!amount.is_positive()) {
    throw std::invalid_argument("AssetTransferNode: amount must be > 0");
  }
  std::uint64_t serial = next_serial_++;
  // 1-asset-transfer validity: the balance may reach exactly zero —
  // contrast with the strict floor of RP-Integrity.
  if (balance() - amount < Weight(0)) {
    AssetOutcome out;
    out.accepted = false;
    out.serial = serial;
    cb(out);
    return;
  }
  AssetTransferRecord rec;
  rec.src = self_;
  rec.dst = dst;
  rec.serial = serial;
  rec.amount = amount;
  apply(rec);  // local apply; RB will dedup our own delivery
  Pending p;
  p.serial = serial;
  p.cb = std::move(cb);
  pending_ = std::move(p);
  rb_.broadcast(make_msg<AssetMsg>(rec));
}

void AssetTransferNode::apply(const AssetTransferRecord& rec) {
  auto key = std::make_pair(rec.src, rec.serial);
  if (!applied_.insert(key).second) return;
  balances_[rec.src] -= rec.amount;
  balances_[rec.dst] += rec.amount;
  if (rec.src != self_) {
    env_.send(self_, rec.src, make_msg<AssetAck>(rec.src,
                                                         rec.serial));
  }
}

void AssetTransferNode::on_message(ProcessId from, const Message& msg) {
  if (rb_.handle(from, msg)) return;
  if (const auto* ack = msg_cast<AssetAck>(msg)) {
    if (pending_.has_value() && pending_->serial == ack->serial() &&
        from != self_) {
      pending_->acks.insert(from);
      if (pending_->acks.size() >= config_.n - config_.f - 1) {
        AssetOutcome out;
        out.accepted = true;
        out.serial = pending_->serial;
        auto cb = std::move(pending_->cb);
        pending_.reset();
        cb(out);
      }
    }
    return;
  }
}

}  // namespace wrs
