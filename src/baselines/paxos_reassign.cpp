#include "baselines/paxos_reassign.h"

#include <sstream>

namespace wrs {

PaxosReassignNode::PaxosReassignNode(Env& env, ProcessId self,
                                     const SystemConfig& config,
                                     std::uint64_t seed)
    : env_(env),
      self_(self),
      config_(config),
      weights_(config.initial_weights),
      paxos_(
          env, self, config.n, config.f,
          [this](InstanceId i, const PaxosValue& v) { on_decide(i, v); },
          seed) {}

std::string PaxosReassignNode::encode(ProcessId issuer, std::uint64_t serial,
                                      ProcessId src, ProcessId dst,
                                      const Weight& delta) {
  std::ostringstream os;
  os << issuer << ":" << serial << ":" << src << ":" << dst << ":"
     << delta.num() << "/" << delta.den();
  return os.str();
}

void PaxosReassignNode::transfer(ProcessId dst, const Weight& delta,
                                 TransferCallback cb) {
  PendingSubmit p;
  p.encoded = encode(self_, serial_++, self_, dst, delta);
  p.cb = std::move(cb);
  queue_.push_back(std::move(p));
  propose_pending();
}

void PaxosReassignNode::propose_pending() {
  if (proposing_ || queue_.empty()) return;
  proposing_ = true;
  paxos_.propose(next_propose_, queue_.front().encoded);
}

void PaxosReassignNode::on_decide(InstanceId instance,
                                  const PaxosValue& value) {
  decided_log_[instance] = value;
  if (instance >= next_propose_) next_propose_ = instance + 1;
  try_apply();
  // If our front submission was NOT the decided value, re-propose it at
  // the next free instance.
  if (proposing_ && !queue_.empty()) {
    if (value == queue_.front().encoded) {
      // Applied (or will be in try_apply); completion handled there.
    } else {
      proposing_ = false;
      propose_pending();
    }
  }
}

void PaxosReassignNode::try_apply() {
  while (true) {
    auto it = decided_log_.find(next_apply_);
    if (it == decided_log_.end()) return;
    const PaxosValue& v = it->second;

    // Decode issuer:serial:src:dst:num/den.
    std::istringstream is(v);
    std::uint64_t issuer = 0, serial = 0, src = 0, dst = 0;
    std::int64_t num = 0, den = 1;
    char sep = 0;
    is >> issuer >> sep >> serial >> sep >> src >> sep >> dst >> sep >> num >>
        sep >> den;
    Weight delta(num, den);

    // Deterministic validation: apply iff the source stays above the
    // floor (all replicas reach the same verdict in instance order).
    bool effective = false;
    Weight src_w = weights_.of(static_cast<ProcessId>(src));
    if (delta.is_positive() && src_w - delta > config_.floor()) {
      weights_.set(static_cast<ProcessId>(src), src_w - delta);
      weights_.set(static_cast<ProcessId>(dst),
                   weights_.of(static_cast<ProcessId>(dst)) + delta);
      effective = true;
    }

    // Completion for our own submission.
    if (!queue_.empty() && v == queue_.front().encoded) {
      PaxosTransferOutcome out;
      out.effective = effective;
      out.instance = next_apply_;
      auto cb = std::move(queue_.front().cb);
      queue_.pop_front();
      proposing_ = false;
      cb(out);
      propose_pending();
    }
    ++next_apply_;
  }
}

void PaxosReassignNode::on_message(ProcessId from, const Message& msg) {
  paxos_.handle(from, msg);
}

}  // namespace wrs
