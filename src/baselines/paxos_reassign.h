// Consensus-based weight reassignment — the approach the paper's related
// work takes in partially synchronous systems (AWARE [10], WHEAT [20],
// dynamic voting [22][28]).
//
// Every transfer is sequenced through a Paxos instance; all servers apply
// decided transfers in instance order against the replicated weight
// state, validating Integrity deterministically at application time.
// Strictly stronger than the restricted pairwise problem (any process
// may move any server's weight; no per-server floor is needed beyond
// Property 1) — but liveness now needs partial synchrony: EXP-C1 measures
// the stall under crash/asynchrony that the consensus-free protocol
// avoids.
#pragma once

#include <deque>
#include <functional>
#include <map>

#include "consensus/paxos.h"
#include "core/config.h"
#include "quorum/wmqs.h"
#include "runtime/env.h"

namespace wrs {

struct PaxosTransferOutcome {
  bool effective = false;
  InstanceId instance = 0;
};

class PaxosReassignNode : public Process {
 public:
  using TransferCallback = std::function<void(const PaxosTransferOutcome&)>;

  PaxosReassignNode(Env& env, ProcessId self, const SystemConfig& config,
                    std::uint64_t seed = 11);

  /// Submits transfer(src=self, dst, delta); completes once the transfer
  /// has been sequenced AND applied on this node.
  void transfer(ProcessId dst, const Weight& delta, TransferCallback cb);

  void on_message(ProcessId from, const Message& msg) override;

  const WeightMap& weights() const { return weights_; }
  InstanceId applied_up_to() const { return next_apply_; }

  void set_retry_timeout(TimeNs t) { paxos_.set_retry_timeout(t); }

 private:
  struct PendingSubmit {
    std::string encoded;
    TransferCallback cb;
  };

  void on_decide(InstanceId instance, const PaxosValue& value);
  void try_apply();
  void propose_pending();

  static std::string encode(ProcessId issuer, std::uint64_t serial,
                            ProcessId src, ProcessId dst,
                            const Weight& delta);

  Env& env_;
  ProcessId self_;
  SystemConfig config_;
  WeightMap weights_;
  PaxosNode paxos_;

  std::map<InstanceId, PaxosValue> decided_log_;
  InstanceId next_apply_ = 0;
  InstanceId next_propose_ = 0;

  std::deque<PendingSubmit> queue_;
  bool proposing_ = false;
  std::uint64_t serial_ = 0;
};

}  // namespace wrs
