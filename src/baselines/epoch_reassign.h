// Epoch-based consensus-free weight reassignment — a model of the
// protocol of Heydari et al. [11] ("Efficient consensus-free weight
// reassignment for atomic storage", NCA 2021), built as the comparison
// baseline for EXP-E1.
//
// Modeled behaviour (as characterized in Section VIII of the paper):
//  * Requests issued during epoch e are BATCHED and take effect only at
//    the boundary of epoch e+1 — application delay is dominated by the
//    epoch length, which must be tuned.
//  * Weight DECREASES always apply. Weight INCREASES are applied only
//    when no other server's increase competes in the same epoch —
//    without consensus the servers cannot agree which of two competing
//    increases is safe, so the protocol conservatively drops both. Every
//    dropped increase leaks voting power: the total weight of the system
//    decays below W_{S,0} as the system progresses (the criticism quoted
//    in Section VIII).
//
// This is explicitly a *model* capturing the two properties the paper
// compares against, not a re-implementation of [11]'s full protocol.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "broadcast/reliable_broadcast.h"
#include "core/config.h"
#include "runtime/env.h"

namespace wrs {

/// A pairwise reassignment request: move `delta` from `src` to `dst`.
struct EpochRequest {
  std::uint64_t epoch = 0;
  ProcessId issuer = kNoProcess;
  ProcessId src = kNoProcess;
  ProcessId dst = kNoProcess;
  Weight delta;
  TimeNs issued_at = 0;

  friend bool operator<(const EpochRequest& a, const EpochRequest& b) {
    if (a.epoch != b.epoch) return a.epoch < b.epoch;
    if (a.issuer != b.issuer) return a.issuer < b.issuer;
    return a.src < b.src;
  }
};

class EpochReqMsg : public MessageBase<EpochReqMsg> {
 public:
  explicit EpochReqMsg(EpochRequest req) : req_(std::move(req)) {}
  const EpochRequest& req() const { return req_; }
  std::string type_name() const override { return "EPOCH_REQ"; }
  std::size_t wire_size() const override { return kHeaderBytes + 44; }

 private:
  EpochRequest req_;
};

class EpochReassignNode : public Process {
 public:
  /// `applied_cb(request, applied_delta, now)` fires when this node
  /// applies a request at an epoch boundary (applied_delta may be zero on
  /// the increase side when the increase was dropped).
  using AppliedCallback =
      std::function<void(const EpochRequest&, const Weight&, TimeNs)>;

  EpochReassignNode(Env& env, ProcessId self, const SystemConfig& config,
                    TimeNs epoch_length);

  void on_start() override;
  void on_message(ProcessId from, const Message& msg) override;

  /// Requests moving `delta` of this node's weight to `dst`; takes effect
  /// at the next epoch boundary (at the earliest).
  void request_transfer(ProcessId dst, const Weight& delta);

  void set_applied_callback(AppliedCallback cb) { applied_cb_ = std::move(cb); }

  const WeightMap& weights() const { return weights_; }
  Weight total_weight() const { return weights_.total(); }
  std::uint64_t current_epoch() const { return epoch_; }
  std::uint64_t dropped_increases() const { return dropped_increases_; }

 private:
  void on_epoch_boundary();
  void apply_epoch(std::uint64_t closing_epoch);

  Env& env_;
  ProcessId self_;
  SystemConfig config_;
  TimeNs epoch_length_;
  std::uint64_t epoch_ = 0;
  WeightMap weights_;
  ReliableBroadcast rb_;
  std::map<std::uint64_t, std::vector<EpochRequest>> pending_;  // by epoch
  AppliedCallback applied_cb_;
  std::uint64_t dropped_increases_ = 0;
};

}  // namespace wrs
