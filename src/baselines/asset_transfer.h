// 1-asset transfer (Guerraoui et al., PODC 2019 [12]) — the problem the
// restricted pairwise weight reassignment is inspired by.
//
// Each server owns exactly one account; only the owner may spend from it;
// a transfer is valid iff the source balance stays NON-NEGATIVE. The
// consensus number of this restricted problem is 1, so the same
// broadcast-based skeleton as Algorithm 4 implements it asynchronously.
//
// The structural difference from weight reassignment (Section VIII):
// there is no Integrity-style condition on the *distribution* of assets —
// a balance may drop all the way to zero, whereas a server's weight must
// stay strictly above W_{S,0}/(2(n-f)). EXP-X1 runs the same workload on
// both services and shows the acceptance sets differ exactly on the
// transfers that would cross the floor.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "broadcast/reliable_broadcast.h"
#include "core/config.h"
#include "runtime/env.h"

namespace wrs {

struct AssetTransferRecord {
  ProcessId src = kNoProcess;
  ProcessId dst = kNoProcess;
  std::uint64_t serial = 0;  // per-source sequence number
  Weight amount;
};

class AssetMsg : public MessageBase<AssetMsg> {
 public:
  explicit AssetMsg(AssetTransferRecord rec) : rec_(std::move(rec)) {}
  const AssetTransferRecord& rec() const { return rec_; }
  std::string type_name() const override { return "ASSET_T"; }
  std::size_t wire_size() const override { return kHeaderBytes + 36; }

 private:
  AssetTransferRecord rec_;
};

class AssetAck : public MessageBase<AssetAck> {
 public:
  AssetAck(ProcessId src, std::uint64_t serial) : src_(src), serial_(serial) {}
  ProcessId src() const { return src_; }
  std::uint64_t serial() const { return serial_; }
  std::string type_name() const override { return "ASSET_ACK"; }
  std::size_t wire_size() const override { return kHeaderBytes + 12; }

 private:
  ProcessId src_;
  std::uint64_t serial_;
};

struct AssetOutcome {
  bool accepted = false;  // false: would make the balance negative
  std::uint64_t serial = 0;
};

class AssetTransferNode : public Process {
 public:
  using Callback = std::function<void(const AssetOutcome&)>;

  AssetTransferNode(Env& env, ProcessId self, const SystemConfig& config);

  /// Transfers `amount` from this server's account to `dst`'s. Accepted
  /// iff balance - amount >= 0; completes after n-f-1 acks.
  void transfer(ProcessId dst, const Weight& amount, Callback cb);

  void on_message(ProcessId from, const Message& msg) override;

  /// This server's view of any account balance.
  Weight balance_of(ProcessId account) const;
  Weight balance() const { return balance_of(self_); }

  /// Total assets across accounts per the local view (conserved).
  Weight total() const;

 private:
  void apply(const AssetTransferRecord& rec);

  Env& env_;
  ProcessId self_;
  SystemConfig config_;
  std::map<ProcessId, Weight> balances_;
  ReliableBroadcast rb_;
  std::set<std::pair<ProcessId, std::uint64_t>> applied_;

  std::uint64_t next_serial_ = 1;
  struct Pending {
    std::uint64_t serial = 0;
    std::set<ProcessId> acks;
    Callback cb;
  };
  std::optional<Pending> pending_;
};

}  // namespace wrs
