#include "baselines/epoch_reassign.h"

#include <algorithm>
#include "runtime/msg_pool.h"

namespace wrs {

EpochReassignNode::EpochReassignNode(Env& env, ProcessId self,
                                     const SystemConfig& config,
                                     TimeNs epoch_length)
    : env_(env),
      self_(self),
      config_(config),
      epoch_length_(epoch_length),
      weights_(config.initial_weights),
      rb_(env, self, [this](ProcessId, const Message& payload) {
        const auto* m = msg_cast<EpochReqMsg>(payload);
        if (m == nullptr) return;
        pending_[m->req().epoch].push_back(m->req());
      }) {}

void EpochReassignNode::on_start() {
  env_.schedule(self_, epoch_length_, [this] { on_epoch_boundary(); });
}

void EpochReassignNode::on_message(ProcessId from, const Message& msg) {
  rb_.handle(from, msg);
}

void EpochReassignNode::request_transfer(ProcessId dst, const Weight& delta) {
  EpochRequest req;
  req.epoch = epoch_;
  req.issuer = self_;
  req.src = self_;
  req.dst = dst;
  req.delta = delta;
  req.issued_at = env_.now();
  rb_.broadcast(make_msg<EpochReqMsg>(req));
}

void EpochReassignNode::on_epoch_boundary() {
  std::uint64_t closing = epoch_;
  ++epoch_;
  // Small settle delay before applying, so late RB deliveries for the
  // closing epoch are included (models [11]'s quorum-collect step).
  env_.schedule(self_, epoch_length_ / 10,
                [this, closing] { apply_epoch(closing); });
  env_.schedule(self_, epoch_length_, [this] { on_epoch_boundary(); });
}

void EpochReassignNode::apply_epoch(std::uint64_t closing_epoch) {
  auto it = pending_.find(closing_epoch);
  if (it == pending_.end()) return;
  std::vector<EpochRequest> batch = std::move(it->second);
  pending_.erase(it);
  std::sort(batch.begin(), batch.end());

  // Count competing increases per epoch: more than one distinct
  // destination ==> all increases dropped (no consensus to order them).
  std::map<ProcessId, int> dst_count;
  for (const auto& req : batch) dst_count[req.dst]++;
  bool competing = dst_count.size() > 1;

  TimeNs now = env_.now();
  for (const auto& req : batch) {
    // Decrease side always applies (cannot endanger Integrity).
    Weight decrease = req.delta;
    Weight src_w = weights_.of(req.src);
    if (!(src_w - decrease > config_.floor())) {
      // Clamp to keep the source above the floor.
      decrease = src_w - config_.floor();
      if (decrease.is_negative() || decrease.is_zero()) {
        if (applied_cb_) applied_cb_(req, Weight(0), now);
        continue;
      }
    }
    weights_.set(req.src, src_w - decrease);
    if (competing) {
      // Increase dropped: voting power leaks out of the system.
      ++dropped_increases_;
      if (applied_cb_) applied_cb_(req, Weight(0), now);
    } else {
      weights_.set(req.dst, weights_.of(req.dst) + decrease);
      if (applied_cb_) applied_cb_(req, decrease, now);
    }
  }
}

}  // namespace wrs
