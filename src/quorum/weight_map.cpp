#include "quorum/weight_map.h"

#include <algorithm>
#include <sstream>

namespace wrs {

WeightMap::WeightMap(std::map<ProcessId, Weight> weights)
    : weights_(std::move(weights)) {}

WeightMap WeightMap::uniform(std::uint32_t n, Weight w) {
  std::map<ProcessId, Weight> m;
  for (std::uint32_t i = 0; i < n; ++i) m[i] = w;
  return WeightMap(std::move(m));
}

WeightMap WeightMap::shifted_by(ProcessId offset) const {
  std::map<ProcessId, Weight> m;
  for (const auto& [s, w] : weights_) m[s + offset] = w;
  return WeightMap(std::move(m));
}

Weight WeightMap::of(ProcessId server) const {
  auto it = weights_.find(server);
  return it == weights_.end() ? Weight(0) : it->second;
}

Weight WeightMap::total() const {
  Weight sum(0);
  for (const auto& [_, w] : weights_) sum += w;
  return sum;
}

Weight WeightMap::weight_of(const std::vector<ProcessId>& subset) const {
  Weight sum(0);
  for (ProcessId s : subset) sum += of(s);
  return sum;
}

std::vector<ProcessId> WeightMap::servers() const {
  std::vector<ProcessId> out;
  out.reserve(weights_.size());
  for (const auto& [s, _] : weights_) out.push_back(s);
  return out;
}

std::vector<std::pair<ProcessId, Weight>> WeightMap::sorted_desc() const {
  std::vector<std::pair<ProcessId, Weight>> v(weights_.begin(),
                                              weights_.end());
  std::stable_sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  return v;
}

std::string WeightMap::str() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [s, w] : weights_) {
    if (!first) os << ", ";
    first = false;
    os << process_name(s) << ":" << w.str();
  }
  os << "}";
  return os.str();
}

}  // namespace wrs
