// Server -> weight assignment.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/rational.h"
#include "common/types.h"

namespace wrs {

/// An immutable-by-convention assignment of voting weights to servers.
/// The quorum logic (Wmqs) and every protocol consume this type; the
/// reassignment protocol produces fresh ones from change sets.
class WeightMap {
 public:
  WeightMap() = default;
  explicit WeightMap(std::map<ProcessId, Weight> weights);

  /// n servers, all weight 1 — the regular majority quorum system.
  static WeightMap uniform(std::uint32_t n, Weight w = Weight(1));

  /// The same assignment with every server id shifted by `offset` —
  /// rebases a per-shard weight template (keyed 0..n-1) onto the global
  /// ids of shard g (keyed base..base+n-1).
  WeightMap shifted_by(ProcessId offset) const;

  void set(ProcessId server, Weight w) { weights_[server] = w; }
  Weight of(ProcessId server) const;
  bool contains(ProcessId server) const {
    return weights_.count(server) != 0;
  }

  std::size_t size() const { return weights_.size(); }
  Weight total() const;

  /// Weight of a subset of servers (ids not in the map contribute 0).
  Weight weight_of(const std::vector<ProcessId>& subset) const;

  std::vector<ProcessId> servers() const;
  const std::map<ProcessId, Weight>& entries() const { return weights_; }

  /// Weights sorted descending (for Property-1 checks and min-quorum).
  std::vector<std::pair<ProcessId, Weight>> sorted_desc() const;

  std::string str() const;

  friend bool operator==(const WeightMap& a, const WeightMap& b) {
    return a.weights_ == b.weights_;
  }

 private:
  std::map<ProcessId, Weight> weights_;
};

}  // namespace wrs
