// Weighted majority quorum system (Definition 1) and Property 1.
#pragma once

#include <optional>
#include <vector>

#include "quorum/weight_map.h"

namespace wrs {

/// The WMQS induced by a weight map: a set of servers Q is a quorum iff
/// W(Q) > W(S)/2. With uniform weights this degenerates to the regular
/// majority quorum system (MQS).
class Wmqs {
 public:
  explicit Wmqs(WeightMap weights);

  const WeightMap& weights() const { return weights_; }
  Weight total() const { return total_; }

  /// Definition 1: total weight of `subset` strictly above half the total.
  bool is_quorum(const std::vector<ProcessId>& subset) const;

  /// Quorum check against an explicit threshold total (Algorithm 5 checks
  /// against W_{S,0}/2, the *initial* total, which equals the current one
  /// under pairwise reassignment).
  bool is_quorum_against(const std::vector<ProcessId>& subset,
                         const Weight& total) const;

  /// Property 1: the f heaviest servers weigh strictly less than half the
  /// total. Guarantees a quorum of correct servers survives any f crashes.
  bool is_available(std::size_t f) const;

  /// Size of the smallest quorum (greedily take heaviest servers).
  std::size_t min_quorum_size() const;

  /// The smallest quorum itself (heaviest servers first).
  std::vector<ProcessId> smallest_quorum() const;

  /// Size of the largest *minimal* quorum (greedily take lightest servers
  /// until the majority tips) — the worst case a client may need.
  std::size_t max_minimal_quorum_size() const;

  /// Largest f such that Property 1 still holds (max tolerable crashes).
  std::size_t max_tolerable_f() const;

 private:
  WeightMap weights_;
  Weight total_;
};

/// RP-Integrity floor of Definition 5: W_{S,0} / (2(n-f)). Every server's
/// weight must stay strictly above this at all times.
Weight rp_integrity_floor(const Weight& initial_total, std::size_t n,
                          std::size_t f);

/// The paper's initial-weight scheme for the reductions (Algorithms 1-2):
/// servers s_0..s_{f-1} get (n-1)/(2f), the rest get (n+1)/(2(n-f)).
WeightMap reduction_initial_weights(std::uint32_t n, std::uint32_t f);

}  // namespace wrs
