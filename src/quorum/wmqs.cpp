#include "quorum/wmqs.h"

#include <stdexcept>

namespace wrs {

Wmqs::Wmqs(WeightMap weights)
    : weights_(std::move(weights)), total_(weights_.total()) {}

bool Wmqs::is_quorum(const std::vector<ProcessId>& subset) const {
  return is_quorum_against(subset, total_);
}

bool Wmqs::is_quorum_against(const std::vector<ProcessId>& subset,
                             const Weight& total) const {
  // W(Q) > total/2  <=>  2*W(Q) > total (exact rational arithmetic).
  return weights_.weight_of(subset) * Weight(2) > total;
}

bool Wmqs::is_available(std::size_t f) const {
  auto sorted = weights_.sorted_desc();
  if (f > sorted.size()) return false;
  Weight heaviest(0);
  for (std::size_t i = 0; i < f; ++i) heaviest += sorted[i].second;
  return heaviest * Weight(2) < total_;
}

std::size_t Wmqs::min_quorum_size() const { return smallest_quorum().size(); }

std::vector<ProcessId> Wmqs::smallest_quorum() const {
  auto sorted = weights_.sorted_desc();
  std::vector<ProcessId> q;
  Weight acc(0);
  for (const auto& [s, w] : sorted) {
    q.push_back(s);
    acc += w;
    if (acc * Weight(2) > total_) return q;
  }
  throw std::logic_error("Wmqs: no quorum exists (empty system?)");
}

std::size_t Wmqs::max_minimal_quorum_size() const {
  auto sorted = weights_.sorted_desc();
  Weight acc(0);
  std::size_t count = 0;
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    acc += it->second;
    ++count;
    if (acc * Weight(2) > total_) return count;
  }
  throw std::logic_error("Wmqs: no quorum exists (empty system?)");
}

std::size_t Wmqs::max_tolerable_f() const {
  std::size_t f = 0;
  while (f + 1 <= weights_.size() && is_available(f + 1)) ++f;
  return f;
}

Weight rp_integrity_floor(const Weight& initial_total, std::size_t n,
                          std::size_t f) {
  if (n <= f) throw std::invalid_argument("rp_integrity_floor: n <= f");
  return initial_total / Weight(2 * static_cast<std::int64_t>(n - f));
}

WeightMap reduction_initial_weights(std::uint32_t n, std::uint32_t f) {
  if (f == 0 || n <= f) {
    throw std::invalid_argument("reduction_initial_weights: need 0 < f < n");
  }
  WeightMap wm;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (i < f) {
      wm.set(i, Weight(static_cast<std::int64_t>(n) - 1,
                       2 * static_cast<std::int64_t>(f)));
    } else {
      wm.set(i, Weight(static_cast<std::int64_t>(n) + 1,
                       2 * static_cast<std::int64_t>(n - f)));
    }
  }
  return wm;
}

}  // namespace wrs
