// Helpers for waiting on callback-style operations from outside the
// event loop (only valid with ThreadEnv; with SimEnv use run_until_pred).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>

#include "common/types.h"

namespace wrs {

/// One-shot rendezvous between a protocol completion callback and a
/// blocking caller thread.
template <typename T>
class Waiter {
 public:
  /// Completion callback side.
  void set(T value) {
    {
      std::lock_guard lock(mu_);
      value_ = std::move(value);
    }
    cv_.notify_all();
  }

  /// Blocking side; returns nullopt on timeout.
  std::optional<T> wait_for(TimeNs timeout) {
    std::unique_lock lock(mu_);
    cv_.wait_for(lock, std::chrono::nanoseconds(timeout),
                 [this] { return value_.has_value(); });
    return value_;
  }

  /// Blocking side without timeout.
  T wait() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [this] { return value_.has_value(); });
    return *value_;
  }

  bool ready() const {
    std::lock_guard lock(mu_);
    return value_.has_value();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::optional<T> value_;
};

}  // namespace wrs
