#include "runtime/env.h"

#include <stdexcept>
#include <string>

namespace wrs {

void Env::broadcast_to_servers(ProcessId from, const MsgPtr& msg) {
  for (ProcessId sid : server_ids()) {
    send(from, sid, msg);
  }
}

void Env::broadcast_to_group(ProcessId from,
                             const std::vector<ProcessId>& group,
                             const MsgPtr& msg) {
  for (ProcessId pid : group) {
    send(from, pid, msg);
  }
}

void Env::enable_shard_traffic(std::size_t shards, ShardOfMessage shard_of) {
  if (shards == 0 || !shard_of) {
    throw std::invalid_argument(
        "Env::enable_shard_traffic: need shards >= 1 and a mapper");
  }
  // TrafficLedger is neither movable nor copyable (atomics), so the
  // vector is sized once here and never resized.
  shard_traffic_ = std::vector<TrafficLedger>(shards);
  shard_traffic_export_.resize(shards);
  shard_of_ = std::move(shard_of);
}

const Counters& Env::shard_traffic(std::size_t g) const {
  if (g >= shard_traffic_.size()) {
    throw std::out_of_range("Env: shard id " + std::to_string(g) +
                            " out of range [0, " +
                            std::to_string(shard_traffic_.size()) + ")");
  }
  shard_traffic_export_[g] = shard_traffic_[g].snapshot();
  return shard_traffic_export_[g];
}

void Env::count_shard_traffic(ProcessId from, ProcessId to,
                              const Message& msg) {
  count_shard_traffic(from, to, msg.wire_size());
}

void Env::count_shard_traffic(ProcessId from, ProcessId to,
                              std::size_t bytes) {
  if (shard_traffic_.empty()) return;
  int g = shard_of_(from, to);
  if (g < 0 || static_cast<std::size_t>(g) >= shard_traffic_.size()) return;
  TrafficLedger& ledger = shard_traffic_[static_cast<std::size_t>(g)];
  ledger.inc(TrafficLedger::kMsgs);
  ledger.inc(TrafficLedger::kBytes, static_cast<std::int64_t>(bytes));
}

}  // namespace wrs
