#include "runtime/env.h"

namespace wrs {

void Env::broadcast_to_servers(ProcessId from, const MsgPtr& msg) {
  for (ProcessId sid : server_ids()) {
    send(from, sid, msg);
  }
}

}  // namespace wrs
