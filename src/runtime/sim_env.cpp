#include "runtime/sim_env.h"

#include <cassert>
#include <stdexcept>

#include "common/logging.h"

namespace wrs {

SimEnv::SimEnv(std::shared_ptr<LatencyModel> latency, std::uint64_t seed)
    : latency_(std::move(latency)), rng_(seed) {
  if (!latency_) throw std::invalid_argument("SimEnv: null latency model");
}

void SimEnv::register_process(ProcessId pid, Process* process) {
  if (process == nullptr) {
    throw std::invalid_argument("SimEnv: null process");
  }
  processes_[pid] = process;
  if (started_) {
    push_event(now_, pid, [process] { process->on_start(); });
  }
}

void SimEnv::start() {
  if (started_) return;
  started_ = true;
  for (auto& [pid, proc] : processes_) {
    Process* p = proc;
    push_event(now_, pid, [p] { p->on_start(); });
  }
}

void SimEnv::send(ProcessId from, ProcessId to, MsgPtr msg) {
  if (!msg) throw std::invalid_argument("SimEnv::send: null message");
  if (crashed_.count(from) != 0) return;  // a crashed process sends nothing
  ledger_.count_message(*msg, static_cast<std::int64_t>(msg->wire_size()));
  count_shard_traffic(from, to, *msg);
  Envelope env{from, to, std::move(msg)};
  if (!faults_.active()) {
    route(std::move(env), 0);
    return;
  }
  LinkFaults::Decision fate = faults_.decide(from, to, rng_);
  if (!fate.deliver) {
    ledger_.inc(TrafficLedger::kMsgsLost);
    return;
  }
  if (fate.duplicate) {
    ledger_.inc(TrafficLedger::kMsgsDup);
    route(Envelope{env.from, env.to, env.msg}, fate.extra_delay);
  }
  route(std::move(env), fate.extra_delay);
}

void SimEnv::route(Envelope env, TimeNs extra_delay) {
  if (held_.count(env.from) != 0 || held_.count(env.to) != 0) {
    ProcessId key = held_.count(env.to) != 0 ? env.to : env.from;
    held_messages_[key].emplace_back(std::move(env), extra_delay);
    return;
  }
  deliver(std::move(env), extra_delay);
}

void SimEnv::deliver(Envelope env, TimeNs extra_delay) {
  TimeNs delay = latency_->sample(env.from, env.to, rng_) + extra_delay;
  ProcessId to = env.to;
  ProcessId from = env.from;
  MsgPtr msg = std::move(env.msg);
  push_event(now_ + delay, to, [this, from, to, msg] {
    auto it = processes_.find(to);
    if (it == processes_.end()) return;  // never registered: drop
    it->second->on_message(from, *msg);
  });
}

void SimEnv::schedule(ProcessId pid, TimeNs delay, Task fn) {
  push_event(now_ + delay, pid, std::move(fn));
}

void SimEnv::push_event(TimeNs at, ProcessId pid, Task fn) {
  queue_.push(Event{at, next_seq_++, pid, std::move(fn)});
}

void SimEnv::crash(ProcessId pid) {
  crashed_.insert(pid);
  held_messages_.erase(pid);
}

bool SimEnv::is_crashed(ProcessId pid) const {
  return crashed_.count(pid) != 0;
}

std::vector<ProcessId> SimEnv::server_ids() const {
  std::vector<ProcessId> out;
  for (const auto& [pid, _] : processes_) {
    if (is_server(pid)) out.push_back(pid);
  }
  return out;
}

void SimEnv::hold_messages(ProcessId pid) { held_.insert(pid); }

void SimEnv::release_holds(ProcessId pid) {
  held_.erase(pid);
  auto it = held_messages_.find(pid);
  if (it == held_messages_.end()) return;
  auto msgs = std::move(it->second);
  held_messages_.erase(it);
  for (auto& [env, extra] : msgs) deliver(std::move(env), extra);
}

bool SimEnv::step() {
  if (queue_.empty()) return false;
  // Task is move-only, so move out of top() before popping (same idiom
  // as ThreadEnv's timer queue).
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  assert(ev.at >= now_);
  now_ = ev.at;
  // Events addressed to crashed processes are dropped; env-internal events
  // (kNoProcess) always run.
  if (ev.pid != kNoProcess && crashed_.count(ev.pid) != 0) return true;
  ev.fn();
  return true;
}

std::size_t SimEnv::run_until(TimeNs deadline) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

bool SimEnv::run_until_pred(const std::function<bool()>& pred,
                            TimeNs deadline) {
  if (pred()) return true;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
    if (pred()) return true;
  }
  return pred();
}

std::size_t SimEnv::run_to_quiescence(TimeNs deadline) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    if (queue_.top().at > deadline) {
      WRS_WARN("SimEnv: deadline reached with " << queue_.size()
                                                << " events pending");
      break;
    }
    step();
    ++executed;
  }
  return executed;
}

}  // namespace wrs
