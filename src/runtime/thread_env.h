// Thread-per-process runtime.
//
// Each registered process gets a worker thread draining a mailbox of
// tasks (message deliveries and expired timers), so handlers are
// serialized per process exactly as in SimEnv. A single timer thread owns
// the deadline queue; message sends are routed through it when a latency
// model is configured (to inject WAN-like delays under real concurrency),
// or enqueued directly when not.
//
// This runtime exists to demonstrate that every protocol in the library
// is a real concurrent program, not a simulator artifact: the integration
// tests run the full reassignment + storage stack on it.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "runtime/env.h"
#include "runtime/latency_model.h"

namespace wrs {

class ThreadEnv : public Env {
 public:
  /// `latency` may be null (deliver as fast as possible).
  explicit ThreadEnv(std::shared_ptr<LatencyModel> latency = nullptr,
                     std::uint64_t seed = 1);
  ~ThreadEnv() override;

  ThreadEnv(const ThreadEnv&) = delete;
  ThreadEnv& operator=(const ThreadEnv&) = delete;

  // --- Env interface -----------------------------------------------------
  TimeNs now() const override;
  void send(ProcessId from, ProcessId to, MsgPtr msg) override;
  void schedule(ProcessId pid, TimeNs delay, std::function<void()> fn) override;
  /// Unlike the pre-chaos runtime, registration is allowed after start():
  /// the new process gets its worker thread and on_start immediately
  /// (mid-run "restart as a new reader" scenarios). Re-registering an id
  /// is an error on this runtime (the old worker owns the mailbox).
  void register_process(ProcessId pid, Process* process) override;
  void crash(ProcessId pid) override;
  bool is_crashed(ProcessId pid) const override;
  /// Only meaningful after stop(): counters are not synchronized for
  /// concurrent readers while workers run.
  const Counters& traffic() const override { return traffic_; }
  std::vector<ProcessId> server_ids() const override;
  /// Drop/duplicate decisions draw from the env's seeded rng under the
  /// env lock; the reorder knob is ignored (reordering is the simulator's
  /// deterministic specialty — real threads reorder for free).
  LinkFaults& faults() override { return faults_; }

  // --- Lifecycle ----------------------------------------------------------
  /// Launches worker and timer threads and delivers on_start.
  void start();

  /// Drains nothing; signals all threads to finish and joins them.
  void stop();

  bool started() const { return started_; }

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> tasks;
    bool stopped = false;
    bool crashed = false;
    Process* process = nullptr;
    std::thread worker;
  };

  struct TimerItem {
    std::chrono::steady_clock::time_point at;
    std::uint64_t seq;
    ProcessId pid;
    std::function<void()> fn;
    bool operator>(const TimerItem& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  void enqueue_task(ProcessId pid, std::function<void()> fn);
  void timer_loop();
  void worker_loop(Mailbox* box);
  void timer_schedule(std::chrono::steady_clock::time_point at, ProcessId pid,
                      std::function<void()> fn);

  std::shared_ptr<LatencyModel> latency_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;  // guards maps, rng, traffic, crashed set
  std::map<ProcessId, std::unique_ptr<Mailbox>> boxes_;
  LinkFaults faults_;
  Rng rng_;
  Counters traffic_;
  bool started_ = false;
  bool stopping_ = false;

  // Timer thread state.
  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::priority_queue<TimerItem, std::vector<TimerItem>, std::greater<>>
      timers_;
  std::uint64_t timer_seq_ = 0;
  bool timer_stop_ = false;
  std::thread timer_thread_;
};

}  // namespace wrs
