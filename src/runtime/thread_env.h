// Thread-per-process runtime.
//
// Each registered process gets a worker thread draining a mailbox of
// tasks (message deliveries and expired timers), so handlers are
// serialized per process exactly as in SimEnv. A single timer thread owns
// the deadline queue; message sends are routed through it when a latency
// model is configured (to inject WAN-like delays under real concurrency),
// or enqueued directly when not.
//
// The send path is engineered to scale with senders rather than
// serialize them (this runtime is the system's real-concurrency proof,
// so its overhead is what EXP-SH3 measures):
//
//  * Routing is an immutable pid→Mailbox snapshot published RCU-style:
//    register_process builds a new table under mu_ and swaps an atomic
//    pointer; send() does one acquire load and a binary search — no
//    lock. Retired tables are kept until destruction, so readers never
//    race reclamation.
//  * Traffic accounting goes through TrafficLedger (sharded relaxed
//    atomics, pre-interned type slots) instead of a string-keyed map
//    under a mutex.
//  * A small rng_mu_ is taken only when a fault decision or latency
//    sample actually needs the seeded rng; the common configuration
//    (no faults, no latency model) takes no lock at all.
//  * Mailboxes are cache-line-aligned (no false sharing between
//    neighbors) and LOCK-FREE on the delivery fast path: a bounded
//    Vyukov MPSC ring of small-buffer Tasks (steady-state
//    enqueue/deliver does zero heap allocations and takes zero locks —
//    bench/runtime_overhead gates the former), with the condvar notify
//    elided unless the worker is actually parked (a seq_cst-fence
//    Dekker handshake, not a lock, decides that). When the ring fills,
//    ALL enqueues divert to a mutex-guarded grow-only spill ring until
//    the worker drains it — per-sender FIFO survives the diversion —
//    so a burst past `mailbox_slots` degrades to the old locked path
//    instead of dropping or blocking.
//
// This runtime exists to demonstrate that every protocol in the library
// is a real concurrent program, not a simulator artifact: the integration
// tests run the full reassignment + storage stack on it.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "common/cacheline.h"
#include "common/rng.h"
#include "runtime/env.h"
#include "runtime/latency_model.h"
#include "runtime/mpsc_queue.h"
#include "runtime/task.h"
#include "runtime/traffic_ledger.h"

namespace wrs {

class ThreadEnv : public Env {
 public:
  /// Lock-free mailbox ring capacity (per process, rounded up to a
  /// power of two). Beyond this many undelivered tasks, enqueues spill
  /// to the locked overflow ring — correct but slower. 1024 comfortably
  /// covers every in-flight bound in the repo's benches.
  static constexpr std::size_t kDefaultMailboxSlots = 1024;

  /// `latency` may be null (deliver as fast as possible). Tests shrink
  /// `mailbox_slots` to force the overflow path deterministically.
  explicit ThreadEnv(std::shared_ptr<LatencyModel> latency = nullptr,
                     std::uint64_t seed = 1,
                     std::size_t mailbox_slots = kDefaultMailboxSlots);
  ~ThreadEnv() override;

  ThreadEnv(const ThreadEnv&) = delete;
  ThreadEnv& operator=(const ThreadEnv&) = delete;

  // --- Env interface -----------------------------------------------------
  TimeNs now() const override;
  void send(ProcessId from, ProcessId to, MsgPtr msg) override;
  void schedule(ProcessId pid, TimeNs delay, Task fn) override;
  /// Unlike the pre-chaos runtime, registration is allowed after start():
  /// the new process gets its worker thread and on_start immediately
  /// (mid-run "restart as a new reader" scenarios). Re-registering an id
  /// is an error on this runtime (the old worker owns the mailbox).
  void register_process(ProcessId pid, Process* process) override;
  void crash(ProcessId pid) override;
  bool is_crashed(ProcessId pid) const override;
  /// Only meaningful after stop(): the returned snapshot is materialized
  /// per call and not synchronized against concurrent traffic() readers.
  const Counters& traffic() const override;
  void count_event(TrafficLedger::Slot slot, std::int64_t by = 1) override {
    ledger_.inc(slot, by);
  }
  std::vector<ProcessId> server_ids() const override;
  /// Drop/duplicate decisions draw from the env's seeded rng under a
  /// dedicated lock; the reorder knob is ignored (reordering is the
  /// simulator's deterministic specialty — real threads reorder for
  /// free).
  LinkFaults& faults() override { return faults_; }

  // --- Lifecycle ----------------------------------------------------------
  /// Launches worker and timer threads and delivers on_start.
  void start();

  /// Drains nothing; signals all threads to finish and joins them.
  void stop();

  bool started() const { return started_; }

 private:
  // Aligned so adjacent mailboxes (one per process, touched by different
  // worker threads) never share a cache line.
  //
  // Fast path: producers try_push into `ring` and (only when the worker
  // advertised it is parked) notify the condvar. Slow path: when the
  // ring is full, `overflow_active` flips on and EVERY enqueue goes to
  // the locked `overflow` ring until the worker empties it — a sender
  // that spilled message k there can only reach the lock-free ring
  // again after k was popped, so per-sender FIFO holds across the
  // diversion. Crash drops tasks at both enqueue (flag checked first)
  // and pop (worker discards while crashed) — in-ring tasks of a
  // crashed process are destroyed unexecuted, same observable behavior
  // as the old clear-under-mutex.
  struct alignas(kCacheLineSize) Mailbox {
    explicit Mailbox(std::size_t slots) : ring(slots) {}

    MpscRing<Task> ring;             // lock-free fast path
    std::mutex mu;                   // guards overflow + park handshake
    std::condition_variable cv;
    TaskRing overflow;               // guarded by mu
    std::atomic<bool> overflow_active{false};
    std::atomic<bool> stopped{false};   // set under mu (cv sync)
    std::atomic<bool> parked{false};    // worker blocks on cv iff true
    // Read lock-free on send/is_crashed paths; transitions false→true
    // exactly once.
    std::atomic<bool> crashed{false};
    Process* process = nullptr;
    std::thread worker;
  };

  /// Immutable pid→Mailbox table. register_process publishes a fresh one
  /// (entries sorted by pid) through routing_; send/is_crashed read it
  /// with one acquire load. Mailboxes themselves live until destruction,
  /// so a stale table never dangles.
  struct Routing {
    std::vector<std::pair<ProcessId, Mailbox*>> entries;

    Mailbox* find(ProcessId pid) const {
      auto it = std::lower_bound(
          entries.begin(), entries.end(), pid,
          [](const std::pair<ProcessId, Mailbox*>& e, ProcessId p) {
            return e.first < p;
          });
      return (it != entries.end() && it->first == pid) ? it->second : nullptr;
    }
  };

  struct TimerItem {
    std::chrono::steady_clock::time_point at;
    std::uint64_t seq;
    ProcessId pid;
    Task fn;
    bool operator>(const TimerItem& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  const Routing* routing() const {
    return routing_.load(std::memory_order_acquire);
  }
  void publish_routing_locked();
  void enqueue_task(Mailbox* box, Task fn);
  void timer_loop();
  void worker_loop(Mailbox* box);
  void timer_schedule(std::chrono::steady_clock::time_point at, ProcessId pid,
                      Task fn);

  std::shared_ptr<LatencyModel> latency_;
  std::chrono::steady_clock::time_point epoch_;
  std::size_t mailbox_slots_;

  mutable std::mutex mu_;  // guards registration/lifecycle state
  std::map<ProcessId, std::unique_ptr<Mailbox>> boxes_;
  std::atomic<const Routing*> routing_{nullptr};
  std::vector<std::unique_ptr<Routing>> routing_history_;  // incl. current
  bool started_ = false;
  bool stopping_ = false;

  LinkFaults faults_;
  std::mutex rng_mu_;  // guards rng_ (fault + latency draws only)
  Rng rng_;
  TrafficLedger ledger_;
  mutable Counters traffic_export_;

  // Timer thread state.
  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::priority_queue<TimerItem, std::vector<TimerItem>, std::greater<>>
      timers_;
  std::uint64_t timer_seq_ = 0;
  bool timer_stop_ = false;
  std::thread timer_thread_;
};

}  // namespace wrs
