#include "runtime/link_faults.h"

#include <algorithm>

namespace wrs {

void LinkFaults::partition(ProcessId a, ProcessId b) {
  cut_one_way(a, b);
  cut_one_way(b, a);
}

void LinkFaults::heal(ProcessId a, ProcessId b) {
  heal_one_way(a, b);
  heal_one_way(b, a);
}

void LinkFaults::cut_one_way(ProcessId from, ProcessId to) {
  mutate(from, to, [](Link& l) { l.cut = true; });
}

void LinkFaults::heal_one_way(ProcessId from, ProcessId to) {
  mutate(from, to, [](Link& l) { l.cut = false; });
}

void LinkFaults::set_drop(ProcessId a, ProcessId b, double p) {
  double clamped = p < 0 ? 0 : (p > 1 ? 1 : p);
  mutate(a, b, [clamped](Link& l) { l.drop_p = clamped; });
  mutate(b, a, [clamped](Link& l) { l.drop_p = clamped; });
}

void LinkFaults::set_duplicate(ProcessId a, ProcessId b, double p) {
  double clamped = p < 0 ? 0 : (p > 1 ? 1 : p);
  mutate(a, b, [clamped](Link& l) { l.dup_p = clamped; });
  mutate(b, a, [clamped](Link& l) { l.dup_p = clamped; });
}

void LinkFaults::set_drop_all(double p) {
  std::lock_guard lock(mu_);
  drop_all_p_ = p < 0 ? 0 : (p > 1 ? 1 : p);
  refresh_active();
}

void LinkFaults::set_duplicate_all(double p) {
  std::lock_guard lock(mu_);
  dup_all_p_ = p < 0 ? 0 : (p > 1 ? 1 : p);
  refresh_active();
}

void LinkFaults::set_reorder(double p, TimeNs max_extra) {
  std::lock_guard lock(mu_);
  reorder_p_ = (p > 0 && max_extra > 0) ? (p > 1 ? 1 : p) : 0;
  reorder_max_ = reorder_p_ > 0 ? max_extra : 0;
  refresh_active();
}

void LinkFaults::heal_all() {
  std::lock_guard lock(mu_);
  links_.clear();
  drop_all_p_ = 0;
  dup_all_p_ = 0;
  reorder_p_ = 0;
  reorder_max_ = 0;
  refresh_active();
}

bool LinkFaults::is_cut(ProcessId from, ProcessId to) const {
  if (from == to) return false;
  std::lock_guard lock(mu_);
  auto it = links_.find(Key{from, to});
  return it != links_.end() && it->second.cut;
}

LinkFaults::Decision LinkFaults::decide(ProcessId from, ProcessId to,
                                        Rng& rng) {
  Decision d;
  if (from == to) return d;  // self-loops are never faulted
  std::lock_guard lock(mu_);
  double drop_p = drop_all_p_;
  double dup_p = dup_all_p_;
  auto it = links_.find(Key{from, to});
  if (it != links_.end()) {
    const Link& link = it->second;
    if (link.cut) {
      d.deliver = false;
      return d;
    }
    // Per-link and network-wide rates compose by "the stronger wins"
    // (one draw each, so rng consumption stays deterministic).
    drop_p = std::max(drop_p, link.drop_p);
    dup_p = std::max(dup_p, link.dup_p);
  }
  if (drop_p > 0 && rng.uniform() < drop_p) {
    d.deliver = false;
    return d;
  }
  if (dup_p > 0 && rng.uniform() < dup_p) d.duplicate = true;
  if (reorder_p_ > 0 && rng.uniform() < reorder_p_) {
    d.extra_delay = static_cast<TimeNs>(
        rng.below(static_cast<std::uint64_t>(reorder_max_)));
  }
  return d;
}

}  // namespace wrs
