#include "runtime/latency_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wrs {

TimeNs HeavyTailLatency::sample(ProcessId, ProcessId, Rng& rng) {
  // Inverse-CDF Pareto: scale * U^(-1/alpha), U in (0,1].
  double u = 1.0 - rng.uniform();  // (0, 1]
  double tail = static_cast<double>(scale_) * std::pow(u, -1.0 / alpha_);
  auto delay = base_ + static_cast<TimeNs>(tail);
  return std::min(delay, cap_);
}

SiteMatrixLatency::SiteMatrixLatency(
    std::vector<std::vector<double>> rtt_ms,
    std::function<std::size_t(ProcessId)> site_of, double jitter_frac)
    : rtt_ms_(std::move(rtt_ms)),
      site_of_(std::move(site_of)),
      jitter_frac_(jitter_frac) {}

TimeNs SiteMatrixLatency::sample(ProcessId from, ProcessId to, Rng& rng) {
  std::size_t a = site_of_(from);
  std::size_t b = site_of_(to);
  double one_way_ms = rtt_ms_[a][b] / 2.0;
  // Symmetric jitter plus a small always-positive processing delay so
  // same-site messages are never instantaneous.
  double jitter = one_way_ms * jitter_frac_ * (2.0 * rng.uniform() - 1.0);
  double total_ms = std::max(0.05, one_way_ms + jitter + 0.1);
  return ms(total_ms);
}

void DegradableLatency::set_factor(ProcessId pid, double factor) {
  std::lock_guard lock(mu_);
  for (auto& [p, f] : factors_) {
    if (p == pid) {
      f = factor;
      return;
    }
  }
  factors_.emplace_back(pid, factor);
}

void DegradableLatency::clear_factor(ProcessId pid) {
  std::lock_guard lock(mu_);
  std::erase_if(factors_, [pid](const auto& pf) { return pf.first == pid; });
}

void DegradableLatency::set_inner(std::shared_ptr<LatencyModel> inner) {
  if (!inner) {
    throw std::invalid_argument("DegradableLatency::set_inner: null model");
  }
  std::lock_guard lock(mu_);
  inner_ = std::move(inner);
}

TimeNs DegradableLatency::sample(ProcessId from, ProcessId to, Rng& rng) {
  // Keep the critical section to the mutable scenario state; the wrapped
  // model (and its RNG work) samples outside the lock. The shared_ptr
  // copy keeps a concurrently swapped inner model alive.
  std::shared_ptr<LatencyModel> inner;
  double factor = 1.0;
  {
    std::lock_guard lock(mu_);
    inner = inner_;
    for (const auto& [p, f] : factors_) {
      if (p == from || p == to) factor = std::max(factor, f);
    }
  }
  TimeNs base = inner->sample(from, to, rng);
  return static_cast<TimeNs>(static_cast<double>(base) * factor);
}

}  // namespace wrs
