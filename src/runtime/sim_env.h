// Deterministic discrete-event simulator.
//
// Every run is a pure function of (seed, latency model, protocol logic):
// events are ordered by (time, sequence-number) so ties break
// deterministically. This is the substrate for the property tests that
// sweep seeds to explore asynchronous schedules, and for the latency
// benches with WAN profiles.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "runtime/env.h"
#include "runtime/latency_model.h"
#include "runtime/task.h"
#include "runtime/traffic_ledger.h"

namespace wrs {

class SimEnv : public Env {
 public:
  /// The simulator owns the latency model (shared so benches can retain a
  /// handle, e.g. to degrade a replica mid-run).
  SimEnv(std::shared_ptr<LatencyModel> latency, std::uint64_t seed);

  // --- Env interface -----------------------------------------------------
  TimeNs now() const override { return now_; }
  void send(ProcessId from, ProcessId to, MsgPtr msg) override;
  void schedule(ProcessId pid, TimeNs delay, Task fn) override;
  void register_process(ProcessId pid, Process* process) override;
  void crash(ProcessId pid) override;
  bool is_crashed(ProcessId pid) const override;
  const Counters& traffic() const override {
    traffic_export_ = ledger_.snapshot();
    return traffic_export_;
  }
  void count_event(TrafficLedger::Slot slot, std::int64_t by = 1) override {
    ledger_.inc(slot, by);
  }
  std::vector<ProcessId> server_ids() const override;
  /// Faults draw from the simulator's seeded rng, so an entire chaos
  /// episode (including bounded reordering) replays bit-for-bit from the
  /// seed.
  LinkFaults& faults() override { return faults_; }

  // --- Simulation control -------------------------------------------------
  /// Delivers `on_start` to all registered processes (idempotent).
  void start();

  /// Runs events until the queue drains or `deadline` passes.
  /// Returns the number of events executed.
  std::size_t run_until(TimeNs deadline);

  /// Runs until `pred()` turns true (checked after each event) or the
  /// queue drains or `deadline` passes. Returns true iff pred held.
  bool run_until_pred(const std::function<bool()>& pred, TimeNs deadline);

  /// Runs everything (asserts the protocol quiesces). Returns event count.
  std::size_t run_to_quiescence(TimeNs deadline = seconds(3600));

  /// Executes one pending event; false if queue empty.
  bool step();

  bool idle() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }

  Rng& rng() { return rng_; }
  LatencyModel& latency_model() { return *latency_; }

  /// Extra adversarial knob: delays every message involving `pid` until
  /// `release_holds(pid)` — models an arbitrarily slow link without
  /// violating reliability.
  void hold_messages(ProcessId pid);
  void release_holds(ProcessId pid);

 private:
  struct Event {
    TimeNs at;
    std::uint64_t seq;
    ProcessId pid;  // execution context; kNoProcess for env-internal
    Task fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;  // min-heap: earliest (time, seq) first
    }
  };

  void push_event(TimeNs at, ProcessId pid, Task fn);
  void route(Envelope env, TimeNs extra_delay);
  void deliver(Envelope env, TimeNs extra_delay = 0);

  std::shared_ptr<LatencyModel> latency_;
  Rng rng_;
  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  bool started_ = false;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::map<ProcessId, Process*> processes_;
  std::set<ProcessId> crashed_;
  std::set<ProcessId> held_;
  /// Buffered (envelope, reorder-extra) — the extra delay drawn at send
  /// time survives the hold and applies at release.
  std::map<ProcessId, std::vector<std::pair<Envelope, TimeNs>>>
      held_messages_;
  LinkFaults faults_;
  TrafficLedger ledger_;
  mutable Counters traffic_export_;
};

}  // namespace wrs
