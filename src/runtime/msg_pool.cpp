#include "runtime/msg_pool.h"

#include <cstring>

namespace wrs {

MsgPool& MsgPool::instance() {
  // Leaky: thread-exit cache flushes and messages released during static
  // destruction must always find a live pool.
  static MsgPool* pool = new MsgPool();
  return *pool;
}

int MsgPool::class_of(std::size_t bytes) {
  for (std::size_t i = 0; i < kNumClasses; ++i) {
    if (bytes <= kClassSizes[i]) return static_cast<int>(i);
  }
  return -1;
}

MsgPool::Cache& MsgPool::cache() {
  thread_local Cache c;
  return c;
}

MsgPool::Cache::~Cache() {
  MsgPool& pool = MsgPool::instance();
  for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
    if (count[cls] > 0) {
      pool.spill(static_cast<int>(cls), slots[cls].data(), count[cls]);
      count[cls] = 0;
    }
  }
}

void* MsgPool::allocate(std::size_t bytes, std::size_t align) {
  int cls = class_of(bytes);
  if (cls < 0 || align > alignof(std::max_align_t)) {
    heap_allocs_.fetch_add(1, std::memory_order_relaxed);
    return align > alignof(std::max_align_t)
               ? ::operator new(bytes, std::align_val_t(align))
               : ::operator new(bytes);
  }
  Cache& c = cache();
  std::size_t& n = c.count[cls];
  if (n > 0) {
    pool_allocs_.fetch_add(1, std::memory_order_relaxed);
    return c.slots[cls][--n];
  }
  return refill_and_allocate(cls);
}

void* MsgPool::refill_and_allocate(int cls) {
  Cache& c = cache();
  const std::size_t block = kClassSizes[cls];
  {
    std::lock_guard lock(mu_);
    // Batch-refill from the global free list first.
    FreeNode* head = free_[cls];
    std::size_t got = 0;
    while (head != nullptr && got < kBatch) {
      c.slots[cls][got++] = head;
      head = head->next;
    }
    free_[cls] = head;
    if (got > 0) {
      c.count[cls] = got - 1;
      pool_allocs_.fetch_add(1, std::memory_order_relaxed);
      return c.slots[cls][got - 1];
    }
    // Dry: carve from the current slab (each block max_align_t-aligned
    // because every class size is a multiple of 16 and the slab itself
    // comes from operator new[]).
    if (slab_cur_ == nullptr ||
        static_cast<std::size_t>(slab_end_ - slab_cur_) < block) {
      if (slab_limit_ == 0 ||
          slab_count_.load(std::memory_order_relaxed) < slab_limit_) {
        slabs_.push_back(std::make_unique<std::byte[]>(kSlabBytes));
        slab_cur_ = slabs_.back().get();
        slab_end_ = slab_cur_ + kSlabBytes;
        slab_count_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (slab_cur_ != nullptr &&
        static_cast<std::size_t>(slab_end_ - slab_cur_) >= block) {
      // Take a whole batch while the lock is held.
      std::size_t want = kBatch;
      std::size_t avail = static_cast<std::size_t>(slab_end_ - slab_cur_) / block;
      if (want > avail) want = avail;
      for (std::size_t i = 0; i < want; ++i) {
        c.slots[cls][i] = slab_cur_;
        slab_cur_ += block;
      }
      c.count[cls] = want - 1;
      pool_allocs_.fetch_add(1, std::memory_order_relaxed);
      return c.slots[cls][want - 1];
    }
  }
  // Slab budget exhausted (test mode): transparent heap fallback. The
  // block is class-sized, so deallocate will adopt it into the pool's
  // free lists — by design indistinguishable from a slab block there.
  heap_allocs_.fetch_add(1, std::memory_order_relaxed);
  adopted_.fetch_add(1, std::memory_order_relaxed);
  return ::operator new(block);
}

void MsgPool::deallocate(void* p, std::size_t bytes, std::size_t align) noexcept {
  if (p == nullptr) return;
  int cls = class_of(bytes);
  if (cls < 0 || align > alignof(std::max_align_t)) {
    if (align > alignof(std::max_align_t)) {
      ::operator delete(p, std::align_val_t(align));
    } else {
      ::operator delete(p);
    }
    return;
  }
  Cache& c = cache();
  std::size_t& n = c.count[cls];
  if (n == kCacheCap) {
    // Spill the older half to the global list, keep the hot half local.
    spill(cls, c.slots[cls].data(), kBatch);
    std::memmove(c.slots[cls].data(), c.slots[cls].data() + kBatch,
                 (kCacheCap - kBatch) * sizeof(void*));
    n -= kBatch;
  }
  c.slots[cls][n++] = p;
}

void MsgPool::spill(int cls, void** blocks, std::size_t n) {
  std::lock_guard lock(mu_);
  for (std::size_t i = 0; i < n; ++i) {
    FreeNode* node = static_cast<FreeNode*>(blocks[i]);
    node->next = free_[cls];
    free_[cls] = node;
  }
}

MsgPool::Stats MsgPool::stats() const {
  Stats s;
  s.pool_allocs = pool_allocs_.load(std::memory_order_relaxed);
  s.heap_allocs = heap_allocs_.load(std::memory_order_relaxed);
  s.slabs = slab_count_.load(std::memory_order_relaxed);
  s.adopted = adopted_.load(std::memory_order_relaxed);
  return s;
}

void MsgPool::set_slab_limit(std::uint64_t n) {
  std::lock_guard lock(mu_);
  slab_limit_ = n;
}

}  // namespace wrs
