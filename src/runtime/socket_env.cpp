#ifdef __linux__

#include "runtime/socket_env.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "net/wire_codec.h"

namespace wrs {
namespace {

/// How often the fault poll maps cut links onto connection teardown.
constexpr TimeNs kFaultPollInterval = ms(25);

}  // namespace

SocketEnv::SocketEnv(Options opts)
    : opts_(std::move(opts)),
      epoch_(std::chrono::steady_clock::now()),
      rng_(opts_.seed) {
  transport_.set_events(net::SocketTransport::Events{
      [this](net::SocketTransport::ConnId conn, const std::uint8_t* body,
             std::size_t len) { on_frame(conn, body, len); },
      [this](net::SocketTransport::ConnId conn) { on_conn_closed(conn); },
      // Timer gate: schedule() tags its timers with pid+1; a crashed
      // process's pending callbacks are dropped at fire time without
      // wrapping the Task in another closure.
      [this](std::uint64_t token) {
        return !is_crashed(static_cast<ProcessId>(token - 1));
      }});
}

SocketEnv::~SocketEnv() { stop(); }

void SocketEnv::start() {
  std::vector<std::pair<ProcessId, Process*>> to_start;
  {
    std::lock_guard lock(mu_);
    if (started_) return;
    started_ = true;
    for (auto& [pid, proc] : local_) to_start.emplace_back(pid, proc);
  }
  transport_.listen(opts_.listen);
  self_addr_ = *transport_.listen_addr();
  self_peer_ = transport_.intern_peer(self_addr_);
  transport_.start();
  transport_.post([this, to_start = std::move(to_start)] {
    for (auto& [pid, proc] : to_start) {
      if (!is_crashed(pid)) proc->on_start();
    }
  });
  transport_.schedule_after(kFaultPollInterval, [this] { fault_poll(); });
}

void SocketEnv::stop() {
  {
    std::lock_guard lock(mu_);
    if (!started_) return;
  }
  transport_.stop();
}

TimeNs SocketEnv::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

net::SocketAddr SocketEnv::listen_addr() const {
  auto addr = transport_.listen_addr();
  if (!addr) {
    throw std::logic_error("SocketEnv::listen_addr: not started");
  }
  return *addr;
}

void SocketEnv::register_process(ProcessId pid, Process* process) {
  bool deliver_start = false;
  {
    std::lock_guard lock(mu_);
    if (local_.count(pid) != 0) {
      throw std::logic_error("SocketEnv: process " + process_name(pid) +
                             " registered twice");
    }
    local_[pid] = process;
    crashed_.erase(pid);  // a re-registered id is a restarted process
    deliver_start = started_;
  }
  if (deliver_start) {
    transport_.post([this, pid, process] {
      if (!is_crashed(pid)) process->on_start();
    });
  }
}

void SocketEnv::crash(ProcessId pid) {
  std::lock_guard lock(mu_);
  crashed_.insert(pid);
}

bool SocketEnv::is_crashed(ProcessId pid) const {
  std::lock_guard lock(mu_);
  return crashed_.count(pid) != 0;
}

std::vector<ProcessId> SocketEnv::server_ids() const {
  std::lock_guard lock(mu_);
  std::vector<ProcessId> out;
  for (const auto& [pid, proc] : local_) {
    if (is_server(pid)) out.push_back(pid);
  }
  for (const auto& [pid, addr] : routes_) {
    if (is_server(pid) && local_.count(pid) == 0) out.push_back(pid);
  }
  // local_ and routes_ are both id-sorted maps but their union is not.
  std::sort(out.begin(), out.end());
  return out;
}

void SocketEnv::add_route(ProcessId pid, const net::SocketAddr& addr) {
  net::SocketTransport::PeerId peer = transport_.intern_peer(addr);
  std::lock_guard lock(mu_);
  routes_[pid] = addr;
  route_peers_[pid] = peer;
}

void SocketEnv::schedule(ProcessId pid, TimeNs delay, Task fn) {
  // The Task moves into the transport's timer heap as-is (no wrapper
  // closure, no allocation); the pid+1 token routes the crash check
  // through the timer_gate callback at fire time (0 = ungated).
  transport_.schedule_after(delay, static_cast<std::uint64_t>(pid) + 1,
                            std::move(fn));
}

namespace {

/// Per-sending-thread encode arena: chunks recycle through the global
/// pool as the loop thread releases written segments, so steady-state
/// encode+send is allocation-free end to end.
net::EncodeArena& send_arena() {
  thread_local net::EncodeArena arena;
  return arena;
}

}  // namespace

void SocketEnv::send(ProcessId from, ProcessId to, MsgPtr msg) {
  // Serialize first: an unencodable type is a caller bug and throws even
  // if faults would have dropped the message anyway. The encode lands in
  // the thread-local arena; `frame` (and any duplicate copies, which
  // just bump the chunk refcount) share that single encode.
  net::Segment frame = net::WireCodec::encode_frame_arena(send_arena(), from,
                                                          to, *msg);

  // Routing decisions happen under mu_, but every transport_ call is
  // made OUTSIDE it: on the loop thread a send can fail and close the
  // connection inline, and the on_conn_closed callback locks mu_ again.
  enum class Via { kNone, kLocal, kPeer, kConn };
  Via via = Via::kNone;
  int copies = 1;
  net::SocketTransport::PeerId peer = net::SocketTransport::kNoPeer;
  net::SocketTransport::ConnId conn = 0;
  ledger_.count_message(*msg, static_cast<std::int64_t>(frame.size()));
  count_shard_traffic(from, to, frame.size());
  {
    std::lock_guard lock(mu_);
    if (crashed_.count(to) != 0) return;
    if (faults_.active() && from != to) {
      auto decision = faults_.decide(from, to, rng_);
      if (!decision.deliver) {
        ledger_.inc(TrafficLedger::kMsgsLost);
        return;
      }
      if (decision.duplicate) {
        ledger_.inc(TrafficLedger::kMsgsDup);
        copies = 2;
      }
    }
    if (local_.count(to) != 0) {
      if (opts_.loopback_self) {  // out through our own listener
        via = Via::kPeer;
        peer = self_peer_;
      } else {
        via = Via::kLocal;
      }
    } else if (auto rit = route_peers_.find(to); rit != route_peers_.end()) {
      via = Via::kPeer;
      peer = rit->second;
    } else if (auto lit = learned_.find(to); lit != learned_.end()) {
      via = Via::kConn;
      conn = lit->second;
    } else {
      ledger_.inc(TrafficLedger::kMsgsUnroutable);
      return;
    }
  }

  for (int i = 0; i < copies; ++i) {
    if (via == Via::kLocal) {
      // Decode our own bytes so local delivery exercises the exact same
      // codec path (and never aliases the sender's message).
      auto decoded = net::WireCodec::decode_frame(frame.data() + 4,
                                                  frame.size() - 4);
      if (!decoded) {
        ledger_.inc(TrafficLedger::kMsgsMalformed);
        continue;
      }
      MsgPtr local_msg = decoded->msg;
      transport_.post(
          [this, from, to, local_msg] { deliver(from, to, local_msg); });
    } else if (via == Via::kPeer) {
      transport_.send_to_peer(peer, net::Segment(frame));
    } else {
      transport_.send_on_conn(conn, net::Segment(frame));
    }
  }
}

void SocketEnv::on_frame(net::SocketTransport::ConnId conn,
                         const std::uint8_t* body, std::size_t len) {
  auto decoded = net::WireCodec::decode_frame(body, len);
  if (!decoded) {
    // A frame we cannot decode means the stream is not speaking our
    // protocol (or a version we know) — drop the connection.
    ledger_.inc(TrafficLedger::kMsgsMalformed);
    transport_.close_conn(conn);
    return;
  }
  ProcessId from = decoded->from;
  ProcessId to = decoded->to;
  ledger_.inc(TrafficLedger::kMsgsIn);
  ledger_.inc(TrafficLedger::kBytesIn, static_cast<std::int64_t>(len + 4));
  {
    std::lock_guard lock(mu_);
    // Learn the return route (how servers answer dialed-in clients).
    if (local_.count(from) == 0) learned_[from] = conn;
    if (local_.count(to) == 0) {
      ledger_.inc(TrafficLedger::kMsgsNoHandler);
      return;
    }
    if (crashed_.count(to) != 0) return;
    // Delivery-time cut filter: a partition started after the bytes left
    // the sender still stops them here, like a mid-flight cable pull.
    if (from != to && faults_.active() && faults_.is_cut(from, to)) {
      ledger_.inc(TrafficLedger::kMsgsLost);
      return;
    }
  }
  if (opts_.latency) {
    TimeNs delay;
    {
      std::lock_guard lock(mu_);
      delay = opts_.latency->sample(from, to, rng_);
    }
    MsgPtr msg = decoded->msg;
    transport_.schedule_after(
        delay, [this, from, to, msg] { deliver(from, to, msg); });
    return;
  }
  deliver(from, to, decoded->msg);
}

void SocketEnv::deliver(ProcessId from, ProcessId to, const MsgPtr& msg) {
  Process* proc = nullptr;
  {
    std::lock_guard lock(mu_);
    if (crashed_.count(to) != 0) return;
    auto it = local_.find(to);
    if (it == local_.end()) return;
    proc = it->second;
  }
  // Loop thread, outside the lock: handlers may send freely.
  proc->on_message(from, *msg);
}

void SocketEnv::on_conn_closed(net::SocketTransport::ConnId conn) {
  std::lock_guard lock(mu_);
  for (auto it = learned_.begin(); it != learned_.end();) {
    if (it->second == conn) {
      it = learned_.erase(it);
    } else {
      ++it;
    }
  }
}

void SocketEnv::fault_poll() {
  if (faults_.active()) {
    // Collect the remote peers whose every pid pair is cut both ways;
    // their connections get torn down for real (the redial/backoff path
    // then exercises reconnection when the partition heals).
    std::vector<net::SocketTransport::PeerId> cut_peers;
    std::vector<net::SocketTransport::ConnId> cut_conns;
    {
      std::lock_guard lock(mu_);
      auto fully_cut = [this](ProcessId remote) {
        bool any = false;
        for (const auto& [lpid, proc] : local_) {
          if (crashed_.count(lpid) != 0) continue;
          any = true;
          if (!faults_.is_cut(lpid, remote) || !faults_.is_cut(remote, lpid)) {
            return false;
          }
        }
        return any;
      };
      for (const auto& [pid, peer] : route_peers_) {
        if (local_.count(pid) == 0 && fully_cut(pid)) {
          cut_peers.push_back(peer);
        }
      }
      for (const auto& [pid, conn] : learned_) {
        if (fully_cut(pid)) cut_conns.push_back(conn);
      }
    }
    for (auto peer : cut_peers) {
      transport_.close_peer(peer);
      fault_teardowns_.fetch_add(1, std::memory_order_relaxed);
    }
    for (auto conn : cut_conns) {
      transport_.close_conn(conn);
      fault_teardowns_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  transport_.schedule_after(kFaultPollInterval, [this] { fault_poll(); });
}

}  // namespace wrs

#endif  // __linux__
