// Slab pool for protocol messages — make_msg<T>(...) instead of
// std::make_shared<T>(...).
//
// Every protocol message used to be one std::make_shared per
// construction: a combined control-block+object heap allocation on the
// send side and another on the decode side of every frame. This pool
// recycles exactly those blocks. make_msg<T> is std::allocate_shared
// over a stateless PoolAllocator, so the shared_ptr machinery (aliasing,
// weak counts, msg_cast) is unchanged — only where the bytes come from
// differs:
//
//   * Size classes. Control-block-wrapped messages cluster in a handful
//     of sizes; allocations are rounded up to one of kClassSizes and
//     served from a per-class intrusive free list (the freed block's
//     first word is the next pointer, so lists cost no side memory).
//   * Thread-local caches. Each thread holds up to kCacheCap free
//     blocks per class; alloc/free in steady state touch only the
//     cache — no atomics, no locks, no allocator. The cache refills
//     from / spills to a mutex-guarded global list in batches of
//     kBatch, and flushes itself on thread exit.
//   * Slabs. When the global list is dry the pool carves fresh blocks
//     out of kSlabBytes slabs (one allocation amortized over hundreds
//     of messages) until an optional test-only slab budget is hit.
//   * Heap fallback. Oversized requests — and every request past the
//     slab budget — go straight to operator new. Fallback blocks of a
//     class size are indistinguishable from slab blocks at free time
//     and are simply ADOPTED into the free lists (deallocate recomputes
//     the class from the byte count, so no per-block header is needed).
//     The pool is a leaky singleton: everything stays reachable, so
//     LSan sees retained pool memory, not leaks.
//
// make_pooled<T> is the same machinery for non-Message pooled objects
// (the decode path's ChangeSet snapshots ride it too).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/message.h"

namespace wrs {

class MsgPool {
 public:
  /// Rounded-up block sizes. 64..768 bytes covers every message type's
  /// allocate_shared block (ReadAck with an inline value, BatchReply
  /// headers, ChangeSet snapshots); bigger requests fall through to the
  /// heap untouched.
  static constexpr std::array<std::size_t, 8> kClassSizes = {
      64, 96, 128, 192, 256, 384, 512, 768};
  static constexpr std::size_t kNumClasses = kClassSizes.size();
  static constexpr std::size_t kMaxBlockBytes = kClassSizes.back();
  static constexpr std::size_t kSlabBytes = 256 * 1024;
  static constexpr std::size_t kCacheCap = 64;   ///< blocks per class per thread
  static constexpr std::size_t kBatch = 32;      ///< cache <-> global transfer

  /// Leaky singleton: constructed on first use, never destroyed, so
  /// thread-exit cache flushes and static-destruction-order message
  /// releases always have a live pool to return blocks to.
  static MsgPool& instance();

  /// A block of at least `bytes`; pooled when a class fits, heap
  /// otherwise. Alignment above alignof(max_align_t) is not supported
  /// (no message needs it) and also falls through to the aligned heap.
  void* allocate(std::size_t bytes, std::size_t align);
  void deallocate(void* p, std::size_t bytes, std::size_t align) noexcept;

  struct Stats {
    std::uint64_t pool_allocs = 0;   ///< served from cache/free list/slab
    std::uint64_t heap_allocs = 0;   ///< oversize or slab budget exhausted
    std::uint64_t slabs = 0;         ///< slabs carved so far
    std::uint64_t adopted = 0;       ///< heap-fallback blocks now pooled
  };
  Stats stats() const;

  /// Test hook: cap the pool at `n` slabs (0 = unlimited). Exhaustion
  /// then exercises the heap-fallback path deterministically.
  void set_slab_limit(std::uint64_t n);

 private:
  MsgPool() = default;

  struct FreeNode {
    FreeNode* next;
  };

  /// Per-thread per-class stack of free blocks. Registered with the
  /// pool on first use; flushes every block back on thread exit.
  struct Cache {
    std::array<std::array<void*, kCacheCap>, kNumClasses> slots{};
    std::array<std::size_t, kNumClasses> count{};
    ~Cache();
  };

  static Cache& cache();

  /// -1 when no class fits.
  static int class_of(std::size_t bytes);

  void* refill_and_allocate(int cls);         // cache miss
  void spill(int cls, void** blocks, std::size_t n);  // cache overflow / exit

  mutable std::mutex mu_;
  std::array<FreeNode*, kNumClasses> free_ = {};
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::byte* slab_cur_ = nullptr;
  std::byte* slab_end_ = nullptr;
  std::uint64_t slab_limit_ = 0;  ///< 0 = unlimited
  std::atomic<std::uint64_t> pool_allocs_{0};
  std::atomic<std::uint64_t> heap_allocs_{0};
  std::atomic<std::uint64_t> slab_count_{0};
  std::atomic<std::uint64_t> adopted_{0};

  template <typename T>
  friend struct PoolAllocator;
};

/// Stateless allocator routing allocate_shared's combined block through
/// the pool. Rebind-compatible; every instance is equal.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        MsgPool::instance().allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    MsgPool::instance().deallocate(p, n * sizeof(T), alignof(T));
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;
  }
};

/// Pool-backed replacement for std::make_shared on any type whose
/// lifetime is shared-ptr-managed (messages, decode-side ChangeSets).
template <typename T, typename... Args>
std::shared_ptr<T> make_pooled(Args&&... args) {
  return std::allocate_shared<T>(PoolAllocator<std::remove_const_t<T>>{},
                                 std::forward<Args>(args)...);
}

/// Protocol-message factory: the ONLY sanctioned way to construct a
/// Message on a hot path (CI greps against raw make_shared<XxxReq/Ack>).
/// Returns shared_ptr<T> so call sites can mutate before publishing as
/// a MsgPtr.
template <typename T, typename... Args>
std::shared_ptr<T> make_msg(Args&&... args) {
  static_assert(std::is_base_of_v<Message, std::remove_const_t<T>>,
                "make_msg is for protocol messages; use make_pooled");
  return make_pooled<T>(std::forward<Args>(args)...);
}

}  // namespace wrs
