// Typed messages with wire-size accounting.
//
// Protocols define message structs deriving from Message. The runtime
// passes shared_ptr<const Message> between processes (zero-copy in both
// runtimes); wire_size() reports what the message would occupy if
// serialized, so experiments can account for bytes on the wire (the
// piggybacked change sets of Algorithm 5/6 are the interesting case).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.h"

namespace wrs {

class Message {
 public:
  virtual ~Message() = default;

  /// Short type name for logging/metrics ("RC", "T_ACK", "W", ...).
  virtual std::string type_name() const = 0;

  /// Estimated serialized size in bytes (header included).
  virtual std::size_t wire_size() const = 0;

 protected:
  /// Fixed per-message header: type tag, from, to, length.
  static constexpr std::size_t kHeaderBytes = 16;
};

using MsgPtr = std::shared_ptr<const Message>;

/// An addressed message in flight.
struct Envelope {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  MsgPtr msg;
};

/// Safe downcast helper: returns nullptr when the runtime delivered a
/// different message type.
template <typename T>
const T* msg_cast(const Message& m) {
  return dynamic_cast<const T*>(&m);
}

}  // namespace wrs
