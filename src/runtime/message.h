// Typed messages with wire-size accounting.
//
// Protocols define message structs deriving from Message. The runtime
// passes shared_ptr<const Message> between processes (zero-copy in both
// runtimes); wire_size() reports what the message would occupy if
// serialized, so experiments can account for bytes on the wire (the
// piggybacked change sets of Algorithm 5/6 are the interesting case).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>

#include "common/types.h"

namespace wrs {

class Message {
 public:
  /// Process-wide unique tag per concrete message type, allocated lazily
  /// on first use. Dispatch compares tags instead of running dynamic_cast
  /// (msg_cast sits on the per-message hot path of both runtimes).
  using TypeId = std::uint32_t;

  virtual ~Message() = default;

  /// The concrete type's tag; implemented once by MessageBase below.
  virtual TypeId type_id() const = 0;

  /// Short type name for logging/metrics ("RC", "T_ACK", "W", ...).
  virtual std::string type_name() const = 0;

  /// Estimated serialized size in bytes (header included).
  virtual std::size_t wire_size() const = 0;

  /// Allocates a fresh tag (one per concrete type; see message_type_id).
  static TypeId allocate_type_id() {
    static std::atomic<TypeId> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
  }

 protected:
  /// Fixed per-message header: type tag, from, to, length.
  static constexpr std::size_t kHeaderBytes = 16;
};

/// The tag of concrete message type T (stable for the process lifetime;
/// thread-safe via C++ static-local initialization).
template <typename T>
Message::TypeId message_type_id() {
  static const Message::TypeId id = Message::allocate_type_id();
  return id;
}

/// CRTP base every concrete message derives from:
///
///   class ReadReq : public MessageBase<ReadReq> { ... };
///
/// It pins type_id() to the derived type's tag, which is what makes the
/// cheap msg_cast below sound. Concrete message types must not be further
/// derived from (type_id is final).
template <typename Derived>
class MessageBase : public Message {
 public:
  TypeId type_id() const final { return message_type_id<Derived>(); }
};

using MsgPtr = std::shared_ptr<const Message>;

/// An addressed message in flight.
struct Envelope {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  MsgPtr msg;
};

/// Safe downcast helper: returns nullptr when the runtime delivered a
/// different message type. A tag comparison plus static_cast — no RTTI
/// walk on the delivery hot path.
template <typename T>
const T* msg_cast(const Message& m) {
  static_assert(std::is_base_of_v<MessageBase<T>, T>,
                "message types derive from MessageBase<T>");
  return m.type_id() == message_type_id<T>() ? static_cast<const T*>(&m)
                                             : nullptr;
}

}  // namespace wrs
