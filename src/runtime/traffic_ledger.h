// Lock-free traffic accounting for the runtime send/receive hot paths.
//
// The previous design bumped a string-keyed Counters map under the
// env-wide mutex — every send built "msg." + type_name() (a heap
// allocation), then serialized all senders on one lock. TrafficLedger
// replaces that with pre-interned slots:
//
//  - well-known events are enum indices into an array of relaxed
//    atomics — no key, no lock;
//  - per-message-type counts index by Message::TypeId; the id→name
//    string is interned once per process (first message of that type)
//    in a global registry, so the hot path never touches a string;
//  - counters are sharded across cache-line-aligned banks selected by a
//    thread-local id (the hardware_destructive_interference_size idiom,
//    SNIPPETS.md #1), so concurrent senders do not bounce one line.
//
// snapshot() folds the shards into a Counters map using the exact key
// names the string-keyed ledger produced ("msgs", "bytes", "msg.<T>",
// "msgs.lost", ...), emitting only nonzero keys — so Cluster::traffic()
// / shard_traffic() output is unchanged and stays pinned by tests.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "common/cacheline.h"
#include "common/metrics.h"
#include "runtime/message.h"

namespace wrs {

class TrafficLedger {
 public:
  enum Slot : unsigned {
    kMsgs = 0,
    kBytes,
    kMsgsLost,
    kMsgsDup,
    kMsgsIn,
    kBytesIn,
    kMsgsUnroutable,
    kMsgsMalformed,
    kMsgsNoHandler,
    /// Reads completed in one round (AbdClient fast path: the phase-1
    /// quorum unanimously reported the max tag, so the write-back was
    /// provably redundant and skipped).
    kReadsFastPath,
    kSlotCount,
  };

  /// Per-type slots cover TypeIds 1..kMaxTypeIds-1; the protocol defines
  /// ~25 concrete message types, ids are allocated densely from 1, and
  /// anything past the cap folds into a "msg.other" bucket rather than
  /// being dropped.
  static constexpr std::size_t kMaxTypeIds = 64;

  TrafficLedger() = default;
  TrafficLedger(const TrafficLedger&) = delete;
  TrafficLedger& operator=(const TrafficLedger&) = delete;

  void inc(Slot slot, std::int64_t by = 1) {
    shard().named[slot].fetch_add(by, std::memory_order_relaxed);
  }

  /// The send-path triple — "msgs", "bytes", "msg.<type>" — in one call
  /// with no lock and no string construction.
  void count_message(const Message& msg, std::int64_t bytes);

  /// Sum of one well-known slot across shards.
  std::int64_t get(Slot slot) const;

  /// Materializes the ledger as string-keyed Counters (nonzero keys
  /// only). Sums are relaxed reads, exact once senders have quiesced.
  Counters snapshot() const;

 private:
  // 8 banks bound the footprint (~5 KiB/ledger) while splitting the
  // handful of runtime threads (workers + timer + app threads) that
  // count concurrently.
  static constexpr std::size_t kShards = 8;

  struct alignas(kCacheLineSize) Shard {
    std::array<std::atomic<std::int64_t>, kSlotCount> named{};
    std::array<std::atomic<std::int64_t>, kMaxTypeIds> per_type{};
  };

  Shard& shard();

  std::array<Shard, kShards> shards_;
};

}  // namespace wrs
