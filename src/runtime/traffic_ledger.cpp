#include "runtime/traffic_ledger.h"

#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace wrs {

namespace {

constexpr const char* kSlotNames[TrafficLedger::kSlotCount] = {
    "msgs",            "bytes",          "msgs.lost",
    "msgs.dup",        "msgs.in",        "bytes.in",
    "msgs.unroutable", "msgs.malformed", "msgs.no_handler",
    "reads.fast_path",
};

// Process-wide TypeId -> "msg.<type_name>" registry. Entries are
// interned at most once per concrete message type (not per message):
// readers do a single acquire load; the slow path takes a mutex, builds
// the string, and publishes with release. Strings are owned by a static
// vector so the const char* stays valid for the process lifetime.
std::mutex g_intern_mu;
std::array<std::atomic<const char*>, TrafficLedger::kMaxTypeIds>
    g_type_keys{};

const char* intern_type_key(Message::TypeId id, const Message& msg) {
  std::lock_guard<std::mutex> lock(g_intern_mu);
  const char* existing = g_type_keys[id].load(std::memory_order_relaxed);
  if (existing != nullptr) return existing;
  static std::vector<std::unique_ptr<std::string>> owned;
  owned.push_back(std::make_unique<std::string>("msg." + msg.type_name()));
  const char* key = owned.back()->c_str();
  g_type_keys[id].store(key, std::memory_order_release);
  return key;
}

}  // namespace

void TrafficLedger::count_message(const Message& msg, std::int64_t bytes) {
  Shard& s = shard();
  s.named[kMsgs].fetch_add(1, std::memory_order_relaxed);
  s.named[kBytes].fetch_add(bytes, std::memory_order_relaxed);
  const Message::TypeId id = msg.type_id();
  if (id < kMaxTypeIds) {
    if (g_type_keys[id].load(std::memory_order_acquire) == nullptr) {
      intern_type_key(id, msg);
    }
    s.per_type[id].fetch_add(1, std::memory_order_relaxed);
  } else {
    // Overflow bucket; unreachable with the current ~25 message types.
    s.per_type[0].fetch_add(1, std::memory_order_relaxed);
  }
}

std::int64_t TrafficLedger::get(Slot slot) const {
  std::int64_t sum = 0;
  for (const Shard& s : shards_) {
    sum += s.named[slot].load(std::memory_order_relaxed);
  }
  return sum;
}

Counters TrafficLedger::snapshot() const {
  Counters out;
  for (unsigned slot = 0; slot < kSlotCount; ++slot) {
    std::int64_t sum = 0;
    for (const Shard& s : shards_) {
      sum += s.named[slot].load(std::memory_order_relaxed);
    }
    if (sum != 0) out.inc(kSlotNames[slot], sum);
  }
  for (std::size_t id = 0; id < kMaxTypeIds; ++id) {
    std::int64_t sum = 0;
    for (const Shard& s : shards_) {
      sum += s.per_type[id].load(std::memory_order_relaxed);
    }
    if (sum == 0) continue;
    const char* key = g_type_keys[id].load(std::memory_order_acquire);
    out.inc(key != nullptr ? key : "msg.other", sum);
  }
  return out;
}

TrafficLedger::Shard& TrafficLedger::shard() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned bank =
      next.fetch_add(1, std::memory_order_relaxed);
  return shards_[bank % kShards];
}

}  // namespace wrs
