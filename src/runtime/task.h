// Move-only callable with small-buffer storage, plus a growable ring of
// them. Together these keep the runtime delivery path allocation-free:
//
//  - `std::function` must be copyable, so it cannot hold a move-only
//    capture (an owned MsgPtr moved off the send path), and libstdc++'s
//    inline buffer is 16 bytes — a delivery closure {Mailbox*, from,
//    MsgPtr} at 32 bytes always heap-allocates. `Task` is move-only with
//    a 48-byte inline buffer, so every runtime closure fits inline.
//  - `TaskRing` is a power-of-two ring that only ever grows (the
//    zephyr `lib/os/heap.h` pool idiom: reserve once, reuse forever), so
//    a mailbox's steady-state push/pop never touches the allocator,
//    unlike std::deque which frees and reallocates blocks as it drains.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace wrs {

class Task {
 public:
  // Sized for the largest runtime closure: {ptr, pid, pid, MsgPtr} is
  // 32 bytes; 48 leaves headroom for one extra capture without growing
  // Task past one cache line alongside its vtable pointer.
  static constexpr std::size_t kInlineBytes = 48;

  Task() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Task> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Task(F&& f) {  // NOLINT(google-explicit-constructor): callable wrapper
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &kInlineVTable<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &kHeapVTable<Fn>;
    }
  }

  Task(Task&& other) noexcept : vt_(other.vt_) {
    if (vt_ != nullptr) {
      vt_->relocate(other.buf_, buf_);
      other.vt_ = nullptr;
    }
  }

  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_ != nullptr) {
        vt_->relocate(other.buf_, buf_);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { reset(); }

  explicit operator bool() const { return vt_ != nullptr; }

  void operator()() { vt_->invoke(buf_); }

 private:
  struct VTable {
    void (*invoke)(void* self);
    // Move-construct dst from src, then destroy src.
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void* self);
  };

  template <typename Fn>
  static constexpr VTable kInlineVTable = {
      [](void* self) { (*static_cast<Fn*>(self))(); },
      [](void* src, void* dst) {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* self) { static_cast<Fn*>(self)->~Fn(); },
  };

  template <typename Fn>
  static constexpr VTable kHeapVTable = {
      [](void* self) { (**static_cast<Fn**>(self))(); },
      [](void* src, void* dst) {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* self) { delete *static_cast<Fn**>(self); },
  };

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

/// FIFO ring with power-of-two capacity that grows on demand and never
/// shrinks: after warm-up, push/pop are pointer bumps. T must be
/// default-constructible and move-assignable (Task, the transport's
/// command records).
template <typename T>
class GrowRing {
 public:
  bool empty() const { return head_ == tail_; }
  std::size_t size() const { return tail_ - head_; }
  std::size_t capacity() const { return buf_.size(); }

  void push(T t) {
    if (size() == buf_.size()) grow();
    buf_[tail_ & mask_] = std::move(t);
    ++tail_;
  }

  T pop() {
    T t = std::move(buf_[head_ & mask_]);
    buf_[head_ & mask_] = T{};  // release resources now, not a lap later
    ++head_;
    return t;
  }

  /// i-th element from the front (0 = next pop). The transport's
  /// scatter-gather flush peeks a span of queued segments without
  /// popping them until the kernel accepted their bytes.
  T& operator[](std::size_t i) { return buf_[(head_ + i) & mask_]; }
  const T& operator[](std::size_t i) const { return buf_[(head_ + i) & mask_]; }

  void clear() {
    while (!empty()) pop();
  }

  /// O(1) exchange — the transport's two-ring drain (producers fill one
  /// ring under a lock, the loop thread drains the other) hinges on it.
  void swap(GrowRing& other) noexcept {
    buf_.swap(other.buf_);
    std::swap(mask_, other.mask_);
    std::swap(head_, other.head_);
    std::swap(tail_, other.tail_);
  }

 private:
  void grow() {
    const std::size_t n = size();
    const std::size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < n; ++i) {
      next[i] = std::move(buf_[(head_ + i) & mask_]);
    }
    buf_ = std::move(next);
    mask_ = cap - 1;
    head_ = 0;
    tail_ = n;
  }

  std::vector<T> buf_;
  std::size_t mask_ = 0;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
};

/// The mailbox/timer ring of small-buffer Tasks.
using TaskRing = GrowRing<Task>;

}  // namespace wrs
