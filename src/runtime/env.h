// Runtime interface shared by the discrete-event simulator (SimEnv) and
// the thread-per-process runtime (ThreadEnv).
//
// Execution model (both runtimes guarantee it):
//  * Each process's handlers (`on_message`, scheduled callbacks,
//    `on_start`) run serially — never two at once for the same process.
//  * Links are reliable BY DEFAULT: a message from a correct process to
//    a correct process is eventually delivered exactly once; delivery
//    order between a pair of processes is NOT guaranteed (asynchrony).
//    The fault-injection plane (faults(), runtime/link_faults.h) can
//    deliberately violate reliability with partitions, probabilistic
//    loss, duplication, and (sim-only) bounded reordering.
//  * Crashing a process silently drops its queued and future messages.
//
// Protocols are event-driven state machines written only against this
// interface, so every protocol runs unmodified on both substrates.
#pragma once

#include <functional>
#include <memory>

#include "common/metrics.h"
#include "common/types.h"
#include "runtime/link_faults.h"
#include "runtime/message.h"
#include "runtime/task.h"
#include "runtime/traffic_ledger.h"

namespace wrs {

/// A deployed process (server or client role is up to the protocol).
class Process {
 public:
  virtual ~Process() = default;

  /// Called once before any message is delivered.
  virtual void on_start() {}

  /// Called for each delivered message, serialized per process.
  virtual void on_message(ProcessId from, const Message& msg) = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// Current time (simulated or wall-clock ns since construction).
  virtual TimeNs now() const = 0;

  /// Sends `msg` from `from` to `to`. Never blocks.
  virtual void send(ProcessId from, ProcessId to, MsgPtr msg) = 0;

  /// Runs `fn` in `pid`'s execution context after `delay`. Used for
  /// timeouts, retries, and workload pacing. If `pid` crashes before the
  /// deadline the callback is dropped. Task converts implicitly from any
  /// callable, holds small captures inline, and (unlike std::function)
  /// accepts move-only closures.
  virtual void schedule(ProcessId pid, TimeNs delay, Task fn) = 0;

  /// Registers the handler for `pid`. The process must outlive the Env run.
  virtual void register_process(ProcessId pid, Process* process) = 0;

  /// Crash-stops `pid`: queued and future messages/callbacks are dropped.
  virtual void crash(ProcessId pid) = 0;

  /// The fault-injection plane: partitions, message loss, duplication,
  /// reordering (see runtime/link_faults.h). Faults apply to messages
  /// SENT while active; healing does not resurrect dropped messages, so
  /// protocol liveness under faults needs retries
  /// (AbdClient::set_retry_interval) / anti-entropy
  /// (ReassignNode::enable_sync).
  virtual LinkFaults& faults() = 0;

  virtual bool is_crashed(ProcessId pid) const = 0;

  /// Message traffic counters ("msgs", "bytes", per-type counts).
  virtual const Counters& traffic() const = 0;

  /// Bumps a well-known ledger slot from protocol code (e.g. the ABD
  /// read fast path counting "reads.fast_path"). Lock-free on every
  /// runtime; the default is a no-op for minimal test doubles.
  virtual void count_event(TrafficLedger::Slot /*slot*/,
                           std::int64_t /*by*/ = 1) {}

  /// Broadcast helper: sends to every registered *server* id (< base),
  /// including `from` itself when it is a server — matching the paper's
  /// "broadcast to all servers" which includes the sender.
  void broadcast_to_servers(ProcessId from, const MsgPtr& msg);

  /// Group-scoped broadcast: sends to exactly `group` (including `from`
  /// when it is a member). Sharded deployments run several independent
  /// replica groups in one Env, so protocol components broadcast to
  /// their own config's server set rather than every registered server.
  void broadcast_to_group(ProcessId from, const std::vector<ProcessId>& group,
                          const MsgPtr& msg);

  /// All currently registered server ids (sorted).
  virtual std::vector<ProcessId> server_ids() const = 0;

  // --- per-shard traffic accounting ---------------------------------------
  /// Attributes a message to a shard: the destination server's shard, or
  /// (for replies to clients) the sending server's. Returns a negative
  /// value for messages touching no server.
  using ShardOfMessage = std::function<int(ProcessId from, ProcessId to)>;

  /// Installs per-shard msgs/bytes counters next to traffic(). Call
  /// before the deployment starts; on the thread runtime the counters
  /// are only stable once the deployment is quiescent (like traffic()).
  void enable_shard_traffic(std::size_t shards, ShardOfMessage shard_of);

  bool shard_traffic_enabled() const { return !shard_traffic_.empty(); }
  std::size_t shard_traffic_shards() const { return shard_traffic_.size(); }

  /// Message counters of shard `g`; throws std::out_of_range naming the
  /// offender and valid range. The returned reference is a snapshot
  /// materialized on each call — read it when the deployment is
  /// quiescent (like traffic()).
  const Counters& shard_traffic(std::size_t g) const;

 protected:
  /// Implementations call this from send(). Lock-free: the ledger is
  /// sharded atomics and `shard_of` is a pure function of the ids. This
  /// overload charges the modeled wire_size(); runtimes that serialize
  /// for real (SocketEnv) use the explicit-bytes overload with the
  /// frame's actual encoded size so the per-shard ledger matches what
  /// crossed the kernel.
  void count_shard_traffic(ProcessId from, ProcessId to, const Message& msg);
  void count_shard_traffic(ProcessId from, ProcessId to, std::size_t bytes);

 private:
  std::vector<TrafficLedger> shard_traffic_;
  mutable std::vector<Counters> shard_traffic_export_;
  ShardOfMessage shard_of_;
};

}  // namespace wrs
