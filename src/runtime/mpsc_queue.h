// Bounded lock-free MPSC ring (Vyukov's bounded MPMC queue specialized
// to one consumer).
//
// Each cell carries a sequence number that encodes whose turn it is:
// producers CAS the shared enqueue cursor to claim a cell, write the
// value, then publish by bumping the cell's sequence; the single
// consumer owns the dequeue cursor outright (a plain member — no atomic
// RMW on the pop side at all) and recycles a cell by advancing its
// sequence a full lap. Steady-state cost: one CAS per push, one acquire
// load per pop, zero allocations after construction.
//
// try_push is total: it returns false on a full ring WITHOUT consuming
// the value, so callers can divert to an overflow path (ThreadEnv's
// mutex-guarded spill ring) while every in-ring message survives.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

#include "common/cacheline.h"

namespace wrs {

template <typename T>
class MpscRing {
 public:
  /// `capacity` is rounded up to a power of two (min 2). Cells are
  /// default-constructed once; push/pop move-assign through them.
  explicit MpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap *= 2;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Multi-producer push. False when full; `v` is untouched then.
  bool try_push(T&& v) {
    Cell* cell;
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      std::size_t seq = cell->seq.load(std::memory_order_acquire);
      std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                          static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // the consumer has not recycled this cell: full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->val = std::move(v);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Single-consumer pop. False when no published item is ready.
  bool try_pop(T& out) {
    Cell& cell = cells_[dequeue_pos_ & mask_];
    if (cell.seq.load(std::memory_order_acquire) != dequeue_pos_ + 1) {
      return false;
    }
    out = std::move(cell.val);
    cell.val = T{};  // release captured resources now, not a lap later
    cell.seq.store(dequeue_pos_ + mask_ + 1, std::memory_order_release);
    ++dequeue_pos_;
    return true;
  }

  /// Consumer-only peek: is a published item ready? (Used by the worker
  /// park/unpark handshake; meaningless from producer threads.)
  bool can_pop() const {
    const Cell& cell = cells_[dequeue_pos_ & mask_];
    return cell.seq.load(std::memory_order_acquire) == dequeue_pos_ + 1;
  }

 private:
  // Cells are deliberately unpadded (Vyukov's layout): neighboring-cell
  // false sharing only costs on the claim/publish instants, and padding
  // would double the footprint of every mailbox.
  struct Cell {
    std::atomic<std::size_t> seq;
    T val{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(kCacheLineSize) std::atomic<std::size_t> enqueue_pos_{0};
  // Owned by the single consumer; producers never touch it.
  alignas(kCacheLineSize) std::size_t dequeue_pos_ = 0;
};

}  // namespace wrs
