// Message latency models for the simulator.
//
// The paper's system model is fully asynchronous: message delays are
// finite but unbounded. The simulator approximates adversarial asynchrony
// with seeded random delays; tests sweep seeds to explore schedules.
// Benches use WAN-profile matrices so latency numbers are geo-realistic.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace wrs {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Delay for one message from `from` to `to`.
  virtual TimeNs sample(ProcessId from, ProcessId to, Rng& rng) = 0;
};

/// Fixed delay for every message.
class ConstantLatency : public LatencyModel {
 public:
  explicit ConstantLatency(TimeNs delay) : delay_(delay) {}
  TimeNs sample(ProcessId, ProcessId, Rng&) override { return delay_; }

 private:
  TimeNs delay_;
};

/// Uniform in [lo, hi).
class UniformLatency : public LatencyModel {
 public:
  UniformLatency(TimeNs lo, TimeNs hi) : lo_(lo), hi_(hi) {}
  TimeNs sample(ProcessId, ProcessId, Rng& rng) override {
    return lo_ + static_cast<TimeNs>(
                     rng.below(static_cast<std::uint64_t>(hi_ - lo_)));
  }

 private:
  TimeNs lo_;
  TimeNs hi_;
};

/// Heavy-tailed delays: base + Pareto(alpha, scale) tail, capped.
/// A good stand-in for adversarial asynchrony — some messages arrive
/// "much later" than most.
class HeavyTailLatency : public LatencyModel {
 public:
  HeavyTailLatency(TimeNs base, TimeNs scale, double alpha, TimeNs cap)
      : base_(base), scale_(scale), alpha_(alpha), cap_(cap) {}
  TimeNs sample(ProcessId from, ProcessId to, Rng& rng) override;

 private:
  TimeNs base_;
  TimeNs scale_;
  double alpha_;
  TimeNs cap_;
};

/// Per-site round-trip matrix: each process is mapped to a site; the
/// one-way delay between sites is half the RTT plus lognormal-ish jitter.
/// Used with the geo profiles in src/workload/wan_profiles.h.
class SiteMatrixLatency : public LatencyModel {
 public:
  /// `rtt_ms[i][j]` is the RTT between site i and site j in milliseconds;
  /// `site_of(pid)` maps processes to sites.
  SiteMatrixLatency(std::vector<std::vector<double>> rtt_ms,
                    std::function<std::size_t(ProcessId)> site_of,
                    double jitter_frac = 0.05);

  TimeNs sample(ProcessId from, ProcessId to, Rng& rng) override;

 private:
  std::vector<std::vector<double>> rtt_ms_;
  std::function<std::size_t(ProcessId)> site_of_;
  double jitter_frac_;
};

/// Wraps another model and slows traffic to/from selected processes by a
/// multiplicative factor — models a degraded replica for the adaptation
/// experiments. Factors and the wrapped model can be changed mid-run;
/// mutations are synchronized so scenario scripts may run on a different
/// thread than the (thread-runtime) sampler.
class DegradableLatency : public LatencyModel {
 public:
  /// Accepts shared_ptr or (implicitly converted) unique_ptr.
  explicit DegradableLatency(std::shared_ptr<LatencyModel> inner)
      : inner_(std::move(inner)) {}

  void set_factor(ProcessId pid, double factor);
  void clear_factor(ProcessId pid);

  /// Swaps the wrapped model, keeping the degradation factors.
  void set_inner(std::shared_ptr<LatencyModel> inner);

  TimeNs sample(ProcessId from, ProcessId to, Rng& rng) override;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<LatencyModel> inner_;
  std::vector<std::pair<ProcessId, double>> factors_;
};

}  // namespace wrs
