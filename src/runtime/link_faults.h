// Per-link fault-injection plane shared by both runtimes.
//
// The paper's system model assumes reliable links; this plane lets tests
// and chaos harnesses violate that assumption on purpose:
//
//  * partition(a, b) / heal(a, b)       — cut both directions of a link;
//  * cut_one_way(from, to)              — asymmetric partition;
//  * set_drop(a, b, p)                  — lose each message with prob. p;
//  * set_duplicate(a, b, p)             — deliver each message twice with
//                                         probability p;
//  * set_reorder(p, max_extra)          — give each message an extra delay
//                                         uniform in [0, max_extra) with
//                                         probability p (bounded
//                                         reordering; the simulator applies
//                                         it seeded and deterministically,
//                                         the thread runtime ignores it).
//
// Semantics: faults apply to messages SENT while the fault is active.
// Cut/dropped messages are LOST, not buffered — healing does not
// resurrect them, exactly like a real network that threw the packets
// away. Protocol liveness under faults therefore needs retransmission
// (AbdClient::set_retry_interval) and/or anti-entropy
// (ReassignNode::enable_sync). Self-loops (from == to) are never faulted:
// a process can always talk to itself.
//
// Internally synchronized: scenario scripts mutate the plane from the
// thread runtime's timer thread while workers send. decide() draws from
// the CALLER's rng (the env's seeded stream) and only for links with
// probabilistic faults configured, so fault-free runs consume no
// randomness and stay bit-for-bit identical to pre-fault-plane builds.
#pragma once

#include <atomic>
#include <map>
#include <mutex>
#include <utility>

#include "common/rng.h"
#include "common/types.h"

namespace wrs {

class LinkFaults {
 public:
  /// The fate of one message, decided at send time.
  struct Decision {
    bool deliver = true;
    bool duplicate = false;
    TimeNs extra_delay = 0;  // bounded-reorder extra (simulator only)
  };

  // --- symmetric verbs -----------------------------------------------------
  /// Cuts both directions of the a<->b link.
  void partition(ProcessId a, ProcessId b);
  /// Restores both directions of the a<->b link (drop/duplicate rates on
  /// the link are kept; only the cut is removed).
  void heal(ProcessId a, ProcessId b);
  /// Loses each message on the a<->b link (both directions) with
  /// probability p; p <= 0 clears.
  void set_drop(ProcessId a, ProcessId b, double p);
  /// Delivers each message on the a<->b link (both directions) twice with
  /// probability p; p <= 0 clears.
  void set_duplicate(ProcessId a, ProcessId b, double p);

  /// Network-wide storm rates applying to EVERY link — including links of
  /// processes deployed while the storm is active (restarted readers).
  /// Per-link settings and the storm compose by "the stronger wins".
  void set_drop_all(double p);
  void set_duplicate_all(double p);

  // --- directional verbs ---------------------------------------------------
  /// Cuts only the from->to direction (asymmetric partition: `to` still
  /// reaches `from`).
  void cut_one_way(ProcessId from, ProcessId to);
  void heal_one_way(ProcessId from, ProcessId to);

  // --- global knobs --------------------------------------------------------
  /// Bounded reordering: with probability p a message gets an extra delay
  /// uniform in [0, max_extra). Applied (seeded) by the simulator only.
  void set_reorder(double p, TimeNs max_extra);

  /// Clears every cut, drop/duplicate rate, and the reorder knob.
  void heal_all();

  // --- queries -------------------------------------------------------------
  bool is_cut(ProcessId from, ProcessId to) const;
  /// Cheap fast-path check: false iff no fault of any kind is configured.
  bool active() const { return active_.load(std::memory_order_acquire); }

  /// Decides the fate of one from->to message, drawing from `rng` only
  /// when the link has probabilistic faults (or reordering is on). The
  /// caller must own `rng` (both envs call this under their own
  /// serialization).
  Decision decide(ProcessId from, ProcessId to, Rng& rng);

 private:
  struct Link {
    bool cut = false;
    double drop_p = 0;
    double dup_p = 0;
    bool trivial() const { return !cut && drop_p <= 0 && dup_p <= 0; }
  };
  using Key = std::pair<ProcessId, ProcessId>;

  /// Applies `fn` to the directed link, erasing it again when trivial.
  template <typename Fn>
  void mutate(ProcessId from, ProcessId to, Fn fn) {
    std::lock_guard lock(mu_);
    Link& link = links_[Key{from, to}];
    fn(link);
    if (link.trivial()) links_.erase(Key{from, to});
    refresh_active();
  }

  void refresh_active() {
    active_.store(!links_.empty() || reorder_p_ > 0 || drop_all_p_ > 0 ||
                      dup_all_p_ > 0,
                  std::memory_order_release);
  }

  mutable std::mutex mu_;
  std::map<Key, Link> links_;
  double drop_all_p_ = 0;
  double dup_all_p_ = 0;
  double reorder_p_ = 0;
  TimeNs reorder_max_ = 0;
  std::atomic<bool> active_{false};
};

}  // namespace wrs
