#include "runtime/thread_env.h"

#include <cassert>
#include <stdexcept>

#include "common/logging.h"

namespace wrs {

using Clock = std::chrono::steady_clock;

ThreadEnv::ThreadEnv(std::shared_ptr<LatencyModel> latency, std::uint64_t seed,
                     std::size_t mailbox_slots)
    : latency_(std::move(latency)),
      epoch_(Clock::now()),
      mailbox_slots_(mailbox_slots < 2 ? 2 : mailbox_slots),
      rng_(seed) {
  // Publish an empty routing table so send() never sees null.
  auto empty = std::make_unique<Routing>();
  routing_.store(empty.get(), std::memory_order_release);
  routing_history_.push_back(std::move(empty));
}

ThreadEnv::~ThreadEnv() { stop(); }

TimeNs ThreadEnv::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch_)
      .count();
}

void ThreadEnv::publish_routing_locked() {
  auto next = std::make_unique<Routing>();
  next->entries.reserve(boxes_.size());
  for (const auto& [pid, box] : boxes_) {
    next->entries.emplace_back(pid, box.get());  // std::map: already sorted
  }
  routing_.store(next.get(), std::memory_order_release);
  // Retired tables stay alive until destruction: a sender holding a stale
  // pointer only ever misses processes registered after its load, which
  // is indistinguishable from sending a moment earlier.
  routing_history_.push_back(std::move(next));
}

void ThreadEnv::register_process(ProcessId pid, Process* process) {
  if (process == nullptr) {
    throw std::invalid_argument("ThreadEnv: null process");
  }
  // The whole registration happens under mu_ so it is atomic with respect
  // to stop()'s box snapshot: a registration either completes fully
  // before the snapshot (its worker gets joined) or observes stopping_
  // and spawns nothing.
  std::lock_guard lock(mu_);
  if (boxes_.count(pid) != 0) {
    throw std::logic_error("ThreadEnv: process " + process_name(pid) +
                           " already registered");
  }
  auto box = std::make_unique<Mailbox>(mailbox_slots_);
  box->process = process;
  Mailbox* live = box.get();
  boxes_[pid] = std::move(box);
  publish_routing_locked();
  if (started_ && !stopping_) {
    // Mid-run deployment (e.g. a crashed reader restarting as a new
    // process): spawn the worker and deliver on_start immediately.
    live->worker = std::thread([this, live] { worker_loop(live); });
    enqueue_task(live, Task([live] { live->process->on_start(); }));
  }
}

void ThreadEnv::start() {
  // The whole launch runs under mu_ so it is atomic with respect to a
  // concurrent (now-legal) register_process: every box is spawned exactly
  // once — by start() if it was registered before, by register_process if
  // after.
  std::lock_guard lock(mu_);
  if (started_) return;
  started_ = true;
  timer_thread_ = std::thread([this] { timer_loop(); });
  for (auto& [pid, box] : boxes_) {
    Mailbox* b = box.get();
    b->worker = std::thread([this, b] { worker_loop(b); });
    enqueue_task(b, Task([b] { b->process->on_start(); }));
  }
}

void ThreadEnv::stop() {
  std::vector<Mailbox*> boxes;
  {
    std::lock_guard lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
    // Snapshot under mu_: late register_process either finished before
    // this point (worker joined below) or sees stopping_ and stays inert.
    boxes.reserve(boxes_.size());
    for (auto& [pid, box] : boxes_) boxes.push_back(box.get());
  }
  {
    std::lock_guard lock(timer_mu_);
    timer_stop_ = true;
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
  for (Mailbox* box : boxes) {
    {
      std::lock_guard lock(box->mu);
      box->stopped.store(true, std::memory_order_release);
    }
    box->cv.notify_all();
  }
  for (Mailbox* box : boxes) {
    if (box->worker.joinable()) box->worker.join();
  }
}

void ThreadEnv::worker_loop(Mailbox* box) {
  for (;;) {
    // stop() may leave tasks undelivered (it "drains nothing"); checking
    // here — not just when idle — keeps that prompt under load.
    if (box->stopped.load(std::memory_order_acquire)) return;
    Task task;
    bool have = false;
    if (box->ring.try_pop(task)) {
      have = true;
    } else if (box->overflow_active.load(std::memory_order_acquire)) {
      // Ring empty and a spill exists: drain it under the lock. The flag
      // clears only here, with the overflow empty, so producers keep
      // diverting (preserving their FIFO) until every spilled task left.
      std::lock_guard lock(box->mu);
      if (!box->overflow.empty()) {
        task = box->overflow.pop();
        have = true;
      }
      if (box->overflow.empty()) {
        box->overflow_active.store(false, std::memory_order_release);
      }
    } else {
      // Park. Dekker handshake with the producers' post-push fence:
      // advertise parked, fence, recheck — either this sees the push, or
      // the producer's fenced load sees parked and notifies under mu.
      box->parked.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (box->ring.can_pop() ||
          box->overflow_active.load(std::memory_order_acquire) ||
          box->stopped.load(std::memory_order_acquire)) {
        box->parked.store(false, std::memory_order_relaxed);
        continue;
      }
      std::unique_lock lock(box->mu);
      box->cv.wait(lock, [box] {
        return box->stopped.load(std::memory_order_acquire) ||
               box->overflow_active.load(std::memory_order_acquire) ||
               box->ring.can_pop();
      });
      box->parked.store(false, std::memory_order_relaxed);
      continue;
    }
    if (have && !box->crashed.load(std::memory_order_relaxed)) {
      task();
    }
    // Crashed: the popped task is destroyed unexecuted (drain).
  }
}

void ThreadEnv::enqueue_task(Mailbox* box, Task fn) {
  if (box->crashed.load(std::memory_order_acquire)) return;
  if (!box->overflow_active.load(std::memory_order_acquire) &&
      box->ring.try_push(std::move(fn))) {
    // Lock-free publish succeeded. Notify only when the worker is
    // parked; the fence pairs with the worker's park-then-recheck so a
    // wakeup is never missed.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (box->parked.load(std::memory_order_relaxed)) {
      { std::lock_guard lock(box->mu); }  // order notify after the wait
      box->cv.notify_one();
    }
    return;
  }
  // Ring full (or a spill is already active): divert to the locked
  // overflow ring. The worker drains it ring-first, so the diverted
  // task is delivered after everything already published.
  {
    std::lock_guard lock(box->mu);
    if (box->stopped.load(std::memory_order_relaxed) ||
        box->crashed.load(std::memory_order_relaxed)) {
      return;
    }
    box->overflow_active.store(true, std::memory_order_release);
    box->overflow.push(std::move(fn));
  }
  box->cv.notify_one();
}

void ThreadEnv::send(ProcessId from, ProcessId to, MsgPtr msg) {
  if (!msg) throw std::invalid_argument("ThreadEnv::send: null message");
  const Routing* routes = routing();
  Mailbox* src = routes->find(from);
  if (src != nullptr && src->crashed.load(std::memory_order_acquire)) return;
  ledger_.count_message(*msg, static_cast<std::int64_t>(msg->wire_size()));
  count_shard_traffic(from, to, *msg);
  TimeNs delay = 0;
  TimeNs dup_delay = -1;  // >= 0 iff the message is duplicated
  if (faults_.active() || latency_) {
    // Only fault decisions and latency samples need the seeded rng; the
    // default configuration never takes this lock.
    std::lock_guard lock(rng_mu_);
    if (faults_.active()) {
      LinkFaults::Decision fate = faults_.decide(from, to, rng_);
      if (!fate.deliver) {
        ledger_.inc(TrafficLedger::kMsgsLost);
        return;
      }
      if (fate.duplicate) {
        ledger_.inc(TrafficLedger::kMsgsDup);
        dup_delay = latency_ ? latency_->sample(from, to, rng_) : 0;
      }
      // fate.extra_delay (bounded reordering) is sim-only; ignored here.
    }
    if (latency_) delay = latency_->sample(from, to, rng_);
  }
  Mailbox* box = routes->find(to);
  if (box == nullptr) return;  // unknown target: drop
  // The duplicate (rare) pays for its own closure; the common path below
  // builds exactly one Task and MOVES the MsgPtr into it.
  if (dup_delay >= 0) {
    Task dup([box, from, msg] { box->process->on_message(from, *msg); });
    if (dup_delay <= 0) {
      enqueue_task(box, std::move(dup));
    } else {
      timer_schedule(Clock::now() + std::chrono::nanoseconds(dup_delay), to,
                     std::move(dup));
    }
  }
  Task deliver([box, from, msg = std::move(msg)] {
    // Executes in `to`'s context (on its worker thread). The Mailbox
    // pointer stays valid for the env's lifetime.
    box->process->on_message(from, *msg);
  });
  if (delay <= 0) {
    enqueue_task(box, std::move(deliver));
  } else {
    timer_schedule(Clock::now() + std::chrono::nanoseconds(delay), to,
                   std::move(deliver));
  }
}

void ThreadEnv::schedule(ProcessId pid, TimeNs delay, Task fn) {
  timer_schedule(Clock::now() + std::chrono::nanoseconds(delay), pid,
                 std::move(fn));
}

void ThreadEnv::timer_schedule(Clock::time_point at, ProcessId pid, Task fn) {
  bool wake = false;
  {
    std::lock_guard lock(timer_mu_);
    if (timer_stop_) return;
    // The timer thread only needs a nudge when this deadline preempts
    // the one it is currently sleeping toward.
    wake = timers_.empty() || at < timers_.top().at;
    timers_.push(TimerItem{at, timer_seq_++, pid, std::move(fn)});
  }
  if (wake) timer_cv_.notify_one();
}

void ThreadEnv::timer_loop() {
  std::unique_lock lock(timer_mu_);
  for (;;) {
    if (timer_stop_) return;
    if (timers_.empty()) {
      timer_cv_.wait(lock, [this] { return timer_stop_ || !timers_.empty(); });
      continue;
    }
    auto next_at = timers_.top().at;
    if (Clock::now() < next_at) {
      timer_cv_.wait_until(lock, next_at);
      continue;
    }
    TimerItem item = std::move(const_cast<TimerItem&>(timers_.top()));
    timers_.pop();
    lock.unlock();
    if (item.pid == kNoProcess) {
      // Env-internal work (scenario scripts) always runs — matching the
      // simulator, where kNoProcess events ignore the crashed set. It
      // executes on the timer thread, so it must only touch
      // thread-safe state.
      item.fn();
    } else {
      // Routed through the target's mailbox; enqueue_task drops the task
      // if the process crashed while the timer was pending (crash
      // semantics for in-flight deliveries, pinned by test).
      Mailbox* box = routing()->find(item.pid);
      if (box != nullptr) enqueue_task(box, std::move(item.fn));
    }
    lock.lock();
  }
}

void ThreadEnv::crash(ProcessId pid) {
  Mailbox* box = routing()->find(pid);
  if (box == nullptr) return;
  box->crashed.store(true, std::memory_order_release);
  {
    std::lock_guard lock(box->mu);
    box->overflow.clear();
  }
  // Only the worker may pop the lock-free ring: wake it so it promptly
  // drains (and destroys, unexecuted) whatever was already published.
  box->cv.notify_one();
}

bool ThreadEnv::is_crashed(ProcessId pid) const {
  Mailbox* box = routing()->find(pid);
  return box != nullptr && box->crashed.load(std::memory_order_acquire);
}

const Counters& ThreadEnv::traffic() const {
  traffic_export_ = ledger_.snapshot();
  return traffic_export_;
}

std::vector<ProcessId> ThreadEnv::server_ids() const {
  const Routing* routes = routing();
  std::vector<ProcessId> out;
  for (const auto& [pid, box] : routes->entries) {
    if (is_server(pid)) out.push_back(pid);
  }
  return out;
}

}  // namespace wrs
