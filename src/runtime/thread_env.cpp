#include "runtime/thread_env.h"

#include <cassert>
#include <stdexcept>

#include "common/logging.h"

namespace wrs {

using Clock = std::chrono::steady_clock;

ThreadEnv::ThreadEnv(std::shared_ptr<LatencyModel> latency, std::uint64_t seed)
    : latency_(std::move(latency)), epoch_(Clock::now()), rng_(seed) {}

ThreadEnv::~ThreadEnv() { stop(); }

TimeNs ThreadEnv::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch_)
      .count();
}

void ThreadEnv::register_process(ProcessId pid, Process* process) {
  if (process == nullptr) {
    throw std::invalid_argument("ThreadEnv: null process");
  }
  // The whole registration happens under mu_ so it is atomic with respect
  // to stop()'s box snapshot: a registration either completes fully
  // before the snapshot (its worker gets joined) or observes stopping_
  // and spawns nothing.
  std::lock_guard lock(mu_);
  if (boxes_.count(pid) != 0) {
    throw std::logic_error("ThreadEnv: process " + process_name(pid) +
                           " already registered");
  }
  auto box = std::make_unique<Mailbox>();
  box->process = process;
  Mailbox* live = box.get();
  boxes_[pid] = std::move(box);
  if (started_ && !stopping_) {
    // Mid-run deployment (e.g. a crashed reader restarting as a new
    // process): spawn the worker and deliver on_start immediately.
    live->worker = std::thread([this, live] { worker_loop(live); });
    {
      std::lock_guard box_lock(live->mu);
      live->tasks.push_back([live] { live->process->on_start(); });
    }
    live->cv.notify_one();
  }
}

void ThreadEnv::start() {
  // The whole launch runs under mu_ so it is atomic with respect to a
  // concurrent (now-legal) register_process: every box is spawned exactly
  // once — by start() if it was registered before, by register_process if
  // after.
  std::lock_guard lock(mu_);
  if (started_) return;
  started_ = true;
  timer_thread_ = std::thread([this] { timer_loop(); });
  for (auto& [pid, box] : boxes_) {
    Mailbox* b = box.get();
    b->worker = std::thread([this, b] { worker_loop(b); });
    {
      std::lock_guard box_lock(b->mu);
      b->tasks.push_back([b] { b->process->on_start(); });
    }
    b->cv.notify_one();
  }
}

void ThreadEnv::stop() {
  std::vector<Mailbox*> boxes;
  {
    std::lock_guard lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
    // Snapshot under mu_: late register_process either finished before
    // this point (worker joined below) or sees stopping_ and stays inert.
    boxes.reserve(boxes_.size());
    for (auto& [pid, box] : boxes_) boxes.push_back(box.get());
  }
  {
    std::lock_guard lock(timer_mu_);
    timer_stop_ = true;
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
  for (Mailbox* box : boxes) {
    {
      std::lock_guard lock(box->mu);
      box->stopped = true;
    }
    box->cv.notify_all();
  }
  for (Mailbox* box : boxes) {
    if (box->worker.joinable()) box->worker.join();
  }
}

void ThreadEnv::worker_loop(Mailbox* box) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(box->mu);
      box->cv.wait(lock,
                   [box] { return box->stopped || !box->tasks.empty(); });
      if (box->stopped) return;
      task = std::move(box->tasks.front());
      box->tasks.pop_front();
      if (box->crashed) continue;  // drain silently
    }
    task();
  }
}

void ThreadEnv::enqueue_task(ProcessId pid, std::function<void()> fn) {
  Mailbox* box = nullptr;
  {
    std::lock_guard lock(mu_);
    auto it = boxes_.find(pid);
    if (it == boxes_.end()) return;  // unknown target: drop
    box = it->second.get();
  }
  {
    std::lock_guard lock(box->mu);
    if (box->stopped || box->crashed) return;
    box->tasks.push_back(std::move(fn));
  }
  box->cv.notify_one();
}

void ThreadEnv::send(ProcessId from, ProcessId to, MsgPtr msg) {
  if (!msg) throw std::invalid_argument("ThreadEnv::send: null message");
  if (is_crashed(from)) return;
  TimeNs delay = 0;
  TimeNs dup_delay = -1;  // >= 0 iff the message is duplicated
  {
    std::lock_guard lock(mu_);
    traffic_.inc("msgs");
    traffic_.inc("bytes", static_cast<std::int64_t>(msg->wire_size()));
    traffic_.inc("msg." + msg->type_name());
    count_shard_traffic(from, to, *msg);
    if (faults_.active()) {
      LinkFaults::Decision fate = faults_.decide(from, to, rng_);
      if (!fate.deliver) {
        traffic_.inc("msgs.lost");
        return;
      }
      if (fate.duplicate) {
        traffic_.inc("msgs.dup");
        dup_delay = latency_ ? latency_->sample(from, to, rng_) : 0;
      }
      // fate.extra_delay (bounded reordering) is sim-only; ignored here.
    }
    if (latency_) delay = latency_->sample(from, to, rng_);
  }
  auto deliver = [this, from, to, msg] {
    Mailbox* box = nullptr;
    {
      std::lock_guard lock(mu_);
      auto it = boxes_.find(to);
      if (it == boxes_.end()) return;
      box = it->second.get();
    }
    // Execute in `to`'s context (we are already on its worker thread when
    // routed through enqueue_task).
    box->process->on_message(from, *msg);
  };
  if (dup_delay >= 0) {
    auto copy = deliver;
    if (dup_delay <= 0) {
      enqueue_task(to, std::move(copy));
    } else {
      timer_schedule(Clock::now() + std::chrono::nanoseconds(dup_delay), to,
                     std::move(copy));
    }
  }
  if (delay <= 0) {
    enqueue_task(to, std::move(deliver));
  } else {
    timer_schedule(Clock::now() + std::chrono::nanoseconds(delay), to,
                   std::move(deliver));
  }
}

void ThreadEnv::schedule(ProcessId pid, TimeNs delay,
                         std::function<void()> fn) {
  timer_schedule(Clock::now() + std::chrono::nanoseconds(delay), pid,
                 std::move(fn));
}

void ThreadEnv::timer_schedule(Clock::time_point at, ProcessId pid,
                               std::function<void()> fn) {
  {
    std::lock_guard lock(timer_mu_);
    if (timer_stop_) return;
    timers_.push(TimerItem{at, timer_seq_++, pid, std::move(fn)});
  }
  timer_cv_.notify_all();
}

void ThreadEnv::timer_loop() {
  std::unique_lock lock(timer_mu_);
  for (;;) {
    if (timer_stop_) return;
    if (timers_.empty()) {
      timer_cv_.wait(lock, [this] { return timer_stop_ || !timers_.empty(); });
      continue;
    }
    auto next_at = timers_.top().at;
    if (Clock::now() < next_at) {
      timer_cv_.wait_until(lock, next_at);
      continue;
    }
    TimerItem item = std::move(const_cast<TimerItem&>(timers_.top()));
    timers_.pop();
    lock.unlock();
    if (item.pid == kNoProcess) {
      // Env-internal work (scenario scripts) always runs — matching the
      // simulator, where kNoProcess events ignore the crashed set. It
      // executes on the timer thread, so it must only touch
      // thread-safe state.
      item.fn();
    } else {
      enqueue_task(item.pid, std::move(item.fn));
    }
    lock.lock();
  }
}

void ThreadEnv::crash(ProcessId pid) {
  Mailbox* box = nullptr;
  {
    std::lock_guard lock(mu_);
    auto it = boxes_.find(pid);
    if (it == boxes_.end()) return;
    box = it->second.get();
  }
  {
    std::lock_guard lock(box->mu);
    box->crashed = true;
    box->tasks.clear();
  }
}

bool ThreadEnv::is_crashed(ProcessId pid) const {
  std::lock_guard lock(mu_);
  auto it = boxes_.find(pid);
  if (it == boxes_.end()) return false;
  std::lock_guard block(it->second->mu);
  return it->second->crashed;
}

std::vector<ProcessId> ThreadEnv::server_ids() const {
  std::lock_guard lock(mu_);
  std::vector<ProcessId> out;
  for (const auto& [pid, _] : boxes_) {
    if (is_server(pid)) out.push_back(pid);
  }
  return out;
}

}  // namespace wrs
