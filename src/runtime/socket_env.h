// Env over real sockets: every send() is WireCodec-serialized into a
// length-prefixed frame and handed to a SocketTransport epoll reactor
// (src/net/socket_transport.h); every delivery is a decode of bytes that
// actually crossed the kernel. AbdClient/AbdServer/ReassignNode run
// byte-for-byte unchanged — they only see the Env interface.
//
// Deployment model: one SocketEnv per OS process, hosting that process's
// registered wrs processes (e.g. the n servers of one replica group).
// Remote processes are reached through
//  * static routes (add_route(pid, addr)) — how clients find servers and
//    how node binaries find each other from config, and
//  * learned routes — frames carry the sender's ProcessId, so the env
//    remembers which connection a pid last arrived on and answers on it
//    (how servers reply to clients that dialed in, without the client
//    needing a listener).
//
// Handlers run on the transport's loop thread: one thread per OS process
// serializes everything, which trivially satisfies the per-process
// serialization contract of Env. The Await<T> client path (condition-
// variable blocking, runtime/await.h) therefore works unchanged.
//
// Fault plane on real connections: decide() applies at send time
// (drop/duplicate, same as ThreadEnv) and is_cut() filters again at
// delivery. Additionally a periodic poll TEARS DOWN the underlying
// connection to any peer whose pid pairs are all cut both ways, so
// Cluster::isolate() exercises real TCP teardown + reconnect-with-backoff
// instead of a polite in-memory filter (fault_teardowns() counts these).
//
// `loopback_self` (used by Cluster's single-process socket mode) routes
// even local->local messages out through this env's own listener: every
// protocol message makes a real kernel round trip, which is what makes
// single-process socket tests representative of the multi-process
// deployment.
#pragma once
#ifdef __linux__

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/socket_addr.h"
#include "net/socket_transport.h"
#include "runtime/env.h"
#include "runtime/latency_model.h"

namespace wrs {

class SocketEnv : public Env {
 public:
  struct Options {
    /// Where this env accepts connections (TCP port 0 = ephemeral; read
    /// the actual address back with listen_addr()).
    net::SocketAddr listen;
    /// Route local->local sends through our own listener (real kernel
    /// round trip) instead of delivering in-process.
    bool loopback_self = false;
    /// Optional extra delivery delay (WAN emulation); null = none.
    std::shared_ptr<LatencyModel> latency;
    std::uint64_t seed = 1;
  };

  explicit SocketEnv(Options opts);
  ~SocketEnv() override;

  SocketEnv(const SocketEnv&) = delete;
  SocketEnv& operator=(const SocketEnv&) = delete;

  // --- Env interface -------------------------------------------------------
  TimeNs now() const override;
  /// Serializes and ships `msg` — encoded once into a thread-local
  /// arena (zero heap allocations per message in steady state; the
  /// runtime_overhead bench gates this). Throws std::invalid_argument
  /// for message types outside the wire protocol (WireCodec::encodable).
  /// A message to a pid with neither a local handler, a static route,
  /// nor a learned connection is dropped and counted
  /// ("msgs.unroutable").
  void send(ProcessId from, ProcessId to, MsgPtr msg) override;
  void schedule(ProcessId pid, TimeNs delay, Task fn) override;
  /// Allowed before or after start(); after, on_start is delivered
  /// immediately (mid-run restart scenarios).
  void register_process(ProcessId pid, Process* process) override;
  void crash(ProcessId pid) override;
  bool is_crashed(ProcessId pid) const override;
  /// Stable only once the deployment is quiescent (like ThreadEnv); the
  /// snapshot is materialized per call.
  const Counters& traffic() const override {
    traffic_export_ = ledger_.snapshot();
    return traffic_export_;
  }
  void count_event(TrafficLedger::Slot slot, std::int64_t by = 1) override {
    ledger_.inc(slot, by);
  }
  std::vector<ProcessId> server_ids() const override;
  LinkFaults& faults() override { return faults_; }

  // --- socket-specific -----------------------------------------------------
  /// Static route to a remote pid. May be called any time.
  void add_route(ProcessId pid, const net::SocketAddr& addr);

  /// Binds the listener, starts the loop thread, delivers on_start to
  /// everything registered so far.
  void start();
  /// Abrupt stop: closes every socket with no goodbye (kill -9 semantics
  /// for the peers). Idempotent; the destructor stops too.
  void stop();
  bool started() const { return started_; }

  /// Actual listen address (resolves port 0). Only valid after start().
  net::SocketAddr listen_addr() const;

  /// Connections torn down by the fault poll (isolate() on real sockets).
  std::uint64_t fault_teardowns() const { return fault_teardowns_.load(); }

  /// Transport-level counters for tests (conns opened/closed, drops).
  const net::SocketTransport& transport() const { return transport_; }

 private:
  void on_frame(net::SocketTransport::ConnId conn, const std::uint8_t* body,
                std::size_t len);
  void on_conn_closed(net::SocketTransport::ConnId conn);
  void deliver(ProcessId from, ProcessId to, const MsgPtr& msg);
  void fault_poll();

  Options opts_;
  net::SocketTransport transport_;
  std::chrono::steady_clock::time_point epoch_;
  net::SocketTransport::PeerId self_peer_ =
      net::SocketTransport::kNoPeer;  // loopback_self target (after start)
  net::SocketAddr self_addr_;

  mutable std::mutex mu_;  // guards everything below
  std::map<ProcessId, Process*> local_;
  std::set<ProcessId> crashed_;
  std::map<ProcessId, net::SocketAddr> routes_;
  // Route targets interned once at add_route: the per-send path looks
  // up a dense PeerId instead of building an address string.
  std::map<ProcessId, net::SocketTransport::PeerId> route_peers_;
  std::map<ProcessId, net::SocketTransport::ConnId> learned_;
  LinkFaults faults_;
  Rng rng_;
  // Lock-free sharded counters: syscalls dominate this runtime, but the
  // counting idiom (pre-interned slots, no string build per send) is
  // shared with SimEnv/ThreadEnv so the three traffic() outputs stay
  // key-compatible.
  TrafficLedger ledger_;
  mutable Counters traffic_export_;
  bool started_ = false;

  std::atomic<std::uint64_t> fault_teardowns_{0};
};

}  // namespace wrs

#endif  // __linux__
