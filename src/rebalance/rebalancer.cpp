#include "rebalance/rebalancer.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace wrs {

Rebalancer::Rebalancer(Env& env, MigrationEngine& engine,
                       RebalanceParams params,
                       std::vector<std::vector<AbdServer*>> shard_servers)
    : env_(env),
      engine_(engine),
      params_(params),
      shard_servers_(std::move(shard_servers)) {
  if (params_.period <= 0) {
    throw std::invalid_argument("Rebalancer: period must be > 0");
  }
  if (params_.skew_threshold < 1.0) {
    throw std::invalid_argument("Rebalancer: skew_threshold must be >= 1");
  }
  if (shard_servers_.size() < 2) {
    throw std::invalid_argument(
        "Rebalancer: needs at least 2 shards to balance across");
  }
}

void Rebalancer::start() {
  running_.store(true);
  env_.schedule(engine_.pid(), params_.period, [this] { tick(); });
}

RebalanceStats Rebalancer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void Rebalancer::tick() {
  if (!running_.load()) return;
  const std::size_t shards = shard_servers_.size();
  // Drain this window's served-op counts: per shard the union over its
  // servers (a key's quorum touches most of the group, so summing over
  // servers just scales everything by ~n — ratios are what matter).
  std::vector<std::map<RegisterKey, std::uint64_t>> win(shards);
  std::vector<std::uint64_t> load(shards, 0);
  for (std::size_t g = 0; g < shards; ++g) {
    for (AbdServer* s : shard_servers_[g]) {
      for (auto& [key, n] : s->drain_key_hits()) {
        win[g][key] += n;
        load[g] += n;
      }
    }
  }
  std::uint64_t total = 0;
  for (std::uint64_t l : load) total += l;

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rounds;
  }

  // Let the previous round's handoffs settle before judging skew again:
  // a window measured mid-migration sees freeze-parked traffic and
  // redirect retries, and acting on it thrashes (migrate -> freeze ->
  // latency spike -> apparent skew -> migrate ...). The drained window
  // above is deliberately discarded so the next evaluated one is clean.
  if (engine_.stats().in_flight > 0) {
    if (running_.load()) {
      env_.schedule(engine_.pid(), params_.period, [this] { tick(); });
    }
    return;
  }

  if (total >= params_.min_window_ops) {
    std::size_t hot = 0;
    for (std::size_t g = 1; g < shards; ++g) {
      if (load[g] > load[hot]) hot = g;
    }
    double mean = static_cast<double>(total) / static_cast<double>(shards);
    if (mean > 0 &&
        static_cast<double>(load[hot]) > params_.skew_threshold * mean) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.skewed;
      }
      // Top-K hottest keys the hot shard actually owns, hottest first.
      std::vector<std::pair<std::uint64_t, RegisterKey>> hot_keys;
      hot_keys.reserve(win[hot].size());
      for (auto& [key, n] : win[hot]) {
        if (engine_.owner_of(key) == static_cast<ShardId>(hot)) {
          hot_keys.emplace_back(n, key);
        }
      }
      std::sort(hot_keys.begin(), hot_keys.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      if (hot_keys.size() > params_.top_k) hot_keys.resize(params_.top_k);
      // Destinations: every other shard, coldest first; hot keys are
      // dealt round-robin so one round spreads the hotspot instead of
      // re-concentrating it on the single coldest shard.
      std::vector<std::size_t> dests;
      dests.reserve(shards - 1);
      for (std::size_t g = 0; g < shards; ++g) {
        if (g != hot) dests.push_back(g);
      }
      std::sort(dests.begin(), dests.end(),
                [&](std::size_t a, std::size_t b) { return load[a] < load[b]; });
      for (std::size_t i = 0; i < hot_keys.size(); ++i) {
        ShardId to = static_cast<ShardId>(dests[i % dests.size()]);
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.triggered;
        }
        engine_.migrate(hot_keys[i].second, to, [this](bool moved) {
          if (!moved) return;
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.moved;
        });
      }
    }
  }

  if (running_.load()) {
    env_.schedule(engine_.pid(), params_.period, [this] { tick(); });
  }
}

}  // namespace wrs
