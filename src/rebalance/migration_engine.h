// MigrationEngine — the coordinator of the elastic-resharding handoff
// (see storage/migration_messages.h for the wire protocol and its safety
// argument).
//
// The engine is ONE dedicated process per deployment (a reserved id in
// the client id space) holding the authoritative ShardMap: it is the
// single allocator of map epochs, which is what makes "newest epoch
// wins" a total order. migrate(key, to) runs the three quorum rounds —
// freeze+final-read at the source, commit+install at the destination,
// commit at the source — each through a per-shard AbdClient, so loss,
// duplication and partitions are absorbed by the ordinary retry /
// idempotent-reapply machinery of the ABD layer. Migrations of the same
// key are serialized (a concurrent attempt is refused, counted, and
// reported to its callback); migrations of distinct keys pipeline
// freely.
//
// The engine's own map override is applied after the destination commit
// — the linearization point of the handoff: from that moment a
// destination quorum serves the key (install and ownership flip
// atomically per server), and every stale replica a client can still
// reach either redirects or is outvoted by quorum intersection.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "runtime/env.h"
#include "shard/shard_map.h"
#include "storage/abd_client.h"

namespace wrs {

/// The dedicated process id of a deployment's MigrationEngine: a reserved
/// slot high in the client id space, far above any workload client.
inline constexpr ProcessId kMigrationEnginePid = client_id(0xF000'0000u);

/// Cross-thread snapshot of the engine's counters.
struct MigrationStats {
  std::uint64_t started = 0;    ///< handoffs that began their freeze round
  std::uint64_t committed = 0;  ///< handoffs fully committed (both sides)
  std::uint64_t refused = 0;    ///< concurrent same-key attempts refused
  std::uint64_t noops = 0;      ///< migrate() to the current owner
  std::uint64_t in_flight = 0;  ///< handoffs between freeze and commit
  std::uint64_t epoch = 0;      ///< newest map epoch allocated
};

class MigrationEngine : public Process {
 public:
  /// Fires with true when the key ended up at the requested shard (moved
  /// or already there), false when the attempt was refused.
  using DoneCb = std::function<void(bool ok)>;

  MigrationEngine(Env& env, ProcessId self, ShardMap map,
                  AbdClient::Mode mode);

  /// Moves `key` to shard `to`. MUST run in the engine's execution
  /// context (Cluster::migrate_key posts it there). Asynchronous: cb
  /// fires in the engine's context when the handoff fully commits.
  /// Refuses (cb(false)) when a migration of the same key is in flight
  /// or `to` is no deployed shard.
  void migrate(const RegisterKey& key, ShardId to, DoneCb cb);

  /// The key's owner shard per the engine's authoritative map.
  ShardId owner_of(const RegisterKey& key) const { return map_.shard_of(key); }
  const ShardMap& map() const { return map_; }
  ProcessId pid() const { return self_; }

  /// Thread-safe counter snapshot (readable while the deployment runs).
  MigrationStats stats() const;

  /// Retransmission interval of the engine's quorum rounds — required
  /// for migration liveness under the fault plane, exactly like client
  /// retries (see AbdClient::set_retry_interval).
  void set_retry_interval(TimeNs interval);

  void on_message(ProcessId from, const Message& msg) override;

 private:
  void finish(const RegisterKey& key, bool ok, const DoneCb& cb);

  Env& env_;
  ProcessId self_;
  /// Authoritative key->shard map (the engine is its single writer).
  ShardMap map_;
  std::vector<std::unique_ptr<AbdClient>> clients_;
  /// Keys with a handoff in flight (engine-context only).
  std::set<RegisterKey> active_;
  std::uint64_t last_epoch_ = 0;

  mutable std::mutex stats_mu_;
  MigrationStats stats_;
};

}  // namespace wrs
