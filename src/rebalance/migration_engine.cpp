#include "rebalance/migration_engine.h"

namespace wrs {

MigrationEngine::MigrationEngine(Env& env, ProcessId self, ShardMap map,
                                 AbdClient::Mode mode)
    : env_(env), self_(self), map_(std::move(map)) {
  clients_.reserve(map_.num_shards());
  for (ShardId g = 0; g < map_.num_shards(); ++g) {
    clients_.push_back(
        std::make_unique<AbdClient>(env_, self_, map_.config(g), mode));
  }
}

void MigrationEngine::on_message(ProcessId from, const Message& msg) {
  if (!is_server(from)) return;
  if (std::optional<ShardId> g = map_.try_shard_of_server(from)) {
    clients_[*g]->handle(from, msg);
  }
}

void MigrationEngine::set_retry_interval(TimeNs interval) {
  for (const auto& c : clients_) c->set_retry_interval(interval);
}

MigrationStats MigrationEngine::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void MigrationEngine::finish(const RegisterKey& key, bool ok,
                             const DoneCb& cb) {
  active_.erase(key);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    --stats_.in_flight;
    if (ok) ++stats_.committed;
  }
  if (cb) cb(ok);
}

void MigrationEngine::migrate(const RegisterKey& key, ShardId to, DoneCb cb) {
  if (to >= map_.num_shards()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.refused;
    if (cb) cb(false);
    return;
  }
  ShardId src = map_.shard_of(key);
  if (src == to) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.noops;
    if (cb) cb(true);
    return;
  }
  if (!active_.insert(key).second) {
    // A handoff of this key is already in flight: epochs per key must be
    // issued one at a time, so the caller is refused rather than queued
    // (the Rebalancer simply retries on a later window).
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.refused;
    if (cb) cb(false);
    return;
  }
  std::uint64_t epoch = ++last_epoch_;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.started;
    ++stats_.in_flight;
    stats_.epoch = epoch;
  }
  // Round 1 — fence the source group and collect the final read.
  clients_[src]->freeze_key(
      key, epoch, to,
      [this, key, src, to, epoch, cb = std::move(cb)](const TaggedValue& fin) {
        // Round 2 — install the frozen replica at the destination and
        // flip ownership there, atomically per server.
        clients_[to]->commit_mark(
            key, to, epoch, fin,
            [this, key, src, to, epoch, cb = std::move(cb)](const Tag&) {
              // A destination quorum now owns the key: this is the
              // handoff's linearization point. Adopt it authoritatively
              // before un-fencing the source, so owner_of() never lags
              // the servers.
              map_.apply_override(key, to, epoch);
              // Round 3 — lift the source fence; parked requests drain
              // as redirects and late clients learn the move lazily.
              clients_[src]->commit_mark(
                  key, to, epoch, std::nullopt,
                  [this, key, cb = std::move(cb)](const Tag&) {
                    finish(key, true, cb);
                  });
            });
      });
}

}  // namespace wrs
