// Rebalancer — the cross-shard load controller of elastic resharding.
//
// Consumes live per-shard load from the servers' hit-count windows
// (AbdServer::drain_key_hits — thread-safe, so the controller can run in
// the engine's execution context on any runtime), detects skew as the
// max/mean per-shard served-ops ratio over its sliding window, and
// schedules top-K hot-key migrations off the hot shard through the
// MigrationEngine. Hot keys are spread round-robin over the remaining
// shards in ascending load order, so one round of a heavily skewed
// window already approaches balance instead of just shifting the
// hotspot to the coldest shard.
//
// The controller ticks on the ENGINE's process id: controller decisions
// and migration progress are serialized in one execution context, so no
// state here needs locking beyond the counter snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "rebalance/migration_engine.h"
#include "storage/abd_server.h"

namespace wrs {

struct RebalanceParams {
  /// Sliding-window length = controller period.
  TimeNs period = ms(50);
  /// Trigger when (hottest shard's window ops) > threshold * mean.
  double skew_threshold = 1.5;
  /// Hot keys migrated off the hot shard per triggered round.
  std::size_t top_k = 8;
  /// Ignore windows with fewer served ops than this (idle/startup noise).
  std::uint64_t min_window_ops = 64;
};

/// Cross-thread snapshot of the controller's counters.
struct RebalanceStats {
  std::uint64_t rounds = 0;      ///< windows evaluated
  std::uint64_t skewed = 0;      ///< windows that tripped the threshold
  std::uint64_t triggered = 0;   ///< migrations handed to the engine
  std::uint64_t moved = 0;       ///< migrations the engine committed
};

class Rebalancer {
 public:
  /// `shard_servers[g]` are the AbdServers of shard g (borrowed; the
  /// Cluster owns both and tears the Rebalancer down first).
  Rebalancer(Env& env, MigrationEngine& engine, RebalanceParams params,
             std::vector<std::vector<AbdServer*>> shard_servers);

  /// Arms the periodic tick (call once, after the deployment started).
  void start();

  /// Disarms the tick: the next firing (already queued) is a no-op and
  /// does not reschedule. Chaos/bench drivers call this before quiescing
  /// the simulator, exactly like Cluster::set_anti_entropy(0).
  void stop() { running_.store(false); }

  const RebalanceParams& params() const { return params_; }

  /// Thread-safe counter snapshot.
  RebalanceStats stats() const;

 private:
  void tick();

  Env& env_;
  MigrationEngine& engine_;
  RebalanceParams params_;
  std::vector<std::vector<AbdServer*>> shard_servers_;
  std::atomic<bool> running_{false};

  mutable std::mutex stats_mu_;
  RebalanceStats stats_;
};

}  // namespace wrs
