// The `change` data structure of Section III.
//
// A change <p_i, lc_i, s, delta> records that the weight of server `s`
// changed by `delta` as the outcome of a reassignment request issued by
// process `p_i` whose local counter was `lc_i`. The triple
// (issuer, counter, target) identifies a change; a transfer creates two
// changes sharing (issuer, counter): one negative for the source and one
// positive for the destination.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "common/rational.h"
#include "common/types.h"

namespace wrs {

struct ChangeId {
  ProcessId issuer = kNoProcess;
  std::uint64_t counter = 0;
  ProcessId target = kNoProcess;

  friend auto operator<=>(const ChangeId&, const ChangeId&) = default;
};

struct Change {
  ChangeId id;
  Weight delta;

  Change() = default;
  Change(ProcessId issuer, std::uint64_t counter, ProcessId target,
         Weight delta_)
      : id{issuer, counter, target}, delta(std::move(delta_)) {}

  ProcessId issuer() const { return id.issuer; }
  std::uint64_t counter() const { return id.counter; }
  ProcessId target() const { return id.target; }

  bool is_null() const { return delta.is_zero(); }

  std::string str() const {
    return "<" + process_name(id.issuer) + "," + std::to_string(id.counter) +
           "," + process_name(id.target) + "," + delta.str() + ">";
  }

  friend bool operator==(const Change& a, const Change& b) {
    return a.id == b.id && a.delta == b.delta;
  }
};

/// Counter value used by the implicit initial changes <s, 1, s, w_s> that
/// define the initial weights (the paper's C_{s,0}); local counters of
/// processes therefore start at kFirstCounter.
inline constexpr std::uint64_t kInitialChangeCounter = 1;
inline constexpr std::uint64_t kFirstCounter = 2;

}  // namespace wrs
