// Grow-only set of changes (a join-semilattice under union).
//
// Every server and client holds one; Algorithm 3's read/write-back and
// Algorithm 4's reliable broadcast only ever *add* changes, so local sets
// grow monotonically and the union of any two valid sets is valid. The
// weight of a server s derived from a set C is the sum of the deltas of
// the changes in C created for s (Section III, W_{s,t}).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/change.h"
#include "quorum/weight_map.h"

namespace wrs {

class ChangeSet {
 public:
  ChangeSet() = default;

  /// The paper's initial set: one change <s, 1, s, w_s> per server.
  static ChangeSet initial(const WeightMap& initial_weights);

  /// Adds a change; returns true iff it was not already present.
  /// Re-adding the identical change is a no-op; re-adding the same id with
  /// a different delta indicates a protocol bug and throws.
  bool add(const Change& change);

  bool contains(const ChangeId& id) const { return map_.count(id) != 0; }
  std::optional<Change> find(const ChangeId& id) const;

  /// Union-merge; returns the number of changes newly added.
  std::size_t join(const ChangeSet& other);

  /// All changes created for `target` (the paper's get_changes(s)).
  std::vector<Change> changes_for(ProcessId target) const;

  /// Same as changes_for but packaged as a ChangeSet (for RC_Ack replies).
  ChangeSet subset_for(ProcessId target) const;

  /// Number of changes with the given (issuer, counter) pair — 2 once both
  /// halves of a transfer are stored.
  std::size_t count_pair(ProcessId issuer, std::uint64_t counter) const;

  /// Changes in `other` that are missing here (other \ this).
  std::vector<Change> missing_from(const ChangeSet& other) const;

  /// W_{s}: sum of deltas of the changes created for `target`.
  Weight weight_of(ProcessId target) const;

  /// Derives the full weight map over `servers`.
  WeightMap to_weight_map(const std::vector<ProcessId>& servers) const;

  /// Sum of every delta in the set; constant under pairwise reassignment.
  Weight total() const;

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  std::vector<Change> all() const;

  /// True iff every change in `this` is also in `other`.
  bool subset_of(const ChangeSet& other) const;

  /// Estimated serialized size (for piggybacking overhead accounting):
  /// 4+8+4 id bytes + 16 delta bytes per change, 8 bytes length prefix.
  std::size_t wire_size() const { return 8 + map_.size() * 32; }

  std::string str() const;

  friend bool operator==(const ChangeSet& a, const ChangeSet& b) {
    return a.map_ == b.map_;
  }

 private:
  std::map<ChangeId, Weight> map_;
};

}  // namespace wrs
