// Server node of the restricted pairwise weight reassignment protocol:
// Algorithm 4 (transfer) plus the server part of Algorithm 3
// (read_changes service).
//
// Faithfulness notes (deviations recorded in DESIGN.md §2):
//  * transfer() checks C2 locally: weight() > delta + W_{S,0}/(2(n-f));
//    effective transfers store both changes locally, reliably broadcast
//    <T, c, c'>, and complete after T_Acks from n-f-1 *other* servers.
//    Null (aborted) transfers complete immediately and store nothing.
//  * C1 is structural: transfer() only ever moves *this* server's weight.
//  * A server acknowledges a transfer (T_Ack) only once BOTH changes of
//    the (issuer, counter) pair are stored — slightly stronger than the
//    paper's per-change ack, closing a race where write-backs of a single
//    half could count toward completion.
//  * Before applying a weight *gain*, the node runs the registered
//    refresh hook (Algorithm 4 line 9: "register <- read()"); the dynamic
//    storage layer uses this to complete a read before its quorum power
//    grows. Standalone deployments leave the default no-op hook.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "broadcast/reliable_broadcast.h"
#include "core/config.h"
#include "core/read_changes_engine.h"
#include "core/reassign_messages.h"
#include "runtime/env.h"

namespace wrs {

/// Outcome of a completed transfer invocation: the <Complete, c> message
/// of the paper, where c is the negative (source) change — zero-weight
/// when the invocation was null (aborted by the C2 check).
struct TransferOutcome {
  bool effective = false;
  Change completion_change;
};

class ReassignNode : public Process {
 public:
  using TransferCallback = std::function<void(const TransferOutcome&)>;
  using ReadChangesCallback = ReadChangesEngine::Callback;
  /// Called before a weight gain is applied; must invoke `done` (possibly
  /// asynchronously) when the pre-gain work (storage register refresh)
  /// finished.
  using RefreshHook = std::function<void(std::function<void()> done)>;

  ReassignNode(Env& env, ProcessId self, const SystemConfig& config);

  // --- public API (the problem's operations) ------------------------------
  /// transfer(self, to, delta): moves `delta` (> 0) of this server's
  /// weight to `to`. Processes are sequential: at most one outstanding
  /// transfer per node (throws std::logic_error otherwise).
  void transfer(ProcessId to, const Weight& delta, TransferCallback cb);

  /// read_changes(target) — any process may invoke; servers included.
  void read_changes(ProcessId target, ReadChangesCallback cb);

  /// Current weight of this server per its local change set.
  Weight weight() const { return changes_.weight_of(self_); }

  /// Weight of any server per the local change set.
  Weight weight_of(ProcessId server) const {
    return changes_.weight_of(server);
  }

  /// Snapshot of the local change set (tests, storage piggybacking).
  const ChangeSet& changes() const { return changes_; }

  const SystemConfig& config() const { return config_; }
  ProcessId id() const { return self_; }

  /// Reassignment messages dropped because they carried another group's
  /// shard id (should stay 0 — scoped broadcasts never produce them).
  std::uint64_t misrouted_count() const { return misrouted_; }

  bool transfer_in_flight() const { return pending_transfer_.has_value(); }

  void set_refresh_hook(RefreshHook hook) { refresh_hook_ = std::move(hook); }

  /// Anti-entropy (off by default): every `period` this node broadcasts
  /// <SYNC, C, lc?> to all servers; receivers merge via write_changes and
  /// re-acknowledge the sender's pending transfer pair when they already
  /// store it. Makes change sets converge — and stuck transfers complete
  /// — even when the fault plane dropped T / T_Ack / RB traffic.
  /// `period` <= 0 disables (any scheduled round becomes a no-op).
  void enable_sync(TimeNs period);
  TimeNs sync_period() const { return sync_period_; }

  /// One immediate anti-entropy round (chaos drivers use this to force
  /// convergence after healing without waiting out the period).
  void sync_now();

  /// Observer invoked whenever the local change set grows (monitoring,
  /// storage invalidation, tests).
  void set_on_changes_grown(std::function<void()> fn) {
    on_changes_grown_ = std::move(fn);
  }

  // --- Process interface ---------------------------------------------------
  void on_message(ProcessId from, const Message& msg) override;

  /// Component-style dispatch for composition with the storage server in
  /// one Process; returns true iff the message belonged to this protocol.
  bool handle(ProcessId from, const Message& msg);

 private:
  struct PendingTransfer {
    std::uint64_t counter = 0;
    Change neg;
    std::set<ProcessId> acks;
    TransferCallback cb;
  };

  /// Algorithm 4 write_changes: stores every missing change from `incoming`
  /// (running the refresh hook before gains) and T_Acks issuers whose pair
  /// completed. `done` fires when all changes are applied locally.
  void write_changes(const ChangeSet& incoming, std::function<void()> done);

  void apply_change(const Change& c);
  void maybe_ack_issuer(ProcessId issuer, std::uint64_t counter);
  void schedule_sync();
  void on_rb_deliver(ProcessId origin, const Message& payload);
  void complete_transfer();

  bool misrouted(ShardId requested) {
    if (requested == config_.shard) return false;
    ++misrouted_;
    return true;
  }

  Env& env_;
  ProcessId self_;
  SystemConfig config_;
  std::vector<ProcessId> servers_;  // the group anti-entropy is scoped to
  Weight floor_;
  std::uint64_t misrouted_ = 0;

  ChangeSet changes_;
  std::uint64_t lc_ = kFirstCounter;
  ReliableBroadcast rb_;
  ReadChangesEngine read_engine_;

  std::optional<PendingTransfer> pending_transfer_;
  std::set<std::pair<ProcessId, std::uint64_t>> acked_pairs_;
  std::set<ChangeId> applying_;  // gains waiting on the refresh hook
  RefreshHook refresh_hook_;
  std::function<void()> on_changes_grown_;
  TimeNs sync_period_ = 0;
  std::uint64_t sync_epoch_ = 0;  // invalidates in-flight sync timers
};

}  // namespace wrs
