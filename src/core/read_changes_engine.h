// Client-side state machine of read_changes (Algorithm 3, lines 1-9).
//
// Phase 1: broadcast <RC, target>; union the RC_Ack change sets until
//          acks from f+1 distinct servers arrived (the appendix proof's
//          reading of line 6 — at least one ack is then from a correct
//          server that stores every completed change).
// Phase 2: broadcast <WC, C>; wait for WC_Ack from n-f distinct servers
//          so the returned set is durable, then return C.
//
// Usable by any process (servers run it too). Multiple concurrent
// invocations are supported and correlated by op_id.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "core/config.h"
#include "core/reassign_messages.h"
#include "runtime/env.h"

namespace wrs {

class ReadChangesEngine {
 public:
  using Callback = std::function<void(const ChangeSet&)>;

  ReadChangesEngine(Env& env, ProcessId self, const SystemConfig& config)
      : env_(env), self_(self), config_(config), servers_(config.servers()) {}

  /// Starts a read_changes(target) invocation; `cb` fires exactly once
  /// with the returned set. (If more than f servers are faulty, liveness
  /// is forfeit — as in the paper.)
  void start(ProcessId target, Callback cb);

  /// Routes RC_Ack / WC_Ack messages; true iff consumed.
  bool handle(ProcessId from, const Message& msg);

  std::size_t in_flight() const { return pending_.size(); }

 private:
  struct Pending {
    ProcessId target = kNoProcess;
    int phase = 1;
    std::set<ProcessId> phase1_acks;
    std::set<ProcessId> phase2_acks;
    ChangeSet acc;
    Callback cb;
  };

  void maybe_finish_phase1(std::uint64_t op_id, Pending& p);

  Env& env_;
  ProcessId self_;
  SystemConfig config_;
  std::vector<ProcessId> servers_;  // the group broadcasts are scoped to
  std::uint64_t next_op_id_ = 1;
  std::map<std::uint64_t, Pending> pending_;
};

}  // namespace wrs
