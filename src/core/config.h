// Static system configuration: the set of servers S, the fault threshold
// f, and the initial weight assignment (the paper's model fixes all three
// for the lifetime of the system).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "quorum/wmqs.h"

namespace wrs {

struct SystemConfig {
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  WeightMap initial_weights;
  /// The replica group this config describes. Unsharded deployments (and
  /// the paper's model) are shard 0 with base 0; shard g of a sharded
  /// deployment owns the contiguous server ids [base, base+n).
  ShardId shard = 0;
  ProcessId base = 0;

  /// Uniform initial weights (weight 1 each): the MQS starting point.
  static SystemConfig uniform(std::uint32_t n, std::uint32_t f) {
    return make(n, f, WeightMap::uniform(n));
  }

  static SystemConfig make(std::uint32_t n, std::uint32_t f,
                           WeightMap initial) {
    SystemConfig cfg;
    cfg.n = n;
    cfg.f = f;
    cfg.initial_weights = std::move(initial);
    cfg.validate();
    return cfg;
  }

  /// One shard of a multi-group deployment: the group's weights must be
  /// keyed by the GLOBAL server ids [base, base+n).
  static SystemConfig make_shard(ShardId shard, ProcessId base,
                                 std::uint32_t n, std::uint32_t f,
                                 WeightMap initial) {
    SystemConfig cfg;
    cfg.n = n;
    cfg.f = f;
    cfg.initial_weights = std::move(initial);
    cfg.shard = shard;
    cfg.base = base;
    cfg.validate();
    return cfg;
  }

  std::vector<ProcessId> servers() const { return server_range(base, n); }

  /// W_{S,0}.
  Weight initial_total() const { return initial_weights.total(); }

  /// The RP-Integrity floor W_{S,0}/(2(n-f)).
  Weight floor() const { return rp_integrity_floor(initial_total(), n, f); }

  /// Checks the model's standing assumptions:
  ///  * 0 <= f, n >= 2f+1 (a weighted quorum of correct servers must exist
  ///    even in the uniform case),
  ///  * one weight per server,
  ///  * Property 1 (availability) holds initially.
  void validate() const {
    if (n == 0) throw std::invalid_argument("SystemConfig: n == 0");
    if (n < 2 * f + 1) {
      throw std::invalid_argument("SystemConfig: need n >= 2f+1");
    }
    if (base + n > kClientIdBase) {
      throw std::invalid_argument(
          "SystemConfig: server range [" + std::to_string(base) + ", " +
          std::to_string(base + n) + ") collides with the client id space");
    }
    if (initial_weights.size() != n) {
      throw std::invalid_argument("SystemConfig: weights/servers mismatch");
    }
    for (ProcessId s : servers()) {
      if (!initial_weights.contains(s)) {
        throw std::invalid_argument("SystemConfig: missing weight for " +
                                    process_name(s));
      }
      if (!initial_weights.of(s).is_positive()) {
        throw std::invalid_argument("SystemConfig: non-positive weight for " +
                                    process_name(s));
      }
    }
    Wmqs q(initial_weights);
    if (f > 0 && !q.is_available(f)) {
      throw std::invalid_argument(
          "SystemConfig: Property 1 (availability) violated by initial "
          "weights");
    }
  }

  /// True iff the initial weights additionally satisfy the RP-Integrity
  /// floor (required to *start* the restricted pairwise protocol).
  bool satisfies_rp_floor() const {
    Weight fl = floor();
    for (const auto& [s, w] : initial_weights.entries()) {
      if (!(w > fl)) return false;
    }
    return true;
  }
};

}  // namespace wrs
