#include "core/read_changes_engine.h"
#include "runtime/msg_pool.h"

namespace wrs {

void ReadChangesEngine::start(ProcessId target, Callback cb) {
  std::uint64_t op_id = next_op_id_++;
  Pending& p = pending_[op_id];
  p.target = target;
  p.cb = std::move(cb);
  env_.broadcast_to_group(
      self_, servers_, make_msg<RcReq>(op_id, target, config_.shard));
}

bool ReadChangesEngine::handle(ProcessId from, const Message& msg) {
  if (const auto* ack = msg_cast<RcAck>(msg)) {
    auto it = pending_.find(ack->op_id());
    if (it == pending_.end() || it->second.phase != 1) return true;  // stale
    Pending& p = it->second;
    if (!p.phase1_acks.insert(from).second) return true;  // duplicate
    p.acc.join(ack->changes());
    maybe_finish_phase1(ack->op_id(), p);
    return true;
  }
  if (const auto* ack = msg_cast<WcAck>(msg)) {
    auto it = pending_.find(ack->op_id());
    if (it == pending_.end() || it->second.phase != 2) return true;  // stale
    Pending& p = it->second;
    if (!p.phase2_acks.insert(from).second) return true;
    if (p.phase2_acks.size() >= config_.n - config_.f) {
      auto cb = std::move(p.cb);
      ChangeSet result = std::move(p.acc);
      pending_.erase(it);
      cb(result);
    }
    return true;
  }
  return false;
}

void ReadChangesEngine::maybe_finish_phase1(std::uint64_t op_id, Pending& p) {
  if (p.phase1_acks.size() < config_.f + 1) return;
  p.phase = 2;
  env_.broadcast_to_group(
      self_, servers_, make_msg<WcReq>(op_id, p.acc, config_.shard));
}

}  // namespace wrs
