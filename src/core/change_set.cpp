#include "core/change_set.h"

#include <sstream>
#include <stdexcept>

namespace wrs {

ChangeSet ChangeSet::initial(const WeightMap& initial_weights) {
  ChangeSet cs;
  for (const auto& [server, weight] : initial_weights.entries()) {
    cs.add(Change(server, kInitialChangeCounter, server, weight));
  }
  return cs;
}

bool ChangeSet::add(const Change& change) {
  auto [it, inserted] = map_.emplace(change.id, change.delta);
  if (!inserted && !(it->second == change.delta)) {
    throw std::logic_error("ChangeSet: conflicting deltas for change id " +
                           change.str() + " vs existing delta " +
                           it->second.str());
  }
  return inserted;
}

std::optional<Change> ChangeSet::find(const ChangeId& id) const {
  auto it = map_.find(id);
  if (it == map_.end()) return std::nullopt;
  Change c;
  c.id = id;
  c.delta = it->second;
  return c;
}

std::size_t ChangeSet::join(const ChangeSet& other) {
  std::size_t added = 0;
  for (const auto& [id, delta] : other.map_) {
    Change c;
    c.id = id;
    c.delta = delta;
    if (add(c)) ++added;
  }
  return added;
}

std::vector<Change> ChangeSet::changes_for(ProcessId target) const {
  std::vector<Change> out;
  for (const auto& [id, delta] : map_) {
    if (id.target == target) {
      Change c;
      c.id = id;
      c.delta = delta;
      out.push_back(c);
    }
  }
  return out;
}

ChangeSet ChangeSet::subset_for(ProcessId target) const {
  ChangeSet out;
  for (const auto& [id, delta] : map_) {
    if (id.target == target) {
      Change c;
      c.id = id;
      c.delta = delta;
      out.add(c);
    }
  }
  return out;
}

std::size_t ChangeSet::count_pair(ProcessId issuer,
                                  std::uint64_t counter) const {
  std::size_t count = 0;
  for (const auto& [id, _] : map_) {
    if (id.issuer == issuer && id.counter == counter) ++count;
  }
  return count;
}

std::vector<Change> ChangeSet::missing_from(const ChangeSet& other) const {
  std::vector<Change> out;
  for (const auto& [id, delta] : other.map_) {
    if (map_.count(id) == 0) {
      Change c;
      c.id = id;
      c.delta = delta;
      out.push_back(c);
    }
  }
  return out;
}

Weight ChangeSet::weight_of(ProcessId target) const {
  Weight sum(0);
  for (const auto& [id, delta] : map_) {
    if (id.target == target) sum += delta;
  }
  return sum;
}

WeightMap ChangeSet::to_weight_map(
    const std::vector<ProcessId>& servers) const {
  WeightMap wm;
  for (ProcessId s : servers) wm.set(s, weight_of(s));
  return wm;
}

Weight ChangeSet::total() const {
  Weight sum(0);
  for (const auto& [_, delta] : map_) sum += delta;
  return sum;
}

std::vector<Change> ChangeSet::all() const {
  std::vector<Change> out;
  out.reserve(map_.size());
  for (const auto& [id, delta] : map_) {
    Change c;
    c.id = id;
    c.delta = delta;
    out.push_back(c);
  }
  return out;
}

bool ChangeSet::subset_of(const ChangeSet& other) const {
  for (const auto& [id, delta] : map_) {
    auto it = other.map_.find(id);
    if (it == other.map_.end() || !(it->second == delta)) return false;
  }
  return true;
}

std::string ChangeSet::str() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [id, delta] : map_) {
    if (!first) os << ", ";
    first = false;
    Change c;
    c.id = id;
    c.delta = delta;
    os << c.str();
  }
  os << "}";
  return os.str();
}

}  // namespace wrs
