// A client process (member of Pi) of the reassignment service: may invoke
// read_changes but never transfer (only servers reassign weights).
#pragma once

#include "core/read_changes_engine.h"

namespace wrs {

class ReassignClient : public Process {
 public:
  ReassignClient(Env& env, ProcessId self, const SystemConfig& config)
      : self_(self), engine_(env, self, config) {}

  void read_changes(ProcessId target, ReadChangesEngine::Callback cb) {
    engine_.start(target, std::move(cb));
  }

  /// Convenience: read the changes for every server and derive the weight
  /// map (used by monitoring dashboards and tests).
  void read_all_weights(
      const SystemConfig& config,
      std::function<void(const WeightMap&)> cb);

  void on_message(ProcessId from, const Message& msg) override {
    engine_.handle(from, msg);
  }

  ProcessId id() const { return self_; }

 private:
  ProcessId self_;
  ReadChangesEngine engine_;
};

}  // namespace wrs
